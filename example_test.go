package tdx_test

import (
	"context"
	"errors"
	"fmt"
	"log"

	tdx "repro"
)

// exampleMapping is the paper's running example: employment records and
// salaries exchanged into a unified Emp relation, with a salary key egd.
const exampleMapping = `
source schema {
    E(name, company)
    S(name, salary)
}
target schema {
    Emp(name, company, salary)
}
tgd sigma1: E(n, c) -> exists s . Emp(n, c, s)
tgd sigma2: E(n, c), S(n, s) -> Emp(n, c, s)
egd salary-key: Emp(n, c, s), Emp(n, c, s2) -> s = s2
query q(n, s) :- Emp(n, c, s)
`

// exampleFacts is the Figure 4 source instance.
const exampleFacts = `
E(Ada, IBM)    @ [2012, 2014)
E(Ada, Google) @ [2014, inf)
E(Bob, IBM)    @ [2013, 2018)
S(Ada, 18k)    @ [2013, inf)
S(Bob, 13k)    @ [2015, inf)
`

// Compile once, run the exchange, and print the universal solution —
// the quickstart of the whole engine.
func Example() {
	ex, err := tdx.Compile(exampleMapping)
	if err != nil {
		log.Fatal(err)
	}
	src, err := ex.ParseSource(exampleFacts)
	if err != nil {
		log.Fatal(err)
	}
	sol, err := ex.Run(context.Background(), src)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(sol.Facts())
	// Output:
	// Emp(Ada, Google, 18k) @ [2014,inf)
	// Emp(Ada, IBM, 18k) @ [2013,2014)
	// Emp(Ada, IBM, N1^[2012,2013)) @ [2012,2013)
	// Emp(Bob, IBM, 13k) @ [2015,2018)
	// Emp(Bob, IBM, N4^[2013,2015)) @ [2013,2015)
}

// Certain answers: evaluate the mapping's declared query on a
// materialized solution.
func ExampleExchange_Query() {
	ex := tdx.MustCompile(exampleMapping)
	src, err := ex.ParseSource(exampleFacts)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	sol, err := ex.Run(ctx, src)
	if err != nil {
		log.Fatal(err)
	}
	ans, err := ex.Query(ctx, sol, "q")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(ans.Facts())
	// Output:
	// q(Ada, 18k) @ [2013,inf)
	// q(Bob, 13k) @ [2015,2018)
}

// The abstract view: one relational snapshot of the solution per time
// point, with interval-annotated nulls projected per snapshot.
func ExampleExchange_Snapshot() {
	ex := tdx.MustCompile(exampleMapping)
	src, err := ex.ParseSource(exampleFacts)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	sol, err := ex.Run(ctx, src)
	if err != nil {
		log.Fatal(err)
	}
	for _, year := range []tdx.Time{2012, 2015} {
		snap, err := ex.Snapshot(ctx, sol, year)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("db%v = %s\n", year, snap)
	}
	// Output:
	// db2012 = {Emp(Ada, IBM, N1@2012)}
	// db2015 = {Emp(Ada, Google, 18k), Emp(Bob, IBM, 13k)}
}

// Options configure an exchange at compile time and can be overridden
// per run: here the solution is coalesced back to canonical form.
func ExampleWithCoalesce() {
	ex := tdx.MustCompile(exampleMapping, tdx.WithCoalesce(true))
	src, err := ex.ParseSource(exampleFacts)
	if err != nil {
		log.Fatal(err)
	}
	sol, err := ex.Run(context.Background(), src)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(sol.IsCoalesced())
	// Output:
	// true
}

// An egd equating two distinct constants proves no solution exists; the
// error wraps ErrNoSolution.
func ExampleErrNoSolution() {
	ex := tdx.MustCompile(exampleMapping)
	src, err := ex.ParseSource(exampleFacts + "S(Ada, 99k) @ [2013, 2014)\n")
	if err != nil {
		log.Fatal(err)
	}
	_, err = ex.Run(context.Background(), src)
	fmt.Println(errors.Is(err, tdx.ErrNoSolution))
	// Output:
	// true
}
