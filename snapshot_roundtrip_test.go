package tdx

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/workload"
)

// TestSolutionSnapshotRoundTrip is the snapshot subsystem's end-to-end
// property: over many seeded employment workloads — whose egd merges
// leave dead rows in the validity bitmap — a solution written to a
// snapshot file and loaded back must be indistinguishable from the
// original in every rendering: Facts, JSON, per-time-point snapshots,
// per-fact data hashes, and the re-encoded snapshot bytes themselves.
func TestSolutionSnapshotRoundTrip(t *testing.T) {
	ctx := context.Background()
	ex := MustCompile(employmentMappingText)
	dir := t.TempDir()
	sawDeadRows := false
	for seed := int64(0); seed < 12; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			src := NewInstance(workload.Employment(workload.EmploymentConfig{
				Seed: seed + 1, Persons: 20 + int(seed)*7, JobsPerPerson: 3,
				SalaryCoverage: 0.6, Span: 80,
			}))
			sol, err := ex.Run(ctx, src)
			if err != nil {
				t.Fatal(err)
			}
			if sol.Stats().EgdMerges > 0 {
				sawDeadRows = true
			}

			path := filepath.Join(dir, fmt.Sprintf("s%d.snap", seed))
			if err := sol.WriteSnapshotFile(path); err != nil {
				t.Fatalf("WriteSnapshotFile: %v", err)
			}
			loaded, err := ex.LoadSolution(path)
			if err != nil {
				t.Fatalf("LoadSolution: %v", err)
			}

			if w, g := sol.Facts(), loaded.Facts(); w != g {
				t.Fatalf("Facts differ:\nwant:\n%s\ngot:\n%s", w, g)
			}
			wj, err1 := sol.JSON()
			gj, err2 := loaded.JSON()
			if err1 != nil || err2 != nil {
				t.Fatalf("JSON: %v / %v", err1, err2)
			}
			if !bytes.Equal(wj, gj) {
				t.Fatalf("JSON renderings differ")
			}
			for _, at := range []Time{0, 7, 40, 79} {
				w := sol.Snapshot(at).Store().String()
				g := loaded.Snapshot(at).Store().String()
				if w != g {
					t.Fatalf("Snapshot(%d) differs:\nwant:\n%s\ngot:\n%s", at, w, g)
				}
			}
			wf, gf := sol.c.Facts(), loaded.c.Facts()
			if len(wf) != len(gf) {
				t.Fatalf("fact counts differ: %d vs %d", len(wf), len(gf))
			}
			for i := range wf {
				if wf[i].DataHash() != gf[i].DataHash() {
					t.Fatalf("DataHash differs at fact %d: %v vs %v", i, wf[i], gf[i])
				}
			}
			if sol.Stats() != loaded.Stats() {
				t.Fatalf("stats differ: %+v vs %+v", sol.Stats(), loaded.Stats())
			}

			// The loaded solution re-saves byte-identically.
			var orig, again bytes.Buffer
			if err := sol.WriteSnapshot(&orig); err != nil {
				t.Fatal(err)
			}
			if err := loaded.WriteSnapshot(&again); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(orig.Bytes(), again.Bytes()) {
				t.Fatalf("re-encoded snapshot differs (%d vs %d bytes)", orig.Len(), again.Len())
			}

			// The embedded source came back intact.
			if w, g := src.Facts(), loaded.src.Facts(); w != g {
				t.Fatalf("embedded source differs")
			}
		})
	}
	if !sawDeadRows {
		t.Fatalf("no seed produced egd merges; the round-trip never saw dead rows")
	}
}

// TestLoadedSolutionRunDelta checks the documented resume semantics: a
// loaded solution supports RunDelta through the full-rechase fallback
// and produces facts byte-identical to a delta over the original.
func TestLoadedSolutionRunDelta(t *testing.T) {
	ctx := context.Background()
	ex := MustCompile(employmentMappingText)
	src := NewInstance(workload.Employment(workload.EmploymentConfig{
		Seed: 3, Persons: 40, JobsPerPerson: 3, SalaryCoverage: 0.6, Span: 80,
	}))
	sol, err := ex.Run(ctx, src)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "s.snap")
	if err := sol.WriteSnapshotFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := ex.LoadSolution(path)
	if err != nil {
		t.Fatal(err)
	}

	delta, err := ex.ParseSource("E(newhire, acme) @ [10, 20)")
	if err != nil {
		t.Fatal(err)
	}
	fastSol, _, err := ex.RunDelta(ctx, sol, delta)
	if err != nil {
		t.Fatal(err)
	}
	if fastSol.Stats().FallbackFullChase {
		t.Fatalf("original solution lost its chase state")
	}
	slowSol, _, err := ex.RunDelta(ctx, loaded, delta.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if !slowSol.Stats().FallbackFullChase {
		t.Fatalf("loaded solution should re-chase via the fallback path")
	}
	if w, g := fastSol.Facts(), slowSol.Facts(); w != g {
		t.Fatalf("delta over loaded solution differs:\nwant:\n%s\ngot:\n%s", w, g)
	}
	// The fallback self-heals: the next delta takes the fast path again.
	delta2, err := ex.ParseSource("E(newhire2, acme) @ [30, 40)")
	if err != nil {
		t.Fatal(err)
	}
	next, _, err := ex.RunDelta(ctx, slowSol, delta2)
	if err != nil {
		t.Fatal(err)
	}
	if next.Stats().FallbackFullChase {
		t.Fatalf("second delta over a loaded solution should be incremental")
	}
}

// TestLoadSolutionWrongMapping asserts structural validation: loading a
// snapshot against an exchange whose target schema does not declare the
// snapshot's relations fails instead of producing garbage.
func TestLoadSolutionWrongMapping(t *testing.T) {
	ctx := context.Background()
	ex := MustCompile(employmentMappingText)
	src := NewInstance(workload.Employment(workload.DefaultEmployment()))
	sol, err := ex.Run(ctx, src)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "s.snap")
	if err := sol.WriteSnapshotFile(path); err != nil {
		t.Fatal(err)
	}

	other := MustCompile(`
source schema { A(x) }
target schema { B(x) }
tgd t: A(x) -> B(x)
`)
	if _, err := other.LoadSolution(path); err == nil {
		t.Fatal("loading against a mapping without the snapshot's relations succeeded")
	}

	// Same relation name, different arity: also rejected.
	narrower := MustCompile(`
source schema { X(a) }
target schema { Emp(name, company) }
tgd t: X(a) -> Emp(a, a)
`)
	if _, err := narrower.LoadSolution(path); err == nil {
		t.Fatal("loading against a narrower Emp arity succeeded")
	}

	if _, err := ex.LoadSolution(filepath.Join(t.TempDir(), "missing.snap")); err == nil {
		t.Fatal("loading a missing file succeeded")
	}
}

// TestLoadSolutionCorrupt double-checks that corruption surfaces through
// the public API as an error, not a panic or a silent load.
func TestLoadSolutionCorrupt(t *testing.T) {
	ctx := context.Background()
	ex := MustCompile(employmentMappingText)
	sol, err := ex.Run(ctx, NewInstance(workload.Employment(workload.DefaultEmployment())))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sol.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[len(data)/2] ^= 0x40
	path := filepath.Join(t.TempDir(), "bad.snap")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ex.LoadSolution(path); err == nil {
		t.Fatal("corrupt snapshot loaded successfully")
	} else if errors.Is(err, context.Canceled) {
		t.Fatal("unexpected error kind")
	}
}
