package tdx

import (
	"fmt"
	"runtime"

	"repro/internal/chase"
	"repro/internal/normalize"
)

// Norm selects the normalization algorithm (paper §4.2).
type Norm int

const (
	// NormSmart is the paper's Algorithm 1: only facts participating in
	// overlapping match sets are fragmented (the default).
	NormSmart Norm = iota
	// NormNaive fragments every fact on the global endpoint partition:
	// O(n log n), larger output, stable under egd rewrites.
	NormNaive
)

func (n Norm) String() string {
	if n == NormNaive {
		return "naive"
	}
	return "smart"
}

// ParseNorm parses a normalization strategy name ("smart" or "naive";
// "" means smart), for flag and config surfaces.
func ParseNorm(s string) (Norm, error) {
	switch s {
	case "smart", "":
		return NormSmart, nil
	case "naive":
		return NormNaive, nil
	}
	return NormSmart, fmt.Errorf("tdx: unknown normalization strategy %q (want smart or naive)", s)
}

// EgdStrategy selects how equality generating dependencies are applied.
type EgdStrategy int

const (
	// EgdBatch collects every violated equality in a round, merges them in
	// one union-find pass, and rewrites the instance once per round (the
	// default; asymptotically cheaper).
	EgdBatch EgdStrategy = iota
	// EgdStepwise applies one equality at a time and re-searches — the
	// textbook chase-step formulation, kept as the ablation baseline.
	EgdStepwise
)

func (s EgdStrategy) String() string {
	if s == EgdStepwise {
		return "stepwise"
	}
	return "batch"
}

// ParseEgdStrategy parses an egd strategy name ("batch" or "stepwise";
// "" means batch), for flag and config surfaces.
func ParseEgdStrategy(s string) (EgdStrategy, error) {
	switch s {
	case "batch", "":
		return EgdBatch, nil
	case "stepwise":
		return EgdStepwise, nil
	}
	return EgdBatch, fmt.Errorf("tdx: unknown egd strategy %q (want batch or stepwise)", s)
}

// Event is one step of a chase run, delivered to a WithTrace hook: the
// event kind ("normalize", "tgd-fire", "egd-merge", "egd-fail"), the
// dependency label when one applies, and human-readable detail.
type Event struct {
	Kind   string
	Dep    string
	Detail string
}

func (e Event) String() string {
	if e.Dep != "" {
		return fmt.Sprintf("%s %s: %s", e.Kind, e.Dep, e.Detail)
	}
	return fmt.Sprintf("%s: %s", e.Kind, e.Detail)
}

// config is the resolved option set of an Exchange (or of one Run, when
// per-call options override it).
type config struct {
	norm        Norm
	egd         EgdStrategy
	coalesce    bool
	trace       func(Event)
	parallelism int
	runInterner bool
}

// Option configures an Exchange at Compile time; the executing methods
// Run, RunAbstract, Normalize, and Answer also accept Options as
// per-call overrides. (Query evaluates an already-materialized solution,
// so it has nothing to override.)
type Option func(*config)

// WithNorm selects the normalization algorithm.
func WithNorm(n Norm) Option { return func(c *config) { c.norm = n } }

// WithEgdStrategy selects how egds are applied.
func WithEgdStrategy(s EgdStrategy) Option { return func(c *config) { c.egd = s } }

// WithCoalesce makes Run return the coalesced solution (the compact form
// of the paper's Figure 9), merging the intervals of facts with
// identical data values into maximal disjoint intervals.
func WithCoalesce(on bool) Option { return func(c *config) { c.coalesce = on } }

// WithTrace installs a hook receiving one Event per chase action
// (normalization passes, tgd firings, egd merges, failures). Nil removes
// a previously installed hook. The hook is invoked synchronously from
// the chase; when an Exchange is shared across goroutines the hook must
// be safe for concurrent use. Event order and count are deterministic at
// any worker setting, but the detail text of tgd-fire events is
// abbreviated on the parallel path (solutions stay byte-identical; only
// the debug trace wording differs) — pass WithParallelism(1) when
// diffing traces across machines.
func WithTrace(fn func(Event)) Option { return func(c *config) { c.trace = fn } }

// WithParallelism sets the worker count used by the parallel paths: the
// concrete chase behind Run and Answer (the s-t tgd phase partitions the
// frozen normalized source across workers, and each egd round partitions
// its renormalization and merge-candidate scans over the frozen
// intermediate target — both byte-identical to the sequential chase),
// the egd phase of temporal (§7) mappings, Query/Answer's per-disjunct
// normalization over the frozen solution, and RunAbstract's
// segment-level fan-out. 0 or negative selects GOMAXPROCS — the default,
// so Run is parallel out of the box on multi-core hosts; pass 1 to force
// the sequential path. Tiny inputs and stepwise egd rounds
// (EgdStepwise) always run sequentially.
func WithParallelism(workers int) Option { return func(c *config) { c.parallelism = workers } }

// WithRunInterner gives every Run (and Answer) its own value interner,
// seeded from the exchange's frozen compile-time mapping-domain interner
// instead of the shared exchange-wide one.
//
// The trade-off: the default shared interner amortizes interning of
// values that recur across runs but never evicts, so a long-lived
// exchange serving unbounded distinct inputs grows with every value it
// has ever seen. With this option each run pays a small copy of the
// mapping-domain seed and loses cross-run amortization, but everything a
// run interns is released with its Solution — the right choice for
// long-lived server exchanges over high-cardinality input streams. Keep
// the default for repeated runs over a bounded value domain.
//
// A related retention trade-off applies to solutions themselves: every
// Solution pins the frozen state a later RunDelta resumes from — the
// source, the normalized source, the pre-egd intermediate target (for
// mappings with egds), and the null-numbering position — roughly a
// constant small multiple of the solution's own footprint. Under
// WithRunInterner the retained state also keeps that run's interner
// clone alive. All of it is released when the Solution is dropped, so
// callers that never use RunDelta pay only while they hold the
// Solution; servers holding many live sessions should bound them (tdxd
// does, see its -max-sessions flag).
func WithRunInterner() Option { return func(c *config) { c.runInterner = true } }

// fingerprint renders the output-affecting option values into a stable
// string. Normalization strategy, egd strategy, and coalescing change
// the solution an exchange produces, so they are part of an exchange's
// identity. Parallelism and the interner policy are excluded — solutions
// are byte-identical at any worker count and under either interner
// policy — and trace hooks are debug-only.
func (c config) fingerprint() string {
	return fmt.Sprintf("norm=%s egd=%s coalesce=%t", c.norm, c.egd, c.coalesce)
}

// OptionsFingerprint renders the output-affecting options (normalization
// strategy, egd strategy, coalescing) into the stable string that
// Exchange.Fingerprint folds into its hash. Two option lists with equal
// fingerprints compile mappings into exchanges producing byte-identical
// solutions; options that cannot change solutions (WithParallelism,
// WithRunInterner, WithTrace) are excluded. Registries deduplicating
// compilation key their pre-compile lookups on this plus the mapping
// text.
func OptionsFingerprint(opts ...Option) string {
	return config{}.apply(opts).fingerprint()
}

// chaseWorkers resolves the configured parallelism to a concrete worker
// count: 0 or negative means GOMAXPROCS.
func (c config) chaseWorkers() int {
	if c.parallelism > 0 {
		return c.parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// chaseNorm translates the public strategy to the internal one.
func (c config) chaseNorm() normalize.Strategy {
	if c.norm == NormNaive {
		return normalize.StrategyNaive
	}
	return normalize.StrategySmart
}

// chaseEgd translates the public strategy to the internal one.
func (c config) chaseEgd() chase.EgdStrategy {
	if c.egd == EgdStepwise {
		return chase.EgdStepwise
	}
	return chase.EgdBatch
}

// chaseTrace adapts the public trace hook to the internal event type.
func (c config) chaseTrace() func(chase.Event) {
	if c.trace == nil {
		return nil
	}
	fn := c.trace
	return func(e chase.Event) {
		fn(Event{Kind: e.Kind.String(), Dep: e.Dep, Detail: e.Detail})
	}
}

// apply returns c with the given options applied on top.
func (c config) apply(opts []Option) config {
	for _, o := range opts {
		o(&c)
	}
	return c
}
