package tdx

import (
	"context"
	"strings"
	"sync"
	"testing"

	"repro/internal/workload"
)

// empSource builds a source instance comfortably above the parallel
// cutoff.
func empSource(seed int64) *Instance {
	return NewInstance(workload.Employment(workload.EmploymentConfig{
		Seed: seed, Persons: 80, JobsPerPerson: 4, SalaryCoverage: 0.7, Span: 150,
	}))
}

// relEpochs snapshots the mutation epoch of every relation of an
// instance.
func relEpochs(i *Instance) map[string]uint64 {
	out := make(map[string]uint64)
	st := i.Concrete().Store()
	for _, name := range st.Relations() {
		out[name] = st.Rel(name).Epoch()
	}
	return out
}

// TestFrozenInstanceSharedByConcurrentRuns is the freeze acceptance
// test: one frozen source instance is probed by 16 goroutines — full
// parallel Runs, queries, snapshots, renders — under -race, with every
// relation's epoch asserted unchanged, and a write to the frozen
// instance panics with a clear message.
func TestFrozenInstanceSharedByConcurrentRuns(t *testing.T) {
	ex := MustCompile(employmentMappingText)
	ctx := context.Background()
	src := empSource(1).Freeze()
	if !src.Frozen() {
		t.Fatal("Freeze did not mark the instance frozen")
	}
	before := relEpochs(src)

	ref, err := ex.Run(ctx, src, WithParallelism(2))
	if err != nil {
		t.Fatal(err)
	}
	want := ref.Facts()

	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			sol, err := ex.Run(ctx, src, WithParallelism(1+g%4))
			if err != nil {
				t.Errorf("goroutine %d: %v", g, err)
				return
			}
			if got := sol.Facts(); got != want {
				t.Errorf("goroutine %d: solution differs from reference", g)
			}
			if src.Snapshot(10).Len() == 0 {
				t.Errorf("goroutine %d: empty snapshot of the source", g)
			}
			if src.Facts() == "" || !src.IsComplete() {
				t.Errorf("goroutine %d: source render broke", g)
			}
			if _, err := ex.Query(ctx, sol, "q"); err != nil {
				t.Errorf("goroutine %d: query: %v", g, err)
			}
		}()
	}
	wg.Wait()

	after := relEpochs(src)
	for name, e := range before {
		if after[name] != e {
			t.Fatalf("relation %s epoch moved %d -> %d: a frozen instance was mutated", name, e, after[name])
		}
	}

	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("writing to a frozen instance did not panic")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "frozen") {
			t.Fatalf("frozen-write panic %v does not mention the freeze", r)
		}
	}()
	src.Concrete().Store().Insert("E", nil)
}

// TestSolutionConcurrentReads is the satellite regression test: 8
// goroutines read one Solution through every accessor — Facts, Table,
// JSON, String, Snapshot, Query, Diff — under -race. Before the freeze
// these raced on lazily decoded tuples.
func TestSolutionConcurrentReads(t *testing.T) {
	ex := MustCompile(employmentMappingText)
	ctx := context.Background()
	sol, err := ex.Run(ctx, empSource(2))
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Frozen() {
		t.Fatal("Run returned an unfrozen solution")
	}
	wantFacts, wantTable := sol.Facts(), sol.Table()
	wantJSON, err := sol.JSON()
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rep := 0; rep < 5; rep++ {
				if got := sol.Facts(); got != wantFacts {
					t.Errorf("goroutine %d: Facts diverged", g)
				}
				if got := sol.Table(); got != wantTable {
					t.Errorf("goroutine %d: Table diverged", g)
				}
				data, err := sol.JSON()
				if err != nil || string(data) != string(wantJSON) {
					t.Errorf("goroutine %d: JSON diverged (%v)", g, err)
				}
				snap, err := ex.Snapshot(ctx, sol, 20)
				if err != nil || snap.Len() == 0 {
					t.Errorf("goroutine %d: snapshot: %v", g, err)
				}
				if _, err := ex.Query(ctx, sol, "q"); err != nil {
					t.Errorf("goroutine %d: query: %v", g, err)
				}
				if d := sol.Diff(&sol.Instance); d.Len() != 0 {
					t.Errorf("goroutine %d: self-diff not empty", g)
				}
			}
		}()
	}
	wg.Wait()
}

// TestRunFreezesSource asserts the publish-on-Run lifecycle: a source
// handed to Run comes back frozen, further Runs on it succeed, and
// mutating it panics while a Clone stays mutable.
func TestRunFreezesSource(t *testing.T) {
	ex := MustCompile(employmentMappingText)
	ctx := context.Background()
	src := empSource(3)
	if src.Frozen() {
		t.Fatal("fresh instance already frozen")
	}
	if _, err := ex.Run(ctx, src); err != nil {
		t.Fatal(err)
	}
	if !src.Frozen() {
		t.Fatal("Run did not freeze its source")
	}
	if _, err := ex.Run(ctx, src); err != nil {
		t.Fatalf("second Run on the frozen source: %v", err)
	}
	cl := src.Clone()
	if cl.Frozen() {
		t.Fatal("clone of a frozen instance is frozen")
	}
}

// TestWithRunInterner asserts the bounded-growth contract: with per-run
// interners the exchange-wide interner stays at its compile-time size
// across runs, while output stays byte-identical to the shared-interner
// path.
func TestWithRunInterner(t *testing.T) {
	ex := MustCompile(employmentMappingText)
	ctx := context.Background()

	shared, err := ex.Run(ctx, empSource(4))
	if err != nil {
		t.Fatal(err)
	}
	grown := ex.in.Len()
	if grown <= ex.base.Len() {
		t.Fatalf("shared interner did not grow past the %d-value mapping domain", ex.base.Len())
	}

	ex2 := MustCompile(employmentMappingText, WithRunInterner())
	baseLen := ex2.in.Len()
	var lastFacts string
	for i := 0; i < 3; i++ {
		sol, err := ex2.Run(ctx, empSource(4))
		if err != nil {
			t.Fatal(err)
		}
		lastFacts = sol.Facts()
		if got := ex2.in.Len(); got != baseLen {
			t.Fatalf("run %d grew the exchange-wide interner %d -> %d despite WithRunInterner", i, baseLen, got)
		}
	}
	if lastFacts != shared.Facts() {
		t.Fatal("per-run interner changed the solution bytes")
	}
}
