// Package repro's root benchmark suite regenerates the measured
// experiments of EXPERIMENTS.md as testing.B benchmarks, one group per
// experiment id from DESIGN.md:
//
//	perf-norm   BenchmarkNormalizeSmart / BenchmarkNormalizeNaive
//	thm13       BenchmarkNormalizeWorstCase
//	perf-chase  BenchmarkCChase / BenchmarkSegmentChase / BenchmarkPointwiseChase
//	perf-query  BenchmarkNaiveEval / BenchmarkCertainAnswers
//	abl-egd     BenchmarkEgdBatch / BenchmarkEgdStepwise
//	abl-norm    BenchmarkChaseNormStrategy
//	(plus BenchmarkCoalesce and the homomorphism-search benchmarks in
//	internal/logic)
package tdx

import (
	"context"
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"

	"repro/internal/chase"
	"repro/internal/coreof"
	"repro/internal/fact"
	"repro/internal/instance"
	"repro/internal/interval"
	"repro/internal/jsonio"
	"repro/internal/logic"
	"repro/internal/normalize"
	"repro/internal/paperex"
	"repro/internal/query"
	"repro/internal/schema"
	"repro/internal/storage"
	"repro/internal/temporal"
	"repro/internal/value"
	"repro/internal/workload"
)

// employment returns a deterministic source instance of roughly n facts.
func employment(persons int) *instance.Concrete {
	return workload.Employment(workload.EmploymentConfig{
		Seed: 1, Persons: persons, JobsPerPerson: 4, SalaryCoverage: 0.7, Span: 200,
	})
}

func BenchmarkNormalizeSmart(b *testing.B) {
	m := paperex.EmploymentMapping()
	for _, persons := range []int{50, 200, 800} {
		ic := employment(persons)
		b.Run(fmt.Sprintf("facts=%d", ic.Len()), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				out := normalize.Smart(ic, m.TGDBodies())
				if out.Len() < ic.Len() {
					b.Fatal("normalization lost facts")
				}
			}
		})
	}
}

func BenchmarkNormalizeNaive(b *testing.B) {
	for _, persons := range []int{50, 200, 800} {
		ic := employment(persons)
		b.Run(fmt.Sprintf("facts=%d", ic.Len()), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				out := normalize.Naive(ic)
				if out.Len() < ic.Len() {
					b.Fatal("normalization lost facts")
				}
			}
		})
	}
}

func BenchmarkNormalizeWorstCase(b *testing.B) {
	// Theorem 13: the staircase forces O(n²) fragments.
	for _, n := range []int{16, 64, 256} {
		ic := workload.Staircase(n)
		phi := workload.StaircasePhi()
		b.Run(fmt.Sprintf("staircase=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				out := normalize.Smart(ic, phi)
				if out.Len() != n*n {
					b.Fatalf("fragments = %d, want %d", out.Len(), n*n)
				}
			}
		})
	}
}

func BenchmarkCChase(b *testing.B) {
	cases := []struct {
		name string
		ic   *instance.Concrete
		m    func() *chase.Options
	}{
		{"paper-figure4", paperex.Figure4(), nil},
		{"employment-200", employment(200), nil},
	}
	m := paperex.EmploymentMapping()
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := chase.Concrete(c.ic, m, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	b.Run("medical-200", func(b *testing.B) {
		mm := workload.MedicalMapping()
		ic := workload.Medical(workload.MedicalConfig{Seed: 42, Patients: 200, Span: 120})
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := chase.Concrete(ic, mm, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("taxi-150", func(b *testing.B) {
		tm := workload.TaxiMapping()
		ic := workload.Taxi(workload.TaxiConfig{Seed: 7, Drivers: 150, Cabs: 60, Span: 100})
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := chase.Concrete(ic, tm, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// chaseSpanBase is the fixed instance dilated across timeline spans.
func chaseSpanBase() *instance.Concrete {
	return workload.Employment(workload.EmploymentConfig{
		Seed: 3, Persons: 12, JobsPerPerson: 2, SalaryCoverage: 0.8, Span: 20,
	})
}

func BenchmarkSegmentChase(b *testing.B) {
	m := paperex.EmploymentMapping()
	for _, k := range []interval.Time{1, 16, 64} {
		ic := chase.Dilate(chaseSpanBase(), k)
		ia := ic.Abstract()
		b.Run(fmt.Sprintf("dilation=%d", k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := chase.Abstract(ia, m, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkPointwiseChase(b *testing.B) {
	// The literal per-time-point semantics of §3: linear in the span.
	m := paperex.EmploymentMapping()
	for _, k := range []interval.Time{1, 16, 64} {
		ic := chase.Dilate(chaseSpanBase(), k)
		horizon := interval.Time(0)
		for _, f := range ic.Facts() {
			if f.T.End != interval.Infinity && f.T.End > horizon {
				horizon = f.T.End
			}
		}
		b.Run(fmt.Sprintf("dilation=%d", k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := chase.Pointwise(ic, m, horizon, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkCChaseSpanIndependence(b *testing.B) {
	// Companion to BenchmarkPointwiseChase: the same dilations through the
	// c-chase — time should stay flat as the span grows.
	m := paperex.EmploymentMapping()
	for _, k := range []interval.Time{1, 16, 64} {
		ic := chase.Dilate(chaseSpanBase(), k)
		b.Run(fmt.Sprintf("dilation=%d", k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := chase.Concrete(ic, m, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func empQuery(b *testing.B) query.UCQ {
	u, err := query.NewUCQ("q", query.CQ{Name: "q", Head: []string{"n", "s"},
		Body: logic.Conjunction{logic.NewAtom("Emp", logic.Var("n"), logic.Var("c"), logic.Var("s"))}})
	if err != nil {
		b.Fatal(err)
	}
	return u
}

func BenchmarkNaiveEval(b *testing.B) {
	m := paperex.EmploymentMapping()
	u := empQuery(b)
	for _, persons := range []int{50, 200, 400} {
		jc, _, err := chase.Concrete(employment(persons), m, nil)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("solution=%d", jc.Len()), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if query.NaiveEvalConcrete(u, jc).Len() == 0 {
					b.Fatal("no answers")
				}
			}
		})
	}
}

func BenchmarkCertainAnswers(b *testing.B) {
	// End to end: chase + evaluate.
	m := paperex.EmploymentMapping()
	u := empQuery(b)
	ic := employment(100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := query.CertainAnswers(u, ic, m, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEgdBatch(b *testing.B) {
	for _, cfg := range []struct{ groups, k int }{{20, 4}, {40, 8}} {
		m := workload.EgdStressMapping(cfg.k)
		ic := workload.EgdStress(cfg.groups, cfg.k)
		b.Run(fmt.Sprintf("groups=%d/k=%d", cfg.groups, cfg.k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := chase.Concrete(ic, m, &chase.Options{Egd: chase.EgdBatch}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkEgdStepwise(b *testing.B) {
	for _, cfg := range []struct{ groups, k int }{{20, 4}, {40, 8}} {
		m := workload.EgdStressMapping(cfg.k)
		ic := workload.EgdStress(cfg.groups, cfg.k)
		b.Run(fmt.Sprintf("groups=%d/k=%d", cfg.groups, cfg.k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := chase.Concrete(ic, m, &chase.Options{Egd: chase.EgdStepwise}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkChaseNormStrategy(b *testing.B) {
	m := paperex.EmploymentMapping()
	ic := employment(100)
	for _, strat := range []normalize.Strategy{normalize.StrategySmart, normalize.StrategyNaive} {
		b.Run(strat.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := chase.Concrete(ic, m, &chase.Options{Norm: strat}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkCoalesce(b *testing.B) {
	// Coalescing a heavily fragmented instance back to canonical form.
	ic := normalize.Naive(employment(400))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ic.Coalesce().Len() == 0 {
			b.Fatal("coalesce lost everything")
		}
	}
}

func BenchmarkSemanticMap(b *testing.B) {
	// ⟦·⟧: building the segmented abstract view.
	ic := employment(200)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(ic.Abstract().Segments()) == 0 {
			b.Fatal("no segments")
		}
	}
}

func BenchmarkCoreOf(b *testing.B) {
	// Core computation over a redundant chase result (no egds).
	m := paperex.EmploymentMapping()
	m.EGDs = nil
	jc, _, err := chase.Concrete(employment(60), m, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if coreof.Of(jc).Len() == 0 {
			b.Fatal("empty core")
		}
	}
}

func BenchmarkTemporalChase(b *testing.B) {
	src := schema.MustNew(schema.MustRelation("PhDgrad", "name"))
	tgt := schema.MustNew(schema.MustRelation("PhDCan", "name", "adviser", "topic"))
	m := &temporal.Mapping{Source: src, Target: tgt, TGDs: []temporal.TGD{{
		Name: "was-candidate",
		Body: logic.Conjunction{logic.NewAtom("PhDgrad", logic.Var("n"))},
		Head: []temporal.HeadAtom{{
			Ref:  temporal.SometimePast,
			Atom: logic.NewAtom("PhDCan", logic.Var("n"), logic.Var("adv"), logic.Var("top")),
		}},
	}}}
	ic := instance.NewConcrete(src)
	for i := 0; i < 200; i++ {
		s := interval.Time(5 + i%40)
		ic.MustInsert(fact.NewC("PhDgrad", interval.MustNew(s, s+3), paperex.C(fmt.Sprintf("p%d", i))))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := temporal.Chase(ic, m, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCChaseParallel measures the partitioned parallel concrete
// chase on the heaviest scenario (taxi-150) across worker counts.
// workers=1 is the sequential baseline; output is byte-identical at
// every count, so the sub-benchmarks differ only in wall time. On a
// single-CPU host the worker counts collapse to the same core and the
// comparison only shows the fan-out overhead.
func BenchmarkCChaseParallel(b *testing.B) {
	tm := workload.TaxiMapping()
	ic := workload.Taxi(workload.TaxiConfig{Seed: 7, Drivers: 150, Cabs: 60, Span: 100})
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := chase.Concrete(ic, tm, &chase.Options{Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEgdPhaseParallel isolates the sharded egd phase: the
// tgd-phase target of the taxi scenario is built once, then each
// iteration runs only the egd phase (renormalization + merge-candidate
// scans + rewrites) at the given worker count. EgdPhase never mutates
// its input, so iterations are independent. workers=1 is the sequential
// baseline; on a single-CPU host the comparison shows only the
// freeze/fan-out overhead.
func BenchmarkEgdPhaseParallel(b *testing.B) {
	m := workload.TaxiMapping()
	ic := workload.Taxi(workload.TaxiConfig{Seed: 7, Drivers: 150, Cabs: 60, Span: 100})
	tgdOnly := *m
	tgdOnly.EGDs = nil
	tgt, _, err := chase.Concrete(ic, &tgdOnly, nil)
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := chase.EgdPhase(tgt, m, &chase.Options{Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkForEgdPhase isolates the egd-round renormalization alone —
// the dominant cost inside BenchmarkEgdPhaseParallel — over the same
// tgd-phase target.
func BenchmarkForEgdPhase(b *testing.B) {
	m := workload.TaxiMapping()
	ic := workload.Taxi(workload.TaxiConfig{Seed: 7, Drivers: 150, Cabs: 60, Span: 100})
	tgdOnly := *m
	tgdOnly.EGDs = nil
	tgt, _, err := chase.Concrete(ic, &tgdOnly, nil)
	if err != nil {
		b.Fatal(err)
	}
	phis := m.EGDBodies()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if normalize.ForEgdPhase(tgt.Clone(), phis, normalize.StrategySmart).Len() == 0 {
			b.Fatal("renormalization lost everything")
		}
	}
}

func BenchmarkAbstractChaseParallel(b *testing.B) {
	m := paperex.EmploymentMapping()
	ic := employment(150)
	ia := ic.Abstract()
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := chase.AbstractParallel(ia, m, nil, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkParallelInternerSharding stresses the shared-nothing interner
// shards of AbstractParallel: a segment-heavy abstract instance whose
// segments draw from one constant pool, so each worker's private
// interner amortizes constant interning across its segments instead of
// rebuilding a per-segment interner (and never touches another worker's
// lock). Compare allocs/op across worker counts; on multi-core hosts
// wall time scales with workers as well.
func BenchmarkParallelInternerSharding(b *testing.B) {
	m := paperex.EmploymentMapping()
	ic := workload.Employment(workload.EmploymentConfig{
		Seed: 5, Persons: 40, JobsPerPerson: 3, SalaryCoverage: 0.8, Span: 400,
	})
	ia := ic.Abstract()
	b.Logf("segments=%d", len(ia.Segments()))
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := chase.AbstractParallel(ia, m, nil, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkJSONRoundTrip(b *testing.B) {
	jc, _, err := chase.Concrete(employment(100), paperex.EmploymentMapping(), nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data, err := jsonio.Encode(jc)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := jsonio.Decode(data); err != nil {
			b.Fatal(err)
		}
	}
}

// tupleCorpus builds a deterministic mixed-kind tuple corpus (constants,
// annotated nulls, intervals) with roughly half duplicates, exercising the
// storage dedup path the way chase inserts do.
func tupleCorpus(n int) [][]value.Value {
	rng := rand.New(rand.NewSource(11))
	out := make([][]value.Value, 0, n)
	for i := 0; i < n; i++ {
		s := interval.Time(rng.Intn(50))
		iv := interval.MustNew(s, s+1+interval.Time(rng.Intn(20)))
		tup := []value.Value{
			value.NewConst(fmt.Sprintf("p%d", rng.Intn(n/4))),
			value.NewConst(fmt.Sprintf("c%d", rng.Intn(16))),
			value.NewAnnNull(uint64(rng.Intn(n/8)+1), iv),
			value.NewInterval(iv),
		}
		out = append(out, tup)
	}
	return out
}

// BenchmarkStorageInsert measures the tuple insert/dedup hot path
// (perf-intern): time and allocations per corpus insertion.
func BenchmarkStorageInsert(b *testing.B) {
	corpus := tupleCorpus(4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := storage.NewStore()
		for _, tup := range corpus {
			st.Insert("R", tup)
		}
	}
}

// BenchmarkHomomorphismSearch measures raw homomorphism enumeration over
// a normalized instance (perf-intern): the index-nested-loop engine.
func BenchmarkHomomorphismSearch(b *testing.B) {
	body := paperex.Sigma2Body()
	norm := normalize.Smart(employment(200), []logic.Conjunction{body})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		logic.ForEach(norm.Store(), body, nil, func(logic.Match) bool { n++; return true })
		if n == 0 {
			b.Fatal("no homomorphisms")
		}
	}
}

// BenchmarkEgdMergeLoop measures the egd phase alone (perf-intern): the
// violating target is prebuilt once, so each iteration is normalize +
// match + union-find merge + rewrite.
func BenchmarkEgdMergeLoop(b *testing.B) {
	m := workload.EgdStressMapping(8)
	tgdOnly := *m
	tgdOnly.EGDs = nil
	tgt, _, err := chase.Concrete(workload.EgdStress(40, 8), &tgdOnly, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := chase.EgdPhase(tgt, m, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDiff(b *testing.B) {
	a := employment(200)
	c := employment(210)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		instance.Diff(a, c)
	}
}

// employmentMappingText is the paper's employment mapping in TDX text
// form — what a client of the public API would ship.
const employmentMappingText = `
source schema {
    E(name, company)
    S(name, salary)
}
target schema {
    Emp(name, company, salary)
}
tgd sigma1: E(n, c) -> exists s . Emp(n, c, s)
tgd sigma2: E(n, c), S(n, s) -> Emp(n, c, s)
egd salary-key: Emp(n, c, s), Emp(n, c, s2) -> s = s2
query q(n, s) :- Emp(n, c, s)
`

// BenchmarkExchangeReuse measures the tentpole contract of the public
// API on employment-200: one tdx.Compile serving many Run calls must
// beat re-parsing and re-compiling the mapping for every run.
func BenchmarkExchangeReuse(b *testing.B) {
	ic := employment(200)
	ctx := context.Background()
	b.Run("compile-once", func(b *testing.B) {
		ex, err := Compile(employmentMappingText)
		if err != nil {
			b.Fatal(err)
		}
		src := NewInstance(ic)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := ex.Run(ctx, src); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("per-run-compile", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ex, err := Compile(employmentMappingText)
			if err != nil {
				b.Fatal(err)
			}
			src := NewInstance(ic)
			if _, err := ex.Run(ctx, src); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSnapshotLoad measures the persistence tentpole on
// employment workloads: loading a materialized solution from its
// columnar snapshot (mmap open + frozen-store adoption + table-order
// re-interning) against the cold path a snapshot-less client pays —
// decoding the solution's JSON document, re-interning every value
// through the hash-consing insert path, and freezing the result. Both
// sides end in the same state (a frozen, fully indexed store, the only
// form tdxd pins and shares); the snapshot load is the warm-start cost
// of tdxd and of tdx chase -load, and the target is ≥3x over the cold
// decode.
func BenchmarkSnapshotLoad(b *testing.B) {
	ctx := context.Background()
	ex, err := Compile(employmentMappingText)
	if err != nil {
		b.Fatal(err)
	}
	for _, persons := range []int{200, 800} {
		ic := employment(persons)
		sol, err := ex.Run(ctx, NewInstance(ic))
		if err != nil {
			b.Fatal(err)
		}
		path := filepath.Join(b.TempDir(), "solution.snap")
		if err := sol.WriteSnapshotFile(path); err != nil {
			b.Fatal(err)
		}
		data, err := jsonio.Encode(sol.Concrete())
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("snapshot/facts=%d", sol.Len()), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				loaded, err := ex.LoadSolution(path)
				if err != nil {
					b.Fatal(err)
				}
				if loaded.Len() != sol.Len() {
					b.Fatalf("loaded %d facts, want %d", loaded.Len(), sol.Len())
				}
			}
		})
		b.Run(fmt.Sprintf("cold-json/facts=%d", sol.Len()), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				jc, err := jsonio.Decode(data)
				if err != nil {
					b.Fatal(err)
				}
				if jc.Len() != sol.Len() {
					b.Fatalf("decoded %d facts, want %d", jc.Len(), sol.Len())
				}
				jc.Freeze()
			}
		})
	}
}

// BenchmarkRunDelta measures the incremental exchange against its
// baseline: an employment base of a few hundred facts chased once, then
// a k-fact new-hire delta applied either via RunDelta (the semi-naive
// fast path — the benchmark fails if it silently falls back) or by
// re-running the whole exchange over the combined source.
func BenchmarkRunDelta(b *testing.B) {
	ctx := context.Background()
	m := paperex.EmploymentMapping()
	ex, err := FromMapping(m)
	if err != nil {
		b.Fatal(err)
	}
	base := employment(200)
	if base.Len() < 200 {
		b.Fatalf("base instance too small: %d facts", base.Len())
	}
	baseSol, err := ex.Run(ctx, NewInstance(base))
	if err != nil {
		b.Fatal(err)
	}
	newHire := func(ic *instance.Concrete, i int) {
		name := fmt.Sprintf("newhire%d", i)
		ic.MustInsert(fact.NewC("E", interval.MustNew(40, 60), paperex.C(name), paperex.C("AcmeCorp")))
		ic.MustInsert(fact.NewC("S", interval.MustNew(40, 60), paperex.C(name), paperex.C("17k")))
	}
	for _, k := range []int{1, 8, 64} {
		deltaIC := instance.NewConcreteWith(m.Source, base.Interner())
		combined := instance.NewConcreteWith(m.Source, base.Interner())
		base.EachFact(func(f fact.CFact) bool { combined.MustInsert(f); return true })
		for i := 0; i < k; i++ {
			newHire(deltaIC, i)
			newHire(combined, i)
		}
		delta, full := NewInstance(deltaIC), NewInstance(combined)
		b.Run(fmt.Sprintf("incremental/k=%d", k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sol, _, err := ex.RunDelta(ctx, baseSol, delta)
				if err != nil {
					b.Fatal(err)
				}
				if sol.Stats().FallbackFullChase {
					b.Fatal("delta run fell back to a full re-chase")
				}
			}
		})
		b.Run(fmt.Sprintf("full/k=%d", k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := ex.Run(ctx, full); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
