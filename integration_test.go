package repro

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/chase"
	"repro/internal/core"
	"repro/internal/coreof"
	"repro/internal/instance"
	"repro/internal/jsonio"
	"repro/internal/parser"
	"repro/internal/query"
	"repro/internal/temporal"
	"repro/internal/verify"
	"repro/internal/workload"
)

// readTestdata loads one of the shipped .tdx/.facts files.
func readTestdata(t *testing.T, name string) string {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestEndToEndPaperExample drives the full pipeline from the shipped
// files: parse → exchange → verify → core → query → JSON round trip.
func TestEndToEndPaperExample(t *testing.T) {
	eng, queries, err := core.FromMappingSource(readTestdata(t, "employment.tdx"))
	if err != nil {
		t.Fatal(err)
	}
	ic, err := core.LoadFacts(readTestdata(t, "employment.facts"), eng.Mapping().Source)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Exchange(ic)
	if err != nil {
		t.Fatal(err)
	}
	if res.Solution.Len() != 5 {
		t.Fatalf("solution:\n%s", res.Solution)
	}
	// Solution is a solution, universal vs the abstract chase, already a
	// core, and survives a JSON round trip.
	if ok, why := verify.IsSolution(ic.Abstract(), res.Solution.Abstract(), eng.Mapping()); !ok {
		t.Fatal(why)
	}
	ja, err := eng.ExchangeAbstract(ic)
	if err != nil {
		t.Fatal(err)
	}
	if !verify.HomEquivalent(res.Solution.Abstract(), ja) {
		t.Fatal("Cor. 20 violated end to end")
	}
	if !coreof.IsCore(res.Solution) {
		t.Fatal("Figure 9 should be a core")
	}
	data, err := jsonio.Encode(res.Solution)
	if err != nil {
		t.Fatal(err)
	}
	back, err := jsonio.Decode(data)
	if err != nil || !back.Equal(res.Solution) {
		t.Fatalf("JSON round trip: %v", err)
	}
	ans, err := eng.AnswerOn(queries[0], res.Solution)
	if err != nil || ans.Len() != 2 {
		t.Fatalf("answers: %v\n%s", err, ans)
	}
}

// TestEndToEndWorkloads runs the three domain workloads through the full
// pipeline and checks solution-hood on each.
func TestEndToEndWorkloads(t *testing.T) {
	type wl struct {
		name string
		run  func(t *testing.T)
	}
	for _, w := range []wl{
		{"employment", func(t *testing.T) {
			m := workload.EgdStressMapping(3)
			ic := workload.EgdStress(10, 3)
			jc, _, err := chase.Concrete(ic, m, nil)
			if err != nil {
				t.Fatal(err)
			}
			if ok, why := verify.IsSolution(ic.Abstract(), jc.Abstract(), m); !ok {
				t.Fatal(why)
			}
		}},
		{"medical", func(t *testing.T) {
			m := workload.MedicalMapping()
			ic := workload.Medical(workload.MedicalConfig{Seed: 11, Patients: 40, Span: 60})
			jc, _, err := chase.Concrete(ic, m, nil)
			if err != nil {
				t.Fatal(err)
			}
			cq, err := parser.ParseQueryLine("query q(p, d) :- Chart(p, w, d)")
			if err != nil {
				t.Fatal(err)
			}
			u, err := query.NewUCQ("q", cq)
			if err != nil {
				t.Fatal(err)
			}
			if query.NaiveEvalConcrete(u, jc) == nil {
				t.Fatal("no answers")
			}
		}},
		{"taxi", func(t *testing.T) {
			m := workload.TaxiMapping()
			ic := workload.Taxi(workload.TaxiConfig{Seed: 13, Drivers: 40, Cabs: 15, Span: 50})
			jc, _, err := chase.Concrete(ic, m, nil)
			if err != nil {
				t.Fatal(err)
			}
			if jc.Len() == 0 {
				t.Fatal("no trips")
			}
		}},
	} {
		t.Run(w.name, w.run)
	}
}

// TestEndToEndTemporal drives the shipped temporal mapping through the
// CLI-level pipeline.
func TestEndToEndTemporal(t *testing.T) {
	f, err := parser.ParseMapping(readTestdata(t, "phd.tdx"))
	if err != nil {
		t.Fatal(err)
	}
	if f.Temporal == nil {
		t.Fatal("phd.tdx should parse as a temporal mapping")
	}
	ic, err := parser.ParseFacts(readTestdata(t, "phd.facts"), f.Temporal.Source)
	if err != nil {
		t.Fatal(err)
	}
	jc, _, err := temporal.Chase(ic, f.Temporal, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ok, why := temporal.Satisfies(ic, jc, f.Temporal); !ok {
		t.Fatal(why)
	}
	if jc.Len() != 2 {
		t.Fatalf("result:\n%s", jc)
	}
}

// TestFailurePipeline checks unsatisfiable inputs fail identically at
// every level: engine, queries, and both chases.
func TestFailurePipeline(t *testing.T) {
	eng, queries, err := core.FromMappingSource(readTestdata(t, "employment.tdx"))
	if err != nil {
		t.Fatal(err)
	}
	bad, err := core.LoadFacts(readTestdata(t, "employment.facts")+"\nS(Ada, 99k) @ [2013, 2014)\n", eng.Mapping().Source)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Exchange(bad); !errors.Is(err, chase.ErrNoSolution) {
		t.Fatalf("Exchange: %v", err)
	}
	if _, err := eng.Answer(queries[0], bad); !errors.Is(err, chase.ErrNoSolution) {
		t.Fatalf("Answer: %v", err)
	}
	if _, _, err := chase.Abstract(bad.Abstract(), eng.Mapping(), nil); !errors.Is(err, chase.ErrNoSolution) {
		t.Fatalf("Abstract: %v", err)
	}
	if _, _, err := chase.AbstractParallel(bad.Abstract(), eng.Mapping(), nil, 4); !errors.Is(err, chase.ErrNoSolution) {
		t.Fatalf("AbstractParallel: %v", err)
	}
}

// TestDiffAcrossChases: the smart- and naive-strategy solutions are
// semantically identical instances up to null naming; their constant
// parts have empty semantic difference.
func TestDiffAcrossChases(t *testing.T) {
	eng, _, err := core.FromMappingSource(readTestdata(t, "employment.tdx"))
	if err != nil {
		t.Fatal(err)
	}
	ic, err := core.LoadFacts(readTestdata(t, "employment.facts"), eng.Mapping().Source)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Exchange(ic)
	if err != nil {
		t.Fatal(err)
	}
	constOnly := func(c *instance.Concrete) *instance.Concrete {
		out := instance.NewConcrete(c.Schema())
		for _, f := range c.Facts() {
			if !f.HasNulls() {
				out.MustInsert(f)
			}
		}
		return out
	}
	a := constOnly(res.Solution)
	if !instance.SameSemantics(a, a.Coalesce()) {
		t.Fatal("coalescing changed semantics")
	}
	if d := instance.Diff(a, res.Solution); d.Len() != 0 {
		t.Fatalf("constants not contained in solution:\n%s", d)
	}
}
