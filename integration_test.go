package tdx

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/coreof"
	"repro/internal/instance"
	"repro/internal/temporal"
	"repro/internal/verify"
	"repro/internal/workload"
)

// readTestdata loads one of the shipped .tdx/.facts files.
func readTestdata(t *testing.T, name string) string {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// compileTestdata compiles a shipped mapping file.
func compileTestdata(t *testing.T, name string, opts ...Option) *Exchange {
	t.Helper()
	ex, err := Compile(readTestdata(t, name), opts...)
	if err != nil {
		t.Fatal(err)
	}
	return ex
}

// TestEndToEndPaperExample drives the full pipeline through the public
// API from the shipped files: compile → parse → run → verify → core →
// query → JSON round trip.
func TestEndToEndPaperExample(t *testing.T) {
	ctx := context.Background()
	ex := compileTestdata(t, "employment.tdx")
	src, err := ex.ParseSource(readTestdata(t, "employment.facts"))
	if err != nil {
		t.Fatal(err)
	}
	sol, err := ex.Run(ctx, src)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Len() != 5 {
		t.Fatalf("solution:\n%s", sol)
	}
	// Solution is a solution, universal vs the abstract chase, already a
	// core, and survives a JSON round trip.
	if ok, why := verify.IsSolution(src.Concrete().Abstract(), sol.Concrete().Abstract(), ex.Mapping()); !ok {
		t.Fatal(why)
	}
	ja, _, err := ex.RunAbstract(ctx, src)
	if err != nil {
		t.Fatal(err)
	}
	if !verify.HomEquivalent(sol.Concrete().Abstract(), ja) {
		t.Fatal("Cor. 20 violated end to end")
	}
	if !coreof.IsCore(sol.Concrete()) {
		t.Fatal("Figure 9 should be a core")
	}
	if core := sol.Core(); core.Len() != sol.Len() {
		t.Fatalf("core shrank an already-core solution: %d → %d", sol.Len(), core.Len())
	}
	data, err := sol.JSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeJSON(data)
	if err != nil || !back.Equal(&sol.Instance) {
		t.Fatalf("JSON round trip: %v", err)
	}
	if got := ex.Queries(); len(got) != 1 || got[0] != "q" {
		t.Fatalf("declared queries = %v", got)
	}
	ans, err := ex.Query(ctx, sol, "q")
	if err != nil || ans.Len() != 2 {
		t.Fatalf("answers: %v\n%s", err, ans)
	}
	// The end-to-end Answer path agrees with Run + Query.
	direct, err := ex.Answer(ctx, src, "q")
	if err != nil || !direct.Equal(ans) {
		t.Fatalf("Answer disagrees with Run+Query: %v\n%s", err, direct)
	}
	// Snapshot of the solution at a covered time point.
	snap, err := ex.Snapshot(ctx, sol, 2015)
	if err != nil || snap.Len() == 0 {
		t.Fatalf("snapshot: %v / %s", err, snap)
	}
}

// TestEndToEndWorkloads runs the three domain workloads through the
// public API and checks solution-hood on each.
func TestEndToEndWorkloads(t *testing.T) {
	ctx := context.Background()
	type wl struct {
		name string
		run  func(t *testing.T)
	}
	for _, w := range []wl{
		{"employment", func(t *testing.T) {
			ex, err := FromMapping(workload.EgdStressMapping(3))
			if err != nil {
				t.Fatal(err)
			}
			src := NewInstance(workload.EgdStress(10, 3))
			sol, err := ex.Run(ctx, src)
			if err != nil {
				t.Fatal(err)
			}
			if ok, why := verify.IsSolution(src.Concrete().Abstract(), sol.Concrete().Abstract(), ex.Mapping()); !ok {
				t.Fatal(why)
			}
		}},
		{"medical", func(t *testing.T) {
			ex, err := FromMapping(workload.MedicalMapping())
			if err != nil {
				t.Fatal(err)
			}
			src := NewInstance(workload.Medical(workload.MedicalConfig{Seed: 11, Patients: 40, Span: 60}))
			sol, err := ex.Run(ctx, src)
			if err != nil {
				t.Fatal(err)
			}
			ans, err := ex.Query(ctx, sol, "query q(p, d) :- Chart(p, w, d)")
			if err != nil {
				t.Fatal(err)
			}
			if ans.Len() == 0 {
				t.Fatal("no answers")
			}
		}},
		{"taxi", func(t *testing.T) {
			ex, err := FromMapping(workload.TaxiMapping())
			if err != nil {
				t.Fatal(err)
			}
			src := NewInstance(workload.Taxi(workload.TaxiConfig{Seed: 13, Drivers: 40, Cabs: 15, Span: 50}))
			sol, err := ex.Run(ctx, src)
			if err != nil {
				t.Fatal(err)
			}
			if sol.Len() == 0 {
				t.Fatal("no trips")
			}
		}},
	} {
		t.Run(w.name, w.run)
	}
}

// TestEndToEndTemporal drives the shipped §7 modal mapping through the
// public API: Compile detects the modal markers and Run dispatches to
// the temporal chase transparently.
func TestEndToEndTemporal(t *testing.T) {
	ctx := context.Background()
	ex := compileTestdata(t, "phd.tdx")
	if !ex.Info().Temporal {
		t.Fatal("phd.tdx should compile as a temporal mapping")
	}
	if ex.Mapping() != nil || ex.Temporal() == nil {
		t.Fatal("temporal exchange should expose the modal mapping only")
	}
	src, err := ex.ParseSource(readTestdata(t, "phd.facts"))
	if err != nil {
		t.Fatal(err)
	}
	sol, err := ex.Run(ctx, src)
	if err != nil {
		t.Fatal(err)
	}
	if ok, why := temporal.Satisfies(src.Concrete(), sol.Concrete(), ex.Temporal()); !ok {
		t.Fatal(why)
	}
	if sol.Len() != 2 {
		t.Fatalf("result:\n%s", sol)
	}
	if _, _, err := ex.RunAbstract(ctx, src); err == nil {
		t.Fatal("RunAbstract should refuse temporal mappings")
	}
}

// TestFailurePipeline checks unsatisfiable inputs fail identically at
// every level of the public API: Run, Answer, and the abstract reference.
func TestFailurePipeline(t *testing.T) {
	ctx := context.Background()
	ex := compileTestdata(t, "employment.tdx")
	bad, err := ex.ParseSource(readTestdata(t, "employment.facts") + "\nS(Ada, 99k) @ [2013, 2014)\n")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ex.Run(ctx, bad); !errors.Is(err, ErrNoSolution) {
		t.Fatalf("Run: %v", err)
	}
	if _, err := ex.Answer(ctx, bad, "q"); !errors.Is(err, ErrNoSolution) {
		t.Fatalf("Answer: %v", err)
	}
	if _, _, err := ex.RunAbstract(ctx, bad); !errors.Is(err, ErrNoSolution) {
		t.Fatalf("RunAbstract: %v", err)
	}
	if _, _, err := ex.RunAbstract(ctx, bad, WithParallelism(4)); !errors.Is(err, ErrNoSolution) {
		t.Fatalf("RunAbstract parallel: %v", err)
	}
}

// TestDiffAcrossChases: coalescing preserves semantics and the constant
// part of the solution is contained in it, via the public diff surface.
func TestDiffAcrossChases(t *testing.T) {
	ctx := context.Background()
	ex := compileTestdata(t, "employment.tdx")
	src, err := ex.ParseSource(readTestdata(t, "employment.facts"))
	if err != nil {
		t.Fatal(err)
	}
	sol, err := ex.Run(ctx, src)
	if err != nil {
		t.Fatal(err)
	}
	constOnly := func(c *Instance) *Instance {
		out := instance.NewConcrete(c.Concrete().Schema())
		for _, f := range c.Concrete().Facts() {
			if !f.HasNulls() {
				out.MustInsert(f)
			}
		}
		return NewInstance(out)
	}
	a := constOnly(&sol.Instance)
	if !instance.SameSemantics(a.Concrete(), a.Coalesce().Concrete()) {
		t.Fatal("coalescing changed semantics")
	}
	if d := a.Diff(&sol.Instance); d.Len() != 0 {
		t.Fatalf("constants not contained in solution:\n%s", d)
	}
}

// TestNormStrategiesAgree runs the exchange under both normalization
// strategies through per-run option overrides and checks the certain
// answers coincide.
func TestNormStrategiesAgree(t *testing.T) {
	ctx := context.Background()
	ex := compileTestdata(t, "employment.tdx")
	src, err := ex.ParseSource(readTestdata(t, "employment.facts"))
	if err != nil {
		t.Fatal(err)
	}
	smart, err := ex.Run(ctx, src, WithNorm(NormSmart), WithCoalesce(true))
	if err != nil {
		t.Fatal(err)
	}
	naive, err := ex.Run(ctx, src.Clone(), WithNorm(NormNaive), WithCoalesce(true))
	if err != nil {
		t.Fatal(err)
	}
	qa, err := ex.Query(ctx, smart, "q")
	if err != nil {
		t.Fatal(err)
	}
	qb, err := ex.Query(ctx, naive, "q")
	if err != nil {
		t.Fatal(err)
	}
	if !qa.Equal(qb) {
		t.Fatalf("certain answers differ across normalization strategies:\n%s\nvs\n%s", qa, qb)
	}
}
