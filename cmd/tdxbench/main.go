// Command tdxbench regenerates every figure of the paper and runs the
// measured experiments recorded in EXPERIMENTS.md. Each experiment is
// addressed by the id used in DESIGN.md's experiment index:
//
//	tdxbench -exp fig5        # one experiment
//	tdxbench -exp all         # everything (figures + checks + sweeps)
//	tdxbench -list            # show available experiments
//
// Figures print the same rows as the paper; theorem checks run
// randomized validation and report pass counts; perf-* sweeps print
// timing/size tables.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
)

// experiment is one addressable unit of the harness.
type experiment struct {
	id    string
	title string
	run   func(w io.Writer) error
}

var experiments = []experiment{
	{"fig1", "Figure 1: abstract view of the employment instance", runFig1},
	{"fig2", "Figure 2 / Example 2: homomorphism asymmetry from shared nulls", runFig2},
	{"fig3", "Figure 3 / Example 5: abstract chase result per snapshot", runFig3},
	{"fig4", "Figure 4: concrete source instance Ic", runFig4},
	{"fig5", "Figure 5 / Example 8: Algorithm 1 normalization w.r.t. lhs(σ2+)", runFig5},
	{"fig6", "Figure 6: naïve normalization (over-fragmentation)", runFig6},
	{"fig8", "Figures 7-8 / Example 14: Algorithm 1 on the R/P/S instance", runFig8},
	{"fig9", "Figure 9 / Example 17: c-chase result with interval-annotated nulls", runFig9},
	{"fig10", "Figure 10 / Corollary 20: commutativity of c-chase and abstract chase", runFig10},
	{"thm11", "Theorem 11: normalized ⟺ empty intersection property", runThm11},
	{"thm13", "Theorem 13: worst-case O(n²) fragmentation sweep", runThm13},
	{"thm21", "Theorem 21 / Corollary 22: naïve evaluation agreement", runThm21},
	{"perf-norm", "normalization: smart (Algorithm 1) vs naïve — time and output size", runPerfNorm},
	{"perf-chase", "chase cost vs timeline span: c-chase / segment chase / pointwise chase", runPerfChase},
	{"perf-query", "naïve query evaluation scaling", runPerfQuery},
	{"abl-egd", "ablation: batch (union-find) vs stepwise egd application", runAblEgd},
	{"abl-norm-strategy", "ablation: chase end-to-end under smart vs naive normalization", runAblNormStrategy},
	{"ext-temporal", "§7 extension: modal-operator mappings (PhD example, ◆)", runExtTemporal},
	{"ext-core", "§7 extension: snapshot-wise core of a materialized solution", runExtCore},
}

func main() {
	exp := flag.String("exp", "", "experiment id (see -list), or 'all'")
	list := flag.Bool("list", false, "list experiments")
	flag.Parse()
	if *list || *exp == "" {
		ids := make([]string, 0, len(experiments))
		for _, e := range experiments {
			ids = append(ids, fmt.Sprintf("  %-18s %s", e.id, e.title))
		}
		sort.Strings(ids)
		fmt.Println("experiments:")
		for _, l := range ids {
			fmt.Println(l)
		}
		fmt.Println("  all                run everything")
		if *exp == "" && !*list {
			os.Exit(2)
		}
		return
	}
	if *exp == "all" {
		for _, e := range experiments {
			fmt.Printf("==== %s — %s ====\n", e.id, e.title)
			if err := e.run(os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "tdxbench: %s: %v\n", e.id, err)
				os.Exit(1)
			}
			fmt.Println()
		}
		return
	}
	for _, e := range experiments {
		if e.id == *exp {
			fmt.Printf("==== %s — %s ====\n", e.id, e.title)
			if err := e.run(os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "tdxbench: %v\n", err)
				os.Exit(1)
			}
			return
		}
	}
	fmt.Fprintf(os.Stderr, "tdxbench: unknown experiment %q (use -list)\n", *exp)
	os.Exit(2)
}
