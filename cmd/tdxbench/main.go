// Command tdxbench regenerates every figure of the paper and runs the
// measured experiments recorded in EXPERIMENTS.md. Each experiment is
// addressed by the id used in DESIGN.md's experiment index:
//
//	tdxbench -exp fig5        # one experiment
//	tdxbench -exp all         # everything (figures + checks + sweeps)
//	tdxbench -list            # show available experiments
//
// Figures print the same rows as the paper; theorem checks run
// randomized validation and report pass counts; perf-* sweeps print
// timing/size tables. -cpuprofile and -memprofile write pprof profiles
// covering the selected experiments, for digging into the perf-* sweeps
// with go tool pprof.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
)

// experiment is one addressable unit of the harness.
type experiment struct {
	id    string
	title string
	run   func(w io.Writer) error
}

var experiments = []experiment{
	{"fig1", "Figure 1: abstract view of the employment instance", runFig1},
	{"fig2", "Figure 2 / Example 2: homomorphism asymmetry from shared nulls", runFig2},
	{"fig3", "Figure 3 / Example 5: abstract chase result per snapshot", runFig3},
	{"fig4", "Figure 4: concrete source instance Ic", runFig4},
	{"fig5", "Figure 5 / Example 8: Algorithm 1 normalization w.r.t. lhs(σ2+)", runFig5},
	{"fig6", "Figure 6: naïve normalization (over-fragmentation)", runFig6},
	{"fig8", "Figures 7-8 / Example 14: Algorithm 1 on the R/P/S instance", runFig8},
	{"fig9", "Figure 9 / Example 17: c-chase result with interval-annotated nulls", runFig9},
	{"fig10", "Figure 10 / Corollary 20: commutativity of c-chase and abstract chase", runFig10},
	{"thm11", "Theorem 11: normalized ⟺ empty intersection property", runThm11},
	{"thm13", "Theorem 13: worst-case O(n²) fragmentation sweep", runThm13},
	{"thm21", "Theorem 21 / Corollary 22: naïve evaluation agreement", runThm21},
	{"perf-norm", "normalization: smart (Algorithm 1) vs naïve — time and output size", runPerfNorm},
	{"perf-chase", "chase cost vs timeline span: c-chase / segment chase / pointwise chase", runPerfChase},
	{"perf-query", "naïve query evaluation scaling", runPerfQuery},
	{"perf-delta", "incremental exchange: RunDelta over a frozen base vs full re-chase", runPerfDelta},
	{"perf-snapshot", "persistence: mmap snapshot load vs cold JSON decode + freeze", runPerfSnapshot},
	{"perf-encode", "serialization: streamed columnar JSON encode vs materialize + marshal", runPerfEncode},
	{"abl-egd", "ablation: batch (union-find) vs stepwise egd application", runAblEgd},
	{"abl-norm-strategy", "ablation: chase end-to-end under smart vs naive normalization", runAblNormStrategy},
	{"ext-temporal", "§7 extension: modal-operator mappings (PhD example, ◆)", runExtTemporal},
	{"ext-core", "§7 extension: snapshot-wise core of a materialized solution", runExtCore},
}

func main() {
	exp := flag.String("exp", "", "experiment id (see -list), or 'all'")
	list := flag.Bool("list", false, "list experiments")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile covering the selected experiments to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile taken after the selected experiments to this file")
	flag.Parse()
	if *list || *exp == "" {
		ids := make([]string, 0, len(experiments))
		for _, e := range experiments {
			ids = append(ids, fmt.Sprintf("  %-18s %s", e.id, e.title))
		}
		sort.Strings(ids)
		fmt.Println("experiments:")
		for _, l := range ids {
			fmt.Println(l)
		}
		fmt.Println("  all                run everything")
		if *exp == "" && !*list {
			os.Exit(2)
		}
		return
	}

	// Profiling brackets exactly the experiment work; the profile files
	// are finalized before any error exit so a failing sweep still leaves
	// usable profiles behind.
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tdxbench: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "tdxbench: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
	}
	runErr := runSelected(*exp)
	if *cpuprofile != "" {
		pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tdxbench: -memprofile: %v\n", err)
			os.Exit(1)
		}
		runtime.GC() // settle the live set before snapshotting the heap
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "tdxbench: -memprofile: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "tdxbench: -memprofile: %v\n", err)
			os.Exit(1)
		}
	}
	if runErr != nil {
		fmt.Fprintf(os.Stderr, "tdxbench: %v\n", runErr)
		os.Exit(1)
	}
}

// runSelected runs one experiment by id, or all of them.
func runSelected(exp string) error {
	if exp == "all" {
		for _, e := range experiments {
			fmt.Printf("==== %s — %s ====\n", e.id, e.title)
			if err := e.run(os.Stdout); err != nil {
				return fmt.Errorf("%s: %w", e.id, err)
			}
			fmt.Println()
		}
		return nil
	}
	for _, e := range experiments {
		if e.id == exp {
			fmt.Printf("==== %s — %s ====\n", e.id, e.title)
			return e.run(os.Stdout)
		}
	}
	return fmt.Errorf("unknown experiment %q (use -list)", exp)
}
