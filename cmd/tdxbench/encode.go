package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	tdx "repro"
	"repro/internal/instance"
	"repro/internal/jsonio"
	"repro/internal/render"
	"repro/internal/workload"
)

// legacyEncode reproduces the pre-streaming serialization shape —
// materialize the sorted fact set, mirror every fact into rendered wire
// strings, MarshalIndent the whole document — as the measured baseline.
// (jsonio.Encode itself is the streamed encoder now.)
func legacyEncode(c *instance.Concrete) ([]byte, error) {
	type factJSON struct {
		Rel      string   `json:"rel"`
		Args     []string `json:"args"`
		Interval string   `json:"interval"`
	}
	type relJSON struct {
		Name  string   `json:"name"`
		Attrs []string `json:"attrs"`
	}
	var out struct {
		Schema []relJSON  `json:"schema,omitempty"`
		Facts  []factJSON `json:"facts"`
	}
	if sch := c.Schema(); sch != nil {
		for _, name := range sch.Names() {
			r, _ := sch.Relation(name)
			out.Schema = append(out.Schema, relJSON{Name: r.Name, Attrs: r.Attrs})
		}
	}
	for _, f := range c.Facts() {
		fj := factJSON{Rel: f.Rel, Interval: f.T.String(), Args: make([]string, len(f.Args))}
		for i, a := range f.Args {
			fj.Args[i] = a.String()
		}
		out.Facts = append(out.Facts, fj)
	}
	return json.MarshalIndent(out, "", "  ")
}

// runPerfEncode measures the serialization path of ISSUE 9: streaming a
// materialized solution's JSON document straight off the frozen
// columnar store (jsonio.EncodeTo, the tdxd serve path and `tdx chase
// -json`) against the legacy materialize-then-marshal shape — render
// every fact into a wire mirror, then MarshalIndent the whole document.
// Both produce byte-identical output; the columns that matter are the
// allocation count and bytes allocated per encode, which are O(1) in
// the fact count on the streamed path and O(n) on the legacy one.
func runPerfEncode(w io.Writer) error {
	ctx := context.Background()
	fmt.Fprintln(w, "solution serialization: streamed columnar encode vs materialize + marshal")
	ex, err := employmentExchange()
	if err != nil {
		return err
	}
	best := func(fn func()) time.Duration {
		d := timeIt(fn)
		for i := 0; i < 2; i++ {
			if r := timeIt(fn); r < d {
				d = r
			}
		}
		return d
	}
	// allocsOf reports allocations and bytes of one run of fn, averaged
	// over a few runs to wash out size-class noise.
	allocsOf := func(fn func()) (allocs, bytes uint64) {
		const rounds = 3
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		for i := 0; i < rounds; i++ {
			fn()
		}
		runtime.ReadMemStats(&after)
		return (after.Mallocs - before.Mallocs) / rounds, (after.TotalAlloc - before.TotalAlloc) / rounds
	}
	headers := []string{"facts", "doc KB", "stream ms", "legacy ms", "stream allocs", "legacy allocs", "alloc ratio"}
	var rows [][]string
	for _, persons := range []int{200, 2000, 20000} {
		ic := workload.Employment(workload.EmploymentConfig{
			Seed: 1, Persons: persons, JobsPerPerson: 4, SalaryCoverage: 0.7, Span: 200,
		})
		sol, err := ex.Run(ctx, tdx.NewInstance(ic))
		if err != nil {
			return err
		}
		c := sol.Concrete()
		data, err := jsonio.Encode(c)
		if err != nil {
			return err
		}
		sT := best(func() {
			if err := jsonio.EncodeTo(io.Discard, c); err != nil {
				panic(err)
			}
		})
		legacy, err := legacyEncode(c)
		if err != nil {
			return err
		}
		if !bytes.Equal(legacy, data) {
			return fmt.Errorf("persons=%d: streamed document differs from the legacy encoding", persons)
		}
		lT := best(func() {
			if _, err := legacyEncode(c); err != nil {
				panic(err)
			}
		})
		sA, _ := allocsOf(func() {
			if err := jsonio.EncodeTo(io.Discard, c); err != nil {
				panic(err)
			}
		})
		lA, _ := allocsOf(func() {
			if _, err := legacyEncode(c); err != nil {
				panic(err)
			}
		})
		ratio := "-"
		if sA > 0 {
			ratio = fmt.Sprintf("%.0fx", float64(lA)/float64(sA))
		}
		rows = append(rows, []string{
			fmt.Sprint(sol.Len()),
			fmt.Sprintf("%.1f", float64(len(data))/1024),
			fmt.Sprintf("%.2f", float64(sT.Microseconds())/1000),
			fmt.Sprintf("%.2f", float64(lT.Microseconds())/1000),
			fmt.Sprint(sA),
			fmt.Sprint(lA),
			ratio,
		})
	}
	fmt.Fprint(w, render.Table(headers, rows))
	fmt.Fprintln(w, "shape: the streamed encoder walks the store's validity bitmap, renders")
	fmt.Fprintln(w, "values into one reused scratch buffer, and flushes in 32 KiB chunks, so")
	fmt.Fprintln(w, "its allocation count stays a small constant while the legacy path's")
	fmt.Fprintln(w, "grows with every fact; the gap is what tdxd stops paying per response")
	return nil
}
