package main

import (
	"strings"
	"testing"
)

// TestAllExperimentsRun executes every experiment against a buffer,
// checking they complete and emit output — the integration test for the
// harness itself.
func TestAllExperimentsRun(t *testing.T) {
	for _, e := range experiments {
		e := e
		t.Run(e.id, func(t *testing.T) {
			if testing.Short() && strings.HasPrefix(e.id, "perf") {
				t.Skip("perf sweeps skipped in -short mode")
			}
			var b strings.Builder
			if err := e.run(&b); err != nil {
				t.Fatalf("experiment %s failed: %v", e.id, err)
			}
			if b.Len() == 0 {
				t.Fatalf("experiment %s produced no output", e.id)
			}
		})
	}
}

// TestExperimentGoldenLines spot-checks the figure experiments for the
// rows the paper prints.
func TestExperimentGoldenLines(t *testing.T) {
	want := map[string][]string{
		"fig1":         {"2013  {E(Ada, IBM), E(Bob, IBM), S(Ada, 18k)}"},
		"fig3":         {"2015  {Emp(Ada, Google, 18k), Emp(Bob, IBM, 13k)}"},
		"fig5":         {"5 facts in, 9 facts out, 2 merged component(s)"},
		"fig6":         {"14 facts"},
		"fig8":         {"merged components: 2"},
		"fig9":         {"Ada   IBM      18k", "[2012,2013)"},
		"fig10":        {"true"},
		"thm13":        {"16384"},
		"ext-temporal": {"universal"},
		"ext-core":     {"snapshot-wise core (5 facts)"},
	}
	for _, e := range experiments {
		lines, ok := want[e.id]
		if !ok {
			continue
		}
		var b strings.Builder
		if err := e.run(&b); err != nil {
			t.Fatalf("%s: %v", e.id, err)
		}
		out := b.String()
		for _, l := range lines {
			if !strings.Contains(out, l) {
				t.Errorf("%s output missing %q:\n%s", e.id, l, out)
			}
		}
	}
}
