package main

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"time"

	tdx "repro"
	"repro/internal/chase"
	"repro/internal/fact"
	"repro/internal/instance"
	"repro/internal/interval"
	"repro/internal/logic"
	"repro/internal/normalize"
	"repro/internal/paperex"
	"repro/internal/query"
	"repro/internal/render"
	"repro/internal/verify"
	"repro/internal/workload"
)

// randomEmploymentSource mirrors the randomized source used by the
// property tests: small instances with enough collisions to exercise
// both chase success and failure.
func randomEmploymentSource(r *rand.Rand) *instance.Concrete {
	m := paperex.EmploymentMapping()
	ic := instance.NewConcrete(m.Source)
	names := []string{"a", "b"}
	comps := []string{"X", "Y"}
	sals := []string{"1k", "2k"}
	for i := 0; i < 1+r.Intn(5); i++ {
		s := interval.Time(r.Intn(8))
		ic.MustInsert(fact.NewC("E", interval.MustNew(s, s+1+interval.Time(r.Intn(6))),
			paperex.C(names[r.Intn(2)]), paperex.C(comps[r.Intn(2)])))
	}
	for i := 0; i < r.Intn(3); i++ {
		s := interval.Time(r.Intn(8))
		ic.MustInsert(fact.NewC("S", interval.MustNew(s, s+1+interval.Time(r.Intn(6))),
			paperex.C(names[r.Intn(2)]), paperex.C(sals[r.Intn(2)])))
	}
	return ic
}

func runThm11(w io.Writer) error {
	// Randomized check in both directions, plus the paper's instance.
	phis := []logic.Conjunction{paperex.Sigma2Body()}
	if normalize.HasEmptyIntersectionProperty(paperex.Figure4(), phis) {
		return errors.New("Figure 4 wrongly reported normalized")
	}
	r := rand.New(rand.NewSource(7))
	trials, eipAfterSmart, eipAfterNaive, identityWhenEIP := 500, 0, 0, 0
	for i := 0; i < trials; i++ {
		ic := randomEmploymentSource(r)
		if normalize.HasEmptyIntersectionProperty(normalize.Smart(ic, phis), phis) {
			eipAfterSmart++
		}
		if normalize.HasEmptyIntersectionProperty(normalize.Naive(ic), phis) {
			eipAfterNaive++
		}
		if normalize.HasEmptyIntersectionProperty(ic, phis) && !normalize.Smart(ic, phis).Equal(ic) {
			continue // EIP held but Smart changed it: would be a violation
		}
		identityWhenEIP++
	}
	fmt.Fprintf(w, "random trials:                         %d\n", trials)
	fmt.Fprintf(w, "EIP after Algorithm 1 (Thm 15):        %d/%d\n", eipAfterSmart, trials)
	fmt.Fprintf(w, "EIP after naïve normalization:         %d/%d\n", eipAfterNaive, trials)
	fmt.Fprintf(w, "Smart is identity on normalized input: %d/%d\n", identityWhenEIP, trials)
	return nil
}

func runThm13(w io.Writer) error {
	fmt.Fprintln(w, "output facts after Smart normalization vs the n·(2n−1) bound")
	headers := []string{"n", "staircase", "nested", "disjoint(k=8)", "bound"}
	var rows [][]string
	for _, n := range []int{8, 16, 32, 64, 128} {
		stair := normalize.Smart(workload.Staircase(n), workload.StaircasePhi()).Len()
		nest := normalize.Smart(workload.Nested(n), workload.StaircasePhi()).Len()
		dj := normalize.Smart(workload.DisjointRuns(n, 8), workload.StaircasePhi()).Len()
		rows = append(rows, []string{
			fmt.Sprint(n), fmt.Sprint(stair), fmt.Sprint(nest), fmt.Sprint(dj),
			fmt.Sprint(normalize.FragmentBound(n)),
		})
	}
	fmt.Fprint(w, render.Table(headers, rows))
	fmt.Fprintln(w, "shape: staircase/nested grow quadratically; disjoint clusters stay near-linear")
	return nil
}

func runThm21(w io.Writer) error {
	ctx := context.Background()
	r := rand.New(rand.NewSource(11))
	ex, err := employmentExchange()
	if err != nil {
		return err
	}
	u, err := query.NewUCQ("q", query.CQ{Name: "q", Head: []string{"n", "s"},
		Body: logic.Conjunction{logic.NewAtom("Emp", logic.Var("n"), logic.Var("c"), logic.Var("s"))}})
	if err != nil {
		return err
	}
	trials, agree, failures := 300, 0, 0
	for i := 0; i < trials; i++ {
		ic := randomEmploymentSource(r)
		sol, err := ex.Run(ctx, tdx.NewInstance(ic))
		if err != nil {
			failures++
			continue
		}
		jc := sol.Concrete()
		lhs := query.NaiveEvalConcrete(u, jc)
		rhs := query.CertainAbstract(u, jc.Abstract())
		if lhs.Abstract().EqualTo(rhs.Abstract()) {
			agree++
		}
	}
	fmt.Fprintf(w, "random trials:                 %d (%d chase failures skipped)\n", trials, failures)
	fmt.Fprintf(w, "⟦q+(Jc)↓⟧ = q(⟦Jc⟧)↓ (Thm 21): %d/%d\n", agree, trials-failures)
	return nil
}

// timeIt runs fn and returns the wall-clock duration.
func timeIt(fn func()) time.Duration {
	start := time.Now()
	fn()
	return time.Since(start)
}

func runPerfNorm(w io.Writer) error {
	fmt.Fprintln(w, "employment workload, normalization w.r.t. the mapping's tgd bodies")
	m := paperex.EmploymentMapping()
	headers := []string{"facts", "smart ms", "smart out", "naive ms", "naive out"}
	var rows [][]string
	for _, persons := range []int{50, 100, 200, 400, 800} {
		ic := workload.Employment(workload.EmploymentConfig{
			Seed: 1, Persons: persons, JobsPerPerson: 4, SalaryCoverage: 0.7, Span: 200,
		})
		var smartOut, naiveOut *instance.Concrete
		smartT := timeIt(func() { smartOut = normalize.Smart(ic, m.TGDBodies()) })
		naiveT := timeIt(func() { naiveOut = normalize.Naive(ic) })
		rows = append(rows, []string{
			fmt.Sprint(ic.Len()),
			fmt.Sprintf("%.2f", float64(smartT.Microseconds())/1000),
			fmt.Sprint(smartOut.Len()),
			fmt.Sprintf("%.2f", float64(naiveT.Microseconds())/1000),
			fmt.Sprint(naiveOut.Len()),
		})
	}
	fmt.Fprint(w, render.Table(headers, rows))
	fmt.Fprintln(w, "shape: Algorithm 1 keeps output near the input size; naïve's O(n log n)")
	fmt.Fprintln(w, "sort is cheap but materializing its much larger output dominates here —")
	fmt.Fprintln(w, "the size/time trade-off of §4.2")
	return nil
}

func runPerfChase(w io.Writer) error {
	ctx := context.Background()
	fmt.Fprintln(w, "same instance dilated over longer timelines (fact count constant)")
	m := paperex.EmploymentMapping()
	ex, err := employmentExchange()
	if err != nil {
		return err
	}
	base := workload.Employment(workload.EmploymentConfig{
		Seed: 3, Persons: 12, JobsPerPerson: 2, SalaryCoverage: 0.8, Span: 20,
	})
	headers := []string{"dilation", "span", "c-chase ms", "segment ms", "pointwise ms"}
	var rows [][]string
	for _, k := range []interval.Time{1, 4, 16, 64} {
		ic := chase.Dilate(base, k)
		horizon := interval.Time(0)
		for _, f := range ic.Facts() {
			if f.T.End != interval.Infinity && f.T.End > horizon {
				horizon = f.T.End
			}
		}
		src := tdx.NewInstance(ic)
		var cT, sT, pT time.Duration
		cT = timeIt(func() {
			if _, err := ex.Run(ctx, src); err != nil {
				panic(err)
			}
		})
		sT = timeIt(func() {
			if _, _, err := ex.RunAbstract(ctx, src); err != nil {
				panic(err)
			}
		})
		pT = timeIt(func() {
			if _, _, err := chase.Pointwise(ic, m, horizon, nil); err != nil {
				panic(err)
			}
		})
		rows = append(rows, []string{
			fmt.Sprint(k), fmt.Sprint(horizon),
			fmt.Sprintf("%.2f", float64(cT.Microseconds())/1000),
			fmt.Sprintf("%.2f", float64(sT.Microseconds())/1000),
			fmt.Sprintf("%.2f", float64(pT.Microseconds())/1000),
		})
	}
	fmt.Fprint(w, render.Table(headers, rows))
	fmt.Fprintln(w, "shape: pointwise (literal §3 semantics) grows linearly with the span;")
	fmt.Fprintln(w, "c-chase and the segment-wise abstract chase are span-independent — the")
	fmt.Fprintln(w, "reason the concrete view (and this paper) exists")
	return nil
}

func runPerfQuery(w io.Writer) error {
	ctx := context.Background()
	ex, err := employmentExchange()
	if err != nil {
		return err
	}
	u, err := query.NewUCQ("q", query.CQ{Name: "q", Head: []string{"n", "s"},
		Body: logic.Conjunction{logic.NewAtom("Emp", logic.Var("n"), logic.Var("c"), logic.Var("s"))}})
	if err != nil {
		return err
	}
	headers := []string{"solution facts", "eval ms", "answers"}
	var rows [][]string
	for _, persons := range []int{50, 100, 200, 400} {
		ic := workload.Employment(workload.EmploymentConfig{
			Seed: 1, Persons: persons, JobsPerPerson: 3, SalaryCoverage: 0.8, Span: 150,
		})
		sol, err := ex.Run(ctx, tdx.NewInstance(ic))
		if err != nil {
			return err
		}
		var ans *instance.Concrete
		d := timeIt(func() { ans = query.NaiveEvalConcrete(u, sol.Concrete()) })
		rows = append(rows, []string{
			fmt.Sprint(sol.Len()),
			fmt.Sprintf("%.2f", float64(d.Microseconds())/1000),
			fmt.Sprint(ans.Len()),
		})
	}
	fmt.Fprint(w, render.Table(headers, rows))
	return nil
}

func runPerfDelta(w io.Writer) error {
	ctx := context.Background()
	fmt.Fprintln(w, "incremental exchange: employment base chased once, then k-fact")
	fmt.Fprintln(w, "new-hire deltas applied via RunDelta vs re-chasing base+delta")
	m := paperex.EmploymentMapping()
	ex, err := employmentExchange()
	if err != nil {
		return err
	}
	base := workload.Employment(workload.EmploymentConfig{
		Seed: 1, Persons: 45, JobsPerPerson: 4, SalaryCoverage: 0.7, Span: 200,
	})
	if base.Len() < 200 {
		return fmt.Errorf("base instance too small: %d facts", base.Len())
	}
	baseSol, err := ex.Run(ctx, tdx.NewInstance(base))
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "base: %d source facts → %d solution facts (chased once)\n", base.Len(), baseSol.Len())
	// best-of-3 wall clock: the sweeps here are milliseconds, where a
	// single shot is scheduler noise.
	best := func(fn func()) time.Duration {
		d := timeIt(fn)
		for i := 0; i < 2; i++ {
			if r := timeIt(fn); r < d {
				d = r
			}
		}
		return d
	}
	headers := []string{"k facts", "delta ms", "full ms", "speedup", "delta fires", "diff +"}
	var rows [][]string
	for _, k := range []int{1, 8, 64} {
		// New hires with fresh names and aligned E/S intervals: the shape
		// of an append-only feed, and the delta chase's fast path.
		deltaIC := instance.NewConcreteWith(m.Source, base.Interner())
		combined := instance.NewConcreteWith(m.Source, base.Interner())
		base.EachFact(func(f fact.CFact) bool { combined.MustInsert(f); return true })
		for added, i := 0, 0; added < k; i++ {
			name := fmt.Sprintf("newhire%d", i)
			e := fact.NewC("E", interval.MustNew(40, 60), paperex.C(name), paperex.C("AcmeCorp"))
			deltaIC.MustInsert(e)
			combined.MustInsert(e)
			if added++; added == k {
				break
			}
			s := fact.NewC("S", interval.MustNew(40, 60), paperex.C(name), paperex.C("17k"))
			deltaIC.MustInsert(s)
			combined.MustInsert(s)
			added++
		}
		delta, full := tdx.NewInstance(deltaIC), tdx.NewInstance(combined)
		var sol *tdx.Solution
		var diff *tdx.Diff
		dT := best(func() {
			var err error
			if sol, diff, err = ex.RunDelta(ctx, baseSol, delta); err != nil {
				panic(err)
			}
		})
		if sol.Stats().FallbackFullChase {
			return fmt.Errorf("k=%d: delta run fell back to a full re-chase", k)
		}
		fT := best(func() {
			if _, err := ex.Run(ctx, full); err != nil {
				panic(err)
			}
		})
		rows = append(rows, []string{
			fmt.Sprint(k),
			fmt.Sprintf("%.2f", float64(dT.Microseconds())/1000),
			fmt.Sprintf("%.2f", float64(fT.Microseconds())/1000),
			fmt.Sprintf("%.1fx", float64(fT)/float64(dT)),
			fmt.Sprint(sol.Stats().DeltaFires),
			fmt.Sprint(diff.Added.Len()),
		})
	}
	fmt.Fprint(w, render.Table(headers, rows))
	fmt.Fprintln(w, "shape: RunDelta fires only what the new facts reach, so its cost")
	fmt.Fprintln(w, "tracks k while the full re-chase pays for the whole base every time")
	return nil
}

func runAblEgd(w io.Writer) error {
	fmt.Fprintln(w, "egd-merge-dominated workload: k nulls per group collapse to one")
	headers := []string{"groups", "k", "batch ms", "stepwise ms", "merges"}
	var rows [][]string
	ctx := context.Background()
	for _, cfg := range []struct{ groups, k int }{{20, 4}, {40, 4}, {40, 8}, {80, 8}} {
		ex, err := tdx.FromMapping(workload.EgdStressMapping(cfg.k))
		if err != nil {
			return err
		}
		ic := tdx.NewInstance(workload.EgdStress(cfg.groups, cfg.k))
		var merges int
		bT := timeIt(func() {
			sol, err := ex.Run(ctx, ic, tdx.WithEgdStrategy(tdx.EgdBatch))
			if err != nil {
				panic(err)
			}
			merges = sol.Stats().EgdMerges
		})
		sT := timeIt(func() {
			if _, err := ex.Run(ctx, ic, tdx.WithEgdStrategy(tdx.EgdStepwise)); err != nil {
				panic(err)
			}
		})
		rows = append(rows, []string{
			fmt.Sprint(cfg.groups), fmt.Sprint(cfg.k),
			fmt.Sprintf("%.2f", float64(bT.Microseconds())/1000),
			fmt.Sprintf("%.2f", float64(sT.Microseconds())/1000),
			fmt.Sprint(merges),
		})
	}
	fmt.Fprint(w, render.Table(headers, rows))
	fmt.Fprintln(w, "shape: batch merges every violated equality per rewrite round; stepwise")
	fmt.Fprintln(w, "re-searches after each single merge and falls behind as merges grow")
	return nil
}

func runAblNormStrategy(w io.Writer) error {
	ctx := context.Background()
	fmt.Fprintln(w, "end-to-end c-chase under both normalization strategies")
	ex, err := employmentExchange()
	if err != nil {
		return err
	}
	headers := []string{"source facts", "smart ms", "smart |Jc|", "naive ms", "naive |Jc|", "equivalent"}
	var rows [][]string
	for _, persons := range []int{25, 50, 100, 200} {
		ic := workload.Employment(workload.EmploymentConfig{
			Seed: 5, Persons: persons, JobsPerPerson: 3, SalaryCoverage: 0.7, Span: 120,
		})
		src := tdx.NewInstance(ic)
		var smartJc, naiveJc *instance.Concrete
		sT := timeIt(func() {
			sol, err := ex.Run(ctx, src, tdx.WithNorm(tdx.NormSmart))
			if err != nil {
				panic(err)
			}
			smartJc = sol.Concrete()
		})
		nT := timeIt(func() {
			sol, err := ex.Run(ctx, src, tdx.WithNorm(tdx.NormNaive))
			if err != nil {
				panic(err)
			}
			naiveJc = sol.Concrete()
		})
		// Equivalence is checked on small instances only (the hom search
		// is exponential in the worst case).
		equiv := "-"
		if persons <= 25 {
			equiv = fmt.Sprint(verify.HomEquivalent(smartJc.Abstract(), naiveJc.Abstract()))
		}
		rows = append(rows, []string{
			fmt.Sprint(ic.Len()),
			fmt.Sprintf("%.2f", float64(sT.Microseconds())/1000), fmt.Sprint(smartJc.Len()),
			fmt.Sprintf("%.2f", float64(nT.Microseconds())/1000), fmt.Sprint(naiveJc.Len()),
			equiv,
		})
	}
	fmt.Fprint(w, render.Table(headers, rows))
	return nil
}
