package main

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	tdx "repro"
	"repro/internal/jsonio"
	"repro/internal/render"
	"repro/internal/workload"
)

// runPerfSnapshot measures the persistence path of ISSUE 8: loading a
// materialized solution from its mmap-able columnar snapshot
// (internal/snapshot) against the cold path a snapshot-less client pays
// — decoding the solution's JSON document and freezing the rebuilt
// store. Both sides end in the same state (a frozen, fully indexed
// store, the only form tdxd pins and shares), so the ratio is the
// honest warm-start speedup of tdxd -state and tdx chase -load.
func runPerfSnapshot(w io.Writer) error {
	ctx := context.Background()
	fmt.Fprintln(w, "solution persistence: mmap snapshot load vs cold JSON decode + freeze")
	ex, err := employmentExchange()
	if err != nil {
		return err
	}
	dir, err := os.MkdirTemp("", "tdx-perf-snapshot")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	// best-of-3 wall clock: single-digit-millisecond loads are scheduler
	// noise in a single shot.
	best := func(fn func()) time.Duration {
		d := timeIt(fn)
		for i := 0; i < 2; i++ {
			if r := timeIt(fn); r < d {
				d = r
			}
		}
		return d
	}
	headers := []string{"facts", "snap KB", "json KB", "write ms", "load ms", "cold ms", "speedup"}
	var rows [][]string
	for _, persons := range []int{200, 800, 2000} {
		ic := workload.Employment(workload.EmploymentConfig{
			Seed: 1, Persons: persons, JobsPerPerson: 4, SalaryCoverage: 0.7, Span: 200,
		})
		sol, err := ex.Run(ctx, tdx.NewInstance(ic))
		if err != nil {
			return err
		}
		path := filepath.Join(dir, fmt.Sprintf("sol-%d.snap", persons))
		wT := timeIt(func() {
			if err := sol.WriteSnapshotFile(path); err != nil {
				panic(err)
			}
		})
		st, err := os.Stat(path)
		if err != nil {
			return err
		}
		data, err := jsonio.Encode(sol.Concrete())
		if err != nil {
			return err
		}
		var loaded *tdx.Solution
		lT := best(func() {
			var err error
			if loaded, err = ex.LoadSolution(path); err != nil {
				panic(err)
			}
		})
		if loaded.Len() != sol.Len() {
			return fmt.Errorf("persons=%d: loaded %d facts, want %d", persons, loaded.Len(), sol.Len())
		}
		cT := best(func() {
			jc, err := jsonio.Decode(data)
			if err != nil {
				panic(err)
			}
			jc.Freeze()
		})
		rows = append(rows, []string{
			fmt.Sprint(sol.Len()),
			fmt.Sprintf("%.1f", float64(st.Size())/1024),
			fmt.Sprintf("%.1f", float64(len(data))/1024),
			fmt.Sprintf("%.2f", float64(wT.Microseconds())/1000),
			fmt.Sprintf("%.2f", float64(lT.Microseconds())/1000),
			fmt.Sprintf("%.2f", float64(cT.Microseconds())/1000),
			fmt.Sprintf("%.1fx", float64(cT)/float64(lT)),
		})
	}
	fmt.Fprint(w, render.Table(headers, rows))
	fmt.Fprintln(w, "shape: the snapshot adopts its columns straight out of the mapped file")
	fmt.Fprintln(w, "and pays only for derived structures (interner table, indexes, decoded")
	fmt.Fprintln(w, "rows); the JSON path re-parses and re-interns every value, so the gap")
	fmt.Fprintln(w, "widens with solution size — past ~10k facts the load is ≥3x faster")
	return nil
}
