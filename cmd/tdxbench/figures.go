package main

import (
	"context"
	"fmt"
	"io"

	tdx "repro"
	"repro/internal/fact"
	"repro/internal/instance"
	"repro/internal/interval"
	"repro/internal/logic"
	"repro/internal/normalize"
	"repro/internal/paperex"
	"repro/internal/render"
	"repro/internal/value"
	"repro/internal/verify"
)

// employmentExchange compiles the paper's employment mapping once per
// experiment through the public API.
func employmentExchange() (*tdx.Exchange, error) {
	return tdx.FromMapping(paperex.EmploymentMapping())
}

// paperYears are the time points Figure 1 and Figure 3 display.
var paperYears = []interval.Time{2012, 2013, 2014, 2015, 2018}

func runFig1(w io.Writer) error {
	ic := paperex.Figure4()
	a := ic.Abstract()
	fmt.Fprintln(w, "Ia = ⟦Ic⟧ at the paper's sampled years:")
	for _, y := range paperYears {
		fmt.Fprintf(w, "  %v  %s\n", y, a.Snapshot(y))
	}
	return nil
}

func runFig2(w io.Writer) error {
	c := paperex.C
	n := value.NewNull(1)
	j1, err := instance.NewAbstract([]instance.Segment{
		{Iv: interval.MustNew(0, 2), Facts: []fact.CFact{
			{Rel: "Emp", Args: []value.Value{c("Ada"), c("IBM"), n}, T: interval.MustNew(0, 2)},
		}},
		{Iv: interval.Interval{Start: 2, End: interval.Infinity}},
	})
	if err != nil {
		return err
	}
	j2c := instance.NewConcrete(nil)
	j2c.MustInsert(fact.NewC("Emp", interval.MustNew(0, 2), c("Ada"), c("IBM"), value.NewAnnNull(2, interval.MustNew(0, 2))))
	j2 := j2c.Abstract()
	fmt.Fprintln(w, "J1 (one null N shared by db0 and db1):")
	fmt.Fprintf(w, "  db0 = %s\n  db1 = %s\n", j1.Snapshot(0), j1.Snapshot(1))
	fmt.Fprintln(w, "J2 (fresh null per snapshot, via annotated null M^[0,2)):")
	fmt.Fprintf(w, "  db0 = %s\n  db1 = %s\n", j2.Snapshot(0), j2.Snapshot(1))
	fmt.Fprintf(w, "homomorphism J2 → J1: %v   (paper: exists)\n", verify.AbstractHom(j2, j1))
	fmt.Fprintf(w, "homomorphism J1 → J2: %v  (paper: none — condition 2 fails)\n", verify.AbstractHom(j1, j2))
	return nil
}

func runFig3(w io.Writer) error {
	ex, err := employmentExchange()
	if err != nil {
		return err
	}
	ja, _, err := ex.RunAbstract(context.Background(), tdx.NewInstance(paperex.Figure4()))
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Ja = chase(⟦Ic⟧, M) at the paper's sampled years:")
	for _, y := range paperYears {
		fmt.Fprintf(w, "  %v  %s\n", y, ja.Snapshot(y))
	}
	return nil
}

func runFig4(w io.Writer) error {
	fmt.Fprint(w, render.Instance(paperex.Figure4()))
	return nil
}

func runFig5(w io.Writer) error {
	ic := paperex.Figure4()
	out, stats := normalize.SmartWithStats(ic, []logic.Conjunction{paperex.Sigma2Body()})
	fmt.Fprint(w, render.Instance(out))
	fmt.Fprintf(w, "\n%d facts in, %d facts out, %d merged component(s)\n",
		stats.InputFacts, stats.OutputFacts, stats.Components)
	return nil
}

func runFig6(w io.Writer) error {
	out := normalize.Naive(paperex.Figure4())
	fmt.Fprint(w, render.Instance(out))
	fmt.Fprintf(w, "\n%d facts (Figure 5's conjunction-aware result has 9)\n", out.Len())
	return nil
}

func runFig8(w io.Writer) error {
	ic := paperex.Figure7()
	fmt.Fprintln(w, "input (Figure 7):")
	fmt.Fprint(w, render.Instance(ic))
	out, stats := normalize.SmartWithStats(ic, paperex.Example14Conjunctions())
	fmt.Fprintln(w, "\nnorm(Ic, Φ+) with Φ+ = {R∧P, P∧S} (Figure 8):")
	fmt.Fprint(w, render.Instance(out))
	fmt.Fprintf(w, "\nmerged components: %d  (Example 14: {f1,f2,f3} and {f4,f5})\n", stats.Components)
	return nil
}

func runFig9(w io.Writer) error {
	ex, err := employmentExchange()
	if err != nil {
		return err
	}
	sol, err := ex.Run(context.Background(), tdx.NewInstance(paperex.Figure4()))
	if err != nil {
		return err
	}
	fmt.Fprint(w, sol.Table())
	fmt.Fprintf(w, "\nchase stats: %+v\n", sol.Stats())
	return nil
}

func runFig10(w io.Writer) error {
	ctx := context.Background()
	ex, err := employmentExchange()
	if err != nil {
		return err
	}
	src := tdx.NewInstance(paperex.Figure4())
	sol, err := ex.Run(ctx, src)
	if err != nil {
		return err
	}
	ja, _, err := ex.RunAbstract(ctx, src)
	if err != nil {
		return err
	}
	okSol, why := verify.IsSolution(src.Concrete().Abstract(), sol.Concrete().Abstract(), ex.Mapping())
	fmt.Fprintf(w, "⟦c-chase(Ic)⟧ is a solution:            %v %s\n", okSol, why)
	fmt.Fprintf(w, "⟦c-chase(Ic)⟧ ∼ chase(⟦Ic⟧) (Cor. 20): %v\n", verify.HomEquivalent(sol.Concrete().Abstract(), ja))
	return nil
}
