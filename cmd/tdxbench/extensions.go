package main

import (
	"context"
	"fmt"
	"io"

	tdx "repro"
	"repro/internal/coreof"
	"repro/internal/fact"
	"repro/internal/instance"
	"repro/internal/logic"
	"repro/internal/paperex"
	"repro/internal/render"
	"repro/internal/schema"
	"repro/internal/temporal"
	"repro/internal/verify"
)

// runExtTemporal demonstrates the §7 future-work extension: the paper's
// PhD example with the ◆ (sometime in the past) operator, including the
// negative answer to the open universality question.
func runExtTemporal(w io.Writer) error {
	src := schema.MustNew(schema.MustRelation("PhDgrad", "name"))
	tgt := schema.MustNew(schema.MustRelation("PhDCan", "name", "adviser", "topic"))
	m := &temporal.Mapping{
		Source: src,
		Target: tgt,
		TGDs: []temporal.TGD{{
			Name: "was-candidate",
			Body: logic.Conjunction{logic.NewAtom("PhDgrad", logic.Var("n"))},
			Head: []temporal.HeadAtom{{
				Ref:  temporal.SometimePast,
				Atom: logic.NewAtom("PhDCan", logic.Var("n"), logic.Var("adv"), logic.Var("top")),
			}},
		}},
	}
	fmt.Fprintf(w, "dependency (paper §7): %v\n\n", m.TGDs[0])
	ic := instance.NewConcrete(src)
	ic.MustInsert(fact.NewC("PhDgrad", paperex.Iv(2016, 2019), paperex.C("ada")))
	fmt.Fprintln(w, "source:")
	fmt.Fprint(w, render.Instance(ic))
	// The §7 extension goes through the public API like any mapping.
	ex, err := tdx.FromTemporalMapping(m)
	if err != nil {
		return err
	}
	sol, err := ex.Run(context.Background(), tdx.NewInstance(ic))
	if err != nil {
		return err
	}
	jc := sol.Concrete()
	fmt.Fprintln(w, "\ntemporal chase result (canonical witness one step before):")
	fmt.Fprint(w, render.Instance(jc))
	ok, why := temporal.Satisfies(ic, jc, m)
	fmt.Fprintf(w, "\nresult satisfies the mapping: %v %s\n", ok, why)

	// The open question: is the result universal? No — an alternative
	// admissible witness placement is incomparable.
	alt := instance.NewConcrete(tgt)
	alt.MustInsert(fact.NewC("PhDCan", paperex.Iv(2010, 2011), paperex.C("ada"),
		paperex.C("prof"), paperex.C("databases")))
	altOK, _ := temporal.Satisfies(ic, alt, m)
	fmt.Fprintf(w, "alternative solution (candidacy at [2010,2011)) satisfies too: %v\n", altOK)
	fmt.Fprintf(w, "hom chase-result → alternative: %v  (no: witness times differ)\n",
		verify.AbstractHom(jc.Abstract(), alt.Abstract()))
	fmt.Fprintln(w, "⇒ no fixed witness rule yields a universal solution — the §7 question answered in the negative")
	return nil
}

// runExtCore demonstrates core computation (§7: "revisit ... the notion
// of core"): the chase without egds leaves dominated null facts that the
// snapshot-wise core folds away.
func runExtCore(w io.Writer) error {
	m := paperex.EmploymentMapping()
	m.EGDs = nil
	ex, err := tdx.FromMapping(m)
	if err != nil {
		return err
	}
	sol, err := ex.Run(context.Background(), tdx.NewInstance(paperex.Figure4()))
	if err != nil {
		return err
	}
	jc := sol.Concrete()
	fmt.Fprintf(w, "chase of Figure 4 WITHOUT the salary egd (%d facts, redundant):\n", jc.Len())
	fmt.Fprint(w, sol.Table())
	core := coreof.Of(jc)
	fmt.Fprintf(w, "\nsnapshot-wise core (%d facts):\n", core.Len())
	fmt.Fprint(w, render.Instance(core))
	fmt.Fprintf(w, "\nequivalent to the original: %v; already a core: %v\n",
		verify.HomEquivalent(core.Abstract(), jc.Abstract()), coreof.IsCore(core))
	return nil
}
