// Command tdxd is the temporal data exchange daemon: an HTTP server
// holding a registry of compiled exchanges (mapping-hash keyed,
// LRU-bounded, singleflight-deduplicated compilation) and running data
// exchange against them with request-scoped sources. The mapping is
// compiled once and amortized over every request; each run is bounded by
// a per-request deadline and uses a per-run value interner, so a
// long-lived daemon's memory tracks the registered mappings, not the
// request traffic.
//
// Usage:
//
//	tdxd [-addr :8080] [-max-mappings 64] [-max-sessions 64] [-max-timeout 60s] [-parallel 0]
//	     [-max-inflight 0] [-queue-wait 2s] [-max-body 64MiB] [-access-log] [-pprof addr] [-state DIR]
//	     [-advertise host:port] [-peers udp,udp,...] [-gossip udp] [-node-id id] [-gossip-secret s]
//	     [-gossip-interval 1s]
//
// Endpoints (see package repro/internal/server and the README for the
// full API):
//
//	POST   /v1/mappings                   register (compile) a mapping → hash
//	GET    /v1/mappings                   list registered mappings
//	POST   /v1/exchanges/{hash}/run       chase the body source → solution + stats
//	POST   /v1/exchanges/{hash}/answer    certain answers (?query=)
//	POST   /v1/exchanges/{hash}/snapshot  abstract snapshot (?at=)
//	POST   /v1/exchanges/{hash}/sessions  open an incremental session over the body source
//	POST   /v1/sessions/{id}/facts        ingest a delta of new facts → solution diff
//	DELETE /v1/sessions/{id}              drop a session
//	GET    /healthz                       liveness + registry/session/admission counters
//	GET    /metrics                       Prometheus text exposition of the same counters
//
// Solution-bearing responses are framed and streamed: the solution
// document is encoded straight off the frozen columnar store in bounded
// chunks, so serving a huge solution never stages it in memory. With
// -max-inflight N at most N chases run concurrently; the overflow
// queues up to -queue-wait for a freed slot and is then rejected with
// 429, so a burst degrades to bounded latency instead of unbounded
// memory. -max-body caps request bodies (413 beyond it).
//
// Sessions are the incremental path: opening one chases the body source
// once and pins the frozen solution; each posted delta then runs the
// semi-naive delta chase (byte-identical to re-chasing everything, but
// touching only what the new facts reach) and answers with the solution
// diff. Live sessions are LRU-bounded (-max-sessions) because each pins
// its solution plus the retained chase state.
//
// With -state DIR the daemon persists warm-start state under DIR:
// registered mappings (canonical text) and live sessions ride a
// manifest, chased solutions ride mmap-able columnar snapshots
// (internal/snapshot). On boot the manifest is replayed — mappings
// recompile without counting as request-driven compiles, sessions
// resume from their snapshots — so a restarted daemon serves its first
// /run from the snapshot cache, byte-identical to the pre-restart
// response.
//
// With -advertise the daemon joins (or founds) a tdxd fleet: nodes
// gossip signed, TTL'd facts about who holds which compiled exchange
// over UDP (internal/fleet), and requests addressed to an exchange this
// node does not hold are forwarded to the nodes that do — consistent
// hashing over the exchange fingerprint keeps each mapping hot on a few
// owners, and any node answers any request byte-identically. -peers
// seeds the mesh (any one live node suffices; membership is discovered
// transitively), -advertise is the HTTP address peers forward to, and
// -node-id pins the node's ring identity — persisted under -state, so a
// restarted node keeps its placement. See the README's fleet section.
//
// Shutdown is graceful: on SIGTERM or SIGINT the listener closes, then
// in-flight runs get a drain window to finish; runs still going when it
// lapses are canceled through the engine's context plumbing, so the
// process exits promptly with no goroutine left chasing.
package main

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	_ "net/http/pprof" // debug listener endpoints; see -pprof
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/internal/fleet"
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	maxMappings := flag.Int("max-mappings", server.DefaultCapacity, "registry capacity: compiled exchanges kept resident (LRU eviction beyond it)")
	maxSessions := flag.Int("max-sessions", server.DefaultMaxSessions, "live incremental-session capacity (LRU eviction beyond it; each session pins a solution and its retained chase state)")
	maxTimeout := flag.Duration("max-timeout", server.DefaultMaxTimeout, "per-request run budget cap (and default when a request names none)")
	parallel := flag.Int("parallel", 0, "default chase worker count per run; 0 uses all CPUs")
	maxInflight := flag.Int("max-inflight", 0, "concurrent chase bound: beyond it chases queue up to -queue-wait, then 429; 0 means unlimited")
	queueWait := flag.Duration("queue-wait", server.DefaultQueueWait, "how long an over--max-inflight chase queues for a slot before 429")
	maxBody := flag.Int64("max-body", server.DefaultMaxBody, "request body size cap in bytes (413 beyond it)")
	streamThreshold := flag.Int("stream-threshold", server.DefaultStreamThreshold, "solution fact count at which responses switch from buffered (Content-Length) to chunked streaming; negative streams everything")
	accessLog := flag.Bool("access-log", false, "log one structured line per request (method, path, status, bytes, duration)")
	drain := flag.Duration("drain", 10*time.Second, "shutdown drain window for in-flight requests")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060); off when empty")
	stateDir := flag.String("state", "", "persist warm-start state (mapping manifest, session and run snapshots) under this directory; off when empty")
	maxRunSnapshots := flag.Int("max-run-snapshots", server.DefaultMaxRunSnapshots, "disk run-cache bound under -state DIR/runs (oldest snapshots pruned beyond it)")
	advertise := flag.String("advertise", "", "fleet mode: the HTTP host:port peers forward requests to (this node's reachable -addr); off when empty")
	peers := flag.String("peers", "", "comma-separated UDP gossip addresses seeding the fleet mesh (any one live node suffices)")
	gossipBind := flag.String("gossip", "", "UDP gossip bind address (default 127.0.0.1:0; bind a reachable address for real fleets)")
	nodeID := flag.String("node-id", "", "stable fleet identity (ring position); default: read or created under -state DIR/node-id, else derived fresh")
	gossipSecret := flag.String("gossip-secret", "", "shared fleet secret: gossip packets are HMAC-signed and mis-signed peers ignored; empty means unsigned (loopback only)")
	gossipInterval := flag.Duration("gossip-interval", fleet.DefaultInterval, "gossip period; fact TTL (failure detection) is 5x this")
	flag.Parse()

	cfg := server.Config{
		MaxMappings:     *maxMappings,
		MaxSessions:     *maxSessions,
		MaxTimeout:      *maxTimeout,
		Parallelism:     *parallel,
		MaxInflight:     *maxInflight,
		QueueWait:       *queueWait,
		MaxBodyBytes:    *maxBody,
		StreamThreshold: *streamThreshold,
		StateDir:        *stateDir,
		MaxRunSnapshots: *maxRunSnapshots,
	}
	if *accessLog {
		cfg.AccessLogf = log.Printf
	}
	if *advertise == "" && *peers != "" {
		log.Fatal("tdxd: -peers requires -advertise (the HTTP address peers forward requests to)")
	}
	if *advertise != "" {
		id, err := resolveNodeID(*nodeID, *stateDir)
		if err != nil {
			log.Fatalf("tdxd: node id: %v", err)
		}
		cfg.FleetConfig = &fleet.Config{
			ID:            id,
			AdvertiseHTTP: *advertise,
			BindUDP:       *gossipBind,
			Peers:         splitPeers(*peers),
			Interval:      *gossipInterval,
			Secret:        *gossipSecret,
		}
	}
	srv, err := server.New(cfg)
	if err != nil {
		log.Fatalf("tdxd: %v", err)
	}
	if *stateDir != "" {
		if err := srv.WarmStart(); err != nil {
			log.Fatalf("tdxd: warm start: %v", err)
		}
		log.Printf("tdxd: state dir %s (run-cache bound %d)", *stateDir, *maxRunSnapshots)
	}
	if n := srv.Fleet(); n != nil {
		n.Start()
		log.Printf("tdxd: fleet node %s gossiping on %s (advertising %s, %d seed peers)",
			n.ID(), n.GossipAddr(), *advertise, len(splitPeers(*peers)))
	}

	// baseCtx underlies every request context: canceling it aborts
	// in-flight chases through the engine's context plumbing — the
	// hard-stop half of graceful shutdown.
	baseCtx, baseCancel := context.WithCancel(context.Background())
	defer baseCancel()
	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		BaseContext:       func(net.Listener) context.Context { return baseCtx },
	}

	// The profiling listener is opt-in and separate from the serving mux:
	// the API handler above is a custom mux without the pprof routes, so
	// enabling -pprof never exposes profiles on the public address. The
	// pprof import registers its handlers on http.DefaultServeMux, which
	// only this debug server uses.
	if *pprofAddr != "" {
		go func() {
			log.Printf("tdxd pprof listening on %s", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Printf("tdxd: pprof listener: %v", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("tdxd listening on %s (registry capacity %d, max timeout %v)", *addr, *maxMappings, *maxTimeout)
		errc <- hs.ListenAndServe()
	}()

	select {
	case err := <-errc:
		// The listener failed before any signal (port in use, ...).
		log.Fatalf("tdxd: %v", err)
	case <-ctx.Done():
	}
	log.Printf("tdxd: shutting down (draining up to %v)", *drain)
	shCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := hs.Shutdown(shCtx); err != nil {
		// The drain window lapsed with runs still in flight: cancel them
		// through their contexts and close the remaining connections.
		log.Printf("tdxd: drain window lapsed, canceling in-flight runs: %v", err)
		baseCancel()
		if err := hs.Close(); err != nil {
			log.Printf("tdxd: close: %v", err)
		}
		_ = srv.Close()
		os.Exit(1)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("tdxd: %v", err)
	}
	// Serving is done: release the gossip socket and sync the durable
	// counters.
	if err := srv.Close(); err != nil {
		log.Printf("tdxd: close: %v", err)
	}
	fmt.Fprintln(os.Stderr, "tdxd: bye")
}

// splitPeers parses the -peers list.
func splitPeers(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// resolveNodeID settles this node's fleet identity. Priority: the
// explicit -node-id; then the id persisted under -state (so a restarted
// node keeps its ring position, and with it the exchanges consistent
// hashing already placed on it); else a freshly derived one. Whatever
// wins is persisted when a state directory exists.
func resolveNodeID(explicit, stateDir string) (string, error) {
	if stateDir == "" {
		if explicit != "" {
			return explicit, nil
		}
		return freshNodeID()
	}
	path := filepath.Join(stateDir, "node-id")
	if explicit == "" {
		if data, err := os.ReadFile(path); err == nil {
			if id := strings.TrimSpace(string(data)); id != "" {
				return id, nil
			}
		}
	}
	id := explicit
	if id == "" {
		var err error
		if id, err = freshNodeID(); err != nil {
			return "", err
		}
	}
	if err := os.MkdirAll(stateDir, 0o755); err != nil {
		return "", err
	}
	if err := os.WriteFile(path, []byte(id+"\n"), 0o644); err != nil {
		return "", err
	}
	return id, nil
}

// freshNodeID derives a new identity: hostname plus random suffix, so
// ids are human-attributable and collision-free.
func freshNodeID() (string, error) {
	var b [6]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", err
	}
	host, err := os.Hostname()
	if err != nil || host == "" {
		host = "tdxd"
	}
	return host + "-" + hex.EncodeToString(b[:]), nil
}
