package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestMain doubles the test binary as the tdx CLI when TDX_TEST_MAIN is
// set: the exec-level tests re-run themselves with the variable set to
// observe real exit codes and stderr — main() itself, not the run()
// seam.
func TestMain(m *testing.M) {
	if os.Getenv("TDX_TEST_MAIN") == "1" {
		main()
		return
	}
	os.Exit(m.Run())
}

func testdata(name string) string {
	return filepath.Join("..", "..", "testdata", name)
}

// runCmd invokes a subcommand against the testdata files and returns its
// output.
func runCmd(t *testing.T, cmd string, args ...string) string {
	t.Helper()
	var b strings.Builder
	if err := run(context.Background(), cmd, args, &b); err != nil {
		t.Fatalf("tdx %s %v: %v", cmd, args, err)
	}
	return b.String()
}

func TestChaseCommand(t *testing.T) {
	out := runCmd(t, "chase", "-m", testdata("employment.tdx"), "-d", testdata("employment.facts"))
	for _, want := range []string{
		"Emp(Ada, IBM, 18k) @ [2013,2014)",
		"Emp(Ada, Google, 18k) @ [2014,inf)",
		"Emp(Bob, IBM, 13k) @ [2015,2018)",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("chase output missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "N1^[2012,2013)") {
		t.Fatalf("chase output missing annotated null:\n%s", out)
	}
	// Table mode renders per-relation headers.
	table := runCmd(t, "chase", "-m", testdata("employment.tdx"), "-d", testdata("employment.facts"), "-table")
	if !strings.Contains(table, "Emp+") || !strings.Contains(table, "salary") {
		t.Fatalf("table output:\n%s", table)
	}
}

func TestChaseOutputReparses(t *testing.T) {
	// The fact-line output must be valid TDX fact syntax (quoting rules
	// included), so pipelines can feed it back in.
	out := runCmd(t, "chase", "-m", testdata("employment.tdx"), "-d", testdata("employment.facts"))
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if !strings.Contains(line, "@") {
			t.Fatalf("line %q is not a fact line", line)
		}
	}
}

func TestNormalizeCommand(t *testing.T) {
	smart := runCmd(t, "normalize", "-m", testdata("employment.tdx"), "-d", testdata("employment.facts"))
	if got := strings.Count(smart, "@"); got != 9 {
		t.Fatalf("smart normalization = %d facts, want 9 (Figure 5):\n%s", got, smart)
	}
	naive := runCmd(t, "normalize", "-m", testdata("employment.tdx"), "-d", testdata("employment.facts"), "-norm", "naive")
	if got := strings.Count(naive, "@"); got != 14 {
		t.Fatalf("naive normalization = %d facts, want 14 (Figure 6):\n%s", got, naive)
	}
}

func TestQueryCommand(t *testing.T) {
	// The mapping's declared query.
	out := runCmd(t, "query", "-m", testdata("employment.tdx"), "-d", testdata("employment.facts"))
	if !strings.Contains(out, "q(Ada, 18k) @ [2013,inf)") || !strings.Contains(out, "q(Bob, 13k) @ [2015,2018)") {
		t.Fatalf("query output:\n%s", out)
	}
	// An inline query.
	out = runCmd(t, "query", "-m", testdata("employment.tdx"), "-d", testdata("employment.facts"),
		"-q", `query who(n) :- Emp(n, "IBM", s)`)
	if !strings.Contains(out, "who(Ada)") || !strings.Contains(out, "who(Bob)") {
		t.Fatalf("inline query output:\n%s", out)
	}
}

func TestSnapshotCommand(t *testing.T) {
	src := runCmd(t, "snapshot", "-m", testdata("employment.tdx"), "-d", testdata("employment.facts"), "-at", "2013")
	if !strings.Contains(src, "E(Ada, IBM)") || !strings.Contains(src, "S(Ada, 18k)") {
		t.Fatalf("source snapshot:\n%s", src)
	}
	tgt := runCmd(t, "snapshot", "-m", testdata("employment.tdx"), "-d", testdata("employment.facts"), "-at", "2013", "-target")
	if !strings.Contains(tgt, "Emp(Ada, IBM, 18k)") {
		t.Fatalf("target snapshot:\n%s", tgt)
	}
}

func TestCoreCommand(t *testing.T) {
	// Figure 9 is already a core, so core == chase here.
	out := runCmd(t, "core", "-m", testdata("employment.tdx"), "-d", testdata("employment.facts"))
	if got := strings.Count(out, "@"); got != 5 {
		t.Fatalf("core = %d facts, want 5:\n%s", got, out)
	}
}

func TestValidateCommand(t *testing.T) {
	out := runCmd(t, "validate", "-m", testdata("employment.tdx"), "-d", testdata("employment.facts"))
	if !strings.Contains(out, "mapping ok: 2 source relations, 1 target relations, 2 tgds, 1 egds, 1 queries") {
		t.Fatalf("validate output:\n%s", out)
	}
	if !strings.Contains(out, "facts ok: 5 facts, coalesced, complete=true") {
		t.Fatalf("validate output:\n%s", out)
	}
}

func TestNormExampleFiles(t *testing.T) {
	// The Figure 7/8 testdata: normalization with the Example 14 mapping.
	out := runCmd(t, "normalize", "-m", testdata("norm-example.tdx"), "-d", testdata("norm-example.facts"))
	if got := strings.Count(out, "@"); got != 13 {
		t.Fatalf("Figure 8 normalization = %d facts, want 13:\n%s", got, out)
	}
	for _, want := range []string{"R(a) @ [5,7)", "P(b) @ [20,25)", "S(b) @ [25,inf)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestErrorPaths(t *testing.T) {
	var b strings.Builder
	if err := run(context.Background(), "chase", []string{"-d", testdata("employment.facts")}, &b); err == nil {
		t.Fatal("missing -m accepted")
	}
	if err := run(context.Background(), "chase", []string{"-m", testdata("employment.tdx")}, &b); err == nil {
		t.Fatal("missing -d accepted")
	}
	if err := run(context.Background(), "frobnicate", nil, &b); err == nil {
		t.Fatal("unknown command accepted")
	}
	if err := run(context.Background(), "chase", []string{"-m", "no-such-file.tdx", "-d", "x"}, &b); err == nil {
		t.Fatal("missing file accepted")
	}
	if err := run(context.Background(), "chase", []string{"-m", testdata("employment.tdx"), "-d", testdata("employment.facts"), "-norm", "bogus"}, &b); err == nil {
		t.Fatal("bad -norm accepted")
	}
	if err := run(context.Background(), "snapshot", []string{"-m", testdata("employment.tdx"), "-d", testdata("employment.facts")}, &b); err == nil {
		t.Fatal("missing -at accepted")
	}
	if err := run(context.Background(), "query", []string{"-m", testdata("employment.tdx"), "-d", testdata("employment.facts"), "-name", "nope"}, &b); err == nil {
		t.Fatal("unknown query name accepted")
	}
}

func TestChaseJSONOutput(t *testing.T) {
	out := runCmd(t, "chase", "-m", testdata("employment.tdx"), "-d", testdata("employment.facts"), "-json")
	if !strings.Contains(out, `"rel": "Emp"`) || !strings.Contains(out, `"interval": "[2013,2014)"`) {
		t.Fatalf("json output:\n%s", out)
	}
}

func TestTemporalMappingChase(t *testing.T) {
	out := runCmd(t, "chase", "-m", testdata("phd.tdx"), "-d", testdata("phd.facts"))
	if !strings.Contains(out, "PhDCan(ada, ") || !strings.Contains(out, "@ [2015,2016)") {
		t.Fatalf("past witness missing:\n%s", out)
	}
	if !strings.Contains(out, "Alumni(ada, ") || !strings.Contains(out, "@ [2017,inf)") {
		t.Fatalf("always-future witness missing:\n%s", out)
	}
}

func TestDiffCommand(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.facts")
	b := filepath.Join(dir, "b.facts")
	if err := os.WriteFile(a, []byte("E(Ada, IBM) @ [0, 10)\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(b, []byte("E(Ada, IBM) @ [3, 7)\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out := runCmd(t, "diff", "-d", a, "-against", b)
	if !strings.Contains(out, "E(Ada, IBM) @ [0,3)") || !strings.Contains(out, "E(Ada, IBM) @ [7,10)") {
		t.Fatalf("diff output:\n%s", out)
	}
	var sb strings.Builder
	if err := run(context.Background(), "diff", []string{"-d", a}, &sb); err == nil {
		t.Fatal("missing -against accepted")
	}
}

func TestContextFlows(t *testing.T) {
	// A canceled parent context (what Ctrl-C produces) aborts the run.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var b strings.Builder
	err := run(ctx, "chase", []string{
		"-m", testdata("employment.tdx"), "-d", testdata("employment.facts")}, &b)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled ctx: %v", err)
	}
	// A generous -timeout leaves the run unharmed.
	b.Reset()
	err = run(context.Background(), "chase", []string{
		"-m", testdata("employment.tdx"), "-d", testdata("employment.facts"), "-timeout", "1m"}, &b)
	if err != nil || !strings.Contains(b.String(), "Emp(") {
		t.Fatalf("timeout 1m: %v\n%s", err, b.String())
	}
	// An expired budget fails with the context's error.
	b.Reset()
	err = run(context.Background(), "chase", []string{
		"-m", testdata("employment.tdx"), "-d", testdata("employment.facts"), "-timeout", "1ns"}, &b)
	if err == nil || (!errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, context.Canceled)) {
		t.Fatalf("timeout 1ns: %v", err)
	}
}

func TestQueryFlagPrecedence(t *testing.T) {
	// -q (inline text) wins over -name when both are given.
	var b strings.Builder
	err := run(context.Background(), "query", []string{
		"-m", testdata("employment.tdx"), "-d", testdata("employment.facts"),
		"-q", `query who(n) :- Emp(n, "IBM", s)`, "-name", "q"}, &b)
	if err != nil || !strings.Contains(b.String(), "who(Ada)") || strings.Contains(b.String(), "q(Ada") {
		t.Fatalf("precedence: %v\n%s", err, b.String())
	}
}

// TestTimeoutExitCode is the CLI-level contract for an exhausted
// -timeout: the process exits non-zero (1, not a panic or a flag-error
// 2) and stderr names the -timeout flag and its budget — re-exec'ing the
// test binary as the real CLI (see TestMain).
func TestTimeoutExitCode(t *testing.T) {
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(exe, "chase",
		"-m", testdata("employment.tdx"), "-d", testdata("employment.facts"),
		"-timeout", "1ns")
	cmd.Env = append(os.Environ(), "TDX_TEST_MAIN=1")
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	err = cmd.Run()
	var ee *exec.ExitError
	if !errors.As(err, &ee) {
		t.Fatalf("expected a non-zero exit, got err=%v stderr=%s", err, stderr.String())
	}
	if code := ee.ExitCode(); code != 1 {
		t.Fatalf("exit code = %d, want 1; stderr: %s", code, stderr.String())
	}
	msg := stderr.String()
	if !strings.Contains(msg, "-timeout") || !strings.Contains(msg, "1ns") {
		t.Fatalf("stderr does not name the -timeout budget: %q", msg)
	}
	if !strings.Contains(msg, "deadline") {
		t.Fatalf("stderr does not surface the underlying context error: %q", msg)
	}
	if stdout.Len() != 0 {
		t.Fatalf("a failed run wrote to stdout: %q", stdout.String())
	}

	// Control: the same invocation with a generous budget exits zero.
	ok := exec.Command(exe, "chase",
		"-m", testdata("employment.tdx"), "-d", testdata("employment.facts"),
		"-timeout", "1m")
	ok.Env = append(os.Environ(), "TDX_TEST_MAIN=1")
	var okOut bytes.Buffer
	ok.Stdout = &okOut
	if err := ok.Run(); err != nil {
		t.Fatalf("generous budget failed: %v", err)
	}
	if !strings.Contains(okOut.String(), "Emp(") {
		t.Fatalf("generous budget output: %q", okOut.String())
	}
}

// TestDeadlineErrorMessage covers the in-process seam too: run()'s error
// wraps context.DeadlineExceeded (so main exits 1) and reads like a
// -timeout diagnosis, not a bare context error.
func TestDeadlineErrorMessage(t *testing.T) {
	var b strings.Builder
	err := run(context.Background(), "chase", []string{
		"-m", testdata("employment.tdx"), "-d", testdata("employment.facts"),
		"-timeout", "1ns"}, &b)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error does not wrap DeadlineExceeded: %v", err)
	}
	if !strings.Contains(err.Error(), "-timeout") {
		t.Fatalf("error does not name -timeout: %v", err)
	}
}

// TestChaseSaveLoad: chase -save writes a solution snapshot, chase -load
// replays it without a source file, output identical to the live chase;
// re-saving the loaded solution is byte-identical; loading against a
// different mapping is rejected.
func TestChaseSaveLoad(t *testing.T) {
	dir := t.TempDir()
	snap := filepath.Join(dir, "solution.snap")
	live := runCmd(t, "chase", "-m", testdata("employment.tdx"), "-d", testdata("employment.facts"), "-save", snap)
	loaded := runCmd(t, "chase", "-m", testdata("employment.tdx"), "-load", snap)
	if live != loaded {
		t.Fatalf("loaded solution differs from live chase:\nlive:\n%s\nloaded:\n%s", live, loaded)
	}

	resnap := filepath.Join(dir, "resaved.snap")
	runCmd(t, "chase", "-m", testdata("employment.tdx"), "-load", snap, "-save", resnap)
	a, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(resnap)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("re-saved snapshot is not byte-identical")
	}

	var sb strings.Builder
	if err := run(context.Background(), "chase", []string{"-m", testdata("norm-example.tdx"), "-load", snap}, &sb); err == nil {
		t.Fatal("loading against a different mapping accepted")
	}
	if err := run(context.Background(), "chase", []string{"-m", testdata("employment.tdx"), "-load", filepath.Join(dir, "nope.snap")}, &sb); err == nil {
		t.Fatal("missing snapshot file accepted")
	}
}

// TestChaseSaveLoadExec is the exec-level save/load contract: the real
// CLI round-trips a snapshot across two processes with identical stdout
// and zero exit codes.
func TestChaseSaveLoadExec(t *testing.T) {
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	snap := filepath.Join(t.TempDir(), "solution.snap")

	save := exec.Command(exe, "chase",
		"-m", testdata("employment.tdx"), "-d", testdata("employment.facts"), "-save", snap)
	save.Env = append(os.Environ(), "TDX_TEST_MAIN=1")
	var saveOut, saveErr bytes.Buffer
	save.Stdout = &saveOut
	save.Stderr = &saveErr
	if err := save.Run(); err != nil {
		t.Fatalf("chase -save: %v\n%s", err, saveErr.String())
	}
	if _, err := os.Stat(snap); err != nil {
		t.Fatalf("snapshot not written: %v", err)
	}

	load := exec.Command(exe, "chase", "-m", testdata("employment.tdx"), "-load", snap)
	load.Env = append(os.Environ(), "TDX_TEST_MAIN=1")
	var loadOut, loadErr bytes.Buffer
	load.Stdout = &loadOut
	load.Stderr = &loadErr
	if err := load.Run(); err != nil {
		t.Fatalf("chase -load: %v\n%s", err, loadErr.String())
	}
	if !bytes.Equal(saveOut.Bytes(), loadOut.Bytes()) {
		t.Fatalf("exec-level load differs:\nsave:\n%s\nload:\n%s", saveOut.String(), loadOut.String())
	}
	if !strings.Contains(loadOut.String(), "Emp(") {
		t.Fatalf("loaded output: %q", loadOut.String())
	}
}

// TestChaseJSONStats: -json -stats shares the lowerCamel chase.Stats
// encoding with tdxd run responses (stderr carries the stats document).
func TestChaseJSONStats(t *testing.T) {
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(exe, "chase",
		"-m", testdata("employment.tdx"), "-d", testdata("employment.facts"),
		"-json", "-stats")
	cmd.Env = append(os.Environ(), "TDX_TEST_MAIN=1")
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("chase -json -stats: %v\n%s", err, stderr.String())
	}
	var stats map[string]any
	if err := json.Unmarshal(stderr.Bytes(), &stats); err != nil {
		t.Fatalf("stderr is not one JSON stats document: %v\n%q", err, stderr.String())
	}
	for _, key := range []string{"normalizedSourceFacts", "tgdFires", "egdMerges", "tgdWorkers"} {
		if _, ok := stats[key]; !ok {
			t.Fatalf("stats missing %q: %s", key, stderr.String())
		}
	}
	if !strings.Contains(stdout.String(), `"rel": "Emp"`) {
		t.Fatalf("stdout is not the solution JSON: %q", stdout.String())
	}
}
