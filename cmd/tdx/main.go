// Command tdx is the temporal data exchange command-line tool. It loads a
// schema mapping and a concrete source instance in the TDX text format
// and runs the paper's pipeline: normalization (§4.2), the concrete chase
// (§4.3), and certain-answer query evaluation (§5).
//
// Usage:
//
//	tdx chase     -m mapping.tdx -d source.facts [-norm smart|naive] [-egd batch|stepwise] [-coalesce] [-table] [-stats] [-trace] [-json]
//	tdx normalize -m mapping.tdx -d source.facts [-norm smart|naive] [-table]
//	tdx query     -m mapping.tdx -d source.facts [-q 'query q(n) :- Emp(n, c, s)' | -name q] [-table]
//	tdx snapshot  -m mapping.tdx -d source.facts -at 2013 [-target]
//	tdx core      -m mapping.tdx -d source.facts [-table]
//	tdx diff      -d new.facts -against old.facts [-m mapping.tdx] [-table]
//	tdx validate  -m mapping.tdx [-d source.facts]
//
// Mappings whose tgd heads carry modal markers (past / future / always
// past / always future — the §7 extension) are chased with the temporal
// chase automatically. Fact output is in the TDX fact format and can be
// fed back into tdx.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/chase"
	"repro/internal/core"
	"repro/internal/coreof"
	"repro/internal/instance"
	"repro/internal/interval"
	"repro/internal/jsonio"
	"repro/internal/normalize"
	"repro/internal/parser"
	"repro/internal/query"
	"repro/internal/render"
	"repro/internal/schema"
	"repro/internal/temporal"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	if os.Args[1] == "help" || os.Args[1] == "-h" || os.Args[1] == "--help" {
		usage()
		return
	}
	if err := run(os.Args[1], os.Args[2:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tdx:", err)
		os.Exit(1)
	}
}

// run dispatches one subcommand, writing its report to w. Split from
// main for testability.
func run(cmd string, args []string, w io.Writer) error {
	switch cmd {
	case "chase":
		return cmdChase(args, w)
	case "normalize":
		return cmdNormalize(args, w)
	case "query":
		return cmdQuery(args, w)
	case "snapshot":
		return cmdSnapshot(args, w)
	case "core":
		return cmdCore(args, w)
	case "diff":
		return cmdDiff(args, w)
	case "validate":
		return cmdValidate(args, w)
	default:
		usage()
		return fmt.Errorf("unknown command %q", cmd)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `tdx — temporal data exchange (Golshanara & Chomicki)

commands:
  chase      materialize a concrete universal solution (c-chase)
  normalize  normalize the source instance w.r.t. the mapping
  query      compute certain answers for a query
  snapshot   print the abstract snapshot at a time point
  core       chase, then shrink the solution to its snapshot-wise core
  diff       semantic temporal difference between two fact files
  validate   check a mapping (and optionally a fact file)

run 'tdx <command> -h' for flags
`)
}

// commonFlags bundles the flags shared by most subcommands.
type commonFlags struct {
	mapping string
	data    string
	norm    string
	egd     string
	table   bool
}

func (c *commonFlags) register(fs *flag.FlagSet) {
	fs.StringVar(&c.mapping, "m", "", "mapping file (.tdx)")
	fs.StringVar(&c.data, "d", "", "source facts file")
	fs.StringVar(&c.norm, "norm", "smart", "normalization strategy: smart (Algorithm 1) or naive")
	fs.StringVar(&c.egd, "egd", "batch", "egd application strategy: batch or stepwise")
	fs.BoolVar(&c.table, "table", false, "render output as per-relation tables instead of fact lines")
}

func (c *commonFlags) options() (*chase.Options, error) {
	opts := &chase.Options{}
	switch c.norm {
	case "smart", "":
		opts.Norm = normalize.StrategySmart
	case "naive":
		opts.Norm = normalize.StrategyNaive
	default:
		return nil, fmt.Errorf("unknown -norm %q (want smart or naive)", c.norm)
	}
	switch c.egd {
	case "batch", "":
		opts.Egd = chase.EgdBatch
	case "stepwise":
		opts.Egd = chase.EgdStepwise
	default:
		return nil, fmt.Errorf("unknown -egd %q (want batch or stepwise)", c.egd)
	}
	return opts, nil
}

// load reads the mapping and facts files.
func (c *commonFlags) load() (*core.Engine, []query.UCQ, *instance.Concrete, error) {
	eng, _, queries, ic, err := c.loadFile()
	return eng, queries, ic, err
}

// loadFile reads the mapping and facts files, also returning the parsed
// file so callers can detect temporal (§7 extension) mappings.
func (c *commonFlags) loadFile() (*core.Engine, *parser.File, []query.UCQ, *instance.Concrete, error) {
	if c.mapping == "" {
		return nil, nil, nil, nil, fmt.Errorf("-m mapping file is required")
	}
	mtext, err := os.ReadFile(c.mapping)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	f, err := parser.ParseMapping(string(mtext))
	if err != nil {
		return nil, nil, nil, nil, err
	}
	eng, err := core.New(f.Mapping, nil)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	var ic *instance.Concrete
	if c.data != "" {
		dtext, err := os.ReadFile(c.data)
		if err != nil {
			return nil, nil, nil, nil, err
		}
		ic, err = core.LoadFacts(string(dtext), eng.Mapping().Source)
		if err != nil {
			return nil, nil, nil, nil, err
		}
	}
	return eng, f, f.Queries, ic, nil
}

// printInstance writes the instance as fact lines or tables.
func printInstance(w io.Writer, c *instance.Concrete, asTable bool) {
	if c.Len() == 0 {
		fmt.Fprintln(w, "(empty)")
		return
	}
	if asTable {
		fmt.Fprint(w, render.Instance(c))
		return
	}
	fmt.Fprint(w, parser.FormatFacts(c))
}

func cmdChase(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("chase", flag.ExitOnError)
	var cf commonFlags
	cf.register(fs)
	coalesce := fs.Bool("coalesce", false, "coalesce the solution")
	stats := fs.Bool("stats", false, "print chase statistics to stderr")
	trace := fs.Bool("trace", false, "print every chase step to stderr")
	asJSON := fs.Bool("json", false, "emit the solution as JSON instead of fact lines")
	if err := fs.Parse(args); err != nil {
		return err
	}
	opts, err := cf.options()
	if err != nil {
		return err
	}
	opts.Coalesce = *coalesce
	if *trace {
		opts.Trace = func(e chase.Event) { fmt.Fprintln(os.Stderr, "  ", e) }
	}
	eng, file, _, ic, err := cf.loadFile()
	if err != nil {
		return err
	}
	if ic == nil {
		return fmt.Errorf("-d facts file is required")
	}
	var res *core.Result
	if file.Temporal != nil {
		// Modal mapping (§7 extension): run the temporal chase.
		jc, stats, err := temporal.Chase(ic, file.Temporal, opts)
		if err != nil {
			return err
		}
		if opts.Coalesce {
			jc = jc.Coalesce()
		}
		res = &core.Result{Solution: jc, Stats: stats}
	} else {
		eng.SetOptions(*opts)
		res, err = eng.Exchange(ic)
		if err != nil {
			return err
		}
	}
	if *asJSON {
		data, err := jsonio.Encode(res.Solution)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, string(data))
	} else {
		printInstance(w, res.Solution, cf.table)
	}
	if *stats {
		fmt.Fprintf(os.Stderr, "%+v\n", res.Stats)
	}
	return nil
}

func cmdCore(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("core", flag.ExitOnError)
	var cf commonFlags
	cf.register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	opts, err := cf.options()
	if err != nil {
		return err
	}
	eng, _, ic, err := cf.load()
	if err != nil {
		return err
	}
	if ic == nil {
		return fmt.Errorf("-d facts file is required")
	}
	eng.SetOptions(*opts)
	res, err := eng.Exchange(ic)
	if err != nil {
		return err
	}
	printInstance(w, coreof.Of(res.Solution), cf.table)
	return nil
}

func cmdNormalize(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("normalize", flag.ExitOnError)
	var cf commonFlags
	cf.register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	opts, err := cf.options()
	if err != nil {
		return err
	}
	eng, _, ic, err := cf.load()
	if err != nil {
		return err
	}
	if ic == nil {
		return fmt.Errorf("-d facts file is required")
	}
	eng.SetOptions(*opts)
	printInstance(w, eng.NormalizeSource(ic), cf.table)
	return nil
}

func cmdQuery(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	var cf commonFlags
	cf.register(fs)
	qtext := fs.String("q", "", "inline query, e.g. 'query q(n) :- Emp(n, c, s)'")
	qname := fs.String("name", "", "run the query with this name from the mapping file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	opts, err := cf.options()
	if err != nil {
		return err
	}
	eng, queries, ic, err := cf.load()
	if err != nil {
		return err
	}
	if ic == nil {
		return fmt.Errorf("-d facts file is required")
	}
	eng.SetOptions(*opts)
	var u query.UCQ
	switch {
	case *qtext != "":
		cq, err := parser.ParseQueryLine(*qtext)
		if err != nil {
			return err
		}
		u, err = query.NewUCQ(cq.Name, cq)
		if err != nil {
			return err
		}
	case *qname != "":
		found := false
		for _, q := range queries {
			if q.Name == *qname {
				u, found = q, true
				break
			}
		}
		if !found {
			return fmt.Errorf("no query named %q in %s", *qname, cf.mapping)
		}
	case len(queries) == 1:
		u = queries[0]
	default:
		return fmt.Errorf("specify -q or -name (mapping declares %d queries)", len(queries))
	}
	ans, err := eng.Answer(u, ic)
	if err != nil {
		return err
	}
	printInstance(w, ans, cf.table)
	return nil
}

func cmdSnapshot(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("snapshot", flag.ExitOnError)
	var cf commonFlags
	cf.register(fs)
	at := fs.String("at", "", "time point (required)")
	target := fs.Bool("target", false, "chase first and snapshot the solution instead of the source")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *at == "" {
		return fmt.Errorf("-at time point is required")
	}
	tp, err := interval.ParseTime(*at)
	if err != nil {
		return err
	}
	opts, err := cf.options()
	if err != nil {
		return err
	}
	eng, _, ic, err := cf.load()
	if err != nil {
		return err
	}
	if ic == nil {
		return fmt.Errorf("-d facts file is required")
	}
	inst := ic
	if *target {
		eng.SetOptions(*opts)
		res, err := eng.Exchange(ic)
		if err != nil {
			return err
		}
		inst = res.Solution
	}
	fmt.Fprintf(w, "db%v = %s\n", tp, inst.Snapshot(tp))
	return nil
}

func cmdDiff(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	var cf commonFlags
	cf.register(fs)
	other := fs.String("against", "", "second facts file (required): output is <-d> minus <-against>, per time point")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if cf.data == "" || *other == "" {
		return fmt.Errorf("diff needs -d and -against fact files")
	}
	var sch *schema.Schema
	if cf.mapping != "" {
		eng, _, _, err := cf.load()
		if err != nil {
			return err
		}
		sch = eng.Mapping().Source
	}
	read := func(path string) (*instance.Concrete, error) {
		text, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		return core.LoadFacts(string(text), sch)
	}
	a, err := read(cf.data)
	if err != nil {
		return err
	}
	b, err := read(*other)
	if err != nil {
		return err
	}
	printInstance(w, instance.Diff(a, b), cf.table)
	return nil
}

func cmdValidate(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("validate", flag.ExitOnError)
	var cf commonFlags
	cf.register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	eng, queries, ic, err := cf.load()
	if err != nil {
		return err
	}
	m := eng.Mapping()
	fmt.Fprintf(w, "mapping ok: %d source relations, %d target relations, %d tgds, %d egds, %d queries\n",
		m.Source.Len(), m.Target.Len(), len(m.TGDs), len(m.EGDs), len(queries))
	if ic != nil {
		coalesced := "coalesced"
		if !ic.IsCoalesced() {
			coalesced = "NOT coalesced"
		}
		fmt.Fprintf(w, "facts ok: %d facts, %s, complete=%v\n", ic.Len(), coalesced, ic.IsComplete())
	}
	return nil
}
