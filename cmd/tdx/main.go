// Command tdx is the temporal data exchange command-line tool. It loads a
// schema mapping and a concrete source instance in the TDX text format
// and runs the paper's pipeline: normalization (§4.2), the concrete chase
// (§4.3), and certain-answer query evaluation (§5). It is a thin shell
// over the public tdx engine API (package tdx at the module root): the
// mapping is compiled once into a tdx.Exchange and every subcommand runs
// against it.
//
// Usage:
//
//	tdx chase     -m mapping.tdx -d source.facts [-norm smart|naive] [-egd batch|stepwise] [-parallel N] [-coalesce] [-table] [-stats] [-trace] [-json] [-timeout 30s] [-save solution.snap]
//	tdx chase     -m mapping.tdx -load solution.snap [-table] [-stats] [-json]
//	tdx normalize -m mapping.tdx -d source.facts [-norm smart|naive] [-table]
//	tdx query     -m mapping.tdx -d source.facts [-q 'query q(n) :- Emp(n, c, s)' | -name q] [-table]
//	tdx snapshot  -m mapping.tdx -d source.facts -at 2013 [-target]
//	tdx core      -m mapping.tdx -d source.facts [-table]
//	tdx diff      -d new.facts -against old.facts [-m mapping.tdx] [-table]
//	tdx validate  -m mapping.tdx [-d source.facts]
//
// chase -save writes the solution as an mmap-able columnar snapshot
// (internal/snapshot, spec in docs/SNAPSHOT.md); chase -load replays one
// instead of chasing — the snapshot is checksummed and validated against
// the mapping's target schema, and re-saving a loaded solution is
// byte-identical. Mappings whose tgd heads carry modal markers (past /
// future / always past / always future — the §7 extension) are chased
// with the temporal chase automatically. Long chases are cancellable: -timeout bounds every
// run, and Ctrl-C is honored mid-chase. Fact output is in the TDX fact
// format and can be fed back into tdx.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"time"

	tdx "repro"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	if os.Args[1] == "help" || os.Args[1] == "-h" || os.Args[1] == "--help" {
		usage()
		return
	}
	// Ctrl-C cancels in-flight chases instead of killing the process
	// abruptly: the engine unwinds promptly via context.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, os.Args[1], os.Args[2:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tdx:", err)
		os.Exit(1)
	}
}

// run dispatches one subcommand, writing its report to w. Split from
// main for testability.
func run(ctx context.Context, cmd string, args []string, w io.Writer) error {
	switch cmd {
	case "chase":
		return cmdChase(ctx, args, w)
	case "normalize":
		return cmdNormalize(ctx, args, w)
	case "query":
		return cmdQuery(ctx, args, w)
	case "snapshot":
		return cmdSnapshot(ctx, args, w)
	case "core":
		return cmdCore(ctx, args, w)
	case "diff":
		return cmdDiff(ctx, args, w)
	case "validate":
		return cmdValidate(ctx, args, w)
	default:
		usage()
		return fmt.Errorf("unknown command %q", cmd)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `tdx — temporal data exchange (Golshanara & Chomicki)

commands:
  chase      materialize a concrete universal solution (c-chase)
  normalize  normalize the source instance w.r.t. the mapping
  query      compute certain answers for a query
  snapshot   print the abstract snapshot at a time point
  core       chase, then shrink the solution to its snapshot-wise core
  diff       semantic temporal difference between two fact files
  validate   check a mapping (and optionally a fact file)

run 'tdx <command> -h' for flags
`)
}

// commonFlags bundles the flags shared by most subcommands.
type commonFlags struct {
	mapping  string
	data     string
	norm     string
	egd      string
	parallel int
	table    bool
	timeout  time.Duration
}

func (c *commonFlags) register(fs *flag.FlagSet) {
	fs.StringVar(&c.mapping, "m", "", "mapping file (.tdx)")
	fs.StringVar(&c.data, "d", "", "source facts file")
	fs.StringVar(&c.norm, "norm", "smart", "normalization strategy: smart (Algorithm 1) or naive")
	fs.StringVar(&c.egd, "egd", "batch", "egd application strategy: batch or stepwise")
	fs.IntVar(&c.parallel, "parallel", 0, "chase worker count (tgd and egd phases); 0 uses all CPUs, 1 forces the sequential path")
	fs.BoolVar(&c.table, "table", false, "render output as per-relation tables instead of fact lines")
	fs.DurationVar(&c.timeout, "timeout", 0, "bound the run (e.g. 30s); 0 means no limit")
}

// options translates the flags into engine options.
func (c *commonFlags) options() ([]tdx.Option, error) {
	norm, err := tdx.ParseNorm(c.norm)
	if err != nil {
		return nil, err
	}
	egd, err := tdx.ParseEgdStrategy(c.egd)
	if err != nil {
		return nil, err
	}
	return []tdx.Option{tdx.WithNorm(norm), tdx.WithEgdStrategy(egd), tdx.WithParallelism(c.parallel)}, nil
}

// context bounds ctx by the -timeout flag.
func (c *commonFlags) context(ctx context.Context) (context.Context, context.CancelFunc) {
	if c.timeout > 0 {
		return context.WithTimeout(ctx, c.timeout)
	}
	return context.WithCancel(ctx)
}

// finishErr rewrites a run's context errors into actionable CLI
// messages: a deadline produced by -timeout names the flag and the
// budget (main prints the message and exits non-zero), and Ctrl-C reads
// as an interrupt rather than a bare "context canceled". The original
// error stays wrapped, so errors.Is checks keep working.
func (c *commonFlags) finishErr(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, context.DeadlineExceeded) && c.timeout > 0:
		return fmt.Errorf("run exceeded the -timeout budget of %v: %w", c.timeout, err)
	case errors.Is(err, context.Canceled):
		return fmt.Errorf("run interrupted: %w", err)
	}
	return err
}

// compile compiles the mapping file into an exchange.
func (c *commonFlags) compile(opts ...tdx.Option) (*tdx.Exchange, error) {
	if c.mapping == "" {
		return nil, fmt.Errorf("-m mapping file is required")
	}
	text, err := os.ReadFile(c.mapping)
	if err != nil {
		return nil, err
	}
	return tdx.Compile(string(text), opts...)
}

// source parses the facts file against the exchange's source schema.
func (c *commonFlags) source(ex *tdx.Exchange) (*tdx.Instance, error) {
	if c.data == "" {
		return nil, fmt.Errorf("-d facts file is required")
	}
	text, err := os.ReadFile(c.data)
	if err != nil {
		return nil, err
	}
	return ex.ParseSource(string(text))
}

// load compiles the mapping and parses the facts in one step.
func (c *commonFlags) load(opts ...tdx.Option) (*tdx.Exchange, *tdx.Instance, error) {
	ex, err := c.compile(opts...)
	if err != nil {
		return nil, nil, err
	}
	src, err := c.source(ex)
	if err != nil {
		return nil, nil, err
	}
	return ex, src, nil
}

// printInstance writes the instance as fact lines or tables.
func printInstance(w io.Writer, c *tdx.Instance, asTable bool) {
	if c.Len() == 0 {
		fmt.Fprintln(w, "(empty)")
		return
	}
	if asTable {
		fmt.Fprint(w, c.Table())
		return
	}
	fmt.Fprint(w, c.Facts())
}

func cmdChase(ctx context.Context, args []string, w io.Writer) error {
	fs := flag.NewFlagSet("chase", flag.ExitOnError)
	var cf commonFlags
	cf.register(fs)
	coalesce := fs.Bool("coalesce", false, "coalesce the solution")
	stats := fs.Bool("stats", false, "print chase statistics to stderr")
	trace := fs.Bool("trace", false, "print every chase step to stderr")
	asJSON := fs.Bool("json", false, "emit the solution as JSON instead of fact lines")
	saveFile := fs.String("save", "", "write the solution as a columnar snapshot to this file after the chase")
	loadFile := fs.String("load", "", "load a previously saved solution snapshot instead of chasing (-d is not read)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	opts, err := cf.options()
	if err != nil {
		return err
	}
	opts = append(opts, tdx.WithCoalesce(*coalesce))
	if *trace {
		opts = append(opts, tdx.WithTrace(func(e tdx.Event) { fmt.Fprintln(os.Stderr, "  ", e) }))
	}
	var sol *tdx.Solution
	if *loadFile != "" {
		// Replay a saved solution: no source, no chase — the snapshot is
		// validated against the mapping's target schema on load.
		ex, err := cf.compile(opts...)
		if err != nil {
			return err
		}
		if sol, err = ex.LoadSolution(*loadFile); err != nil {
			return err
		}
	} else {
		ex, src, err := cf.load(opts...)
		if err != nil {
			return err
		}
		ctx, cancel := cf.context(ctx)
		defer cancel()
		if sol, err = ex.Run(ctx, src); err != nil {
			return cf.finishErr(err)
		}
	}
	if *saveFile != "" {
		if err := sol.WriteSnapshotFile(*saveFile); err != nil {
			return err
		}
	}
	if *asJSON {
		// Stream the document straight off the frozen solution — same
		// bytes as sol.JSON(), without staging a solution-sized buffer.
		if err := sol.WriteJSON(w); err != nil {
			return err
		}
		fmt.Fprintln(w)
	} else {
		printInstance(w, &sol.Instance, cf.table)
	}
	if *stats {
		if *asJSON {
			// Share one stats encoding with tdxd run responses: the
			// lowerCamel JSON form of chase.Stats.
			data, err := json.Marshal(sol.Stats())
			if err != nil {
				return err
			}
			fmt.Fprintln(os.Stderr, string(data))
		} else {
			fmt.Fprintf(os.Stderr, "%+v\n", sol.Stats())
		}
	}
	return nil
}

func cmdCore(ctx context.Context, args []string, w io.Writer) error {
	fs := flag.NewFlagSet("core", flag.ExitOnError)
	var cf commonFlags
	cf.register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	opts, err := cf.options()
	if err != nil {
		return err
	}
	ex, src, err := cf.load(opts...)
	if err != nil {
		return err
	}
	ctx, cancel := cf.context(ctx)
	defer cancel()
	sol, err := ex.Run(ctx, src)
	if err != nil {
		return cf.finishErr(err)
	}
	printInstance(w, &sol.Core().Instance, cf.table)
	return nil
}

func cmdNormalize(ctx context.Context, args []string, w io.Writer) error {
	fs := flag.NewFlagSet("normalize", flag.ExitOnError)
	var cf commonFlags
	cf.register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	opts, err := cf.options()
	if err != nil {
		return err
	}
	ex, src, err := cf.load(opts...)
	if err != nil {
		return err
	}
	ctx, cancel := cf.context(ctx)
	defer cancel()
	normed, err := ex.Normalize(ctx, src)
	if err != nil {
		return cf.finishErr(err)
	}
	printInstance(w, normed, cf.table)
	return nil
}

func cmdQuery(ctx context.Context, args []string, w io.Writer) error {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	var cf commonFlags
	cf.register(fs)
	qtext := fs.String("q", "", "inline query, e.g. 'query q(n) :- Emp(n, c, s)'")
	qname := fs.String("name", "", "run the query with this name from the mapping file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	opts, err := cf.options()
	if err != nil {
		return err
	}
	ex, src, err := cf.load(opts...)
	if err != nil {
		return err
	}
	// -q (inline text) takes precedence over -name, as it always has.
	q := *qname
	if *qtext != "" {
		q = *qtext
	}
	ctx, cancel := cf.context(ctx)
	defer cancel()
	ans, err := ex.Answer(ctx, src, q)
	if err != nil {
		return cf.finishErr(err)
	}
	printInstance(w, ans, cf.table)
	return nil
}

func cmdSnapshot(ctx context.Context, args []string, w io.Writer) error {
	fs := flag.NewFlagSet("snapshot", flag.ExitOnError)
	var cf commonFlags
	cf.register(fs)
	at := fs.String("at", "", "time point (required)")
	target := fs.Bool("target", false, "chase first and snapshot the solution instead of the source")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *at == "" {
		return fmt.Errorf("-at time point is required")
	}
	tp, err := tdx.ParseTime(*at)
	if err != nil {
		return err
	}
	opts, err := cf.options()
	if err != nil {
		return err
	}
	ex, src, err := cf.load(opts...)
	if err != nil {
		return err
	}
	ctx, cancel := cf.context(ctx)
	defer cancel()
	var snap *tdx.Snapshot
	if *target {
		sol, err := ex.Run(ctx, src)
		if err != nil {
			return cf.finishErr(err)
		}
		snap, err = ex.Snapshot(ctx, sol, tp)
		if err != nil {
			return cf.finishErr(err)
		}
	} else {
		snap = src.Snapshot(tp)
	}
	fmt.Fprintf(w, "db%v = %s\n", tp, snap)
	return nil
}

func cmdDiff(ctx context.Context, args []string, w io.Writer) error {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	var cf commonFlags
	cf.register(fs)
	other := fs.String("against", "", "second facts file (required): output is <-d> minus <-against>, per time point")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if cf.data == "" || *other == "" {
		return fmt.Errorf("diff needs -d and -against fact files")
	}
	// With a mapping the fact files are validated against its source
	// schema; without one they parse schemaless.
	var ex *tdx.Exchange
	if cf.mapping != "" {
		var err error
		if ex, err = cf.compile(); err != nil {
			return err
		}
	}
	read := func(path string) (*tdx.Instance, error) {
		text, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		if ex != nil {
			return ex.ParseSource(string(text))
		}
		return tdx.ParseInstance(string(text))
	}
	a, err := read(cf.data)
	if err != nil {
		return err
	}
	b, err := read(*other)
	if err != nil {
		return err
	}
	printInstance(w, a.Diff(b), cf.table)
	return nil
}

func cmdValidate(ctx context.Context, args []string, w io.Writer) error {
	fs := flag.NewFlagSet("validate", flag.ExitOnError)
	var cf commonFlags
	cf.register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	ex, err := cf.compile()
	if err != nil {
		return err
	}
	info := ex.Info()
	fmt.Fprintf(w, "mapping ok: %d source relations, %d target relations, %d tgds, %d egds, %d queries\n",
		info.SourceRelations, info.TargetRelations, info.TGDs, info.EGDs, info.Queries)
	if cf.data != "" {
		src, err := cf.source(ex)
		if err != nil {
			return err
		}
		coalesced := "coalesced"
		if !src.IsCoalesced() {
			coalesced = "NOT coalesced"
		}
		fmt.Fprintf(w, "facts ok: %d facts, %s, complete=%v\n", src.Len(), coalesced, src.IsComplete())
	}
	return nil
}
