package tdx

import (
	"io"
	"sync"

	"repro/internal/chase"
	"repro/internal/coreof"
	"repro/internal/instance"
	"repro/internal/interval"
	"repro/internal/jsonio"
	"repro/internal/parser"
	"repro/internal/render"
)

// Time is a time point of the discrete timeline.
type Time = interval.Time

// Infinity is the open upper end point of unbounded intervals.
const Infinity = interval.Infinity

// ParseTime parses a time point ("2013", "inf", ...).
func ParseTime(s string) (Time, error) { return interval.ParseTime(s) }

// Snapshot is one abstract snapshot db_t of an instance: the plain
// relational database holding at a single time point, with
// interval-annotated nulls projected to per-snapshot labeled nulls
// (paper §2, §4.1).
type Snapshot = instance.Snapshot

// Stats reports what a chase run did: normalization passes, tgd
// homomorphisms and firings, nulls invented, egd rounds/merges, and rows
// touched by incremental rewrites.
type Stats = chase.Stats

// Instance is a concrete temporal database instance: a finite set of
// interval-timestamped facts. Instances are produced by
// Exchange.ParseSource, ParseInstance, and the exchange pipeline itself;
// they render as fact lines (Facts) or per-relation tables (Table) and
// support the semantic operations of the paper — snapshots, coalescing,
// and temporal difference.
//
// An Instance is mutable-until-frozen. While mutable it is
// single-goroutine: matching, rendering, and membership checks fill lazy
// caches, so even read-only sharing races. Freeze (called automatically
// by Exchange.Run on its source and its solution) builds every lazy
// structure eagerly and flips the instance to immutable — a frozen
// instance is safe for any number of concurrent readers and any number
// of concurrent Runs, while writes to it panic. Clone returns a mutable
// copy. The compiled Exchange is freely shareable in all states.
type Instance struct {
	c *instance.Concrete
}

// Freeze publishes the instance for concurrent use: every lazy structure
// reads consult (posting-list indexes, decoded tuples) is built
// eagerly and the instance becomes immutable — afterwards any number of
// goroutines may run exchanges on it, query it, snapshot it, render it,
// or clone it concurrently, and any write to it panics. Freeze is
// idempotent and returns the same instance for chaining. Exchange.Run
// freezes its source and its solution automatically; call Freeze
// yourself to publish a parsed instance before fanning out.
func (i *Instance) Freeze() *Instance {
	i.c.Freeze()
	return i
}

// Frozen reports whether the instance has been frozen.
func (i *Instance) Frozen() bool { return i.c.Frozen() }

// NewInstance wraps an existing concrete instance for use with the tdx
// API. This is the bridge for module-internal callers (generators,
// experiment harnesses) that construct instances programmatically.
func NewInstance(c *instance.Concrete) *Instance { return &Instance{c: c} }

// ParseInstance parses a TDX facts file into a schemaless instance — for
// tooling over bare fact files (e.g. temporal diffing); use
// Exchange.ParseSource to validate against a mapping's source schema.
func ParseInstance(facts string) (*Instance, error) {
	c, err := parser.ParseFacts(facts, nil)
	if err != nil {
		return nil, err
	}
	return &Instance{c: c}, nil
}

// Concrete exposes the underlying representation for module-internal
// tooling (verification, core computation, experiment harnesses).
func (i *Instance) Concrete() *instance.Concrete { return i.c }

// Len returns the number of facts.
func (i *Instance) Len() int { return i.c.Len() }

// Facts renders the instance in the TDX fact-line format, which parses
// back via ParseInstance / Exchange.ParseSource.
func (i *Instance) Facts() string { return parser.FormatFacts(i.c) }

// Table renders the instance as per-relation tables, one row per fact.
func (i *Instance) Table() string { return render.Instance(i.c) }

// String renders the facts one per line, deterministically sorted.
func (i *Instance) String() string { return i.c.String() }

// IsCoalesced reports whether facts with identical data values have
// pairwise disjoint, non-adjacent intervals (paper §2).
func (i *Instance) IsCoalesced() bool { return i.c.IsCoalesced() }

// IsComplete reports whether the instance is null-free.
func (i *Instance) IsComplete() bool { return i.c.IsComplete() }

// Coalesce returns the canonical coalesced equivalent: intervals of
// facts sharing data values merged into maximal disjoint intervals.
func (i *Instance) Coalesce() *Instance { return &Instance{c: i.c.Coalesce()} }

// Clone returns an independent copy; clones may be mutated (and chased)
// independently.
func (i *Instance) Clone() *Instance { return &Instance{c: i.c.Clone()} }

// Equal reports whether both instances contain exactly the same facts.
func (i *Instance) Equal(other *Instance) bool { return i.c.Equal(other.c) }

// Diff returns the semantic temporal difference i minus other: the facts
// (fragments) holding in i but not in other, per time point.
func (i *Instance) Diff(other *Instance) *Instance {
	return &Instance{c: instance.Diff(i.c, other.c)}
}

// Snapshot materializes the abstract snapshot db_at = ⟦i⟧(at).
func (i *Instance) Snapshot(at Time) *Snapshot { return i.c.Snapshot(at) }

// JSON encodes the instance in the TDX JSON format. It buffers the whole
// document; for large instances prefer WriteJSON, which streams the same
// bytes.
func (i *Instance) JSON() ([]byte, error) { return jsonio.Encode(i.c) }

// WriteJSON streams the instance's TDX JSON document to w —
// byte-identical to JSON — without materializing the fact set or the
// document: the encoder walks the columnar store relation by relation
// (validity-bitmap row scan, cached tuple decode, a reused scratch
// buffer flushed in bounded chunks), so writing an n-fact solution costs
// O(1) allocations per fact and holds at most one flush chunk in memory
// regardless of n. On a frozen instance (every Solution is one) it is
// safe for concurrent callers. This is the path tdxd serves solution
// documents through, and what `tdx chase -json` prints with.
func (i *Instance) WriteJSON(w io.Writer) error { return jsonio.EncodeTo(w, i.c) }

// DecodeJSON decodes an instance from the TDX JSON format (the inverse
// of Instance.JSON).
func DecodeJSON(data []byte) (*Instance, error) {
	c, err := jsonio.Decode(data)
	if err != nil {
		return nil, err
	}
	return &Instance{c: c}, nil
}

// Solution is the outcome of a successful exchange: the materialized
// concrete solution Jc (whose semantics ⟦Jc⟧ is a universal solution for
// the source, Theorem 19) together with the run's statistics. It embeds
// Instance, so all rendering, coalescing, snapshot, and diff operations
// apply directly. Solutions come back frozen from Run: all read
// accessors (Facts, Table, JSON, Snapshot, Query, Diff, Stats) are safe
// for any number of concurrent goroutines.
type Solution struct {
	Instance
	stats Stats

	// fp is the fingerprint of the exchange that produced this solution,
	// recorded in snapshots as provenance.
	fp string

	// Retained incremental-chase state: the frozen source this solution
	// was chased from, and (for non-temporal mappings) the chase-layer
	// base state RunDelta resumes from. Both stay nil on solutions not
	// produced by Run/RunDelta. See the retention note on
	// WithRunInterner for the memory trade-off.
	base *chase.BaseState
	src  *Instance

	// coverOnce/cover lazily memoize the data-identity coverage index of
	// the frozen solution, so a chain of RunDelta calls builds each
	// solution's index once instead of once per diff side.
	coverOnce sync.Once
	cover     *instance.CoverIndex
}

// coverIndex returns the solution's memoized coverage index, building
// it on first use. Safe for concurrent callers: the solution is frozen
// and the index is read-only once built.
func (s *Solution) coverIndex() *instance.CoverIndex {
	s.coverOnce.Do(func() { s.cover = instance.NewCoverIndex(s.c) })
	return s.cover
}

// Stats reports what the chase did.
func (s *Solution) Stats() Stats { return s.stats }

// Coalesce returns the solution in canonical coalesced form, keeping the
// statistics and the retained incremental-chase state.
func (s *Solution) Coalesce() *Solution {
	return &Solution{Instance: *s.Instance.Coalesce(), stats: s.stats, fp: s.fp, base: s.base, src: s.src}
}

// Core shrinks the solution to its snapshot-wise core — the smallest
// homomorphically equivalent solution (§7 extension).
func (s *Solution) Core() *Solution {
	return &Solution{Instance: Instance{c: coreof.Of(s.c)}, stats: s.stats, fp: s.fp, base: s.base, src: s.src}
}
