// Taxirides integrates driver shift rosters with per-cab ride logs into
// per-driver trip records — the ride-sharing scenario cited in the
// paper's introduction ([26]: taxi and bicycle rides). Shifts and rides
// are recorded on misaligned intervals, so the example highlights
// normalization: the shared temporal variable of the shift-ride join
// finds no homomorphism until the instance is fragmented.
package main

import (
	"fmt"
	"log"

	"repro/internal/chase"
	"repro/internal/fact"
	"repro/internal/instance"
	"repro/internal/interval"
	"repro/internal/logic"
	"repro/internal/normalize"
	"repro/internal/paperex"
	"repro/internal/query"
	"repro/internal/render"
	"repro/internal/workload"
)

func iv(s, e interval.Time) interval.Interval { return interval.MustNew(s, e) }

func main() {
	m := workload.TaxiMapping()
	c := paperex.C

	ic := instance.NewConcrete(m.Source)
	for _, f := range []fact.CFact{
		// Dee drives cab7 for a long shift; the cab's ride log is finer.
		fact.NewC("Shift", iv(0, 12), c("dee"), c("cab7")),
		fact.NewC("Ride", iv(2, 5), c("cab7"), c("downtown")),
		fact.NewC("Ride", iv(5, 9), c("cab7"), c("airport")),
		// Eve takes over the same cab later.
		fact.NewC("Shift", iv(12, 20), c("eve"), c("cab7")),
		fact.NewC("Ride", iv(11, 15), c("cab7"), c("harbor")),
	} {
		if _, err := ic.Insert(f); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("source (shifts and ride logs):")
	fmt.Print(render.Instance(ic))

	// The §4.2 phenomenon: before normalization the shift-ride join has
	// no homomorphism — no single interval serves both atoms.
	join := m.TGDs[1].ConcreteBody()
	fmt.Printf("\nhomomorphism for Shift⋈Ride before normalization: %v\n",
		logic.Exists(ic.Store(), join, nil))
	norm := normalize.Smart(ic, []logic.Conjunction{join})
	fmt.Printf("after norm(Ic, Φ+) (%d → %d facts):              %v\n",
		ic.Len(), norm.Len(), logic.Exists(norm.Store(), join, nil))

	jc, _, err := chase.Concrete(ic, m, &chase.Options{Coalesce: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nintegrated trips (zones unknown where the log is silent):")
	fmt.Print(render.Instance(jc))

	// Where was Dee, certainly, and when?
	u, err := query.NewUCQ("where", query.CQ{
		Name: "where",
		Head: []string{"z"},
		Body: logic.Conjunction{logic.NewAtom("Trip", logic.Lit(paperex.C("dee")), logic.Var("c"), logic.Var("z"))},
	})
	if err != nil {
		log.Fatal(err)
	}
	ans := query.NaiveEvalConcrete(u, jc)
	fmt.Println("\ncertain answers to where(z) :- Trip(dee, c, z):")
	fmt.Print(render.Instance(ans))

	// A bigger synthetic fleet.
	big := workload.Taxi(workload.TaxiConfig{Seed: 7, Drivers: 150, Cabs: 60, Span: 100})
	bigJc, stats, err := chase.Concrete(big, m, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsynthetic fleet: %d source facts → %d trips "+
		"(source normalized to %d facts, %d egd rounds)\n",
		big.Len(), bigJc.Len(), stats.NormalizedSourceFacts, stats.EgdRounds)
}
