// Taxirides integrates driver shift rosters with per-cab ride logs into
// per-driver trip records — the ride-sharing scenario cited in the
// paper's introduction ([26]: taxi and bicycle rides). Shifts and rides
// are recorded on misaligned intervals, so the example highlights
// normalization: the shared temporal variable of the shift-ride join
// finds no homomorphism until the instance is fragmented. The pipeline
// runs on the public tdx API; the one peek at internals (logic.Exists)
// demonstrates the §4.2 phenomenon the API's Normalize fixes.
package main

import (
	"context"
	"fmt"
	"log"

	tdx "repro"
	"repro/internal/fact"
	"repro/internal/instance"
	"repro/internal/interval"
	"repro/internal/logic"
	"repro/internal/paperex"
	"repro/internal/query"
	"repro/internal/workload"
)

func iv(s, e interval.Time) interval.Interval { return interval.MustNew(s, e) }

func main() {
	ctx := context.Background()
	m := workload.TaxiMapping()
	ex, err := tdx.FromMapping(m, tdx.WithCoalesce(true))
	if err != nil {
		log.Fatal(err)
	}
	c := paperex.C

	fleet := instance.NewConcrete(m.Source)
	for _, f := range []fact.CFact{
		// Dee drives cab7 for a long shift; the cab's ride log is finer.
		fact.NewC("Shift", iv(0, 12), c("dee"), c("cab7")),
		fact.NewC("Ride", iv(2, 5), c("cab7"), c("downtown")),
		fact.NewC("Ride", iv(5, 9), c("cab7"), c("airport")),
		// Eve takes over the same cab later.
		fact.NewC("Shift", iv(12, 20), c("eve"), c("cab7")),
		fact.NewC("Ride", iv(11, 15), c("cab7"), c("harbor")),
	} {
		if _, err := fleet.Insert(f); err != nil {
			log.Fatal(err)
		}
	}
	src := tdx.NewInstance(fleet)
	fmt.Println("source (shifts and ride logs):")
	fmt.Print(src.Table())

	// The §4.2 phenomenon: before normalization the shift-ride join has
	// no homomorphism — no single interval serves both atoms.
	join := m.TGDs[1].ConcreteBody()
	fmt.Printf("\nhomomorphism for Shift⋈Ride before normalization: %v\n",
		logic.Exists(src.Concrete().Store(), join, nil))
	norm, err := ex.Normalize(ctx, src)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after norm(Ic, Φ+) (%d → %d facts):              %v\n",
		src.Len(), norm.Len(), logic.Exists(norm.Concrete().Store(), join, nil))

	sol, err := ex.Run(ctx, src)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nintegrated trips (zones unknown where the log is silent):")
	fmt.Print(sol.Table())

	// Where was Dee, certainly, and when? Queries with literal constants
	// go through the query package's programmatic rule form.
	u, err := query.NewUCQ("where", query.CQ{
		Name: "where",
		Head: []string{"z"},
		Body: logic.Conjunction{logic.NewAtom("Trip", logic.Lit(paperex.C("dee")), logic.Var("c"), logic.Var("z"))},
	})
	if err != nil {
		log.Fatal(err)
	}
	ans, err := query.NaiveEvalCtx(ctx, u, sol.Concrete())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ncertain answers to where(z) :- Trip(dee, c, z):")
	fmt.Print(tdx.NewInstance(ans).Table())

	// A bigger synthetic fleet through the same compiled exchange.
	big := tdx.NewInstance(workload.Taxi(workload.TaxiConfig{Seed: 7, Drivers: 150, Cabs: 60, Span: 100}))
	bigSol, err := ex.Run(ctx, big, tdx.WithCoalesce(false))
	if err != nil {
		log.Fatal(err)
	}
	stats := bigSol.Stats()
	fmt.Printf("\nsynthetic fleet: %d source facts → %d trips "+
		"(source normalized to %d facts, %d egd rounds)\n",
		big.Len(), bigSol.Len(), stats.NormalizedSourceFacts, stats.EgdRounds)
}
