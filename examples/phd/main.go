// Phd demonstrates the §7 future-work extension implemented in
// internal/temporal: schema mappings with modal operators. The paper's
// closing example —
//
//	∀n PhDgrad(n) → ◆ ∃adv, top . PhDCan(n, adv, top)
//
// ("every PhD graduate was a PhD candidate at some point before, with a
// topic and an adviser") — is chased on a concrete instance, the result
// is verified to be a solution, and the paper's open question about
// universality is answered in the negative with a concrete witness.
package main

import (
	"errors"
	"fmt"
	"log"

	"repro/internal/fact"
	"repro/internal/instance"
	"repro/internal/logic"
	"repro/internal/paperex"
	"repro/internal/render"
	"repro/internal/schema"
	"repro/internal/temporal"
	"repro/internal/verify"
)

func main() {
	src := schema.MustNew(
		schema.MustRelation("PhDgrad", "name"),
		schema.MustRelation("Faculty", "name", "dept"),
	)
	tgt := schema.MustNew(
		schema.MustRelation("PhDCan", "name", "adviser", "topic"),
		schema.MustRelation("Alumni", "name", "u"),
	)
	m := &temporal.Mapping{
		Source: src,
		Target: tgt,
		TGDs: []temporal.TGD{
			{
				Name: "was-candidate",
				Body: logic.Conjunction{logic.NewAtom("PhDgrad", logic.Var("n"))},
				Head: []temporal.HeadAtom{{
					Ref:  temporal.SometimePast,
					Atom: logic.NewAtom("PhDCan", logic.Var("n"), logic.Var("adv"), logic.Var("top")),
				}},
			},
			{
				Name: "stays-alumni",
				Body: logic.Conjunction{logic.NewAtom("PhDgrad", logic.Var("n"))},
				Head: []temporal.HeadAtom{{
					Ref:  temporal.AlwaysFut,
					Atom: logic.NewAtom("Alumni", logic.Var("n"), logic.Var("u")),
				}},
			},
		},
	}
	if err := m.Validate(); err != nil {
		log.Fatal(err)
	}
	for _, d := range m.TGDs {
		fmt.Printf("dependency: %v\n", d)
	}

	ic := instance.NewConcrete(src)
	ic.MustInsert(fact.NewC("PhDgrad", paperex.Iv(2016, 2019), paperex.C("ada")))
	ic.MustInsert(fact.NewC("Faculty", paperex.Iv(2019, paperex.Inf), paperex.C("ada"), paperex.C("cs")))
	fmt.Println("\nsource:")
	fmt.Print(render.Instance(ic))

	jc, stats, err := temporal.Chase(ic, m, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ntemporal chase result:")
	fmt.Print(render.Instance(jc))
	fmt.Printf("\n(%d tgd firings, %d fresh unknowns)\n", stats.TGDFires, stats.NullsCreated)

	ok, why := temporal.Satisfies(ic, jc, m)
	fmt.Printf("\nresult satisfies the mapping: %v %s\n", ok, why)

	// The open question of §7: is such a chase result universal? No.
	alt := instance.NewConcrete(tgt)
	alt.MustInsert(fact.NewC("PhDCan", paperex.Iv(2010, 2011),
		paperex.C("ada"), paperex.C("prof-x"), paperex.C("temporal-databases")))
	alt.MustInsert(fact.NewC("Alumni", paperex.Iv(2017, paperex.Inf), paperex.C("ada"), paperex.C("u")))
	if ok, _ := temporal.Satisfies(ic, alt, m); ok {
		fmt.Println("\nan alternative solution places the candidacy at [2010,2011) instead;")
		fmt.Printf("homomorphism chase-result → alternative exists: %v\n",
			verify.AbstractHom(jc.Abstract(), alt.Abstract()))
		fmt.Println("⇒ the canonical chase result is a solution but NOT universal:")
		fmt.Println("  homomorphisms cannot move facts across time points, so no fixed")
		fmt.Println("  witness rule dominates all solutions — §7's question, answered")
	}

	// A graduate since time 0 has no possible candidacy.
	impossible := instance.NewConcrete(src)
	impossible.MustInsert(fact.NewC("PhDgrad", paperex.Iv(0, 3), paperex.C("eve")))
	if _, _, err := temporal.Chase(impossible, m, nil); errors.Is(err, temporal.ErrNoWitness) {
		fmt.Println("\ngraduate at time 0:", err)
	}
}
