// Phd demonstrates the §7 future-work extension: schema mappings with
// modal operators. The paper's closing example —
//
//	∀n PhDgrad(n) → ◆ ∃adv, top . PhDCan(n, adv, top)
//
// ("every PhD graduate was a PhD candidate at some point before, with a
// topic and an adviser") — compiles and runs through the public tdx API
// exactly like a plain mapping: Compile detects the modal markers and
// Run dispatches to the temporal chase. The result is verified to be a
// solution, and the paper's open question about universality is answered
// in the negative with a concrete witness.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"

	tdx "repro"
	"repro/internal/fact"
	"repro/internal/instance"
	"repro/internal/paperex"
	"repro/internal/temporal"
	"repro/internal/verify"
)

const mapping = `
source schema {
    PhDgrad(name)
    Faculty(name, dept)
}
target schema {
    PhDCan(name, adviser, topic)
    Alumni(name, u)
}
tgd was-candidate: PhDgrad(n) -> exists adv, top . past PhDCan(n, adv, top)
tgd stays-alumni:  PhDgrad(n) -> exists u . always future Alumni(n, u)
`

func main() {
	ctx := context.Background()
	ex, err := tdx.Compile(mapping)
	if err != nil {
		log.Fatal(err)
	}
	if !ex.Info().Temporal {
		log.Fatal("modal markers should compile as a temporal mapping")
	}
	for _, d := range ex.Temporal().TGDs {
		fmt.Printf("dependency: %v\n", d)
	}

	src, err := ex.ParseSource(`
PhDgrad(ada) @ [2016, 2019)
Faculty(ada, cs) @ [2019, inf)
`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nsource:")
	fmt.Print(src.Table())

	sol, err := ex.Run(ctx, src)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ntemporal chase result:")
	fmt.Print(sol.Table())
	stats := sol.Stats()
	fmt.Printf("\n(%d tgd firings, %d fresh unknowns)\n", stats.TGDFires, stats.NullsCreated)

	ok, why := temporal.Satisfies(src.Concrete(), sol.Concrete(), ex.Temporal())
	fmt.Printf("\nresult satisfies the mapping: %v %s\n", ok, why)

	// The open question of §7: is such a chase result universal? No.
	alt := instance.NewConcrete(ex.Temporal().Target)
	alt.MustInsert(fact.NewC("PhDCan", paperex.Iv(2010, 2011),
		paperex.C("ada"), paperex.C("prof-x"), paperex.C("temporal-databases")))
	alt.MustInsert(fact.NewC("Alumni", paperex.Iv(2017, paperex.Inf), paperex.C("ada"), paperex.C("u")))
	if ok, _ := temporal.Satisfies(src.Concrete(), alt, ex.Temporal()); ok {
		fmt.Println("\nan alternative solution places the candidacy at [2010,2011) instead;")
		fmt.Printf("homomorphism chase-result → alternative exists: %v\n",
			verify.AbstractHom(sol.Concrete().Abstract(), alt.Abstract()))
		fmt.Println("⇒ the canonical chase result is a solution but NOT universal:")
		fmt.Println("  homomorphisms cannot move facts across time points, so no fixed")
		fmt.Println("  witness rule dominates all solutions — §7's question, answered")
	}

	// A graduate since time 0 has no possible candidacy.
	impossible, err := ex.ParseSource("PhDgrad(eve) @ [0, 3)\n")
	if err != nil {
		log.Fatal(err)
	}
	if _, err := ex.Run(ctx, impossible); errors.Is(err, tdx.ErrNoWitness) {
		fmt.Println("\ngraduate at time 0:", err)
	}
}
