// Quickstart: the paper's running example end to end on the public tdx
// API — compile a mapping once, load the Figure 4 source instance,
// materialize the Figure 9 solution with the c-chase, compute certain
// answers, and inspect the abstract view.
package main

import (
	"context"
	"fmt"
	"log"

	tdx "repro"
)

const mapping = `
source schema {
    E(name, company)
    S(name, salary)
}
target schema {
    Emp(name, company, salary)
}
tgd sigma1: E(n, c) -> exists s . Emp(n, c, s)
tgd sigma2: E(n, c), S(n, s) -> Emp(n, c, s)
egd salary-key: Emp(n, c, s), Emp(n, c, s2) -> s = s2
query q(n, s) :- Emp(n, c, s)
`

const facts = `
E(Ada, IBM)    @ [2012, 2014)
E(Ada, Google) @ [2014, inf)
E(Bob, IBM)    @ [2013, 2018)
S(Ada, 18k)    @ [2013, inf)
S(Bob, 13k)    @ [2015, inf)
`

func main() {
	ctx := context.Background()

	// Compile once: the mapping is the fixed artifact. The returned
	// Exchange is concurrency-safe and serves any number of runs.
	ex, err := tdx.Compile(mapping)
	if err != nil {
		log.Fatal(err)
	}
	src, err := ex.ParseSource(facts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("source instance (Figure 4):")
	fmt.Println(src.Table())

	sol, err := ex.Run(ctx, src)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("concrete universal solution (Figure 9):")
	fmt.Println(sol.Table())
	fmt.Printf("N^[s,e) is an interval-annotated null: an unknown value that may\n")
	fmt.Printf("differ at every snapshot the interval spans (paper §4.1).\n\n")

	ans, err := ex.Query(ctx, sol, "q")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("certain answers to q(n, s) :- Emp(n, c, s):")
	fmt.Println(ans.Table())

	fmt.Println("the same data at individual time points (abstract view):")
	for _, year := range []tdx.Time{2012, 2013, 2015, 2018} {
		snap, err := ex.Snapshot(ctx, sol, year)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  db%v = %s\n", year, snap)
	}
}
