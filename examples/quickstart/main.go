// Quickstart: the paper's running example end to end — parse a mapping,
// load the Figure 4 source instance, materialize the Figure 9 solution
// with the c-chase, and compute certain answers.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/interval"
	"repro/internal/render"
)

const mapping = `
source schema {
    E(name, company)
    S(name, salary)
}
target schema {
    Emp(name, company, salary)
}
tgd sigma1: E(n, c) -> exists s . Emp(n, c, s)
tgd sigma2: E(n, c), S(n, s) -> Emp(n, c, s)
egd salary-key: Emp(n, c, s), Emp(n, c, s2) -> s = s2
query q(n, s) :- Emp(n, c, s)
`

const facts = `
E(Ada, IBM)    @ [2012, 2014)
E(Ada, Google) @ [2014, inf)
E(Bob, IBM)    @ [2013, 2018)
S(Ada, 18k)    @ [2013, inf)
S(Bob, 13k)    @ [2015, inf)
`

func main() {
	eng, queries, err := core.FromMappingSource(mapping)
	if err != nil {
		log.Fatal(err)
	}
	ic, err := core.LoadFacts(facts, eng.Mapping().Source)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("source instance (Figure 4):")
	fmt.Println(render.Instance(ic))

	res, err := eng.Exchange(ic)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("concrete universal solution (Figure 9):")
	fmt.Println(render.Instance(res.Solution))
	fmt.Printf("N^[s,e) is an interval-annotated null: an unknown value that may\n")
	fmt.Printf("differ at every snapshot the interval spans (paper §4.1).\n\n")

	ans, err := eng.AnswerOn(queries[0], res.Solution)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("certain answers to q(n, s) :- Emp(n, c, s):")
	fmt.Println(render.Instance(ans))

	fmt.Println("the same data at individual time points (abstract view):")
	for _, year := range []interval.Time{2012, 2013, 2015, 2018} {
		fmt.Printf("  db%v = %s\n", year, res.Solution.Snapshot(year))
	}
}
