// Employment walks every figure of the paper in order, driven by the real
// engine: the abstract view (Figure 1), the homomorphism subtlety of
// shared nulls (Figure 2), the abstract chase (Figure 3), the concrete
// instance (Figure 4), both normalization algorithms (Figures 5 and 6),
// Algorithm 1 on the three-relation example (Figures 7 and 8), the
// c-chase (Figure 9), and the commutativity square (Figure 10). The
// pipeline figures run on the public tdx API (one compiled Exchange
// serves the abstract chase, the c-chase, and the normalization views);
// the figure-specific constructions use the internal packages directly.
package main

import (
	"context"
	"fmt"
	"log"

	tdx "repro"
	"repro/internal/fact"
	"repro/internal/instance"
	"repro/internal/interval"
	"repro/internal/logic"
	"repro/internal/normalize"
	"repro/internal/paperex"
	"repro/internal/render"
	"repro/internal/value"
	"repro/internal/verify"
)

func section(title string) { fmt.Printf("\n— %s —\n", title) }

func main() {
	ctx := context.Background()
	src := tdx.NewInstance(paperex.Figure4())
	ex, err := tdx.FromMapping(paperex.EmploymentMapping())
	if err != nil {
		log.Fatal(err)
	}

	section("Figure 1: abstract view ⟦Ic⟧ (selected snapshots)")
	for _, y := range []tdx.Time{2012, 2013, 2014, 2015, 2018} {
		fmt.Printf("  %v  %s\n", y, src.Snapshot(y))
	}

	section("Figure 2: one shared null vs per-snapshot nulls")
	n := value.NewNull(1)
	j1, err := instance.NewAbstract([]instance.Segment{
		{Iv: interval.MustNew(0, 2), Facts: []fact.CFact{
			{Rel: "Emp", Args: []value.Value{paperex.C("Ada"), paperex.C("IBM"), n}, T: interval.MustNew(0, 2)},
		}},
		{Iv: interval.Interval{Start: 2, End: interval.Infinity}},
	})
	if err != nil {
		log.Fatal(err)
	}
	j2c := instance.NewConcrete(nil)
	j2c.MustInsert(fact.NewC("Emp", interval.MustNew(0, 2),
		paperex.C("Ada"), paperex.C("IBM"), value.NewAnnNull(2, interval.MustNew(0, 2))))
	j2 := j2c.Abstract()
	fmt.Printf("  hom J2 → J1 exists: %v; hom J1 → J2 exists: %v (Example 2)\n",
		verify.AbstractHom(j2, j1), verify.AbstractHom(j1, j2))

	section("Figure 3: abstract chase, snapshot by snapshot")
	ja, _, err := ex.RunAbstract(ctx, src)
	if err != nil {
		log.Fatal(err)
	}
	for _, y := range []tdx.Time{2012, 2013, 2014, 2015, 2018} {
		fmt.Printf("  %v  %s\n", y, ja.Snapshot(y))
	}

	section("Figure 4: the concrete source instance")
	fmt.Print(src.Table())

	section("Figure 5: Algorithm 1 normalization w.r.t. lhs(σ2+)")
	fmt.Print(render.Instance(normalize.Smart(src.Concrete(), []logic.Conjunction{paperex.Sigma2Body()})))

	section("Figure 6: naïve normalization of the same instance")
	naive, err := ex.Normalize(ctx, src, tdx.WithNorm(tdx.NormNaive))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %d facts (vs 9 for Algorithm 1) — the size cost of ignoring Φ+\n", naive.Len())

	section("Figures 7–8: Algorithm 1 on the R/P/S instance of Example 14")
	fig7 := paperex.Figure7()
	out, stats := normalize.SmartWithStats(fig7, paperex.Example14Conjunctions())
	fmt.Print(render.Instance(out))
	fmt.Printf("  merged components: %d ({f1,f2,f3} and {f4,f5})\n", stats.Components)

	section("Figure 9: the c-chase result")
	sol, err := ex.Run(ctx, src)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(sol.Table())
	cstats := sol.Stats()
	fmt.Printf("  tgd steps fired: %d, nulls created: %d, egd merges: %d\n",
		cstats.TGDFires, cstats.NullsCreated, cstats.EgdMerges)

	section("Figure 10: the commutativity square")
	fmt.Printf("  ⟦c-chase(Ic)⟧ ∼ chase(⟦Ic⟧): %v (Corollary 20)\n",
		verify.HomEquivalent(sol.Concrete().Abstract(), ja))
	ok, _ := verify.IsSolution(src.Concrete().Abstract(), sol.Concrete().Abstract(), ex.Mapping())
	fmt.Printf("  ⟦c-chase(Ic)⟧ is a solution: %v (Theorem 19)\n", ok)
}
