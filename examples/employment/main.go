// Employment walks every figure of the paper in order, driven by the real
// engine: the abstract view (Figure 1), the homomorphism subtlety of
// shared nulls (Figure 2), the abstract chase (Figure 3), the concrete
// instance (Figure 4), both normalization algorithms (Figures 5 and 6),
// Algorithm 1 on the three-relation example (Figures 7 and 8), the
// c-chase (Figure 9), and the commutativity square (Figure 10).
package main

import (
	"fmt"
	"log"

	"repro/internal/chase"
	"repro/internal/fact"
	"repro/internal/instance"
	"repro/internal/interval"
	"repro/internal/logic"
	"repro/internal/normalize"
	"repro/internal/paperex"
	"repro/internal/render"
	"repro/internal/value"
	"repro/internal/verify"
)

func section(title string) { fmt.Printf("\n— %s —\n", title) }

func main() {
	ic := paperex.Figure4()
	m := paperex.EmploymentMapping()

	section("Figure 1: abstract view ⟦Ic⟧ (selected snapshots)")
	a := ic.Abstract()
	for _, y := range []interval.Time{2012, 2013, 2014, 2015, 2018} {
		fmt.Printf("  %v  %s\n", y, a.Snapshot(y))
	}

	section("Figure 2: one shared null vs per-snapshot nulls")
	n := value.NewNull(1)
	j1, err := instance.NewAbstract([]instance.Segment{
		{Iv: interval.MustNew(0, 2), Facts: []fact.CFact{
			{Rel: "Emp", Args: []value.Value{paperex.C("Ada"), paperex.C("IBM"), n}, T: interval.MustNew(0, 2)},
		}},
		{Iv: interval.Interval{Start: 2, End: interval.Infinity}},
	})
	if err != nil {
		log.Fatal(err)
	}
	j2c := instance.NewConcrete(nil)
	j2c.MustInsert(fact.NewC("Emp", interval.MustNew(0, 2),
		paperex.C("Ada"), paperex.C("IBM"), value.NewAnnNull(2, interval.MustNew(0, 2))))
	j2 := j2c.Abstract()
	fmt.Printf("  hom J2 → J1 exists: %v; hom J1 → J2 exists: %v (Example 2)\n",
		verify.AbstractHom(j2, j1), verify.AbstractHom(j1, j2))

	section("Figure 3: abstract chase, snapshot by snapshot")
	ja, _, err := chase.Abstract(a, m, nil)
	if err != nil {
		log.Fatal(err)
	}
	for _, y := range []interval.Time{2012, 2013, 2014, 2015, 2018} {
		fmt.Printf("  %v  %s\n", y, ja.Snapshot(y))
	}

	section("Figure 4: the concrete source instance")
	fmt.Print(render.Instance(ic))

	section("Figure 5: Algorithm 1 normalization w.r.t. lhs(σ2+)")
	fmt.Print(render.Instance(normalize.Smart(ic, []logic.Conjunction{paperex.Sigma2Body()})))

	section("Figure 6: naïve normalization of the same instance")
	naive := normalize.Naive(ic)
	fmt.Printf("  %d facts (vs 9 for Algorithm 1) — the size cost of ignoring Φ+\n", naive.Len())

	section("Figures 7–8: Algorithm 1 on the R/P/S instance of Example 14")
	fig7 := paperex.Figure7()
	out, stats := normalize.SmartWithStats(fig7, paperex.Example14Conjunctions())
	fmt.Print(render.Instance(out))
	fmt.Printf("  merged components: %d ({f1,f2,f3} and {f4,f5})\n", stats.Components)

	section("Figure 9: the c-chase result")
	jc, cstats, err := chase.Concrete(ic, m, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(render.Instance(jc))
	fmt.Printf("  tgd steps fired: %d, nulls created: %d, egd merges: %d\n",
		cstats.TGDFires, cstats.NullsCreated, cstats.EgdMerges)

	section("Figure 10: the commutativity square")
	fmt.Printf("  ⟦c-chase(Ic)⟧ ∼ chase(⟦Ic⟧): %v (Corollary 20)\n",
		verify.HomEquivalent(jc.Abstract(), ja))
	ok, _ := verify.IsSolution(a, jc.Abstract(), m)
	fmt.Printf("  ⟦c-chase(Ic)⟧ is a solution: %v (Theorem 19)\n", ok)
}
