// Medical integrates hospital admissions, diagnoses, and prescriptions
// into unified patient charts — the kind of temporal data integration the
// paper's introduction motivates for medical systems. It shows incomplete
// information arising naturally: a patient admitted without a recorded
// diagnosis gets an interval-annotated null in their chart, and the
// one-primary-diagnosis egd resolves it when a diagnosis overlapping the
// stay appears. The whole pipeline is driven through the public tdx API:
// the mapping compiles once and serves every run.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"

	tdx "repro"
	"repro/internal/fact"
	"repro/internal/instance"
	"repro/internal/interval"
	"repro/internal/paperex"
	"repro/internal/workload"
)

func iv(s, e interval.Time) interval.Interval { return interval.MustNew(s, e) }

func main() {
	ctx := context.Background()
	ex, err := tdx.FromMapping(workload.MedicalMapping(), tdx.WithCoalesce(true))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("schema mapping:")
	fmt.Println(ex.Mapping())

	// A hand-built ward: day granularity.
	ward := instance.NewConcrete(ex.Mapping().Source)
	c := paperex.C
	for _, f := range []fact.CFact{
		// Iris: admitted twice; the diagnosis only covers the second stay.
		fact.NewC("Admission", iv(1, 5), c("iris"), c("cardio")),
		fact.NewC("Admission", iv(9, 14), c("iris"), c("cardio")),
		fact.NewC("Diagnosis", iv(8, 20), c("iris"), c("arrhythmia")),
		fact.NewC("Prescription", iv(10, 14), c("iris"), c("betablocker")),
		// Jon: admitted, never diagnosed — his chart keeps an unknown.
		fact.NewC("Admission", iv(3, 7), c("jon"), c("ortho")),
	} {
		if _, err := ward.Insert(f); err != nil {
			log.Fatal(err)
		}
	}
	src := tdx.NewInstance(ward)
	fmt.Println("\nsource (admissions / diagnoses / prescriptions):")
	fmt.Print(src.Table())

	sol, err := ex.Run(ctx, src)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nintegrated target (charts and treatments):")
	fmt.Print(sol.Table())
	fmt.Println("\nIris's chart carries 'arrhythmia' exactly while a diagnosis overlaps")
	fmt.Println("her stay ([9,14)); her first stay and Jon's whole stay carry")
	fmt.Println("interval-annotated nulls — diagnoses unknown, possibly different each day.")

	// Certain answers: which patients were certainly treated for what?
	ans, err := ex.Query(ctx, sol, "query treated(p, d) :- Treatment(p, dr, d)")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ncertain answers to treated(p, d):")
	fmt.Print(ans.Table())

	// Conflicting primary diagnoses on overlapping stays make the setting
	// unsatisfiable — the chase proves no solution exists.
	bad := src.Clone()
	bad.Concrete().MustInsert(fact.NewC("Diagnosis", iv(10, 12), c("iris"), c("flu")))
	if _, err := ex.Run(ctx, bad); errors.Is(err, tdx.ErrNoSolution) {
		fmt.Println("\nadding a second overlapping diagnosis for Iris:")
		fmt.Println("  ", err)
	}

	// Scale up with the generator to show the pipeline beyond toy sizes.
	big := tdx.NewInstance(workload.Medical(workload.MedicalConfig{Seed: 42, Patients: 200, Span: 120}))
	bigSol, err := ex.Run(ctx, big, tdx.WithCoalesce(false))
	if err != nil {
		log.Fatal(err)
	}
	stats := bigSol.Stats()
	fmt.Printf("\nsynthetic hospital: %d source facts → %d target facts "+
		"(%d tgd firings, %d egd merges)\n", big.Len(), bigSol.Len(), stats.TGDFires, stats.EgdMerges)
}
