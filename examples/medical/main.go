// Medical integrates hospital admissions, diagnoses, and prescriptions
// into unified patient charts — the kind of temporal data integration the
// paper's introduction motivates for medical systems. It shows incomplete
// information arising naturally: a patient admitted without a recorded
// diagnosis gets an interval-annotated null in their chart, and the
// one-primary-diagnosis egd resolves it when a diagnosis overlapping the
// stay appears.
package main

import (
	"errors"
	"fmt"
	"log"

	"repro/internal/chase"
	"repro/internal/fact"
	"repro/internal/instance"
	"repro/internal/interval"
	"repro/internal/logic"
	"repro/internal/paperex"
	"repro/internal/query"
	"repro/internal/render"
	"repro/internal/workload"
)

func iv(s, e interval.Time) interval.Interval { return interval.MustNew(s, e) }

func main() {
	m := workload.MedicalMapping()
	fmt.Println("schema mapping:")
	fmt.Println(m)

	// A hand-built ward: day granularity.
	ic := instance.NewConcrete(m.Source)
	c := paperex.C
	for _, f := range []fact.CFact{
		// Iris: admitted twice; the diagnosis only covers the second stay.
		fact.NewC("Admission", iv(1, 5), c("iris"), c("cardio")),
		fact.NewC("Admission", iv(9, 14), c("iris"), c("cardio")),
		fact.NewC("Diagnosis", iv(8, 20), c("iris"), c("arrhythmia")),
		fact.NewC("Prescription", iv(10, 14), c("iris"), c("betablocker")),
		// Jon: admitted, never diagnosed — his chart keeps an unknown.
		fact.NewC("Admission", iv(3, 7), c("jon"), c("ortho")),
	} {
		if _, err := ic.Insert(f); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("\nsource (admissions / diagnoses / prescriptions):")
	fmt.Print(render.Instance(ic))

	jc, _, err := chase.Concrete(ic, m, &chase.Options{Coalesce: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nintegrated target (charts and treatments):")
	fmt.Print(render.Instance(jc))
	fmt.Println("\nIris's chart carries 'arrhythmia' exactly while a diagnosis overlaps")
	fmt.Println("her stay ([9,14)); her first stay and Jon's whole stay carry")
	fmt.Println("interval-annotated nulls — diagnoses unknown, possibly different each day.")

	// Certain answers: which patients were certainly treated for what?
	u, err := query.NewUCQ("treated", query.CQ{
		Name: "treated",
		Head: []string{"p", "d"},
		Body: logic.Conjunction{logic.NewAtom("Treatment", logic.Var("p"), logic.Var("dr"), logic.Var("d"))},
	})
	if err != nil {
		log.Fatal(err)
	}
	ans := query.NaiveEvalConcrete(u, jc)
	fmt.Println("\ncertain answers to treated(p, d):")
	fmt.Print(render.Instance(ans))

	// Conflicting primary diagnoses on overlapping stays make the setting
	// unsatisfiable — the chase proves no solution exists.
	bad := ic.Clone()
	bad.MustInsert(fact.NewC("Diagnosis", iv(10, 12), c("iris"), c("flu")))
	if _, _, err := chase.Concrete(bad, m, nil); errors.Is(err, chase.ErrNoSolution) {
		fmt.Println("\nadding a second overlapping diagnosis for Iris:")
		fmt.Println("  ", err)
	}

	// Scale up with the generator to show the pipeline beyond toy sizes.
	big := workload.Medical(workload.MedicalConfig{Seed: 42, Patients: 200, Span: 120})
	bigJc, stats, err := chase.Concrete(big, m, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsynthetic hospital: %d source facts → %d target facts "+
		"(%d tgd firings, %d egd merges)\n", big.Len(), bigJc.Len(), stats.TGDFires, stats.EgdMerges)
}
