// Package tdx is the public engine API for temporal data exchange
// (Golshanara & Chomicki, SIGMOD 2016): translating data valid over time
// intervals from a source schema to a target schema under s-t tgds and
// egds, with incomplete information represented by interval-annotated
// nulls, and answering queries over the target with certain-answer
// semantics.
//
// The mapping is the fixed artifact; source instances are the variable
// input. Compile parses, validates, and compiles a mapping once into a
// reusable *Exchange — schemas, dependency plans, and a shared value
// interner — and every run executes against it:
//
//	ex, err := tdx.Compile(mappingText)
//	src, err := ex.ParseSource(factsText)
//	sol, err := ex.Run(ctx, src)          // c-chase: a universal solution
//	ans, err := ex.Query(ctx, sol, "q")   // certain answers
//	db  := sol.Snapshot(2013)             // the abstract view at a point
//
// Runs need not start from scratch: a Solution retains its run's frozen
// state, and RunDelta extends it with new source facts via a semi-naive
// delta chase — firing only dependencies that touch the new facts —
// returning the combined solution (byte-identical to a full Run over
// base+delta) plus the Diff against the base:
//
//	sol2, diff, err := ex.RunDelta(ctx, sol, delta)
//
// Concurrency contract. An Exchange is immutable after Compile and safe
// for concurrent use: one compiled mapping serves any number of
// goroutines. An Instance is mutable-until-frozen: while mutable it is
// single-goroutine (even reads fill lazy caches); Instance.Freeze —
// called automatically by Run on its source — builds every lazy
// structure and flips it immutable, after which one instance may feed
// any number of concurrent Runs and concurrent reads, and writes to it
// panic. Solutions come back frozen, so Query, Snapshot, Answer, and
// every rendering accessor are safe from many goroutines against one
// Solution. The chase itself is parallel by default: WithParallelism
// sizes the worker pool that partitions both phases of the concrete
// chase — the tgd homomorphism enumeration and the egd rounds'
// renormalization and merge-candidate scans (byte-identical to the
// sequential chase at any worker count) — as well as Query's
// per-disjunct normalization and RunAbstract's segment fan-out.
// Behavior is configured with
// functional options at Compile time and overridable per call —
// WithNorm, WithEgdStrategy, WithCoalesce, WithTrace, WithParallelism,
// WithRunInterner.
//
// All executing methods take a context.Context, checked throughout the
// chase loops (normalization passes, tgd rounds, egd iterations): a
// canceled or deadline-expired context stops the run promptly with an
// error wrapping the context's error, and never mutates the caller's
// source instance.
//
// Mappings whose tgd heads carry modal markers (past / future / always
// past / always future — the paper's §7 extension) compile and run
// transparently: Run dispatches to the temporal chase.
//
// The pipeline follows the paper: normalization (§4.2) fragments facts so
// intervals behave as constants, the concrete chase (§4.3) materializes a
// concrete solution Jc whose semantics ⟦Jc⟧ is a universal solution
// (Theorem 19), and naïve evaluation on Jc yields certain answers
// (Corollary 22). Run fails with an error wrapping ErrNoSolution when the
// setting admits no solution.
package tdx

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"strings"

	"repro/internal/chase"
	"repro/internal/dependency"
	"repro/internal/fact"
	"repro/internal/instance"
	"repro/internal/jsonio"
	"repro/internal/logic"
	"repro/internal/normalize"
	"repro/internal/parser"
	"repro/internal/query"
	"repro/internal/schema"
	"repro/internal/temporal"
	"repro/internal/value"
)

// ErrNoSolution is wrapped by every Run (and Answer) failure caused by an
// egd equating two distinct constants: the setting admits no solution.
var ErrNoSolution = chase.ErrNoSolution

// ErrNoWitness is wrapped by temporal-mapping runs whose modal operators
// admit no witness interval (e.g. "sometime in the past" at time 0).
var ErrNoWitness = temporal.ErrNoWitness

// Exchange is a compiled schema mapping: the one supported way to drive
// the engine. It bundles the validated mapping, the pre-compiled
// dependency plans, the declared queries, and a shared value interner, so
// the per-mapping work is paid once at Compile and amortized over every
// Run. Exchanges are immutable and safe for concurrent use.
type Exchange struct {
	cfg     config
	cm      *chase.Compiled    // plain mappings
	tm      *temporal.Mapping  // §7 modal mappings (nil otherwise)
	tcm     *temporal.Compiled // compiled form of tm (nil for plain mappings)
	source  *schema.Schema
	target  *schema.Schema
	queries []query.UCQ
	byName  map[string]query.UCQ
	// base is the frozen compile-time interner: it holds exactly the
	// mapping-domain values (dependency and query literals), is never
	// interned into after Compile, and seeds per-run interners when
	// WithRunInterner is set.
	base *value.Interner
	// in is the exchange-wide interner: by default every run's target
	// instances intern into it (it is thread-safe), so values recurring
	// across runs — the mapping-domain constants, shared dimension values
	// — are interned once instead of once per run. It accumulates every
	// distinct value the runs ever intern and has no eviction, so an
	// Exchange serving unbounded distinct inputs grows with them; the
	// WithRunInterner option trades the amortization for bounded growth
	// by giving each run a fresh clone of base instead.
	in *value.Interner
	// normBodies are the concrete tgd bodies the source is normalized
	// against (derived from tm for temporal mappings).
	normBodies []logic.Conjunction
	// fp is the content hash identifying this exchange; see Fingerprint.
	fp string
}

// Compile parses, validates, and compiles a TDX mapping file into a
// reusable Exchange. The text may declare queries ("query q(n) :- ...");
// they become addressable by name in Query and Answer. Options set the
// exchange-wide defaults.
func Compile(mapping string, opts ...Option) (*Exchange, error) {
	f, err := parser.ParseMapping(mapping)
	if err != nil {
		return nil, err
	}
	if f.Temporal != nil {
		return fromTemporal(f.Temporal, f.Queries, opts)
	}
	return fromMapping(f.Mapping, f.Queries, opts)
}

// MustCompile is Compile but panics on error, for tests, examples, and
// mappings embedded as source constants.
func MustCompile(mapping string, opts ...Option) *Exchange {
	ex, err := Compile(mapping, opts...)
	if err != nil {
		panic(err)
	}
	return ex
}

// FromMapping compiles a programmatically built mapping — the bridge for
// module-internal callers (workload generators, experiment harnesses)
// that do not go through the text format.
func FromMapping(m *dependency.Mapping, opts ...Option) (*Exchange, error) {
	return fromMapping(m, nil, opts)
}

// FromTemporalMapping is FromMapping for §7 modal mappings.
func FromTemporalMapping(m *temporal.Mapping, opts ...Option) (*Exchange, error) {
	return fromTemporal(m, nil, opts)
}

func fromMapping(m *dependency.Mapping, queries []query.UCQ, opts []Option) (*Exchange, error) {
	if m == nil {
		return nil, fmt.Errorf("tdx: nil mapping")
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	cm, err := chase.CompileMapping(m)
	if err != nil {
		return nil, err
	}
	ex := &Exchange{
		cfg:        config{}.apply(opts),
		cm:         cm,
		source:     m.Source,
		target:     m.Target,
		normBodies: cm.TGDBodies(),
	}
	return ex.withQueries(queries)
}

func fromTemporal(m *temporal.Mapping, queries []query.UCQ, opts []Option) (*Exchange, error) {
	if m == nil {
		return nil, fmt.Errorf("tdx: nil mapping")
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	tcm, err := temporal.CompileMapping(m)
	if err != nil {
		return nil, err
	}
	ex := &Exchange{
		cfg:        config{}.apply(opts),
		tm:         m,
		tcm:        tcm,
		source:     m.Source,
		target:     m.Target,
		normBodies: tcm.Bodies(),
	}
	return ex.withQueries(queries)
}

// withQueries validates and indexes the declared queries, then seeds the
// exchange's interners (queries contribute literals to the mapping
// domain, so seeding runs after they are known).
func (ex *Exchange) withQueries(queries []query.UCQ) (*Exchange, error) {
	ex.queries = queries
	ex.byName = make(map[string]query.UCQ, len(queries))
	for _, u := range queries {
		if err := u.Validate(ex.target); err != nil {
			return nil, err
		}
		if _, dup := ex.byName[u.Name]; dup {
			return nil, fmt.Errorf("tdx: duplicate query name %q", u.Name)
		}
		ex.byName[u.Name] = u
	}
	ex.base = value.NewInterner()
	ex.seedDomain(ex.base)
	ex.in = value.NewInternerFrom(ex.base)
	ex.fp = ex.fingerprint()
	return ex, nil
}

// fingerprint computes the exchange's content hash: sha256 over the
// canonical mapping rendering and the output-affecting option
// fingerprint.
func (ex *Exchange) fingerprint() string {
	sum := sha256.Sum256([]byte(ex.Canonical() + "\x00" + ex.cfg.fingerprint()))
	return hex.EncodeToString(sum[:])
}

// Canonical returns the canonical text rendering of the compiled
// mapping and its declared queries — the exact string the fingerprint
// hashes. Two mapping texts differing only in whitespace, comments, or
// clause ordering render identically. Compiling the canonical text
// yields an exchange with the same fingerprint (given equal options),
// which is what lets tdxd's warm-start manifest persist mappings as
// text and replay them on boot.
func (ex *Exchange) Canonical() string {
	if ex.tm != nil {
		return parser.FormatTemporalMapping(ex.tm, ex.queries)
	}
	return parser.FormatMapping(ex.cm.Mapping(), ex.queries)
}

// RunFingerprint returns the fingerprint of the effective
// output-affecting options a Run with the given per-call overrides
// would execute under: the exchange's compile-time defaults with opts
// applied on top. Together with Fingerprint and a source-content hash
// it keys cached solutions (tdxd's run-snapshot cache): equal triples
// mean byte-identical solutions.
func (ex *Exchange) RunFingerprint(opts ...Option) string {
	return ex.cfg.apply(opts).fingerprint()
}

// Fingerprint returns the stable content hash identifying this compiled
// exchange: a hex sha256 over the canonical rendering of the mapping
// (schemas, dependencies, and declared queries — two texts differing
// only in whitespace or comments hash equal) combined with the
// fingerprint of the compile-time options that affect solutions
// (normalization strategy, egd strategy, coalescing; see
// OptionsFingerprint). Exchanges with equal fingerprints produce
// byte-identical solutions for every source instance, which is what
// makes the fingerprint a safe registry key: tdxd's compiled-exchange
// registry is keyed on it, and a client holding a fingerprint can
// address the exchange without re-sending the mapping. In fleet mode
// the fingerprint is also the routing key: it is hashed onto the
// fleet's consistent-hash ring to pick the owning nodes, and gossiped
// so any node can locate — or reproduce — the exchange it names.
func (ex *Exchange) Fingerprint() string { return ex.fp }

// seedDomain interns every literal of the mapping's dependencies and
// declared queries — the value domain every run re-encounters — into in.
// This is what makes the frozen base interner a useful per-run seed.
func (ex *Exchange) seedDomain(in *value.Interner) {
	conj := func(c logic.Conjunction) {
		for _, a := range c {
			for _, t := range a.Terms {
				if !t.IsVar {
					in.Intern(t.Val)
				}
			}
		}
	}
	if ex.cm != nil {
		m := ex.cm.Mapping()
		for _, d := range m.TGDs {
			conj(d.Body)
			conj(d.Head)
		}
		for _, d := range m.EGDs {
			conj(d.Body)
		}
	}
	if ex.tm != nil {
		for _, d := range ex.tm.TGDs {
			conj(d.Body)
			for _, ha := range d.Head {
				conj(logic.Conjunction{ha.Atom})
			}
		}
		for _, d := range ex.tm.EGDs {
			conj(d.Body)
		}
	}
	for _, u := range ex.queries {
		for _, q := range u.Disjuncts {
			conj(q.Body)
		}
	}
}

// Info summarizes a compiled exchange, for validation surfaces.
type Info struct {
	SourceRelations int
	TargetRelations int
	TGDs            int
	EGDs            int
	Queries         int
	Temporal        bool // the mapping uses §7 modal operators
}

// Info returns the exchange's shape.
func (ex *Exchange) Info() Info {
	info := Info{
		SourceRelations: ex.source.Len(),
		TargetRelations: ex.target.Len(),
		Queries:         len(ex.queries),
	}
	if ex.tm != nil {
		info.Temporal = true
		info.TGDs, info.EGDs = len(ex.tm.TGDs), len(ex.tm.EGDs)
	} else {
		m := ex.cm.Mapping()
		info.TGDs, info.EGDs = len(m.TGDs), len(m.EGDs)
	}
	return info
}

// Queries returns the names of the queries declared in the mapping file,
// in declaration order.
func (ex *Exchange) Queries() []string {
	out := make([]string, len(ex.queries))
	for i, u := range ex.queries {
		out[i] = u.Name
	}
	return out
}

// Mapping exposes the underlying plain mapping for module-internal
// tooling (nil for temporal mappings).
func (ex *Exchange) Mapping() *dependency.Mapping {
	if ex.cm == nil {
		return nil
	}
	return ex.cm.Mapping()
}

// Temporal exposes the underlying §7 modal mapping for module-internal
// tooling (nil for plain mappings).
func (ex *Exchange) Temporal() *temporal.Mapping { return ex.tm }

// ParseSource parses a TDX facts file into a source instance validated
// against the mapping's source schema. The instance is mutable (extend
// it with Concrete().Insert before running); Run freezes it, after
// which one instance may feed any number of concurrent Runs — no
// per-goroutine copies needed.
func (ex *Exchange) ParseSource(facts string) (*Instance, error) {
	c, err := parser.ParseFacts(facts, ex.source)
	if err != nil {
		return nil, err
	}
	return &Instance{c: c}, nil
}

// DecodeSourceJSON decodes a source instance from the TDX JSON format
// (Instance.JSON / jsonio), streaming from r and validating against the
// mapping's source schema: facts decode and insert one at a time, so a
// large request body never materializes as a document — this is how tdxd
// turns request bodies into request-scoped sources. A schema section in
// the document is cross-checked against the mapping's source schema
// (same relations, same arities) rather than trusted.
func (ex *Exchange) DecodeSourceJSON(r io.Reader) (*Instance, error) {
	c, err := jsonio.DecodeReader(r, ex.source)
	if err != nil {
		return nil, err
	}
	return &Instance{c: c}, nil
}

// chaseOptions builds one run's chase options: fresh per run (the null
// generator must be private), sharing the exchange-wide interner — or a
// per-run clone of the frozen compile-time interner under
// WithRunInterner.
func (ex *Exchange) chaseOptions(ctx context.Context, cfg config) *chase.Options {
	in := ex.in
	if cfg.runInterner {
		in = value.NewInternerFrom(ex.base)
	}
	return &chase.Options{
		Norm:     cfg.chaseNorm(),
		Egd:      cfg.chaseEgd(),
		Trace:    cfg.chaseTrace(),
		Interner: in,
		Workers:  cfg.chaseWorkers(),
		Ctx:      ctx,
	}
}

// ctxOrBackground tolerates a nil context.
func ctxOrBackground(ctx context.Context) context.Context {
	if ctx == nil {
		return context.Background()
	}
	return ctx
}

// Run materializes a concrete universal solution for the source instance
// with the c-chase (§4.3) — or the temporal chase for §7 modal mappings.
// The chase is parallel by default (see WithParallelism) and
// byte-identical to the sequential chase at any worker count. The error
// wraps ErrNoSolution when the setting admits no solution, and ctx's
// error when the run is canceled or its deadline expires. Options
// override the exchange defaults for this run only.
//
// Run freezes src on entry (Run never writes to it; freezing makes that
// contract structural): afterwards src is immutable — writes to it panic
// — and may be shared by any number of concurrent Runs, which is how a
// server shares one parsed source across requests. The returned Solution
// is frozen too, so Facts, Table, JSON, Snapshot, Query, and Diff on it
// are safe from any number of goroutines.
func (ex *Exchange) Run(ctx context.Context, src *Instance, opts ...Option) (*Solution, error) {
	ctx = ctxOrBackground(ctx)
	cfg := ex.cfg.apply(opts)
	src.Freeze()
	copts := ex.chaseOptions(ctx, cfg)
	var (
		jc    *instance.Concrete
		stats chase.Stats
		base  *chase.BaseState
		err   error
	)
	if ex.tm != nil {
		jc, stats, err = temporal.ChaseCompiled(src.c, ex.tcm, copts)
	} else {
		jc, stats, base, err = chase.ConcreteCompiledBase(src.c, ex.cm, copts)
	}
	if err != nil {
		return nil, err
	}
	if cfg.coalesce {
		jc = jc.Coalesce()
	}
	jc.Freeze() // publish: Solution reads are concurrently safe
	return &Solution{Instance: Instance{c: jc}, stats: stats, fp: ex.fp, base: base, src: src}, nil
}

// Diff is the solution-level change set RunDelta reports: the semantic
// temporal difference between the new solution and the base solution,
// in both directions. Added holds the fact fragments (per time point)
// of the new solution absent from the base; Removed the reverse — egd
// merges triggered by new facts can rewrite or collapse base facts, so
// deltas are not purely additive. Both instances come back frozen and
// coalesced.
type Diff struct {
	Added   *Instance
	Removed *Instance
}

// RunDelta incrementally extends a previous Run: given the base
// solution sol (whose run retained its source, normalized source,
// intermediate target, and null-numbering position) and a delta
// instance of new source facts, it produces the solution of the
// combined source — byte-identical, null family ids included, to
// ex.Run over a source containing the base facts followed by the delta
// facts — plus the Diff between the new solution and sol.
//
// The fast path is a semi-naive delta chase: only homomorphisms
// touching the new facts fire, fresh nulls continue the base run's
// numbering, and egd rounds rewrite in place, touching retained base
// rows only up to an internal budget. When the retained state cannot
// prove byte-identity (temporal mappings, naive normalization, base
// reorderings, over-budget egd cascades), RunDelta transparently
// re-chases the combined source from scratch — the result is the same;
// Stats.FallbackFullChase reports which path ran. Either way the
// returned Solution retains state, so RunDelta calls chain: each
// result is a valid base for the next delta.
//
// Delta facts already present in the base source are ignored
// (Stats.DeltaFacts counts the genuinely new ones); an all-duplicate
// delta returns a solution equal to sol with an empty Diff. delta is
// frozen by the call; sol is never mutated. The error wraps
// ErrNoSolution when the combined setting admits none.
func (ex *Exchange) RunDelta(ctx context.Context, sol *Solution, delta *Instance, opts ...Option) (*Solution, *Diff, error) {
	ctx = ctxOrBackground(ctx)
	if sol == nil {
		return nil, nil, fmt.Errorf("tdx: RunDelta: nil base solution")
	}
	if sol.src == nil {
		return nil, nil, fmt.Errorf("tdx: RunDelta: the base solution retains no source (was it produced by Run of this exchange?)")
	}
	cfg := ex.cfg.apply(opts)
	delta.Freeze()

	var next *Solution
	if ex.tm == nil && sol.base != nil && sol.base.Compiled() == ex.cm {
		copts := ex.chaseOptions(ctx, cfg)
		jc, stats, base, err := chase.ConcreteDelta(sol.base, delta.c, copts)
		if err != nil {
			return nil, nil, err
		}
		if cfg.coalesce {
			jc = jc.Coalesce()
		}
		jc.Freeze()
		next = &Solution{Instance: Instance{c: jc}, stats: stats, fp: ex.fp, base: base, src: &Instance{c: base.Source()}}
	} else {
		// Temporal mappings retain no chase state: re-run over the
		// combined source. Same result, no incrementality.
		combined := sol.src.Clone()
		deltaFacts := 0
		var insErr error
		delta.c.EachFact(func(f fact.CFact) bool {
			added, err := combined.c.Insert(f)
			if err != nil {
				insErr = fmt.Errorf("tdx: RunDelta: delta fact %v: %w", f, err)
				return false
			}
			if added {
				deltaFacts++
			}
			return true
		})
		if insErr != nil {
			return nil, nil, insErr
		}
		full, err := ex.Run(ctx, combined, opts...)
		if err != nil {
			return nil, nil, err
		}
		full.stats.DeltaFacts = deltaFacts
		full.stats.FallbackFullChase = true
		next = full
	}

	added, removed := instance.DiffIndexed(next.coverIndex(), sol.coverIndex())
	added.Freeze()
	removed.Freeze()
	return next, &Diff{Added: &Instance{c: added}, Removed: &Instance{c: removed}}, nil
}

// RunAbstract runs the abstract chase on ⟦src⟧ segment-wise (§3) — the
// semantic reference the c-chase is proven equivalent to (Corollary 20),
// exposed for verification and experiments. Segments are chased on a
// worker pool sized by WithParallelism. Not available for temporal
// mappings.
func (ex *Exchange) RunAbstract(ctx context.Context, src *Instance, opts ...Option) (*instance.Abstract, Stats, error) {
	ctx = ctxOrBackground(ctx)
	cfg := ex.cfg.apply(opts)
	if ex.tm != nil {
		return nil, Stats{}, fmt.Errorf("tdx: the abstract chase is not defined for temporal (§7) mappings")
	}
	return chase.AbstractParallelCompiled(src.c.Abstract(), ex.cm, ex.chaseOptions(ctx, cfg), cfg.parallelism)
}

// Normalize returns the source normalized w.r.t. the mapping's tgd
// bodies (paper §4.2) under the configured strategy — exposed for
// inspection; Run performs it internally.
func (ex *Exchange) Normalize(ctx context.Context, src *Instance, opts ...Option) (*Instance, error) {
	ctx = ctxOrBackground(ctx)
	cfg := ex.cfg.apply(opts)
	c, err := normalize.ForMappingCtx(ctx, src.c, ex.normBodies, cfg.chaseNorm())
	if err != nil {
		return nil, err
	}
	return &Instance{c: c}, nil
}

// Query computes the certain answers of q over an already materialized
// solution by naïve evaluation (§5; sound by Corollary 22 when sol came
// from Run). q is either the name of a query declared in the mapping
// file, an inline query in rule syntax ("query q(n) :- Emp(n, c, s)"),
// or empty when the mapping declares exactly one query.
func (ex *Exchange) Query(ctx context.Context, sol *Solution, q string) (*Instance, error) {
	u, err := ex.lookupQuery(q)
	if err != nil {
		return nil, err
	}
	return ex.queryResolved(ctx, sol, u)
}

// queryResolved evaluates an already-resolved query on a solution. The
// per-disjunct normalization fans out over the chase worker pool when
// the solution is frozen (Run always freezes; the parallel pass needs a
// frozen instance to share across workers and concurrent queries).
func (ex *Exchange) queryResolved(ctx context.Context, sol *Solution, u query.UCQ) (*Instance, error) {
	workers := 1
	if sol.c.Frozen() {
		workers = ex.cfg.chaseWorkers()
	}
	ans, err := query.NaiveEvalWorkers(ctxOrBackground(ctx), u, sol.c, workers)
	if err != nil {
		return nil, err
	}
	return &Instance{c: ans}, nil
}

// ValidateQuery resolves and validates a query argument without running
// anything: q is a declared query name, an inline query in rule syntax,
// or empty when the mapping declares exactly one query — the same
// resolution Query performs. Callers that pay for a chase before
// evaluating (servers, pipelines) use it to reject a bad query before
// the run instead of after.
func (ex *Exchange) ValidateQuery(q string) error {
	_, err := ex.lookupQuery(q)
	return err
}

// Answer computes the certain answers of q for a source instance end to
// end (Corollary 22): it runs the exchange, then evaluates. Use Run once
// and Query many times when one solution serves several queries.
func (ex *Exchange) Answer(ctx context.Context, src *Instance, q string, opts ...Option) (*Instance, error) {
	ctx = ctxOrBackground(ctx)
	// Resolve the query first: a bad query name should not cost a chase.
	u, err := ex.lookupQuery(q)
	if err != nil {
		return nil, err
	}
	sol, err := ex.Run(ctx, src, opts...)
	if err != nil {
		return nil, err
	}
	return ex.queryResolved(ctx, sol, u)
}

// Snapshot materializes the solution's abstract snapshot db_at — the
// plain relational database holding at time point at, with
// interval-annotated nulls projected to per-snapshot labeled nulls.
func (ex *Exchange) Snapshot(ctx context.Context, sol *Solution, at Time) (*Snapshot, error) {
	ctx = ctxOrBackground(ctx)
	select {
	case <-ctx.Done():
		return nil, fmt.Errorf("tdx: %w", ctx.Err())
	default:
	}
	return sol.c.Snapshot(at), nil
}

// lookupQuery resolves a query argument: declared name, inline rule
// text, or "" for the single declared query.
func (ex *Exchange) lookupQuery(q string) (query.UCQ, error) {
	q = strings.TrimSpace(q)
	if q == "" {
		switch len(ex.queries) {
		case 1:
			return ex.queries[0], nil
		case 0:
			return query.UCQ{}, errors.New("tdx: the mapping declares no queries; pass an inline query")
		default:
			return query.UCQ{}, fmt.Errorf("tdx: the mapping declares %d queries; pass a name or an inline query", len(ex.queries))
		}
	}
	if u, ok := ex.byName[q]; ok {
		return u, nil
	}
	if strings.Contains(q, ":-") {
		cq, err := parser.ParseQueryLine(q)
		if err != nil {
			return query.UCQ{}, err
		}
		u, err := query.NewUCQ(cq.Name, cq)
		if err != nil {
			return query.UCQ{}, err
		}
		if err := u.Validate(ex.target); err != nil {
			return query.UCQ{}, err
		}
		return u, nil
	}
	return query.UCQ{}, fmt.Errorf("tdx: no query named %q in the mapping (declared: %s)", q, strings.Join(ex.Queries(), ", "))
}
