package tdx

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/instance"
	"repro/internal/schema"
	"repro/internal/snapshot"
	"repro/internal/storage"
	"repro/internal/value"
)

// This file is the public face of internal/snapshot: persisting chased
// solutions to mmap-able columnar snapshot files and loading them back
// without re-running the chase. A loaded solution renders byte-identically
// to the one that was saved — Facts, JSON, Snapshot(t), null family
// numbering, data hashes — because the format serializes the physical
// store layout (row numbering, validity bitmap, interner table in ID
// order) rather than a logical re-encoding. See docs/SNAPSHOT.md for the
// format itself.

// WriteSnapshot serializes the solution — and the frozen source it was
// chased from, when retained — to w in the tdx snapshot format. The
// solution is frozen first if it is not already (so saving a freshly
// Coalesce()d solution works); freezing mutates lazy structures, so a
// not-yet-frozen solution must not be shared across goroutines during
// the write.
func (s *Solution) WriteSnapshot(w io.Writer) error {
	snap, err := s.snapshotPayload()
	if err != nil {
		return err
	}
	return snapshot.Write(w, snap)
}

// WriteSnapshotFile writes the solution's snapshot to path atomically
// (temp file + rename). See WriteSnapshot.
func (s *Solution) WriteSnapshotFile(path string) error {
	snap, err := s.snapshotPayload()
	if err != nil {
		return err
	}
	return snapshot.WriteFile(path, snap)
}

func (s *Solution) snapshotPayload() (snapshot.Snapshot, error) {
	stats, err := json.Marshal(s.stats)
	if err != nil {
		return snapshot.Snapshot{}, fmt.Errorf("tdx: marshal stats: %w", err)
	}
	s.c.Freeze()
	snap := snapshot.Snapshot{
		Store: s.c.Store(),
		Meta: snapshot.Meta{
			Kind:     "solution",
			Exchange: s.fp,
			Schema:   schemaSig(s.c.Schema()),
			Stats:    stats,
		},
	}
	if s.src != nil {
		s.src.c.Freeze()
		snap.Source = s.src.c.Store()
		snap.Meta.SourceSchema = schemaSig(s.src.c.Schema())
	}
	return snap, nil
}

// LoadSolution loads a solution snapshot previously written by
// WriteSnapshot against this exchange. The returned solution is frozen,
// renders byte-identically to the saved one, and — when the snapshot
// embeds the source group — supports RunDelta (the first delta run
// re-chases from scratch and reports Stats.FallbackFullChase, since the
// chase-layer resume state is not persisted; later deltas are
// incremental again). On linux the file is mapped, not read: relation
// pages fault in on first touch and stay shared between processes, and
// the mapping is released when the solution becomes unreachable.
//
// The snapshot's relations are validated structurally against the
// exchange's target (and source) schema — unknown relations, arity
// mismatches, or non-interval timestamp columns are errors — so loading
// a snapshot against the wrong mapping fails instead of producing
// garbage.
func (ex *Exchange) LoadSolution(path string) (*Solution, error) {
	f, err := snapshot.Open(path)
	if err != nil {
		return nil, err
	}
	sol, err := ex.loadSolution(f)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("tdx: load %s: %w", path, err)
	}
	return sol, nil
}

func (ex *Exchange) loadSolution(f *snapshot.File) (*Solution, error) {
	st, err := f.Store()
	if err != nil {
		return nil, err
	}
	if err := checkStoreSchema(st, ex.target, "solution"); err != nil {
		return nil, err
	}
	m := f.Meta()
	sol := &Solution{Instance: Instance{c: instance.FromStore(ex.target, st)}, fp: m.Exchange}
	if len(m.Stats) > 0 {
		if err := json.Unmarshal(m.Stats, &sol.stats); err != nil {
			return nil, fmt.Errorf("stats: %w", err)
		}
	}
	if f.HasSource() {
		src, err := f.SourceStore()
		if err != nil {
			return nil, err
		}
		if err := checkStoreSchema(src, ex.source, "source"); err != nil {
			return nil, err
		}
		sol.src = &Instance{c: instance.FromStore(ex.source, src)}
	}
	return sol, nil
}

// schemaSig renders a schema into snapshot meta signatures (nil for
// schemaless instances).
func schemaSig(sch *schema.Schema) []snapshot.RelSig {
	if sch == nil {
		return nil
	}
	sigs := make([]snapshot.RelSig, 0, sch.Len())
	for _, name := range sch.Names() {
		r, _ := sch.Relation(name)
		sigs = append(sigs, snapshot.RelSig{Name: r.Name, Attrs: r.Attrs})
	}
	return sigs
}

// checkStoreSchema validates a loaded store against a schema: every
// relation must be declared, every row must have the fact arity (data
// attributes plus the timestamp), and the last column must hold interval
// values — the invariants the rendering and matching layers assume.
func checkStoreSchema(st *storage.Store, sch *schema.Schema, group string) error {
	for _, name := range st.Relations() {
		rel, ok := sch.Relation(name)
		if !ok {
			return fmt.Errorf("%s group: relation %q not in the mapping's schema", group, name)
		}
		want := rel.Arity() + 1
		d := st.Rel(name).Dump()
		in := st.Interner()
		for _, seg := range d.Segments {
			if seg.Arity != want {
				return fmt.Errorf("%s group: relation %q has rows of arity %d, schema wants %d",
					group, name, seg.Arity, want)
			}
			for _, id := range seg.Cols[seg.Arity-1] {
				if in.KindOf(id) != value.IntervalVal {
					return fmt.Errorf("%s group: relation %q has a non-interval timestamp column", group, name)
				}
			}
		}
	}
	return nil
}
