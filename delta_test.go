package tdx

import (
	"context"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/fact"
	"repro/internal/instance"
	"repro/internal/workload"
)

// TestRunDeltaEquivalence is the public-API adjudicator of the
// incremental exchange: across random mappings, random base/delta
// splits, and worker counts, RunDelta over a retained base solution
// must be byte-identical — facts, null family ids, snapshots — to one
// Run over the combined source, whether it takes the semi-naive fast
// path or falls back to a full re-chase. The reported Diff must agree
// with the one computed directly from the two solutions.
func TestRunDeltaEquivalence(t *testing.T) {
	ctx := context.Background()
	trials, fastPaths := 0, 0
	for seed := int64(0); seed < 10; seed++ {
		for _, workers := range []int{1, 2, 4} {
			if workers > 1 && seed >= 6 {
				continue // full worker sweep on the first six seeds, breadth on one
			}
			r := rand.New(rand.NewSource(seed))
			m := workload.RandomMapping(r)
			all := workload.RandomInstanceFor(r, m, 40+r.Intn(200))
			cut := all.Len() - (1 + r.Intn(7))
			if cut < 1 {
				cut = 1
			}
			parts := make([]*instance.Concrete, 3) // base, delta, full
			for i := range parts {
				parts[i] = instance.NewConcreteWith(m.Source, all.Interner())
			}
			i := 0
			all.EachFact(func(f fact.CFact) bool {
				if i < cut {
					parts[0].MustInsert(f)
				} else {
					parts[1].MustInsert(f)
				}
				parts[2].MustInsert(f)
				i++
				return true
			})

			ex, err := FromMapping(m, WithParallelism(workers))
			if err != nil {
				t.Fatalf("seed %d: compile: %v", seed, err)
			}
			want, wantErr := ex.Run(ctx, NewInstance(parts[2]))
			baseSol, baseErr := ex.Run(ctx, NewInstance(parts[0]))
			if baseErr != nil {
				if wantErr == nil {
					t.Fatalf("seed %d w%d: base run failed (%v) but combined run succeeded", seed, workers, baseErr)
				}
				continue
			}
			got, diff, gotErr := ex.RunDelta(ctx, baseSol, NewInstance(parts[1]))
			trials++
			if (gotErr == nil) != (wantErr == nil) {
				t.Fatalf("seed %d w%d: RunDelta err = %v, combined Run err = %v", seed, workers, gotErr, wantErr)
			}
			if gotErr != nil {
				continue
			}
			if !got.Stats().FallbackFullChase {
				fastPaths++
			}
			if got.String() != want.String() {
				t.Fatalf("seed %d w%d (fallback=%v): RunDelta diverges from combined Run\n--- delta ---\n%s\n--- full ---\n%s",
					seed, workers, got.Stats().FallbackFullChase, got.String(), want.String())
			}
			if wantAdded := got.Diff(&baseSol.Instance); !diff.Added.Equal(wantAdded) {
				t.Fatalf("seed %d w%d: Diff.Added disagrees with Instance.Diff", seed, workers)
			}
			if wantRemoved := baseSol.Diff(&got.Instance); !diff.Removed.Equal(wantRemoved) {
				t.Fatalf("seed %d w%d: Diff.Removed disagrees with Instance.Diff", seed, workers)
			}
			// The next solution must itself be a valid delta base: chain an
			// empty delta and demand a no-op.
			again, d2, err := ex.RunDelta(ctx, got, NewInstance(instance.NewConcreteWith(m.Source, all.Interner())))
			if err != nil {
				t.Fatalf("seed %d w%d: chained empty delta: %v", seed, workers, err)
			}
			if again.String() != got.String() || d2.Added.Len() != 0 || d2.Removed.Len() != 0 {
				t.Fatalf("seed %d w%d: chained empty delta was not a no-op", seed, workers)
			}
		}
	}
	if trials == 0 {
		t.Fatal("no trial exercised RunDelta")
	}
	if fastPaths == 0 {
		t.Fatal("every trial fell back to a full re-chase; the incremental path was never exercised")
	}
	t.Logf("RunDelta equivalence: %d trials, %d fast paths", trials, fastPaths)
}

// TestRunDeltaEmployment pins the paper's running example end to end: a
// new hire arrives after the base exchange ran. The delta must take the
// fast path, fire both tgds, resolve the invented salary null against
// the delta S fact via the key egd, and report exactly the new
// employment fact as added.
func TestRunDeltaEmployment(t *testing.T) {
	ctx := context.Background()
	ex := compileTestdata(t, "employment.tdx")
	src, err := ex.ParseSource(readTestdata(t, "employment.facts"))
	if err != nil {
		t.Fatal(err)
	}
	sol, err := ex.Run(ctx, src)
	if err != nil {
		t.Fatal(err)
	}
	delta, err := ex.ParseSource("E(Carol, IBM) @ [2015, 2019)\nS(Carol, 21k) @ [2015, 2019)")
	if err != nil {
		t.Fatal(err)
	}
	got, diff, err := ex.RunDelta(ctx, sol, delta)
	if err != nil {
		t.Fatal(err)
	}
	stats := got.Stats()
	if stats.FallbackFullChase {
		t.Fatalf("new-hire delta fell back to a full re-chase: %+v", stats)
	}
	if stats.DeltaFacts != 2 {
		t.Fatalf("DeltaFacts = %d, want 2", stats.DeltaFacts)
	}
	if stats.DeltaFires < 2 {
		t.Fatalf("DeltaFires = %d, want >= 2 (sigma1 and sigma2 both touch Carol)", stats.DeltaFires)
	}
	if !strings.Contains(diff.Added.String(), "Emp(Carol, IBM, 21k") {
		t.Fatalf("Diff.Added misses Carol's resolved employment:\n%s", diff.Added)
	}
	if diff.Removed.Len() != 0 {
		t.Fatalf("a purely additive delta removed facts:\n%s", diff.Removed)
	}

	// Byte-identity against one run over the combined source.
	combined, err := ex.ParseSource(readTestdata(t, "employment.facts") +
		"\nE(Carol, IBM) @ [2015, 2019)\nS(Carol, 21k) @ [2015, 2019)")
	if err != nil {
		t.Fatal(err)
	}
	want, err := ex.Run(ctx, combined)
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != want.String() {
		t.Fatalf("RunDelta diverges from combined Run\n--- delta ---\n%s\n--- full ---\n%s", got, want)
	}
	// The delta solution answers queries like any other.
	ans, err := ex.Query(ctx, got, "q")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ans.String(), "Carol") {
		t.Fatalf("certain answers miss the new hire:\n%s", ans)
	}
}

// TestRunDeltaTemporalFallback pins the §7 path: temporal mappings
// retain no incremental state, so RunDelta transparently re-chases the
// combined source and says so in Stats.
func TestRunDeltaTemporalFallback(t *testing.T) {
	ctx := context.Background()
	ex := compileTestdata(t, "phd.tdx")
	src, err := ex.ParseSource(readTestdata(t, "phd.facts"))
	if err != nil {
		t.Fatal(err)
	}
	sol, err := ex.Run(ctx, src)
	if err != nil {
		t.Fatal(err)
	}
	delta, err := ex.ParseSource("PhDgrad(bob) @ [2018, 2019)")
	if err != nil {
		t.Fatal(err)
	}
	got, diff, err := ex.RunDelta(ctx, sol, delta)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Stats().FallbackFullChase {
		t.Fatal("temporal RunDelta claimed an incremental run")
	}
	if got.Stats().DeltaFacts != 1 {
		t.Fatalf("DeltaFacts = %d, want 1", got.Stats().DeltaFacts)
	}
	combined, err := ex.ParseSource(readTestdata(t, "phd.facts") + "\nPhDgrad(bob) @ [2018, 2019)")
	if err != nil {
		t.Fatal(err)
	}
	want, err := ex.Run(ctx, combined)
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != want.String() {
		t.Fatalf("temporal RunDelta diverges from combined Run\n--- delta ---\n%s\n--- full ---\n%s", got, want)
	}
	if diff.Added.Len() == 0 {
		t.Fatal("bob's graduation produced no new target facts")
	}
}

// TestRunDeltaNilBase pins the error contract for solutions that cannot
// serve as a delta base.
func TestRunDeltaNilBase(t *testing.T) {
	ex := compileTestdata(t, "employment.tdx")
	delta, err := ex.ParseSource("E(Carol, IBM) @ [2015, 2019)")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ex.RunDelta(context.Background(), nil, delta); err == nil {
		t.Fatal("RunDelta accepted a nil base solution")
	}
}
