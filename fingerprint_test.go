package tdx

import (
	"strings"
	"testing"
)

// TestFingerprintStable pins the fingerprint contract: recompiling the
// same text yields the same hash, whitespace and comments don't matter,
// and output-affecting options do.
func TestFingerprintStable(t *testing.T) {
	text := readTestdata(t, "employment.tdx")
	a := MustCompile(text)
	b := MustCompile(text)
	if a.Fingerprint() == "" || len(a.Fingerprint()) != 64 || !isHex(a.Fingerprint()) {
		t.Fatalf("fingerprint is not a hex sha256: %q", a.Fingerprint())
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("recompile changed fingerprint: %s vs %s", a.Fingerprint(), b.Fingerprint())
	}

	// Reformatting — extra whitespace, extra comments — hashes equal.
	noisy := "# a new leading comment\n" + strings.ReplaceAll(text, "tgd sigma1:", "tgd   sigma1:  ")
	if MustCompile(noisy).Fingerprint() != a.Fingerprint() {
		t.Fatal("whitespace/comment noise changed the fingerprint")
	}

	// A semantic change (renamed dependency) changes the hash.
	renamed := strings.ReplaceAll(text, "tgd sigma1:", "tgd sigmaX:")
	if MustCompile(renamed).Fingerprint() == a.Fingerprint() {
		t.Fatal("renamed tgd kept the fingerprint")
	}

	// Output-affecting options are part of the identity...
	if MustCompile(text, WithNorm(NormNaive)).Fingerprint() == a.Fingerprint() {
		t.Fatal("WithNorm(NormNaive) kept the fingerprint")
	}
	if MustCompile(text, WithCoalesce(true)).Fingerprint() == a.Fingerprint() {
		t.Fatal("WithCoalesce kept the fingerprint")
	}
	// ...while byte-identical-output options are not.
	if MustCompile(text, WithParallelism(4), WithRunInterner()).Fingerprint() != a.Fingerprint() {
		t.Fatal("WithParallelism/WithRunInterner changed the fingerprint")
	}
}

// TestFingerprintTemporal covers the §7 modal path: temporal mappings
// fingerprint through the temporal canonical rendering.
func TestFingerprintTemporal(t *testing.T) {
	text := readTestdata(t, "phd.tdx")
	a := MustCompile(text)
	if !a.Info().Temporal {
		t.Fatal("phd.tdx should compile temporal")
	}
	if a.Fingerprint() != MustCompile(text).Fingerprint() {
		t.Fatal("temporal recompile changed fingerprint")
	}
	if a.Fingerprint() == MustCompile(readTestdata(t, "employment.tdx")).Fingerprint() {
		t.Fatal("distinct mappings share a fingerprint")
	}
	// Dropping a modal marker is a semantic change even though the atoms
	// are unchanged.
	demodal := strings.ReplaceAll(text, "always future Alumni", "Alumni")
	if MustCompile(demodal).Fingerprint() == a.Fingerprint() {
		t.Fatal("modal marker is not part of the fingerprint")
	}
}

// TestOptionsFingerprint pins the helper registries key on.
func TestOptionsFingerprint(t *testing.T) {
	if OptionsFingerprint() != OptionsFingerprint(WithParallelism(8), WithRunInterner()) {
		t.Fatal("non-output options leaked into the fingerprint")
	}
	if OptionsFingerprint() == OptionsFingerprint(WithEgdStrategy(EgdStepwise)) {
		t.Fatal("egd strategy missing from the fingerprint")
	}
	if OptionsFingerprint() == OptionsFingerprint(WithNorm(NormNaive)) {
		t.Fatal("norm strategy missing from the fingerprint")
	}
}

func isHex(s string) bool {
	for _, r := range s {
		if (r < '0' || r > '9') && (r < 'a' || r > 'f') {
			return false
		}
	}
	return true
}
