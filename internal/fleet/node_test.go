package fleet

import (
	"fmt"
	"testing"
	"time"
)

// newTestNode builds a started loopback node with a fast clock: short
// interval and TTL so convergence and expiry both happen inside a test
// timeout.
func newTestNode(t *testing.T, id string, peers []string, local func(time.Time) []Fact) *Node {
	t.Helper()
	n, err := New(Config{
		ID:            id,
		AdvertiseHTTP: "127.0.0.1:0", // placeholder; transport tests never forward
		Peers:         peers,
		Interval:      20 * time.Millisecond,
		TTL:           300 * time.Millisecond,
		Secret:        "test-fleet",
	}, local)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { n.Close() })
	n.Start()
	return n
}

// eventually polls cond until it holds or the deadline lapses.
func eventually(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("never converged: %s", what)
}

func exchangeFact(hash string, stamp int64) Fact {
	return Fact{Kind: KindExchange, Hash: hash, Stamp: stamp, Payload: []byte(`{"mapping":"m-` + hash + `"}`)}
}

func TestNodeConvergence(t *testing.T) {
	// a holds h1; b and c start empty and only know a as a seed. All
	// three must converge on the same membership and holder view — c
	// discovers b transitively through a.
	a := newTestNode(t, "a", nil, func(time.Time) []Fact { return []Fact{exchangeFact("h1", 1)} })
	b := newTestNode(t, "b", []string{a.GossipAddr()}, nil)
	c := newTestNode(t, "c", []string{a.GossipAddr()}, nil)

	for _, n := range []*Node{a, b, c} {
		n := n
		eventually(t, fmt.Sprintf("node %s sees 3 members", n.ID()), func() bool {
			return len(n.Members()) == 3
		})
		eventually(t, fmt.Sprintf("node %s learns the h1 holder", n.ID()), func() bool {
			h := n.Accumulator().Holders("h1", time.Now())
			return len(h) == 1 && h[0].Node == "a"
		})
	}
	// Placement agrees everywhere: same membership, same ring.
	wantOwners := a.Ring().Owners("h1", 2)
	for _, n := range []*Node{b, c} {
		if got := n.Ring().Owners("h1", 2); fmt.Sprint(got) != fmt.Sprint(wantOwners) {
			t.Fatalf("node %s owners %v, node a says %v", n.ID(), got, wantOwners)
		}
	}
	// The manifest payload traveled with the fact.
	for _, n := range []*Node{b, c} {
		payload, ok := n.ManifestPayload("h1")
		if !ok || string(payload) != `{"mapping":"m-h1"}` {
			t.Fatalf("node %s payload %q ok=%v", n.ID(), payload, ok)
		}
	}
	if a.GossipSent() == 0 || b.GossipReceived() == 0 {
		t.Fatalf("counters flat: sent=%d received=%d", a.GossipSent(), b.GossipReceived())
	}
}

func TestNodeTTLExpiry(t *testing.T) {
	a := newTestNode(t, "a", nil, func(time.Time) []Fact { return []Fact{exchangeFact("h1", 1)} })
	b := newTestNode(t, "b", []string{a.GossipAddr()}, nil)
	eventually(t, "b sees a's exchange", func() bool {
		return len(b.Accumulator().Holders("h1", time.Now())) == 1
	})
	// Kill a: without refreshes its facts must evaporate from b within
	// the TTL (plus a sweep), and the membership view must shrink.
	a.Close()
	eventually(t, "a's facts expire on b", func() bool {
		// The counter rides the sweep (a gossip round), which may lag the
		// filtered views by one interval.
		return len(b.Members()) == 1 &&
			len(b.Accumulator().Holders("h1", time.Now())) == 0 &&
			b.FactsExpired() > 0
	})
}

func TestNodeWithdrawal(t *testing.T) {
	// The local() callback stops returning an exchange: the node must
	// stop asserting it, and peers forget it one TTL later.
	holding := make(chan bool, 1)
	holding <- true
	hold := true
	a := newTestNode(t, "a", nil, func(time.Time) []Fact {
		select {
		case hold = <-holding:
		default:
		}
		if hold {
			return []Fact{exchangeFact("h1", 1)}
		}
		return nil
	})
	b := newTestNode(t, "b", []string{a.GossipAddr()}, nil)
	eventually(t, "b learns h1", func() bool {
		return len(b.Accumulator().Holders("h1", time.Now())) == 1
	})
	holding <- false
	eventually(t, "b forgets h1 after withdrawal", func() bool {
		return len(b.Accumulator().Holders("h1", time.Now())) == 0
	})
	eventually(t, "b still sees both members", func() bool {
		return len(b.Members()) == 2
	})
}

func TestNodeSecretMismatch(t *testing.T) {
	a, err := New(Config{ID: "a", AdvertiseHTTP: "x", Interval: 20 * time.Millisecond, Secret: "one"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	a.Start()
	b, err := New(Config{ID: "b", AdvertiseHTTP: "x", Interval: 20 * time.Millisecond, Secret: "two",
		Peers: []string{a.GossipAddr()}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	b.Start()
	eventually(t, "a drops mis-signed packets", func() bool { return a.BadPackets() > 0 })
	if len(a.Members()) != 1 || len(b.Members()) != 1 {
		t.Fatalf("mis-signed fleets merged: a=%d b=%d members", len(a.Members()), len(b.Members()))
	}
}

func TestNodeRouteOrdersOwnersFirst(t *testing.T) {
	// Build the view by hand on an unstarted node: no goroutines, no
	// timing. d routes h: owners that hold it come first, then owners
	// that would fault it in, then remaining holders; self never shows.
	n, err := New(Config{ID: "d", AdvertiseHTTP: "http://d", Owners: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	now := time.Now()
	ids := []string{"a", "b", "c", "d"}
	for _, id := range ids {
		n.acc.Observe(Fact{Kind: KindNode, Node: id, Addr: "http://" + id, Stamp: 1, TTL: time.Minute}, now)
	}
	const hash = "some-fingerprint"
	owners := NewRing(0, ids...).Owners(hash, 2)
	// Every non-self member holds the exchange.
	for _, id := range ids {
		if id == "d" {
			continue
		}
		n.acc.Observe(Fact{Kind: KindExchange, Node: id, Hash: hash, Stamp: 1, TTL: time.Minute}, now)
	}
	route := n.Route(hash)
	var want []string
	for _, id := range owners {
		if id != "d" {
			want = append(want, id)
		}
	}
	for _, id := range ids {
		dup := id == "d"
		for _, w := range want {
			dup = dup || w == id
		}
		if !dup {
			want = append(want, id)
		}
	}
	if len(route) != len(want) {
		t.Fatalf("route %v, want ids %v", route, want)
	}
	for i, m := range route {
		if m.ID != want[i] {
			t.Fatalf("route[%d] = %s, want %s (route %v owners %v)", i, m.ID, want[i], route, owners)
		}
		if m.ID == "d" {
			t.Fatal("route contains self")
		}
	}
}
