package fleet

import (
	"fmt"
	"math/rand/v2"
	"reflect"
	"testing"
)

func TestRingDeterministicPlacement(t *testing.T) {
	// Placement is a pure function of the membership set: insertion
	// order, duplicates, and rebuilds must not move anything.
	nodes := []string{"carol", "alice", "bob", "dave"}
	r1 := NewRing(0, nodes...)
	r2 := NewRing(0, "dave", "bob", "bob", "alice", "", "carol")
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("fingerprint-%d", i)
		o1, o2 := r1.Owners(key, 2), r2.Owners(key, 2)
		if !reflect.DeepEqual(o1, o2) {
			t.Fatalf("key %s: owners differ across insertion orders: %v vs %v", key, o1, o2)
		}
		if len(o1) != 2 || o1[0] == o1[1] {
			t.Fatalf("key %s: owner set %v", key, o1)
		}
	}
	// Golden placements pin the hash function across processes and
	// architectures: the ring is only a router if every tdxd process
	// computes the same owners from the same membership. If these move,
	// the wire-compatibility of a mixed-version fleet breaks — bump a
	// fleet protocol version rather than silently changing placement.
	golden := map[string]string{
		"fingerprint-0": "dave",
		"fingerprint-1": "dave",
		"fingerprint-2": "bob",
		"fingerprint-3": "carol",
	}
	for key, want := range golden {
		if got := r1.Owner(key); got != want {
			t.Errorf("golden placement moved: Owner(%q) = %q, want %q", key, got, want)
		}
	}
}

func TestRingOwnersBounds(t *testing.T) {
	empty := NewRing(0)
	if got := empty.Owners("k", 2); got != nil {
		t.Fatalf("empty ring owners: %v", got)
	}
	if empty.Owner("k") != "" {
		t.Fatal("empty ring has an owner")
	}
	one := NewRing(0, "solo")
	if got := one.Owners("k", 3); len(got) != 1 || got[0] != "solo" {
		t.Fatalf("single-node owners: %v", got)
	}
}

// TestRingMinimalMovement property-tests the consistent-hashing
// contract over randomized memberships: adding or removing one node of
// n moves ≈ K/n of K keys — never a wholesale reshuffle — and a
// removal relocates only keys the removed node owned.
func TestRingMinimalMovement(t *testing.T) {
	const keys = 2000
	for seed := uint64(1); seed <= 5; seed++ {
		rng := rand.New(rand.NewPCG(seed, seed*7919))
		n := 4 + int(rng.Uint64()%13) // 4..16 nodes
		nodes := make([]string, n)
		for i := range nodes {
			nodes[i] = fmt.Sprintf("node-%d-%d", seed, rng.Uint64())
		}
		before := NewRing(0, nodes...)

		// Join: one more node takes ≈ K/(n+1) keys, everything else stays.
		joined := NewRing(0, append(append([]string(nil), nodes...), "joiner")...)
		moved := 0
		for i := 0; i < keys; i++ {
			key := fmt.Sprintf("key-%d-%d", seed, i)
			ob, oa := before.Owner(key), joined.Owner(key)
			if ob != oa {
				moved++
				if oa != "joiner" {
					t.Fatalf("seed %d: key %s moved %s→%s, not to the joiner", seed, key, ob, oa)
				}
			}
		}
		expected := keys / (n + 1)
		if moved == 0 || moved > 3*expected {
			t.Fatalf("seed %d (n=%d): join moved %d keys, want ≈%d (≤%d)", seed, n, moved, expected, 3*expected)
		}

		// Leave: only the leaver's keys move.
		leaver := nodes[rng.IntN(n)]
		var rest []string
		for _, m := range nodes {
			if m != leaver {
				rest = append(rest, m)
			}
		}
		after := NewRing(0, rest...)
		moved = 0
		for i := 0; i < keys; i++ {
			key := fmt.Sprintf("key-%d-%d", seed, i)
			ob, oa := before.Owner(key), after.Owner(key)
			if ob != oa {
				moved++
				if ob != leaver {
					t.Fatalf("seed %d: key %s moved %s→%s though %s left", seed, key, ob, oa, leaver)
				}
				if oa == leaver {
					t.Fatalf("seed %d: key %s still owned by the leaver", seed, key)
				}
			}
		}
		expected = keys / n
		if moved == 0 || moved > 3*expected {
			t.Fatalf("seed %d (n=%d): leave moved %d keys, want ≈%d (≤%d)", seed, n, moved, expected, 3*expected)
		}
	}
}

// TestRingBalance checks the virtual points spread load: over many keys
// no node of a 8-node ring owns a wildly disproportionate share.
func TestRingBalance(t *testing.T) {
	var nodes []string
	for i := 0; i < 8; i++ {
		nodes = append(nodes, fmt.Sprintf("n%d", i))
	}
	r := NewRing(0, nodes...)
	counts := make(map[string]int)
	const keys = 8000
	for i := 0; i < keys; i++ {
		counts[r.Owner(fmt.Sprintf("key-%d", i))]++
	}
	for _, n := range nodes {
		share := counts[n]
		if share < keys/8/3 || share > keys/8*3 {
			t.Errorf("node %s owns %d of %d keys (mean %d): imbalanced", n, share, keys, keys/8)
		}
	}
}
