package fleet

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
)

// Ring is a consistent-hash ring over node IDs: every node projects
// Replicas virtual points onto a 64-bit circle, and a key is owned by
// the first N distinct nodes clockwise from the key's own point.
// Hashing is SHA-256-based, so placement is identical across processes
// and architectures — two nodes that agree on the membership agree on
// every owner list without exchanging anything else. Membership changes
// move only the keys adjacent to the changed node's points: joining or
// leaving one node of n relocates ≈ 1/n of the keyspace (the classic
// consistent-hashing bound, property-tested in ring_test.go).
//
// A Ring is immutable after construction; derive a new one per
// membership view (the fleet node rebuilds it from live facts).
type Ring struct {
	replicas int
	points   []ringPoint // sorted by (hash, node)
	nodes    []string    // sorted, deduplicated membership
}

type ringPoint struct {
	hash uint64
	node string
}

// DefaultReplicas is the virtual-point count per node when the caller
// does not choose: enough that per-node load imbalance stays within a
// few percent, small enough that rebuilds are negligible.
const DefaultReplicas = 64

// NewRing builds a ring over nodes with the given virtual-point count
// per node (<= 0 means DefaultReplicas). Duplicate and empty node IDs
// are dropped.
func NewRing(replicas int, nodes ...string) *Ring {
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	seen := make(map[string]bool, len(nodes))
	member := make([]string, 0, len(nodes))
	for _, n := range nodes {
		if n == "" || seen[n] {
			continue
		}
		seen[n] = true
		member = append(member, n)
	}
	sort.Strings(member)
	r := &Ring{replicas: replicas, nodes: member}
	r.points = make([]ringPoint, 0, len(member)*replicas)
	var buf [8]byte
	for _, n := range member {
		for i := 0; i < replicas; i++ {
			binary.BigEndian.PutUint64(buf[:], uint64(i))
			r.points = append(r.points, ringPoint{hash: ringHash(n, string(buf[:])), node: n})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].node < r.points[j].node
	})
	return r
}

// ringHash maps a (label, salt) pair onto the circle.
func ringHash(label, salt string) uint64 {
	h := sha256.New()
	h.Write([]byte(label))
	h.Write([]byte{0})
	h.Write([]byte(salt))
	var sum [sha256.Size]byte
	h.Sum(sum[:0])
	return binary.BigEndian.Uint64(sum[:8])
}

// Nodes returns the ring's membership, sorted.
func (r *Ring) Nodes() []string { return append([]string(nil), r.nodes...) }

// Len returns the member count.
func (r *Ring) Len() int { return len(r.nodes) }

// Owners returns the first n distinct nodes clockwise from key's point
// — the key's owner set, most-preferred first. Fewer than n members
// returns them all.
func (r *Ring) Owners(key string, n int) []string {
	if len(r.nodes) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	kh := ringHash(key, "")
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= kh })
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, p.node)
		}
	}
	return out
}

// Owner returns the key's primary owner ("" on an empty ring).
func (r *Ring) Owner(key string) string {
	o := r.Owners(key, 1)
	if len(o) == 0 {
		return ""
	}
	return o[0]
}
