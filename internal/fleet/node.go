package fleet

import (
	"errors"
	"fmt"
	"log"
	"math/rand/v2"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Config parameterizes a fleet node. ID and AdvertiseHTTP are required;
// everything else has a serviceable default.
type Config struct {
	// ID is this node's stable identity — the label its facts carry and
	// the ring hashes. tdxd persists one under -state so restarts keep
	// their ring position.
	ID string
	// AdvertiseHTTP is the HTTP address peers forward requests to.
	AdvertiseHTTP string
	// BindUDP is the local gossip listen address ("127.0.0.1:0" when
	// empty — loopback, kernel-chosen port).
	BindUDP string
	// Peers seeds the gossip mesh with known peer UDP addresses; gossip
	// discovers everyone transitively from there.
	Peers []string
	// Interval is the gossip period (DefaultInterval when <= 0).
	Interval time.Duration
	// TTL is how long peers may trust this node's facts without a
	// refresh (DefaultTTLIntervals * Interval when <= 0). It must
	// comfortably exceed Interval or knowledge flaps.
	TTL time.Duration
	// Fanout is how many peers each round pushes to (DefaultFanout when
	// <= 0).
	Fanout int
	// Owners is the replication factor routing aims at: how many ring
	// owners a fingerprint routes to (DefaultOwners when <= 0).
	Owners int
	// Secret, when non-empty, HMAC-signs every packet; peers with a
	// different secret (or none) are ignored.
	Secret string
	// Load reports this node's current load (in-flight chases) for the
	// node fact. nil means 0.
	Load func() int64
	// Logf receives operational messages. nil means log.Printf.
	Logf func(format string, args ...any)
}

// DefaultInterval is the gossip period when the configuration is
// silent.
const DefaultInterval = time.Second

// DefaultTTLIntervals sets the default fact TTL as a multiple of the
// gossip interval: a fact survives this many missed refreshes before a
// peer forgets it.
const DefaultTTLIntervals = 5

// DefaultFanout is the per-round push fan-out.
const DefaultFanout = 3

// DefaultOwners is the routing replication factor.
const DefaultOwners = 2

// Member is one live fleet node as the membership view knows it.
type Member struct {
	ID     string
	Addr   string // HTTP address for forwarding
	Gossip string // UDP address for gossip
	Load   int64
}

// Node is one gossiping fleet member: it periodically pushes its full
// fact view to a few random peers, accumulates what it hears, expires
// the stale, and answers placement questions over the converged view.
// Create with New, run with Start, stop with Close.
type Node struct {
	cfg   Config
	acc   *Accumulator
	conn  *net.UDPConn
	local func(now time.Time) []Fact
	logf  func(format string, args ...any)

	poke chan struct{}
	done chan struct{}
	wg   sync.WaitGroup

	// lastStamp is the last self-fact stamp minted, kept strictly
	// increasing by refreshLocal. Touched only from New and the gossip
	// loop.
	lastStamp int64

	closeOnce sync.Once

	sent       atomic.Int64 // datagrams pushed to peers
	received   atomic.Int64 // datagrams accepted (decoded + merged)
	badPackets atomic.Int64 // datagrams dropped (bad signature, malformed)
}

// New binds the gossip socket and builds a node. local supplies the
// node's own KindExchange facts each round — what this node holds, as
// (fingerprint, registered-at, manifest payload) — with origin fields
// (Node, Addr, Gossip, TTL) filled in by the node; nil means none. The
// node does not gossip until Start.
func New(cfg Config, local func(now time.Time) []Fact) (*Node, error) {
	if cfg.ID == "" {
		return nil, errors.New("fleet: Config.ID is required")
	}
	if cfg.AdvertiseHTTP == "" {
		return nil, errors.New("fleet: Config.AdvertiseHTTP is required")
	}
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultInterval
	}
	if cfg.TTL <= 0 {
		cfg.TTL = DefaultTTLIntervals * cfg.Interval
	}
	if cfg.Fanout <= 0 {
		cfg.Fanout = DefaultFanout
	}
	if cfg.Owners <= 0 {
		cfg.Owners = DefaultOwners
	}
	bind := cfg.BindUDP
	if bind == "" {
		bind = "127.0.0.1:0"
	}
	addr, err := net.ResolveUDPAddr("udp", bind)
	if err != nil {
		return nil, fmt.Errorf("fleet: bind %s: %w", bind, err)
	}
	conn, err := net.ListenUDP("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("fleet: bind %s: %w", bind, err)
	}
	n := &Node{
		cfg:   cfg,
		acc:   NewAccumulator(),
		conn:  conn,
		local: local,
		logf:  cfg.Logf,
		poke:  make(chan struct{}, 1),
		done:  make(chan struct{}),
	}
	if n.logf == nil {
		n.logf = log.Printf
	}
	// Seed the view with ourselves so placement works before the first
	// round (a single-node fleet owns everything immediately).
	n.refreshLocal(time.Now())
	return n, nil
}

// ID returns the node's identity.
func (n *Node) ID() string { return n.cfg.ID }

// GossipAddr returns the bound UDP address — what other nodes put in
// their -peers list.
func (n *Node) GossipAddr() string { return n.conn.LocalAddr().String() }

// Accumulator exposes the fact view (tests, metrics).
func (n *Node) Accumulator() *Accumulator { return n.acc }

// Start launches the receive and gossip loops, pushing a first round
// immediately.
func (n *Node) Start() {
	n.wg.Add(2)
	go n.receiveLoop()
	go n.gossipLoop()
}

// Close stops the loops and the socket. Safe to call more than once.
func (n *Node) Close() error {
	var err error
	n.closeOnce.Do(func() {
		close(n.done)
		err = n.conn.Close()
		n.wg.Wait()
	})
	return err
}

// Poke requests an immediate gossip round (a registration just
// happened; spread it now rather than an interval later).
func (n *Node) Poke() {
	select {
	case n.poke <- struct{}{}:
	default:
	}
}

// GossipSent returns the datagrams pushed to peers.
func (n *Node) GossipSent() int64 { return n.sent.Load() }

// GossipReceived returns the datagrams accepted and merged.
func (n *Node) GossipReceived() int64 { return n.received.Load() }

// BadPackets returns the datagrams dropped before merging.
func (n *Node) BadPackets() int64 { return n.badPackets.Load() }

// FactsExpired returns the facts dropped by TTL expiry.
func (n *Node) FactsExpired() int64 { return n.acc.Expired() }

// refreshLocal re-asserts everything this node originates: its own
// membership fact plus the caller-supplied exchange facts. Every fact
// gets a freshly minted, strictly increasing Stamp — the only thing
// that refreshes a peer's TTL, so fleet-wide liveness of this node's
// knowledge hinges on these rounds happening. Stale self knowledge (an
// exchange the registry evicted) is withdrawn immediately by dropping
// and re-observing; peers forget it one TTL later.
func (n *Node) refreshLocal(now time.Time) {
	var load int64
	if n.cfg.Load != nil {
		load = n.cfg.Load()
	}
	facts := []Fact{{
		Kind:    KindNode,
		Load:    load,
		Payload: nil,
	}}
	if n.local != nil {
		facts = append(facts, n.local(now)...)
	}
	// Monotonic even under a stepped wall clock or sub-nanosecond
	// rounds: a stamp that failed to advance would stop refreshing
	// peers.
	stamp := now.UnixNano()
	if stamp <= n.lastStamp {
		stamp = n.lastStamp + 1
	}
	n.lastStamp = stamp
	n.acc.Drop(n.cfg.ID)
	for _, f := range facts {
		f.Node = n.cfg.ID
		f.Addr = n.cfg.AdvertiseHTTP
		f.Gossip = n.GossipAddr()
		f.Stamp = stamp
		if f.TTL <= 0 {
			f.TTL = n.cfg.TTL
		}
		n.acc.Observe(f, now)
	}
}

// gossipLoop runs one round per interval (or poke): refresh local
// facts, expire the stale, and push the full view to a few peers.
func (n *Node) gossipLoop() {
	defer n.wg.Done()
	ticker := time.NewTicker(n.cfg.Interval)
	defer ticker.Stop()
	n.round(time.Now())
	for {
		select {
		case <-n.done:
			return
		case <-ticker.C:
		case <-n.poke:
		}
		n.round(time.Now())
	}
}

// round performs one gossip round.
func (n *Node) round(now time.Time) {
	n.refreshLocal(now)
	n.acc.Expire(now)
	targets := n.targets(now)
	if len(targets) == 0 {
		return
	}
	packets, skipped := EncodePackets(n.acc.Facts(now), n.cfg.Secret)
	for _, f := range skipped {
		n.logf("fleet: fact %s/%s exceeds the datagram bound; not gossiped", f.Kind, f.Hash)
	}
	for _, t := range targets {
		addr, err := net.ResolveUDPAddr("udp", t)
		if err != nil {
			continue
		}
		for _, p := range packets {
			if _, err := n.conn.WriteToUDP(p, addr); err == nil {
				n.sent.Add(1)
			}
		}
	}
}

// targets picks up to Fanout gossip addresses this round: every known
// live member (excluding self) plus the configured seed peers, shuffled.
// Seeds stay in the candidate set forever, so a node that lost its whole
// view (or a seed that was down at boot) is re-discovered.
func (n *Node) targets(now time.Time) []string {
	seen := map[string]bool{n.GossipAddr(): true}
	var out []string
	add := func(addr string) {
		if addr == "" || seen[addr] {
			return
		}
		seen[addr] = true
		out = append(out, addr)
	}
	for _, f := range n.acc.Nodes(now) {
		if f.Node != n.cfg.ID {
			add(f.Gossip)
		}
	}
	for _, p := range n.cfg.Peers {
		add(p)
	}
	rand.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	if len(out) > n.cfg.Fanout {
		out = out[:n.cfg.Fanout]
	}
	return out
}

// receiveLoop accepts datagrams until Close, merging what verifies and
// decodes.
func (n *Node) receiveLoop() {
	defer n.wg.Done()
	buf := make([]byte, 64<<10)
	for {
		sz, _, err := n.conn.ReadFromUDP(buf)
		if err != nil {
			select {
			case <-n.done:
				return
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				return
			}
			continue
		}
		facts, err := DecodePacket(buf[:sz], n.cfg.Secret)
		if err != nil {
			n.badPackets.Add(1)
			continue
		}
		now := time.Now()
		for _, f := range facts {
			// Never let an echo of our own knowledge override the local
			// truth: we are the sole authority on what we hold.
			if f.Node == n.cfg.ID {
				continue
			}
			n.acc.Observe(f, now)
		}
		n.received.Add(1)
	}
}

// Members returns the live membership view, self included, sorted by ID.
func (n *Node) Members() []Member {
	now := time.Now()
	var out []Member
	for _, f := range n.acc.Nodes(now) {
		out = append(out, Member{ID: f.Node, Addr: f.Addr, Gossip: f.Gossip, Load: f.Load})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Peers returns the live member count excluding self.
func (n *Node) Peers() int {
	c := 0
	for _, m := range n.Members() {
		if m.ID != n.cfg.ID {
			c++
		}
	}
	return c
}

// Ring returns the consistent-hash ring over the current live
// membership.
func (n *Node) Ring() *Ring {
	members := n.Members()
	ids := make([]string, len(members))
	for i, m := range members {
		ids[i] = m.ID
	}
	return NewRing(0, ids...)
}

// IsOwner reports whether this node is among the ring owners of hash.
func (n *Node) IsOwner(hash string) bool {
	for _, id := range n.Ring().Owners(hash, n.cfg.Owners) {
		if id == n.cfg.ID {
			return true
		}
	}
	return false
}

// Route returns the remote candidates for a request addressed to hash,
// most preferred first: ring owners that hold the compiled exchange,
// then ring owners that would fault it in (forwarding there is how an
// exchange migrates onto its owners), then any other live holder (load
// then ID order). Self never appears — the caller serves locally when
// it can.
func (n *Node) Route(hash string) []Member {
	now := time.Now()
	members := n.Members()
	byID := make(map[string]Member, len(members))
	ids := make([]string, 0, len(members))
	for _, m := range members {
		byID[m.ID] = m
		ids = append(ids, m.ID)
	}
	holders := make(map[string]bool)
	for _, f := range n.acc.Holders(hash, now) {
		holders[f.Node] = true
	}
	owners := NewRing(0, ids...).Owners(hash, n.cfg.Owners)
	isOwner := make(map[string]bool, len(owners))
	var out []Member
	picked := make(map[string]bool)
	add := func(id string) {
		if id == n.cfg.ID || picked[id] {
			return
		}
		m, ok := byID[id]
		if !ok {
			return
		}
		picked[id] = true
		out = append(out, m)
	}
	for _, id := range owners {
		isOwner[id] = true
		if holders[id] {
			add(id)
		}
	}
	for _, id := range owners {
		add(id)
	}
	rest := make([]Member, 0, len(holders))
	for id := range holders {
		if id != n.cfg.ID && !picked[id] && !isOwner[id] {
			if m, ok := byID[id]; ok {
				rest = append(rest, m)
			}
		}
	}
	sort.Slice(rest, func(i, j int) bool {
		if rest[i].Load != rest[j].Load {
			return rest[i].Load < rest[j].Load
		}
		return rest[i].ID < rest[j].ID
	})
	for _, m := range rest {
		add(m.ID)
	}
	return out
}

// ManifestPayload returns some live holder's gossiped manifest payload
// for hash — the warm-start manifest row that lets this node compile
// the exchange locally when every remote candidate is unreachable.
// Holders are consulted in Facts order (deterministic); the payloads
// are interchangeable because the manifest row reproduces the canonical
// mapping and its fingerprint.
func (n *Node) ManifestPayload(hash string) ([]byte, bool) {
	for _, f := range n.acc.Holders(hash, time.Now()) {
		if len(f.Payload) > 0 {
			return f.Payload, true
		}
	}
	return nil, false
}
