package fleet

import (
	"testing"
	"time"
)

func TestAccumulatorNewestStampWins(t *testing.T) {
	a := NewAccumulator()
	t0 := time.Unix(0, 0)
	f := Fact{Kind: KindExchange, Node: "n1", Hash: "h1", Stamp: 10, TTL: time.Second, Addr: "a1"}
	if !a.Observe(f, t0) {
		t.Fatal("first observation taught nothing")
	}
	// An older stamp must not regress the view.
	old := f
	old.Stamp, old.Addr = 5, "stale"
	if a.Observe(old, t0) {
		t.Fatal("older stamp reported novel")
	}
	got, ok := a.Lookup(KindExchange, "n1", "h1", t0)
	if !ok || got.Addr != "a1" {
		t.Fatalf("older stamp overwrote: %+v", got)
	}
	// A newer stamp replaces it.
	newer := f
	newer.Stamp, newer.Addr = 20, "a2"
	if !a.Observe(newer, t0) {
		t.Fatal("newer stamp reported stale")
	}
	if got, _ := a.Lookup(KindExchange, "n1", "h1", t0); got.Addr != "a2" {
		t.Fatalf("newer stamp did not replace: %+v", got)
	}
	// Re-observing the same stamp is an echo: not news, and NOT a TTL
	// refresh — otherwise peers relaying a dead node's facts to each
	// other would keep them alive forever.
	later := t0.Add(900 * time.Millisecond)
	if a.Observe(newer, later) {
		t.Fatal("equal stamp reported novel")
	}
	if _, ok := a.Lookup(KindExchange, "n1", "h1", t0.Add(1500*time.Millisecond)); ok {
		t.Fatal("equal-stamp echo extended the TTL")
	}
	// Only a strictly newer stamp — which only the live origin mints —
	// refreshes the expiry.
	fresh := newer
	fresh.Stamp = 30
	if !a.Observe(fresh, later) {
		t.Fatal("newer stamp reported stale")
	}
	if _, ok := a.Lookup(KindExchange, "n1", "h1", t0.Add(1500*time.Millisecond)); !ok {
		t.Fatal("origin refresh did not extend the TTL")
	}
}

func TestAccumulatorExpiry(t *testing.T) {
	a := NewAccumulator()
	t0 := time.Unix(100, 0)
	a.Observe(Fact{Kind: KindNode, Node: "n1", Stamp: 1, TTL: time.Second}, t0)
	a.Observe(Fact{Kind: KindNode, Node: "n2", Stamp: 1, TTL: 10 * time.Second}, t0)
	a.Observe(Fact{Kind: KindExchange, Node: "n1", Hash: "h", Stamp: 1, TTL: time.Second}, t0)
	if n := a.Expire(t0.Add(500 * time.Millisecond)); n != 0 {
		t.Fatalf("early expiry dropped %d", n)
	}
	if n := a.Expire(t0.Add(2 * time.Second)); n != 2 {
		t.Fatalf("expiry dropped %d, want 2 (n1's node and exchange facts)", n)
	}
	if a.Expired() != 2 {
		t.Fatalf("Expired() = %d, want 2", a.Expired())
	}
	if nodes := a.Nodes(t0.Add(2 * time.Second)); len(nodes) != 1 || nodes[0].Node != "n2" {
		t.Fatalf("membership after expiry: %+v", nodes)
	}
	if h := a.Holders("h", t0.Add(2*time.Second)); len(h) != 0 {
		t.Fatalf("expired holder still visible: %+v", h)
	}
}

func TestAccumulatorDrop(t *testing.T) {
	a := NewAccumulator()
	t0 := time.Unix(0, 0)
	a.Observe(Fact{Kind: KindNode, Node: "me", Stamp: 1, TTL: time.Minute}, t0)
	a.Observe(Fact{Kind: KindExchange, Node: "me", Hash: "h1", Stamp: 1, TTL: time.Minute}, t0)
	a.Observe(Fact{Kind: KindExchange, Node: "other", Hash: "h1", Stamp: 1, TTL: time.Minute}, t0)
	a.Drop("me")
	facts := a.Facts(t0)
	if len(facts) != 1 || facts[0].Node != "other" {
		t.Fatalf("Drop left %+v", facts)
	}
}

func TestAccumulatorRejectsJunk(t *testing.T) {
	a := NewAccumulator()
	now := time.Now()
	if a.Observe(Fact{Kind: KindNode, Node: "", TTL: time.Second}, now) {
		t.Fatal("originless fact accepted")
	}
	if a.Observe(Fact{Kind: KindNode, Node: "x", TTL: 0}, now) {
		t.Fatal("ttl-less fact accepted")
	}
	if a.Len() != 0 {
		t.Fatal("junk held")
	}
}
