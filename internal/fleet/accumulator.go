package fleet

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Accumulator is a node's converging view of the fleet: every fact it
// has heard (or asserted itself), keyed by Fact.Key, with a per-fact
// expiry. Two rules make gossip idempotent and self-healing:
//
//   - newest stamp wins: a fact only replaces the held one — and only
//     refreshes the expiry — when its Stamp is strictly newer. Origins
//     re-mint their stamps every gossip round, so only a live origin
//     can keep a fact fresh; peers echoing the held stamp among
//     themselves teach nothing and refresh nothing.
//   - TTL expiry: knowledge that stops being refreshed — its origin
//     died, or dropped the exchange — evaporates TTL after the last
//     refresh, on every node independently.
//
// All methods are safe for concurrent use.
type Accumulator struct {
	mu      sync.Mutex
	held    map[string]*heldFact
	expired atomic.Int64
}

type heldFact struct {
	fact    Fact
	expires time.Time
}

// NewAccumulator returns an empty accumulator.
func NewAccumulator() *Accumulator {
	return &Accumulator{held: make(map[string]*heldFact)}
}

// Observe merges one fact into the view at time now. It reports whether
// the fact taught the accumulator anything new (a new key, or a newer
// stamp for a held one) — the convergence signal tests assert on.
func (a *Accumulator) Observe(f Fact, now time.Time) bool {
	if f.TTL <= 0 || f.Node == "" {
		return false
	}
	expires := now.Add(f.TTL)
	a.mu.Lock()
	defer a.mu.Unlock()
	key := f.Key()
	h, ok := a.held[key]
	if !ok {
		a.held[key] = &heldFact{fact: f, expires: expires}
		return true
	}
	if f.Stamp <= h.fact.Stamp {
		// An echo (or something older). Keeping the held expiry is what
		// lets a dead node's facts die: its stamps stop advancing, so
		// copies relayed between surviving peers cannot refresh each
		// other.
		return false
	}
	h.fact = f
	h.expires = expires
	return true
}

// Expire drops every fact whose TTL lapsed before now, returning how
// many went. The total rides the FactsExpired counter.
func (a *Accumulator) Expire(now time.Time) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	n := 0
	for key, h := range a.held {
		if h.expires.Before(now) {
			delete(a.held, key)
			n++
		}
	}
	if n > 0 {
		a.expired.Add(int64(n))
	}
	return n
}

// Drop removes every fact originated by node, regardless of TTL — the
// local node's own withdrawals (an evicted exchange must stop being
// advertised at once, not a TTL later).
func (a *Accumulator) Drop(node string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for key, h := range a.held {
		if h.fact.Node == node {
			delete(a.held, key)
		}
	}
}

// Facts returns every live fact, sorted by key for determinism.
func (a *Accumulator) Facts(now time.Time) []Fact {
	a.mu.Lock()
	out := make([]Fact, 0, len(a.held))
	for _, h := range a.held {
		if !h.expires.Before(now) {
			out = append(out, h.fact)
		}
	}
	a.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		ki, kj := out[i].Key(), out[j].Key()
		if ki != kj {
			return ki < kj
		}
		return out[i].Stamp < out[j].Stamp
	})
	return out
}

// Nodes returns the live KindNode facts — the membership view.
func (a *Accumulator) Nodes(now time.Time) []Fact {
	var out []Fact
	for _, f := range a.Facts(now) {
		if f.Kind == KindNode {
			out = append(out, f)
		}
	}
	return out
}

// Holders returns the live KindExchange facts asserting possession of
// hash — who in the fleet holds that compiled exchange.
func (a *Accumulator) Holders(hash string, now time.Time) []Fact {
	var out []Fact
	for _, f := range a.Facts(now) {
		if f.Kind == KindExchange && f.Hash == hash {
			out = append(out, f)
		}
	}
	return out
}

// Lookup fetches one live fact by its identity.
func (a *Accumulator) Lookup(kind Kind, node, hash string, now time.Time) (Fact, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	h, ok := a.held[Fact{Kind: kind, Node: node, Hash: hash}.Key()]
	if !ok || h.expires.Before(now) {
		return Fact{}, false
	}
	return h.fact, true
}

// Len reports the number of held (possibly expired-but-unswept) facts.
func (a *Accumulator) Len() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.held)
}

// Expired reports the running count of TTL-expired facts.
func (a *Accumulator) Expired() int64 { return a.expired.Load() }
