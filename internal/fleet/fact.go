// Package fleet scales tdxd out to a cooperating set of nodes. It is
// built in the wirelink shape: each node periodically gossips small,
// optionally signed, TTL'd *facts* over UDP — "node N serves HTTP at A
// and gossips at G under load L", "node N holds the compiled exchange
// with fingerprint H (and here is the manifest row that reproduces
// it)" — and accumulates the facts it hears, expiring what goes stale.
// Every node thereby converges on the fleet's registry contents without
// any coordinator, consensus round, or external dependency.
//
// On top of that shared knowledge sits a consistent-hash ring over the
// live node IDs: the exchange fingerprint (tdx.Exchange.Fingerprint,
// the same content hash tdxd's HTTP API addresses exchanges by) is the
// routing key, so each compiled exchange stays hot on a few owner
// nodes and any client-facing node knows where to send a request for
// it. The serving tier (internal/server) forwards to owners, serves
// locally when it is one, and — because exchange facts carry the
// warm-start manifest row as payload — can fall back to compiling
// locally when every owner is unreachable.
//
// The package is transport-complete but policy-free: it moves and
// expires knowledge and answers placement questions; what to do with a
// route is the server's business.
package fleet

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"time"
)

// Kind discriminates what a fact asserts.
type Kind uint8

const (
	// KindNode asserts liveness: the origin node exists, serves HTTP at
	// Addr, gossips at Gossip, and reports Load in-flight chases.
	KindNode Kind = iota + 1
	// KindExchange asserts possession: the origin node holds the
	// compiled exchange with fingerprint Hash; Payload carries the
	// node's warm-start manifest row for it (canonical mapping text +
	// compile options), so a receiver can reproduce the exchange.
	KindExchange
)

func (k Kind) String() string {
	switch k {
	case KindNode:
		return "node"
	case KindExchange:
		return "exchange"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Fact is one unit of gossiped knowledge. Facts are self-describing and
// idempotent: a receiver keeps, per Key, the fact with the newest Stamp,
// and forgets it when TTL lapses without a refresh — so a dead node's
// knowledge evaporates on its own.
type Fact struct {
	Kind Kind
	// Node is the originating node's ID. Knowledge is per-origin: two
	// nodes holding the same exchange gossip two distinct facts.
	Node string
	// Addr is the origin's advertised HTTP address — where forwarded
	// requests go.
	Addr string
	// Gossip is the origin's UDP gossip address — where packets go.
	Gossip string
	// Hash is the exchange fingerprint (KindExchange only).
	Hash string
	// Load is the origin's in-flight chase count (KindNode only), a
	// routing hint for breaking ties between owners.
	Load int64
	// Stamp is the origin's assertion time, unix nanoseconds, re-minted
	// by the origin every gossip round. Newer stamps win, and only a
	// strictly newer stamp refreshes a receiver's TTL — peers echoing a
	// held stamp back and forth cannot keep a dead origin's facts alive.
	Stamp int64
	// Registered is when the origin first asserted this fact (for
	// KindExchange: the exchange's registration time), unix nanoseconds.
	// Unlike Stamp it is stable across refreshes — the routing tier
	// breaks ties with it.
	Registered int64
	// TTL is how long a receiver may trust this fact without a refresh.
	TTL time.Duration
	// Payload is kind-specific opaque data (KindExchange: the manifest
	// row JSON).
	Payload []byte
}

// Key identifies the knowledge slot a fact occupies: later facts with
// the same key supersede earlier ones.
func (f Fact) Key() string {
	return fmt.Sprintf("%d\x00%s\x00%s", f.Kind, f.Node, f.Hash)
}

// Wire format: one datagram is
//
//	byte    version (wireVersion)
//	uvarint fact count
//	facts   each: kind byte, then node, addr, gossip, hash, payload as
//	        uvarint-length-prefixed bytes, then load (varint), stamp
//	        (varint), registered (varint), ttl nanoseconds (varint)
//	[32]byte HMAC-SHA256 over everything before it (signed packets only)
//
// Signing is symmetric-key: every node of one fleet shares a secret,
// and a packet that fails verification is dropped whole. An empty
// secret means unsigned packets (loopback test fleets); a signing fleet
// rejects unsigned packets and vice versa, so mixed configurations fail
// loudly instead of half-merging.

const wireVersion = 1

// MaxDatagram bounds one gossip packet. 60 KiB stays under the 64 KiB
// UDP payload ceiling with headroom for the signature; EncodePackets
// splits larger fact sets across datagrams.
const MaxDatagram = 60 << 10

const sigLen = sha256.Size

// Codec errors, matched with errors.Is by transport counters and tests.
var (
	ErrBadPacket    = errors.New("fleet: malformed packet")
	ErrBadVersion   = errors.New("fleet: unknown wire version")
	ErrBadSignature = errors.New("fleet: packet signature mismatch")
	ErrFactTooLarge = errors.New("fleet: fact exceeds the datagram bound")
)

// appendString appends one uvarint-length-prefixed byte string.
func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// appendFact appends one fact's wire form.
func appendFact(b []byte, f Fact) []byte {
	b = append(b, byte(f.Kind))
	b = appendString(b, f.Node)
	b = appendString(b, f.Addr)
	b = appendString(b, f.Gossip)
	b = appendString(b, f.Hash)
	b = binary.AppendUvarint(b, uint64(len(f.Payload)))
	b = append(b, f.Payload...)
	b = binary.AppendVarint(b, f.Load)
	b = binary.AppendVarint(b, f.Stamp)
	b = binary.AppendVarint(b, f.Registered)
	b = binary.AppendVarint(b, int64(f.TTL))
	return b
}

// sign appends the packet HMAC when secret is non-empty.
func sign(b []byte, secret string) []byte {
	if secret == "" {
		return b
	}
	mac := hmac.New(sha256.New, []byte(secret))
	mac.Write(b)
	return mac.Sum(b)
}

// EncodePackets renders facts into one or more datagrams, each at most
// MaxDatagram bytes after signing. Facts too large to fit a datagram
// alone are skipped and reported (never silently dropped); everything
// else is packed first-fit in order.
func EncodePackets(facts []Fact, secret string) (packets [][]byte, skipped []Fact) {
	overhead := 0
	if secret != "" {
		overhead = sigLen
	}
	newPacket := func() []byte {
		b := make([]byte, 0, 4<<10)
		b = append(b, wireVersion)
		return b
	}
	var curFacts [][]byte
	flush := func() {
		if len(curFacts) == 0 {
			return
		}
		b := newPacket()
		b = binary.AppendUvarint(b, uint64(len(curFacts)))
		for _, fb := range curFacts {
			b = append(b, fb...)
		}
		packets = append(packets, sign(b, secret))
		curFacts = nil
	}
	size := 1 + binary.MaxVarintLen64 + overhead // version + worst-case count
	for _, f := range facts {
		fb := appendFact(nil, f)
		if 1+binary.MaxVarintLen64+overhead+len(fb) > MaxDatagram {
			skipped = append(skipped, f)
			continue
		}
		if size+len(fb) > MaxDatagram {
			flush()
			size = 1 + binary.MaxVarintLen64 + overhead
		}
		curFacts = append(curFacts, fb)
		size += len(fb)
	}
	flush()
	return packets, skipped
}

// reader walks one packet without copying.
type reader struct {
	b   []byte
	pos int
}

func (r *reader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.b[r.pos:])
	if n <= 0 {
		return 0, ErrBadPacket
	}
	r.pos += n
	return v, nil
}

func (r *reader) varint() (int64, error) {
	v, n := binary.Varint(r.b[r.pos:])
	if n <= 0 {
		return 0, ErrBadPacket
	}
	r.pos += n
	return v, nil
}

func (r *reader) bytes() ([]byte, error) {
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(r.b)-r.pos) {
		return nil, ErrBadPacket
	}
	out := r.b[r.pos : r.pos+int(n)]
	r.pos += int(n)
	return out, nil
}

func (r *reader) string() (string, error) {
	b, err := r.bytes()
	return string(b), err
}

// DecodePacket parses and verifies one datagram. With a non-empty
// secret the trailing HMAC must verify; without one the packet must be
// unsigned-shaped (no requirement — any bytes decode or fail
// structurally). Decoded payloads are copied, so the caller may reuse
// the datagram buffer.
func DecodePacket(b []byte, secret string) ([]Fact, error) {
	if secret != "" {
		if len(b) < sigLen+1 {
			return nil, ErrBadPacket
		}
		body, sig := b[:len(b)-sigLen], b[len(b)-sigLen:]
		mac := hmac.New(sha256.New, []byte(secret))
		mac.Write(body)
		if !hmac.Equal(sig, mac.Sum(nil)) {
			return nil, ErrBadSignature
		}
		b = body
	}
	if len(b) < 1 {
		return nil, ErrBadPacket
	}
	if b[0] != wireVersion {
		return nil, fmt.Errorf("%w: %d", ErrBadVersion, b[0])
	}
	r := &reader{b: b, pos: 1}
	count, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	// A datagram bounds the plausible fact count; reject absurd headers
	// before allocating for them.
	if count > MaxDatagram {
		return nil, ErrBadPacket
	}
	facts := make([]Fact, 0, count)
	for i := uint64(0); i < count; i++ {
		if r.pos >= len(r.b) {
			return nil, ErrBadPacket
		}
		var f Fact
		f.Kind = Kind(r.b[r.pos])
		r.pos++
		if f.Node, err = r.string(); err != nil {
			return nil, err
		}
		if f.Addr, err = r.string(); err != nil {
			return nil, err
		}
		if f.Gossip, err = r.string(); err != nil {
			return nil, err
		}
		if f.Hash, err = r.string(); err != nil {
			return nil, err
		}
		payload, err := r.bytes()
		if err != nil {
			return nil, err
		}
		if len(payload) > 0 {
			f.Payload = append([]byte(nil), payload...)
		}
		if f.Load, err = r.varint(); err != nil {
			return nil, err
		}
		if f.Stamp, err = r.varint(); err != nil {
			return nil, err
		}
		if f.Registered, err = r.varint(); err != nil {
			return nil, err
		}
		ttl, err := r.varint()
		if err != nil {
			return nil, err
		}
		f.TTL = time.Duration(ttl)
		if f.Kind != KindNode && f.Kind != KindExchange {
			return nil, fmt.Errorf("%w: kind %d", ErrBadPacket, f.Kind)
		}
		if f.Node == "" || f.TTL <= 0 {
			return nil, fmt.Errorf("%w: fact without origin or ttl", ErrBadPacket)
		}
		facts = append(facts, f)
	}
	if r.pos != len(r.b) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadPacket, len(r.b)-r.pos)
	}
	return facts, nil
}
