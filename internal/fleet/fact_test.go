package fleet

import (
	"bytes"
	"errors"
	"testing"
	"time"
)

func sampleFacts() []Fact {
	return []Fact{
		{
			Kind:   KindNode,
			Node:   "alpha",
			Addr:   "127.0.0.1:8080",
			Gossip: "127.0.0.1:9999",
			Load:   3,
			Stamp:  42,
			TTL:    5 * time.Second,
		},
		{
			Kind:       KindExchange,
			Node:       "alpha",
			Addr:       "127.0.0.1:8080",
			Gossip:     "127.0.0.1:9999",
			Hash:       "deadbeef",
			Stamp:      41,
			Registered: 40,
			TTL:        10 * time.Second,
			Payload:    []byte(`{"mapping":"tgd sigma: ..."}`),
		},
	}
}

func TestCodecRoundTrip(t *testing.T) {
	for _, secret := range []string{"", "cluster-secret"} {
		facts := sampleFacts()
		packets, skipped := EncodePackets(facts, secret)
		if len(skipped) != 0 {
			t.Fatalf("secret=%q: skipped %d facts", secret, len(skipped))
		}
		if len(packets) != 1 {
			t.Fatalf("secret=%q: %d packets, want 1", secret, len(packets))
		}
		got, err := DecodePacket(packets[0], secret)
		if err != nil {
			t.Fatalf("secret=%q: decode: %v", secret, err)
		}
		if len(got) != len(facts) {
			t.Fatalf("secret=%q: %d facts, want %d", secret, len(got), len(facts))
		}
		for i := range facts {
			w, g := facts[i], got[i]
			if w.Kind != g.Kind || w.Node != g.Node || w.Addr != g.Addr || w.Gossip != g.Gossip ||
				w.Hash != g.Hash || w.Load != g.Load || w.Stamp != g.Stamp ||
				w.Registered != g.Registered || w.TTL != g.TTL ||
				!bytes.Equal(w.Payload, g.Payload) {
				t.Fatalf("secret=%q: fact %d: got %+v want %+v", secret, i, g, w)
			}
		}
	}
}

func TestCodecSignature(t *testing.T) {
	packets, _ := EncodePackets(sampleFacts(), "right")
	if _, err := DecodePacket(packets[0], "wrong"); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("wrong secret: err %v, want ErrBadSignature", err)
	}
	// Flipping any byte must invalidate the packet.
	mangled := append([]byte(nil), packets[0]...)
	mangled[len(mangled)/2] ^= 0x40
	if _, err := DecodePacket(mangled, "right"); err == nil {
		t.Fatal("mangled signed packet decoded")
	}
	// A signing fleet must reject unsigned packets.
	unsigned, _ := EncodePackets(sampleFacts(), "")
	if _, err := DecodePacket(unsigned[0], "right"); err == nil {
		t.Fatal("unsigned packet accepted by a signing decoder")
	}
}

func TestCodecMalformed(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		{99}, // unknown version
		{wireVersion, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01}, // absurd count
		{wireVersion, 1},    // truncated fact
		{wireVersion, 1, 7}, // unknown kind, no body
	}
	packets, _ := EncodePackets(sampleFacts(), "")
	cases = append(cases, packets[0][:len(packets[0])-1])                // truncated tail
	cases = append(cases, append(append([]byte(nil), packets[0]...), 0)) // trailing byte
	for i, c := range cases {
		if _, err := DecodePacket(c, ""); err == nil {
			t.Errorf("case %d: malformed packet decoded", i)
		}
	}
}

func TestCodecSplitsLargeSets(t *testing.T) {
	var facts []Fact
	payload := bytes.Repeat([]byte{'x'}, 8<<10)
	for i := 0; i < 32; i++ {
		f := sampleFacts()[1]
		f.Hash = string(rune('a' + i))
		f.Payload = payload
		facts = append(facts, f)
	}
	packets, skipped := EncodePackets(facts, "s")
	if len(skipped) != 0 {
		t.Fatalf("skipped %d", len(skipped))
	}
	if len(packets) < 2 {
		t.Fatalf("32 8KiB facts fit one datagram (%d packets)", len(packets))
	}
	total := 0
	for _, p := range packets {
		if len(p) > MaxDatagram {
			t.Fatalf("packet of %d bytes exceeds MaxDatagram", len(p))
		}
		got, err := DecodePacket(p, "s")
		if err != nil {
			t.Fatal(err)
		}
		total += len(got)
	}
	if total != len(facts) {
		t.Fatalf("round-tripped %d facts, want %d", total, len(facts))
	}
	// One fact beyond the datagram bound is skipped, not dropped quietly.
	huge := sampleFacts()[1]
	huge.Payload = bytes.Repeat([]byte{'y'}, MaxDatagram)
	packets, skipped = EncodePackets([]Fact{huge, sampleFacts()[0]}, "")
	if len(skipped) != 1 || skipped[0].Hash != huge.Hash {
		t.Fatalf("oversized fact not reported skipped: %d", len(skipped))
	}
	if len(packets) != 1 {
		t.Fatalf("remaining fact not packed: %d packets", len(packets))
	}
}
