package fact

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/interval"
	"repro/internal/value"
)

func iv(s, e interval.Time) interval.Interval { return interval.MustNew(s, e) }

func c(s string) value.Value { return value.NewConst(s) }

func TestAbstractFactBasics(t *testing.T) {
	f := New("E", c("Ada"), c("IBM"))
	if got := f.String(); got != "E(Ada, IBM)" {
		t.Fatalf("String = %q", got)
	}
	if got := f.Key(); got != "E(Ada,IBM)" {
		t.Fatalf("Key = %q", got)
	}
	if f.HasNulls() {
		t.Fatal("no nulls expected")
	}
	g := New("E", c("Ada"), value.NewProjectedNull(1, 2013))
	if !g.HasNulls() {
		t.Fatal("nulls expected")
	}
	if f.Equal(g) || !f.Equal(f.Clone()) {
		t.Fatal("Equal broken")
	}
	cl := f.Clone()
	cl.Args[0] = c("Bob")
	if f.Args[0] != c("Ada") {
		t.Fatal("Clone shares Args")
	}
}

func TestNewCReannotates(t *testing.T) {
	// NewC must rewrite annotated nulls to the fact's own interval,
	// establishing the paper's invariant by construction.
	n := value.NewAnnNull(7, iv(0, 100))
	f := NewC("Emp", iv(2012, 2013), c("Ada"), c("IBM"), n)
	if ann, _ := f.Args[2].Interval(); ann != iv(2012, 2013) {
		t.Fatalf("annotation not rewritten: %v", f.Args[2])
	}
	if err := f.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestValidate(t *testing.T) {
	good := NewC("E", iv(1, 5), c("a"))
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad1 := CFact{Rel: "E", Args: []value.Value{c("a")}, T: interval.Interval{}}
	if bad1.Validate() == nil {
		t.Fatal("invalid interval accepted")
	}
	bad2 := CFact{Rel: "E", Args: []value.Value{value.NewInterval(iv(1, 2))}, T: iv(1, 5)}
	if bad2.Validate() == nil {
		t.Fatal("interval data argument accepted")
	}
	bad3 := CFact{Rel: "E", Args: []value.Value{value.NewAnnNull(1, iv(1, 2))}, T: iv(1, 5)}
	if bad3.Validate() == nil {
		t.Fatal("mis-annotated null accepted")
	}
	bad4 := CFact{Rel: "E", Args: []value.Value{{}}, T: iv(1, 5)}
	if bad4.Validate() == nil {
		t.Fatal("invalid value accepted")
	}
}

func TestProject(t *testing.T) {
	// The paper's example: Emp(Ada, IBM, N^[8,inf), [8,inf)) projects at 8
	// and 9 to facts with the distinct nulls N_8 and N_9.
	n := value.NewAnnNull(1, iv(8, interval.Infinity))
	f := NewC("Emp", iv(8, interval.Infinity), c("Ada"), c("IBM"), n)
	f8, ok8 := f.Project(8)
	f9, ok9 := f.Project(9)
	if !ok8 || !ok9 {
		t.Fatal("projection inside the interval failed")
	}
	if f8.Args[2] == f9.Args[2] {
		t.Fatal("projected nulls at distinct snapshots must differ")
	}
	if f8.Args[2] != value.NewProjectedNull(1, 8) {
		t.Fatalf("Π_8 = %v", f8.Args[2])
	}
	if _, ok := f.Project(7); ok {
		t.Fatal("projection outside the interval must fail")
	}
	if f8.Rel != "Emp" || f8.Args[0] != c("Ada") {
		t.Fatal("constants must project to themselves")
	}
}

func TestFragment(t *testing.T) {
	// Fragmenting a fact with an annotated null renames the annotation per
	// fragment but keeps the family (paper §4.2 after Example 12).
	n := value.NewAnnNull(4, iv(5, 11))
	f := NewC("R", iv(5, 11), c("a"), n)
	frags := f.Fragment([]interval.Time{7, 8, 10, 15})
	if len(frags) != 4 {
		t.Fatalf("got %d fragments: %v", len(frags), frags)
	}
	wantIvs := []interval.Interval{iv(5, 7), iv(7, 8), iv(8, 10), iv(10, 11)}
	for i, fr := range frags {
		if fr.T != wantIvs[i] {
			t.Fatalf("fragment %d interval %v want %v", i, fr.T, wantIvs[i])
		}
		if err := fr.Validate(); err != nil {
			t.Fatalf("fragment %d: %v", i, err)
		}
		if fr.Args[1].ID != 4 {
			t.Fatal("null family must be preserved across fragments")
		}
		if !fr.SameData(f) {
			t.Fatal("fragments must share data with the original")
		}
	}
	// No interior cuts: identity.
	same := f.Fragment([]interval.Time{5, 11, 100})
	if len(same) != 1 || !same[0].Equal(f) {
		t.Fatalf("identity fragmentation broken: %v", same)
	}
}

func TestKeysAndSameData(t *testing.T) {
	n1 := value.NewAnnNull(9, iv(1, 3))
	f1 := NewC("Emp", iv(1, 3), c("Bob"), n1)
	f2 := f1.WithInterval(iv(3, 7))
	if f1.Key() == f2.Key() {
		t.Fatal("different intervals must give different keys")
	}
	if f1.DataKey() != f2.DataKey() {
		t.Fatalf("DataKey must ignore interval and annotation: %q vs %q", f1.DataKey(), f2.DataKey())
	}
	if !f1.SameData(f2) {
		t.Fatal("SameData must ignore intervals")
	}
	f3 := NewC("Emp", iv(1, 3), c("Bob"), value.NewAnnNull(8, iv(1, 3)))
	if f1.SameData(f3) {
		t.Fatal("different null families are different data")
	}
	if !strings.Contains(f1.String(), "[1,3)") {
		t.Fatalf("String misses interval: %q", f1.String())
	}
}

func TestCompareDeterminism(t *testing.T) {
	a := NewC("A", iv(1, 2), c("x"))
	b := NewC("B", iv(1, 2), c("x"))
	if CompareC(a, b) >= 0 || CompareC(b, a) <= 0 || CompareC(a, a) != 0 {
		t.Fatal("CompareC relation ordering broken")
	}
	c1 := NewC("A", iv(1, 2), c("x"))
	c2 := NewC("A", iv(1, 3), c("x"))
	if CompareC(c1, c2) >= 0 {
		t.Fatal("CompareC interval ordering broken")
	}
	fa := New("A", c("x"))
	fb := New("A", c("x"), c("y"))
	if Compare(fa, fb) >= 0 || Compare(fb, fa) <= 0 {
		t.Fatal("Compare arity ordering broken")
	}
}

func TestQuickProjectFragmentAgreement(t *testing.T) {
	// For every fragmentation and every time point, projecting a fragment
	// equals projecting the original fact: fragmentation is invisible in
	// the abstract view.
	r := rand.New(rand.NewSource(11))
	var g value.NullGen
	for i := 0; i < 1000; i++ {
		s := interval.Time(r.Intn(20))
		e := s + 1 + interval.Time(r.Intn(20))
		fiv := iv(s, e)
		args := []value.Value{c("k"), g.FreshAnn(fiv)}
		f := NewC("R", fiv, args...)
		cuts := make([]interval.Time, r.Intn(5))
		for j := range cuts {
			cuts[j] = interval.Time(r.Intn(45))
		}
		frags := f.Fragment(cuts)
		for tp := s; tp < e; tp++ {
			orig, ok := f.Project(tp)
			if !ok {
				t.Fatalf("projection inside own interval failed at %v", tp)
			}
			var hit int
			for _, fr := range frags {
				if got, ok := fr.Project(tp); ok {
					hit++
					if !got.Equal(orig) {
						t.Fatalf("fragment projection %v != original %v at %v", got, orig, tp)
					}
				}
			}
			if hit != 1 {
				t.Fatalf("time point %v covered by %d fragments", tp, hit)
			}
		}
	}
}
