// Package fact defines the two fact shapes of temporal data exchange:
// abstract facts R(a1, ..., an) living in individual snapshots, and
// concrete facts R+(a1, ..., an, [s,e)) timestamped with a validity
// interval (paper §2). Concrete facts support the fragmentation operation
// at the heart of normalization (§4.2), which re-annotates any
// interval-annotated nulls so that a null's annotation always equals the
// time interval of the fact it occurs in.
package fact

import (
	"fmt"
	"strings"

	"repro/internal/interval"
	"repro/internal/value"
)

// Fact is an abstract (snapshot-level) fact: a relation name applied to
// constants and labeled nulls.
type Fact struct {
	Rel  string
	Args []value.Value
}

// New builds an abstract fact.
func New(rel string, args ...value.Value) Fact {
	return Fact{Rel: rel, Args: args}
}

// Key returns a canonical string identifying the fact, usable for
// set-membership and deduplication.
func (f Fact) Key() string {
	var b strings.Builder
	b.WriteString(f.Rel)
	b.WriteByte('(')
	for i, a := range f.Args {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(a.String())
	}
	b.WriteByte(')')
	return b.String()
}

// String renders the fact in the paper's notation, e.g. "E(Ada, IBM)".
func (f Fact) String() string {
	parts := make([]string, len(f.Args))
	for i, a := range f.Args {
		parts[i] = a.String()
	}
	return f.Rel + "(" + strings.Join(parts, ", ") + ")"
}

// Equal reports deep equality.
func (f Fact) Equal(other Fact) bool {
	if f.Rel != other.Rel || len(f.Args) != len(other.Args) {
		return false
	}
	for i := range f.Args {
		if f.Args[i] != other.Args[i] {
			return false
		}
	}
	return true
}

// HasNulls reports whether any argument is a (labeled) null.
func (f Fact) HasNulls() bool {
	for _, a := range f.Args {
		if a.IsNullLike() {
			return true
		}
	}
	return false
}

// Clone returns a deep copy (fresh Args slice).
func (f Fact) Clone() Fact {
	return Fact{Rel: f.Rel, Args: append([]value.Value(nil), f.Args...)}
}

// CFact is a concrete fact: data arguments plus the validity interval T.
// Invariant: every interval-annotated null among Args is annotated with
// exactly T (the paper's assumption after Example 12; Validate checks it).
type CFact struct {
	Rel  string
	Args []value.Value
	T    interval.Interval
}

// NewC builds a concrete fact, re-annotating any annotated nulls in args
// to the fact's interval so the invariant holds by construction.
func NewC(rel string, t interval.Interval, args ...value.Value) CFact {
	out := CFact{Rel: rel, Args: make([]value.Value, len(args)), T: t}
	for i, a := range args {
		out.Args[i] = a.WithAnnotation(t)
	}
	return out
}

// Validate checks the fact's structural invariants: a valid interval, no
// interval values among the data arguments, and annotated nulls carrying
// the fact's own interval.
func (f CFact) Validate() error {
	if !f.T.Valid() {
		return fmt.Errorf("fact %s: invalid interval %v", f.Rel, f.T)
	}
	for i, a := range f.Args {
		switch a.Kind() {
		case value.Invalid:
			return fmt.Errorf("fact %s: argument %d is invalid", f.Rel, i)
		case value.IntervalVal:
			return fmt.Errorf("fact %s: argument %d is an interval; intervals may only appear as the temporal attribute", f.Rel, i)
		case value.AnnNull:
			if ann, _ := a.Interval(); ann != f.T {
				return fmt.Errorf("fact %s: annotated null %v disagrees with fact interval %v", f.Rel, a, f.T)
			}
		}
	}
	return nil
}

// Key returns a canonical string identifying the fact, including the
// interval. It renders every value and is kept for display, debugging,
// and cold-path set membership; hot-path identity is ID-based (the
// storage layer's interned rows, DataHash for data-identity grouping).
func (f CFact) Key() string {
	return f.DataKey() + "@" + f.T.String()
}

// DataHash returns a hash of the fact's data identity — relation and data
// arguments, with annotated nulls hashed by family so the annotation is
// ignored — consistent with SameData: SameData facts hash equal. Callers
// group by DataHash buckets and confirm with SameData, so no canonical
// string is ever built.
func (f CFact) DataHash() uint64 {
	h := value.NewHash64().String(f.Rel)
	for _, a := range f.Args {
		h = h.Word(uint64(a.K))
		switch a.K {
		case value.Const:
			h = h.String(a.Str)
		case value.AnnNull:
			// Identity is the family; the annotation follows the fact
			// interval and is deliberately not hashed.
			h = h.Word(a.ID)
		case value.Null:
			h = h.Word(a.ID).Word(uint64(a.TP))
		case value.IntervalVal:
			h = h.Word(uint64(a.Iv.Start)).Word(uint64(a.Iv.End))
		}
	}
	return h.Sum()
}

// DataKey returns the canonical string of the relation and data
// arguments only, ignoring both the interval and null annotations. Facts
// sharing a DataKey are "facts with identical data attribute values" in
// the paper's coalescing definition — for nulls, identical means the same
// null family. Like Key, it is a display/cold-path rendering; use
// DataHash + SameData for grouping.
func (f CFact) DataKey() string {
	var b strings.Builder
	b.WriteString(f.Rel)
	b.WriteByte('(')
	for i, a := range f.Args {
		if i > 0 {
			b.WriteByte(',')
		}
		if a.Kind() == value.AnnNull {
			// Annotation follows the fact interval; identity is the family.
			fmt.Fprintf(&b, "N%d^", a.ID)
		} else {
			b.WriteString(a.String())
		}
	}
	b.WriteByte(')')
	return b.String()
}

// String renders the fact as R(args, [s,e)).
func (f CFact) String() string {
	parts := make([]string, len(f.Args)+1)
	for i, a := range f.Args {
		parts[i] = a.String()
	}
	parts[len(f.Args)] = f.T.String()
	return f.Rel + "(" + strings.Join(parts, ", ") + ")"
}

// Equal reports deep equality including the interval.
func (f CFact) Equal(other CFact) bool {
	if f.Rel != other.Rel || f.T != other.T || len(f.Args) != len(other.Args) {
		return false
	}
	for i := range f.Args {
		if f.Args[i] != other.Args[i] {
			return false
		}
	}
	return true
}

// SameData reports whether two facts agree on relation and data values
// (null families compared by id), regardless of their intervals.
func (f CFact) SameData(other CFact) bool {
	if f.Rel != other.Rel || len(f.Args) != len(other.Args) {
		return false
	}
	for i := range f.Args {
		a, b := f.Args[i], other.Args[i]
		if a.Kind() == value.AnnNull && b.Kind() == value.AnnNull {
			if a.ID != b.ID {
				return false
			}
			continue
		}
		if a != b {
			return false
		}
	}
	return true
}

// HasNulls reports whether any data argument is an annotated null.
func (f CFact) HasNulls() bool {
	for _, a := range f.Args {
		if a.IsNullLike() {
			return true
		}
	}
	return false
}

// Clone returns a deep copy.
func (f CFact) Clone() CFact {
	return CFact{Rel: f.Rel, Args: append([]value.Value(nil), f.Args...), T: f.T}
}

// Project materializes the snapshot-level fact at time point tp: every
// interval-annotated null N^[s,e) becomes the labeled null Π_tp(N^[s,e))
// (paper §4.1). ok is false when tp lies outside the fact's interval.
func (f CFact) Project(tp interval.Time) (Fact, bool) {
	if !f.T.Contains(tp) {
		return Fact{}, false
	}
	args := make([]value.Value, len(f.Args))
	for i, a := range f.Args {
		args[i] = a.Project(tp)
	}
	return Fact{Rel: f.Rel, Args: args}, true
}

// WithInterval returns the fact restricted to interval t, re-annotating
// any annotated nulls to t. t should be a sub-interval of f.T (the
// fragmentation use case); this is not checked here so that callers such
// as coalescing can also extend intervals.
func (f CFact) WithInterval(t interval.Interval) CFact {
	args := make([]value.Value, len(f.Args))
	for i, a := range f.Args {
		args[i] = a.WithAnnotation(t)
	}
	return CFact{Rel: f.Rel, Args: args, T: t}
}

// Fragment splits the fact along the given cut points (only cuts strictly
// inside f.T apply), producing consecutive facts with the same data whose
// annotated nulls are re-annotated per fragment — e.g. fragmenting
// Emp(Ada, IBM, N^[5,11), [5,11)) at 8 yields facts carrying N^[5,8) and
// N^[8,11) for the same null family (paper §4.2).
func (f CFact) Fragment(cuts []interval.Time) []CFact {
	pieces := f.T.Fragment(cuts)
	if len(pieces) == 1 {
		return []CFact{f}
	}
	out := make([]CFact, len(pieces))
	for i, p := range pieces {
		out[i] = f.WithInterval(p)
	}
	return out
}

// CompareC orders concrete facts deterministically: by relation, then
// data arguments, then interval.
func CompareC(a, b CFact) int {
	if c := strings.Compare(a.Rel, b.Rel); c != 0 {
		return c
	}
	n := len(a.Args)
	if len(b.Args) < n {
		n = len(b.Args)
	}
	for i := 0; i < n; i++ {
		if c := value.Compare(a.Args[i], b.Args[i]); c != 0 {
			return c
		}
	}
	if len(a.Args) != len(b.Args) {
		if len(a.Args) < len(b.Args) {
			return -1
		}
		return 1
	}
	return a.T.Compare(b.T)
}

// Compare orders abstract facts deterministically.
func Compare(a, b Fact) int {
	if c := strings.Compare(a.Rel, b.Rel); c != 0 {
		return c
	}
	n := len(a.Args)
	if len(b.Args) < n {
		n = len(b.Args)
	}
	for i := 0; i < n; i++ {
		if c := value.Compare(a.Args[i], b.Args[i]); c != 0 {
			return c
		}
	}
	switch {
	case len(a.Args) < len(b.Args):
		return -1
	case len(a.Args) > len(b.Args):
		return 1
	}
	return 0
}
