package jsonio

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"testing"

	"repro/internal/fact"
	"repro/internal/instance"
	"repro/internal/interval"
	"repro/internal/schema"
	"repro/internal/value"
)

// legacyEncode is the pre-streaming implementation of Encode, kept here
// as the byte-identity reference: materialize the sorted fact set, build
// the []factJSON mirror with rendered strings, and MarshalIndent the
// whole document. The streaming encoder must reproduce its output
// byte-for-byte on every instance.
func legacyEncode(c *instance.Concrete) ([]byte, error) {
	var out instanceJSON
	if sch := c.Schema(); sch != nil {
		for _, name := range sch.Names() {
			r, _ := sch.Relation(name)
			out.Schema = append(out.Schema, relJSON{Name: r.Name, Attrs: r.Attrs})
		}
	}
	for _, f := range c.Facts() {
		fj := factJSON{Rel: f.Rel, Interval: f.T.String(), Args: make([]string, len(f.Args))}
		for i, a := range f.Args {
			fj.Args[i] = a.String()
		}
		out.Facts = append(out.Facts, fj)
	}
	return json.MarshalIndent(out, "", "  ")
}

// trickyStrings are constants that exercise every escaping branch of the
// stdlib encoder: quotes, backslashes, control shorthands, other control
// bytes, the HTML-escaped trio, invalid UTF-8, the JavaScript line
// separators, and multi-byte runes.
var trickyStrings = []string{
	"plain", "IBM", "18k", "with space", "q\"uote", `back\slash`,
	"tab\there", "nl\nhere", "cr\rhere", "bell\bback\ffeed",
	"ctl\x01\x1f", "del\x7f", "<script>&amp;</script>", "a<b>c&d",
	"\xff\xfe invalid", "line\u2028sep\u2029arator", "Ωmega-ключ-鍵",
	"", " ", "N7", "[2013,2014)",
}

func randomInterval(r *rand.Rand) interval.Interval {
	start := interval.Time(r.Intn(50))
	if r.Intn(4) == 0 {
		return interval.Interval{Start: start, End: interval.Infinity}
	}
	return interval.Interval{Start: start, End: start + 1 + interval.Time(r.Intn(40))}
}

// randomInstance builds an instance mixing constants, plain/projected
// nulls, and annotated nulls, optionally schemaless with mixed arities
// per relation (which exercises the encoder's CompareC arity tie-break).
func randomInstance(r *rand.Rand, withSchema bool) *instance.Concrete {
	var sch *schema.Schema
	rels := []string{"B", "Emp", "R<&>", "a relation", "Ωrel"}
	if withSchema {
		sch, _ = schema.New()
		for i, name := range rels {
			attrs := make([]string, 1+i%3)
			for j := range attrs {
				attrs[j] = fmt.Sprintf("a%d", j)
			}
			rel, err := schema.NewRelation(name, attrs...)
			if err != nil {
				panic(err)
			}
			if err := sch.Add(rel); err != nil {
				panic(err)
			}
		}
	}
	c := instance.NewConcrete(sch)
	n := 20 + r.Intn(120)
	for i := 0; i < n; i++ {
		ri := r.Intn(len(rels))
		name := rels[ri]
		arity := 1 + ri%3
		if !withSchema {
			arity = 1 + r.Intn(4) // mixed arities within one relation
		}
		iv := randomInterval(r)
		args := make([]value.Value, arity)
		for j := range args {
			switch r.Intn(5) {
			case 0:
				args[j] = value.NewNull(uint64(r.Intn(9)))
			case 1:
				args[j] = value.NewProjectedNull(uint64(r.Intn(9)), interval.Time(r.Intn(40)))
			case 2:
				args[j] = value.NewAnnNull(uint64(r.Intn(9)), iv)
			default:
				args[j] = value.NewConst(trickyStrings[r.Intn(len(trickyStrings))])
			}
		}
		if _, err := c.Insert(fact.NewC(name, iv, args...)); err != nil {
			panic(err)
		}
	}
	return c
}

// killSomeRows substitutes one interned constant into another, collapsing
// duplicate rows into dead ones, so the encoder's validity-bitmap walk is
// exercised against a store whose row space is larger than its fact set.
func killSomeRows(c *instance.Concrete) {
	in := c.Interner()
	a := in.Intern(value.NewConst("IBM"))
	b := in.Intern(value.NewConst("18k"))
	c.Store().SubstituteIDs([]value.ID{a}, func(id value.ID) value.ID {
		if id == a {
			return b
		}
		return id
	})
}

func checkIdentity(t *testing.T, c *instance.Concrete) {
	t.Helper()
	want, err := legacyEncode(c)
	if err != nil {
		t.Fatalf("legacyEncode: %v", err)
	}
	var got bytes.Buffer
	if err := EncodeTo(&got, c); err != nil {
		t.Fatalf("EncodeTo: %v", err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Fatalf("EncodeTo differs from legacy encoder:\n got: %s\nwant: %s", got.Bytes(), want)
	}
	var wantCompact bytes.Buffer
	if err := json.Compact(&wantCompact, want); err != nil {
		t.Fatalf("json.Compact: %v", err)
	}
	var gotCompact bytes.Buffer
	if err := EncodeCompactTo(&gotCompact, c); err != nil {
		t.Fatalf("EncodeCompactTo: %v", err)
	}
	if !bytes.Equal(gotCompact.Bytes(), wantCompact.Bytes()) {
		t.Fatalf("EncodeCompactTo differs from json.Compact of legacy:\n got: %s\nwant: %s", gotCompact.Bytes(), wantCompact.Bytes())
	}
	// Encode is a wrapper over EncodeTo; it must agree with itself too.
	viaEncode, err := Encode(c)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if !bytes.Equal(viaEncode, want) {
		t.Fatal("Encode (buffered wrapper) differs from legacy encoder")
	}
}

func TestEncodeToByteIdentityRandomized(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		for _, withSchema := range []bool{false, true} {
			r := rand.New(rand.NewSource(seed))
			c := randomInstance(r, withSchema)
			checkIdentity(t, c)
			// Dead rows via egd-style substitution, then again frozen: the
			// frozen path is the one tdxd serves from.
			killSomeRows(c)
			checkIdentity(t, c)
			c.Freeze()
			checkIdentity(t, c)
		}
	}
}

func TestEncodeToEmptyAndSchemaOnly(t *testing.T) {
	// Schemaless empty: {"facts": null} exactly as the legacy encoder.
	checkIdentity(t, instance.NewConcrete(nil))
	sch := schema.MustNew(schema.MustRelation("Emp", "name", "co"))
	checkIdentity(t, instance.NewConcrete(sch))
}

func TestEncodeToRoundTrips(t *testing.T) {
	// Parse-safe values only: the value syntax is injective for strings
	// produced by parsing, not for arbitrary constants (a constant
	// literally named "N7" decodes as a null — a pre-existing property of
	// the wire format, not of the streaming encoder).
	c := benchInstance(500)
	data, err := Encode(c)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(data)
	if err != nil {
		t.Fatalf("Decode of streamed document: %v", err)
	}
	if !back.Equal(c) {
		t.Fatal("streamed document does not round-trip through Decode")
	}
}

// TestEscaperMatchesStdlib drives the string escaper alone over random
// byte soup (valid and invalid UTF-8 alike) and every tricky string,
// comparing against json.Marshal of the same string.
func TestEscaperMatchesStdlib(t *testing.T) {
	check := func(s string) {
		t.Helper()
		want, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		e := &streamEncoder{}
		e.str(s)
		if !bytes.Equal(e.buf, want) {
			t.Fatalf("escaper differs for %q:\n got %s\nwant %s", s, e.buf, want)
		}
	}
	for _, s := range trickyStrings {
		check(s)
	}
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 500; i++ {
		b := make([]byte, r.Intn(40))
		for j := range b {
			b[j] = byte(r.Intn(256))
		}
		check(string(b))
	}
	for i := 0; i < 200; i++ {
		rs := make([]rune, r.Intn(20))
		for j := range rs {
			rs[j] = rune(r.Intn(0x3000))
		}
		check(string(rs))
	}
}

// TestEncodeToWriteError confirms the sticky-error contract: a failing
// writer aborts the encode with its error instead of panicking or
// writing further.
func TestEncodeToWriteError(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	c := randomInstance(r, true)
	wantErr := fmt.Errorf("sink closed")
	if err := EncodeTo(failWriter{wantErr}, c); err != wantErr {
		t.Fatalf("EncodeTo on failing writer: got %v, want %v", err, wantErr)
	}
}

type failWriter struct{ err error }

func (f failWriter) Write(p []byte) (int, error) { return 0, f.err }

// TestEncodeToAllocsBounded is the O(1)-allocations-per-fact claim: the
// total allocation count of a streamed encode over a frozen 10k-fact
// instance must stay a small constant (buffers, sort scaffolding — not
// per-fact strings or slices), which also proves no solution-sized
// staging buffer is built. Skipped under the race detector, whose
// instrumentation inflates allocation counts.
func TestEncodeToAllocsBounded(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not stable under the race detector")
	}
	c := benchInstance(10_000)
	c.Freeze()
	allocs := testing.AllocsPerRun(5, func() {
		if err := EncodeTo(io.Discard, c); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 64 {
		t.Fatalf("EncodeTo of 10k facts allocated %v times; want a small constant (O(1) per fact means not O(n) total)", allocs)
	}
}

// benchInstance builds a frozen-ready employment-shaped instance with
// roughly n facts across a handful of relations.
func benchInstance(n int) *instance.Concrete {
	sch := schema.MustNew(
		schema.MustRelation("Emp", "name", "company", "salary"),
		schema.MustRelation("Proj", "name", "project"),
	)
	c := instance.NewConcrete(sch)
	r := rand.New(rand.NewSource(1))
	for i := 0; c.Len() < n; i++ {
		iv := interval.Interval{Start: interval.Time(i % 100), End: interval.Time(i%100 + 1 + r.Intn(10))}
		name := value.NewConst(fmt.Sprintf("person-%d", i))
		if i%3 == 0 {
			c.MustInsert(fact.NewC("Proj", iv, name, value.NewAnnNull(uint64(i%50), iv)))
		} else {
			c.MustInsert(fact.NewC("Emp", iv, name,
				value.NewConst(fmt.Sprintf("company-%d", i%37)),
				value.NewConst(fmt.Sprintf("%dk", 10+i%90))))
		}
	}
	return c
}

// BenchmarkEncode compares the streamed encoder against the legacy
// materialize-then-marshal path at 1k/10k/100k facts. The interesting
// columns are allocs/op and B/op: the streamed path's are O(1) in the
// fact count, the legacy path's are O(n).
func BenchmarkEncode(b *testing.B) {
	for _, n := range []int{1_000, 10_000, 100_000} {
		c := benchInstance(n)
		c.Freeze()
		b.Run(fmt.Sprintf("streamed/%dk", n/1000), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := EncodeTo(io.Discard, c); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("legacy/%dk", n/1000), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := legacyEncode(c); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
