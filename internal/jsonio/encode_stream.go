package jsonio

import (
	"io"
	"sort"
	"strconv"
	"unicode/utf8"

	"repro/internal/instance"
	"repro/internal/interval"
	"repro/internal/storage"
	"repro/internal/value"
)

// The streaming encoder walks the columnar store directly — per-relation
// live-row collection off the validity bitmap (storage.Rel.AppendLive),
// cached tuple decode (alloc-free on frozen stores), a reused scratch
// buffer for value rendering — and writes the document in bounded chunks.
// It materializes neither the []fact.CFact of Facts() nor a []factJSON
// mirror nor a MarshalIndent staging buffer, so encoding an n-fact
// solution costs O(1) allocations per fact and never holds more than one
// flush chunk of output. Output is byte-identical to what
// json.MarshalIndent produced over the legacy wire structs (EncodeTo) and
// to json.Compact of that document (EncodeCompactTo); the identity is
// locked down by randomized tests against a reference implementation.

// flushChunk is the scratch-buffer high-water mark: the encoder hands the
// buffer to the writer whenever a fact completes past this size, so peak
// encoder memory is one chunk regardless of solution size.
const flushChunk = 32 << 10

// EncodeTo streams the instance's TDX JSON document to w, byte-identical
// to Encode's output, without materializing the fact set or the document:
// facts are read straight out of the columnar store in deterministic
// order (relations lexicographic, rows sorted like fact.CompareC) and
// rendered through a reused scratch buffer flushed in bounded chunks.
// This is the write path for solutions too large to buffer; Encode is a
// thin wrapper over it.
func EncodeTo(w io.Writer, c *instance.Concrete) error {
	return encodeStream(w, c, true)
}

// EncodeCompactTo streams the compact (whitespace-free) form of the
// instance's TDX JSON document to w — byte-identical to running Encode's
// output through json.Compact, which is exactly the form an embedded
// json.RawMessage took on the tdxd wire. Serving layers frame response
// envelopes around this writer so a solution document is encoded once,
// straight to the socket.
func EncodeCompactTo(w io.Writer, c *instance.Concrete) error {
	return encodeStream(w, c, false)
}

// streamEncoder accumulates output in a reused scratch buffer, flushing
// whole chunks to the writer. Errors are sticky: after a failed flush the
// encoder goes quiet and the first error is reported.
type streamEncoder struct {
	w      io.Writer
	buf    []byte
	err    error
	indent bool
}

func encodeStream(w io.Writer, c *instance.Concrete, indent bool) error {
	e := &streamEncoder{w: w, buf: make([]byte, 0, flushChunk+1024), indent: indent}
	e.buf = append(e.buf, '{')
	if sch := c.Schema(); sch != nil && sch.Len() > 0 {
		e.key(1, "schema")
		e.buf = append(e.buf, '[')
		for i, name := range sch.Names() {
			r, _ := sch.Relation(name)
			if i > 0 {
				e.buf = append(e.buf, ',')
			}
			e.nl(2)
			e.buf = append(e.buf, '{')
			e.key(3, "name")
			e.str(r.Name)
			e.buf = append(e.buf, ',')
			e.key(3, "attrs")
			e.strs(3, r.Attrs)
			e.nl(2)
			e.buf = append(e.buf, '}')
		}
		e.nl(1)
		e.buf = append(e.buf, ']', ',')
	}
	e.key(1, "facts")
	if c.Len() == 0 {
		// The legacy encoder marshaled a nil slice here; keep its rendering.
		e.buf = append(e.buf, "null"...)
	} else {
		e.buf = append(e.buf, '[')
		st := c.Store()
		first := true
		var rows []int
		for _, relName := range st.Relations() {
			r := st.Rel(relName)
			// Global fact order is fact.CompareC: relation name first, so
			// sorted relation names + per-relation row sort reproduce it
			// without a cross-relation merge.
			rows = r.AppendLive(rows[:0])
			sort.Slice(rows, func(i, j int) bool { return rowCompare(r, rows[i], rows[j]) < 0 })
			for _, row := range rows {
				if !first {
					e.buf = append(e.buf, ',')
				}
				first = false
				e.fact(relName, r, row)
				if len(e.buf) >= flushChunk {
					e.flush()
				}
			}
		}
		e.nl(1)
		e.buf = append(e.buf, ']')
	}
	e.nl(0)
	e.buf = append(e.buf, '}')
	e.flush()
	return e.err
}

// rowCompare orders two rows of one relation exactly as fact.CompareC
// orders their decoded facts: data arguments position-wise up to the
// shorter data arity, then arity, then the trailing interval. Comparing
// the raw tuples position-wise would be wrong for mixed-arity relations —
// the interval tail of a short row would be compared against a data
// argument of a long one, and interval values sort after every data kind.
func rowCompare(r *storage.Rel, a, b int) int {
	ta, tb := r.Tuple(a), r.Tuple(b)
	na, nb := len(ta)-1, len(tb)-1
	n := na
	if nb < n {
		n = nb
	}
	for i := 0; i < n; i++ {
		if c := value.Compare(ta[i], tb[i]); c != 0 {
			return c
		}
	}
	if na != nb {
		if na < nb {
			return -1
		}
		return 1
	}
	// Both tails are interval values, for which value.Compare is exactly
	// interval.Compare — the CompareC tie-break.
	return value.Compare(ta[na], tb[nb])
}

// fact renders one stored row as a wire fact object.
func (e *streamEncoder) fact(rel string, r *storage.Rel, row int) {
	tup := r.Tuple(row)
	n := len(tup) - 1
	if tup[n].Kind() != value.IntervalVal {
		// Mirror the legacy path's corruption panic (FromTuple).
		instance.FromTuple(rel, tup)
	}
	e.nl(2)
	e.buf = append(e.buf, '{')
	e.key(3, "rel")
	e.str(rel)
	e.buf = append(e.buf, ',')
	e.key(3, "args")
	if n == 0 {
		// The legacy encoder built a non-nil empty []string here.
		e.buf = append(e.buf, '[', ']')
	} else {
		e.buf = append(e.buf, '[')
		for i := 0; i < n; i++ {
			if i > 0 {
				e.buf = append(e.buf, ',')
			}
			e.nl(4)
			e.value(tup[i])
		}
		e.nl(3)
		e.buf = append(e.buf, ']')
	}
	e.buf = append(e.buf, ',')
	e.key(3, "interval")
	iv, _ := tup[n].Interval()
	e.buf = append(e.buf, '"')
	e.buf = appendInterval(e.buf, iv)
	e.buf = append(e.buf, '"')
	e.nl(2)
	e.buf = append(e.buf, '}')
}

// value renders one argument as a JSON string. Constants go through the
// escaper; the rendered forms of nulls, annotated nulls, and intervals
// are ASCII with no escapable characters, so they append directly.
func (e *streamEncoder) value(v value.Value) {
	switch v.Kind() {
	case value.Const:
		e.str(v.Str)
	case value.Null:
		e.buf = append(e.buf, '"', 'N')
		e.buf = strconv.AppendUint(e.buf, v.ID, 10)
		if v.TP != value.NoTP {
			e.buf = append(e.buf, '@')
			e.buf = appendTime(e.buf, v.TP)
		}
		e.buf = append(e.buf, '"')
	case value.AnnNull:
		e.buf = append(e.buf, '"', 'N')
		e.buf = strconv.AppendUint(e.buf, v.ID, 10)
		e.buf = append(e.buf, '^')
		e.buf = appendInterval(e.buf, v.Iv)
		e.buf = append(e.buf, '"')
	case value.IntervalVal:
		e.buf = append(e.buf, '"')
		e.buf = appendInterval(e.buf, v.Iv)
		e.buf = append(e.buf, '"')
	default:
		e.str(v.String())
	}
}

func appendInterval(buf []byte, iv interval.Interval) []byte {
	buf = append(buf, '[')
	buf = appendTime(buf, iv.Start)
	buf = append(buf, ',')
	buf = appendTime(buf, iv.End)
	return append(buf, ')')
}

func appendTime(buf []byte, t interval.Time) []byte {
	if t == interval.Infinity {
		return append(buf, "inf"...)
	}
	return strconv.AppendUint(buf, uint64(t), 10)
}

// nl writes a newline plus two spaces per depth level in indent mode,
// nothing in compact mode. The document has fixed nesting, so depths are
// literal at the call sites.
func (e *streamEncoder) nl(depth int) {
	if !e.indent {
		return
	}
	e.buf = append(e.buf, '\n')
	for i := 0; i < depth; i++ {
		e.buf = append(e.buf, ' ', ' ')
	}
}

// key writes an object key (no escapable characters occur in wire keys)
// at the given depth, with MarshalIndent's ": " separator in indent mode.
func (e *streamEncoder) key(depth int, name string) {
	e.nl(depth)
	e.buf = append(e.buf, '"')
	e.buf = append(e.buf, name...)
	e.buf = append(e.buf, '"', ':')
	if e.indent {
		e.buf = append(e.buf, ' ')
	}
}

// strs renders a []string value whose elements sit one depth below the
// closing bracket, matching encoding/json: nil renders null, empty
// renders [], elements are escaped like any string.
func (e *streamEncoder) strs(depth int, ss []string) {
	if ss == nil {
		e.buf = append(e.buf, "null"...)
		return
	}
	if len(ss) == 0 {
		e.buf = append(e.buf, '[', ']')
		return
	}
	e.buf = append(e.buf, '[')
	for i, s := range ss {
		if i > 0 {
			e.buf = append(e.buf, ',')
		}
		e.nl(depth + 1)
		e.str(s)
	}
	e.nl(depth)
	e.buf = append(e.buf, ']')
}

const hexDigits = "0123456789abcdef"

// str appends s as a JSON string, escaping exactly as encoding/json does
// with its default HTML escaping: \" and \\, the \b \f \n \r \t
// shorthands, \u00XX for remaining control bytes and for < > & (HTML
// safety), the \ufffd escape for invalid UTF-8 bytes, and \u2028/\u2029 for
// JavaScript line separators. Byte identity with the stdlib here is what
// makes the streamed document equal the marshaled one.
func (e *streamEncoder) str(s string) {
	buf := append(e.buf, '"')
	start := 0
	for i := 0; i < len(s); {
		if b := s[i]; b < utf8.RuneSelf {
			if b >= ' ' && b != '"' && b != '\\' && b != '<' && b != '>' && b != '&' {
				i++
				continue
			}
			buf = append(buf, s[start:i]...)
			switch b {
			case '\\', '"':
				buf = append(buf, '\\', b)
			case '\b':
				buf = append(buf, '\\', 'b')
			case '\f':
				buf = append(buf, '\\', 'f')
			case '\n':
				buf = append(buf, '\\', 'n')
			case '\r':
				buf = append(buf, '\\', 'r')
			case '\t':
				buf = append(buf, '\\', 't')
			default:
				buf = append(buf, '\\', 'u', '0', '0', hexDigits[b>>4], hexDigits[b&0xF])
			}
			i++
			start = i
			continue
		}
		c, size := utf8.DecodeRuneInString(s[i:])
		if c == utf8.RuneError && size == 1 {
			buf = append(buf, s[start:i]...)
			buf = append(buf, "\\ufffd"...)
			i += size
			start = i
			continue
		}
		if c == '\u2028' || c == '\u2029' {
			buf = append(buf, s[start:i]...)
			buf = append(buf, '\\', 'u', '2', '0', '2', hexDigits[c&0xF])
			i += size
			start = i
			continue
		}
		i += size
	}
	buf = append(buf, s[start:]...)
	e.buf = append(buf, '"')
}

// flush hands the scratch buffer to the writer and resets it.
func (e *streamEncoder) flush() {
	if len(e.buf) == 0 {
		return
	}
	if e.err == nil {
		if _, err := e.w.Write(e.buf); err != nil {
			e.err = err
		}
	}
	e.buf = e.buf[:0]
}
