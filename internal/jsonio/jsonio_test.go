package jsonio

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/chase"
	"repro/internal/instance"
	"repro/internal/paperex"
	"repro/internal/schema"
)

func TestRoundTripSourceInstance(t *testing.T) {
	ic := paperex.Figure4()
	data, err := Encode(ic)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(ic) {
		t.Fatalf("round trip changed instance:\n%s\nvs\n%s", back, ic)
	}
	// The schema travels with the data: inserting a wrong-arity fact into
	// the decoded instance fails.
	if back.Schema() == nil || !back.Schema().Has("E") {
		t.Fatal("schema lost in round trip")
	}
	if !strings.Contains(string(data), `"interval": "[2012,2014)"`) {
		t.Fatalf("unexpected wire format:\n%s", data)
	}
}

func TestRoundTripSolutionWithNulls(t *testing.T) {
	jc, _, err := chase.Concrete(paperex.Figure4(), paperex.EmploymentMapping(), nil)
	if err != nil {
		t.Fatal(err)
	}
	data, err := Encode(jc)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(jc) {
		t.Fatalf("solution round trip changed:\n%s\nvs\n%s", back, jc)
	}
	if !strings.Contains(string(data), "N1^[2012,2013)") {
		t.Fatalf("annotated null not serialized:\n%s", data)
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := []string{
		`{`, // syntax
		`{"facts":[{"rel":"R","args":["a"],"interval":"nope"}]}`,
		`{"facts":[{"rel":"R","args":["a"],"interval":"[5,2)"}]}`,
		`{"schema":[{"name":"","attrs":["a"]}],"facts":[]}`,
		`{"schema":[{"name":"R","attrs":["a"]}],"facts":[{"rel":"R","args":["a","b"],"interval":"[1,2)"}]}`, // arity
		`{"schema":[{"name":"R","attrs":["a"]}],"facts":[{"rel":"Zz","args":["a"],"interval":"[1,2)"}]}`,    // unknown rel
	}
	for _, c := range cases {
		if _, err := Decode([]byte(c)); err == nil {
			t.Errorf("no error for %s", c)
		}
	}
}

func TestEmptyInstance(t *testing.T) {
	data, err := Encode(paperex.Figure4().Clone())
	if err != nil {
		t.Fatal(err)
	}
	_ = data
	empty, err := Decode([]byte(`{"facts":[]}`))
	if err != nil {
		t.Fatal(err)
	}
	if empty.Len() != 0 || empty.Schema() != nil {
		t.Fatal("empty decode wrong")
	}
}

// TestDecodeReaderMatchesDecode: the streaming decoder and the buffered
// one agree on Encode output, with and without an expected schema.
func TestDecodeReaderMatchesDecode(t *testing.T) {
	jc, _, err := chase.Concrete(paperex.Figure4(), paperex.EmploymentMapping(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, src := range []*instance.Concrete{paperex.Figure4(), jc} {
		data, err := Encode(src)
		if err != nil {
			t.Fatal(err)
		}
		buffered, err := Decode(data)
		if err != nil {
			t.Fatal(err)
		}
		streamed, err := DecodeReader(bytes.NewReader(data), nil)
		if err != nil {
			t.Fatal(err)
		}
		if !streamed.Equal(buffered) {
			t.Fatalf("streaming decode diverged:\n%s\nvs\n%s", streamed, buffered)
		}
		expected, err := DecodeReader(bytes.NewReader(data), src.Schema())
		if err != nil {
			t.Fatal(err)
		}
		if !expected.Equal(buffered) {
			t.Fatalf("schema-checked streaming decode diverged:\n%s\nvs\n%s", expected, buffered)
		}
		if src.Schema() != nil && expected.Schema() != src.Schema() {
			t.Fatal("expected schema not adopted")
		}
	}
}

// TestDecodeReaderSchemaValidation: an expected schema rejects facts and
// document-schema sections that contradict it.
func TestDecodeReaderSchemaValidation(t *testing.T) {
	sch := paperex.Figure4().Schema()
	if sch == nil {
		t.Fatal("figure 4 should carry a schema")
	}
	// Wrong arity fact against the expected schema.
	if _, err := DecodeReader(strings.NewReader(
		`{"facts":[{"rel":"E","args":["only-one"],"interval":"[1,2)"}]}`), sch); err == nil {
		t.Fatal("wrong-arity fact accepted")
	}
	// Unknown relation against the expected schema.
	if _, err := DecodeReader(strings.NewReader(
		`{"facts":[{"rel":"Nope","args":["a","b"],"interval":"[1,2)"}]}`), sch); err == nil {
		t.Fatal("unknown relation accepted")
	}
	// Document schema contradicting the expected one (arity mismatch).
	if _, err := DecodeReader(strings.NewReader(
		`{"schema":[{"name":"E","attrs":["just-one"]}],"facts":[]}`), sch); err == nil {
		t.Fatal("contradicting document schema accepted")
	}
	// Document schema naming a relation the expected schema lacks.
	if _, err := DecodeReader(strings.NewReader(
		`{"schema":[{"name":"Extra","attrs":["a"]}],"facts":[]}`), sch); err == nil {
		t.Fatal("extra document relation accepted")
	}
	// A consistent document schema passes the cross-check.
	if _, err := DecodeReader(strings.NewReader(
		`{"schema":[{"name":"E","attrs":["name","company"]}],"facts":[{"rel":"E","args":["a","b"],"interval":"[1,2)"}]}`), sch); err != nil {
		t.Fatal(err)
	}
}

// TestDecodeReaderEdgeCases: unknown keys skip, schemaless governs-after
// ordering errors, and malformed streams fail cleanly.
func TestDecodeReaderEdgeCases(t *testing.T) {
	// Unknown keys are tolerated (forward compatibility).
	inst, err := DecodeReader(strings.NewReader(
		`{"version":7,"facts":[{"rel":"R","args":["a"],"interval":"[1,2)"}],"trailer":{"x":[1,2]}}`), nil)
	if err != nil || inst.Len() != 1 {
		t.Fatalf("unknown keys: %v, len=%d", err, inst.Len())
	}
	// Schemaless: a schema section after facts is an ordering error.
	if _, err := DecodeReader(strings.NewReader(
		`{"facts":[{"rel":"R","args":["a"],"interval":"[1,2)"}],"schema":[{"name":"R","attrs":["a"]}]}`), nil); err == nil {
		t.Fatal("schema-after-facts accepted schemaless")
	}
	// With an expected schema the same document is fine: the trailing
	// section is only cross-checked.
	sch, _ := schema.New()
	rel, err := schema.NewRelation("R", "a")
	if err != nil {
		t.Fatal(err)
	}
	if err := sch.Add(rel); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeReader(strings.NewReader(
		`{"facts":[{"rel":"R","args":["a"],"interval":"[1,2)"}],"schema":[{"name":"R","attrs":["a"]}]}`), sch); err != nil {
		t.Fatal(err)
	}
	// Top level must be an object.
	if _, err := DecodeReader(strings.NewReader(`[1,2]`), nil); err == nil {
		t.Fatal("non-object accepted")
	}
	// Truncated stream.
	if _, err := DecodeReader(strings.NewReader(`{"facts":[{"rel":"R"`), nil); err == nil {
		t.Fatal("truncated stream accepted")
	}
	// Empty document decodes to an empty schemaless instance.
	empty, err := DecodeReader(strings.NewReader(`{}`), nil)
	if err != nil || empty.Len() != 0 {
		t.Fatalf("empty doc: %v", err)
	}
}

// TestDecodeReaderRejectsTrailingData: the streaming decoder matches
// Decode's strictness — bytes after the document are an error, not a
// silent truncation to the first document.
func TestDecodeReaderRejectsTrailingData(t *testing.T) {
	doc := `{"facts":[{"rel":"R","args":["a"],"interval":"[1,2)"}]}`
	// A concatenated second document.
	if _, err := DecodeReader(strings.NewReader(doc+doc), nil); err == nil {
		t.Fatal("concatenated documents accepted")
	}
	// Trailing garbage.
	if _, err := DecodeReader(strings.NewReader(doc+" xyz"), nil); err == nil {
		t.Fatal("trailing garbage accepted")
	}
	// Trailing whitespace is fine.
	if inst, err := DecodeReader(strings.NewReader(doc+"\n\t "), nil); err != nil || inst.Len() != 1 {
		t.Fatalf("trailing whitespace: %v", err)
	}
}

// TestDecodeReaderRejectsDuplicateSections: repeated top-level sections
// error instead of silently concatenating (facts) or being ignored
// (schema) — in a streaming decode last-wins cannot be honored.
func TestDecodeReaderRejectsDuplicateSections(t *testing.T) {
	if _, err := DecodeReader(strings.NewReader(
		`{"facts":[{"rel":"R","args":["a"],"interval":"[1,2)"}],"facts":[{"rel":"R","args":["b"],"interval":"[1,2)"}]}`), nil); err == nil {
		t.Fatal("duplicate facts sections accepted")
	}
	if _, err := DecodeReader(strings.NewReader(
		`{"schema":[{"name":"R","attrs":["a"]}],"schema":[{"name":"R","attrs":["a"]}],"facts":[]}`), nil); err == nil {
		t.Fatal("duplicate schema sections accepted")
	}
}
