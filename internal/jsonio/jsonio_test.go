package jsonio

import (
	"strings"
	"testing"

	"repro/internal/chase"
	"repro/internal/paperex"
)

func TestRoundTripSourceInstance(t *testing.T) {
	ic := paperex.Figure4()
	data, err := Encode(ic)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(ic) {
		t.Fatalf("round trip changed instance:\n%s\nvs\n%s", back, ic)
	}
	// The schema travels with the data: inserting a wrong-arity fact into
	// the decoded instance fails.
	if back.Schema() == nil || !back.Schema().Has("E") {
		t.Fatal("schema lost in round trip")
	}
	if !strings.Contains(string(data), `"interval": "[2012,2014)"`) {
		t.Fatalf("unexpected wire format:\n%s", data)
	}
}

func TestRoundTripSolutionWithNulls(t *testing.T) {
	jc, _, err := chase.Concrete(paperex.Figure4(), paperex.EmploymentMapping(), nil)
	if err != nil {
		t.Fatal(err)
	}
	data, err := Encode(jc)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(jc) {
		t.Fatalf("solution round trip changed:\n%s\nvs\n%s", back, jc)
	}
	if !strings.Contains(string(data), "N1^[2012,2013)") {
		t.Fatalf("annotated null not serialized:\n%s", data)
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := []string{
		`{`, // syntax
		`{"facts":[{"rel":"R","args":["a"],"interval":"nope"}]}`,
		`{"facts":[{"rel":"R","args":["a"],"interval":"[5,2)"}]}`,
		`{"schema":[{"name":"","attrs":["a"]}],"facts":[]}`,
		`{"schema":[{"name":"R","attrs":["a"]}],"facts":[{"rel":"R","args":["a","b"],"interval":"[1,2)"}]}`, // arity
		`{"schema":[{"name":"R","attrs":["a"]}],"facts":[{"rel":"Zz","args":["a"],"interval":"[1,2)"}]}`,    // unknown rel
	}
	for _, c := range cases {
		if _, err := Decode([]byte(c)); err == nil {
			t.Errorf("no error for %s", c)
		}
	}
}

func TestEmptyInstance(t *testing.T) {
	data, err := Encode(paperex.Figure4().Clone())
	if err != nil {
		t.Fatal(err)
	}
	_ = data
	empty, err := Decode([]byte(`{"facts":[]}`))
	if err != nil {
		t.Fatal(err)
	}
	if empty.Len() != 0 || empty.Schema() != nil {
		t.Fatal("empty decode wrong")
	}
}
