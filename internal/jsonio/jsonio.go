// Package jsonio serializes concrete instances (and schemas) to and from
// JSON, for interchange with other tools. Values use the same textual
// syntax as the TDX language (constants verbatim, N7^[s,e) for
// interval-annotated nulls), so round trips are exact.
package jsonio

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/fact"
	"repro/internal/instance"
	"repro/internal/interval"
	"repro/internal/schema"
	"repro/internal/value"
)

// factJSON is the wire form of one concrete fact.
type factJSON struct {
	Rel      string   `json:"rel"`
	Args     []string `json:"args"`
	Interval string   `json:"interval"`
}

// instanceJSON is the wire form of an instance: an optional schema
// (relation name → attribute list, with declaration order preserved
// separately) plus the fact list.
type instanceJSON struct {
	Schema []relJSON  `json:"schema,omitempty"`
	Facts  []factJSON `json:"facts"`
}

type relJSON struct {
	Name  string   `json:"name"`
	Attrs []string `json:"attrs"`
}

// Encode renders the instance as JSON. Facts appear in deterministic
// order. The schema is included when present. It is a buffering wrapper
// over EncodeTo, which streams the same bytes without materializing the
// fact set; callers holding an io.Writer should prefer EncodeTo.
func Encode(c *instance.Concrete) ([]byte, error) {
	var buf bytes.Buffer
	buf.Grow(64 + 96*c.Len())
	if err := EncodeTo(&buf, c); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Decode parses an instance from JSON. When the document carries a
// schema, facts are validated against it; otherwise the instance is
// schemaless. Argument strings that parse as nulls or intervals become
// those values (the value syntax is injective for strings produced by
// Encode).
func Decode(data []byte) (*instance.Concrete, error) {
	var in instanceJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, fmt.Errorf("jsonio: %w", err)
	}
	var sch *schema.Schema
	if len(in.Schema) > 0 {
		var err error
		if sch, err = buildSchema(in.Schema); err != nil {
			return nil, err
		}
	}
	out := instance.NewConcrete(sch)
	for i, fj := range in.Facts {
		if err := insertFact(out, i, fj); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// DecodeReader decodes an instance from a JSON stream without
// materializing the document: the facts array is consumed one element at
// a time with a streaming json.Decoder and inserted as it is read, so a
// request body carrying millions of facts costs one fact of decode
// buffer, not one document. This is the path tdxd feeds request bodies
// through.
//
// When expect is non-nil the instance is built against it and every fact
// validates on insert; a schema section in the document is then only
// cross-checked (each declared relation must exist in expect with the
// same arity). When expect is nil the document's schema section governs,
// as in Decode — but it must precede the facts array in the stream
// (Encode always writes it first); a schema arriving after facts have
// begun is an error rather than a silent re-validation gap.
func DecodeReader(r io.Reader, expect *schema.Schema) (*instance.Concrete, error) {
	dec := json.NewDecoder(r)
	if err := expectDelim(dec, '{'); err != nil {
		return nil, err
	}
	var out *instance.Concrete
	// ensure creates the instance lazily: under an expected schema it can
	// exist before any key is seen; schemaless, creation waits for the
	// facts key so a preceding schema section can govern.
	ensure := func(sch *schema.Schema) *instance.Concrete {
		if out == nil {
			out = instance.NewConcrete(sch)
		}
		return out
	}
	if expect != nil {
		ensure(expect)
	}
	factsSeen := false
	schemaSeen := false
	for dec.More() {
		keyTok, err := dec.Token()
		if err != nil {
			return nil, fmt.Errorf("jsonio: %w", err)
		}
		key, _ := keyTok.(string)
		switch key {
		case "schema":
			// Duplicate sections are rejected rather than matched to
			// encoding/json's silent last-wins: in a streaming decode the
			// earlier section's facts are already inserted, so any merge
			// semantics would silently diverge from Decode.
			if schemaSeen {
				return nil, fmt.Errorf("jsonio: duplicate schema section")
			}
			schemaSeen = true
			var rels []relJSON
			if err := dec.Decode(&rels); err != nil {
				return nil, fmt.Errorf("jsonio: schema: %w", err)
			}
			if expect != nil {
				if err := checkSchema(rels, expect); err != nil {
					return nil, err
				}
				continue
			}
			if factsSeen {
				return nil, fmt.Errorf("jsonio: schema section after facts in a streaming decode; write the schema first (Encode does)")
			}
			sch, err := buildSchema(rels)
			if err != nil {
				return nil, err
			}
			ensure(sch)
		case "facts":
			if factsSeen {
				return nil, fmt.Errorf("jsonio: duplicate facts section")
			}
			factsSeen = true
			if err := expectDelim(dec, '['); err != nil {
				return nil, err
			}
			inst := ensure(nil)
			for i := 0; dec.More(); i++ {
				var fj factJSON
				if err := dec.Decode(&fj); err != nil {
					return nil, fmt.Errorf("jsonio: fact %d: %w", i, err)
				}
				if err := insertFact(inst, i, fj); err != nil {
					return nil, err
				}
			}
			if err := expectDelim(dec, ']'); err != nil {
				return nil, err
			}
		default:
			// Unknown keys are skipped, mirroring encoding/json's
			// tolerance in Decode.
			var skip json.RawMessage
			if err := dec.Decode(&skip); err != nil {
				return nil, fmt.Errorf("jsonio: %w", err)
			}
		}
	}
	if err := expectDelim(dec, '}'); err != nil {
		return nil, err
	}
	// Reject trailing data, matching Decode (json.Unmarshal fails on it):
	// a concatenated second document or garbage after the closing brace
	// must error, not silently truncate the source to the first document.
	if tok, err := dec.Token(); err != io.EOF {
		if err != nil {
			return nil, fmt.Errorf("jsonio: after document: %w", err)
		}
		return nil, fmt.Errorf("jsonio: trailing data after document (%v)", tok)
	}
	return ensure(nil), nil
}

// expectDelim consumes one token and requires it to be the delimiter.
func expectDelim(dec *json.Decoder, want json.Delim) error {
	tok, err := dec.Token()
	if err != nil {
		return fmt.Errorf("jsonio: %w", err)
	}
	if d, ok := tok.(json.Delim); !ok || d != want {
		return fmt.Errorf("jsonio: expected %q, found %v", want.String(), tok)
	}
	return nil
}

// buildSchema constructs a schema from its wire form.
func buildSchema(rels []relJSON) (*schema.Schema, error) {
	sch, _ := schema.New()
	for _, r := range rels {
		rel, err := schema.NewRelation(r.Name, r.Attrs...)
		if err != nil {
			return nil, fmt.Errorf("jsonio: %w", err)
		}
		if err := sch.Add(rel); err != nil {
			return nil, fmt.Errorf("jsonio: %w", err)
		}
	}
	return sch, nil
}

// checkSchema cross-checks a document's schema section against the
// expected schema: every declared relation must exist with the same
// arity. (expect may declare more relations than the document uses.)
func checkSchema(rels []relJSON, expect *schema.Schema) error {
	for _, r := range rels {
		rel, ok := expect.Relation(r.Name)
		if !ok {
			return fmt.Errorf("jsonio: document schema declares %s, not in the expected schema", r.Name)
		}
		if len(rel.Attrs) != len(r.Attrs) {
			return fmt.Errorf("jsonio: document schema declares %s/%d, expected schema has arity %d", r.Name, len(r.Attrs), len(rel.Attrs))
		}
	}
	return nil
}

// insertFact parses one wire fact and inserts it, with positional error
// context.
func insertFact(out *instance.Concrete, i int, fj factJSON) error {
	iv, err := interval.Parse(fj.Interval)
	if err != nil {
		return fmt.Errorf("jsonio: fact %d: %w", i, err)
	}
	args := make([]value.Value, len(fj.Args))
	for j, s := range fj.Args {
		v, err := value.Parse(s)
		if err != nil {
			return fmt.Errorf("jsonio: fact %d arg %d: %w", i, j, err)
		}
		args[j] = v
	}
	if _, err := out.Insert(fact.NewC(fj.Rel, iv, args...)); err != nil {
		return fmt.Errorf("jsonio: fact %d: %w", i, err)
	}
	return nil
}
