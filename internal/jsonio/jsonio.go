// Package jsonio serializes concrete instances (and schemas) to and from
// JSON, for interchange with other tools. Values use the same textual
// syntax as the TDX language (constants verbatim, N7^[s,e) for
// interval-annotated nulls), so round trips are exact.
package jsonio

import (
	"encoding/json"
	"fmt"

	"repro/internal/fact"
	"repro/internal/instance"
	"repro/internal/interval"
	"repro/internal/schema"
	"repro/internal/value"
)

// factJSON is the wire form of one concrete fact.
type factJSON struct {
	Rel      string   `json:"rel"`
	Args     []string `json:"args"`
	Interval string   `json:"interval"`
}

// instanceJSON is the wire form of an instance: an optional schema
// (relation name → attribute list, with declaration order preserved
// separately) plus the fact list.
type instanceJSON struct {
	Schema []relJSON  `json:"schema,omitempty"`
	Facts  []factJSON `json:"facts"`
}

type relJSON struct {
	Name  string   `json:"name"`
	Attrs []string `json:"attrs"`
}

// Encode renders the instance as JSON. Facts appear in deterministic
// order. The schema is included when present.
func Encode(c *instance.Concrete) ([]byte, error) {
	var out instanceJSON
	if sch := c.Schema(); sch != nil {
		for _, name := range sch.Names() {
			r, _ := sch.Relation(name)
			out.Schema = append(out.Schema, relJSON{Name: r.Name, Attrs: r.Attrs})
		}
	}
	for _, f := range c.Facts() {
		fj := factJSON{Rel: f.Rel, Interval: f.T.String(), Args: make([]string, len(f.Args))}
		for i, a := range f.Args {
			fj.Args[i] = a.String()
		}
		out.Facts = append(out.Facts, fj)
	}
	return json.MarshalIndent(out, "", "  ")
}

// Decode parses an instance from JSON. When the document carries a
// schema, facts are validated against it; otherwise the instance is
// schemaless. Argument strings that parse as nulls or intervals become
// those values (the value syntax is injective for strings produced by
// Encode).
func Decode(data []byte) (*instance.Concrete, error) {
	var in instanceJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, fmt.Errorf("jsonio: %w", err)
	}
	var sch *schema.Schema
	if len(in.Schema) > 0 {
		sch, _ = schema.New()
		for _, r := range in.Schema {
			rel, err := schema.NewRelation(r.Name, r.Attrs...)
			if err != nil {
				return nil, fmt.Errorf("jsonio: %w", err)
			}
			if err := sch.Add(rel); err != nil {
				return nil, fmt.Errorf("jsonio: %w", err)
			}
		}
	}
	out := instance.NewConcrete(sch)
	for i, fj := range in.Facts {
		iv, err := interval.Parse(fj.Interval)
		if err != nil {
			return nil, fmt.Errorf("jsonio: fact %d: %w", i, err)
		}
		args := make([]value.Value, len(fj.Args))
		for j, s := range fj.Args {
			v, err := value.Parse(s)
			if err != nil {
				return nil, fmt.Errorf("jsonio: fact %d arg %d: %w", i, j, err)
			}
			args[j] = v
		}
		if _, err := out.Insert(fact.NewC(fj.Rel, iv, args...)); err != nil {
			return nil, fmt.Errorf("jsonio: fact %d: %w", i, err)
		}
	}
	return out, nil
}
