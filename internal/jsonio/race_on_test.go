//go:build race

package jsonio

const raceEnabled = true
