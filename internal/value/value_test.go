package value

import (
	"math/rand"
	"sort"
	"sync"
	"testing"

	"repro/internal/interval"
)

func iv(s, e interval.Time) interval.Interval { return interval.MustNew(s, e) }

func TestConstructorsAndKinds(t *testing.T) {
	c := NewConst("Ada")
	n := NewNull(7)
	p := NewProjectedNull(7, 2013)
	a := NewAnnNull(7, iv(2012, 2014))
	t0 := NewInterval(iv(1, 2))

	if !c.IsConst() || c.IsNullLike() || c.IsInterval() {
		t.Error("const kind predicates")
	}
	if !n.IsNullLike() || n.IsConst() {
		t.Error("null kind predicates")
	}
	if !a.IsNullLike() || a.IsInterval() {
		t.Error("annotated null kind predicates")
	}
	if !t0.IsInterval() {
		t.Error("interval kind predicates")
	}
	if n == p {
		t.Error("plain and projected null with same family must differ")
	}
	if got, ok := a.Interval(); !ok || got != iv(2012, 2014) {
		t.Error("annotated null Interval()")
	}
	if _, ok := c.Interval(); ok {
		t.Error("const has no interval")
	}
}

func TestProjection(t *testing.T) {
	a := NewAnnNull(3, iv(8, interval.Infinity))
	p1 := a.Project(8)
	p2 := a.Project(9)
	if p1 == p2 {
		t.Fatal("projections at different time points must be distinct nulls")
	}
	if p1 != NewProjectedNull(3, 8) {
		t.Fatalf("Project(8) = %v", p1)
	}
	// Constants and intervals are fixed points of projection.
	c := NewConst("IBM")
	if c.Project(5) != c {
		t.Fatal("const projection must be identity")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("projecting outside the annotation must panic")
		}
	}()
	a.Project(7)
}

func TestWithAnnotation(t *testing.T) {
	a := NewAnnNull(4, iv(5, 11))
	b := a.WithAnnotation(iv(5, 7))
	if b.ID != 4 || b.Iv != iv(5, 7) {
		t.Fatalf("WithAnnotation = %v", b)
	}
	c := NewConst("x")
	if c.WithAnnotation(iv(1, 2)) != c {
		t.Fatal("WithAnnotation on const must be identity")
	}
}

func TestStringAndParseRoundTrip(t *testing.T) {
	vals := []Value{
		NewConst("Ada"),
		NewConst("18k"),
		NewConst("IBM-Research"),
		NewNull(12),
		NewProjectedNull(12, 2013),
		NewAnnNull(9, iv(2012, 2014)),
		NewAnnNull(9, iv(2014, interval.Infinity)),
		NewInterval(iv(0, 1)),
		NewInterval(iv(5, interval.Infinity)),
	}
	for _, v := range vals {
		got, err := Parse(v.String())
		if err != nil {
			t.Fatalf("Parse(%q): %v", v.String(), err)
		}
		if got != v {
			t.Fatalf("round trip %v -> %v", v, got)
		}
	}
}

func TestParseConstFallback(t *testing.T) {
	// Strings that merely resemble nulls but fail the syntax are constants.
	for _, s := range []string{"Nancy", "N", "Nx", "N7x", "IBM"} {
		v, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		if !v.IsConst() || v.Str != s {
			t.Fatalf("Parse(%q) = %v, want const", s, v)
		}
	}
	if _, err := Parse(""); err == nil {
		t.Fatal("empty value must not parse")
	}
	if _, err := Parse("[5,2)"); err == nil {
		t.Fatal("inverted interval value must not parse")
	}
}

func TestCompareTotalOrder(t *testing.T) {
	vals := []Value{
		NewInterval(iv(1, 2)),
		NewConst("b"),
		NewAnnNull(2, iv(1, 3)),
		NewConst("a"),
		NewNull(5),
		NewProjectedNull(5, 3),
		NewNull(2),
		NewAnnNull(2, iv(0, 3)),
	}
	sort.Slice(vals, func(i, j int) bool { return Compare(vals[i], vals[j]) < 0 })
	// Constants first, then nulls by (id, tp), then annotated nulls, then intervals.
	want := []string{"a", "b", "N2", "N5@3", "N5", "N2^[0,3)", "N2^[1,3)", "[1,2)"}
	for i, v := range vals {
		if v.String() != want[i] {
			t.Fatalf("sorted[%d] = %v, want %v (all: %v)", i, v, want[i], vals)
		}
	}
	for i := range vals {
		if Compare(vals[i], vals[i]) != 0 {
			t.Fatalf("Compare(%v, itself) != 0", vals[i])
		}
		for j := i + 1; j < len(vals); j++ {
			if Compare(vals[i], vals[j]) != -Compare(vals[j], vals[i]) {
				t.Fatalf("Compare not antisymmetric: %v vs %v", vals[i], vals[j])
			}
		}
	}
}

func TestNullGenFreshness(t *testing.T) {
	var g NullGen
	seen := make(map[uint64]bool)
	for i := 0; i < 1000; i++ {
		id := g.Fresh()
		if seen[id] {
			t.Fatalf("duplicate id %d", id)
		}
		seen[id] = true
	}
	a := g.FreshAnn(iv(1, 5))
	if a.K != AnnNull || a.Iv != iv(1, 5) || seen[a.ID] {
		t.Fatalf("FreshAnn = %v", a)
	}
	n := g.FreshNull()
	if n.K != Null || n.ID == a.ID {
		t.Fatalf("FreshNull = %v", n)
	}
}

func TestNullGenConcurrent(t *testing.T) {
	var g NullGen
	const workers, per = 8, 500
	ids := make([][]uint64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ids[w] = make([]uint64, per)
			for i := 0; i < per; i++ {
				ids[w][i] = g.Fresh()
			}
		}(w)
	}
	wg.Wait()
	seen := make(map[uint64]bool, workers*per)
	for _, batch := range ids {
		for _, id := range batch {
			if seen[id] {
				t.Fatalf("duplicate id %d across goroutines", id)
			}
			seen[id] = true
		}
	}
}

func TestValuesAsMapKeys(t *testing.T) {
	// Values must be comparable and hash-stable so they can key maps.
	m := map[Value]int{}
	r := rand.New(rand.NewSource(9))
	var g NullGen
	for i := 0; i < 200; i++ {
		var v Value
		switch r.Intn(4) {
		case 0:
			v = NewConst(string(rune('a' + r.Intn(26))))
		case 1:
			v = g.FreshNull()
		case 2:
			v = g.FreshAnn(iv(interval.Time(r.Intn(5)), interval.Time(10+r.Intn(5))))
		default:
			v = NewInterval(iv(interval.Time(r.Intn(5)), interval.Time(10+r.Intn(5))))
		}
		m[v]++
		m[v]++
		if m[v] != 2 && !v.IsConst() && v.K != IntervalVal {
			t.Fatalf("fresh value %v seen %d times", v, m[v])
		}
	}
}
