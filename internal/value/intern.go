package value

import (
	"fmt"
	"sync"

	"repro/internal/interval"
)

// ID is a dense interned handle for a Value. Within one Interner, two
// Values are equal iff their IDs are equal, so the hot paths of the
// engine — tuple dedup, index probes, homomorphism unification, egd
// union-find — compare and hash plain uint32s instead of rendering
// values to strings. IDs are only meaningful relative to the Interner
// that issued them; they must never be compared across interners.
type ID uint32

// NoID is the reserved sentinel for "no value" (an unbound variable slot,
// a failed lookup). It is never issued by an Interner.
const NoID ID = ^ID(0)

// nullKey identifies a labeled null: family and (optional) projection
// time point.
type nullKey struct {
	fam uint64
	tp  interval.Time
}

// annKey identifies an interval-annotated null: family and annotation.
type annKey struct {
	fam uint64
	iv  interval.Interval
}

// Interner maps Values to dense IDs and back. It is safe for concurrent
// use: Intern takes a write lock only when the value is new, and Resolve,
// KindOf, and Lookup are read-locked. Lookups are dispatched to per-kind
// maps with compact fixed-size keys (a string only for constants), which
// hashes much faster — and stores much less — than keying one map by the
// full Value struct. The zero Interner is not usable; construct with
// NewInterner.
type Interner struct {
	mu     sync.RWMutex
	consts map[string]ID
	nulls  map[nullKey]ID
	anns   map[annKey]ID
	ivs    map[interval.Interval]ID
	vals   []Value
	// kinds mirrors vals so the union-find's constant-absorption check is
	// one slice load, without materializing the Value.
	kinds []Kind
}

// NewInterner returns an empty interner. The per-kind maps are presized
// a little: cold bulk loads (a store ingesting a corpus) otherwise spend
// most of their time growing maps through the first few doublings.
func NewInterner() *Interner {
	return &Interner{
		consts: make(map[string]ID, 64),
		nulls:  make(map[nullKey]ID, 8),
		anns:   make(map[annKey]ID, 32),
		ivs:    make(map[interval.Interval]ID, 32),
	}
}

// NewInternerFrom returns a new interner pre-seeded with every value
// base has interned, issuing identical IDs for them; values interned
// afterwards get fresh IDs independent of base. base is read-locked
// during the copy and never mutated. This is the per-run interner
// pattern: a long-lived exchange keeps a frozen compile-time interner
// holding just its mapping domain and clones it per run, so per-run
// values are released with the run instead of accumulating forever.
func NewInternerFrom(base *Interner) *Interner {
	base.mu.RLock()
	defer base.mu.RUnlock()
	in := &Interner{
		consts: make(map[string]ID, len(base.consts)+16),
		nulls:  make(map[nullKey]ID, len(base.nulls)+8),
		anns:   make(map[annKey]ID, len(base.anns)+16),
		ivs:    make(map[interval.Interval]ID, len(base.ivs)+16),
		vals:   append(make([]Value, 0, len(base.vals)+32), base.vals...),
		kinds:  append(make([]Kind, 0, len(base.kinds)+32), base.kinds...),
	}
	for k, v := range base.consts {
		in.consts[k] = v
	}
	for k, v := range base.nulls {
		in.nulls[k] = v
	}
	for k, v := range base.anns {
		in.anns[k] = v
	}
	for k, v := range base.ivs {
		in.ivs[k] = v
	}
	return in
}

// lookupLocked finds v's ID; the caller holds mu (read or write).
func (in *Interner) lookupLocked(v Value) (ID, bool) {
	switch v.K {
	case Const:
		id, ok := in.consts[v.Str]
		return id, ok
	case Null:
		id, ok := in.nulls[nullKey{v.ID, v.TP}]
		return id, ok
	case AnnNull:
		id, ok := in.anns[annKey{v.ID, v.Iv}]
		return id, ok
	case IntervalVal:
		id, ok := in.ivs[v.Iv]
		return id, ok
	}
	return NoID, false
}

// storeLocked records a fresh id for v; the caller holds mu for writing.
func (in *Interner) storeLocked(v Value, id ID) {
	switch v.K {
	case Const:
		in.consts[v.Str] = id
	case Null:
		in.nulls[nullKey{v.ID, v.TP}] = id
	case AnnNull:
		in.anns[annKey{v.ID, v.Iv}] = id
	case IntervalVal:
		in.ivs[v.Iv] = id
	default:
		panic(fmt.Sprintf("value: cannot intern %v value %v", v.K, v))
	}
}

// Intern returns the ID for v, issuing a fresh one on first sight.
func (in *Interner) Intern(v Value) ID {
	in.mu.RLock()
	id, ok := in.lookupLocked(v)
	in.mu.RUnlock()
	if ok {
		return id
	}
	in.mu.Lock()
	id = in.internLocked(v)
	in.mu.Unlock()
	return id
}

// internLocked issues or returns the ID for v; the caller holds mu.
func (in *Interner) internLocked(v Value) ID {
	if id, ok := in.lookupLocked(v); ok { // raced with another writer
		return id
	}
	id := ID(len(in.vals))
	if id == NoID {
		panic("value: interner overflow (2^32-1 distinct values)")
	}
	in.storeLocked(v, id)
	in.vals = append(in.vals, v)
	in.kinds = append(in.kinds, v.K)
	return id
}

// Lookup returns the ID previously issued for v, without interning it.
// ok is false when v has never been interned — in that case no stored
// tuple of any store sharing this interner can contain v.
func (in *Interner) Lookup(v Value) (ID, bool) {
	in.mu.RLock()
	id, ok := in.lookupLocked(v)
	in.mu.RUnlock()
	return id, ok
}

// Resolve returns the Value for an issued ID. It panics on NoID or an ID
// from a different interner (out of range), which indicates corruption.
func (in *Interner) Resolve(id ID) Value {
	in.mu.RLock()
	v := in.vals[id]
	in.mu.RUnlock()
	return v
}

// KindOf returns the Kind of an issued ID without materializing the Value.
func (in *Interner) KindOf(id ID) Kind {
	in.mu.RLock()
	k := in.kinds[id]
	in.mu.RUnlock()
	return k
}

// Len returns the number of distinct values interned so far; issued IDs
// are exactly [0, Len).
func (in *Interner) Len() int {
	in.mu.RLock()
	n := len(in.vals)
	in.mu.RUnlock()
	return n
}

// InternAll interns a tuple, appending the IDs to dst (which may be
// nil). The read lock is taken once for the whole tuple; only positions
// holding never-seen values fall back to the write lock.
func (in *Interner) InternAll(dst []ID, tup []Value) []ID {
	base := len(dst)
	misses := 0
	in.mu.RLock()
	for _, v := range tup {
		id, ok := in.lookupLocked(v)
		if !ok {
			id = NoID
			misses++
		}
		dst = append(dst, id)
	}
	in.mu.RUnlock()
	if misses == 0 {
		return dst
	}
	in.mu.Lock()
	for i, v := range tup {
		if dst[base+i] == NoID {
			dst[base+i] = in.internLocked(v)
		}
	}
	in.mu.Unlock()
	return dst
}

// LookupAll looks up a tuple without interning, appending the IDs to
// dst. ok is false when any value has never been interned; dst is then
// returned truncated to its original length, so buffers can be reused
// across calls.
func (in *Interner) LookupAll(dst []ID, tup []Value) ([]ID, bool) {
	base := len(dst)
	ok := true
	in.mu.RLock()
	for _, v := range tup {
		id, found := in.lookupLocked(v)
		if !found {
			ok = false
			break
		}
		dst = append(dst, id)
	}
	in.mu.RUnlock()
	if !ok {
		return dst[:base], false
	}
	return dst, true
}

// ResolveAll resolves a row of IDs, appending the Values to dst.
func (in *Interner) ResolveAll(dst []Value, ids []ID) []Value {
	in.mu.RLock()
	for _, id := range ids {
		dst = append(dst, in.vals[id])
	}
	in.mu.RUnlock()
	return dst
}

// String identifies the interner for debugging.
func (in *Interner) String() string {
	return fmt.Sprintf("Interner(%d values)", in.Len())
}

// Hash64 is an incremental word-wise FNV-1a accumulator, the one hash
// used for every identity-bucketing structure in the engine (tuple
// dedup, fact data-grouping, match-set dedup). Collisions are legal
// everywhere it is used — each caller confirms candidates with a real
// equality check — so speed wins over mixing quality. Start from
// NewHash64 and fold words/strings in; the accumulator is a value, so
// each fold returns the updated hash.
type Hash64 uint64

// NewHash64 returns the FNV-1a offset basis.
func NewHash64() Hash64 { return 14695981039346656037 }

const hashPrime64 = 1099511628211

// Word folds one 64-bit word into the hash.
func (h Hash64) Word(x uint64) Hash64 {
	return (h ^ Hash64(x)) * hashPrime64
}

// String folds a string into the hash byte-wise, building no
// intermediate string.
func (h Hash64) String(s string) Hash64 {
	for i := 0; i < len(s); i++ {
		h = (h ^ Hash64(s[i])) * hashPrime64
	}
	return h
}

// Sum returns the accumulated hash.
func (h Hash64) Sum() uint64 { return uint64(h) }

// HashIDs hashes an ID row — the tuple dedup key of the storage layer.
// One xor/multiply per ID, no strings built.
func HashIDs(ids []ID) uint64 {
	h := NewHash64()
	for _, id := range ids {
		h = h.Word(uint64(id))
	}
	return h.Sum()
}
