// Package value defines the value domain of temporal data exchange:
// constants, labeled nulls (abstract view), interval-annotated nulls
// (concrete view, paper §4.1), and time intervals as first-class values
// so that the temporal attribute of a concrete relation can be handled
// uniformly by the homomorphism engine.
//
// An interval-annotated null N^[s,e) stands for the sequence of distinct
// labeled nulls ⟨N_s, ..., N_{e-1}⟩, one per snapshot the concrete fact
// spans. Projection on a time point ℓ (Π_ℓ) selects the ℓ-th member.
//
// Besides the Value representation itself, the package provides the
// interned representation the engine's hot paths run on: an Interner maps
// each distinct Value to a dense uint32 ID, and the storage, logic, and
// chase layers compare, hash, and union those IDs instead of rendering
// values to strings. Value remains the API currency — IDs appear where
// identity work dominates (tuple dedup, index probes, homomorphism
// unification, egd union-find) and are resolved back to Values at the
// edges. See intern.go.
package value

import (
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"

	"repro/internal/interval"
)

// Kind discriminates the value variants.
type Kind uint8

const (
	// Invalid is the zero Kind; the zero Value is not a legal database value.
	Invalid Kind = iota
	// Const is an uninterpreted constant (the paper's Const domain).
	Const
	// Null is a labeled null of the abstract view. A projected null
	// carries the time point it was instantiated at, so that the nulls
	// Π_ℓ(N^[s,e)) for different ℓ are distinct values.
	Null
	// AnnNull is an interval-annotated null N^[s,e) of the concrete view.
	AnnNull
	// IntervalVal is a time interval appearing as the value of the
	// temporal attribute T of a concrete fact. After normalization,
	// intervals behave exactly as constants (paper §4.2), which is why
	// they live in the same value domain.
	IntervalVal
)

func (k Kind) String() string {
	switch k {
	case Const:
		return "const"
	case Null:
		return "null"
	case AnnNull:
		return "annotated-null"
	case IntervalVal:
		return "interval"
	default:
		return "invalid"
	}
}

// Value is a single database value. Values are small, immutable, and
// comparable with ==, so they can key maps directly. Exactly the fields
// relevant to Kind are set:
//
//	Const:       Str
//	Null:        ID (null family), TP (time point when projected; NoTP otherwise)
//	AnnNull:     ID (null family), Iv (the temporal context annotation)
//	IntervalVal: Iv
type Value struct {
	K   Kind
	Str string
	ID  uint64
	TP  interval.Time
	Iv  interval.Interval
}

// NoTP marks a labeled null that is not a projection of an annotated null
// (a plain per-snapshot null).
const NoTP = interval.Infinity

// NewConst returns the constant value c.
func NewConst(c string) Value { return Value{K: Const, Str: c} }

// NewNull returns the plain labeled null with the given family id.
func NewNull(id uint64) Value { return Value{K: Null, ID: id, TP: NoTP} }

// NewProjectedNull returns the labeled null N_tp: member tp of null
// family id. Distinct time points give distinct values, which is exactly
// the paper's requirement that the chase produce fresh nulls per snapshot.
func NewProjectedNull(id uint64, tp interval.Time) Value {
	return Value{K: Null, ID: id, TP: tp}
}

// NewAnnNull returns the interval-annotated null N^iv for family id.
func NewAnnNull(id uint64, iv interval.Interval) Value {
	return Value{K: AnnNull, ID: id, Iv: iv}
}

// NewInterval wraps a time interval as a value.
func NewInterval(iv interval.Interval) Value { return Value{K: IntervalVal, Iv: iv} }

// Kind returns the value's kind.
func (v Value) Kind() Kind { return v.K }

// IsConst reports whether v is a constant.
func (v Value) IsConst() bool { return v.K == Const }

// IsNullLike reports whether v is any form of unknown value (labeled or
// interval-annotated null).
func (v Value) IsNullLike() bool { return v.K == Null || v.K == AnnNull }

// IsInterval reports whether v wraps a time interval.
func (v Value) IsInterval() bool { return v.K == IntervalVal }

// Interval returns the wrapped interval of an IntervalVal or the
// annotation of an AnnNull; ok=false otherwise.
func (v Value) Interval() (interval.Interval, bool) {
	switch v.K {
	case IntervalVal, AnnNull:
		return v.Iv, true
	}
	return interval.Interval{}, false
}

// Project maps an interval-annotated null to the labeled null Π_tp(N^[s,e))
// = N_tp (paper §4.1). Constants and intervals project to themselves.
// Projecting a plain labeled null returns it unchanged. It panics when tp
// lies outside an annotated null's temporal context, which would indicate
// a violated invariant (annotation must equal the enclosing fact's
// interval).
func (v Value) Project(tp interval.Time) Value {
	if v.K != AnnNull {
		return v
	}
	if !v.Iv.Contains(tp) {
		panic(fmt.Sprintf("value: Π_%v(%v): time point outside annotation", tp, v))
	}
	return NewProjectedNull(v.ID, tp)
}

// WithAnnotation returns a copy of an annotated null re-annotated with iv.
// The paper requires that when a concrete fact is fragmented, the
// annotation of each null inside follows the fragment's interval (§4.2,
// after Example 12). Non-annotated values are returned unchanged.
func (v Value) WithAnnotation(iv interval.Interval) Value {
	if v.K != AnnNull {
		return v
	}
	return Value{K: AnnNull, ID: v.ID, Iv: iv}
}

// String renders the value in the paper's notation: constants verbatim,
// labeled nulls as N7 (or N7@2013 when projected), annotated nulls as
// N7^[2012,2014), intervals in bracket form.
func (v Value) String() string {
	switch v.K {
	case Const:
		return v.Str
	case Null:
		if v.TP == NoTP {
			return "N" + strconv.FormatUint(v.ID, 10)
		}
		return "N" + strconv.FormatUint(v.ID, 10) + "@" + v.TP.String()
	case AnnNull:
		return "N" + strconv.FormatUint(v.ID, 10) + "^" + v.Iv.String()
	case IntervalVal:
		return v.Iv.String()
	default:
		return "<invalid>"
	}
}

// Parse parses a value in String's notation. It accepts constants
// (anything not matching the null/interval syntax), N<id>, N<id>@<tp>,
// N<id>^[s,e), and [s,e).
func Parse(s string) (Value, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return Value{}, fmt.Errorf("value: empty")
	}
	if s[0] == '[' {
		iv, err := interval.Parse(s)
		if err != nil {
			return Value{}, err
		}
		return NewInterval(iv), nil
	}
	if s[0] == 'N' && len(s) > 1 && s[1] >= '0' && s[1] <= '9' {
		rest := s[1:]
		if i := strings.IndexByte(rest, '^'); i >= 0 {
			id, err := strconv.ParseUint(rest[:i], 10, 64)
			if err != nil {
				return Value{}, fmt.Errorf("value: bad null id in %q: %w", s, err)
			}
			iv, err := interval.Parse(rest[i+1:])
			if err != nil {
				return Value{}, err
			}
			return NewAnnNull(id, iv), nil
		}
		if i := strings.IndexByte(rest, '@'); i >= 0 {
			id, err := strconv.ParseUint(rest[:i], 10, 64)
			if err != nil {
				return Value{}, fmt.Errorf("value: bad null id in %q: %w", s, err)
			}
			tp, err := interval.ParseTime(rest[i+1:])
			if err != nil {
				return Value{}, err
			}
			return NewProjectedNull(id, tp), nil
		}
		if id, err := strconv.ParseUint(rest, 10, 64); err == nil {
			return NewNull(id), nil
		}
	}
	return NewConst(s), nil
}

// Compare gives a total order over values, for deterministic output:
// constants < nulls < annotated nulls < intervals, each ordered
// internally. It returns -1, 0, or +1.
func Compare(a, b Value) int {
	if a.K != b.K {
		if a.K < b.K {
			return -1
		}
		return 1
	}
	switch a.K {
	case Const:
		return strings.Compare(a.Str, b.Str)
	case Null:
		if a.ID != b.ID {
			return cmpU64(a.ID, b.ID)
		}
		return cmpU64(uint64(a.TP), uint64(b.TP))
	case AnnNull:
		if a.ID != b.ID {
			return cmpU64(a.ID, b.ID)
		}
		return a.Iv.Compare(b.Iv)
	case IntervalVal:
		return a.Iv.Compare(b.Iv)
	}
	return 0
}

func cmpU64(a, b uint64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

// NullGen allocates fresh null family ids. It is safe for concurrent use.
// The zero value starts at family 1.
type NullGen struct {
	last atomic.Uint64
}

// Fresh returns a new, never-before-returned family id.
func (g *NullGen) Fresh() uint64 { return g.last.Add(1) }

// FreshAnn returns a fresh interval-annotated null with temporal context iv.
func (g *NullGen) FreshAnn(iv interval.Interval) Value {
	return NewAnnNull(g.Fresh(), iv)
}

// FreshNull returns a fresh plain labeled null.
func (g *NullGen) FreshNull() Value { return NewNull(g.Fresh()) }

// Last returns the most recently allocated family id (0 when the
// generator has never been used). Together with NullGenAt it lets a
// finished chase snapshot its null-numbering position so a later
// incremental run can continue the same sequence.
func (g *NullGen) Last() uint64 { return g.last.Load() }

// NullGenAt returns a generator whose next Fresh call yields last+1 —
// the continuation point of a generator that stopped at last. Each call
// returns an independent generator, so divergent continuations (two
// deltas applied to the same base) do not interfere.
func NullGenAt(last uint64) *NullGen {
	g := &NullGen{}
	g.last.Store(last)
	return g
}
