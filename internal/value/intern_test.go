package value

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/interval"
)

// randValue draws a value of a random kind (all four kinds covered).
func randValue(r *rand.Rand) Value {
	s := interval.Time(r.Intn(100))
	iv := interval.MustNew(s, s+1+interval.Time(r.Intn(50)))
	switch r.Intn(4) {
	case 0:
		return NewConst(string(rune('a'+r.Intn(26))) + string(rune('a'+r.Intn(26))))
	case 1:
		if r.Intn(2) == 0 {
			return NewNull(uint64(r.Intn(200) + 1))
		}
		return NewProjectedNull(uint64(r.Intn(200)+1), s)
	case 2:
		return NewAnnNull(uint64(r.Intn(200)+1), iv)
	default:
		return NewInterval(iv)
	}
}

// TestNewInternerFrom asserts the seeding contract: the clone answers
// identically for every seeded value, diverges independently afterwards,
// and never writes back into its base.
func TestNewInternerFrom(t *testing.T) {
	base := NewInterner()
	r := rand.New(rand.NewSource(7))
	var seeded []Value
	for i := 0; i < 500; i++ {
		v := randValue(r)
		base.Intern(v)
		seeded = append(seeded, v)
	}
	baseLen := base.Len()
	cl := NewInternerFrom(base)
	if cl.Len() != baseLen {
		t.Fatalf("clone has %d values, base %d", cl.Len(), baseLen)
	}
	for _, v := range seeded {
		want, _ := base.Lookup(v)
		got, ok := cl.Lookup(v)
		if !ok || got != want {
			t.Fatalf("clone lookup(%v) = %v/%v, base has %v", v, got, ok, want)
		}
		if cl.Resolve(got) != v {
			t.Fatalf("clone resolve(%v) != %v", got, v)
		}
	}
	// Divergence: new values in the clone do not leak into the base.
	fresh := NewConst("only-in-clone-after-seeding")
	if _, ok := base.Lookup(fresh); ok {
		t.Fatal("test value already in base")
	}
	cl.Intern(fresh)
	if _, ok := base.Lookup(fresh); ok {
		t.Fatal("interning into the clone mutated the base")
	}
	if base.Len() != baseLen {
		t.Fatalf("base grew %d -> %d", baseLen, base.Len())
	}
}

func TestInternRoundTrip(t *testing.T) {
	in := NewInterner()
	r := rand.New(rand.NewSource(5))
	seen := make(map[Value]ID)
	for i := 0; i < 10_000; i++ {
		v := randValue(r)
		id := in.Intern(v)
		if got := in.Resolve(id); got != v {
			t.Fatalf("resolve(intern(%v)) = %v", v, got)
		}
		if got := in.KindOf(id); got != v.Kind() {
			t.Fatalf("KindOf(%v) = %v, want %v", v, got, v.Kind())
		}
		if prev, ok := seen[v]; ok && prev != id {
			t.Fatalf("%v interned to both %d and %d", v, prev, id)
		}
		seen[v] = id
		if got, ok := in.Lookup(v); !ok || got != id {
			t.Fatalf("Lookup(%v) = %d,%v, want %d,true", v, got, ok, id)
		}
	}
	if in.Len() != len(seen) {
		t.Fatalf("Len = %d, want %d distinct values", in.Len(), len(seen))
	}
}

func TestInternFourKindsExplicit(t *testing.T) {
	in := NewInterner()
	iv := interval.MustNew(2, 7)
	for _, v := range []Value{
		NewConst("IBM"),
		NewNull(3),
		NewProjectedNull(3, 5),
		NewAnnNull(3, iv),
		NewInterval(iv),
	} {
		if got := in.Resolve(in.Intern(v)); got != v {
			t.Fatalf("round trip of %v (kind %v) = %v", v, v.Kind(), got)
		}
	}
	// The five values above are pairwise distinct.
	if in.Len() != 5 {
		t.Fatalf("Len = %d, want 5", in.Len())
	}
}

func TestLookupMiss(t *testing.T) {
	in := NewInterner()
	in.Intern(NewConst("x"))
	if _, ok := in.Lookup(NewConst("y")); ok {
		t.Fatal("Lookup of never-interned value succeeded")
	}
}

func TestInternAllResolveAll(t *testing.T) {
	in := NewInterner()
	tup := []Value{NewConst("a"), NewNull(1), NewInterval(interval.MustNew(0, 3))}
	ids := in.InternAll(nil, tup)
	if len(ids) != len(tup) {
		t.Fatalf("InternAll produced %d ids", len(ids))
	}
	back := in.ResolveAll(nil, ids)
	for i := range tup {
		if back[i] != tup[i] {
			t.Fatalf("ResolveAll[%d] = %v, want %v", i, back[i], tup[i])
		}
	}
}

// TestInternConcurrent exercises concurrent interning of an overlapping
// value set from many goroutines (run under -race): every goroutine must
// observe the same ID for the same value, and resolution must agree.
func TestInternConcurrent(t *testing.T) {
	in := NewInterner()
	const workers = 8
	const perWorker = 4000
	results := make([]map[Value]ID, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Overlapping seeds: workers race on mostly the same values.
			r := rand.New(rand.NewSource(int64(w % 2)))
			got := make(map[Value]ID)
			for i := 0; i < perWorker; i++ {
				v := randValue(r)
				id := in.Intern(v)
				if prev, ok := got[v]; ok && prev != id {
					t.Errorf("worker %d: %v interned to %d then %d", w, v, prev, id)
					return
				}
				got[v] = id
				if res := in.Resolve(id); res != v {
					t.Errorf("worker %d: resolve mismatch for %v", w, v)
					return
				}
				in.KindOf(id)
				in.Len()
			}
			results[w] = got
		}(w)
	}
	wg.Wait()
	// Cross-worker agreement.
	merged := make(map[Value]ID)
	for w, got := range results {
		for v, id := range got {
			if prev, ok := merged[v]; ok && prev != id {
				t.Fatalf("worker %d: %v has id %d, another worker saw %d", w, v, id, prev)
			}
			merged[v] = id
		}
	}
}

func TestHashIDsDistinguishesOrder(t *testing.T) {
	a := []ID{1, 2, 3}
	b := []ID{3, 2, 1}
	if HashIDs(a) == HashIDs(b) {
		t.Fatal("hash ignores order")
	}
	if HashIDs(a) != HashIDs([]ID{1, 2, 3}) {
		t.Fatal("hash not deterministic")
	}
}
