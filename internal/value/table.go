package value

import (
	"fmt"

	"repro/internal/interval"
)

// Values returns a copy of the interner's value table in ID order:
// Values()[i] is the value whose issued ID is i. Together with
// NewInternerFromValues it is the serialization boundary of the interner:
// persisting the table and rebuilding from it reproduces the exact ID
// assignment, so persisted ID columns remain valid against the rebuilt
// interner.
func (in *Interner) Values() []Value {
	in.mu.RLock()
	out := append(make([]Value, 0, len(in.vals)), in.vals...)
	in.mu.RUnlock()
	return out
}

// NewInternerFromValues rebuilds an interner whose value table is exactly
// vals: the value at index i gets ID i, reproducing the dense assignment
// of the interner that produced the table (IDs are issued in table
// order). It rejects tables that no interner could have produced — an
// entry of invalid kind, or two entries interning equal — so corrupt
// persisted tables surface as errors instead of corrupt stores.
func NewInternerFromValues(vals []Value) (*Interner, error) {
	if len(vals) >= int(NoID) {
		return nil, fmt.Errorf("value: table of %d values overflows the ID space", len(vals))
	}
	// Count kinds up front and size each per-kind map exactly: a bulk
	// rebuild otherwise spends most of its time growing maps through
	// their doublings (the warm-start load path rebuilds tables of tens
	// of thousands of values in one call).
	var nConst, nNull, nAnn, nIv int
	for _, v := range vals {
		switch v.K {
		case Const:
			nConst++
		case Null:
			nNull++
		case AnnNull:
			nAnn++
		case IntervalVal:
			nIv++
		}
	}
	in := &Interner{
		consts: make(map[string]ID, nConst),
		nulls:  make(map[nullKey]ID, nNull),
		anns:   make(map[annKey]ID, nAnn),
		ivs:    make(map[interval.Interval]ID, nIv),
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	in.vals = make([]Value, 0, len(vals))
	in.kinds = make([]Kind, 0, len(vals))
	for i, v := range vals {
		switch v.K {
		case Const, Null, AnnNull, IntervalVal:
		default:
			return nil, fmt.Errorf("value: table entry %d has invalid kind %d", i, v.K)
		}
		if id, dup := in.lookupLocked(v); dup {
			return nil, fmt.Errorf("value: table entries %d and %d intern the same value %v", id, i, v)
		}
		in.storeLocked(v, ID(i))
		in.vals = append(in.vals, v)
		in.kinds = append(in.kinds, v.K)
	}
	return in, nil
}
