package snapshot

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/interval"
	"repro/internal/storage"
	"repro/internal/value"
)

// testStore builds a deterministic pseudo-random frozen store exercising
// every value kind, hash-collision buckets (many tuples, few distinct
// constants), multiple arity segments, and — via egd-style substitution —
// dead rows in the validity bitmap.
func testStore(seed int64) *storage.Store {
	rng := rand.New(rand.NewSource(seed))
	st := storage.NewStore()
	rels := []string{"E", "S", "R"}
	iv := func() interval.Interval {
		s := interval.Time(rng.Intn(50))
		return interval.Interval{Start: s, End: s + 1 + interval.Time(rng.Intn(20))}
	}
	anyVal := func() value.Value {
		switch rng.Intn(4) {
		case 0:
			return value.NewConst(fmt.Sprintf("c%d", rng.Intn(30)))
		case 1:
			return value.NewNull(uint64(1 + rng.Intn(8)))
		case 2:
			return value.NewAnnNull(uint64(1+rng.Intn(8)), iv())
		default:
			return value.NewProjectedNull(uint64(1+rng.Intn(8)), interval.Time(rng.Intn(40)))
		}
	}
	n := 150 + rng.Intn(150)
	for i := 0; i < n; i++ {
		rel := rels[rng.Intn(len(rels))]
		tup := []value.Value{anyVal(), anyVal(), value.NewInterval(iv())}
		if rng.Intn(4) == 0 { // a second arity segment per relation
			tup = append([]value.Value{value.NewConst("x")}, tup...)
		}
		st.Insert(rel, tup)
	}
	// Collapse null families pairwise, the egd shape: rows rewriting into
	// an existing duplicate die, leaving holes in the validity bitmap.
	for fam := uint64(2); fam <= 8; fam += 2 {
		from, ok1 := st.Interner().Lookup(value.NewNull(fam))
		to, ok2 := st.Interner().Lookup(value.NewNull(fam - 1))
		if ok1 && ok2 {
			st.SubstituteIDs([]value.ID{from}, func(id value.ID) value.ID {
				if id == from {
					return to
				}
				return id
			})
		}
	}
	st.Freeze()
	return st
}

// encode writes snap to memory, failing the test on error.
func encode(t *testing.T, snap Snapshot) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, snap); err != nil {
		t.Fatalf("Write: %v", err)
	}
	return buf.Bytes()
}

// checkSameStore asserts got reproduces want exactly: physical row space,
// live tuple set, dead-row count, and the interner table with identical
// ID assignment.
func checkSameStore(t *testing.T, want, got *storage.Store) {
	t.Helper()
	if !got.Frozen() {
		t.Fatalf("loaded store is not frozen")
	}
	if w, g := want.String(), got.String(); w != g {
		t.Fatalf("loaded store differs:\nwant:\n%s\ngot:\n%s", w, g)
	}
	if !reflect.DeepEqual(want.Relations(), got.Relations()) {
		t.Fatalf("relations: want %v, got %v", want.Relations(), got.Relations())
	}
	for _, name := range want.Relations() {
		w, g := want.Rel(name), got.Rel(name)
		if w.NumRows() != g.NumRows() || w.Len() != g.Len() {
			t.Fatalf("relation %q: rows %d/%d live %d/%d", name, g.NumRows(), w.NumRows(), g.Len(), w.Len())
		}
	}
	if !reflect.DeepEqual(want.Interner().Values(), got.Interner().Values()) {
		t.Fatalf("interner tables differ")
	}
}

func TestRoundTripSeeds(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			st := testStore(seed)
			meta := Meta{Kind: "instance", Schema: []RelSig{{Name: "E", Attrs: []string{"a", "b"}}}}
			data := encode(t, Snapshot{Store: st, Meta: meta})

			f, err := OpenBytes(data)
			if err != nil {
				t.Fatalf("OpenBytes: %v", err)
			}
			if f.HasSource() {
				t.Fatalf("unexpected source group")
			}
			if got := f.Meta(); got.Kind != "instance" || len(got.Schema) != 1 || got.Schema[0].Name != "E" {
				t.Fatalf("meta round-trip: %+v", got)
			}
			loaded, err := f.Store()
			if err != nil {
				t.Fatalf("Store: %v", err)
			}
			checkSameStore(t, st, loaded)

			// Re-encoding the loaded store must reproduce the file byte for
			// byte: the strongest form of round-trip stability.
			again := encode(t, Snapshot{Store: loaded, Meta: meta})
			if !bytes.Equal(data, again) {
				t.Fatalf("re-encoded snapshot differs from original (%d vs %d bytes)", len(again), len(data))
			}
		})
	}
}

func TestRoundTripFileMmap(t *testing.T) {
	st := testStore(42)
	src := testStore(43)
	path := filepath.Join(t.TempDir(), "s.snap")
	if err := WriteFile(path, Snapshot{Store: st, Source: src, Meta: Meta{Kind: "solution"}}); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	f, err := Open(path)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if !f.HasSource() {
		t.Fatalf("source group missing")
	}
	loaded, err := f.Store()
	if err != nil {
		t.Fatalf("Store: %v", err)
	}
	loadedSrc, err := f.SourceStore()
	if err != nil {
		t.Fatalf("SourceStore: %v", err)
	}
	checkSameStore(t, st, loaded)
	checkSameStore(t, src, loadedSrc)
	// Memoized materialization: same store back.
	if again, _ := f.Store(); again != loaded {
		t.Fatalf("Store not memoized")
	}
	loaded, loadedSrc = nil, nil
	if err := f.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

func TestSourceStoreAbsent(t *testing.T) {
	data := encode(t, Snapshot{Store: testStore(7)})
	f, err := OpenBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.SourceStore(); err != ErrNoSource {
		t.Fatalf("SourceStore on sourceless snapshot: %v", err)
	}
}

func TestWriteRejectsMutableStore(t *testing.T) {
	st := storage.NewStore()
	st.Insert("E", []value.Value{value.NewConst("a")})
	if err := Write(&bytes.Buffer{}, Snapshot{Store: st}); err == nil {
		t.Fatal("Write accepted a mutable store")
	}
	if err := Write(&bytes.Buffer{}, Snapshot{Store: nil}); err == nil {
		t.Fatal("Write accepted a nil store")
	}
	frozen := testStore(1)
	if err := Write(&bytes.Buffer{}, Snapshot{Store: frozen, Source: st}); err == nil {
		t.Fatal("Write accepted a mutable source store")
	}
}

func TestEmptyStoreRoundTrip(t *testing.T) {
	st := storage.NewStore()
	st.Freeze()
	data := encode(t, Snapshot{Store: st})
	f, err := OpenBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := f.Store()
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Size() != 0 || !loaded.Frozen() {
		t.Fatalf("empty store round-trip: size %d frozen %v", loaded.Size(), loaded.Frozen())
	}
}

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "s.snap")
	if err := WriteFile(path, Snapshot{Store: testStore(3)}); err != nil {
		t.Fatal(err)
	}
	// Overwrite with different contents; no *.tmp litter either way.
	if err := WriteFile(path, Snapshot{Store: testStore(4)}); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 || ents[0].Name() != "s.snap" {
		t.Fatalf("directory litter: %v", ents)
	}
	f, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Store(); err != nil {
		t.Fatal(err)
	}
}
