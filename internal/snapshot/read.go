package snapshot

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"math"
	"runtime"
	"sync"
	"unsafe"

	"repro/internal/interval"
	"repro/internal/storage"
	"repro/internal/value"
)

// hostLittleEndian gates the zero-copy array views: on a little-endian
// host the on-disk u32/u64 arrays are exactly the in-memory layout and
// can alias the mapping; elsewhere the decoder falls back to copying.
var hostLittleEndian = func() bool {
	var probe uint16 = 1
	return *(*byte)(unsafe.Pointer(&probe)) == 1
}()

// section is one parsed table-of-contents entry.
type section struct {
	kind uint32
	name string
	off  uint64
	len  uint64
	crc  uint32
}

// File is an opened snapshot. Open parses only the header, footer, table
// of contents, and meta section — a few hundred bytes regardless of file
// size; relation and interner payloads are checksummed and decoded only
// when Store or SourceStore materializes them (once; the result is
// memoized), and under mmap the column bytes themselves are faulted in by
// the OS on first touch. A File is safe for concurrent use after Open.
type File struct {
	m      *mapping
	meta   Meta
	secs   []section
	hasSrc bool

	mu       sync.Mutex
	store    *storage.Store
	storeErr error
	storeSet bool
	src      *storage.Store
	srcErr   error
	srcSet   bool
}

// Open opens a snapshot file. On linux the file is mapped read-only with
// syscall.Mmap; elsewhere it is read into memory. The mapping is unmapped
// by Close, or — because loaded stores pin the File — by a runtime
// cleanup once neither the File nor any store loaded from it is
// reachable.
func Open(path string) (*File, error) {
	m, err := mapFile(path)
	if err != nil {
		return nil, fmt.Errorf("snapshot: open %s: %w", path, err)
	}
	f, err := newFile(m)
	if err != nil {
		m.close()
		return nil, fmt.Errorf("snapshot: open %s: %w", path, err)
	}
	if m.mapped {
		runtime.AddCleanup(f, func(mp *mapping) { mp.close() }, m)
	}
	return f, nil
}

// OpenBytes parses an in-memory snapshot. The data is aliased, not
// copied; the caller must not mutate it while the File or any store
// loaded from it is in use.
func OpenBytes(data []byte) (*File, error) {
	f, err := newFile(&mapping{data: data})
	if err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	return f, nil
}

// Close releases the mapping. Stores previously returned by Store or
// SourceStore alias the mapped memory and must no longer be used; callers
// that hand loaded stores onward should skip Close and let the runtime
// cleanup unmap when the stores are dropped.
func (f *File) Close() error { return f.m.close() }

// Meta returns the parsed meta section.
func (f *File) Meta() Meta { return f.meta }

// HasSource reports whether the snapshot embeds a source store group.
func (f *File) HasSource() bool { return f.hasSrc }

// Store materializes the main store: per-section checksum verification,
// interner rebuild, and storage.NewFrozenStore over array views into the
// mapping. The result is memoized; the returned store is frozen,
// shareable, and pins the File.
func (f *File) Store() (*storage.Store, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.storeSet {
		f.store, f.storeErr = f.materialize(secInterner, secRelation)
		f.storeSet = true
	}
	return f.store, f.storeErr
}

// SourceStore materializes the embedded source group, or ErrNoSource when
// the snapshot has none.
func (f *File) SourceStore() (*storage.Store, error) {
	if !f.hasSrc {
		return nil, ErrNoSource
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.srcSet {
		f.src, f.srcErr = f.materialize(secSrcInterner, secSrcRelation)
		f.srcSet = true
	}
	return f.src, f.srcErr
}

// newFile validates the envelope — magic, version, footer, toc checksum,
// section bounds — and parses the meta section. Payload checksums are
// deferred to materialization.
func newFile(m *mapping) (*File, error) {
	data := m.bytes()
	if len(data) < headerLen+footerLen {
		return nil, corruptf("%d bytes is shorter than header+footer", len(data))
	}
	if !bytes.Equal(data[:8], magic[:]) {
		return nil, corruptf("bad magic %q", data[:8])
	}
	if v := binary.LittleEndian.Uint32(data[8:]); v != version {
		return nil, corruptf("unsupported format version %d (want %d)", v, version)
	}
	foot := data[len(data)-footerLen:]
	if tm := binary.LittleEndian.Uint32(foot[20:]); tm != tailMagic {
		return nil, corruptf("bad tail magic %#x (truncated file?)", tm)
	}
	tocOff := binary.LittleEndian.Uint64(foot[0:])
	tocLen := binary.LittleEndian.Uint64(foot[8:])
	tocCRC := binary.LittleEndian.Uint32(foot[16:])
	end := uint64(len(data) - footerLen)
	if tocOff < headerLen || tocOff > end || end-tocOff != tocLen {
		return nil, corruptf("toc bounds [%d,+%d) inconsistent with file size %d", tocOff, tocLen, len(data))
	}
	tb := data[tocOff:end]
	if got := crc32.Checksum(tb, castagnoli); got != tocCRC {
		return nil, corruptf("toc checksum mismatch (%#x, want %#x)", got, tocCRC)
	}
	secs, err := parseTOC(tb, tocOff)
	if err != nil {
		return nil, err
	}

	f := &File{m: m, secs: secs}
	var metaSec *section
	counts := map[uint32]int{}
	names := map[[2]uint32]map[string]bool{}
	for i := range secs {
		s := &secs[i]
		counts[s.kind]++
		switch s.kind {
		case secMeta:
			metaSec = s
		case secRelation, secSrcRelation:
			key := [2]uint32{s.kind, 0}
			if names[key] == nil {
				names[key] = map[string]bool{}
			}
			if names[key][s.name] {
				return nil, corruptf("two %q sections for relation %q", kindName(s.kind), s.name)
			}
			names[key][s.name] = true
		}
	}
	if counts[secMeta] != 1 || counts[secInterner] != 1 {
		return nil, corruptf("want exactly one meta and one interner section, have %d and %d", counts[secMeta], counts[secInterner])
	}
	if counts[secSrcInterner] > 1 {
		return nil, corruptf("%d source interner sections", counts[secSrcInterner])
	}
	if counts[secSrcRelation] > 0 && counts[secSrcInterner] == 0 {
		return nil, corruptf("source relations without a source interner")
	}
	f.hasSrc = counts[secSrcInterner] == 1

	body, err := sectionBody(data, *metaSec)
	if err != nil {
		return nil, err
	}
	if err := json.Unmarshal(body, &f.meta); err != nil {
		return nil, corruptf("meta section: %v", err)
	}
	return f, nil
}

// parseTOC decodes the table of contents, bounds-checking every entry
// against the payload region [headerLen, tocOff).
func parseTOC(tb []byte, tocOff uint64) ([]section, error) {
	r := &reader{b: tb}
	count := r.u32()
	if uint64(count) > uint64(len(tb))/28 {
		return nil, corruptf("toc claims %d sections in %d bytes", count, len(tb))
	}
	secs := make([]section, 0, count)
	for i := uint32(0); i < count; i++ {
		var s section
		s.kind = r.u32()
		s.off = r.u64()
		s.len = r.u64()
		s.crc = r.u32()
		nameLen := r.u32()
		name := r.take(uint64(nameLen))
		if r.err != nil {
			return nil, corruptf("toc entry %d: %v", i, r.err)
		}
		s.name = string(name)
		switch s.kind {
		case secMeta, secInterner, secRelation, secSrcInterner, secSrcRelation:
		default:
			return nil, corruptf("toc entry %d: unknown section kind %d", i, s.kind)
		}
		if s.off%8 != 0 || s.off < headerLen || s.len > tocOff || s.off > tocOff-s.len {
			return nil, corruptf("toc entry %d: section bounds [%d,+%d) outside payload region", i, s.off, s.len)
		}
		secs = append(secs, s)
	}
	if r.off != len(tb) {
		return nil, corruptf("%d trailing bytes after toc entries", len(tb)-r.off)
	}
	return secs, nil
}

// sectionBody returns a section's payload after verifying its checksum.
func sectionBody(data []byte, s section) ([]byte, error) {
	body := data[s.off : s.off+s.len]
	if got := crc32.Checksum(body, castagnoli); got != s.crc {
		return nil, corruptf("%s section %q: checksum mismatch (%#x, want %#x)", kindName(s.kind), s.name, got, s.crc)
	}
	return body, nil
}

// materialize decodes one store group (interner + relations) into a
// frozen store whose columns alias the mapping.
func (f *File) materialize(internKind, relKind uint32) (*storage.Store, error) {
	data := f.m.bytes()
	if data == nil {
		return nil, fmt.Errorf("snapshot: use of closed File")
	}
	var in *value.Interner
	rels := make(map[string]storage.RelDump)
	for _, s := range f.secs {
		switch s.kind {
		case internKind:
			body, err := sectionBody(data, s)
			if err != nil {
				return nil, err
			}
			if in, err = decodeInterner(body); err != nil {
				return nil, err
			}
		case relKind:
			body, err := sectionBody(data, s)
			if err != nil {
				return nil, err
			}
			d, err := decodeRel(body)
			if err != nil {
				return nil, fmt.Errorf("relation %q: %w", s.name, err)
			}
			rels[s.name] = d
		}
	}
	st, err := storage.NewFrozenStore(in, rels)
	if err != nil {
		// Checksums passed but the contents are structurally inconsistent:
		// still a corrupt file, never a panic.
		return nil, fmt.Errorf("snapshot: %w: %v", ErrCorrupt, err)
	}
	if f.m.mapped {
		st.Pin(f)
	}
	return st, nil
}

// decodeInterner rebuilds the value table. Constant strings are copied
// out of the mapping (value.Value holds them long-term); everything else
// is fixed-width.
func decodeInterner(b []byte) (*value.Interner, error) {
	r := &reader{b: b}
	count := r.u64()
	// Every record is at least 5 bytes (kind + const length), so a count
	// beyond len/5 cannot be honest — reject before allocating.
	if count > uint64(len(b))/5 {
		return nil, corruptf("interner claims %d values in %d bytes", count, len(b))
	}
	vals := make([]value.Value, 0, count)
	// One string copy of the whole section serves every constant:
	// substrings of a Go string share its backing array, so each Const
	// below is an allocation-free slice of this copy instead of its own
	// heap string. The section is a fraction of the snapshot and the
	// interner keeps it alive anyway through the constants themselves.
	str := string(b)
	for i := uint64(0); i < count; i++ {
		switch k := value.Kind(r.u8()); k {
		case value.Const:
			n := r.u32()
			off := r.off
			r.take(uint64(n))
			if r.err == nil {
				vals = append(vals, value.NewConst(str[off:off+int(n)]))
			}
		case value.Null:
			fam := r.u64()
			tp := interval.Time(r.u64())
			vals = append(vals, value.Value{K: value.Null, ID: fam, TP: tp})
		case value.AnnNull:
			fam := r.u64()
			iv := interval.Interval{Start: interval.Time(r.u64()), End: interval.Time(r.u64())}
			vals = append(vals, value.NewAnnNull(fam, iv))
		case value.IntervalVal:
			iv := interval.Interval{Start: interval.Time(r.u64()), End: interval.Time(r.u64())}
			vals = append(vals, value.NewInterval(iv))
		default:
			return nil, corruptf("interner value %d: unknown kind %d", i, k)
		}
		if r.err != nil {
			return nil, corruptf("interner value %d: %v", i, r.err)
		}
	}
	if r.off != len(b) {
		return nil, corruptf("%d trailing bytes after interner table", len(b)-r.off)
	}
	in, err := value.NewInternerFromValues(vals)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return in, nil
}

// decodeRel decodes one relation payload into a storage.RelDump whose
// column and bitmap slices view the payload in place (zero-copy on
// little-endian hosts); the row-number arrays are widened to []int.
// Structural validation beyond shape — row coverage, ID ranges, live
// bits — happens in storage.NewFrozenStore.
func decodeRel(b []byte) (storage.RelDump, error) {
	var d storage.RelDump
	r := &reader{b: b}
	numRows := r.u64()
	if numRows > math.MaxInt32 {
		return d, corruptf("row count %d out of range", numRows)
	}
	liveWords := r.u64()
	if liveWords != (numRows+63)/64 {
		return d, corruptf("validity bitmap of %d words for %d rows", liveWords, numRows)
	}
	d.NumRows = int(numRows)
	d.Live = r.u64view(liveWords)
	segCount := r.u64()
	if segCount > uint64(len(b))/16 {
		return d, corruptf("%d segments in %d bytes", segCount, len(b))
	}
	d.Segments = make([]storage.SegmentDump, 0, segCount)
	for i := uint64(0); i < segCount; i++ {
		arity := r.u64()
		nrows := r.u64()
		if r.err != nil {
			return d, corruptf("segment %d: %v", i, r.err)
		}
		if arity < 1 || arity > uint64(len(b))/4 {
			return d, corruptf("segment %d: arity %d", i, arity)
		}
		if nrows > uint64(len(b))/4 {
			return d, corruptf("segment %d: %d rows in %d bytes", i, nrows, len(b))
		}
		sg := storage.SegmentDump{Arity: int(arity)}
		rows32 := r.u32view(nrows)
		r.pad8()
		sg.Rows = make([]int, len(rows32))
		for j, row := range rows32 {
			sg.Rows[j] = int(row)
		}
		sg.Cols = make([][]value.ID, arity)
		for p := range sg.Cols {
			sg.Cols[p] = idView(r.u32view(nrows))
			r.pad8()
		}
		if r.err != nil {
			return d, corruptf("segment %d: %v", i, r.err)
		}
		d.Segments = append(d.Segments, sg)
	}
	if r.err != nil {
		return d, corruptf("%v", r.err)
	}
	if r.off != len(b) {
		return d, corruptf("%d trailing bytes after segments", len(b)-r.off)
	}
	return d, nil
}

// idView reinterprets a []uint32 as []value.ID (same underlying type).
func idView(u []uint32) []value.ID {
	if len(u) == 0 {
		return nil
	}
	return unsafe.Slice((*value.ID)(unsafe.Pointer(&u[0])), len(u))
}

// reader is a bounds-checked cursor over one byte region. Every accessor
// checks remaining length and latches the first error; callers test
// r.err once per record instead of after every field.
type reader struct {
	b   []byte
	off int
	err error
}

func (r *reader) fail(need uint64) {
	if r.err == nil {
		r.err = fmt.Errorf("need %d bytes at offset %d, have %d", need, r.off, len(r.b)-r.off)
	}
}

func (r *reader) take(n uint64) []byte {
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.b)-r.off) {
		r.fail(n)
		return nil
	}
	p := r.b[r.off : r.off+int(n)]
	r.off += int(n)
	return p
}

func (r *reader) u8() uint8 {
	p := r.take(1)
	if p == nil {
		return 0
	}
	return p[0]
}

func (r *reader) u32() uint32 {
	p := r.take(4)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(p)
}

func (r *reader) u64() uint64 {
	p := r.take(8)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(p)
}

// pad8 skips to the next 8-byte boundary.
func (r *reader) pad8() {
	if rem := r.off % 8; rem != 0 {
		r.take(uint64(8 - rem))
	}
}

// u32view returns n uint32s, aliasing the region when the host is
// little-endian and the bytes are 4-aligned, copying otherwise.
func (r *reader) u32view(n uint64) []uint32 {
	if n > uint64(len(r.b)) { // pre-multiply overflow guard
		r.fail(n)
		return nil
	}
	p := r.take(4 * n)
	if p == nil || n == 0 {
		return nil
	}
	if hostLittleEndian && uintptr(unsafe.Pointer(&p[0]))%4 == 0 {
		return unsafe.Slice((*uint32)(unsafe.Pointer(&p[0])), n)
	}
	out := make([]uint32, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(p[4*i:])
	}
	return out
}

// u64view is u32view for uint64 words (8-byte alignment required to
// alias).
func (r *reader) u64view(n uint64) []uint64 {
	if n > uint64(len(r.b)) { // pre-multiply overflow guard
		r.fail(n)
		return nil
	}
	p := r.take(8 * n)
	if p == nil || n == 0 {
		return nil
	}
	if hostLittleEndian && uintptr(unsafe.Pointer(&p[0]))%8 == 0 {
		return unsafe.Slice((*uint64)(unsafe.Pointer(&p[0])), n)
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(p[8*i:])
	}
	return out
}

// kindName names a section kind for error messages.
func kindName(kind uint32) string {
	switch kind {
	case secMeta:
		return "meta"
	case secInterner:
		return "interner"
	case secRelation:
		return "relation"
	case secSrcInterner:
		return "source interner"
	case secSrcRelation:
		return "source relation"
	}
	return fmt.Sprintf("kind-%d", kind)
}

// mapping owns the backing bytes of a File: either an mmap region
// (mapped=true) or plain heap memory. close is idempotent and safe to
// race with a runtime cleanup.
type mapping struct {
	mu     sync.Mutex
	data   []byte
	mapped bool
	closed bool
}

func (m *mapping) bytes() []byte {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil
	}
	return m.data
}

func (m *mapping) close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil
	}
	m.closed = true
	data := m.data
	m.data = nil
	if m.mapped && data != nil {
		return munmap(data)
	}
	return nil
}
