package snapshot

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// FuzzOpen drives arbitrary bytes through the full decode path: envelope
// parse, checksum verification, interner rebuild, and store
// materialization. The invariant is purely "no panic, no silent
// corruption": every outcome must be a clean error or a valid store.
// Seeds cover the valid format and each envelope field; the checked-in
// corpus under testdata/fuzz/FuzzOpen extends them (regenerate with
// SNAPSHOT_WRITE_CORPUS=1 go test -run TestWriteFuzzCorpus).
func FuzzOpen(f *testing.F) {
	valid := encodeF(f, Snapshot{Store: testStore(5), Meta: Meta{Kind: "instance"}})
	withSrc := encodeF(f, Snapshot{Store: testStore(6), Source: testStore(7)})
	f.Add(valid)
	f.Add(withSrc)
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:headerLen])
	f.Add(append([]byte("NOTASNAP"), valid[8:]...))
	badVer := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint32(badVer[8:], 99)
	f.Add(badVer)
	f.Add(bytes.Repeat([]byte{0xff}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		file, err := OpenBytes(data)
		if err != nil {
			return
		}
		if st, err := file.Store(); err == nil {
			_ = st.String() // a successfully loaded store must be coherent
		}
		if file.HasSource() {
			if st, err := file.SourceStore(); err == nil {
				_ = st.String()
			}
		}
	})
}

// encodeF is encode for fuzz targets.
func encodeF(f *testing.F, snap Snapshot) []byte {
	f.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, snap); err != nil {
		f.Fatalf("Write: %v", err)
	}
	return buf.Bytes()
}

// TestWriteFuzzCorpus regenerates the checked-in seed corpus when
// SNAPSHOT_WRITE_CORPUS=1 is set; otherwise it only verifies the corpus
// files are present and parseable by the fuzz harness format.
func TestWriteFuzzCorpus(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzOpen")
	if os.Getenv("SNAPSHOT_WRITE_CORPUS") == "" {
		ents, err := os.ReadDir(dir)
		if err != nil || len(ents) == 0 {
			t.Fatalf("seed corpus missing under %s: %v", dir, err)
		}
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, Snapshot{Store: testStore(5), Meta: Meta{Kind: "instance"}}); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()
	seeds := map[string][]byte{
		"valid":       valid,
		"truncated":   valid[:len(valid)/3],
		"bad_magic":   append([]byte("NOTASNAP"), valid[8:]...),
		"header_only": valid[:headerLen],
	}
	for name, data := range seeds {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
