package snapshot

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"repro/internal/storage"
	"repro/internal/value"
)

// Snapshot is what Write persists: a frozen store, an optional frozen
// source store (so a solution snapshot can resume incremental sessions),
// and the meta section.
type Snapshot struct {
	Store  *storage.Store
	Source *storage.Store
	Meta   Meta
}

// Write streams snap to w in the format described in the package comment
// and docs/SNAPSHOT.md. Both stores must be frozen: the writer serializes
// their physical layout (storage.Rel.Dump), which is only stable — and
// only legal to read — once frozen. Each section is written exactly once
// through a buffered writer with a running CRC-32C; the table of contents
// and footer are emitted last, so Write never seeks and w can be a plain
// pipe or socket.
func Write(w io.Writer, snap Snapshot) error {
	if snap.Store == nil {
		return fmt.Errorf("snapshot: Write: nil store")
	}
	if !snap.Store.Frozen() {
		return fmt.Errorf("snapshot: Write: store is not frozen")
	}
	if snap.Source != nil && !snap.Source.Frozen() {
		return fmt.Errorf("snapshot: Write: source store is not frozen")
	}
	metaJSON, err := json.Marshal(snap.Meta)
	if err != nil {
		return fmt.Errorf("snapshot: Write: meta: %w", err)
	}

	cw := &countingWriter{w: bufio.NewWriterSize(w, 1<<16)}
	var hdr [headerLen]byte
	copy(hdr[:], magic[:])
	binary.LittleEndian.PutUint32(hdr[8:], version)
	cw.write(hdr[:])

	var toc []tocEntry
	section := func(kind uint32, name string, body func(*sectionWriter) error) error {
		cw.align8()
		sw := &sectionWriter{cw: cw}
		off := cw.n
		if err := body(sw); err != nil {
			return err
		}
		toc = append(toc, tocEntry{kind: kind, name: name, off: off, len: cw.n - off, crc: sw.crc})
		return cw.err
	}

	if err := section(secMeta, "", func(sw *sectionWriter) error {
		sw.bytes(metaJSON)
		return nil
	}); err != nil {
		return err
	}
	if err := writeStore(section, snap.Store, secInterner, secRelation); err != nil {
		return err
	}
	if snap.Source != nil {
		if err := writeStore(section, snap.Source, secSrcInterner, secSrcRelation); err != nil {
			return err
		}
	}

	tocOff := cw.n
	tb := encodeTOC(toc)
	cw.write(tb)
	var foot [footerLen]byte
	binary.LittleEndian.PutUint64(foot[0:], tocOff)
	binary.LittleEndian.PutUint64(foot[8:], uint64(len(tb)))
	binary.LittleEndian.PutUint32(foot[16:], crc32.Checksum(tb, castagnoli))
	binary.LittleEndian.PutUint32(foot[20:], tailMagic)
	cw.write(foot[:])
	if cw.err != nil {
		return fmt.Errorf("snapshot: Write: %w", cw.err)
	}
	return cw.w.Flush()
}

// WriteFile writes snap to path atomically: the bytes land in a temp file
// in the same directory, synced and renamed over path, so readers never
// observe a half-written snapshot and a crash leaves at worst a stale
// *.tmp behind.
func WriteFile(path string, snap Snapshot) error {
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	tmp, err := os.CreateTemp(dir, base+".*.tmp")
	if err != nil {
		return fmt.Errorf("snapshot: WriteFile: %w", err)
	}
	defer os.Remove(tmp.Name())
	if err := Write(tmp, snap); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("snapshot: WriteFile: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("snapshot: WriteFile: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("snapshot: WriteFile: %w", err)
	}
	return nil
}

// writeStore emits one store group: its interner table, then one section
// per relation in lexicographic name order.
func writeStore(section func(uint32, string, func(*sectionWriter) error) error, st *storage.Store, internKind, relKind uint32) error {
	if err := section(internKind, "", func(sw *sectionWriter) error {
		return writeInterner(sw, st.Interner().Values())
	}); err != nil {
		return err
	}
	for _, name := range st.Relations() {
		d := st.Rel(name).Dump()
		if err := section(relKind, name, func(sw *sectionWriter) error {
			return writeRel(sw, d)
		}); err != nil {
			return fmt.Errorf("snapshot: Write: relation %q: %w", name, err)
		}
	}
	return nil
}

// writeInterner serializes the value table in ID order: count, then one
// kind-discriminated record per value.
func writeInterner(sw *sectionWriter, vals []value.Value) error {
	sw.u64(uint64(len(vals)))
	for i, v := range vals {
		sw.u8(byte(v.K))
		switch v.K {
		case value.Const:
			if uint64(len(v.Str)) > 1<<32-1 {
				return fmt.Errorf("snapshot: Write: constant %d longer than 4GiB", i)
			}
			sw.u32(uint32(len(v.Str)))
			sw.bytes([]byte(v.Str))
		case value.Null:
			sw.u64(v.ID)
			sw.u64(uint64(v.TP))
		case value.AnnNull:
			sw.u64(v.ID)
			sw.u64(uint64(v.Iv.Start))
			sw.u64(uint64(v.Iv.End))
		case value.IntervalVal:
			sw.u64(uint64(v.Iv.Start))
			sw.u64(uint64(v.Iv.End))
		default:
			return fmt.Errorf("snapshot: Write: value %d has unserializable kind %v", i, v.K)
		}
	}
	return nil
}

// writeRel serializes one relation's physical dump: row count, validity
// bitmap, then per segment the arity, row-number array, and columns. The
// u32 arrays are padded to 8 bytes so every array in the file is 8-byte
// aligned and can alias the mapping directly on load.
func writeRel(sw *sectionWriter, d storage.RelDump) error {
	sw.u64(uint64(d.NumRows))
	sw.u64(uint64(len(d.Live)))
	sw.u64s(d.Live)
	sw.u64(uint64(len(d.Segments)))
	for _, sg := range d.Segments {
		sw.u64(uint64(sg.Arity))
		sw.u64(uint64(len(sg.Rows)))
		for _, row := range sg.Rows {
			sw.u32(uint32(row))
		}
		sw.pad8()
		for _, col := range sg.Cols {
			sw.ids(col)
			sw.pad8()
		}
	}
	return nil
}

// tocEntry is one table-of-contents record.
type tocEntry struct {
	kind uint32
	name string
	off  uint64
	len  uint64
	crc  uint32
}

// encodeTOC renders the table of contents: entry count, then per entry
// kind, offset, length, CRC-32C, and length-prefixed name.
func encodeTOC(toc []tocEntry) []byte {
	var b []byte
	b = binary.LittleEndian.AppendUint32(b, uint32(len(toc)))
	for _, e := range toc {
		b = binary.LittleEndian.AppendUint32(b, e.kind)
		b = binary.LittleEndian.AppendUint64(b, e.off)
		b = binary.LittleEndian.AppendUint64(b, e.len)
		b = binary.LittleEndian.AppendUint32(b, e.crc)
		b = binary.LittleEndian.AppendUint32(b, uint32(len(e.name)))
		b = append(b, e.name...)
	}
	return b
}

// countingWriter tracks the absolute file offset across the buffered
// writer, which is how section offsets are known without seeking.
type countingWriter struct {
	w   *bufio.Writer
	n   uint64
	err error
}

func (c *countingWriter) write(p []byte) {
	if c.err != nil {
		return
	}
	_, c.err = c.w.Write(p)
	c.n += uint64(len(p))
}

// align8 zero-pads to the next 8-byte boundary (between sections; these
// pad bytes are outside every checksum).
func (c *countingWriter) align8() {
	var zero [8]byte
	if rem := c.n % 8; rem != 0 {
		c.write(zero[:8-rem])
	}
}

// sectionWriter writes one section's payload, folding every byte —
// including intra-section padding — into the section's running CRC-32C.
type sectionWriter struct {
	cw  *countingWriter
	crc uint32
	buf [8]byte
}

func (s *sectionWriter) bytes(p []byte) {
	s.crc = crc32.Update(s.crc, castagnoli, p)
	s.cw.write(p)
}

func (s *sectionWriter) u8(v uint8) {
	s.buf[0] = v
	s.bytes(s.buf[:1])
}

func (s *sectionWriter) u32(v uint32) {
	binary.LittleEndian.PutUint32(s.buf[:4], v)
	s.bytes(s.buf[:4])
}

func (s *sectionWriter) u64(v uint64) {
	binary.LittleEndian.PutUint64(s.buf[:8], v)
	s.bytes(s.buf[:8])
}

// pad8 zero-pads the section to an 8-byte boundary; the pad bytes are
// part of the section and covered by its checksum.
func (s *sectionWriter) pad8() {
	var zero [8]byte
	if rem := s.cw.n % 8; rem != 0 {
		s.bytes(zero[:8-rem])
	}
}

// u64s writes a []uint64 array in bulk.
func (s *sectionWriter) u64s(words []uint64) {
	var chunk [4096]byte
	for len(words) > 0 {
		n := min(len(words), len(chunk)/8)
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint64(chunk[8*i:], words[i])
		}
		s.bytes(chunk[:8*n])
		words = words[n:]
	}
}

// ids writes a []value.ID column in bulk.
func (s *sectionWriter) ids(col []value.ID) {
	var chunk [4096]byte
	for len(col) > 0 {
		n := min(len(col), len(chunk)/4)
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint32(chunk[4*i:], uint32(col[i]))
		}
		s.bytes(chunk[:4*n])
		col = col[n:]
	}
}
