// Package snapshot persists frozen stores as mmap-able columnar files.
//
// The engine's frozen representation — per-arity []value.ID column blocks,
// a row-validity bitmap, and the interner's dense value table — is already
// a near-memcpy serialization format. This package writes exactly that
// physical layout to disk and maps it back: a loaded store's ID columns
// and validity bitmap alias the mapped file directly (no per-row decode,
// no re-interning), so loading costs only the derived structures a Freeze
// would build, while the column data itself is paged in lazily by the OS
// as relations are first touched.
//
// # File layout
//
// A snapshot is a 16-byte header, a sequence of 8-byte-aligned section
// payloads, a table of contents, and a 24-byte footer (all integers
// little-endian):
//
//	header   magic "TDXSNAP\0", format version u32, reserved u32 (zero)
//	sections raw payloads, zero-padded to 8-byte alignment
//	toc      per section: kind, offset, length, CRC-32C, name
//	footer   toc offset u64, toc length u64, toc CRC-32C u32, tail magic u32
//
// Sections carry no inline headers — offsets, lengths, and checksums live
// only in the toc — so the writer streams each payload once through a
// buffered writer with a running CRC and emits the toc last. A file holds
// one meta section (JSON: schema signatures, provenance, chase stats),
// one interner section, and one relation section per relation; an
// optional second interner+relations group persists a retained source
// store alongside a solution, which is what lets a restored incremental
// session keep accepting deltas. docs/SNAPSHOT.md is the normative spec.
//
// # Integrity
//
// Every section is covered by a CRC-32C recorded in the toc, the toc by a
// CRC-32C in the footer, and the footer is located from the end of the
// file — so truncation, bit flips inside any section, and bad
// magic/version all surface as errors from Open/Store, never as a panic
// or a silently corrupt store. Only the zero padding between sections is
// outside any checksum; a flip there cannot alter what is loaded.
// Decoding additionally re-validates every structural invariant
// (storage.NewFrozenStore, value.NewInternerFromValues), so even a file
// with valid checksums but inconsistent contents is rejected.
//
// # Lifetime
//
// On linux a File maps the file with syscall.Mmap; elsewhere it falls
// back to reading the file into memory. Stores returned by Store and
// SourceStore alias the mapping and pin the File, so the mapping stays
// valid while any loaded store is reachable; when the last store and the
// File become unreachable a cleanup unmaps it. Close unmaps immediately
// and must only be called once loaded stores are no longer in use.
package snapshot

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
)

const (
	headerLen = 16
	footerLen = 24

	// version is the format version; readers reject anything else.
	version = 1

	// tailMagic ends every snapshot ("SNAP" little-endian); its absence
	// means a truncated file or not a snapshot at all.
	tailMagic = 0x50414e53
)

// magic opens every snapshot file.
var magic = [8]byte{'T', 'D', 'X', 'S', 'N', 'A', 'P', 0}

// Section kinds. The src* kinds form the optional second store group (a
// retained source persisted alongside a solution).
const (
	secMeta        = 1
	secInterner    = 2
	secRelation    = 3
	secSrcInterner = 4
	secSrcRelation = 5
)

// castagnoli is the CRC-32C table; hardware-accelerated on amd64/arm64.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt is wrapped by every error caused by a malformed, truncated,
// or checksum-failing snapshot, so callers can distinguish "this file is
// bad" from I/O errors.
var ErrCorrupt = errors.New("corrupt snapshot")

// corruptf builds an ErrCorrupt-wrapped error.
func corruptf(format string, args ...any) error {
	return fmt.Errorf("snapshot: %w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

// ErrNoSource is returned by SourceStore when the snapshot has no
// embedded source group.
var ErrNoSource = errors.New("snapshot: no source store in file")

// RelSig records one relation's schema signature in the meta section.
type RelSig struct {
	Name  string   `json:"name"`
	Attrs []string `json:"attrs"`
}

// Meta is the snapshot's JSON meta section: enough provenance to
// re-attach a loaded store to the right schema and to restore the stats
// of the run that produced it. All fields are optional; the snapshot
// format itself does not interpret them.
type Meta struct {
	// Kind is free-form provenance ("solution", "instance", ...).
	Kind string `json:"kind,omitempty"`
	// Exchange is the fingerprint of the exchange that produced the
	// snapshot, recorded for provenance and cache keying.
	Exchange string `json:"exchange,omitempty"`
	// Schema describes the main store's relations.
	Schema []RelSig `json:"schema,omitempty"`
	// SourceSchema describes the embedded source group, when present.
	SourceSchema []RelSig `json:"sourceSchema,omitempty"`
	// Stats carries the producing run's statistics verbatim.
	Stats json.RawMessage `json:"stats,omitempty"`
}
