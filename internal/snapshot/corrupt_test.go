package snapshot

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"
)

// smallSnapshot is a compact two-group snapshot for exhaustive
// per-byte/per-truncation sweeps.
func smallSnapshot(t *testing.T) []byte {
	t.Helper()
	return encode(t, Snapshot{
		Store:  testStore(11),
		Source: testStore(12),
		Meta:   Meta{Kind: "solution", Schema: []RelSig{{Name: "E", Attrs: []string{"a"}}}},
	})
}

// tryLoad opens and fully materializes data, returning the first error.
// It must never panic, which the test harness enforces for free.
func tryLoad(data []byte) error {
	f, err := OpenBytes(data)
	if err != nil {
		return err
	}
	if _, err := f.Store(); err != nil {
		return err
	}
	if f.HasSource() {
		if _, err := f.SourceStore(); err != nil {
			return err
		}
	}
	return nil
}

func TestTruncationAlwaysErrors(t *testing.T) {
	data := smallSnapshot(t)
	for n := 0; n < len(data); n++ {
		if err := tryLoad(data[:n]); err == nil {
			t.Fatalf("truncation to %d/%d bytes loaded successfully", n, len(data))
		}
	}
}

// TestBitFlips flips every byte of the file and asserts the loader either
// rejects the file or — only for bytes outside every checksum, i.e. the
// zero padding between sections — loads a store identical to the
// original. Silently loading different data is the one forbidden outcome.
func TestBitFlips(t *testing.T) {
	data := smallSnapshot(t)
	f, err := OpenBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	orig, err := f.Store()
	if err != nil {
		t.Fatal(err)
	}
	origStr := orig.String()
	mut := make([]byte, len(data))
	for i := range data {
		copy(mut, data)
		mut[i] ^= 0xff
		err := tryLoad(mut)
		if err != nil {
			continue
		}
		mf, _ := OpenBytes(mut)
		st, _ := mf.Store()
		if st.String() != origStr {
			t.Fatalf("flip at byte %d silently loaded different data", i)
		}
	}
}

func TestBadMagic(t *testing.T) {
	data := smallSnapshot(t)
	bad := append([]byte("NOTASNAP"), data[8:]...)
	if err := tryLoad(bad); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad magic: %v", err)
	}
}

func TestBadVersion(t *testing.T) {
	data := append([]byte(nil), smallSnapshot(t)...)
	binary.LittleEndian.PutUint32(data[8:], version+1)
	if err := tryLoad(data); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("future version: %v", err)
	}
}

func TestBadTailMagic(t *testing.T) {
	data := append([]byte(nil), smallSnapshot(t)...)
	binary.LittleEndian.PutUint32(data[len(data)-4:], 0xdeadbeef)
	if err := tryLoad(data); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad tail magic: %v", err)
	}
}

// TestSectionChecksumMismatch corrupts one byte inside the first relation
// section specifically and asserts the error mentions a checksum, i.e.
// corruption is caught by the CRC before structural validation.
func TestSectionChecksumMismatch(t *testing.T) {
	data := append([]byte(nil), smallSnapshot(t)...)
	// The meta section is first; flip a byte just past the header inside
	// its payload (the JSON braces are at headerLen).
	data[headerLen] ^= 0x01
	err := tryLoad(data)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("flipped section byte: %v", err)
	}
}

func TestGarbageInput(t *testing.T) {
	for _, data := range [][]byte{
		nil,
		{},
		[]byte("hello"),
		bytes.Repeat([]byte{0}, 4096),
		bytes.Repeat([]byte{0xff}, 4096),
	} {
		if err := tryLoad(data); err == nil {
			t.Fatalf("garbage of %d bytes loaded successfully", len(data))
		}
	}
}
