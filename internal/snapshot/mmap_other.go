//go:build !linux

package snapshot

import (
	"io"
	"os"
)

// mapFile reads path fully into memory — the portable fallback where
// syscall.Mmap is unavailable or unportable. Loaded stores then alias
// plain heap memory and need no unmapping.
func mapFile(path string) (*mapping, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	data := make([]byte, fi.Size())
	if _, err := io.ReadFull(f, data); err != nil {
		return nil, err
	}
	return &mapping{data: data}, nil
}

func munmap(data []byte) error { return nil }
