//go:build linux

package snapshot

import (
	"fmt"
	"os"
	"syscall"
)

// mapFile maps path read-only. The descriptor is closed right after
// mapping — the mapping survives it — so an open File holds pages, not a
// file descriptor. Empty files get an empty heap mapping (mmap rejects
// zero length); they fail header validation like any short file.
func mapFile(path string) (*mapping, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := fi.Size()
	if size == 0 {
		return &mapping{}, nil
	}
	if size != int64(int(size)) {
		return nil, fmt.Errorf("mmap: file of %d bytes exceeds address space", size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, fmt.Errorf("mmap: %w", err)
	}
	return &mapping{data: data, mapped: true}, nil
}

func munmap(data []byte) error { return syscall.Munmap(data) }
