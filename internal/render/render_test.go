package render

import (
	"strings"
	"testing"

	"repro/internal/fact"
	"repro/internal/instance"
	"repro/internal/interval"
	"repro/internal/paperex"
	"repro/internal/value"
)

func TestInstanceWithSchema(t *testing.T) {
	out := Instance(paperex.Figure4())
	// Relation header and attribute names from the schema.
	for _, want := range []string{"E+", "S+", "name", "company", "salary", "T",
		"Ada", "[2012,2014)", "[2014,inf)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	// Deterministic: repeated rendering is identical.
	if Instance(paperex.Figure4()) != out {
		t.Fatal("rendering not deterministic")
	}
}

func TestInstanceWithoutSchema(t *testing.T) {
	c := instance.NewConcrete(nil)
	c.MustInsert(fact.NewC("R", interval.MustNew(1, 2), paperex.C("x"), paperex.C("y")))
	out := Instance(c)
	if !strings.Contains(out, "A1") || !strings.Contains(out, "A2") {
		t.Fatalf("schemaless columns missing:\n%s", out)
	}
}

func TestInstanceWithNulls(t *testing.T) {
	var g value.NullGen
	c := instance.NewConcrete(nil)
	iv := interval.MustNew(3, 7)
	c.MustInsert(fact.NewC("R", iv, paperex.C("a"), g.FreshAnn(iv)))
	out := Instance(c)
	if !strings.Contains(out, "N1^[3,7)") {
		t.Fatalf("annotated null not rendered:\n%s", out)
	}
}

func TestTableAlignment(t *testing.T) {
	out := Table([]string{"a", "long-header"}, [][]string{
		{"verylongcell", "x"},
		{"y", "z"},
	})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	// Column two starts at the same offset in every row.
	off := strings.Index(lines[0], "long-header")
	if strings.Index(lines[2], "x") != off {
		t.Fatalf("misaligned:\n%s", out)
	}
	if !strings.HasPrefix(lines[1], "---") {
		t.Fatalf("missing header rule:\n%s", out)
	}
}

func TestAbstractRendering(t *testing.T) {
	out := Abstract(paperex.Figure4().Abstract())
	for _, want := range []string{"[0,2012)", "[2014,2015)", "E(Ada, Google)", "S(Bob, 13k)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	lines := strings.Split(out, "\n")
	if len(lines) != 6 {
		t.Fatalf("segments = %d, want 6:\n%s", len(lines), out)
	}
}
