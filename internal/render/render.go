// Package render pretty-prints instances and experiment tables in the
// style of the paper's figures: one aligned table per relation with the
// data attributes followed by the Time column.
package render

import (
	"fmt"
	"strings"

	"repro/internal/instance"
	"repro/internal/schema"
)

// Instance renders a concrete instance as per-relation tables. When the
// instance has a schema, attribute names head the columns; otherwise the
// columns are A1..An. Facts appear in deterministic order.
func Instance(c *instance.Concrete) string {
	var b strings.Builder
	for i, rel := range c.Relations() {
		if i > 0 {
			b.WriteByte('\n')
		}
		facts := c.FactsOf(rel)
		arity := len(facts[0].Args)
		headers := make([]string, 0, arity+1)
		if c.Schema() != nil {
			if r, ok := c.Schema().Relation(rel); ok && r.Arity() == arity {
				headers = append(headers, r.Attrs...)
			}
		}
		if len(headers) == 0 {
			for j := 1; j <= arity; j++ {
				headers = append(headers, fmt.Sprintf("A%d", j))
			}
		}
		headers = append(headers, schema.TemporalAttr)
		rows := make([][]string, len(facts))
		for j, f := range facts {
			row := make([]string, 0, arity+1)
			for _, a := range f.Args {
				row = append(row, a.String())
			}
			row = append(row, f.T.String())
			rows[j] = row
		}
		b.WriteString(rel + "+\n")
		b.WriteString(Table(headers, rows))
	}
	return b.String()
}

// Table renders an aligned text table with a header rule.
func Table(headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len([]rune(h))
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len([]rune(cell)) > widths[i] {
				widths[i] = len([]rune(cell))
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if pad := widths[i] - len([]rune(cell)); pad > 0 && i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", pad))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total-2) + "\n")
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}

// Abstract renders the segments of an abstract instance, one snapshot per
// line — the style of the paper's Figure 1 and Figure 3.
func Abstract(a *instance.Abstract) string {
	var b strings.Builder
	for i, seg := range a.Segments() {
		if i > 0 {
			b.WriteByte('\n')
		}
		snap := a.Snapshot(seg.Iv.Start)
		fmt.Fprintf(&b, "%-14v %s", seg.Iv, snap.String())
	}
	return b.String()
}
