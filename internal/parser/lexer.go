// Package parser implements the TDX mapping language: a small text
// format for schemas, s-t tgds, egds, queries, and timestamped facts,
// used by the command-line tools and examples.
//
// Mapping files:
//
//	# the paper's running example
//	source schema {
//	    E(name, company)
//	    S(name, salary)
//	}
//	target schema {
//	    Emp(name, company, salary)
//	}
//	tgd sigma1: E(n, c) -> exists s . Emp(n, c, s)
//	tgd sigma2: E(n, c), S(n, s) -> Emp(n, c, s)
//	egd key:    Emp(n, c, s), Emp(n, c, s2) -> s = s2
//	query q(n, s) :- Emp(n, c, s)
//
// In dependencies and queries, a bare identifier is a variable; quoted
// strings and words starting with a digit are constants (so 18k is a
// constant, n is a variable).
//
// Fact files hold one timestamped fact per line:
//
//	E(Ada, IBM)    @ [2012, 2014)
//	E(Ada, Google) @ [2014, inf)
//
// In fact files bare words are constants. A word of the form N7^[s,e) is
// an interval-annotated null (quote it to force a constant).
package parser

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// tokenKind enumerates lexical token types.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokWord
	tokString // quoted constant
	tokLParen
	tokRParen
	tokLBrace
	tokRBrace
	tokLBracket
	tokComma
	tokColon
	tokDot
	tokAt
	tokArrow // ->
	tokTurn  // :-
	tokEq
	tokNewline
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokWord:
		return "identifier"
	case tokString:
		return "string"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokLBrace:
		return "'{'"
	case tokRBrace:
		return "'}'"
	case tokLBracket:
		return "'['"
	case tokComma:
		return "','"
	case tokColon:
		return "':'"
	case tokDot:
		return "'.'"
	case tokAt:
		return "'@'"
	case tokArrow:
		return "'->'"
	case tokTurn:
		return "':-'"
	case tokEq:
		return "'='"
	case tokNewline:
		return "newline"
	}
	return "unknown token"
}

// token is one lexical unit with its position.
type token struct {
	kind tokenKind
	text string
	line int
	col  int
}

// Error is a parse error with position information.
type Error struct {
	Line, Col int
	Msg       string
}

func (e *Error) Error() string {
	return fmt.Sprintf("parse error at %d:%d: %s", e.Line, e.Col, e.Msg)
}

func errorf(line, col int, format string, args ...any) error {
	return &Error{Line: line, Col: col, Msg: fmt.Sprintf(format, args...)}
}

// isWordRune reports whether r may appear inside a word. Words cover
// relation names, variables, and bare constants like 18k or s'.
func isWordRune(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '\'' || r == '-' || r == '^' || r == '∞'
}

// lex splits the input into tokens. Newlines are significant (facts and
// declarations are line-oriented) and emitted as tokens; consecutive
// newlines collapse. Comments run from '#' or '//' to end of line.
func lex(src string) ([]token, error) {
	var toks []token
	line, col := 1, 1
	emit := func(k tokenKind, text string, c int) {
		toks = append(toks, token{kind: k, text: text, line: line, col: c})
	}
	rs := []rune(src)
	i := 0
	for i < len(rs) {
		r := rs[i]
		startCol := col
		switch {
		case r == '\n':
			if len(toks) > 0 && toks[len(toks)-1].kind != tokNewline {
				emit(tokNewline, "\\n", startCol)
			}
			line++
			col = 1
			i++
			continue
		case r == ' ' || r == '\t' || r == '\r':
			i++
			col++
			continue
		case r == '#':
			for i < len(rs) && rs[i] != '\n' {
				i++
			}
			continue
		case r == '/' && i+1 < len(rs) && rs[i+1] == '/':
			for i < len(rs) && rs[i] != '\n' {
				i++
			}
			continue
		case r == '(':
			emit(tokLParen, "(", startCol)
		case r == ')':
			emit(tokRParen, ")", startCol)
		case r == '{':
			emit(tokLBrace, "{", startCol)
		case r == '}':
			emit(tokRBrace, "}", startCol)
		case r == '[':
			// Lex the whole interval literal [s, e) as one bracketed word,
			// so that the paper's notation passes through verbatim.
			j := i + 1
			for j < len(rs) && rs[j] != ')' && rs[j] != '\n' {
				j++
			}
			if j >= len(rs) || rs[j] != ')' {
				return nil, errorf(line, startCol, "unterminated interval literal")
			}
			text := strings.Map(dropSpace, string(rs[i:j+1]))
			emit(tokLBracket, text, startCol)
			col += j + 1 - i
			i = j + 1
			continue
		case r == ',':
			emit(tokComma, ",", startCol)
		case r == '.':
			emit(tokDot, ".", startCol)
		case r == '@':
			emit(tokAt, "@", startCol)
		case r == '=':
			emit(tokEq, "=", startCol)
		case r == ':':
			if i+1 < len(rs) && rs[i+1] == '-' {
				emit(tokTurn, ":-", startCol)
				i += 2
				col += 2
				continue
			}
			emit(tokColon, ":", startCol)
		case r == '-':
			if i+1 < len(rs) && rs[i+1] == '>' {
				emit(tokArrow, "->", startCol)
				i += 2
				col += 2
				continue
			}
			return nil, errorf(line, startCol, "unexpected '-' (did you mean '->'?)")
		case r == '"':
			// Strings are Go-quoted: escape sequences like \" and \x0e are
			// interpreted, so any constant can round-trip through quoting.
			j := i + 1
			for j < len(rs) && rs[j] != '"' && rs[j] != '\n' {
				if rs[j] == '\\' && j+1 < len(rs) {
					j++ // skip the escaped rune
				}
				j++
			}
			if j >= len(rs) || rs[j] != '"' {
				return nil, errorf(line, startCol, "unterminated string")
			}
			text, err := strconv.Unquote(string(rs[i : j+1]))
			if err != nil {
				return nil, errorf(line, startCol, "bad string literal: %v", err)
			}
			emit(tokString, text, startCol)
			col += j + 1 - i
			i = j + 1
			continue
		case r == '→':
			emit(tokArrow, "->", startCol)
		case isWordRune(r):
			j := i
			for j < len(rs) && isWordRune(rs[j]) {
				j++
			}
			word := string(rs[i:j])
			// A word ending in '^' begins an annotated-null literal
			// N7^[s,e): splice the following interval token in.
			if strings.HasSuffix(word, "^") && j < len(rs) && rs[j] == '[' {
				k := j + 1
				for k < len(rs) && rs[k] != ')' && rs[k] != '\n' {
					k++
				}
				if k >= len(rs) || rs[k] != ')' {
					return nil, errorf(line, startCol, "unterminated annotated null")
				}
				word += strings.Map(dropSpace, string(rs[j:k+1]))
				j = k + 1
			}
			emit(tokWord, word, startCol)
			col += j - i
			i = j
			continue
		default:
			return nil, errorf(line, startCol, "unexpected character %q", string(r))
		}
		i++
		col++
	}
	emit(tokEOF, "", col)
	return toks, nil
}

func dropSpace(r rune) rune {
	if r == ' ' || r == '\t' {
		return -1
	}
	return r
}
