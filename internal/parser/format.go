package parser

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/dependency"
	"repro/internal/instance"
	"repro/internal/logic"
	"repro/internal/query"
	"repro/internal/schema"
)

// FormatMapping renders a mapping (and optional queries) back into the
// TDX language, such that ParseMapping(FormatMapping(m)) reproduces it.
// Dependencies keep their declaration order; schema relations keep their
// declaration order.
func FormatMapping(m *dependency.Mapping, queries []query.UCQ) string {
	var b strings.Builder
	writeSchema := func(kw string, sch *schema.Schema) {
		fmt.Fprintf(&b, "%s schema {\n", kw)
		for _, name := range sch.Names() {
			r, _ := sch.Relation(name)
			fmt.Fprintf(&b, "    %s(%s)\n", r.Name, strings.Join(r.Attrs, ", "))
		}
		b.WriteString("}\n")
	}
	writeSchema("source", m.Source)
	writeSchema("target", m.Target)
	for _, d := range m.TGDs {
		b.WriteString("tgd")
		if d.Name != "" {
			b.WriteString(" " + d.Name)
		}
		b.WriteString(": " + formatConjunction(d.Body) + " -> ")
		if ex := d.Existentials(); len(ex) > 0 {
			sorted := append([]string(nil), ex...)
			sort.Strings(sorted)
			b.WriteString("exists " + strings.Join(sorted, ", ") + " . ")
		}
		b.WriteString(formatConjunction(d.Head) + "\n")
	}
	for _, d := range m.EGDs {
		b.WriteString("egd")
		if d.Name != "" {
			b.WriteString(" " + d.Name)
		}
		fmt.Fprintf(&b, ": %s -> %s = %s\n", formatConjunction(d.Body), d.X1, d.X2)
	}
	for _, u := range queries {
		for _, q := range u.Disjuncts {
			fmt.Fprintf(&b, "query %s(%s) :- %s\n", q.Name, strings.Join(q.Head, ", "), formatConjunction(q.Body))
		}
	}
	return b.String()
}

// formatConjunction renders atoms in parseable form: variables bare,
// constants quoted (quoting is always safe and round-trips exactly).
func formatConjunction(c logic.Conjunction) string {
	atoms := make([]string, len(c))
	for i, a := range c {
		terms := make([]string, len(a.Terms))
		for j, t := range a.Terms {
			if t.IsVar {
				terms[j] = t.Name
			} else {
				terms[j] = fmt.Sprintf("%q", t.Val.Str)
			}
		}
		atoms[i] = a.Rel + "(" + strings.Join(terms, ", ") + ")"
	}
	return strings.Join(atoms, ", ")
}

// FormatFacts renders a concrete instance as a TDX fact file, such that
// ParseFacts(FormatFacts(c), c.Schema()) reproduces it. Constants that
// could be mistaken for null or interval literals are quoted.
func FormatFacts(c *instance.Concrete) string {
	var b strings.Builder
	for _, f := range c.Facts() {
		args := make([]string, len(f.Args))
		for i, a := range f.Args {
			if a.IsConst() && needsQuoting(a.Str) {
				args[i] = fmt.Sprintf("%q", a.Str)
			} else {
				args[i] = a.String()
			}
		}
		fmt.Fprintf(&b, "%s(%s) @ %s\n", f.Rel, strings.Join(args, ", "), f.T)
	}
	return b.String()
}

// needsQuoting reports whether a constant must be quoted to survive a
// parse round trip: empty strings, strings containing separators or
// whitespace, and strings matching the null literal syntax.
func needsQuoting(s string) bool {
	if s == "" {
		return true
	}
	for _, r := range s {
		if !isWordRune(r) {
			return true
		}
	}
	// A word like N7 or N7^[1,2) would re-parse as a null.
	if s[0] == 'N' && len(s) > 1 && s[1] >= '0' && s[1] <= '9' {
		return true
	}
	if s[0] == '[' {
		return true
	}
	return false
}
