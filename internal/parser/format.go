package parser

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/dependency"
	"repro/internal/instance"
	"repro/internal/logic"
	"repro/internal/query"
	"repro/internal/schema"
	"repro/internal/temporal"
)

// FormatMapping renders a mapping (and optional queries) back into the
// TDX language, such that ParseMapping(FormatMapping(m)) reproduces it.
// Dependencies keep their declaration order; schema relations keep their
// declaration order.
func FormatMapping(m *dependency.Mapping, queries []query.UCQ) string {
	var b strings.Builder
	writeSchemas(&b, m.Source, m.Target)
	for _, d := range m.TGDs {
		b.WriteString("tgd")
		if d.Name != "" {
			b.WriteString(" " + d.Name)
		}
		b.WriteString(": " + formatConjunction(d.Body) + " -> ")
		if ex := d.Existentials(); len(ex) > 0 {
			sorted := append([]string(nil), ex...)
			sort.Strings(sorted)
			b.WriteString("exists " + strings.Join(sorted, ", ") + " . ")
		}
		b.WriteString(formatConjunction(d.Head) + "\n")
	}
	writeEGDs(&b, m.EGDs)
	writeQueries(&b, queries)
	return b.String()
}

// writeSchemas renders the source and target schema blocks.
func writeSchemas(b *strings.Builder, src, tgt *schema.Schema) {
	writeSchema := func(kw string, sch *schema.Schema) {
		fmt.Fprintf(b, "%s schema {\n", kw)
		for _, name := range sch.Names() {
			r, _ := sch.Relation(name)
			fmt.Fprintf(b, "    %s(%s)\n", r.Name, strings.Join(r.Attrs, ", "))
		}
		b.WriteString("}\n")
	}
	writeSchema("source", src)
	writeSchema("target", tgt)
}

// writeEGDs renders egd declarations in declaration order.
func writeEGDs(b *strings.Builder, egds []dependency.EGD) {
	for _, d := range egds {
		b.WriteString("egd")
		if d.Name != "" {
			b.WriteString(" " + d.Name)
		}
		fmt.Fprintf(b, ": %s -> %s = %s\n", formatConjunction(d.Body), d.X1, d.X2)
	}
}

// writeQueries renders query declarations in declaration order.
func writeQueries(b *strings.Builder, queries []query.UCQ) {
	for _, u := range queries {
		for _, q := range u.Disjuncts {
			fmt.Fprintf(b, "query %s(%s) :- %s\n", q.Name, strings.Join(q.Head, ", "), formatConjunction(q.Body))
		}
	}
}

// FormatTemporalMapping renders a §7 modal mapping (and optional
// queries) back into the TDX language, such that
// ParseMapping(FormatTemporalMapping(m)) reproduces it. Like
// FormatMapping it is canonical up to whitespace and comments: two
// mapping texts that parse to the same temporal mapping format
// identically, which is what makes it a fit content-hash input
// (tdx.Exchange.Fingerprint).
func FormatTemporalMapping(m *temporal.Mapping, queries []query.UCQ) string {
	var b strings.Builder
	writeSchemas(&b, m.Source, m.Target)
	for _, d := range m.TGDs {
		b.WriteString("tgd")
		if d.Name != "" {
			b.WriteString(" " + d.Name)
		}
		b.WriteString(": " + formatConjunction(d.Body) + " -> ")
		if ex := d.Existentials(); len(ex) > 0 {
			sorted := append([]string(nil), ex...)
			sort.Strings(sorted)
			b.WriteString("exists " + strings.Join(sorted, ", ") + " . ")
		}
		heads := make([]string, len(d.Head))
		for i, h := range d.Head {
			if kw := modalKeyword(h.Ref); kw != "" {
				heads[i] = kw + " " + formatAtom(h.Atom)
			} else {
				heads[i] = formatAtom(h.Atom)
			}
		}
		b.WriteString(strings.Join(heads, ", ") + "\n")
	}
	writeEGDs(&b, m.EGDs)
	writeQueries(&b, queries)
	return b.String()
}

// modalKeyword returns the surface keyword of a temporal reference ("",
// "past", "future", "always past", "always future").
func modalKeyword(r temporal.Ref) string {
	switch r {
	case temporal.SometimePast:
		return "past"
	case temporal.SometimeFut:
		return "future"
	case temporal.AlwaysPast:
		return "always past"
	case temporal.AlwaysFut:
		return "always future"
	default:
		return ""
	}
}

// formatConjunction renders atoms in parseable form: variables bare,
// constants quoted (quoting is always safe and round-trips exactly).
func formatConjunction(c logic.Conjunction) string {
	atoms := make([]string, len(c))
	for i, a := range c {
		atoms[i] = formatAtom(a)
	}
	return strings.Join(atoms, ", ")
}

// formatAtom renders one atom in parseable form.
func formatAtom(a logic.Atom) string {
	terms := make([]string, len(a.Terms))
	for j, t := range a.Terms {
		if t.IsVar {
			terms[j] = t.Name
		} else {
			terms[j] = fmt.Sprintf("%q", t.Val.Str)
		}
	}
	return a.Rel + "(" + strings.Join(terms, ", ") + ")"
}

// FormatFacts renders a concrete instance as a TDX fact file, such that
// ParseFacts(FormatFacts(c), c.Schema()) reproduces it. Constants that
// could be mistaken for null or interval literals are quoted.
func FormatFacts(c *instance.Concrete) string {
	var b strings.Builder
	for _, f := range c.Facts() {
		args := make([]string, len(f.Args))
		for i, a := range f.Args {
			if a.IsConst() && needsQuoting(a.Str) {
				args[i] = fmt.Sprintf("%q", a.Str)
			} else {
				args[i] = a.String()
			}
		}
		fmt.Fprintf(&b, "%s(%s) @ %s\n", f.Rel, strings.Join(args, ", "), f.T)
	}
	return b.String()
}

// needsQuoting reports whether a constant must be quoted to survive a
// parse round trip: empty strings, strings containing separators or
// whitespace, and strings matching the null literal syntax.
func needsQuoting(s string) bool {
	if s == "" {
		return true
	}
	for _, r := range s {
		if !isWordRune(r) {
			return true
		}
	}
	// A word like N7 or N7^[1,2) would re-parse as a null.
	if s[0] == 'N' && len(s) > 1 && s[1] >= '0' && s[1] <= '9' {
		return true
	}
	if s[0] == '[' {
		return true
	}
	return false
}
