package parser

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/chase"
	"repro/internal/fact"
	"repro/internal/instance"
	"repro/internal/interval"
	"repro/internal/paperex"
	"repro/internal/temporal"
	"repro/internal/value"
	"repro/internal/workload"
)

// paperMapping is the running example of the paper in TDX syntax.
const paperMapping = `
# Temporal Data Exchange — running example (Examples 1 and 6)
source schema {
    E(name, company)
    S(name, salary)
}
target schema {
    Emp(name, company, salary)
}
tgd sigma1: E(n, c) -> exists s . Emp(n, c, s)
tgd sigma2: E(n, c), S(n, s) -> Emp(n, c, s)
egd key:    Emp(n, c, s), Emp(n, c, s2) -> s = s2
query q(n, s) :- Emp(n, c, s)
`

const paperFacts = `
// Figure 4
E(Ada, IBM)    @ [2012, 2014)
E(Ada, Google) @ [2014, inf)
E(Bob, IBM)    @ [2013, 2018)
S(Ada, 18k)    @ [2013, inf)
S(Bob, 13k)    @ [2015, inf)
`

func TestParsePaperMapping(t *testing.T) {
	f, err := ParseMapping(paperMapping)
	if err != nil {
		t.Fatal(err)
	}
	m := f.Mapping
	if m.Source.Len() != 2 || m.Target.Len() != 1 {
		t.Fatalf("schemas: %d source, %d target", m.Source.Len(), m.Target.Len())
	}
	if len(m.TGDs) != 2 || len(m.EGDs) != 1 {
		t.Fatalf("deps: %d tgds, %d egds", len(m.TGDs), len(m.EGDs))
	}
	if m.TGDs[0].Name != "sigma1" || len(m.TGDs[0].Existentials()) != 1 {
		t.Fatalf("sigma1 = %v", m.TGDs[0])
	}
	if m.TGDs[1].Name != "sigma2" || len(m.TGDs[1].Body) != 2 {
		t.Fatalf("sigma2 = %v", m.TGDs[1])
	}
	if m.EGDs[0].X1 != "s" || m.EGDs[0].X2 != "s2" {
		t.Fatalf("egd = %v", m.EGDs[0])
	}
	if len(f.Queries) != 1 || f.Queries[0].Arity() != 2 {
		t.Fatalf("queries = %v", f.Queries)
	}
}

func TestParsePaperFactsAndRoundTrip(t *testing.T) {
	f, err := ParseMapping(paperMapping)
	if err != nil {
		t.Fatal(err)
	}
	ic, err := ParseFacts(paperFacts, f.Mapping.Source)
	if err != nil {
		t.Fatal(err)
	}
	if !ic.Equal(paperex.Figure4()) {
		t.Fatalf("parsed instance differs from Figure 4:\n%s", ic)
	}
	// End-to-end sanity: chase the parsed input with the parsed mapping.
	jc, _, err := chase.Concrete(ic, f.Mapping, nil)
	if err != nil {
		t.Fatal(err)
	}
	if jc.Len() != 5 {
		t.Fatalf("chase of parsed input: %d facts", jc.Len())
	}
}

func TestConstantsVsVariables(t *testing.T) {
	src := `
source schema { E(a, b) }
target schema { F(a, b) }
tgd: E(x, "IBM") -> F(x, x)
tgd: E(x, 18k) -> F(x, x)
`
	f, err := ParseMapping(src)
	if err != nil {
		t.Fatal(err)
	}
	d0 := f.Mapping.TGDs[0]
	if d0.Body[0].Terms[1].IsVar {
		t.Fatal("quoted string must be a constant")
	}
	if d0.Body[0].Terms[1].Val != value.NewConst("IBM") {
		t.Fatalf("constant = %v", d0.Body[0].Terms[1].Val)
	}
	d1 := f.Mapping.TGDs[1]
	if d1.Body[0].Terms[1].IsVar || d1.Body[0].Terms[1].Val != value.NewConst("18k") {
		t.Fatal("digit-initial word must be a constant")
	}
	if !d0.Body[0].Terms[0].IsVar {
		t.Fatal("bare identifier must be a variable")
	}
}

func TestFactValues(t *testing.T) {
	facts := `
R(N7^[1,3), plain, "N8") @ [1, 3)
`
	ic, err := ParseFacts(facts, nil)
	if err != nil {
		t.Fatal(err)
	}
	fs := ic.Facts()
	if len(fs) != 1 {
		t.Fatalf("facts = %v", fs)
	}
	got := fs[0]
	if got.Args[0].Kind() != value.AnnNull || got.Args[0].ID != 7 {
		t.Fatalf("annotated null not parsed: %v", got.Args[0])
	}
	if got.Args[1] != value.NewConst("plain") || got.Args[2] != value.NewConst("N8") {
		t.Fatalf("constants wrong: %v", got.Args)
	}
	if got.T != interval.MustNew(1, 3) {
		t.Fatalf("interval = %v", got.T)
	}
}

func TestUnionQueriesGrouped(t *testing.T) {
	src := `
source schema { E(a) }
target schema { F(a, b) }
tgd: E(x) -> exists y . F(x, y)
query q(x) :- F(x, y)
query q(y) :- F(x, y)
query other(x) :- F(x, y)
`
	f, err := ParseMapping(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Queries) != 2 {
		t.Fatalf("queries = %d", len(f.Queries))
	}
	if len(f.Queries[0].Disjuncts) != 2 || f.Queries[0].Name != "q" {
		t.Fatalf("union q = %v", f.Queries[0])
	}
}

func TestParseErrors(t *testing.T) {
	tests := []struct {
		name string
		src  string
		want string // substring of the error
	}{
		{"unknown-decl", "frobnicate: x", "unknown declaration"},
		{"missing-arrow", "source schema { E(a) }\ntarget schema { F(a) }\ntgd: E(x) F(x)", "expected"},
		{"bad-dash", "tgd: E(x) - F(x)", "did you mean"},
		{"unterminated-string", `tgd: E("x) -> F(x)`, "unterminated string"},
		{"unterminated-interval", "R(a) @ [1, 3", "unterminated interval"},
		{"egd-missing-eq", "source schema { E(a) }\ntarget schema { F(a) }\negd: F(x) -> x y", "expected '='"},
		{"nondisjoint", "source schema { E(a) }\ntarget schema { E(a) }", "disjoint"},
		{"tgd-wrong-schema", "source schema { E(a) }\ntarget schema { F(a) }\ntgd: F(x) -> E(x)", "not in source schema"},
		{"wrong-existentials", "source schema { E(a) }\ntarget schema { F(a, b) }\ntgd: E(x) -> exists q . F(x, y)", "existential"},
		{"unsafe-query", "source schema { E(a) }\ntarget schema { F(a) }\nquery q(z) :- F(x)", "head variable"},
		{"arity-mismatch", "source schema { E(a) }\ntarget schema { F(a) }\ntgd: E(x, y) -> F(x)", "arity"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := ParseMapping(tt.src)
			if err == nil {
				t.Fatalf("no error for %q", tt.src)
			}
			if !strings.Contains(err.Error(), tt.want) {
				t.Fatalf("error %q does not mention %q", err, tt.want)
			}
		})
	}
}

func TestFactParseErrors(t *testing.T) {
	for _, src := range []string{
		"R(a) [1,2)",   // missing @
		"R(a) @ 5",     // not an interval
		"R(a) @ [5,2)", // inverted
		"R() @ [1,2)",  // no values
		"R(a",          // unterminated
	} {
		if _, err := ParseFacts(src, nil); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
	// Schema enforcement.
	f, _ := ParseMapping(paperMapping)
	if _, err := ParseFacts("E(Ada) @ [1,2)", f.Mapping.Source); err == nil {
		t.Error("arity violation accepted")
	}
	if _, err := ParseFacts("Zzz(Ada) @ [1,2)", f.Mapping.Source); err == nil {
		t.Error("unknown relation accepted")
	}
}

func TestParseQueryLine(t *testing.T) {
	q, err := ParseQueryLine(`query who(n) :- Emp(n, "IBM", s)`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Name != "who" || len(q.Head) != 1 || len(q.Body) != 1 {
		t.Fatalf("query = %v", q)
	}
	if _, err := ParseQueryLine("who(n) :- Emp(n, c, s)"); err == nil {
		t.Fatal("missing query keyword accepted")
	}
	if _, err := ParseQueryLine("query q(n) :- Emp(n) extra"); err == nil {
		t.Fatal("trailing tokens accepted")
	}
}

func TestCommentsAndWhitespace(t *testing.T) {
	src := "# leading comment\n\n\n// another\nsource schema { E(a) } # trailing\ntarget schema { F(a) }\n"
	f, err := ParseMapping(src)
	if err != nil {
		t.Fatal(err)
	}
	if f.Mapping.Source.Len() != 1 || f.Mapping.Target.Len() != 1 {
		t.Fatal("comments broke parsing")
	}
}

func TestUnicodeArrow(t *testing.T) {
	src := "source schema { E(a) }\ntarget schema { F(a) }\ntgd: E(x) → F(x)"
	f, err := ParseMapping(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Mapping.TGDs) != 1 {
		t.Fatal("unicode arrow not accepted")
	}
}

func TestRenderedFactsReparse(t *testing.T) {
	// Facts rendered by the instance layer (e.g. chase output with
	// annotated nulls) parse back to the identical instance.
	jc, _, err := chase.Concrete(paperex.Figure4(), paperex.EmploymentMapping(), nil)
	if err != nil {
		t.Fatal(err)
	}
	var lines []string
	for _, f := range jc.Facts() {
		args := make([]string, len(f.Args))
		for i, a := range f.Args {
			args[i] = a.String()
		}
		lines = append(lines, f.Rel+"("+strings.Join(args, ", ")+") @ "+f.T.String())
	}
	back, err := ParseFacts(strings.Join(lines, "\n"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(jc) {
		t.Fatalf("reparse mismatch:\n%s\nvs\n%s", back, jc)
	}
	_ = fact.CFact{}
}

func TestFormatMappingRoundTrip(t *testing.T) {
	f, err := ParseMapping(paperMapping)
	if err != nil {
		t.Fatal(err)
	}
	text := FormatMapping(f.Mapping, f.Queries)
	back, err := ParseMapping(text)
	if err != nil {
		t.Fatalf("formatted mapping does not reparse: %v\n%s", err, text)
	}
	if len(back.Mapping.TGDs) != len(f.Mapping.TGDs) || len(back.Mapping.EGDs) != len(f.Mapping.EGDs) {
		t.Fatal("dependency count changed")
	}
	for i := range f.Mapping.TGDs {
		if back.Mapping.TGDs[i].String() != f.Mapping.TGDs[i].String() {
			t.Fatalf("tgd %d changed: %v vs %v", i, back.Mapping.TGDs[i], f.Mapping.TGDs[i])
		}
	}
	for i := range f.Mapping.EGDs {
		if back.Mapping.EGDs[i].String() != f.Mapping.EGDs[i].String() {
			t.Fatalf("egd %d changed", i)
		}
	}
	if len(back.Queries) != len(f.Queries) {
		t.Fatal("query count changed")
	}
}

func TestFormatTemporalMappingRoundTrip(t *testing.T) {
	// Every modal marker in one mapping: the formatted text must reparse
	// to the same temporal mapping, and formatting must be a fixed point
	// (format(parse(format(m))) == format(m)) — the property Fingerprint
	// hashing relies on.
	const text = `
source schema { P(n) }
target schema {
    A(n, u)
    B(n)
}
tgd t1: P(n) -> exists u . past A(n, u), B(n)
tgd t2: P(n) -> future B(n)
tgd t3: P(n) -> always past B(n)
tgd t4: P(n) -> exists u . always future A(n, u)
egd k: A(n, u), A(n, u2) -> u = u2
query q(n) :- B(n)
`
	f, err := ParseMapping(text)
	if err != nil {
		t.Fatal(err)
	}
	if f.Temporal == nil {
		t.Fatal("mapping did not parse as temporal")
	}
	formatted := FormatTemporalMapping(f.Temporal, f.Queries)
	back, err := ParseMapping(formatted)
	if err != nil {
		t.Fatalf("formatted temporal mapping does not reparse: %v\n%s", err, formatted)
	}
	if back.Temporal == nil {
		t.Fatalf("reparse lost temporal markers:\n%s", formatted)
	}
	if len(back.Temporal.TGDs) != len(f.Temporal.TGDs) || len(back.Temporal.EGDs) != len(f.Temporal.EGDs) {
		t.Fatal("dependency count changed")
	}
	for i, d := range f.Temporal.TGDs {
		got := back.Temporal.TGDs[i]
		if got.Name != d.Name || len(got.Head) != len(d.Head) {
			t.Fatalf("tgd %d changed: %+v vs %+v", i, got, d)
		}
		for j := range d.Head {
			if got.Head[j].Ref != d.Head[j].Ref {
				t.Fatalf("tgd %d head %d ref changed: %v vs %v", i, j, got.Head[j].Ref, d.Head[j].Ref)
			}
		}
	}
	if again := FormatTemporalMapping(back.Temporal, back.Queries); again != formatted {
		t.Fatalf("format not a fixed point:\n%s\nvs\n%s", formatted, again)
	}
	if len(back.Queries) != len(f.Queries) {
		t.Fatal("query count changed")
	}
}

func TestFormatFactsRoundTrip(t *testing.T) {
	// Chase output (with annotated nulls) and tricky constants both
	// survive the format → parse round trip.
	jc, _, err := chase.Concrete(paperex.Figure4(), paperex.EmploymentMapping(), nil)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseFacts(FormatFacts(jc), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(jc) {
		t.Fatalf("round trip changed instance:\n%s\nvs\n%s", back, jc)
	}
	// Constants that resemble nulls or contain spaces must be quoted.
	tricky := instance.NewConcrete(nil)
	tricky.MustInsert(fact.NewC("R", interval.MustNew(1, 2),
		value.NewConst("N7"), value.NewConst("has space"), value.NewConst("")))
	back2, err := ParseFacts(FormatFacts(tricky), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !back2.Equal(tricky) {
		t.Fatalf("tricky constants changed:\n%s\nvs\n%s", back2, tricky)
	}
}

func TestFormatRandomMappingsRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(71))
	for trial := 0; trial < 200; trial++ {
		m := workload.RandomMapping(r)
		text := FormatMapping(m, nil)
		back, err := ParseMapping(text)
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, text)
		}
		if FormatMapping(back.Mapping, nil) != text {
			t.Fatalf("trial %d: format not stable:\n%s\nvs\n%s", trial, text, FormatMapping(back.Mapping, nil))
		}
	}
}

func TestModalTGDParsing(t *testing.T) {
	src := `
source schema { PhDgrad(name) }
target schema {
    PhDCan(name, adviser, topic)
    Alumni(name, u)
}
tgd was-candidate: PhDgrad(n) -> exists adv, top . past PhDCan(n, adv, top)
tgd stays-alumni:  PhDgrad(n) -> exists u . always future Alumni(n, u)
tgd plain:         PhDgrad(n) -> exists x, y . PhDCan(n, x, y)
`
	f, err := ParseMapping(src)
	if err != nil {
		t.Fatal(err)
	}
	if f.Temporal == nil {
		t.Fatal("temporal mapping not built")
	}
	// Plain tgds join the temporal setting as AtT; total three.
	if len(f.Temporal.TGDs) != 3 {
		t.Fatalf("temporal tgds = %d", len(f.Temporal.TGDs))
	}
	if len(f.Mapping.TGDs) != 1 {
		t.Fatalf("plain tgds = %d", len(f.Mapping.TGDs))
	}
	refs := map[string]temporal.Ref{}
	for _, d := range f.Temporal.TGDs {
		refs[d.Name] = d.Head[0].Ref
	}
	if refs["was-candidate"] != temporal.SometimePast ||
		refs["stays-alumni"] != temporal.AlwaysFut ||
		refs["plain"] != temporal.AtT {
		t.Fatalf("refs = %v", refs)
	}
}

func TestModalKeywordVsRelationName(t *testing.T) {
	// A relation literally named "past" still works: the marker is only
	// recognized when another word follows.
	src := `
source schema { E(a) }
target schema { past(a) }
tgd: E(x) -> past(x)
`
	f, err := ParseMapping(src)
	if err != nil {
		t.Fatal(err)
	}
	if f.Temporal != nil {
		t.Fatal("plain mapping misread as temporal")
	}
	if f.Mapping.TGDs[0].Head[0].Rel != "past" {
		t.Fatalf("head = %v", f.Mapping.TGDs[0].Head)
	}
}

func TestModalErrors(t *testing.T) {
	if _, err := ParseMapping(`
source schema { E(a) }
target schema { F(a) }
tgd: E(x) -> always sideways F(x)
`); err == nil || !strings.Contains(err.Error(), "'past' or 'future'") {
		t.Fatalf("bad always direction: %v", err)
	}
	// Cross-ref existential caught by temporal validation.
	if _, err := ParseMapping(`
source schema { E(a) }
target schema { F(a, b)
                G(a, b) }
tgd: E(x) -> exists y . F(x, y), past G(x, y)
`); err == nil || !strings.Contains(err.Error(), "spans temporal references") {
		t.Fatalf("cross-ref existential: %v", err)
	}
}
