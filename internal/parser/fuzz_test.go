package parser

import (
	"testing"

	"repro/internal/interval"
	"repro/internal/value"
)

// FuzzParseMapping checks the mapping parser never panics and that
// accepted inputs re-parse after formatting (when they produce plain
// mappings).
func FuzzParseMapping(f *testing.F) {
	f.Add(paperMapping)
	f.Add("source schema { E(a) }\ntarget schema { F(a) }\ntgd: E(x) -> F(x)")
	f.Add("tgd: E(x) -> exists y . F(x, y)")
	f.Add("source schema { E(a) }\ntarget schema { F(a) }\ntgd: E(x) -> past F(x)")
	f.Add(`query q(x) :- F(x, "lit")`)
	f.Add("egd k: F(x, y), F(x, z) -> y = z")
	f.Add("# comment only\n\n")
	f.Add("source schema { E(a, b, c, d, e) }")
	f.Fuzz(func(t *testing.T, src string) {
		file, err := ParseMapping(src)
		if err != nil || file.Temporal != nil {
			return
		}
		// Accepted plain mappings format and re-parse.
		text := FormatMapping(file.Mapping, file.Queries)
		if _, err := ParseMapping(text); err != nil {
			t.Fatalf("formatted output does not reparse: %v\ninput: %q\nformatted:\n%s", err, src, text)
		}
	})
}

// FuzzParseFacts checks the fact parser never panics and accepted
// instances round-trip through FormatFacts.
func FuzzParseFacts(f *testing.F) {
	f.Add(paperFacts)
	f.Add("R(N7^[1,3), plain, \"quoted\") @ [1, 3)")
	f.Add("R(a) @ [0, inf)")
	f.Add("R() @ [1,2)")
	f.Add("R(a) @ [5,5)")
	f.Add("R(a@b) @ [1,2)")
	f.Fuzz(func(t *testing.T, src string) {
		ic, err := ParseFacts(src, nil)
		if err != nil {
			return
		}
		back, err := ParseFacts(FormatFacts(ic), nil)
		if err != nil {
			t.Fatalf("formatted facts do not reparse: %v\ninput: %q", err, src)
		}
		if !back.Equal(ic) {
			t.Fatalf("round trip changed instance\ninput: %q\ngot:\n%s\nwant:\n%s", src, back, ic)
		}
	})
}

// FuzzValueParse checks the value parser against its printer.
func FuzzValueParse(f *testing.F) {
	f.Add("Ada")
	f.Add("N7")
	f.Add("N7@3")
	f.Add("N7^[1,3)")
	f.Add("[5,inf)")
	f.Add("")
	f.Fuzz(func(t *testing.T, s string) {
		v, err := value.Parse(s)
		if err != nil {
			return
		}
		back, err := value.Parse(v.String())
		if err != nil || back != v {
			t.Fatalf("value round trip: %q -> %v -> %v (%v)", s, v, back, err)
		}
	})
}

// FuzzIntervalParse checks the interval parser against its printer.
func FuzzIntervalParse(f *testing.F) {
	f.Add("[1,5)")
	f.Add("[0,inf)")
	f.Add("[,)")
	f.Add("[5,2)")
	f.Fuzz(func(t *testing.T, s string) {
		iv, err := interval.Parse(s)
		if err != nil {
			return
		}
		back, err := interval.Parse(iv.String())
		if err != nil || back != iv {
			t.Fatalf("interval round trip: %q -> %v -> %v (%v)", s, iv, back, err)
		}
	})
}
