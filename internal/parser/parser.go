package parser

import (
	"fmt"
	"sort"

	"repro/internal/dependency"
	"repro/internal/fact"
	"repro/internal/instance"
	"repro/internal/interval"
	"repro/internal/logic"
	"repro/internal/query"
	"repro/internal/schema"
	"repro/internal/temporal"
	"repro/internal/value"
)

// File is the result of parsing a mapping file: the data exchange setting
// plus any queries declared alongside it (disjuncts with the same name
// are grouped into unions). When any tgd head uses a modal marker (past,
// future, always past, always future — the §7 extension), Temporal holds
// the full setting with those dependencies and the plain tgds lifted to
// AtT; Mapping then carries only the non-modal dependencies.
type File struct {
	Mapping  *dependency.Mapping
	Temporal *temporal.Mapping
	Queries  []query.UCQ
}

// parser is a recursive-descent parser over the token stream.
type parser struct {
	toks []token
	pos  int
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) skipNewlines() {
	for p.cur().kind == tokNewline {
		p.pos++
	}
}

func (p *parser) expect(k tokenKind) (token, error) {
	t := p.cur()
	if t.kind != k {
		return t, errorf(t.line, t.col, "expected %v, found %v %q", k, t.kind, t.text)
	}
	p.pos++
	return t, nil
}

// ParseMapping parses a complete mapping file.
func ParseMapping(src string) (*File, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	file := &File{Mapping: &dependency.Mapping{}}
	var temporalTGDs []temporal.TGD
	queryGroups := make(map[string][]query.CQ)
	var queryOrder []string

	for {
		p.skipNewlines()
		t := p.cur()
		if t.kind == tokEOF {
			break
		}
		if t.kind != tokWord {
			return nil, errorf(t.line, t.col, "expected a declaration, found %v %q", t.kind, t.text)
		}
		switch t.text {
		case "source", "target":
			sch, err := p.parseSchemaBlock()
			if err != nil {
				return nil, err
			}
			if t.text == "source" {
				file.Mapping.Source = sch
			} else {
				file.Mapping.Target = sch
			}
		case "tgd":
			d, refs, err := p.parseTGD()
			if err != nil {
				return nil, err
			}
			if refs == nil {
				file.Mapping.TGDs = append(file.Mapping.TGDs, d)
			} else {
				head := make([]temporal.HeadAtom, len(d.Head))
				for i, a := range d.Head {
					head[i] = temporal.HeadAtom{Ref: refs[i], Atom: a}
				}
				temporalTGDs = append(temporalTGDs, temporal.TGD{Name: d.Name, Body: d.Body, Head: head})
			}
		case "egd":
			d, err := p.parseEGD()
			if err != nil {
				return nil, err
			}
			file.Mapping.EGDs = append(file.Mapping.EGDs, d)
		case "query":
			q, err := p.parseQuery()
			if err != nil {
				return nil, err
			}
			if _, seen := queryGroups[q.Name]; !seen {
				queryOrder = append(queryOrder, q.Name)
			}
			queryGroups[q.Name] = append(queryGroups[q.Name], q)
		default:
			return nil, errorf(t.line, t.col, "unknown declaration %q (want source, target, tgd, egd, or query)", t.text)
		}
	}

	for _, name := range queryOrder {
		u, err := query.NewUCQ(name, queryGroups[name]...)
		if err != nil {
			return nil, err
		}
		if err := u.Validate(file.Mapping.Target); err != nil {
			return nil, err
		}
		file.Queries = append(file.Queries, u)
	}
	if err := file.Mapping.Validate(); err != nil {
		return nil, err
	}
	if len(temporalTGDs) > 0 {
		tm := &temporal.Mapping{
			Source: file.Mapping.Source,
			Target: file.Mapping.Target,
			EGDs:   file.Mapping.EGDs,
		}
		// Plain tgds participate as AtT dependencies of the temporal
		// setting, so one chase covers the whole mapping.
		for _, d := range file.Mapping.TGDs {
			head := make([]temporal.HeadAtom, len(d.Head))
			for i, a := range d.Head {
				head[i] = temporal.HeadAtom{Ref: temporal.AtT, Atom: a}
			}
			tm.TGDs = append(tm.TGDs, temporal.TGD{Name: d.Name, Body: d.Body, Head: head})
		}
		tm.TGDs = append(tm.TGDs, temporalTGDs...)
		if err := tm.Validate(); err != nil {
			return nil, err
		}
		file.Temporal = tm
	}
	return file, nil
}

// parseSchemaBlock parses: ("source"|"target") "schema" "{" decl* "}".
func (p *parser) parseSchemaBlock() (*schema.Schema, error) {
	p.next() // source | target
	if t := p.cur(); t.kind == tokWord && t.text == "schema" {
		p.next()
	}
	if _, err := p.expect(tokLBrace); err != nil {
		return nil, err
	}
	sch, _ := schema.New()
	for {
		p.skipNewlines()
		if p.cur().kind == tokRBrace {
			p.next()
			return sch, nil
		}
		name, err := p.expect(tokWord)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokLParen); err != nil {
			return nil, err
		}
		var attrs []string
		for {
			a, err := p.expect(tokWord)
			if err != nil {
				return nil, err
			}
			attrs = append(attrs, a.text)
			if p.cur().kind == tokComma {
				p.next()
				continue
			}
			break
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		rel, err := schema.NewRelation(name.text, attrs...)
		if err != nil {
			return nil, errorf(name.line, name.col, "%v", err)
		}
		if err := sch.Add(rel); err != nil {
			return nil, errorf(name.line, name.col, "%v", err)
		}
	}
}

// parseTerm parses one term inside a dependency or query atom: quoted
// strings and digit-initial words are constants, other words variables.
func (p *parser) parseTerm() (logic.Term, error) {
	t := p.cur()
	switch t.kind {
	case tokString:
		p.next()
		return logic.Const(t.text), nil
	case tokWord:
		p.next()
		if t.text[0] >= '0' && t.text[0] <= '9' {
			return logic.Const(t.text), nil
		}
		return logic.Var(t.text), nil
	default:
		return logic.Term{}, errorf(t.line, t.col, "expected a term, found %v %q", t.kind, t.text)
	}
}

// parseAtom parses R(t1, ..., tn).
func (p *parser) parseAtom() (logic.Atom, error) {
	name, err := p.expect(tokWord)
	if err != nil {
		return logic.Atom{}, err
	}
	if _, err := p.expect(tokLParen); err != nil {
		return logic.Atom{}, err
	}
	var terms []logic.Term
	for {
		term, err := p.parseTerm()
		if err != nil {
			return logic.Atom{}, err
		}
		terms = append(terms, term)
		if p.cur().kind == tokComma {
			p.next()
			continue
		}
		break
	}
	if _, err := p.expect(tokRParen); err != nil {
		return logic.Atom{}, err
	}
	return logic.Atom{Rel: name.text, Terms: terms}, nil
}

// parseAtomList parses A1, A2, ..., Ak.
func (p *parser) parseAtomList() (logic.Conjunction, error) {
	var conj logic.Conjunction
	for {
		a, err := p.parseAtom()
		if err != nil {
			return nil, err
		}
		conj = append(conj, a)
		if p.cur().kind == tokComma {
			p.next()
			continue
		}
		return conj, nil
	}
}

// parseOptionalLabel parses [name] ":" after the tgd/egd keyword.
func (p *parser) parseOptionalLabel() (string, error) {
	name := ""
	if t := p.cur(); t.kind == tokWord {
		name = t.text
		p.next()
	}
	_, err := p.expect(tokColon)
	return name, err
}

// parseTGD parses: "tgd" [name] ":" body "->" ["exists" vars "."] head,
// where each head atom may carry a modal marker ("past", "future",
// "always past", "always future" — the §7 extension). refs is nil for a
// plain tgd and otherwise holds one Ref per head atom.
func (p *parser) parseTGD() (dependency.TGD, []temporal.Ref, error) {
	p.next() // tgd
	name, err := p.parseOptionalLabel()
	if err != nil {
		return dependency.TGD{}, nil, err
	}
	body, err := p.parseAtomList()
	if err != nil {
		return dependency.TGD{}, nil, err
	}
	if _, err := p.expect(tokArrow); err != nil {
		return dependency.TGD{}, nil, err
	}
	var declared []string
	if t := p.cur(); t.kind == tokWord && t.text == "exists" {
		p.next()
		// The existential variable list is purely documentary — the
		// existentials are exactly the head variables missing from the
		// body — but we parse and check it for honesty.
		for {
			v, err := p.expect(tokWord)
			if err != nil {
				return dependency.TGD{}, nil, err
			}
			declared = append(declared, v.text)
			if p.cur().kind == tokComma {
				p.next()
				continue
			}
			break
		}
		if _, err := p.expect(tokDot); err != nil {
			return dependency.TGD{}, nil, err
		}
	}
	head, refs, err := p.parseHeadAtomList()
	if err != nil {
		return dependency.TGD{}, nil, err
	}
	d := dependency.TGD{Name: name, Body: body, Head: head}
	if declared != nil {
		actual := d.Existentials()
		sort.Strings(declared)
		sorted := append([]string(nil), actual...)
		sort.Strings(sorted)
		mismatch := len(declared) != len(sorted)
		if !mismatch {
			for i := range declared {
				if declared[i] != sorted[i] {
					mismatch = true
					break
				}
			}
		}
		if mismatch {
			return dependency.TGD{}, nil, fmt.Errorf("tgd %s: declares %v existential(s), body/head imply %v", name, declared, actual)
		}
	}
	return d, refs, nil
}

// parseHeadAtomList parses head atoms, each optionally prefixed by a
// modal marker. A marker word is recognized only when another word (the
// relation name) follows it, so relations named "past" stay usable.
func (p *parser) parseHeadAtomList() (logic.Conjunction, []temporal.Ref, error) {
	var conj logic.Conjunction
	var refs []temporal.Ref
	modal := false
	for {
		ref := temporal.AtT
		if t := p.cur(); t.kind == tokWord && p.toks[p.pos+1].kind == tokWord {
			switch t.text {
			case "past":
				ref = temporal.SometimePast
				p.next()
			case "future":
				ref = temporal.SometimeFut
				p.next()
			case "always":
				p.next()
				dir, err := p.expect(tokWord)
				if err != nil {
					return nil, nil, err
				}
				switch dir.text {
				case "past":
					ref = temporal.AlwaysPast
				case "future":
					ref = temporal.AlwaysFut
				default:
					return nil, nil, errorf(dir.line, dir.col, "expected 'past' or 'future' after 'always', found %q", dir.text)
				}
			}
		}
		if ref != temporal.AtT {
			modal = true
		}
		a, err := p.parseAtom()
		if err != nil {
			return nil, nil, err
		}
		conj = append(conj, a)
		refs = append(refs, ref)
		if p.cur().kind == tokComma {
			p.next()
			continue
		}
		break
	}
	if !modal {
		return conj, nil, nil
	}
	return conj, refs, nil
}

// parseEGD parses: "egd" [name] ":" body "->" x "=" y.
func (p *parser) parseEGD() (dependency.EGD, error) {
	p.next() // egd
	name, err := p.parseOptionalLabel()
	if err != nil {
		return dependency.EGD{}, err
	}
	body, err := p.parseAtomList()
	if err != nil {
		return dependency.EGD{}, err
	}
	if _, err := p.expect(tokArrow); err != nil {
		return dependency.EGD{}, err
	}
	x1, err := p.expect(tokWord)
	if err != nil {
		return dependency.EGD{}, err
	}
	if _, err := p.expect(tokEq); err != nil {
		return dependency.EGD{}, err
	}
	x2, err := p.expect(tokWord)
	if err != nil {
		return dependency.EGD{}, err
	}
	return dependency.EGD{Name: name, Body: body, X1: x1.text, X2: x2.text}, nil
}

// parseQuery parses: "query" name "(" vars ")" ":-" body.
func (p *parser) parseQuery() (query.CQ, error) {
	p.next() // query
	name, err := p.expect(tokWord)
	if err != nil {
		return query.CQ{}, err
	}
	if _, err := p.expect(tokLParen); err != nil {
		return query.CQ{}, err
	}
	var head []string
	for {
		v, err := p.expect(tokWord)
		if err != nil {
			return query.CQ{}, err
		}
		head = append(head, v.text)
		if p.cur().kind == tokComma {
			p.next()
			continue
		}
		break
	}
	if _, err := p.expect(tokRParen); err != nil {
		return query.CQ{}, err
	}
	if _, err := p.expect(tokTurn); err != nil {
		return query.CQ{}, err
	}
	body, err := p.parseAtomList()
	if err != nil {
		return query.CQ{}, err
	}
	return query.CQ{Name: name.text, Head: head, Body: body}, nil
}

// ParseFacts parses a fact file — one "R(v1, ..., vn) @ [s, e)" per line —
// into a concrete instance over the given schema (nil for schemaless).
func ParseFacts(src string, sch *schema.Schema) (*instance.Concrete, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	out := instance.NewConcrete(sch)
	for {
		p.skipNewlines()
		if p.cur().kind == tokEOF {
			return out, nil
		}
		f, err := p.parseFact()
		if err != nil {
			return nil, err
		}
		if _, err := out.Insert(f); err != nil {
			return nil, err
		}
	}
}

// parseFact parses R(v1, ..., vn) @ [s, e).
func (p *parser) parseFact() (fact.CFact, error) {
	name, err := p.expect(tokWord)
	if err != nil {
		return fact.CFact{}, err
	}
	if _, err := p.expect(tokLParen); err != nil {
		return fact.CFact{}, err
	}
	var args []value.Value
	for {
		t := p.cur()
		switch t.kind {
		case tokString:
			args = append(args, value.NewConst(t.text))
			p.next()
		case tokWord:
			v, err := value.Parse(t.text)
			if err != nil {
				return fact.CFact{}, errorf(t.line, t.col, "bad value %q: %v", t.text, err)
			}
			args = append(args, v)
			p.next()
		default:
			return fact.CFact{}, errorf(t.line, t.col, "expected a value, found %v %q", t.kind, t.text)
		}
		if p.cur().kind == tokComma {
			p.next()
			continue
		}
		break
	}
	if _, err := p.expect(tokRParen); err != nil {
		return fact.CFact{}, err
	}
	if _, err := p.expect(tokAt); err != nil {
		return fact.CFact{}, err
	}
	ivTok, err := p.expect(tokLBracket)
	if err != nil {
		return fact.CFact{}, err
	}
	iv, err := interval.Parse(ivTok.text)
	if err != nil {
		return fact.CFact{}, errorf(ivTok.line, ivTok.col, "%v", err)
	}
	return fact.NewC(name.text, iv, args...), nil
}

// ParseQueryLine parses a single "query ..." declaration, for the CLI's
// -q flag.
func ParseQueryLine(src string) (query.CQ, error) {
	toks, err := lex(src)
	if err != nil {
		return query.CQ{}, err
	}
	p := &parser{toks: toks}
	p.skipNewlines()
	if t := p.cur(); t.kind == tokWord && t.text == "query" {
		q, err := p.parseQuery()
		if err != nil {
			return query.CQ{}, err
		}
		p.skipNewlines()
		if _, err := p.expect(tokEOF); err != nil {
			return query.CQ{}, err
		}
		return q, nil
	}
	return query.CQ{}, fmt.Errorf("parser: query must start with the keyword 'query'")
}
