package temporal

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/chase"
	"repro/internal/dependency"
	"repro/internal/fact"
	"repro/internal/instance"
	"repro/internal/interval"
	"repro/internal/logic"
	"repro/internal/paperex"
	"repro/internal/schema"
	"repro/internal/value"
	"repro/internal/verify"
)

// phdMapping is the paper's §7 example:
//
//	∀n PhDgrad(n) → ◆ ∃adv, top . PhDCan(n, adv, top)
func phdMapping() *Mapping {
	src := schema.MustNew(schema.MustRelation("PhDgrad", "name"))
	tgt := schema.MustNew(schema.MustRelation("PhDCan", "name", "adviser", "topic"))
	return &Mapping{
		Source: src,
		Target: tgt,
		TGDs: []TGD{{
			Name: "was-candidate",
			Body: logic.Conjunction{logic.NewAtom("PhDgrad", logic.Var("n"))},
			Head: []HeadAtom{{
				Ref:  SometimePast,
				Atom: logic.NewAtom("PhDCan", logic.Var("n"), logic.Var("adv"), logic.Var("top")),
			}},
		}},
	}
}

func TestPhDExampleChase(t *testing.T) {
	m := phdMapping()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	ic := instance.NewConcrete(m.Source)
	ic.MustInsert(fact.NewC("PhDgrad", paperex.Iv(2016, 2019), paperex.C("ada")))
	jc, stats, err := Chase(ic, m, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Canonical witness: PhDCan(ada, N_adv, N_top) at [2015, 2016).
	fs := jc.Facts()
	if len(fs) != 1 {
		t.Fatalf("result:\n%s", jc)
	}
	f := fs[0]
	if f.Rel != "PhDCan" || f.T != paperex.Iv(2015, 2016) || f.Args[0] != paperex.C("ada") {
		t.Fatalf("witness fact = %v", f)
	}
	if f.Args[1].Kind() != value.AnnNull || f.Args[2].Kind() != value.AnnNull {
		t.Fatalf("adviser/topic should be unknowns: %v", f)
	}
	if f.Args[1].ID == f.Args[2].ID {
		t.Fatal("adviser and topic are distinct unknowns")
	}
	if stats.TGDFires != 1 || stats.NullsCreated != 2 {
		t.Fatalf("stats = %+v", stats)
	}
	if ok, why := Satisfies(ic, jc, m); !ok {
		t.Fatalf("chase result does not satisfy the mapping: %s", why)
	}
}

func TestPastAtTimeZeroFails(t *testing.T) {
	// A graduate "since the beginning of time" has no possible candidacy:
	// discrete time starts at 0, so ◆ at 0 is unsatisfiable.
	m := phdMapping()
	ic := instance.NewConcrete(m.Source)
	ic.MustInsert(fact.NewC("PhDgrad", paperex.Iv(0, 5), paperex.C("eve")))
	if _, _, err := Chase(ic, m, nil); !errors.Is(err, ErrNoWitness) {
		t.Fatalf("err = %v, want ErrNoWitness", err)
	}
}

func TestChaseResultNotUniversal(t *testing.T) {
	// The paper's open question, answered in the negative: two admissible
	// witness placements give solutions with no homomorphism between them,
	// so no chase with a fixed witness rule can be universal.
	m := phdMapping()
	ic := instance.NewConcrete(m.Source)
	ic.MustInsert(fact.NewC("PhDgrad", paperex.Iv(2, 3), paperex.C("ada")))
	jc, _, err := Chase(ic, m, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Chase placed the witness at [1,2). The alternative solution places
	// it at [0,1) instead.
	alt := instance.NewConcrete(m.Target)
	var g value.NullGen
	alt.MustInsert(fact.NewC("PhDCan", paperex.Iv(0, 1), paperex.C("ada"), g.FreshAnn(paperex.Iv(0, 1)), g.FreshAnn(paperex.Iv(0, 1))))
	okAlt, why := Satisfies(ic, alt, m)
	if !okAlt {
		t.Fatalf("alternative witness placement must be a solution: %s", why)
	}
	// Both are solutions, but neither maps into the other: per-snapshot
	// homomorphisms cannot move facts across time points.
	if verify.AbstractHom(jc.Abstract(), alt.Abstract()) {
		t.Fatal("chase result mapped into the alternative solution — it would be universal")
	}
	if verify.AbstractHom(alt.Abstract(), jc.Abstract()) {
		t.Fatal("alternative mapped into the chase result")
	}
}

func TestAlwaysFuture(t *testing.T) {
	// Tenure(n) → ⊞ Emeritus(n, u): once tenured at ℓ, emeritus rights at
	// every later point.
	src := schema.MustNew(schema.MustRelation("Tenure", "name"))
	tgt := schema.MustNew(schema.MustRelation("Emeritus", "name", "grant"))
	m := &Mapping{Source: src, Target: tgt, TGDs: []TGD{{
		Name: "tenure-emeritus",
		Body: logic.Conjunction{logic.NewAtom("Tenure", logic.Var("n"))},
		Head: []HeadAtom{{Ref: AlwaysFut, Atom: logic.NewAtom("Emeritus", logic.Var("n"), logic.Var("u"))}},
	}}}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	ic := instance.NewConcrete(src)
	ic.MustInsert(fact.NewC("Tenure", paperex.Iv(5, 8), paperex.C("bob")))
	jc, _, err := Chase(ic, m, nil)
	if err != nil {
		t.Fatal(err)
	}
	fs := jc.Facts()
	if len(fs) != 1 || fs[0].T != (interval.Interval{Start: 6, End: interval.Infinity}) {
		t.Fatalf("emeritus interval = %v", fs)
	}
	if ok, why := Satisfies(ic, jc, m); !ok {
		t.Fatalf("not satisfied: %s", why)
	}
	// Removing the tail breaks satisfaction.
	cut := instance.NewConcrete(tgt)
	cut.MustInsert(fs[0].WithInterval(paperex.Iv(6, 100)))
	if ok, _ := Satisfies(ic, cut, m); ok {
		t.Fatal("bounded emeritus wrongly satisfies ⊞")
	}
}

func TestAlwaysPast(t *testing.T) {
	// Retire(n) → ⊟ Member(n, u): retirement presumes membership at every
	// earlier point.
	src := schema.MustNew(schema.MustRelation("Retire", "name"))
	tgt := schema.MustNew(schema.MustRelation("Member", "name", "u"))
	m := &Mapping{Source: src, Target: tgt, TGDs: []TGD{{
		Name: "retire-member",
		Body: logic.Conjunction{logic.NewAtom("Retire", logic.Var("n"))},
		Head: []HeadAtom{{Ref: AlwaysPast, Atom: logic.NewAtom("Member", logic.Var("n"), logic.Var("u"))}},
	}}}
	ic := instance.NewConcrete(src)
	ic.MustInsert(fact.NewC("Retire", paperex.Iv(4, 6), paperex.C("cy")))
	jc, _, err := Chase(ic, m, nil)
	if err != nil {
		t.Fatal(err)
	}
	fs := jc.Facts()
	// Required points: [0, 5) (strictly before the last retirement point 5).
	if len(fs) != 1 || fs[0].T != paperex.Iv(0, 5) {
		t.Fatalf("member interval = %v", fs)
	}
	if ok, why := Satisfies(ic, jc, m); !ok {
		t.Fatalf("not satisfied: %s", why)
	}
	// The degenerate single-point match at time 0 is vacuous.
	ic0 := instance.NewConcrete(src)
	ic0.MustInsert(fact.NewC("Retire", paperex.Iv(0, 1), paperex.C("dy")))
	jc0, _, err := Chase(ic0, m, nil)
	if err != nil {
		t.Fatal(err)
	}
	if jc0.Len() != 0 {
		t.Fatalf("vacuous ⊟ produced facts:\n%s", jc0)
	}
	if ok, why := Satisfies(ic0, jc0, m); !ok {
		t.Fatalf("vacuous case not satisfied: %s", why)
	}
}

func TestSometimeFuture(t *testing.T) {
	// Submit(p) → ♦ Decision(p, d): every submission eventually gets some
	// decision.
	src := schema.MustNew(schema.MustRelation("Submit", "paper"))
	tgt := schema.MustNew(schema.MustRelation("Decision", "paper", "outcome"))
	m := &Mapping{Source: src, Target: tgt, TGDs: []TGD{{
		Name: "eventually-decided",
		Body: logic.Conjunction{logic.NewAtom("Submit", logic.Var("p"))},
		Head: []HeadAtom{{Ref: SometimeFut, Atom: logic.NewAtom("Decision", logic.Var("p"), logic.Var("d"))}},
	}}}
	ic := instance.NewConcrete(src)
	ic.MustInsert(fact.NewC("Submit", paperex.Iv(3, 6), paperex.C("pX")))
	ic.MustInsert(fact.NewC("Submit", interval.Interval{Start: 10, End: interval.Infinity}, paperex.C("pY")))
	jc, _, err := Chase(ic, m, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ok, why := Satisfies(ic, jc, m); !ok {
		t.Fatalf("not satisfied: %s", why)
	}
	// pX decided at [6,7); pY needs a cofinal decision: [11, inf).
	foundX, foundY := false, false
	for _, f := range jc.Facts() {
		switch f.Args[0] {
		case paperex.C("pX"):
			foundX = f.T == paperex.Iv(6, 7)
		case paperex.C("pY"):
			foundY = f.T == (interval.Interval{Start: 11, End: interval.Infinity})
		}
	}
	if !foundX || !foundY {
		t.Fatalf("witness intervals wrong:\n%s", jc)
	}
}

func TestMixedHeadWithEgd(t *testing.T) {
	// Hire(n, c) → Emp2(n, c, s) at t ∧ ◆ Applied(n, c); the salary key
	// egd still applies to the AtT part.
	src := schema.MustNew(schema.MustRelation("Hire", "name", "company"))
	tgt := schema.MustNew(
		schema.MustRelation("Emp2", "name", "company", "salary"),
		schema.MustRelation("Applied", "name", "company"),
	)
	m := &Mapping{
		Source: src, Target: tgt,
		TGDs: []TGD{{
			Name: "hire",
			Body: logic.Conjunction{logic.NewAtom("Hire", logic.Var("n"), logic.Var("c"))},
			Head: []HeadAtom{
				{Ref: AtT, Atom: logic.NewAtom("Emp2", logic.Var("n"), logic.Var("c"), logic.Var("s"))},
				{Ref: SometimePast, Atom: logic.NewAtom("Applied", logic.Var("n"), logic.Var("c"))},
			},
		}},
		EGDs: []dependency.EGD{{
			Name: "key",
			Body: logic.Conjunction{
				logic.NewAtom("Emp2", logic.Var("n"), logic.Var("c"), logic.Var("s")),
				logic.NewAtom("Emp2", logic.Var("n"), logic.Var("c"), logic.Var("s2")),
			},
			X1: "s", X2: "s2",
		}},
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	ic := instance.NewConcrete(src)
	ic.MustInsert(fact.NewC("Hire", paperex.Iv(5, 9), paperex.C("ada"), paperex.C("X")))
	jc, _, err := Chase(ic, m, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ok, why := Satisfies(ic, jc, m); !ok {
		t.Fatalf("not satisfied: %s", why)
	}
	hasEmp, hasApplied := false, false
	for _, f := range jc.Facts() {
		switch f.Rel {
		case "Emp2":
			hasEmp = f.T == paperex.Iv(5, 9)
		case "Applied":
			hasApplied = f.T == paperex.Iv(4, 5)
		}
	}
	if !hasEmp || !hasApplied {
		t.Fatalf("result:\n%s", jc)
	}
}

func TestValidateRejectsCrossRefExistential(t *testing.T) {
	src := schema.MustNew(schema.MustRelation("A", "x"))
	tgt := schema.MustNew(schema.MustRelation("B", "x", "y"), schema.MustRelation("D", "x", "y"))
	m := &Mapping{Source: src, Target: tgt, TGDs: []TGD{{
		Name: "bad",
		Body: logic.Conjunction{logic.NewAtom("A", logic.Var("x"))},
		Head: []HeadAtom{
			{Ref: AtT, Atom: logic.NewAtom("B", logic.Var("x"), logic.Var("y"))},
			{Ref: SometimePast, Atom: logic.NewAtom("D", logic.Var("x"), logic.Var("y"))},
		},
	}}}
	if err := m.Validate(); err == nil {
		t.Fatal("existential spanning Ref classes must be rejected")
	}
}

func TestBaseCaseMatchesPlainChase(t *testing.T) {
	// A temporal mapping using only AtT must agree with the plain c-chase.
	pm := paperex.EmploymentMapping()
	m := &Mapping{Source: pm.Source, Target: pm.Target, EGDs: pm.EGDs}
	for _, d := range pm.TGDs {
		head := make([]HeadAtom, len(d.Head))
		for i, a := range d.Head {
			head[i] = HeadAtom{Ref: AtT, Atom: a}
		}
		m.TGDs = append(m.TGDs, TGD{Name: d.Name, Body: d.Body, Head: head})
	}
	ic := paperex.Figure4()
	jc, _, err := Chase(ic, m, nil)
	if err != nil {
		t.Fatal(err)
	}
	plain, _, err := chase.Concrete(ic, pm, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !verify.HomEquivalent(jc.Abstract(), plain.Abstract()) {
		t.Fatalf("AtT-only temporal chase differs from plain c-chase:\n%s\nvs\n%s", jc, plain)
	}
	if ok, why := Satisfies(ic, jc, m); !ok {
		t.Fatalf("not satisfied: %s", why)
	}
}

func TestSatisfiesDetectsViolations(t *testing.T) {
	m := phdMapping()
	ic := instance.NewConcrete(m.Source)
	ic.MustInsert(fact.NewC("PhDgrad", paperex.Iv(2016, 2019), paperex.C("ada")))
	// Empty target: ◆ unsatisfied.
	empty := instance.NewConcrete(m.Target)
	if ok, why := Satisfies(ic, empty, m); ok || why == "" {
		t.Fatal("empty target accepted")
	}
	// Candidacy only in the future: still unsatisfied.
	late := instance.NewConcrete(m.Target)
	var g value.NullGen
	late.MustInsert(fact.NewC("PhDCan", paperex.Iv(2020, 2021), paperex.C("ada"), g.FreshAnn(paperex.Iv(2020, 2021)), g.FreshAnn(paperex.Iv(2020, 2021))))
	if ok, _ := Satisfies(ic, late, m); ok {
		t.Fatal("future candidacy wrongly satisfies ◆")
	}
	// Candidacy before 2016 with constants: satisfied.
	good := instance.NewConcrete(m.Target)
	good.MustInsert(fact.NewC("PhDCan", paperex.Iv(2010, 2016), paperex.C("ada"), paperex.C("prof"), paperex.C("databases")))
	if ok, why := Satisfies(ic, good, m); !ok {
		t.Fatalf("constant candidacy rejected: %s", why)
	}
}

func TestTemporalStrings(t *testing.T) {
	m := phdMapping()
	d := m.TGDs[0]
	s := d.String()
	if !strings.Contains(s, "◆") || !strings.Contains(s, "∃") {
		t.Fatalf("TGD String = %q", s)
	}
	if ex := d.Existentials(); len(ex) != 2 {
		t.Fatalf("Existentials = %v", ex)
	}
	for ref, want := range map[Ref]string{
		AtT: "", SometimePast: "◆", SometimeFut: "♦", AlwaysPast: "⊟", AlwaysFut: "⊞",
	} {
		if ref.String() != want {
			t.Fatalf("%d.String() = %q", ref, ref.String())
		}
	}
}

func TestTemporalMappingValidation(t *testing.T) {
	m := phdMapping()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := &Mapping{}
	if bad.Validate() == nil {
		t.Fatal("nil schemas accepted")
	}
	overlap := &Mapping{Source: m.Source, Target: m.Source}
	if overlap.Validate() == nil {
		t.Fatal("non-disjoint schemas accepted")
	}
	emptyHead := phdMapping()
	emptyHead.TGDs[0].Head = nil
	if emptyHead.Validate() == nil {
		t.Fatal("empty head accepted")
	}
}

func TestSometimeFutureUnboundedBody(t *testing.T) {
	// Body holding on [s,inf): the cofinal-witness case of existsAfter and
	// the checker's unbounded-segment branch.
	src := schema.MustNew(schema.MustRelation("Submit", "paper"))
	tgt := schema.MustNew(schema.MustRelation("Decision", "paper", "outcome"))
	m := &Mapping{Source: src, Target: tgt, TGDs: []TGD{{
		Name: "eventually",
		Body: logic.Conjunction{logic.NewAtom("Submit", logic.Var("p"))},
		Head: []HeadAtom{{Ref: SometimeFut, Atom: logic.NewAtom("Decision", logic.Var("p"), logic.Var("d"))}},
	}}}
	ic := instance.NewConcrete(src)
	ic.MustInsert(fact.NewC("Submit", interval.Interval{Start: 4, End: interval.Infinity}, paperex.C("pZ")))
	jc, _, err := Chase(ic, m, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ok, why := Satisfies(ic, jc, m); !ok {
		t.Fatalf("unsatisfied: %s", why)
	}
	// A bounded decision cannot satisfy a cofinal requirement.
	bounded := instance.NewConcrete(tgt)
	bounded.MustInsert(fact.NewC("Decision", paperex.Iv(10, 20), paperex.C("pZ"), paperex.C("accept")))
	if ok, _ := Satisfies(ic, bounded, m); ok {
		t.Fatal("bounded decision wrongly satisfies cofinal ♦")
	}
}

func TestChaseIdempotentOnSatisfied(t *testing.T) {
	// Re-chasing a source whose requirements are already reflected in the
	// applicability check: the second chase of the same source produces a
	// result of the same shape (determinism), and alreadySatisfied
	// suppresses duplicate firings within one run (two identical body
	// matches from fragmented sources).
	m := phdMapping()
	ic := instance.NewConcrete(m.Source)
	// Two adjacent grad periods fragment the body matches; the witness of
	// the first does NOT satisfy the second (different t ranges), so two
	// firings are expected.
	ic.MustInsert(fact.NewC("PhDgrad", paperex.Iv(10, 12), paperex.C("ada")))
	ic.MustInsert(fact.NewC("PhDgrad", paperex.Iv(12, 14), paperex.C("ada")))
	jc, stats, err := Chase(ic, m, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ok, why := Satisfies(ic, jc, m); !ok {
		t.Fatalf("unsatisfied: %s", why)
	}
	if stats.TGDFires == 0 {
		t.Fatal("no firings")
	}
}

func TestSharedExistentialApplicability(t *testing.T) {
	// Two tgds populate B and C separately with DIFFERENT values; a third
	// tgd requires ∃y. B(x,y) ∧ C(x,y) — one shared witness. Independent
	// per-atom applicability checks would wrongly see both atoms
	// satisfied and skip the firing, leaving no joint witness; the chase
	// must fire and the result must satisfy the mapping.
	src := schema.MustNew(
		schema.MustRelation("A1", "x"),
		schema.MustRelation("A2", "x"),
		schema.MustRelation("A3", "x"),
	)
	tgt := schema.MustNew(
		schema.MustRelation("B", "x", "y"),
		schema.MustRelation("C", "x", "y"),
	)
	v := logic.Var
	m := &Mapping{Source: src, Target: tgt, TGDs: []TGD{
		{Name: "mkB", Body: logic.Conjunction{logic.NewAtom("A1", v("x"))},
			Head: []HeadAtom{{Ref: AtT, Atom: logic.NewAtom("B", v("x"), v("u"))}}},
		{Name: "mkC", Body: logic.Conjunction{logic.NewAtom("A2", v("x"))},
			Head: []HeadAtom{{Ref: AtT, Atom: logic.NewAtom("C", v("x"), v("w"))}}},
		{Name: "joint", Body: logic.Conjunction{logic.NewAtom("A3", v("x"))},
			Head: []HeadAtom{
				{Ref: AtT, Atom: logic.NewAtom("B", v("x"), v("y"))},
				{Ref: AtT, Atom: logic.NewAtom("C", v("x"), v("y"))},
			}},
	}}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	iv := paperex.Iv(1, 4)
	ic := instance.NewConcrete(src)
	ic.MustInsert(fact.NewC("A1", iv, paperex.C("a")))
	ic.MustInsert(fact.NewC("A2", iv, paperex.C("a")))
	ic.MustInsert(fact.NewC("A3", iv, paperex.C("a")))
	jc, _, err := Chase(ic, m, nil)
	if err != nil {
		t.Fatal(err)
	}
	// The joint tgd must have produced B and C sharing one null family.
	shared := false
	for _, fb := range jc.FactsOf("B") {
		if fb.Args[1].Kind() != value.AnnNull {
			continue
		}
		for _, fc := range jc.FactsOf("C") {
			if fc.Args[1] == fb.Args[1] {
				shared = true
			}
		}
	}
	if !shared {
		t.Fatalf("no joint witness produced:\n%s", jc)
	}
	if ok, why := Satisfies(ic, jc, m); !ok {
		t.Fatalf("not satisfied: %s", why)
	}
}
