package temporal

import (
	"fmt"

	"repro/internal/instance"
	"repro/internal/interval"
	"repro/internal/logic"
)

// Satisfies reports whether target ⊨ the temporal mapping for the given
// source, checking every sampled snapshot of the common refinement. The
// semantics, per Ref class of each tgd head (matching Chase's witness
// choice): at every time point ℓ where the body holds,
//
//	AtT:          the class conjunction holds at ℓ;
//	SometimePast: ∃ℓ' < ℓ where the class conjunction holds;
//	SometimeFut:  ∃ℓ' > ℓ likewise;
//	AlwaysPast:   the class conjunction holds at every ℓ' < ℓ;
//	AlwaysFut:    at every ℓ' > ℓ;
//
// with existential data variables shared within a class. Because source
// instances are complete and patterns carry no null literals, homomorphism
// existence into a target snapshot is uniform across a segment, so
// checking one representative per segment is exact.
func Satisfies(src, tgt *instance.Concrete, m *Mapping) (bool, string) {
	srcA, tgtA := src.Abstract(), tgt.Abstract()
	segs := commonSegments(srcA, tgtA)
	for _, d := range m.TGDs {
		classes := d.refClasses()
		for segIdx, seg := range segs {
			snap := srcA.Snapshot(seg.Iv.Start)
			violated := ""
			logic.ForEach(snap.Store(), d.Body, nil, func(h logic.Match) bool {
				for ref, conj := range classes {
					if !classSatisfied(tgtA, segs, segIdx, seg, ref, conj, h.Binding) {
						violated = fmt.Sprintf("tgd %s: %v%v unsatisfied for body match %v in segment %v",
							d.Name, ref, conj, h.Binding, seg.Iv)
						return false
					}
				}
				return true
			})
			if violated != "" {
				return false, violated
			}
		}
	}
	// Plain egds are checked per sampled snapshot.
	for _, d := range m.EGDs {
		for _, seg := range segs {
			snap := tgtA.Snapshot(seg.Iv.Start)
			violated := ""
			logic.ForEach(snap.Store(), d.Body, nil, func(h logic.Match) bool {
				if h.Binding[d.X1] != h.Binding[d.X2] {
					violated = fmt.Sprintf("egd %s violated in segment %v", d.Name, seg.Iv)
					return false
				}
				return true
			})
			if violated != "" {
				return false, violated
			}
		}
	}
	return true, ""
}

// refClasses groups the head atoms by temporal reference.
func (d TGD) refClasses() map[Ref]logic.Conjunction {
	out := make(map[Ref]logic.Conjunction)
	for _, h := range d.Head {
		out[h.Ref] = append(out[h.Ref], h.Atom)
	}
	return out
}

// commonSegments returns the segments of the common refinement of the
// given abstract instances.
func commonSegments(insts ...*instance.Abstract) []instance.Segment {
	pts := instance.SamplePoints(insts...)
	segs := make([]instance.Segment, len(pts))
	for i, s := range pts {
		end := interval.Infinity
		if i+1 < len(pts) {
			end = pts[i+1]
		}
		segs[i] = instance.Segment{Iv: interval.Interval{Start: s, End: end}}
	}
	return segs
}

// holdsAtSegment reports whether the class conjunction (under the body
// binding) has a homomorphism into the target snapshot of the given
// segment. Uniform across the segment's points.
func holdsAtSegment(tgtA *instance.Abstract, seg instance.Segment, conj logic.Conjunction, b logic.Binding) bool {
	return logic.Exists(tgtA.Snapshot(seg.Iv.Start).Store(), conj, b)
}

// classSatisfied decides one Ref class for a body match holding
// throughout segment segIdx. Because the body holds at *every* point ℓ of
// the segment, the modal conditions must hold for every such ℓ; the
// checks below quantify accordingly.
func classSatisfied(tgtA *instance.Abstract, segs []instance.Segment, segIdx int, seg instance.Segment, ref Ref, conj logic.Conjunction, b logic.Binding) bool {
	switch ref {
	case AtT:
		return holdsAtSegment(tgtA, seg, conj, b)

	case SometimePast:
		// Hardest at the segment's first point ℓ = seg.Start: a witness
		// ℓ' < seg.Start must exist in some earlier segment. (If it exists
		// for the first point it exists for all later ones.)
		if seg.Iv.Start == 0 {
			return false // no past of time 0
		}
		for j := 0; j < segIdx; j++ {
			if holdsAtSegment(tgtA, segs[j], conj, b) {
				return true
			}
		}
		return false

	case SometimeFut:
		// Hardest at the segment's last point. For a bounded segment a
		// witness after the segment suffices for every ℓ; for the final
		// unbounded segment every point needs a strictly later witness, so
		// the conjunction must hold cofinally — i.e. in the unbounded
		// segment itself.
		if seg.Iv.Unbounded() {
			return holdsAtSegment(tgtA, seg, conj, b)
		}
		for j := segIdx; j < len(segs); j++ {
			if j == segIdx {
				// Within the same segment, points after ℓ exist for every
				// ℓ except the last; the last point needs a later segment
				// or an in-segment witness at a strictly later point —
				// uniformity makes "the segment holds and has ≥ 2 points"
				// insufficient for its own last point, so only later
				// segments count here.
				continue
			}
			if holdsAtSegment(tgtA, segs[j], conj, b) {
				return true
			}
		}
		return false

	case AlwaysPast:
		// Must hold at every point before every ℓ in the segment; the
		// strongest requirement comes from the last ℓ: every earlier
		// segment entirely, plus every point of this segment except its
		// last. A multi-point segment therefore requires itself as well.
		for j := 0; j < segIdx; j++ {
			if !holdsAtSegment(tgtA, segs[j], conj, b) {
				return false
			}
		}
		if n, bounded := seg.Iv.Len(); !bounded || n > 1 {
			if !holdsAtSegment(tgtA, seg, conj, b) {
				return false
			}
		}
		return true

	case AlwaysFut:
		// Dual: every later segment entirely, plus this segment itself
		// when it has more than one point.
		for j := segIdx + 1; j < len(segs); j++ {
			if !holdsAtSegment(tgtA, segs[j], conj, b) {
				return false
			}
		}
		if n, bounded := seg.Iv.Len(); !bounded || n > 1 {
			if !holdsAtSegment(tgtA, seg, conj, b) {
				return false
			}
		}
		return true
	}
	return false
}
