// Package temporal implements the paper's §7 (future work) extension:
// schema mappings that can express temporal phenomena via modal
// operators. A temporal s-t tgd has a non-temporal body evaluated at a
// time point t, and head atoms tagged with a temporal reference:
//
//	AtT          ψ holds at t itself (the base case of the paper)
//	SometimePast ◆ψ — ψ held at some t' < t
//	SometimeFut  ♦ψ — ψ will hold at some t' > t
//	AlwaysPast   ⊟ψ — ψ held at every t' < t
//	AlwaysFut    ⊞ψ — ψ holds at every t' > t
//
// The paper's example (two-sorted FOL form):
//
//	∀n, t PhDgrad(n, t) → ∃adv, top, t' PhDCan(n, adv, top, t') ∧ t' < t
//
// is the SometimePast case. The chase is extended per the paper's
// sketch: a chase step picks witness snapshots for the existential
// temporal variables. This implementation makes the canonical
// deterministic choices documented on Chase; the result is always a
// solution (verified by Satisfies), but — answering the paper's open
// question in the negative — not necessarily a universal one: distinct
// admissible witness choices yield homomorphically incomparable
// solutions (see the package tests).
package temporal

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/chase"
	"repro/internal/dependency"
	"repro/internal/fact"
	"repro/internal/instance"
	"repro/internal/interval"
	"repro/internal/logic"
	"repro/internal/normalize"
	"repro/internal/schema"
	"repro/internal/value"
)

// Ref is the temporal reference of a head atom relative to the
// universally quantified time point t of the dependency.
type Ref int

const (
	// AtT asserts the head atom at t itself.
	AtT Ref = iota
	// SometimePast asserts the atom at some strictly earlier point (◆).
	SometimePast
	// SometimeFut asserts the atom at some strictly later point (♦).
	SometimeFut
	// AlwaysPast asserts the atom at every strictly earlier point (⊟).
	AlwaysPast
	// AlwaysFut asserts the atom at every strictly later point (⊞).
	AlwaysFut
)

func (r Ref) String() string {
	switch r {
	case SometimePast:
		return "◆"
	case SometimeFut:
		return "♦"
	case AlwaysPast:
		return "⊟"
	case AlwaysFut:
		return "⊞"
	default:
		return ""
	}
}

// HeadAtom is a target atom with its temporal reference.
type HeadAtom struct {
	Atom logic.Atom
	Ref  Ref
}

// TGD is a temporal source-to-target dependency: a non-temporal body
// (evaluated snapshot-wise, as in the paper's base case) and a head of
// temporally referenced atoms sharing one existential witness point per
// Ref class.
type TGD struct {
	Name string
	Body logic.Conjunction
	Head []HeadAtom
}

// Existentials returns the head data variables not bound by the body.
func (d TGD) Existentials() []string {
	bodyVars := make(map[string]bool)
	for _, v := range d.Body.Vars() {
		bodyVars[v] = true
	}
	var out []string
	seen := make(map[string]bool)
	for _, h := range d.Head {
		for _, v := range h.Atom.Vars() {
			if !bodyVars[v] && !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
	}
	return out
}

// Validate checks the dependency against the schemas.
func (d TGD) Validate(src, tgt *schema.Schema) error {
	if len(d.Body) == 0 || len(d.Head) == 0 {
		return fmt.Errorf("temporal tgd %s: empty body or head", d.Name)
	}
	plain := dependency.TGD{Name: d.Name, Body: d.Body, Head: d.headConjunction()}
	if err := plain.Validate(src, tgt); err != nil {
		return err
	}
	// An existential data variable must stay within one temporal
	// reference class: the concrete view cannot express "the same unknown
	// value at two different times" (interval-annotated nulls denote
	// per-snapshot unknowns; cross-time identity needs the richer
	// c-table machinery of Koubarakis cited in §6).
	bodyVars := make(map[string]bool)
	for _, v := range d.Body.Vars() {
		bodyVars[v] = true
	}
	refOf := make(map[string]Ref)
	for _, h := range d.Head {
		for _, v := range h.Atom.Vars() {
			if bodyVars[v] {
				continue
			}
			if prev, seen := refOf[v]; seen && prev != h.Ref {
				return fmt.Errorf("temporal tgd %s: existential %s spans temporal references %v and %v", d.Name, v, prev, h.Ref)
			}
			refOf[v] = h.Ref
		}
	}
	return nil
}

func (d TGD) headConjunction() logic.Conjunction {
	out := make(logic.Conjunction, len(d.Head))
	for i, h := range d.Head {
		out[i] = h.Atom
	}
	return out
}

// String renders the dependency with modal markers.
func (d TGD) String() string {
	s := d.Body.String() + " → "
	if ex := d.Existentials(); len(ex) > 0 {
		s += "∃"
		for i, v := range ex {
			if i > 0 {
				s += ","
			}
			s += v
		}
		s += ". "
	}
	for i, h := range d.Head {
		if i > 0 {
			s += " ∧ "
		}
		s += h.Ref.String() + h.Atom.String()
	}
	return s
}

// Mapping is a data exchange setting with temporal s-t tgds alongside
// plain (non-temporal) egds on the target.
type Mapping struct {
	Source *schema.Schema
	Target *schema.Schema
	TGDs   []TGD
	EGDs   []dependency.EGD
}

// Validate checks the whole setting.
func (m *Mapping) Validate() error {
	if m.Source == nil || m.Target == nil {
		return errors.New("temporal: source and target schemas are required")
	}
	if !m.Source.Disjoint(m.Target) {
		return errors.New("temporal: schemas must be disjoint")
	}
	for _, d := range m.TGDs {
		if err := d.Validate(m.Source, m.Target); err != nil {
			return err
		}
	}
	for _, d := range m.EGDs {
		if err := d.Validate(m.Target); err != nil {
			return err
		}
	}
	return nil
}

// ErrNoWitness is wrapped when a past-referencing head fires at a body
// interval starting at time 0: there is no earlier time point in N0, so
// no solution can satisfy the dependency there.
var ErrNoWitness = errors.New("temporal: no admissible witness time point exists")

// witnessInterval returns the concrete interval at which a head atom with
// the given reference is materialized, for a body match at interval
// [s, e). The canonical choices are:
//
//	AtT          [s, e)                 — the base case
//	SometimePast [s−1, s)               — one point before every ℓ ∈ [s,e)
//	SometimeFut  [e, e+1), or [s+1, ∞) when e = ∞
//	AlwaysPast   [0, e−1) — every point strictly before some ℓ ∈ [s,e)
//	AlwaysFut    [s+1, ∞)
//
// SometimePast at s = 0 has no admissible witness (ErrNoWitness):
// discrete time starts at 0.
func witnessInterval(ref Ref, t interval.Interval) (interval.Interval, bool, error) {
	switch ref {
	case AtT:
		return t, true, nil
	case SometimePast:
		if t.Start == 0 {
			return interval.Interval{}, false, fmt.Errorf("%w: ◆ at time 0", ErrNoWitness)
		}
		return interval.Interval{Start: t.Start - 1, End: t.Start}, true, nil
	case SometimeFut:
		if t.Unbounded() {
			return interval.Interval{Start: t.Start + 1, End: interval.Infinity}, true, nil
		}
		return interval.Interval{Start: t.End, End: t.End + 1}, true, nil
	case AlwaysPast:
		// Required points: ∪_{ℓ∈[s,e)} [0, ℓ) = [0, e−1); empty when the
		// match is the single point 0.
		last := t.End
		if last == interval.Infinity {
			return interval.Interval{Start: 0, End: interval.Infinity}, true, nil
		}
		if last-1 == 0 {
			return interval.Interval{}, false, nil // vacuously satisfied
		}
		return interval.Interval{Start: 0, End: last - 1}, true, nil
	case AlwaysFut:
		return interval.Interval{Start: t.Start + 1, End: interval.Infinity}, true, nil
	}
	return interval.Interval{}, false, fmt.Errorf("temporal: unknown ref %d", ref)
}

// Chase runs the temporal c-chase: normalize the source w.r.t. the tgd
// bodies, fire each temporal tgd with the canonical witness choice above
// (fresh interval-annotated nulls per existential data variable, one
// family per Ref class so the same unknown links the head atoms of one
// firing where their intervals coincide), then run the plain egd phase.
//
// The result is a solution (Satisfies reports true on success) but not in
// general universal — the paper's §7 question; see the package tests for
// a counterexample.
func Chase(ic *instance.Concrete, m *Mapping, opts *chase.Options) (*instance.Concrete, chase.Stats, error) {
	cm, err := CompileMapping(m)
	if err != nil {
		return nil, chase.Stats{}, err
	}
	return ChaseCompiled(ic, cm, opts)
}

// Compiled is a temporal mapping compiled for repeated chase runs: the
// concrete tgd bodies and the compiled egd-phase mapping are derived
// once, mirroring chase.Compiled for plain mappings. Read-only after
// construction; safe to share across concurrent runs.
type Compiled struct {
	m      *Mapping
	bodies []logic.Conjunction // concrete tgd bodies (normalization Φ+)
	egds   *chase.Compiled     // the tgd-less egd-phase mapping
}

// CompileMapping derives the reusable artifacts of a temporal mapping.
func CompileMapping(m *Mapping) (*Compiled, error) {
	bodies := make([]logic.Conjunction, len(m.TGDs))
	for i, d := range m.TGDs {
		bodies[i] = dependency.TGD{Body: d.Body}.ConcreteBody()
	}
	egds, err := chase.CompileMapping(&dependency.Mapping{Source: m.Source, Target: m.Target, EGDs: m.EGDs})
	if err != nil {
		return nil, err
	}
	return &Compiled{m: m, bodies: bodies, egds: egds}, nil
}

// Mapping returns the underlying temporal mapping.
func (c *Compiled) Mapping() *Mapping { return c.m }

// Bodies returns the concrete tgd bodies — the Φ+ set the source is
// normalized against. Shared; do not mutate.
func (c *Compiled) Bodies() []logic.Conjunction { return c.bodies }

// ChaseCompiled is Chase against a pre-compiled mapping — the
// compile-once/run-many entry point the tdx facade uses.
func ChaseCompiled(ic *instance.Concrete, cm *Compiled, opts *chase.Options) (*instance.Concrete, chase.Stats, error) {
	var stats chase.Stats
	var gen value.NullGen
	m, bodies := cm.m, cm.bodies
	ctx := context.Background()
	if opts != nil && opts.Ctx != nil {
		ctx = opts.Ctx
	}

	src, err := normalize.ForMappingCtx(ctx, ic, bodies, normalize.StrategySmart)
	if err != nil {
		return nil, stats, err
	}
	stats.NormalizeRuns++
	stats.NormalizedSourceFacts = src.Len()

	// Share the normalized source's interner so the whole run is
	// ID-compatible (see chase.Concrete).
	tgt := instance.NewConcreteWith(m.Target, src.Interner())
	for i, d := range m.TGDs {
		ms := logic.FindAll(src.Store(), bodies[i], nil)
		stats.TGDHoms += len(ms)
		for hi, h := range ms {
			if hi&63 == 0 {
				select {
				case <-ctx.Done():
					return nil, stats, fmt.Errorf("temporal: %w", ctx.Err())
				default:
				}
			}
			tv := h.Binding[dependency.TemporalVar]
			t, ok := tv.Interval()
			if !ok {
				return nil, stats, fmt.Errorf("temporal: tgd %s: temporal variable unbound", d.Name)
			}
			// Satisfaction pre-check: if every head atom already holds at
			// its witness range under some extension, skip (chase step
			// applicability). Checked per head atom conservatively: fire
			// unless all AtT atoms extend — modal atoms always re-checked
			// cheaply by Contains on the canonical witness.
			if d.alreadySatisfied(tgt, h.Binding, t) {
				continue
			}
			stats.TGDFires++
			ext := h.Binding.Clone()
			for _, ha := range d.Head {
				wiv, needed, err := witnessInterval(ha.Ref, t)
				if err != nil {
					return nil, stats, fmt.Errorf("temporal: tgd %s fired at %v: %w", d.Name, t, err)
				}
				if !needed {
					continue
				}
				args := make([]value.Value, len(ha.Atom.Terms))
				for j, term := range ha.Atom.Terms {
					v, bound := ext.Apply(term)
					if !bound {
						// Existential data variable: one fresh family per
						// (firing, variable). Validation guarantees the
						// variable stays within one Ref class, so every
						// occurrence shares this witness interval.
						v = gen.FreshAnn(wiv)
						ext[term.Name] = v
						stats.NullsCreated++
					}
					args[j] = v.WithAnnotation(wiv)
				}
				added, err := tgt.Insert(fact.NewC(ha.Atom.Rel, wiv, args...))
				if err != nil {
					return nil, stats, fmt.Errorf("temporal: tgd %s: %w", d.Name, err)
				}
				if added {
					stats.FactsCreated++
				}
			}
		}
	}

	// Plain egd phase via the standard machinery, pre-compiled. tgt was
	// built by this run, so the egd phase takes ownership (no defensive
	// clone; with Options.Workers ≥ 2 it runs partitioned and may return
	// the solution frozen).
	out, egdStats, err := chase.EgdPhaseCompiledOwned(tgt, cm.egds, opts)
	stats.EgdRounds = egdStats.EgdRounds
	stats.EgdMerges = egdStats.EgdMerges
	stats.NormalizeRuns += egdStats.NormalizeRuns
	stats.RowsRewritten = egdStats.RowsRewritten
	stats.EgdWorkers = egdStats.EgdWorkers
	return out, stats, err
}

// alreadySatisfied reports whether the head of d is already witnessed for
// the body match at interval t — the chase-step applicability check.
// Head atoms are checked independently, which is sound only when no
// unbound existential is shared between two atoms (independent checks
// could otherwise borrow witnesses from different firings); for shared
// existentials the check conservatively reports false — firing again is
// harmless (inserts deduplicate, egds reconcile), skipping is not.
func (d TGD) alreadySatisfied(tgt *instance.Concrete, b logic.Binding, t interval.Interval) bool {
	seenIn := make(map[string]int)
	for _, ha := range d.Head {
		for _, v := range ha.Atom.Vars() {
			if _, bound := b[v]; bound {
				continue
			}
			seenIn[v]++
			if seenIn[v] > 1 {
				return false // shared unbound existential: fire
			}
		}
	}
	for _, ha := range d.Head {
		if !headAtomSatisfied(tgt, ha, b, t) {
			return false
		}
	}
	return true
}

// headAtomSatisfied checks one temporally referenced atom against the
// current target, for a body match at interval t.
func headAtomSatisfied(tgt *instance.Concrete, ha HeadAtom, b logic.Binding, t interval.Interval) bool {
	// Ground the data terms that the body binds; unbound (existential)
	// terms become fresh search variables.
	terms := make([]logic.Term, 0, len(ha.Atom.Terms)+1)
	for _, term := range ha.Atom.Terms {
		if v, ok := b.Apply(term); ok {
			terms = append(terms, logic.Lit(v))
		} else {
			terms = append(terms, logic.Var("?ex:"+term.Name))
		}
	}
	last := t.End
	switch ha.Ref {
	case AtT:
		// Every point of t must be covered by matching facts.
		return coveredAtEvery(tgt, ha.Atom.Rel, terms, t)
	case SometimePast:
		// For every ℓ in t there must be a matching fact strictly before ℓ.
		// Monotone in ℓ, so checking ℓ = start suffices.
		if t.Start == 0 {
			return false
		}
		return existsBefore(tgt, ha.Atom.Rel, terms, t.Start)
	case SometimeFut:
		// For every ℓ there must be a match strictly after ℓ; hardest at
		// the last point.
		if t.Unbounded() {
			return coveredCofinally(tgt, ha.Atom.Rel, terms)
		}
		return existsAfter(tgt, ha.Atom.Rel, terms, last-1)
	case AlwaysPast:
		if last == interval.Infinity {
			return coveredAtEvery(tgt, ha.Atom.Rel, terms, interval.Interval{Start: 0, End: interval.Infinity})
		}
		if last-1 == 0 {
			return true
		}
		return coveredAtEvery(tgt, ha.Atom.Rel, terms, interval.Interval{Start: 0, End: last - 1})
	case AlwaysFut:
		return coveredAtEvery(tgt, ha.Atom.Rel, terms, interval.Interval{Start: t.Start + 1, End: interval.Infinity})
	}
	return false
}

// matchingIntervals collects the validity intervals of facts matching the
// (partially ground) atom, ignoring the temporal position.
func matchingIntervals(tgt *instance.Concrete, rel string, terms []logic.Term) interval.Set {
	var set interval.Set
	conj := logic.Conjunction{{Rel: rel, Terms: append(append([]logic.Term(nil), terms...), logic.Var("?civ"))}}
	logic.ForEach(tgt.Store(), conj, nil, func(m logic.Match) bool {
		if iv, ok := m.Binding["?civ"].Interval(); ok {
			set.Add(iv)
		}
		return true
	})
	return set
}

func coveredAtEvery(tgt *instance.Concrete, rel string, terms []logic.Term, iv interval.Interval) bool {
	set := matchingIntervals(tgt, rel, terms)
	return set.ContainsInterval(iv)
}

func existsBefore(tgt *instance.Concrete, rel string, terms []logic.Term, tp interval.Time) bool {
	set := matchingIntervals(tgt, rel, terms)
	mn, ok := set.Min()
	return ok && mn < tp
}

func existsAfter(tgt *instance.Concrete, rel string, terms []logic.Term, tp interval.Time) bool {
	set := matchingIntervals(tgt, rel, terms)
	for _, iv := range set.Intervals() {
		if iv.End > tp+1 { // some point strictly greater than tp
			return true
		}
	}
	return false
}

func coveredCofinally(tgt *instance.Concrete, rel string, terms []logic.Term) bool {
	set := matchingIntervals(tgt, rel, terms)
	return set.Unbounded()
}
