package verify

import (
	"math/rand"
	"testing"

	"repro/internal/chase"
	"repro/internal/fact"
	"repro/internal/instance"
	"repro/internal/interval"
	"repro/internal/normalize"
	"repro/internal/paperex"
	"repro/internal/value"
)

func snap(fs ...fact.Fact) *instance.Snapshot {
	s := instance.NewSnapshot()
	for _, f := range fs {
		s.Insert(f)
	}
	return s
}

func TestSnapshotHomBasics(t *testing.T) {
	c := paperex.C
	n := value.NewNull(1)
	withNull := snap(fact.New("Emp", c("Ada"), c("IBM"), n))
	withConst := snap(fact.New("Emp", c("Ada"), c("IBM"), c("18k")))
	if !SnapshotHom(withNull, withConst) {
		t.Fatal("null should map to constant")
	}
	if SnapshotHom(withConst, withNull) {
		t.Fatal("constant must not map to null (identity on constants)")
	}
	if !SnapshotHom(withNull, withNull) || !SnapshotHom(withConst, withConst) {
		t.Fatal("identity homomorphism missing")
	}
	// Same null twice must map consistently.
	two := snap(
		fact.New("R", n, c("x")),
		fact.New("S", n, c("y")),
	)
	tgtOK := snap(
		fact.New("R", c("a"), c("x")),
		fact.New("S", c("a"), c("y")),
	)
	tgtBad := snap(
		fact.New("R", c("a"), c("x")),
		fact.New("S", c("b"), c("y")),
	)
	if !SnapshotHom(two, tgtOK) {
		t.Fatal("consistent mapping should exist")
	}
	if SnapshotHom(two, tgtBad) {
		t.Fatal("null mapped to two different constants")
	}
	// Empty snapshot maps anywhere.
	if !SnapshotHom(snap(), withConst) {
		t.Fatal("empty snapshot must map")
	}
}

// figure2 builds the paper's Figure 2 instances: J1 shares one null N
// across db0 and db1; J2 has per-snapshot nulls M1, M2.
func figure2(t *testing.T) (j1, j2 *instance.Abstract) {
	t.Helper()
	c := paperex.C
	n := value.NewNull(100)
	var err error
	j1, err = instance.NewAbstract([]instance.Segment{
		{Iv: paperex.Iv(0, 2), Facts: []fact.CFact{
			{Rel: "Emp", Args: []value.Value{c("Ada"), c("IBM"), n}, T: paperex.Iv(0, 2)},
		}},
		{Iv: interval.Interval{Start: 2, End: interval.Infinity}},
	})
	if err != nil {
		t.Fatal(err)
	}
	jc := instance.NewConcrete(nil)
	jc.MustInsert(fact.NewC("Emp", paperex.Iv(0, 2), c("Ada"), c("IBM"), value.NewAnnNull(200, paperex.Iv(0, 2))))
	j2 = jc.Abstract()
	return j1, j2
}

func TestExample2HomomorphismAsymmetry(t *testing.T) {
	// The paper's Example 2: there is a homomorphism J2 → J1 but none
	// J1 → J2, because J1's shared null would have to map to M1 in db0 and
	// M2 in db1, violating condition 2.
	j1, j2 := figure2(t)
	if !AbstractHom(j2, j1) {
		t.Fatal("homomorphism J2 → J1 must exist")
	}
	if AbstractHom(j1, j2) {
		t.Fatal("homomorphism J1 → J2 must not exist (condition 2)")
	}
	if HomEquivalent(j1, j2) {
		t.Fatal("J1 and J2 are not homomorphically equivalent")
	}
	if !HomEquivalent(j1, j1) || !HomEquivalent(j2, j2) {
		t.Fatal("equivalence must be reflexive")
	}
}

func TestIsSolutionOnPaperExample(t *testing.T) {
	ic := paperex.Figure4()
	m := paperex.EmploymentMapping()
	jc, _, err := chase.Concrete(ic, m, nil)
	if err != nil {
		t.Fatal(err)
	}
	ok, why := IsSolution(ic.Abstract(), jc.Abstract(), m)
	if !ok {
		t.Fatalf("chase result is not a solution: %s", why)
	}
	// The empty target is not a solution (tgds unsatisfied).
	empty := instance.NewConcrete(m.Target)
	ok, why = IsSolution(ic.Abstract(), empty.Abstract(), m)
	if ok || why == "" {
		t.Fatal("empty target accepted as solution")
	}
	// A target violating the egd is not a solution.
	bad := jc.Clone()
	bad.MustInsert(fact.NewC("Emp", paperex.Iv(2013, 2014), paperex.C("Ada"), paperex.C("IBM"), paperex.C("99k")))
	ok, _ = IsSolution(ic.Abstract(), bad.Abstract(), m)
	if ok {
		t.Fatal("egd-violating target accepted as solution")
	}
}

func TestTheorem19UniversalSolution(t *testing.T) {
	// The c-chase result maps homomorphically into other solutions:
	// (a) itself, (b) a fattened solution with extra facts, (c) one where
	// unknown salaries are made concrete.
	ic := paperex.Figure4()
	m := paperex.EmploymentMapping()
	jc, _, err := chase.Concrete(ic, m, nil)
	if err != nil {
		t.Fatal(err)
	}
	ja := jc.Abstract()

	fat := jc.Clone()
	fat.MustInsert(fact.NewC("Emp", paperex.Iv(1, 2), paperex.C("Zoe"), paperex.C("ACME"), paperex.C("1k")))

	concreteSalaries := instance.NewConcrete(m.Target)
	for _, f := range jc.Facts() {
		args := make([]value.Value, len(f.Args))
		for i, v := range f.Args {
			if v.IsNullLike() {
				args[i] = paperex.C("42k")
			} else {
				args[i] = v
			}
		}
		concreteSalaries.MustInsert(fact.CFact{Rel: f.Rel, Args: args, T: f.T})
	}

	ok, why := IsUniversalFor(ic.Abstract(), ja, m, fat.Abstract(), concreteSalaries.Abstract())
	if !ok {
		t.Fatalf("chase result not universal: %s", why)
	}
	// The concretized instance is a solution but NOT universal: it has no
	// homomorphism back into the chase result... unless 42k also appears
	// there, which it does not.
	if AbstractHom(concreteSalaries.Abstract(), ja) {
		t.Fatal("over-specified solution must not map into the universal one")
	}
}

func TestFigure10Commutativity(t *testing.T) {
	// Corollary 20 on the paper's example: ⟦c-chase(Ic)⟧ ∼ chase(⟦Ic⟧).
	ic := paperex.Figure4()
	m := paperex.EmploymentMapping()
	jc, _, err := chase.Concrete(ic, m, nil)
	if err != nil {
		t.Fatal(err)
	}
	ja, _, err := chase.Abstract(ic.Abstract(), m, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !HomEquivalent(jc.Abstract(), ja) {
		t.Fatalf("⟦Jc⟧ ≁ chase(⟦Ic⟧):\n%s\nvs\n%s", jc.Abstract(), ja)
	}
}

// randomSourceInstance builds small random employment-shaped sources.
func randomSourceInstance(r *rand.Rand) *instance.Concrete {
	m := paperex.EmploymentMapping()
	ic := instance.NewConcrete(m.Source)
	names := []string{"a", "b"}
	comps := []string{"X", "Y"}
	sals := []string{"1k", "2k"}
	for i := 0; i < 1+r.Intn(5); i++ {
		s := interval.Time(r.Intn(8))
		e := s + 1 + interval.Time(r.Intn(6))
		ic.MustInsert(fact.NewC("E", paperex.Iv(s, e), paperex.C(names[r.Intn(2)]), paperex.C(comps[r.Intn(2)])))
	}
	for i := 0; i < r.Intn(3); i++ {
		s := interval.Time(r.Intn(8))
		e := s + 1 + interval.Time(r.Intn(6))
		ic.MustInsert(fact.NewC("S", paperex.Iv(s, e), paperex.C(names[r.Intn(2)]), paperex.C(sals[r.Intn(2)])))
	}
	return ic
}

func TestCommutativityProperty(t *testing.T) {
	// Randomized Figure 10: for random sources, either both chases fail,
	// or both succeed with homomorphically equivalent results, the
	// concrete result is a solution, and it is universal w.r.t. the
	// abstract chase result.
	r := rand.New(rand.NewSource(43))
	m := paperex.EmploymentMapping()
	failures, successes := 0, 0
	for trial := 0; trial < 120; trial++ {
		ic := randomSourceInstance(r)
		jc, _, errC := chase.Concrete(ic, m, nil)
		ja, _, errA := chase.Abstract(ic.Abstract(), m, nil)
		if (errC == nil) != (errA == nil) {
			t.Fatalf("failure mismatch on:\n%s\nconcrete err=%v abstract err=%v", ic, errC, errA)
		}
		if errC != nil {
			failures++
			continue
		}
		successes++
		if ok, why := IsSolution(ic.Abstract(), jc.Abstract(), m); !ok {
			t.Fatalf("c-chase result not a solution on:\n%s\n%s", ic, why)
		}
		if !HomEquivalent(jc.Abstract(), ja) {
			t.Fatalf("⟦Jc⟧ ≁ chase(⟦Ic⟧) on:\n%s\nJc:\n%s\nJa:\n%s", ic, jc, ja)
		}
	}
	if failures == 0 || successes == 0 {
		t.Fatalf("want both outcomes exercised: %d failures, %d successes", failures, successes)
	}
}

func TestCommutativityPropertyNaiveStrategy(t *testing.T) {
	// The same property must hold under the naïve normalization strategy.
	r := rand.New(rand.NewSource(47))
	m := paperex.EmploymentMapping()
	opts := &chase.Options{Norm: normalize.StrategyNaive}
	for trial := 0; trial < 60; trial++ {
		ic := randomSourceInstance(r)
		jc, _, errC := chase.Concrete(ic, m, opts)
		ja, _, errA := chase.Abstract(ic.Abstract(), m, nil)
		if (errC == nil) != (errA == nil) {
			t.Fatalf("failure mismatch on:\n%s", ic)
		}
		if errC != nil {
			continue
		}
		if !HomEquivalent(jc.Abstract(), ja) {
			t.Fatalf("naive strategy: ⟦Jc⟧ ≁ chase(⟦Ic⟧) on:\n%s", ic)
		}
	}
}

func TestProposition4FailureMeansNoSolution(t *testing.T) {
	// When the chase fails, no solution exists: verify that plausible
	// candidate targets all violate the setting.
	m := paperex.EmploymentMapping()
	iv, c := paperex.Iv, paperex.C
	ic := instance.NewConcrete(m.Source)
	ic.MustInsert(fact.NewC("E", iv(0, 4), c("a"), c("X")))
	ic.MustInsert(fact.NewC("S", iv(0, 4), c("a"), c("1k")))
	ic.MustInsert(fact.NewC("S", iv(2, 4), c("a"), c("2k")))
	if _, _, err := chase.Concrete(ic, m, nil); err == nil {
		t.Fatal("chase should fail")
	}
	// Any target containing both required Emp facts violates the egd; a
	// target missing one violates σ2. Spot-check a few candidates.
	candidates := []*instance.Concrete{}
	full := instance.NewConcrete(m.Target)
	full.MustInsert(fact.NewC("Emp", iv(2, 4), c("a"), c("X"), c("1k")))
	full.MustInsert(fact.NewC("Emp", iv(2, 4), c("a"), c("X"), c("2k")))
	candidates = append(candidates, full)
	onlyOne := instance.NewConcrete(m.Target)
	onlyOne.MustInsert(fact.NewC("Emp", iv(0, 4), c("a"), c("X"), c("1k")))
	candidates = append(candidates, onlyOne, instance.NewConcrete(m.Target))
	for i, cand := range candidates {
		if ok, _ := IsSolution(ic.Abstract(), cand.Abstract(), m); ok {
			t.Fatalf("candidate %d wrongly accepted as solution", i)
		}
	}
}
