// Package verify implements the semantic checks of the paper: snapshot
// and abstract-instance homomorphisms (Definition 3, including the
// cross-snapshot null-consistency condition motivated by Example 2),
// solution checking for a data exchange setting, and homomorphic
// equivalence — the relation ⟦Jc⟧ ∼ Ja of Corollary 20 that ties the
// concrete chase to the abstract chase (Figure 10).
package verify

import (
	"fmt"

	"repro/internal/dependency"
	"repro/internal/instance"
	"repro/internal/interval"
	"repro/internal/logic"
	"repro/internal/storage"
	"repro/internal/value"
)

// nullVar names the search variable standing for a null in a
// homomorphism query. Distinct null values get distinct variables; the
// same null value always gets the same variable, which is what enforces
// condition 2 of the abstract homomorphism definition when atoms from
// several snapshots share it.
func nullVar(v value.Value) string { return "ν:" + v.String() }

// factAtom turns a fact into a search atom: constants become literals
// (homomorphisms are the identity on constants), nulls become variables.
func factAtom(rel string, args []value.Value) logic.Atom {
	terms := make([]logic.Term, len(args))
	for i, v := range args {
		if v.IsNullLike() {
			terms[i] = logic.Var(nullVar(v))
		} else {
			terms[i] = logic.Lit(v)
		}
	}
	return logic.Atom{Rel: rel, Terms: terms}
}

// SnapshotHom reports whether a homomorphism a → b exists between two
// snapshots: a mapping of a's nulls to constants or nulls of b, identity
// on constants, sending every fact of a onto a fact of b.
func SnapshotHom(a, b *instance.Snapshot) bool {
	conj := make(logic.Conjunction, 0, a.Len())
	for _, f := range a.Facts() {
		conj = append(conj, factAtom(f.Rel, f.Args))
	}
	return logic.Exists(b.Store(), conj, nil)
}

// samplePointsPerSegment returns, for the common refinement of the given
// instances, up to two time points per segment: the segment start and,
// when the segment spans more than one point, the next point. Two points
// distinguish per-snapshot null families from nulls shared across
// snapshots, which one representative cannot (Figure 2: J1 vs J2).
func samplePointsPerSegment(insts ...*instance.Abstract) []interval.Time {
	base := instance.SamplePoints(insts...)
	var pts []interval.Time
	for i, tp := range base {
		pts = append(pts, tp)
		var segEnd interval.Time = interval.Infinity
		if i+1 < len(base) {
			segEnd = base[i+1]
		}
		if tp+1 < segEnd {
			pts = append(pts, tp+1)
		}
	}
	return pts
}

// AbstractHom reports whether a homomorphism h : a → b exists per
// Definition 3: a per-snapshot homomorphism h_ℓ : db_ℓ → db'_ℓ for every
// ℓ, with all snapshots agreeing on where each null goes (condition 2).
//
// The search encodes all sampled snapshots into a single conjunction over
// time-tagged relations; a null appearing in several snapshots becomes
// one shared variable, so agreement is enforced by unification. Sampling
// two points per aligned segment is exact: within a segment, snapshots
// are isomorphic via family re-projection, so any per-snapshot
// homomorphism at the sampled points extends to the whole segment, while
// a shared null mapped to a per-snapshot family member is caught by the
// second point.
func AbstractHom(a, b *instance.Abstract) bool {
	pts := samplePointsPerSegment(a, b)
	st := storage.NewStore()
	var conj logic.Conjunction
	for idx, tp := range pts {
		tag := fmt.Sprintf("@%d:", idx)
		for _, f := range b.Snapshot(tp).Facts() {
			st.Insert(tag+f.Rel, f.Args)
		}
		for _, f := range a.Snapshot(tp).Facts() {
			atom := factAtom(tag+f.Rel, f.Args)
			conj = append(conj, atom)
		}
	}
	return logic.Exists(st, conj, nil)
}

// HomEquivalent reports whether a ∼ b: homomorphisms exist in both
// directions (the universal-solution equivalence of Corollary 20).
func HomEquivalent(a, b *instance.Abstract) bool {
	return AbstractHom(a, b) && AbstractHom(b, a)
}

// IsSolution reports whether target is a solution for source w.r.t. the
// mapping: every snapshot of (source, target) satisfies Σst ∪ Σeg
// (paper §3). An explanation of the first violation is returned for
// diagnostics.
func IsSolution(source, target *instance.Abstract, m *dependency.Mapping) (bool, string) {
	pts := samplePointsPerSegment(source, target)
	for _, tp := range pts {
		src := source.Snapshot(tp)
		tgt := target.Snapshot(tp)
		for _, d := range m.TGDs {
			violated := ""
			logic.ForEach(src.Store(), d.Body, nil, func(h logic.Match) bool {
				if !logic.Exists(tgt.Store(), d.Head, h.Binding) {
					violated = fmt.Sprintf("tgd %s unsatisfied at time %v under %v", d.Name, tp, h.Binding)
					return false
				}
				return true
			})
			if violated != "" {
				return false, violated
			}
		}
		for _, d := range m.EGDs {
			violated := ""
			logic.ForEach(tgt.Store(), d.Body, nil, func(h logic.Match) bool {
				if h.Binding[d.X1] != h.Binding[d.X2] {
					violated = fmt.Sprintf("egd %s unsatisfied at time %v: %v ≠ %v", d.Name, tp, h.Binding[d.X1], h.Binding[d.X2])
					return false
				}
				return true
			})
			if violated != "" {
				return false, violated
			}
		}
	}
	return true, ""
}

// IsUniversalFor reports whether candidate is a solution for source that
// maps homomorphically into every instance of others (each assumed to be
// a solution). It cannot, of course, quantify over all solutions — tests
// supply representative ones.
func IsUniversalFor(source, candidate *instance.Abstract, m *dependency.Mapping, others ...*instance.Abstract) (bool, string) {
	ok, why := IsSolution(source, candidate, m)
	if !ok {
		return false, "not a solution: " + why
	}
	for i, o := range others {
		if !AbstractHom(candidate, o) {
			return false, fmt.Sprintf("no homomorphism into solution #%d", i)
		}
	}
	return true, ""
}
