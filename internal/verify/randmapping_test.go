package verify

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/chase"
	"repro/internal/normalize"
	"repro/internal/workload"
)

// TestCommutativityRandomMappings is the strongest form of the Figure 10
// property: random schema mappings (random schemas, tgds with shared
// variables and existentials, egds) × random source instances. For every
// pair, the c-chase and the abstract chase must fail together or succeed
// with homomorphically equivalent, valid solutions.
func TestCommutativityRandomMappings(t *testing.T) {
	r := rand.New(rand.NewSource(61))
	failures, successes := 0, 0
	for trial := 0; trial < 200; trial++ {
		m := workload.RandomMapping(r)
		ic := workload.RandomInstanceFor(r, m, 1+r.Intn(5))
		jc, _, errC := chase.Concrete(ic, m, nil)
		ja, _, errA := chase.Abstract(ic.Abstract(), m, nil)
		if (errC == nil) != (errA == nil) {
			t.Fatalf("trial %d: failure mismatch\nmapping:\n%v\nsource:\n%s\nconcrete err=%v abstract err=%v",
				trial, m, ic, errC, errA)
		}
		if errC != nil {
			if !errors.Is(errC, chase.ErrNoSolution) {
				t.Fatalf("trial %d: unexpected error kind %v", trial, errC)
			}
			failures++
			continue
		}
		successes++
		if ok, why := IsSolution(ic.Abstract(), jc.Abstract(), m); !ok {
			t.Fatalf("trial %d: c-chase result is not a solution: %s\nmapping:\n%v\nsource:\n%s\nJc:\n%s",
				trial, why, m, ic, jc)
		}
		if !HomEquivalent(jc.Abstract(), ja) {
			t.Fatalf("trial %d: ⟦Jc⟧ ≁ chase(⟦Ic⟧)\nmapping:\n%v\nsource:\n%s\nJc:\n%s\nJa:\n%s",
				trial, m, ic, jc, ja)
		}
	}
	if successes == 0 {
		t.Fatal("no successful trials — generator broken")
	}
	t.Logf("random mappings: %d successes, %d provable-failure cases", successes, failures)
}

// TestCommutativityRandomMappingsNaive repeats the property under the
// naïve normalization strategy and stepwise egds — every configuration
// of the engine must satisfy Corollary 20.
func TestCommutativityRandomMappingsNaive(t *testing.T) {
	r := rand.New(rand.NewSource(67))
	opts := &chase.Options{Norm: normalize.StrategyNaive, Egd: chase.EgdStepwise}
	for trial := 0; trial < 100; trial++ {
		m := workload.RandomMapping(r)
		ic := workload.RandomInstanceFor(r, m, 1+r.Intn(4))
		jc, _, errC := chase.Concrete(ic, m, opts)
		ja, _, errA := chase.Abstract(ic.Abstract(), m, nil)
		if (errC == nil) != (errA == nil) {
			t.Fatalf("trial %d: failure mismatch under naive/stepwise on:\nmapping:\n%v\nsource:\n%s",
				trial, m, ic)
		}
		if errC != nil {
			continue
		}
		if !HomEquivalent(jc.Abstract(), ja) {
			t.Fatalf("trial %d: naive/stepwise: ⟦Jc⟧ ≁ chase(⟦Ic⟧)\nmapping:\n%v\nsource:\n%s",
				trial, m, ic)
		}
	}
}
