package schema

import (
	"strings"
	"testing"
)

func TestNewRelation(t *testing.T) {
	tests := []struct {
		name    string
		rel     string
		attrs   []string
		wantErr bool
	}{
		{"ok", "E", []string{"name", "company"}, false},
		{"single-attr", "S", []string{"x"}, false},
		{"empty-name", "", []string{"x"}, true},
		{"no-attrs", "E", nil, true},
		{"dup-attr", "E", []string{"a", "a"}, true},
		{"empty-attr", "E", []string{"a", ""}, true},
		{"reserved-T", "E", []string{"a", "T"}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			r, err := NewRelation(tt.rel, tt.attrs...)
			if (err != nil) != tt.wantErr {
				t.Fatalf("NewRelation err=%v wantErr=%v", err, tt.wantErr)
			}
			if err == nil && r.Arity() != len(tt.attrs) {
				t.Fatalf("arity %d want %d", r.Arity(), len(tt.attrs))
			}
		})
	}
}

func TestRelationStringAndIndex(t *testing.T) {
	r := MustRelation("Emp", "name", "company", "salary")
	if got := r.String(); got != "Emp(name, company, salary)" {
		t.Fatalf("String = %q", got)
	}
	if got := r.ConcreteString(); got != "Emp+(name, company, salary, T)" {
		t.Fatalf("ConcreteString = %q", got)
	}
	if r.AttrIndex("salary") != 2 || r.AttrIndex("nope") != -1 {
		t.Fatal("AttrIndex broken")
	}
}

func TestSchemaBasics(t *testing.T) {
	s := MustNew(
		MustRelation("E", "name", "company"),
		MustRelation("S", "name", "salary"),
	)
	if s.Len() != 2 || !s.Has("E") || s.Has("Emp") {
		t.Fatal("Has/Len broken")
	}
	if s.Arity("E") != 2 || s.Arity("nope") != -1 {
		t.Fatal("Arity broken")
	}
	if r, ok := s.Relation("S"); !ok || r.Name != "S" {
		t.Fatal("Relation lookup broken")
	}
	if got := s.Names(); len(got) != 2 || got[0] != "E" || got[1] != "S" {
		t.Fatalf("Names = %v", got)
	}
}

func TestSchemaDuplicate(t *testing.T) {
	if _, err := New(MustRelation("E", "a"), MustRelation("E", "b")); err == nil {
		t.Fatal("duplicate relation must be rejected")
	}
}

func TestSchemaDisjointUnion(t *testing.T) {
	src := MustNew(MustRelation("E", "n", "c"), MustRelation("S", "n", "s"))
	tgt := MustNew(MustRelation("Emp", "n", "c", "s"))
	if !src.Disjoint(tgt) {
		t.Fatal("disjoint schemas reported overlapping")
	}
	both, err := src.Union(tgt)
	if err != nil || both.Len() != 3 {
		t.Fatalf("Union: %v len=%d", err, both.Len())
	}
	clash := MustNew(MustRelation("E", "x"))
	if src.Disjoint(clash) {
		t.Fatal("overlap not detected")
	}
	if _, err := src.Union(clash); err == nil {
		t.Fatal("union with clash must fail")
	}
}

func TestSchemaCloneIndependence(t *testing.T) {
	s := MustNew(MustRelation("E", "a"))
	c := s.Clone()
	if err := c.Add(MustRelation("F", "b")); err != nil {
		t.Fatal(err)
	}
	if s.Has("F") {
		t.Fatal("Clone shares state with original")
	}
}

func TestSchemaString(t *testing.T) {
	s := MustNew(MustRelation("S", "n"), MustRelation("E", "n", "c"))
	got := s.String()
	if !strings.Contains(got, "S(n)") || !strings.Contains(got, "E(n, c)") {
		t.Fatalf("String = %q", got)
	}
	names := s.SortedNames()
	if names[0] != "E" || names[1] != "S" {
		t.Fatalf("SortedNames = %v", names)
	}
}
