// Package schema describes database schemas for temporal data exchange:
// relation signatures R(A1, ..., An) and whole schemas, plus the concrete
// extension R+ that augments every relation with the temporal attribute T
// (paper §2).
package schema

import (
	"fmt"
	"sort"
	"strings"
)

// TemporalAttr is the name of the temporal attribute added to every
// relation of a concrete schema.
const TemporalAttr = "T"

// Relation is a relation signature: a name and an ordered list of data
// attributes. The temporal attribute of the concrete view is implicit —
// it is tracked at the instance level, not listed in Attrs.
type Relation struct {
	Name  string
	Attrs []string
}

// NewRelation builds a validated relation signature.
func NewRelation(name string, attrs ...string) (Relation, error) {
	if name == "" {
		return Relation{}, fmt.Errorf("schema: empty relation name")
	}
	if len(attrs) == 0 {
		return Relation{}, fmt.Errorf("schema: relation %s has no attributes", name)
	}
	seen := make(map[string]bool, len(attrs))
	for _, a := range attrs {
		if a == "" {
			return Relation{}, fmt.Errorf("schema: relation %s has an empty attribute name", name)
		}
		if a == TemporalAttr {
			return Relation{}, fmt.Errorf("schema: relation %s: attribute %q is reserved for the temporal attribute", name, TemporalAttr)
		}
		if seen[a] {
			return Relation{}, fmt.Errorf("schema: relation %s has duplicate attribute %q", name, a)
		}
		seen[a] = true
	}
	return Relation{Name: name, Attrs: append([]string(nil), attrs...)}, nil
}

// MustRelation is NewRelation but panics on error; for statically known
// signatures in tests and examples.
func MustRelation(name string, attrs ...string) Relation {
	r, err := NewRelation(name, attrs...)
	if err != nil {
		panic(err)
	}
	return r
}

// Arity returns the number of data attributes.
func (r Relation) Arity() int { return len(r.Attrs) }

// AttrIndex returns the position of the named attribute, or -1.
func (r Relation) AttrIndex(attr string) int {
	for i, a := range r.Attrs {
		if a == attr {
			return i
		}
	}
	return -1
}

// String renders the signature as R(a, b, c).
func (r Relation) String() string {
	return r.Name + "(" + strings.Join(r.Attrs, ", ") + ")"
}

// ConcreteString renders the concrete extension R+(a, b, c, T).
func (r Relation) ConcreteString() string {
	return r.Name + "+(" + strings.Join(append(append([]string(nil), r.Attrs...), TemporalAttr), ", ") + ")"
}

// Schema is an ordered collection of relation signatures with unique
// names.
type Schema struct {
	rels  map[string]Relation
	order []string
}

// New builds a validated schema from relation signatures.
func New(rels ...Relation) (*Schema, error) {
	s := &Schema{rels: make(map[string]Relation, len(rels))}
	for _, r := range rels {
		if err := s.Add(r); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// MustNew is New but panics on error.
func MustNew(rels ...Relation) *Schema {
	s, err := New(rels...)
	if err != nil {
		panic(err)
	}
	return s
}

// Add inserts a relation signature; duplicate names are rejected.
func (s *Schema) Add(r Relation) error {
	if s.rels == nil {
		s.rels = make(map[string]Relation)
	}
	if _, dup := s.rels[r.Name]; dup {
		return fmt.Errorf("schema: duplicate relation %s", r.Name)
	}
	if r.Name == "" || len(r.Attrs) == 0 {
		return fmt.Errorf("schema: invalid relation %q", r.Name)
	}
	s.rels[r.Name] = r
	s.order = append(s.order, r.Name)
	return nil
}

// Relation looks up a signature by name.
func (s *Schema) Relation(name string) (Relation, bool) {
	r, ok := s.rels[name]
	return r, ok
}

// Has reports whether the schema contains the named relation.
func (s *Schema) Has(name string) bool {
	_, ok := s.rels[name]
	return ok
}

// Arity returns the arity of the named relation, or -1 when absent.
func (s *Schema) Arity(name string) int {
	r, ok := s.rels[name]
	if !ok {
		return -1
	}
	return r.Arity()
}

// Names returns the relation names in declaration order. The caller must
// not mutate the returned slice.
func (s *Schema) Names() []string { return s.order }

// Len returns the number of relations.
func (s *Schema) Len() int { return len(s.order) }

// Disjoint reports whether two schemas share no relation name. Data
// exchange requires the source and target schemas to be disjoint
// (paper §2).
func (s *Schema) Disjoint(other *Schema) bool {
	for name := range s.rels {
		if other.Has(name) {
			return false
		}
	}
	return true
}

// Union returns a schema containing the relations of both inputs; it
// fails on a name clash.
func (s *Schema) Union(other *Schema) (*Schema, error) {
	out := &Schema{rels: make(map[string]Relation, len(s.rels)+len(other.rels))}
	for _, n := range s.order {
		if err := out.Add(s.rels[n]); err != nil {
			return nil, err
		}
	}
	for _, n := range other.order {
		if err := out.Add(other.rels[n]); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Clone returns a deep copy.
func (s *Schema) Clone() *Schema {
	out := &Schema{rels: make(map[string]Relation, len(s.rels)), order: append([]string(nil), s.order...)}
	for k, v := range s.rels {
		out.rels[k] = v
	}
	return out
}

// String renders the schema one relation per line, in declaration order.
func (s *Schema) String() string {
	var b strings.Builder
	for i, n := range s.order {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(s.rels[n].String())
	}
	return b.String()
}

// SortedNames returns the relation names in lexicographic order, for
// deterministic output independent of declaration order.
func (s *Schema) SortedNames() []string {
	out := append([]string(nil), s.order...)
	sort.Strings(out)
	return out
}
