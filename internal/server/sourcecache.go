package server

import (
	"container/list"
	"sync"

	tdx "repro"
)

// DefaultMaxSources bounds the decoded-source cache when the
// configuration does not.
const DefaultMaxSources = 32

// sourceCache is an LRU of decoded, frozen source instances keyed by
// (exchange fingerprint, body content hash): a client re-posting the
// same source document — the retry loop, the run/answer/snapshot triple
// over one dataset — skips decode and re-interning entirely. Frozen
// instances are safe to share across concurrent runs, which is what
// makes the cache sound. All methods are safe for concurrent use.
type sourceCache struct {
	mu       sync.Mutex
	capacity int
	entries  map[string]*list.Element
	order    *list.List // front = most recently used
}

type sourceCacheEntry struct {
	key string
	src *tdx.Instance
}

// newSourceCache returns a cache of the given capacity; zero or
// negative disables caching (every get misses, puts are dropped).
func newSourceCache(capacity int) *sourceCache {
	return &sourceCache{
		capacity: capacity,
		entries:  make(map[string]*list.Element),
		order:    list.New(),
	}
}

func (c *sourceCache) get(key string) (*tdx.Instance, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*sourceCacheEntry).src, true
}

func (c *sourceCache) put(key string, src *tdx.Instance) {
	if c.capacity <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		el.Value.(*sourceCacheEntry).src = src
		return
	}
	c.entries[key] = c.order.PushFront(&sourceCacheEntry{key: key, src: src})
	for c.order.Len() > c.capacity {
		el := c.order.Back()
		c.order.Remove(el)
		delete(c.entries, el.Value.(*sourceCacheEntry).key)
	}
}

func (c *sourceCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
