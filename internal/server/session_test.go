package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"

	tdx "repro"
)

// Client-side mirrors of the framed session responses: the server-side
// head structs no longer carry the streamed tail fields (solution,
// diff), so tests decode full documents with these.
type sessionWire struct {
	SessionID string          `json:"sessionId"`
	Hash      string          `json:"hash"`
	Solution  json.RawMessage `json:"solution"`
}

type diffWire struct {
	AddedFacts   int             `json:"addedFacts"`
	RemovedFacts int             `json:"removedFacts"`
	Added        json.RawMessage `json:"added"`
	Removed      json.RawMessage `json:"removed"`
}

type factsWire struct {
	SessionID string          `json:"sessionId"`
	Hash      string          `json:"hash"`
	Stats     tdx.Stats       `json:"stats"`
	Deltas    int64           `json:"deltas"`
	Diff      diffWire        `json:"diff"`
	Solution  json.RawMessage `json:"solution"`
}

// openSession registers the employment mapping, opens a session over
// the Figure 4 source, and returns the routed handler plus the session
// id.
func openSession(t *testing.T, s *Server) (http.Handler, string) {
	t.Helper()
	h := s.Handler()
	hash := register(t, h, readTestdata(t, "employment.tdx"))
	rec := do(h, "POST", "/v1/exchanges/"+hash+"/sessions", "", readTestdata(t, "employment.facts"))
	if rec.Code != http.StatusCreated {
		t.Fatalf("create session: status %d: %s", rec.Code, rec.Body)
	}
	var resp sessionWire
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("session response: %v\n%s", err, rec.Body)
	}
	if resp.SessionID == "" || resp.Hash != hash || len(resp.Solution) == 0 {
		t.Fatalf("session response incomplete: %+v", resp)
	}
	return h, resp.SessionID
}

func TestSessionDeltaLifecycle(t *testing.T) {
	s := mustNew(t, Config{})
	h, id := openSession(t, s)
	if got := s.Sessions().Len(); got != 1 {
		t.Fatalf("live sessions = %d, want 1", got)
	}

	// A new hire: both tgds fire incrementally and the key egd resolves
	// the invented salary null against the delta S fact.
	rec := do(h, "POST", "/v1/sessions/"+id+"/facts", "",
		"E(Carol, IBM) @ [2015, 2019)\nS(Carol, 21k) @ [2015, 2019)")
	if rec.Code != http.StatusOK {
		t.Fatalf("post facts: status %d: %s", rec.Code, rec.Body)
	}
	var resp factsWire
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("facts response: %v\n%s", err, rec.Body)
	}
	if resp.SessionID != id || resp.Deltas != 1 {
		t.Fatalf("facts response header: %+v", resp)
	}
	if resp.Stats.FallbackFullChase {
		t.Fatalf("new-hire delta fell back to a full re-chase: %+v", resp.Stats)
	}
	if resp.Stats.DeltaFacts != 2 || resp.Stats.DeltaFires < 2 {
		t.Fatalf("delta stats: %+v", resp.Stats)
	}
	if resp.Diff.AddedFacts == 0 || len(resp.Diff.Added) == 0 {
		t.Fatalf("diff reports nothing added: %s", rec.Body)
	}
	if !strings.Contains(string(resp.Diff.Added), "Carol") {
		t.Fatalf("diff misses Carol:\n%s", resp.Diff.Added)
	}
	if resp.Diff.RemovedFacts != 0 {
		t.Fatalf("purely additive delta removed facts:\n%s", resp.Diff.Removed)
	}
	if len(resp.Solution) != 0 {
		t.Fatal("solution document included without ?solution=")
	}

	// Deltas chain: a second one sees Carol's facts as base, and
	// ?solution=true returns the updated document.
	rec = do(h, "POST", "/v1/sessions/"+id+"/facts?solution=true", "",
		"E(Dave, Google) @ [2016, 2020)")
	if rec.Code != http.StatusOK {
		t.Fatalf("second delta: status %d: %s", rec.Code, rec.Body)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Deltas != 2 {
		t.Fatalf("deltas = %d, want 2", resp.Deltas)
	}
	if !strings.Contains(string(resp.Solution), "Dave") || !strings.Contains(string(resp.Solution), "Carol") {
		t.Fatalf("updated solution misses chained facts:\n%s", resp.Solution)
	}

	// An all-duplicate delta is a no-op with an empty diff.
	rec = do(h, "POST", "/v1/sessions/"+id+"/facts", "", "E(Dave, Google) @ [2016, 2020)")
	if rec.Code != http.StatusOK {
		t.Fatalf("duplicate delta: status %d: %s", rec.Code, rec.Body)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Stats.DeltaFacts != 0 || resp.Diff.AddedFacts != 0 || resp.Diff.RemovedFacts != 0 {
		t.Fatalf("duplicate delta was not a no-op: %s", rec.Body)
	}

	// Delete releases the session; the id stops resolving.
	rec = do(h, "DELETE", "/v1/sessions/"+id, "", "")
	if rec.Code != http.StatusNoContent {
		t.Fatalf("delete: status %d: %s", rec.Code, rec.Body)
	}
	if rec := do(h, "POST", "/v1/sessions/"+id+"/facts", "", "E(X, Y) @ [1, 2)"); rec.Code != http.StatusNotFound {
		t.Fatalf("post to deleted session: status %d", rec.Code)
	}
	if rec := do(h, "DELETE", "/v1/sessions/"+id, "", ""); rec.Code != http.StatusNotFound {
		t.Fatalf("double delete: status %d", rec.Code)
	}
}

func TestSessionDeltaMatchesFullRun(t *testing.T) {
	s := mustNew(t, Config{})
	h, id := openSession(t, s)
	delta := "E(Carol, IBM) @ [2015, 2019)\nS(Carol, 21k) @ [2015, 2019)"
	rec := do(h, "POST", "/v1/sessions/"+id+"/facts?solution=true", "", delta)
	if rec.Code != http.StatusOK {
		t.Fatalf("post facts: status %d: %s", rec.Code, rec.Body)
	}
	var fresp factsWire
	if err := json.Unmarshal(rec.Body.Bytes(), &fresp); err != nil {
		t.Fatal(err)
	}

	// One shot over base+delta must produce the identical solution
	// document.
	hash := fresp.Hash
	rec = do(h, "POST", "/v1/exchanges/"+hash+"/run", "", readTestdata(t, "employment.facts")+"\n"+delta)
	if rec.Code != http.StatusOK {
		t.Fatalf("full run: status %d: %s", rec.Code, rec.Body)
	}
	var rresp struct {
		Solution json.RawMessage `json:"solution"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &rresp); err != nil {
		t.Fatal(err)
	}
	if string(fresp.Solution) != string(rresp.Solution) {
		t.Fatalf("incremental session diverges from one-shot run\n--- session ---\n%s\n--- run ---\n%s",
			fresp.Solution, rresp.Solution)
	}
}

func TestSessionLRUBound(t *testing.T) {
	s := mustNew(t, Config{MaxSessions: 2})
	h := s.Handler()
	hash := register(t, h, readTestdata(t, "employment.tdx"))
	ids := make([]string, 3)
	for i := range ids {
		rec := do(h, "POST", "/v1/exchanges/"+hash+"/sessions", "",
			fmt.Sprintf("E(P%d, IBM) @ [2010, 2012)", i))
		if rec.Code != http.StatusCreated {
			t.Fatalf("session %d: status %d: %s", i, rec.Code, rec.Body)
		}
		var resp sessionWire
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		ids[i] = resp.SessionID
	}
	if got := s.Sessions().Len(); got != 2 {
		t.Fatalf("live sessions = %d, want 2 (LRU bound)", got)
	}
	if got := s.Sessions().Evicted(); got != 1 {
		t.Fatalf("evictions = %d, want 1", got)
	}
	// The oldest session fell off; the two newest still serve.
	if rec := do(h, "POST", "/v1/sessions/"+ids[0]+"/facts", "", "E(Q, IBM) @ [2011, 2012)"); rec.Code != http.StatusNotFound {
		t.Fatalf("evicted session still live: status %d", rec.Code)
	}
	for _, id := range ids[1:] {
		if rec := do(h, "POST", "/v1/sessions/"+id+"/facts", "", "E(Q, IBM) @ [2011, 2012)"); rec.Code != http.StatusOK {
			t.Fatalf("resident session: status %d: %s", rec.Code, rec.Body)
		}
	}

	// Healthz surfaces the session counters.
	rec := do(h, "GET", "/healthz", "", "")
	var hr healthResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &hr); err != nil {
		t.Fatal(err)
	}
	if hr.Sessions != 2 || hr.SessionEvictions != 1 {
		t.Fatalf("healthz session counters: %+v", hr)
	}
}

func TestSessionCreateUnknownHash(t *testing.T) {
	s := mustNew(t, Config{})
	h := s.Handler()
	if rec := do(h, "POST", "/v1/exchanges/deadbeef/sessions", "", "E(A, B) @ [1, 2)"); rec.Code != http.StatusNotFound {
		t.Fatalf("unknown hash: status %d", rec.Code)
	}
}
