package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	tdx "repro"
	"repro/internal/instance"
	"repro/internal/jsonio"
)

// Envelope framing: response documents that embed a solution (or
// answers) document are assembled as a marshaled head struct — the small
// fields: hash, stats, elapsedMs — spliced with streamed tail fields
// written straight off the frozen columnar store via
// jsonio.EncodeCompactTo. The solution is encoded exactly once, to the
// socket; nothing re-marshals it as a json.RawMessage copy, so the
// serving layer never holds a solution-sized buffer on the streamed
// path. The wire bytes are identical to what the former
// writeJSON(struct{...RawMessage...}) produced: json.Marshal compacts an
// embedded RawMessage, and EncodeCompactTo is byte-identical to
// json.Compact over the buffered document.

// tailDoc is one streamed tail field of a framed response: name is the
// JSON key, stream writes the field's value (one complete JSON value,
// compact).
type tailDoc struct {
	name   string
	stream func(io.Writer) error
}

// instanceDoc streams an instance's compact TDX JSON document.
func instanceDoc(i *tdx.Instance) func(io.Writer) error {
	return func(w io.Writer) error { return jsonio.EncodeCompactTo(w, i.Concrete()) }
}

// diffDoc streams the diff object of a delta response: counts first (so
// shell pipelines can grep emptiness), then the added and removed
// documents, each encoded straight from its store.
func diffDoc(diff *tdx.Diff) func(io.Writer) error {
	return func(w io.Writer) error {
		if _, err := fmt.Fprintf(w, `{"addedFacts":%d,"removedFacts":%d,"added":`, diff.Added.Len(), diff.Removed.Len()); err != nil {
			return err
		}
		if err := jsonio.EncodeCompactTo(w, diff.Added.Concrete()); err != nil {
			return err
		}
		if _, err := io.WriteString(w, `,"removed":`); err != nil {
			return err
		}
		if err := jsonio.EncodeCompactTo(w, diff.Removed.Concrete()); err != nil {
			return err
		}
		_, err := io.WriteString(w, "}")
		return err
	}
}

// snapshotFactsDoc streams the facts array of a snapshot response,
// marshaling one wire fact at a time instead of materializing the
// []snapshotFact mirror.
func snapshotFactsDoc(snap *instance.Snapshot) func(io.Writer) error {
	return func(w io.Writer) error {
		if _, err := io.WriteString(w, "["); err != nil {
			return err
		}
		for i, f := range snap.Facts() {
			args := make([]string, len(f.Args))
			for j, a := range f.Args {
				args[j] = a.String()
			}
			data, err := json.Marshal(snapshotFact{Rel: f.Rel, Args: args})
			if err != nil {
				return err
			}
			if i > 0 {
				if _, err := io.WriteString(w, ","); err != nil {
					return err
				}
			}
			if _, err := w.Write(data); err != nil {
				return err
			}
		}
		_, err := io.WriteString(w, "]")
		return err
	}
}

// marshalDoc renders any value through encoding/json as a tail field
// (used for fields that are small but ordered after a streamed one, like
// a snapshot's rendering string).
func marshalDoc(v any) func(io.Writer) error {
	return func(w io.Writer) error {
		data, err := json.Marshal(v)
		if err != nil {
			return err
		}
		_, err = w.Write(data)
		return err
	}
}

// writeFramed writes one response document: head's marshaled fields
// followed by the tail fields in order, closed with "}\n" like every
// other response. Small documents (stream false) are framed into one
// buffer and sent with a Content-Length; large ones stream through a
// chunk-sized bufio writer, so the peak server-side buffer is one chunk
// no matter how large the solution is. Both paths produce identical
// bytes.
func (s *Server) writeFramed(w http.ResponseWriter, status int, head any, tails []tailDoc, stream bool) {
	headBytes, err := json.Marshal(head)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if !stream {
		var buf bytes.Buffer
		if err := frameInto(&buf, headBytes, tails); err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		w.Header().Set("Content-Length", fmt.Sprint(buf.Len()))
		w.WriteHeader(status)
		_, _ = w.Write(buf.Bytes())
		return
	}
	// Streaming: the status line is committed before the body exists, so
	// a failure past this point can only be logged, not reported — the
	// client sees a truncated document (and, over HTTP/1.1 chunked
	// encoding, a missing terminal chunk).
	w.WriteHeader(status)
	bw := bufio.NewWriterSize(w, flushChunk)
	if err := frameInto(bw, headBytes, tails); err != nil {
		s.logf("stream: response truncated: %v", err)
		return
	}
	if err := bw.Flush(); err != nil {
		s.logf("stream: response truncated: %v", err)
	}
}

// flushChunk sizes the streaming path's write buffer; it matches the
// encoder's internal chunk so socket writes stay large and regular.
const flushChunk = 32 << 10

// frameInto splices the marshaled head with the tail fields:
// {head...,"name1":doc1,...}\n.
func frameInto(w io.Writer, headBytes []byte, tails []tailDoc) error {
	if len(headBytes) < 2 || headBytes[0] != '{' || headBytes[len(headBytes)-1] != '}' {
		return fmt.Errorf("stream: head is not a JSON object: %.40s", headBytes)
	}
	// Drop the closing brace; the tails extend the same object.
	if _, err := w.Write(headBytes[:len(headBytes)-1]); err != nil {
		return err
	}
	for _, t := range tails {
		if _, err := fmt.Fprintf(w, ",%q:", t.name); err != nil {
			return err
		}
		if err := t.stream(w); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "}\n")
	return err
}

// streamLen decides the path for a response whose streamed tails carry
// n facts total: at or past the stream threshold the response chunks
// straight to the socket, below it it buffers and carries a
// Content-Length.
func (s *Server) streamLen(n int) bool {
	return n >= s.streamAt
}

// loggingWriter observes the status and byte count of a response for the
// access log and the request counters. Unwrap keeps
// http.ResponseController features (the body read deadline) reachable.
type loggingWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (lw *loggingWriter) WriteHeader(code int) {
	if lw.status == 0 {
		lw.status = code
	}
	lw.ResponseWriter.WriteHeader(code)
}

func (lw *loggingWriter) Write(p []byte) (int, error) {
	if lw.status == 0 {
		lw.status = http.StatusOK
	}
	n, err := lw.ResponseWriter.Write(p)
	lw.bytes += int64(n)
	return n, err
}

func (lw *loggingWriter) Unwrap() http.ResponseWriter { return lw.ResponseWriter }

// observe wraps the routed handler with the request counter and, when
// configured, the structured access log: one key=value line per request
// with method, path, status, response bytes, and wall time.
func (s *Server) observe(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		lw := &loggingWriter{ResponseWriter: w}
		started := time.Now()
		next.ServeHTTP(lw, r)
		s.requests.Add(1)
		if lw.status >= http.StatusInternalServerError {
			s.errors5xx.Add(1)
		}
		if s.cfg.AccessLogf != nil {
			status := lw.status
			if status == 0 {
				status = http.StatusOK
			}
			s.cfg.AccessLogf("access method=%s path=%s status=%d bytes=%d dur=%s",
				r.Method, r.URL.Path, status, lw.bytes, time.Since(started).Round(time.Microsecond))
		}
	})
}
