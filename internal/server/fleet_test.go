package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	tdx "repro"
	"repro/internal/fleet"
)

// The in-process fleet harness: n tdxd servers on loopback listeners,
// each a fleet node gossiping over loopback UDP, seeded in a chain
// (node i knows node i-1's gossip address; the rest is transitive
// discovery). Test intervals are short — 20ms gossip, 300ms TTL — so
// convergence and expiry both land well inside the waitFor budget.

const (
	testGossipInterval = 20 * time.Millisecond
	testFactTTL        = 300 * time.Millisecond
)

// fleetMember is one node of the test fleet: the server and the real
// HTTP listener in front of it (forwarding needs a dialable address).
type fleetMember struct {
	srv *Server
	ts  *httptest.Server
}

// url is the member's base URL.
func (m fleetMember) url() string { return m.ts.URL }

// kill simulates a crash: the HTTP listener and the gossip socket both
// go away, so peers see connection failures now and fact expiry later.
func (m fleetMember) kill() {
	m.ts.Close()
	_ = m.srv.Close()
}

// startFleet boots an n-node fleet. Cleanup closes everything; killing
// a member mid-test is fine (Close is idempotent).
func startFleet(t *testing.T, n int) []fleetMember {
	t.Helper()
	members := make([]fleetMember, 0, n)
	var seeds []string
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		fc := &fleet.Config{
			ID:            fmt.Sprintf("node-%d", i),
			AdvertiseHTTP: ln.Addr().String(),
			BindUDP:       "127.0.0.1:0",
			Peers:         append([]string(nil), seeds...),
			Interval:      testGossipInterval,
			TTL:           testFactTTL,
			Secret:        "fleet-test",
		}
		s := mustNew(t, Config{FleetConfig: fc, Logf: func(string, ...any) {}})
		ts := httptest.NewUnstartedServer(s.Handler())
		ts.Listener.Close()
		ts.Listener = ln
		ts.Start()
		s.Fleet().Start()
		seeds = append(seeds, s.Fleet().GossipAddr())
		members = append(members, fleetMember{srv: s, ts: ts})
	}
	t.Cleanup(func() {
		for _, m := range members {
			m.kill()
		}
	})
	return members
}

// waitFor polls cond until it holds or the convergence budget lapses.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// httpDo runs one request against a real listener (unlike do, which
// drives the handler in-process and so can never be forwarded).
func httpDo(t *testing.T, method, url, contentType, body string) (int, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

// registerOn registers a mapping over HTTP and returns its hash.
func registerOn(t *testing.T, m fleetMember, mapping string) string {
	t.Helper()
	status, body := httpDo(t, "POST", m.url()+"/v1/mappings", "", mapping)
	if status != http.StatusCreated && status != http.StatusOK {
		t.Fatalf("register: status %d: %s", status, body)
	}
	var resp registerResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	return resp.Hash
}

// runOn posts a /run and returns the embedded solution document.
func runOn(t *testing.T, m fleetMember, hash, source string) json.RawMessage {
	t.Helper()
	status, body := httpDo(t, "POST", m.url()+"/v1/exchanges/"+hash+"/run", "", source)
	if status != http.StatusOK {
		t.Fatalf("run via %s: status %d: %s", m.srv.Fleet().ID(), status, body)
	}
	var resp struct {
		Solution json.RawMessage `json:"solution"`
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	return resp.Solution
}

// directSolution chases the source on a freshly compiled exchange —
// the engine-level baseline every node must match byte for byte.
func directSolution(t *testing.T, mapping, source string) (string, []byte) {
	t.Helper()
	ex, err := tdx.Compile(mapping, tdx.WithRunInterner())
	if err != nil {
		t.Fatal(err)
	}
	src, err := ex.ParseSource(source)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := ex.Run(context.Background(), src)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := sol.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var compact bytes.Buffer
	if err := json.Compact(&compact, doc); err != nil {
		t.Fatal(err)
	}
	return ex.Fingerprint(), compact.Bytes()
}

// TestFleetTwoNodeForward is the core routing contract: an exchange
// registered on node A answers a /run posted to node B — forwarded, and
// byte-identical to the direct engine run and to a standalone server.
func TestFleetTwoNodeForward(t *testing.T) {
	mapping := readTestdata(t, "employment.tdx")
	source := readTestdata(t, "employment.facts")
	wantHash, want := directSolution(t, mapping, source)

	nodes := startFleet(t, 2)
	a, b := nodes[0], nodes[1]
	hash := registerOn(t, a, mapping)
	if hash != wantHash {
		t.Fatalf("registered hash %s, direct fingerprint %s", hash, wantHash)
	}
	waitFor(t, "fact replication to node-1", func() bool {
		_, ok := b.srv.Fleet().ManifestPayload(hash)
		return ok
	})

	got := runOn(t, b, hash, source)
	if !bytes.Equal(got, want) {
		t.Fatalf("forwarded solution differs from direct run:\n%s\nvs\n%s", got, want)
	}
	if b.srv.forwards.Load() != 1 {
		t.Fatalf("node-1 forwards = %d, want 1", b.srv.forwards.Load())
	}

	// The same request against a standalone daemon: one mapping, three
	// serving shapes, one answer.
	solo := mustNew(t, Config{})
	h := solo.Handler()
	if soloHash := register(t, h, mapping); soloHash != hash {
		t.Fatalf("standalone hash %s differs from fleet hash %s", soloHash, hash)
	}
	soloSol := runSolution(t, h, hash, source)
	if !bytes.Equal(soloSol, want) {
		t.Fatalf("standalone solution differs from direct run")
	}

	// The origin node serves the same bytes locally, without forwarding.
	local := runOn(t, a, hash, source)
	if !bytes.Equal(local, want) {
		t.Fatal("origin node's local solution differs")
	}
	if a.srv.forwards.Load() != 0 {
		t.Fatalf("origin node forwarded its own exchange: %d", a.srv.forwards.Load())
	}
}

// TestFleetHealthzAndMetrics pins the fleet observability surface: the
// /healthz fleet block and the tdxd_* fleet counters on /metrics.
func TestFleetHealthzAndMetrics(t *testing.T) {
	mapping := readTestdata(t, "employment.tdx")
	source := readTestdata(t, "employment.facts")

	nodes := startFleet(t, 2)
	a, b := nodes[0], nodes[1]
	hash := registerOn(t, a, mapping)
	waitFor(t, "membership convergence", func() bool {
		_, ok := b.srv.Fleet().ManifestPayload(hash)
		return ok && a.srv.Fleet().Peers() == 1 && b.srv.Fleet().Peers() == 1
	})
	runOn(t, b, hash, source) // one forward

	status, body := httpDo(t, "GET", b.url()+"/healthz", "", "")
	if status != http.StatusOK {
		t.Fatalf("healthz: status %d", status)
	}
	var hz healthResponse
	if err := json.Unmarshal(body, &hz); err != nil {
		t.Fatal(err)
	}
	if hz.Fleet == nil {
		t.Fatal("fleet-mode healthz carries no fleet block")
	}
	if hz.Fleet.NodeID != "node-1" || hz.Fleet.Peers != 1 || len(hz.Fleet.Members) != 2 {
		t.Fatalf("fleet block: %+v", hz.Fleet)
	}
	if hz.Fleet.Forwards != 1 {
		t.Fatalf("fleet block forwards = %d, want 1", hz.Fleet.Forwards)
	}
	if hz.Fleet.GossipSent == 0 || hz.Fleet.GossipReceived == 0 {
		t.Fatalf("gossip counters silent: %+v", hz.Fleet)
	}

	status, body = httpDo(t, "GET", b.url()+"/metrics", "", "")
	if status != http.StatusOK {
		t.Fatalf("metrics: status %d", status)
	}
	metrics := parseMetrics(t, string(body))
	for name, want := range map[string]int64{
		"tdxd_peers":          1,
		"tdxd_forwards_total": 1,
	} {
		if metrics[name] != want {
			t.Fatalf("%s = %d, want %d", name, metrics[name], want)
		}
	}
	for _, name := range []string{"tdxd_gossip_sent_total", "tdxd_gossip_received_total"} {
		if metrics[name] <= 0 {
			t.Fatalf("%s = %d, want > 0", name, metrics[name])
		}
	}
	if _, ok := metrics["tdxd_facts_expired_total"]; !ok {
		t.Fatal("tdxd_facts_expired_total not exposed")
	}

	// A standalone daemon exposes the same names, all zero — one scrape
	// config covers both shapes, and its healthz has no fleet block.
	solo := mustNew(t, Config{})
	rec := do(solo.Handler(), "GET", "/metrics", "", "")
	soloMetrics := parseMetrics(t, rec.Body.String())
	for _, name := range []string{"tdxd_peers", "tdxd_forwards_total", "tdxd_gossip_sent_total"} {
		if v, ok := soloMetrics[name]; !ok || v != 0 {
			t.Fatalf("standalone %s = %d (present %v), want 0", name, v, ok)
		}
	}
	if hzSolo := health(t, solo.Handler()); hzSolo.Fleet != nil {
		t.Fatal("standalone healthz grew a fleet block")
	}
}

// parseMetrics reads the Prometheus text exposition into a name→value
// map (integer-valued samples only, which is all tdxd emits).
func parseMetrics(t *testing.T, text string) map[string]int64 {
	t.Helper()
	out := make(map[string]int64)
	for _, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		var name string
		var value int64
		if _, err := fmt.Sscanf(line, "%s %d", &name, &value); err != nil {
			t.Fatalf("unparsable metrics line %q: %v", line, err)
		}
		out[name] = value
	}
	return out
}

// TestFleetThreeNodeAnyNode is the acceptance criterion at n=3: an
// exchange registered on one node answers identically through every
// node, and the answer is the direct engine run's bytes.
func TestFleetThreeNodeAnyNode(t *testing.T) {
	mapping := readTestdata(t, "employment.tdx")
	source := readTestdata(t, "employment.facts")
	_, want := directSolution(t, mapping, source)

	nodes := startFleet(t, 3)
	hash := registerOn(t, nodes[0], mapping)
	for _, m := range nodes[1:] {
		m := m
		waitFor(t, "fact replication to "+m.srv.Fleet().ID(), func() bool {
			_, ok := m.srv.Fleet().ManifestPayload(hash)
			return ok
		})
	}
	for _, m := range nodes {
		got := runOn(t, m, hash, source)
		if !bytes.Equal(got, want) {
			t.Fatalf("solution via %s differs from direct run", m.srv.Fleet().ID())
		}
	}
	// The two non-origin nodes either forwarded to the origin or (as
	// forward targets of each other) compiled from gossip; both paths
	// must have left the origin's copy authoritative and counted.
	relayed := nodes[1].srv.forwards.Load() + nodes[2].srv.forwards.Load() +
		nodes[1].srv.fleetCompiles.Load() + nodes[2].srv.fleetCompiles.Load()
	if relayed == 0 {
		t.Fatal("non-origin nodes served without forwarding or fleet compiling")
	}
}

// TestFleetFailover kills the only holder of an exchange: the surviving
// nodes must keep serving it (fallback compile from the gossiped
// manifest payload), and the dead node's facts must expire from every
// survivor's membership via TTL.
func TestFleetFailover(t *testing.T) {
	mapping := readTestdata(t, "employment.tdx")
	source := readTestdata(t, "employment.facts")
	_, want := directSolution(t, mapping, source)

	nodes := startFleet(t, 3)
	hash := registerOn(t, nodes[0], mapping)
	for _, m := range nodes[1:] {
		m := m
		waitFor(t, "fact replication to "+m.srv.Fleet().ID(), func() bool {
			_, ok := m.srv.Fleet().ManifestPayload(hash)
			return ok
		})
	}

	nodes[0].kill()

	// Both survivors answer — by fallback compile, or by forwarding to
	// the survivor that already fell back — and the bytes still match.
	for _, m := range nodes[1:] {
		got := runOn(t, m, hash, source)
		if !bytes.Equal(got, want) {
			t.Fatalf("post-failover solution via %s differs", m.srv.Fleet().ID())
		}
	}
	if compiles := nodes[1].srv.fleetCompiles.Load() + nodes[2].srv.fleetCompiles.Load(); compiles == 0 {
		t.Fatal("no survivor fallback-compiled the dead node's exchange")
	}

	// TTL failure detection: the dead node ages out of both survivors'
	// views, and the expiry counter says the sweep did it.
	for _, m := range nodes[1:] {
		m := m
		waitFor(t, "dead node expiry on "+m.srv.Fleet().ID(), func() bool {
			for _, mem := range m.srv.Fleet().Members() {
				if mem.ID == "node-0" {
					return false
				}
			}
			return m.srv.Fleet().FactsExpired() > 0
		})
	}

	// Post-expiry traffic still serves: the survivors now hold the
	// exchange themselves.
	got := runOn(t, nodes[1], hash, source)
	if !bytes.Equal(got, want) {
		t.Fatal("post-expiry solution differs")
	}
}

// TestFleetTwoNodeFailover pins the exhausted-candidates path: with two
// nodes, the survivor's forward list holds only the dead holder, so the
// request must fall through to the local fallback compile — and the
// handler must still find the request body the forward loop buffered.
func TestFleetTwoNodeFailover(t *testing.T) {
	mapping := readTestdata(t, "employment.tdx")
	source := readTestdata(t, "employment.facts")
	_, want := directSolution(t, mapping, source)

	nodes := startFleet(t, 2)
	hash := registerOn(t, nodes[0], mapping)
	waitFor(t, "fact replication to node-1", func() bool {
		_, ok := nodes[1].srv.Fleet().ManifestPayload(hash)
		return ok
	})

	nodes[0].kill()

	got := runOn(t, nodes[1], hash, source)
	if !bytes.Equal(got, want) {
		t.Fatal("survivor's fallback solution differs from direct run")
	}
	if f := nodes[1].srv.forwards.Load(); f != 0 {
		t.Fatalf("survivor counted %d forwards with no live peer", f)
	}
	if c := nodes[1].srv.fleetCompiles.Load(); c != 1 {
		t.Fatalf("survivor fleetCompiles = %d, want 1", c)
	}
}

// TestFleetUnknownHash: a hash nobody holds 404s with the fleet-wide
// message, from any node, without hanging on forwards.
func TestFleetUnknownHash(t *testing.T) {
	nodes := startFleet(t, 2)
	bogus := strings.Repeat("ab", 32)
	status, body := httpDo(t, "POST", nodes[1].url()+"/v1/exchanges/"+bogus+"/run", "", "E(a, X) @ [1, 2)")
	if status != http.StatusNotFound {
		t.Fatalf("unknown hash: status %d: %s", status, body)
	}
	if !strings.Contains(string(body), "anywhere in the fleet") {
		t.Fatalf("unknown-hash error lost the fleet wording: %s", body)
	}
}
