package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	tdx "repro"
)

func readTestdata(t testing.TB, name string) string {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("..", "..", "testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// mustNew builds a server, failing the test on configuration errors.
func mustNew(t testing.TB, cfg Config) *Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s
}

// do runs one request through the routed handler.
func do(h http.Handler, method, target, contentType, body string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(method, target, strings.NewReader(body))
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// register registers a raw mapping text and returns its hash.
func register(t testing.TB, h http.Handler, mapping string) string {
	t.Helper()
	rec := do(h, "POST", "/v1/mappings", "", mapping)
	if rec.Code != http.StatusCreated && rec.Code != http.StatusOK {
		t.Fatalf("register: status %d: %s", rec.Code, rec.Body)
	}
	var resp registerResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("register response: %v\n%s", err, rec.Body)
	}
	if len(resp.Hash) != 64 {
		t.Fatalf("hash is not a hex sha256: %q", resp.Hash)
	}
	return resp.Hash
}

func TestRegisterAndList(t *testing.T) {
	s := mustNew(t, Config{})
	h := s.Handler()
	text := readTestdata(t, "employment.tdx")

	rec := do(h, "POST", "/v1/mappings", "", text)
	if rec.Code != http.StatusCreated {
		t.Fatalf("first register: status %d: %s", rec.Code, rec.Body)
	}
	var first registerResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &first); err != nil {
		t.Fatal(err)
	}
	if first.Cached || first.Info.TGDs != 2 || first.Info.EGDs != 1 || first.Info.Queries != 1 || first.Info.Temporal {
		t.Fatalf("first register response: %+v", first)
	}

	// The same text again: cached, same hash, 200.
	rec = do(h, "POST", "/v1/mappings", "", text)
	if rec.Code != http.StatusOK {
		t.Fatalf("re-register: status %d", rec.Code)
	}
	var second registerResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &second); err != nil {
		t.Fatal(err)
	}
	if !second.Cached || second.Hash != first.Hash {
		t.Fatalf("re-register response: %+v (want cached, hash %s)", second, first.Hash)
	}

	// A reformatted text (comments, whitespace) lands on the same entry:
	// the registry is keyed on the canonical fingerprint.
	noisy := "# reformatted\n" + strings.ReplaceAll(text, "tgd sigma1:", "tgd   sigma1:  ")
	rec = do(h, "POST", "/v1/mappings", "", noisy)
	if rec.Code != http.StatusOK {
		t.Fatalf("noisy register: status %d: %s", rec.Code, rec.Body)
	}
	var third registerResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &third); err != nil {
		t.Fatal(err)
	}
	if !third.Cached || third.Hash != first.Hash {
		t.Fatalf("noisy register did not dedup: %+v", third)
	}

	// The JSON envelope with options compiles a distinct exchange.
	env, _ := json.Marshal(registerRequest{Mapping: text, Options: requestOptions{Norm: "naive"}})
	rec = do(h, "POST", "/v1/mappings", "application/json", string(env))
	if rec.Code != http.StatusCreated {
		t.Fatalf("naive register: status %d: %s", rec.Code, rec.Body)
	}
	var naive registerResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &naive); err != nil {
		t.Fatal(err)
	}
	if naive.Hash == first.Hash {
		t.Fatal("naive-norm exchange shares the default exchange's hash")
	}

	rec = do(h, "GET", "/v1/mappings", "", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("list: status %d", rec.Code)
	}
	var list listResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Mappings) != 2 || list.Capacity != DefaultCapacity {
		t.Fatalf("list: %+v", list)
	}
	// MRU first: the naive entry registered last.
	if list.Mappings[0].Hash != naive.Hash {
		t.Fatalf("list not MRU-ordered: %+v", list)
	}
}

// TestRunMatchesDirectRun is the acceptance criterion: the run
// endpoint's solution (facts and stats) is byte-identical to
// tdx.Exchange.Run called directly on the same source.
func TestRunMatchesDirectRun(t *testing.T) {
	s := mustNew(t, Config{})
	h := s.Handler()
	mapping := readTestdata(t, "employment.tdx")
	facts := readTestdata(t, "employment.facts")
	hash := register(t, h, mapping)

	// The direct exchange, same engine options as the server applies.
	ex, err := tdx.Compile(mapping, tdx.WithRunInterner())
	if err != nil {
		t.Fatal(err)
	}
	if ex.Fingerprint() != hash {
		t.Fatalf("server hash %s is not the exchange fingerprint %s", hash, ex.Fingerprint())
	}

	for _, body := range []struct {
		name, contentType, payload string
	}{
		{"text", "", facts},
		{"json", "application/json", string(directSourceJSON(t, ex, facts))},
	} {
		// The direct baseline decodes the source exactly as the server
		// will: fact insertion order steers null family numbering, so
		// "the same source" means the same decode path.
		var src *tdx.Instance
		if body.contentType == "" {
			src, err = ex.ParseSource(body.payload)
		} else {
			src, err = ex.DecodeSourceJSON(strings.NewReader(body.payload))
		}
		if err != nil {
			t.Fatal(err)
		}
		direct, err := ex.Run(context.Background(), src)
		if err != nil {
			t.Fatal(err)
		}
		directJSON, err := direct.JSON()
		if err != nil {
			t.Fatal(err)
		}
		var wantSolution bytes.Buffer
		if err := json.Compact(&wantSolution, directJSON); err != nil {
			t.Fatal(err)
		}
		rec := do(h, "POST", "/v1/exchanges/"+hash+"/run", body.contentType, body.payload)
		if rec.Code != http.StatusOK {
			t.Fatalf("%s run: status %d: %s", body.name, rec.Code, rec.Body)
		}
		var resp struct {
			Hash     string          `json:"hash"`
			Stats    json.RawMessage `json:"stats"`
			Solution json.RawMessage `json:"solution"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		if resp.Hash != hash {
			t.Fatalf("%s run: echoed hash %q", body.name, resp.Hash)
		}
		// Facts: byte-identical modulo JSON whitespace (the response is
		// compacted on the wire).
		if !bytes.Equal(resp.Solution, wantSolution.Bytes()) {
			t.Fatalf("%s run: solution differs from direct run:\n%s\nvs\n%s", body.name, resp.Solution, wantSolution.Bytes())
		}
		// Stats: byte-identical encoding.
		wantStats, err := json.Marshal(direct.Stats())
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(resp.Stats, wantStats) {
			t.Fatalf("%s run: stats differ:\n%s\nvs\n%s", body.name, resp.Stats, wantStats)
		}
	}
}

// directSourceJSON encodes the facts text as the TDX JSON instance
// format (via a parsed instance), exercising the JSON body path.
func directSourceJSON(t testing.TB, ex *tdx.Exchange, facts string) []byte {
	t.Helper()
	src, err := ex.ParseSource(facts)
	if err != nil {
		t.Fatal(err)
	}
	data, err := src.JSON()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestRunQueryAndAnswer(t *testing.T) {
	s := mustNew(t, Config{})
	h := s.Handler()
	mapping := readTestdata(t, "employment.tdx")
	facts := readTestdata(t, "employment.facts")
	hash := register(t, h, mapping)

	ex := tdx.MustCompile(mapping, tdx.WithRunInterner())
	src, err := ex.ParseSource(facts)
	if err != nil {
		t.Fatal(err)
	}
	wantAns, err := ex.Answer(context.Background(), src, "q")
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, err := wantAns.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := json.Compact(&want, wantJSON); err != nil {
		t.Fatal(err)
	}

	// /run?query= returns the solution plus the answers.
	rec := do(h, "POST", "/v1/exchanges/"+hash+"/run?query=q", "", facts)
	if rec.Code != http.StatusOK {
		t.Fatalf("run?query: status %d: %s", rec.Code, rec.Body)
	}
	var run struct {
		Solution json.RawMessage `json:"solution"`
		Answers  json.RawMessage `json:"answers"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &run); err != nil {
		t.Fatal(err)
	}
	if len(run.Solution) == 0 || !bytes.Equal(run.Answers, want.Bytes()) {
		t.Fatalf("run?query answers:\n%s\nvs\n%s", run.Answers, want.Bytes())
	}

	// /answer with the declared query's name.
	rec = do(h, "POST", "/v1/exchanges/"+hash+"/answer?query=q", "", facts)
	if rec.Code != http.StatusOK {
		t.Fatalf("answer: status %d: %s", rec.Code, rec.Body)
	}
	var ans struct {
		Answers json.RawMessage `json:"answers"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &ans); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ans.Answers, want.Bytes()) {
		t.Fatalf("answer endpoint:\n%s\nvs\n%s", ans.Answers, want.Bytes())
	}

	// /answer with no ?query=: the mapping declares exactly one query, so
	// it is used.
	rec = do(h, "POST", "/v1/exchanges/"+hash+"/answer", "", facts)
	if rec.Code != http.StatusOK {
		t.Fatalf("answer default: status %d: %s", rec.Code, rec.Body)
	}

	// An inline query in rule syntax.
	inline := "query who(n) :- Emp(n, \"IBM\", s)"
	rec = do(h, "POST", "/v1/exchanges/"+hash+"/answer?query="+urlQueryEscape(inline), "", facts)
	if rec.Code != http.StatusOK {
		t.Fatalf("inline answer: status %d: %s", rec.Code, rec.Body)
	}
	if !strings.Contains(rec.Body.String(), "who") {
		t.Fatalf("inline answer body: %s", rec.Body)
	}

	// An unknown query name is the client's error.
	rec = do(h, "POST", "/v1/exchanges/"+hash+"/answer?query=nope", "", facts)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("unknown query: status %d: %s", rec.Code, rec.Body)
	}
}

// TestTemporalSnapshot is the §7 acceptance leg: a temporal mapping
// registers, runs through the temporal chase, and /snapshot?at= returns
// the same abstract snapshot as the direct API.
func TestTemporalSnapshot(t *testing.T) {
	s := mustNew(t, Config{})
	h := s.Handler()
	mapping := readTestdata(t, "phd.tdx")
	facts := readTestdata(t, "phd.facts")
	hash := register(t, h, mapping)

	ex := tdx.MustCompile(mapping, tdx.WithRunInterner())
	src, err := ex.ParseSource(facts)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := ex.Run(context.Background(), src)
	if err != nil {
		t.Fatal(err)
	}
	at, err := tdx.ParseTime("2017")
	if err != nil {
		t.Fatal(err)
	}
	snap, err := ex.Snapshot(context.Background(), sol, at)
	if err != nil {
		t.Fatal(err)
	}
	// The expected facts array, built independently of the streaming
	// writer the handler uses.
	wantWire := make([]snapshotFact, len(snap.Facts()))
	for i, f := range snap.Facts() {
		args := make([]string, len(f.Args))
		for j, a := range f.Args {
			args[j] = a.String()
		}
		wantWire[i] = snapshotFact{Rel: f.Rel, Args: args}
	}
	wantFacts, err := json.Marshal(wantWire)
	if err != nil {
		t.Fatal(err)
	}

	rec := do(h, "POST", "/v1/exchanges/"+hash+"/snapshot?at=2017", "", facts)
	if rec.Code != http.StatusOK {
		t.Fatalf("snapshot: status %d: %s", rec.Code, rec.Body)
	}
	var resp struct {
		At        string          `json:"at"`
		Facts     json.RawMessage `json:"facts"`
		Rendering string          `json:"rendering"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.At != "2017" {
		t.Fatalf("snapshot at: %q", resp.At)
	}
	if !bytes.Equal(resp.Facts, wantFacts) {
		t.Fatalf("snapshot facts differ:\n%s\nvs\n%s", resp.Facts, wantFacts)
	}
	if resp.Rendering != snap.String() {
		t.Fatalf("snapshot rendering differs:\n%s\nvs\n%s", resp.Rendering, snap.String())
	}
	// The run must have gone through the temporal chase: Alumni holds at
	// every point strictly after the 2016 graduation snapshot.
	if !strings.Contains(resp.Rendering, "Alumni(ada") {
		t.Fatalf("snapshot rendering missing temporal witness: %s", resp.Rendering)
	}

	// /run on the temporal mapping works too (dispatches transparently).
	rec = do(h, "POST", "/v1/exchanges/"+hash+"/run", "", facts)
	if rec.Code != http.StatusOK {
		t.Fatalf("temporal run: status %d: %s", rec.Code, rec.Body)
	}
	if !strings.Contains(rec.Body.String(), "PhDCan") {
		t.Fatalf("temporal run body: %s", rec.Body)
	}

	// A missing or malformed ?at= is a 400.
	if rec := do(h, "POST", "/v1/exchanges/"+hash+"/snapshot", "", facts); rec.Code != http.StatusBadRequest {
		t.Fatalf("missing at: status %d", rec.Code)
	}
	if rec := do(h, "POST", "/v1/exchanges/"+hash+"/snapshot?at=bogus", "", facts); rec.Code != http.StatusBadRequest {
		t.Fatalf("bad at: status %d", rec.Code)
	}
}

// TestTimeoutReturns504 is the acceptance criterion's failure leg: an
// exceeded ?timeout= returns 504 promptly, and the registry entry keeps
// serving afterwards.
func TestTimeoutReturns504(t *testing.T) {
	s := mustNew(t, Config{})
	h := s.Handler()
	hash := register(t, h, readTestdata(t, "employment.tdx"))
	facts := readTestdata(t, "employment.facts")

	started := time.Now()
	rec := do(h, "POST", "/v1/exchanges/"+hash+"/run?timeout=1ns", "", facts)
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("exceeded timeout: status %d: %s", rec.Code, rec.Body)
	}
	if elapsed := time.Since(started); elapsed > 5*time.Second {
		t.Fatalf("504 took %v; cancellation must be prompt", elapsed)
	}
	var e errorResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil {
		t.Fatal(err)
	}
	if e.Status != http.StatusGatewayTimeout || !strings.Contains(e.Error, "deadline") {
		t.Fatalf("504 body: %+v", e)
	}

	// The registry entry is not corrupted: the next request succeeds and
	// produces the full solution.
	rec = do(h, "POST", "/v1/exchanges/"+hash+"/run", "", facts)
	if rec.Code != http.StatusOK {
		t.Fatalf("run after timeout: status %d: %s", rec.Code, rec.Body)
	}
	if !strings.Contains(rec.Body.String(), "Emp") {
		t.Fatalf("run after timeout returned no facts: %s", rec.Body)
	}

	// An over-cap timeout is clamped, not rejected.
	rec = do(h, "POST", "/v1/exchanges/"+hash+"/run?timeout=1000h", "", facts)
	if rec.Code != http.StatusOK {
		t.Fatalf("clamped timeout: status %d: %s", rec.Code, rec.Body)
	}
}

func TestErrorMapping(t *testing.T) {
	s := mustNew(t, Config{})
	h := s.Handler()
	hash := register(t, h, readTestdata(t, "employment.tdx"))
	facts := readTestdata(t, "employment.facts")

	cases := []struct {
		name   string
		rec    *httptest.ResponseRecorder
		status int
	}{
		{"unknown hash", do(h, "POST", "/v1/exchanges/feedbeef/run", "", facts), http.StatusNotFound},
		{"bad mapping", do(h, "POST", "/v1/mappings", "", "this is not a mapping"), http.StatusBadRequest},
		{"empty mapping", do(h, "POST", "/v1/mappings", "", "   "), http.StatusBadRequest},
		{"bad register envelope", do(h, "POST", "/v1/mappings", "application/json", `{"mapping": 7}`), http.StatusBadRequest},
		{"unknown envelope field", do(h, "POST", "/v1/mappings", "application/json", `{"maping": "x"}`), http.StatusBadRequest},
		{"bad option", do(h, "POST", "/v1/mappings", "application/json", `{"mapping": "source schema { E(a) }\ntarget schema { T(a) }\ntgd t: E(a) -> T(a)", "options": {"norm": "bogus"}}`), http.StatusBadRequest},
		{"bad facts", do(h, "POST", "/v1/exchanges/"+hash+"/run", "", "E(Ada) @ [1,2)"), http.StatusBadRequest},
		{"empty body", do(h, "POST", "/v1/exchanges/"+hash+"/run", "", ""), http.StatusBadRequest},
		{"bad json source", do(h, "POST", "/v1/exchanges/"+hash+"/run", "application/json", `{"facts":[{"rel":"E","args":["a"],"interval":"[1,2)"}]}`), http.StatusBadRequest},
		{"bad timeout", do(h, "POST", "/v1/exchanges/"+hash+"/run?timeout=-5s", "", facts), http.StatusBadRequest},
		{"bad parallel", do(h, "POST", "/v1/exchanges/"+hash+"/run?parallel=many", "", facts), http.StatusBadRequest},
		{"bad norm", do(h, "POST", "/v1/exchanges/"+hash+"/run?norm=bogus", "", facts), http.StatusBadRequest},
		{"bad egd", do(h, "POST", "/v1/exchanges/"+hash+"/run?egd=bogus", "", facts), http.StatusBadRequest},
		{"bad coalesce", do(h, "POST", "/v1/exchanges/"+hash+"/run?coalesce=maybe", "", facts), http.StatusBadRequest},
		// Two overlapping salaries for one (name, company): the key egd
		// equates the constants 18k and 20k — no solution exists.
		{"no solution", do(h, "POST", "/v1/exchanges/"+hash+"/run", "",
			"E(Ada, IBM) @ [2012, 2014)\nS(Ada, 18k) @ [2012, 2014)\nS(Ada, 20k) @ [2012, 2014)\n"), http.StatusUnprocessableEntity},
	}
	for _, c := range cases {
		if c.rec.Code != c.status {
			t.Errorf("%s: status %d, want %d: %s", c.name, c.rec.Code, c.status, c.rec.Body)
		}
		var e errorResponse
		if err := json.Unmarshal(c.rec.Body.Bytes(), &e); err != nil {
			t.Errorf("%s: error body is not the errorResponse form: %s", c.name, c.rec.Body)
			continue
		}
		if e.Error == "" || e.Status != c.status {
			t.Errorf("%s: error body %+v", c.name, e)
		}
	}
}

func TestHealthz(t *testing.T) {
	s := mustNew(t, Config{})
	h := s.Handler()
	register(t, h, readTestdata(t, "employment.tdx"))
	rec := do(h, "GET", "/healthz", "", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz: status %d", rec.Code)
	}
	var resp healthResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Status != "ok" || resp.Mappings != 1 || resp.Compiles != 1 {
		t.Fatalf("healthz: %+v", resp)
	}
}

// TestLRUEviction: the registry drops the least recently used exchange
// when the bound is hit; evicted hashes 404 and re-register transparently.
func TestLRUEviction(t *testing.T) {
	var compiles atomic.Int64
	s := mustNew(t, Config{
		MaxMappings: 2,
		Compile: func(mapping string, opts ...tdx.Option) (*tdx.Exchange, error) {
			compiles.Add(1)
			return tdx.Compile(mapping, opts...)
		},
	})
	h := s.Handler()
	base := readTestdata(t, "employment.tdx")
	variant := func(i int) string {
		return strings.ReplaceAll(base, "tgd sigma1:", fmt.Sprintf("tgd sigma1v%d:", i))
	}
	h1 := register(t, h, variant(1))
	h2 := register(t, h, variant(2))
	h3 := register(t, h, variant(3)) // evicts h1
	if got := compiles.Load(); got != 3 {
		t.Fatalf("compiles = %d, want 3", got)
	}
	if s.Registry().Len() != 2 || s.Registry().Evicted() != 1 {
		t.Fatalf("registry: len=%d evicted=%d", s.Registry().Len(), s.Registry().Evicted())
	}
	facts := readTestdata(t, "employment.facts")
	if rec := do(h, "POST", "/v1/exchanges/"+h1+"/run", "", facts); rec.Code != http.StatusNotFound {
		t.Fatalf("evicted hash: status %d", rec.Code)
	}
	for _, alive := range []string{h2, h3} {
		if rec := do(h, "POST", "/v1/exchanges/"+alive+"/run", "", facts); rec.Code != http.StatusOK {
			t.Fatalf("resident hash %s: status %d: %s", alive, rec.Code, rec.Body)
		}
	}
	// Re-registering the evicted text recompiles (the raw-key index was
	// dropped with the entry) and restores service under the same hash.
	if got := register(t, h, variant(1)); got != h1 {
		t.Fatalf("re-register changed hash: %s vs %s", got, h1)
	}
	if got := compiles.Load(); got != 4 {
		t.Fatalf("compiles after re-register = %d, want 4", got)
	}
	if rec := do(h, "POST", "/v1/exchanges/"+h1+"/run", "", facts); rec.Code != http.StatusOK {
		t.Fatalf("re-registered hash: status %d", rec.Code)
	}
}

// TestConcurrentRegisterAndRun is the satellite concurrency test: 16
// goroutines registering the same mapping burst-compile exactly once
// (singleflight), while other goroutines keep running requests against a
// warm entry. Run under -race in CI.
func TestConcurrentRegisterAndRun(t *testing.T) {
	var compiles atomic.Int64
	s := mustNew(t, Config{
		Compile: func(mapping string, opts ...tdx.Option) (*tdx.Exchange, error) {
			compiles.Add(1)
			// Widen the race window so the burst really overlaps one
			// compilation.
			time.Sleep(20 * time.Millisecond)
			return tdx.Compile(mapping, opts...)
		},
	})
	h := s.Handler()
	warmHash := register(t, h, readTestdata(t, "employment.tdx"))
	facts := readTestdata(t, "employment.facts")
	burst := readTestdata(t, "phd.tdx")
	phdFacts := readTestdata(t, "phd.facts")

	const registrars = 16
	const runners = 8
	hashes := make([]string, registrars)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < registrars; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			rec := do(h, "POST", "/v1/mappings", "", burst)
			if rec.Code != http.StatusCreated && rec.Code != http.StatusOK {
				t.Errorf("registrar %d: status %d: %s", i, rec.Code, rec.Body)
				return
			}
			var resp registerResponse
			if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
				t.Errorf("registrar %d: %v", i, err)
				return
			}
			hashes[i] = resp.Hash
		}(i)
	}
	for i := 0; i < runners; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			for j := 0; j < 4; j++ {
				rec := do(h, "POST", "/v1/exchanges/"+warmHash+"/run", "", facts)
				if rec.Code != http.StatusOK {
					t.Errorf("runner %d.%d: status %d: %s", i, j, rec.Code, rec.Body)
					return
				}
			}
		}(i)
	}
	close(start)
	wg.Wait()

	// Exactly two compiles total: the warm entry plus ONE for the
	// 16-strong burst.
	if got := compiles.Load(); got != 2 {
		t.Fatalf("compiles = %d, want 2 (registration burst must singleflight)", got)
	}
	for i, h := range hashes {
		if h != hashes[0] {
			t.Fatalf("registrar %d got hash %s, others %s", i, h, hashes[0])
		}
	}
	// And the burst entry serves.
	if rec := do(h, "POST", "/v1/exchanges/"+hashes[0]+"/run", "", phdFacts); rec.Code != http.StatusOK {
		t.Fatalf("burst entry run: status %d: %s", rec.Code, rec.Body)
	}
}

// urlQueryEscape is a minimal query escaper for test URLs.
func urlQueryEscape(s string) string {
	r := strings.NewReplacer(" ", "%20", "\"", "%22", ":", "%3A", ",", "%2C", "(", "%28", ")", "%29", "-", "%2D")
	return r.Replace(s)
}

// TestBadQueryCostsNoChase: an invalid ?query= is rejected up front on
// both /run and /answer — before the body is decoded or a chase runs —
// so a tiny bad request cannot buy MaxTimeout worth of server CPU.
func TestBadQueryCostsNoChase(t *testing.T) {
	s := mustNew(t, Config{})
	h := s.Handler()
	hash := register(t, h, readTestdata(t, "employment.tdx"))

	// The body is deliberately garbage: pre-run validation must reject
	// the query before ever looking at it.
	for _, target := range []string{
		"/v1/exchanges/" + hash + "/run?query=nope",
		"/v1/exchanges/" + hash + "/answer?query=nope",
	} {
		rec := do(h, "POST", target, "", "not a fact file at all")
		if rec.Code != http.StatusBadRequest {
			t.Fatalf("%s: status %d: %s", target, rec.Code, rec.Body)
		}
		if !strings.Contains(rec.Body.String(), "nope") {
			t.Fatalf("%s: error does not name the query: %s", target, rec.Body)
		}
	}
}

// TestBudgetCoversWholePipeline: ?timeout= bounds /answer and /snapshot
// end to end (run + evaluation), not just the chase.
func TestBudgetCoversWholePipeline(t *testing.T) {
	s := mustNew(t, Config{})
	h := s.Handler()
	hash := register(t, h, readTestdata(t, "employment.tdx"))
	facts := readTestdata(t, "employment.facts")

	for _, target := range []string{
		"/v1/exchanges/" + hash + "/answer?query=q&timeout=1ns",
		"/v1/exchanges/" + hash + "/snapshot?at=2013&timeout=1ns",
		"/v1/exchanges/" + hash + "/run?query=q&timeout=1ns",
	} {
		rec := do(h, "POST", target, "", facts)
		if rec.Code != http.StatusGatewayTimeout {
			t.Fatalf("%s: status %d, want 504: %s", target, rec.Code, rec.Body)
		}
	}
}

// TestOversizeBodyIs413: a body beyond MaxBodyBytes maps to 413, not a
// generic 400, on both the register and run paths.
func TestOversizeBodyIs413(t *testing.T) {
	s := mustNew(t, Config{MaxBodyBytes: 64})
	h := s.Handler()
	big := strings.Repeat("E(Ada, IBM) @ [2012, 2014)\n", 64)

	if rec := do(h, "POST", "/v1/mappings", "", big); rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("register oversize: status %d: %s", rec.Code, rec.Body)
	}
	// For the run path, register a (small enough) mapping first.
	s2 := mustNew(t, Config{MaxBodyBytes: 700})
	h2 := s2.Handler()
	hash := register(t, h2, readTestdata(t, "employment.tdx"))
	if rec := do(h2, "POST", "/v1/exchanges/"+hash+"/run", "", big); rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("run oversize: status %d: %s", rec.Code, rec.Body)
	}
}

// TestRegisterBudget504: POST /v1/mappings is budget-bounded like every
// other endpoint; a compile outlasting the budget 504s, finishes
// detached, and serves the retry from cache.
func TestRegisterBudget504(t *testing.T) {
	var compiles atomic.Int64
	s := mustNew(t, Config{
		MaxTimeout: 20 * time.Millisecond,
		Compile: func(mapping string, opts ...tdx.Option) (*tdx.Exchange, error) {
			compiles.Add(1)
			time.Sleep(150 * time.Millisecond)
			return tdx.Compile(mapping, opts...)
		},
	})
	h := s.Handler()
	text := readTestdata(t, "employment.tdx")

	rec := do(h, "POST", "/v1/mappings", "", text)
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("slow register: status %d: %s", rec.Code, rec.Body)
	}
	// Wait out the detached compile, then retry: cached, one compile.
	deadline := time.Now().Add(2 * time.Second)
	for s.Registry().Len() == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	rec = do(h, "POST", "/v1/mappings", "", text)
	if rec.Code != http.StatusOK {
		t.Fatalf("retry: status %d: %s", rec.Code, rec.Body)
	}
	var resp registerResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Cached {
		t.Fatalf("retry not served from the detached compile: %+v", resp)
	}
	if got := compiles.Load(); got != 1 {
		t.Fatalf("compiles = %d, want 1", got)
	}
}

// TestRegisterRejectsTrailingEnvelope: a concatenated second JSON
// envelope errors instead of being silently dropped.
func TestRegisterRejectsTrailingEnvelope(t *testing.T) {
	s := mustNew(t, Config{})
	h := s.Handler()
	env, _ := json.Marshal(registerRequest{Mapping: readTestdata(t, "employment.tdx")})
	rec := do(h, "POST", "/v1/mappings", "application/json", string(env)+string(env))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("concatenated envelopes: status %d: %s", rec.Code, rec.Body)
	}
	if !strings.Contains(rec.Body.String(), "trailing") {
		t.Fatalf("error does not name the trailing data: %s", rec.Body)
	}
}
