package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"testing"
)

// health fetches and decodes /healthz.
func health(t *testing.T, h http.Handler) healthResponse {
	t.Helper()
	rec := do(h, "GET", "/healthz", "", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz: status %d", rec.Code)
	}
	var resp healthResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	return resp
}

// runSolution posts a run and returns the embedded solution document.
func runSolution(t *testing.T, h http.Handler, hash, source string) json.RawMessage {
	t.Helper()
	rec := do(h, "POST", "/v1/exchanges/"+hash+"/run", "", source)
	if rec.Code != http.StatusOK {
		t.Fatalf("run: status %d: %s", rec.Code, rec.Body)
	}
	var resp struct {
		Solution json.RawMessage `json:"solution"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	return resp.Solution
}

// quietCfg returns a state-enabled config whose persistence log lines
// fail the test: warm-start paths under test must not degrade silently.
func quietCfg(t *testing.T, dir string) Config {
	return Config{
		StateDir: dir,
		Logf: func(format string, args ...any) {
			t.Errorf("unexpected state log: "+format, args...)
		},
	}
}

// TestWarmStartRun is the end-to-end warm-start contract: a daemon
// restarted on the same state directory serves the first /run without
// any request-driven compile and byte-identical to the pre-restart
// response.
func TestWarmStartRun(t *testing.T) {
	dir := t.TempDir()
	mapping := readTestdata(t, "employment.tdx")
	source := readTestdata(t, "employment.facts")

	s1 := mustNew(t, quietCfg(t, dir))
	h1 := s1.Handler()
	hash := register(t, h1, mapping)
	cold := runSolution(t, h1, hash, source)
	hz := health(t, h1)
	if hz.Compiles != 1 || hz.SnapshotWrites < 1 || hz.WarmStarts != 0 {
		t.Fatalf("pre-restart healthz: %+v", hz)
	}

	// "Restart": a fresh server over the same directory.
	s2 := mustNew(t, quietCfg(t, dir))
	if err := s2.WarmStart(); err != nil {
		t.Fatalf("WarmStart: %v", err)
	}
	h2 := s2.Handler()
	hz = health(t, h2)
	if hz.Compiles != 0 {
		t.Fatalf("warm boot performed %d request-driven compiles", hz.Compiles)
	}
	if hz.Mappings != 1 || hz.WarmStarts != 1 {
		t.Fatalf("warm boot healthz: %+v", hz)
	}

	warm := runSolution(t, h2, hash, source)
	if !bytes.Equal(cold, warm) {
		t.Fatalf("warm-started solution differs:\ncold: %s\nwarm: %s", cold, warm)
	}
	hz = health(t, h2)
	if hz.Compiles != 0 {
		t.Fatalf("first warm run compiled: %+v", hz)
	}
	if hz.SnapshotLoads != 1 {
		t.Fatalf("first warm run did not hit the run-snapshot cache: %+v", hz)
	}

	// Re-registering the original text resolves to the replayed entry —
	// one compile is expected here (the manifest persisted the canonical
	// text, not this raw variant) but no duplicate entry appears.
	rec := do(h2, "POST", "/v1/mappings", "", mapping)
	if rec.Code != http.StatusOK {
		t.Fatalf("re-register after warm boot: status %d", rec.Code)
	}
	var rr registerResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &rr); err != nil {
		t.Fatal(err)
	}
	if rr.Hash != hash {
		t.Fatalf("re-registration resolved to %s, want %s", rr.Hash, hash)
	}
	if hz = health(t, h2); hz.Mappings != 1 {
		t.Fatalf("re-registration duplicated the entry: %+v", hz)
	}
}

// TestWarmStartSessionResume checks that live sessions survive a
// restart: same id, same delta count, same solution document.
func TestWarmStartSessionResume(t *testing.T) {
	dir := t.TempDir()
	mapping := readTestdata(t, "employment.tdx")
	source := readTestdata(t, "employment.facts")

	s1 := mustNew(t, quietCfg(t, dir))
	h1 := s1.Handler()
	hash := register(t, h1, mapping)

	rec := do(h1, "POST", "/v1/exchanges/"+hash+"/sessions", "", source)
	if rec.Code != http.StatusCreated {
		t.Fatalf("session create: status %d: %s", rec.Code, rec.Body)
	}
	var created sessionWire
	if err := json.Unmarshal(rec.Body.Bytes(), &created); err != nil {
		t.Fatal(err)
	}
	rec = do(h1, "POST", "/v1/sessions/"+created.SessionID+"/facts?solution=true", "", "E(Carol, IBM) @ [2015, 2019)")
	if rec.Code != http.StatusOK {
		t.Fatalf("delta: status %d: %s", rec.Code, rec.Body)
	}
	var afterDelta factsWire
	if err := json.Unmarshal(rec.Body.Bytes(), &afterDelta); err != nil {
		t.Fatal(err)
	}

	s2 := mustNew(t, quietCfg(t, dir))
	if err := s2.WarmStart(); err != nil {
		t.Fatalf("WarmStart: %v", err)
	}
	h2 := s2.Handler()
	hz := health(t, h2)
	if hz.Sessions != 1 || hz.Compiles != 0 || hz.WarmStarts != 2 || hz.SnapshotLoads != 1 {
		t.Fatalf("resumed healthz: %+v", hz)
	}

	// An all-duplicate delta returns the current solution unchanged:
	// the resumed session must answer with the pre-restart document and
	// continue the delta numbering.
	rec = do(h2, "POST", "/v1/sessions/"+created.SessionID+"/facts?solution=true", "", "E(Carol, IBM) @ [2015, 2019)")
	if rec.Code != http.StatusOK {
		t.Fatalf("post-restart delta: status %d: %s", rec.Code, rec.Body)
	}
	var resumed factsWire
	if err := json.Unmarshal(rec.Body.Bytes(), &resumed); err != nil {
		t.Fatal(err)
	}
	if resumed.Deltas != afterDelta.Deltas+1 {
		t.Fatalf("delta numbering reset: %d after %d", resumed.Deltas, afterDelta.Deltas)
	}
	if resumed.Diff.AddedFacts != 0 || resumed.Diff.RemovedFacts != 0 {
		t.Fatalf("duplicate delta changed the resumed solution: %+v", resumed.Diff)
	}
	if !bytes.Equal(afterDelta.Solution, resumed.Solution) {
		t.Fatalf("resumed session solution differs:\npre:  %s\npost: %s", afterDelta.Solution, resumed.Solution)
	}

	// Deleting the session drops its snapshot and manifest row, so the
	// next boot resumes nothing.
	rec = do(h2, "DELETE", "/v1/sessions/"+created.SessionID, "", "")
	if rec.Code != http.StatusNoContent {
		t.Fatalf("delete: status %d", rec.Code)
	}
	s3 := mustNew(t, quietCfg(t, dir))
	if err := s3.WarmStart(); err != nil {
		t.Fatal(err)
	}
	if hz := health(t, s3.Handler()); hz.Sessions != 0 {
		t.Fatalf("deleted session resumed: %+v", hz)
	}
}

// TestSourceCacheCounters checks the decoded-source cache: repeating a
// body against one exchange decodes once, and the counter says so.
func TestSourceCacheCounters(t *testing.T) {
	s := mustNew(t, Config{})
	h := s.Handler()
	hash := register(t, h, readTestdata(t, "employment.tdx"))
	source := readTestdata(t, "employment.facts")

	first := runSolution(t, h, hash, source)
	second := runSolution(t, h, hash, source)
	if !bytes.Equal(first, second) {
		t.Fatal("cached-source run differs")
	}
	hz := health(t, h)
	if hz.SourceCacheHits != 1 {
		t.Fatalf("sourceCacheHits = %d, want 1", hz.SourceCacheHits)
	}
	// Stateless servers never touch snapshots.
	if hz.SnapshotLoads != 0 || hz.SnapshotWrites != 0 || hz.WarmStarts != 0 {
		t.Fatalf("stateless healthz shows snapshot traffic: %+v", hz)
	}

	// A different body (same facts, extra whitespace) is a cache miss:
	// keying is content-exact.
	if _, ok := s.sources.get(hash + "\x00" + sourceKey(false, []byte(source+" "))); ok {
		t.Fatal("whitespace variant unexpectedly cached")
	}
}

// TestSourceCachePersistsAcrossRestart is the durable-source contract:
// a restarted daemon prefills the decoded-source cache from the state
// directory, so the first post-restart request that misses the run
// cache still skips source decoding — and the hit counter continues
// from its pre-restart value instead of resetting.
func TestSourceCachePersistsAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	source := readTestdata(t, "employment.facts")

	s1 := mustNew(t, quietCfg(t, dir))
	h1 := s1.Handler()
	hash := register(t, h1, readTestdata(t, "employment.tdx"))
	runSolution(t, h1, hash, source) // decodes and persists the source
	// Different run options → run-cache miss, source-cache hit.
	if rec := do(h1, "POST", "/v1/exchanges/"+hash+"/run?norm=naive", "", source); rec.Code != http.StatusOK {
		t.Fatalf("naive run: status %d: %s", rec.Code, rec.Body)
	}
	if hz := health(t, h1); hz.SourceCacheHits != 1 {
		t.Fatalf("pre-restart sourceCacheHits = %d, want 1", hz.SourceCacheHits)
	}
	// Graceful shutdown syncs the durable counters.
	if err := s1.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2 := mustNew(t, quietCfg(t, dir))
	if err := s2.WarmStart(); err != nil {
		t.Fatalf("WarmStart: %v", err)
	}
	h2 := s2.Handler()
	if hz := health(t, h2); hz.SourceCacheHits != 1 {
		t.Fatalf("restart reset sourceCacheHits to %d", hz.SourceCacheHits)
	}
	// Yet another options variant: run-cache miss, but the prefilled
	// source cache answers the decode — the first post-restart request
	// is already a hit.
	if rec := do(h2, "POST", "/v1/exchanges/"+hash+"/run?egd=stepwise", "", source); rec.Code != http.StatusOK {
		t.Fatalf("post-restart run: status %d: %s", rec.Code, rec.Body)
	}
	if hz := health(t, h2); hz.SourceCacheHits != 2 {
		t.Fatalf("post-restart sourceCacheHits = %d, want 2 (prefilled cache missed)", hz.SourceCacheHits)
	}
	// The persisted body survived on disk.
	ents, err := os.ReadDir(filepath.Join(dir, "sources"))
	if err != nil || len(ents) == 0 {
		t.Fatalf("no persisted sources (err=%v, %d files)", err, len(ents))
	}
}

// TestRunCachePruned bounds the disk run cache: distinct sources beyond
// MaxRunSnapshots leave at most MaxRunSnapshots files on disk.
func TestRunCachePruned(t *testing.T) {
	dir := t.TempDir()
	cfg := quietCfg(t, dir)
	cfg.MaxRunSnapshots = 2
	s := mustNew(t, cfg)
	h := s.Handler()
	hash := register(t, h, readTestdata(t, "employment.tdx"))

	for _, src := range []string{
		"E(a, X) @ [1, 2)",
		"E(b, X) @ [1, 2)",
		"E(c, X) @ [1, 2)",
		"E(d, X) @ [1, 2)",
	} {
		runSolution(t, h, hash, src)
	}
	ents, err := os.ReadDir(filepath.Join(dir, "runs"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) > 2 {
		t.Fatalf("run cache holds %d files, bound is 2", len(ents))
	}
}

// TestWarmStartCorruptSnapshot: a damaged session snapshot degrades to
// a cold start for that session — logged, dropped, never fatal.
func TestWarmStartCorruptSnapshot(t *testing.T) {
	dir := t.TempDir()
	mapping := readTestdata(t, "employment.tdx")
	source := readTestdata(t, "employment.facts")

	s1 := mustNew(t, quietCfg(t, dir))
	h1 := s1.Handler()
	hash := register(t, h1, mapping)
	rec := do(h1, "POST", "/v1/exchanges/"+hash+"/sessions", "", source)
	if rec.Code != http.StatusCreated {
		t.Fatalf("session create: status %d", rec.Code)
	}
	var created sessionWire
	if err := json.Unmarshal(rec.Body.Bytes(), &created); err != nil {
		t.Fatal(err)
	}

	// Flip a byte in the session snapshot.
	path := filepath.Join(dir, "sessions", created.SessionID+".snap")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	logged := false
	s2 := mustNew(t, Config{StateDir: dir, Logf: func(string, ...any) { logged = true }})
	if err := s2.WarmStart(); err != nil {
		t.Fatalf("WarmStart on corrupt session: %v", err)
	}
	hz := health(t, s2.Handler())
	if hz.Sessions != 0 || hz.Mappings != 1 {
		t.Fatalf("corrupt session resumed: %+v", hz)
	}
	if !logged {
		t.Fatal("corrupt snapshot dropped silently")
	}
}

// TestRegisterReplayCompiles covers the replay path at the registry
// level: same entry, no Compiles increment.
func TestRegisterReplayCompiles(t *testing.T) {
	reg := NewRegistry(4, nil)
	text := readTestdata(t, "employment.tdx")
	entry, err := reg.RegisterReplay(text)
	if err != nil {
		t.Fatal(err)
	}
	if reg.Compiles() != 0 {
		t.Fatalf("replay counted as a compile: %d", reg.Compiles())
	}
	if got, ok := reg.Get(entry.Hash); !ok || got != entry {
		t.Fatal("replayed entry not resident")
	}
	again, err := reg.RegisterReplay(text)
	if err != nil {
		t.Fatal(err)
	}
	if again != entry {
		t.Fatal("second replay duplicated the entry")
	}
}
