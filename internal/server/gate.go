package server

import (
	"context"
	"errors"
	"sync/atomic"
	"time"
)

// DefaultQueueWait bounds how long an over-limit chase queues for a slot
// before the server answers 429.
const DefaultQueueWait = 2 * time.Second

// errTooBusy is the admission gate's rejection; runStatus maps it to
// 429 Too Many Requests.
var errTooBusy = errors.New("too many concurrent chases (the -max-inflight limit is reached and the -queue-wait budget lapsed); retry later")

// gate is the admission controller on chase work: at most limit chases
// run concurrently, the next arrivals queue up to wait for a freed slot,
// and arrivals still waiting when the budget lapses are rejected. With
// no limit the gate still tracks the gauges, so /healthz and /metrics
// report inflight/queued/rejected on every configuration.
//
// The gate deliberately sits around the chase itself, not the handler:
// cache hits (disk run cache, decoded-source cache) and request
// decoding stay admission-free, because the resource being protected is
// the CPU-and-memory burst of a run, not the connection count.
type gate struct {
	sem  chan struct{} // nil means unlimited (gauges only)
	wait time.Duration

	inflight  atomic.Int64 // chases currently holding a slot
	queued    atomic.Int64 // chases currently waiting for a slot
	rejected  atomic.Int64 // chases turned away with 429 (total)
	highWater atomic.Int64 // maximum concurrent chases ever observed
}

func newGate(limit int, wait time.Duration) *gate {
	g := &gate{wait: wait}
	if g.wait <= 0 {
		g.wait = DefaultQueueWait
	}
	if limit > 0 {
		g.sem = make(chan struct{}, limit)
	}
	return g
}

// acquire claims a chase slot, queueing up to the configured wait. It
// returns errTooBusy when the wait lapses, or the context's error when
// the request dies first; on nil the caller must release.
func (g *gate) acquire(ctx context.Context) error {
	if g.sem == nil {
		g.enter()
		return nil
	}
	select {
	case g.sem <- struct{}{}:
		g.enter()
		return nil
	default:
	}
	g.queued.Add(1)
	defer g.queued.Add(-1)
	timer := time.NewTimer(g.wait)
	defer timer.Stop()
	select {
	case g.sem <- struct{}{}:
		g.enter()
		return nil
	case <-timer.C:
		g.rejected.Add(1)
		return errTooBusy
	case <-ctx.Done():
		return ctx.Err()
	}
}

// release returns a slot claimed by a successful acquire.
func (g *gate) release() {
	g.inflight.Add(-1)
	if g.sem != nil {
		<-g.sem
	}
}

// enter counts a slot holder in, maintaining the high-water mark (the
// burst tests' "exactly the configured concurrency" witness).
func (g *gate) enter() {
	n := g.inflight.Add(1)
	for {
		hw := g.highWater.Load()
		if n <= hw || g.highWater.CompareAndSwap(hw, n) {
			return
		}
	}
}
