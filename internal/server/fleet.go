package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	tdx "repro"
	"repro/internal/fleet"
)

// Fleet mode: with Config.FleetConfig set the server joins a tdxd
// fleet (internal/fleet). The node gossips one KindExchange fact per
// resident registry entry — the exchange fingerprint, its
// registered-at stamp, and the warm-start manifest row (canonical
// mapping text + compile options) as payload — so every node converges
// on who holds what, and any node can reproduce any mapping. Requests
// addressed to a fingerprint this node does not hold are routed over
// the converged view:
//
//  1. serve locally when the registry has the hash (owners stay hot,
//     and a node that compiled a fallback copy keeps serving it);
//  2. otherwise forward to the fleet's candidates for the hash — ring
//     owners first — with the remaining deadline budget propagated and
//     a hop guard so a forwarded request is never forwarded again;
//  3. when every candidate is unreachable (or this request already
//     rode one hop), fall back to compiling locally from the gossiped
//     manifest payload and serve as if the mapping had been registered
//     here.
//
// Sessions stay node-local: a session id names state pinned on the
// node that created it, so /v1/sessions/* is served wherever the
// session lives (the client got that node's answer when it opened the
// session).

// forwardedHeader marks a request that already rode one fleet hop; a
// receiving node serves or falls back, never re-forwards. The value is
// the origin node's ID (observability; loop prevention only needs
// presence).
const forwardedHeader = "X-Tdxd-Forwarded"

// fleetState bundles the server's fleet-mode machinery.
type fleetState struct {
	node   *fleet.Node
	client *http.Client

	// optsByHash remembers the compile options of each resident entry
	// (keyed by fingerprint) so gossiped manifest payloads reproduce the
	// exchange exactly. Pruned to the registry's live hashes on every
	// facts refresh.
	optsByHash sync.Map // string → requestOptions
}

// newFleet wires a fleet node to the server: the node's load hint is
// the admission gate's in-flight count, and its exchange facts mirror
// the registry.
func (s *Server) newFleet(cfg fleet.Config) error {
	if cfg.Load == nil {
		cfg.Load = func() int64 { return s.gate.inflight.Load() }
	}
	if cfg.Logf == nil {
		cfg.Logf = s.logf
	}
	// The state must exist before fleet.New: the node seeds its view by
	// calling the facts callback, which reads it.
	s.fleet = &fleetState{
		client: &http.Client{
			// Per-request deadlines ride the forwarded context; the
			// transport just needs pooling.
			Transport: &http.Transport{MaxIdleConnsPerHost: 16},
		},
	}
	node, err := fleet.New(cfg, s.fleetFacts)
	if err != nil {
		s.fleet = nil
		return err
	}
	s.fleet.node = node
	return nil
}

// Fleet returns the fleet node (nil outside fleet mode). The caller —
// cmd/tdxd, tests — owns Start; Close rides Server.Close.
func (s *Server) Fleet() *fleet.Node {
	if s.fleet == nil {
		return nil
	}
	return s.fleet.node
}

// rememberOptions records the compile options behind a fingerprint for
// the gossiped manifest payload.
func (s *Server) rememberOptions(hash string, opts requestOptions) {
	if s.fleet != nil {
		s.fleet.optsByHash.Store(hash, opts)
	}
}

// fleetFacts is the fleet node's local-facts callback: one KindExchange
// fact per resident registry entry, stamped with its registration time
// and carrying the manifest row that reproduces it.
func (s *Server) fleetFacts(now time.Time) []fleet.Fact {
	entries := s.reg.Entries()
	live := make(map[string]bool, len(entries))
	facts := make([]fleet.Fact, 0, len(entries))
	for _, e := range entries {
		live[e.Hash] = true
		var opts requestOptions
		if v, ok := s.fleet.optsByHash.Load(e.Hash); ok {
			opts = v.(requestOptions)
		}
		payload, err := json.Marshal(manifestMapping{Hash: e.Hash, Mapping: e.Exchange.Canonical(), Options: opts})
		if err != nil {
			continue
		}
		facts = append(facts, fleet.Fact{
			Kind:       fleet.KindExchange,
			Hash:       e.Hash,
			Registered: e.Registered.UnixNano(),
			Payload:    payload,
		})
	}
	// An evicted entry must stop being advertised and remembered.
	s.fleet.optsByHash.Range(func(k, _ any) bool {
		if !live[k.(string)] {
			s.fleet.optsByHash.Delete(k)
		}
		return true
	})
	return facts
}

// resolveOrForward resolves the {hash} path segment like resolve, but
// in fleet mode a miss consults the fleet: the request is forwarded to
// a candidate node (response already written; nil, false), or the
// mapping is compiled locally from the gossiped manifest and the
// returned entry serves the request here.
func (s *Server) resolveOrForward(w http.ResponseWriter, r *http.Request) (*Entry, bool) {
	hash := r.PathValue("hash")
	if entry, ok := s.reg.Get(hash); ok {
		return entry, true
	}
	if s.fleet == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("no exchange with hash %q is registered", hash))
		return nil, false
	}
	// One hop only: a forwarded request that still misses serves via
	// fallback or fails, never bounces around the ring.
	if r.Header.Get(forwardedHeader) == "" {
		if handled := s.forwardExchange(w, r, hash); handled {
			return nil, false
		}
	}
	if entry, ok := s.fleetFallbackCompile(hash); ok {
		return entry, true
	}
	writeError(w, http.StatusNotFound, fmt.Errorf("no exchange with hash %q is registered anywhere in the fleet", hash))
	return nil, false
}

// forwardExchange proxies an exchange request to the fleet's candidate
// nodes for hash, most-preferred (ring owners) first. It reports
// whether a response was written; transport failures fall through to
// the next candidate and finally to the caller's fallback. A 404 from
// a candidate also falls through: its view may lag ours (it evicted,
// or never faulted the exchange in), and another candidate — or the
// local fallback — can still serve.
func (s *Server) forwardExchange(w http.ResponseWriter, r *http.Request, hash string) bool {
	candidates := s.fleet.node.Route(hash)
	if len(candidates) == 0 {
		return false
	}
	budget, err := s.runBudget(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return true
	}
	ctx, cancel := context.WithTimeout(r.Context(), budget)
	defer cancel()
	// The body must be buffered: a transport failure after the first
	// candidate consumed part of it would otherwise kill the retry.
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		writeError(w, bodyErrStatus(err), fmt.Errorf("source body: %w", err))
		return true
	}
	// If every candidate falls through, the caller serves this request
	// locally (fallback compile) — it must find the body it sent, not a
	// drained reader.
	r.Body = io.NopCloser(bytes.NewReader(body))
	deadline, _ := ctx.Deadline()
	for _, m := range candidates {
		// Propagate the remaining deadline budget: the downstream node
		// must give up before we do, so the client gets its 504 from one
		// place with the whole pipeline bounded.
		remaining := time.Until(deadline)
		if remaining <= 0 {
			writeError(w, http.StatusGatewayTimeout, context.DeadlineExceeded)
			return true
		}
		q := r.URL.Query()
		q.Set("timeout", remaining.Round(time.Millisecond).String())
		url := "http://" + m.Addr + r.URL.Path + "?" + q.Encode()
		req, err := http.NewRequestWithContext(ctx, r.Method, url, bytes.NewReader(body))
		if err != nil {
			continue
		}
		if ct := r.Header.Get("Content-Type"); ct != "" {
			req.Header.Set("Content-Type", ct)
		}
		req.Header.Set(forwardedHeader, s.fleet.node.ID())
		resp, err := s.fleet.client.Do(req)
		if err != nil {
			if ctx.Err() != nil {
				writeError(w, runStatus(ctx.Err()), fmt.Errorf("fleet forward to %s: %w", m.ID, ctx.Err()))
				return true
			}
			s.logf("fleet: forward %s to %s (%s): %v", hash[:min(12, len(hash))], m.ID, m.Addr, err)
			continue
		}
		if resp.StatusCode == http.StatusNotFound {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			continue
		}
		s.forwards.Add(1)
		copyHeader(w.Header(), resp.Header)
		w.WriteHeader(resp.StatusCode)
		if _, err := io.Copy(w, resp.Body); err != nil {
			s.logf("fleet: relay from %s truncated: %v", m.ID, err)
		}
		resp.Body.Close()
		return true
	}
	return false
}

// fleetFallbackCompile compiles hash's mapping from the gossiped
// manifest payload — the last resort when no candidate answered, and
// the fault-in path on a node that received a forwarded request for an
// exchange it does not hold yet. The replay path keeps the compile out
// of the request-driven Compiles counter; FleetCompiles counts it
// instead.
func (s *Server) fleetFallbackCompile(hash string) (*Entry, bool) {
	payload, ok := s.fleet.node.ManifestPayload(hash)
	if !ok {
		return nil, false
	}
	var row manifestMapping
	if err := json.Unmarshal(payload, &row); err != nil {
		s.logf("fleet: manifest payload for %.12s: %v", hash, err)
		return nil, false
	}
	opts, err := row.Options.engineOptions()
	if err != nil {
		s.logf("fleet: manifest payload for %.12s: bad options: %v", hash, err)
		return nil, false
	}
	opts = append(opts, tdx.WithRunInterner())
	entry, err := s.reg.RegisterReplay(row.Mapping, opts...)
	if err != nil {
		s.logf("fleet: mapping %.12s does not compile here: %v", hash, err)
		return nil, false
	}
	if entry.Hash != hash {
		s.logf("fleet: manifest payload for %.12s compiled to %.12s; not serving it", hash, entry.Hash)
		return nil, false
	}
	s.rememberOptions(entry.Hash, row.Options)
	s.fleetCompiles.Add(1)
	if s.state != nil {
		if err := s.state.rememberMapping(entry.Hash, entry.Exchange.Canonical(), row.Options, s.reg.Capacity()); err != nil {
			s.logf("state: persist fleet mapping %.12s: %v", entry.Hash, err)
		}
	}
	// Spread the news: this node now holds the exchange.
	s.fleet.node.Poke()
	return entry, true
}

// copyHeader relays a forwarded response's headers, dropping the
// hop-by-hop ones the relay re-derives.
func copyHeader(dst, src http.Header) {
	for k, vs := range src {
		switch strings.ToLower(k) {
		case "connection", "transfer-encoding", "keep-alive":
			continue
		}
		for _, v := range vs {
			dst.Add(k, v)
		}
	}
}

// fleetHealth is the /healthz fleet block.
type fleetHealth struct {
	NodeID         string       `json:"nodeId"`
	Peers          int          `json:"peers"`
	Members        []memberWire `json:"members"`
	Forwards       int64        `json:"forwards"`
	FleetCompiles  int64        `json:"fleetCompiles"`
	GossipSent     int64        `json:"gossipSent"`
	GossipReceived int64        `json:"gossipReceived"`
	FactsExpired   int64        `json:"factsExpired"`
}

// memberWire is one live fleet member on /healthz.
type memberWire struct {
	ID   string `json:"id"`
	Addr string `json:"addr"`
	Load int64  `json:"load"`
}

// fleetHealthBlock builds the /healthz fleet block (nil outside fleet
// mode, so single-node daemons keep their exact healthz shape).
func (s *Server) fleetHealthBlock() *fleetHealth {
	if s.fleet == nil {
		return nil
	}
	n := s.fleet.node
	members := n.Members()
	wire := make([]memberWire, len(members))
	for i, m := range members {
		wire[i] = memberWire{ID: m.ID, Addr: m.Addr, Load: m.Load}
	}
	return &fleetHealth{
		NodeID:         n.ID(),
		Peers:          n.Peers(),
		Members:        wire,
		Forwards:       s.forwards.Load(),
		FleetCompiles:  s.fleetCompiles.Load(),
		GossipSent:     n.GossipSent(),
		GossipReceived: n.GossipReceived(),
		FactsExpired:   n.FactsExpired(),
	}
}
