package server

import (
	"bytes"
	"fmt"
	"net/http"
	"time"
)

// handleMetrics serves the daemon's counters in the Prometheus text
// exposition format, hand-written — the format is three line shapes
// (# HELP, # TYPE, sample), not worth a dependency. The counters are
// the same ones /healthz reports as JSON, under stable tdxd_* names, so
// a scrape config and a shell pipeline read the same truth.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var buf bytes.Buffer
	m := func(name, typ, help string, v int64) {
		fmt.Fprintf(&buf, "# HELP %s %s\n# TYPE %s %s\n%s %d\n", name, help, name, typ, name, v)
	}
	m("tdxd_uptime_seconds", "gauge", "Seconds since the daemon started.",
		int64(time.Since(s.start).Seconds()))
	m("tdxd_requests_total", "counter", "HTTP requests served, all endpoints.",
		s.requests.Load())
	m("tdxd_errors_5xx_total", "counter", "Responses with a 5xx status.",
		s.errors5xx.Load())
	m("tdxd_mappings", "gauge", "Compiled exchanges resident in the registry.",
		int64(s.reg.Len()))
	m("tdxd_compiles_total", "counter", "Request-driven mapping compilations (warm-start replays excluded).",
		s.reg.Compiles())
	m("tdxd_mapping_evictions_total", "counter", "Registry entries evicted by the LRU bound.",
		s.reg.Evicted())
	m("tdxd_sessions", "gauge", "Live incremental-exchange sessions.",
		int64(s.sessions.Len()))
	m("tdxd_session_evictions_total", "counter", "Sessions evicted by the LRU bound.",
		s.sessions.Evicted())
	m("tdxd_inflight_chases", "gauge", "Chases currently holding an admission slot.",
		s.gate.inflight.Load())
	m("tdxd_inflight_chases_high_water", "gauge", "Maximum concurrent chases ever observed.",
		s.gate.highWater.Load())
	m("tdxd_queued_chases", "gauge", "Chases currently queued for an admission slot.",
		s.gate.queued.Load())
	m("tdxd_rejected_chases_total", "counter", "Chases rejected with 429 after outwaiting the queue budget.",
		s.gate.rejected.Load())
	m("tdxd_warm_starts_total", "counter", "Manifest entries replayed at boot.",
		s.warmStarts.Load())
	m("tdxd_snapshot_loads_total", "counter", "Solution snapshots loaded (run-cache hits, session resumes).",
		s.snapshotLoads.Load())
	m("tdxd_snapshot_writes_total", "counter", "Solution snapshots written (runs, sessions).",
		s.snapshotWrites.Load())
	m("tdxd_source_cache_hits_total", "counter", "Decoded request bodies served from the in-memory source cache.",
		s.sourceCacheHits.Load())
	// Fleet counters are always exposed (zero on a standalone daemon) so
	// one scrape config covers every deployment shape.
	var peers, gossipSent, gossipReceived, factsExpired int64
	if s.fleet != nil {
		n := s.fleet.node
		peers = int64(n.Peers())
		gossipSent, gossipReceived, factsExpired = n.GossipSent(), n.GossipReceived(), n.FactsExpired()
	}
	m("tdxd_peers", "gauge", "Live fleet members known via gossip, excluding this node.",
		peers)
	m("tdxd_forwards_total", "counter", "Exchange requests relayed to a fleet peer.",
		s.forwards.Load())
	m("tdxd_fleet_compiles_total", "counter", "Fallback compiles from gossiped manifest payloads.",
		s.fleetCompiles.Load())
	m("tdxd_gossip_sent_total", "counter", "Gossip datagrams pushed to peers.",
		gossipSent)
	m("tdxd_gossip_received_total", "counter", "Gossip datagrams accepted and merged.",
		gossipReceived)
	m("tdxd_facts_expired_total", "counter", "Gossiped facts dropped by TTL expiry.",
		factsExpired)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Header().Set("Content-Length", fmt.Sprint(buf.Len()))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(buf.Bytes())
}
