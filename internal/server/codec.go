package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	tdx "repro"
	"repro/internal/chase"
)

// The wire types of the tdxd HTTP API. Field names are lowerCamel and
// stable: they are a compatibility surface, like chase.Stats's JSON
// form. Responses are written compact (one line), so shell pipelines can
// grep and sed them; the embedded solution document keeps the jsonio
// rendering.

// registerRequest is the JSON body of POST /v1/mappings. A non-JSON
// body is treated as the raw mapping text with default options instead.
type registerRequest struct {
	// Mapping is the TDX mapping text.
	Mapping string `json:"mapping"`
	// Options are the compile-time defaults baked into the registered
	// exchange.
	Options requestOptions `json:"options"`
}

// requestOptions maps request-level option names onto the engine's
// functional options. All fields are optional; zero values mean the
// engine defaults.
type requestOptions struct {
	Norm     string `json:"norm,omitempty"`     // "smart" | "naive"
	Egd      string `json:"egd,omitempty"`      // "batch" | "stepwise"
	Coalesce bool   `json:"coalesce,omitempty"` // coalesce solutions
}

// engineOptions translates the named options, rejecting unknown names.
func (o requestOptions) engineOptions() ([]tdx.Option, error) {
	norm, err := tdx.ParseNorm(o.Norm)
	if err != nil {
		return nil, err
	}
	egd, err := tdx.ParseEgdStrategy(o.Egd)
	if err != nil {
		return nil, err
	}
	return []tdx.Option{tdx.WithNorm(norm), tdx.WithEgdStrategy(egd), tdx.WithCoalesce(o.Coalesce)}, nil
}

// infoJSON is the wire form of tdx.Info.
type infoJSON struct {
	SourceRelations int  `json:"sourceRelations"`
	TargetRelations int  `json:"targetRelations"`
	TGDs            int  `json:"tgds"`
	EGDs            int  `json:"egds"`
	Queries         int  `json:"queries"`
	Temporal        bool `json:"temporal"`
}

func infoWire(i tdx.Info) infoJSON {
	return infoJSON{
		SourceRelations: i.SourceRelations,
		TargetRelations: i.TargetRelations,
		TGDs:            i.TGDs,
		EGDs:            i.EGDs,
		Queries:         i.Queries,
		Temporal:        i.Temporal,
	}
}

// registerResponse answers POST /v1/mappings.
type registerResponse struct {
	Hash   string   `json:"hash"`
	Cached bool     `json:"cached"` // an already-registered entry served the call
	Info   infoJSON `json:"info"`
}

// mappingSummary is one row of GET /v1/mappings.
type mappingSummary struct {
	Hash         string   `json:"hash"`
	Info         infoJSON `json:"info"`
	RegisteredAt string   `json:"registeredAt"` // RFC 3339
}

// listResponse answers GET /v1/mappings, most recently used first.
type listResponse struct {
	Mappings []mappingSummary `json:"mappings"`
	Capacity int              `json:"capacity"`
}

// runResponse is the head of POST /v1/exchanges/{hash}/run: the small
// fields, marshaled whole; the solution document — byte-identical (after
// JSON whitespace normalization) to tdx.Solution.JSON on a direct run —
// and the optional ?query= answers document follow as framed tail
// fields, streamed straight off the frozen columnar stores (see
// stream.go). Stats is the run's chase.Stats in its canonical encoding.
type runResponse struct {
	Hash      string      `json:"hash"`
	Stats     chase.Stats `json:"stats"`
	ElapsedMs float64     `json:"elapsedMs"`
}

// answerResponse is the head of POST /v1/exchanges/{hash}/answer: the
// certain answers of the query follow as a framed tail field, plus the
// stats of the run that produced the intermediate solution.
type answerResponse struct {
	Hash      string      `json:"hash"`
	Query     string      `json:"query"`
	Stats     chase.Stats `json:"stats"`
	ElapsedMs float64     `json:"elapsedMs"`
}

// snapshotFact is one fact of an abstract snapshot: atemporal, over
// constants and per-snapshot labeled nulls.
type snapshotFact struct {
	Rel  string   `json:"rel"`
	Args []string `json:"args"`
}

// snapshotResponse is the head of POST /v1/exchanges/{hash}/snapshot:
// the abstract snapshot db_at of the solution follows as framed tail
// fields — the facts array in deterministic order, then the paper's
// {f1, f2, ...} rendering.
type snapshotResponse struct {
	Hash      string      `json:"hash"`
	At        string      `json:"at"`
	Stats     chase.Stats `json:"stats"`
	ElapsedMs float64     `json:"elapsedMs"`
}

// sessionResponse is the head of POST /v1/exchanges/{hash}/sessions: the
// id of the freshly opened incremental session; its base solution — the
// same document /run would return for the same body — follows as a
// framed tail field.
type sessionResponse struct {
	SessionID string      `json:"sessionId"`
	Hash      string      `json:"hash"`
	Stats     chase.Stats `json:"stats"`
	ElapsedMs float64     `json:"elapsedMs"`
}

// factsResponse is the head of POST /v1/sessions/{id}/facts: the stats
// of the delta run (deltaFacts/deltaFires/fallbackFullChase report what
// the incremental chase did). The solution diff against the session's
// previous solution follows as a framed "diff" tail — fact counts first,
// then the added and removed TDX JSON instance documents, so clients
// (and smoke tests) can check emptiness without parsing the documents —
// and ?solution=true appends the full updated document as a "solution"
// tail.
type factsResponse struct {
	SessionID string      `json:"sessionId"`
	Hash      string      `json:"hash"`
	Stats     chase.Stats `json:"stats"`
	ElapsedMs float64     `json:"elapsedMs"`
	Deltas    int64       `json:"deltas"`
}

// healthResponse answers GET /healthz. Compiles counts request-driven
// compilations only; warm-start replays register mappings without
// touching it, so compiles == 0 after a warm boot is the signal that
// clients paid nothing for the restart. WarmStarts counts manifest
// entries (mappings + sessions) replayed at boot; SnapshotLoads and
// SnapshotWrites count solution snapshots read (run-cache hits, session
// resumes) and written (runs, sessions); SourceCacheHits counts decoded
// request bodies served from the in-memory source cache.
//
// The admission-control gauges mirror /metrics: Inflight and Queued are
// the chases currently running and currently waiting for a -max-inflight
// slot, InflightHighWater the maximum concurrency ever observed, and
// Rejected the running count of chases answered 429 because the
// -queue-wait budget lapsed.
type healthResponse struct {
	Status            string `json:"status"`
	UptimeSeconds     int64  `json:"uptimeSeconds"`
	Mappings          int    `json:"mappings"`
	Compiles          int64  `json:"compiles"`
	Evictions         int64  `json:"evictions"`
	Sessions          int    `json:"sessions"`
	SessionEvictions  int64  `json:"sessionEvictions"`
	WarmStarts        int64  `json:"warmStarts"`
	SnapshotLoads     int64  `json:"snapshotLoads"`
	SnapshotWrites    int64  `json:"snapshotWrites"`
	SourceCacheHits   int64  `json:"sourceCacheHits"`
	Inflight          int64  `json:"inflight"`
	InflightHighWater int64  `json:"inflightHighWater"`
	Queued            int64  `json:"queued"`
	Rejected          int64  `json:"rejected"`
	// Fleet is the fleet-mode membership and relay block: node identity,
	// live members, and the forward/gossip/expiry counters. Omitted on a
	// standalone daemon, so the single-node healthz shape is unchanged.
	Fleet *fleetHealth `json:"fleet,omitempty"`
}

// errorResponse is the body of every non-2xx response.
type errorResponse struct {
	Error  string `json:"error"`
	Status int    `json:"status"`
}

// statusClientClosedRequest is the de-facto standard (nginx) status for
// "the client canceled before the response": no RFC number exists for
// it, and 504 would wrongly blame the server's budget.
const statusClientClosedRequest = 499

// runStatus maps an engine error to its HTTP status: an admission-gate
// rejection asks the client to retry later (429), an exhausted
// per-request budget is a gateway timeout, a client disconnect is the
// client's cancellation, a chase failure (no solution / no witness) is a
// semantically invalid input rather than a server fault, and anything
// else is a 500.
func runStatus(err error) int {
	switch {
	case errors.Is(err, errTooBusy):
		return http.StatusTooManyRequests
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return statusClientClosedRequest
	case errors.Is(err, tdx.ErrNoSolution), errors.Is(err, tdx.ErrNoWitness):
		return http.StatusUnprocessableEntity
	default:
		return http.StatusInternalServerError
	}
}

// writeJSON writes one compact JSON document with the given status.
func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// Encode appends a newline — exactly one document per line. A write
	// error here means the client went away mid-response; the status
	// line is gone, so there is nothing left to report to them.
	_ = json.NewEncoder(w).Encode(body)
}

// writeError writes the uniform error body.
func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorResponse{Error: err.Error(), Status: status})
}

// elapsedMs converts a duration to the wire's float milliseconds.
func elapsedMs(d time.Duration) float64 {
	return float64(d) / float64(time.Millisecond)
}

// bodyErrStatus maps a request-body read/decode failure: a body over
// the MaxBodyBytes bound is 413 (the client must shrink it), a read
// that outlived the request budget is 504 (the connection read
// deadline and the ctx wrapper both surface deadline errors), a client
// disconnect is 499, and anything else is the client's malformed
// content, 400.
func bodyErrStatus(err error) int {
	var tooLarge *http.MaxBytesError
	switch {
	case errors.As(err, &tooLarge):
		return http.StatusRequestEntityTooLarge
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, os.ErrDeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return statusClientClosedRequest
	default:
		return http.StatusBadRequest
	}
}

// badParam builds the 400 error for an unparsable query parameter.
func badParam(name string, err error) error {
	return fmt.Errorf("query parameter %s: %w", name, err)
}

// newStrictDecoder decodes a JSON request envelope, rejecting unknown
// fields so a typoed option name fails loudly instead of silently
// meaning the default.
func newStrictDecoder(r io.Reader) *json.Decoder {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	return dec
}
