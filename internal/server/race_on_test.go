//go:build race

package server

// raceEnabled mirrors the -race build tag, so allocation-count tests can
// skip under the race detector's instrumentation.
const raceEnabled = true
