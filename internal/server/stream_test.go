package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	tdx "repro"
	"repro/internal/fact"
	"repro/internal/instance"
	"repro/internal/interval"
	"repro/internal/schema"
	"repro/internal/value"
)

// TestWriteFramedIdentity is the framing contract: the buffered path
// (Content-Length) and the streaming path (chunked) of writeFramed
// produce byte-identical documents for the same head and tails.
func TestWriteFramedIdentity(t *testing.T) {
	s := mustNew(t, Config{})
	ex := tdx.MustCompile(readTestdata(t, "employment.tdx"), tdx.WithRunInterner())
	src, err := ex.ParseSource(readTestdata(t, "employment.facts"))
	if err != nil {
		t.Fatal(err)
	}
	sol, err := ex.Run(t.Context(), src)
	if err != nil {
		t.Fatal(err)
	}
	ans, err := ex.Query(t.Context(), sol, "q")
	if err != nil {
		t.Fatal(err)
	}
	head := runResponse{Hash: "h", Stats: sol.Stats(), ElapsedMs: 1.5}
	tails := []tailDoc{
		{name: "solution", stream: instanceDoc(&sol.Instance)},
		{name: "answers", stream: instanceDoc(ans)},
	}

	buffered := httptest.NewRecorder()
	s.writeFramed(buffered, http.StatusOK, head, tails, false)
	streamed := httptest.NewRecorder()
	s.writeFramed(streamed, http.StatusOK, head, tails, true)

	if !bytes.Equal(buffered.Body.Bytes(), streamed.Body.Bytes()) {
		t.Fatalf("buffered and streamed framings differ:\n%s\nvs\n%s", buffered.Body, streamed.Body)
	}
	if cl := buffered.Header().Get("Content-Length"); cl != fmt.Sprint(buffered.Body.Len()) {
		t.Fatalf("buffered Content-Length %q, body %d bytes", cl, buffered.Body.Len())
	}
	if cl := streamed.Header().Get("Content-Length"); cl != "" {
		t.Fatalf("streamed response declares Content-Length %q; it must chunk", cl)
	}
	// The document is one line of valid JSON ending in \n, like every
	// response the server writes.
	body := buffered.Body.Bytes()
	if body[len(body)-1] != '\n' {
		t.Fatal("framed document does not end in newline")
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("framed document is not valid JSON: %v\n%s", err, body)
	}
	for _, key := range []string{"hash", "stats", "elapsedMs", "solution", "answers"} {
		if _, ok := doc[key]; !ok {
			t.Fatalf("framed document misses %q: %s", key, body)
		}
	}
}

// TestStreamedEndpointsMatchBuffered drives every solution-bearing
// endpoint through an always-streaming server and an always-buffering
// one, asserting the documents agree on all content fields (elapsedMs
// and session ids are wall-clock/random and excluded).
func TestStreamedEndpointsMatchBuffered(t *testing.T) {
	streaming := mustNew(t, Config{StreamThreshold: -1})
	buffering := mustNew(t, Config{StreamThreshold: 1 << 30})
	hs, hb := streaming.Handler(), buffering.Handler()
	mapping := readTestdata(t, "employment.tdx")
	facts := readTestdata(t, "employment.facts")
	hash := register(t, hs, mapping)
	if got := register(t, hb, mapping); got != hash {
		t.Fatalf("hash mismatch across servers: %s vs %s", got, hash)
	}

	compare := func(target, body string, wantStatus int, skip ...string) {
		t.Helper()
		skipKeys := map[string]bool{"elapsedMs": true, "sessionId": true}
		for _, k := range skip {
			skipKeys[k] = true
		}
		rs := do(hs, "POST", target, "", body)
		rb := do(hb, "POST", target, "", body)
		if rs.Code != wantStatus || rb.Code != wantStatus {
			t.Fatalf("%s: status %d (streamed) / %d (buffered), want %d\n%s\n%s",
				target, rs.Code, rb.Code, wantStatus, rs.Body, rb.Body)
		}
		if cl := rs.Header().Get("Content-Length"); cl != "" {
			t.Fatalf("%s: streaming server set Content-Length %q", target, cl)
		}
		if cl := rb.Header().Get("Content-Length"); cl == "" {
			t.Fatalf("%s: buffering server set no Content-Length", target)
		}
		var ds, db map[string]json.RawMessage
		if err := json.Unmarshal(rs.Body.Bytes(), &ds); err != nil {
			t.Fatalf("%s: streamed body: %v\n%s", target, err, rs.Body)
		}
		if err := json.Unmarshal(rb.Body.Bytes(), &db); err != nil {
			t.Fatalf("%s: buffered body: %v\n%s", target, err, rb.Body)
		}
		if len(ds) != len(db) {
			t.Fatalf("%s: key sets differ:\n%s\nvs\n%s", target, rs.Body, rb.Body)
		}
		for key, sv := range ds {
			if skipKeys[key] {
				continue
			}
			if !bytes.Equal(sv, db[key]) {
				t.Fatalf("%s: field %q differs:\n%s\nvs\n%s", target, key, sv, db[key])
			}
		}
	}

	compare("/v1/exchanges/"+hash+"/run", facts, http.StatusOK)
	compare("/v1/exchanges/"+hash+"/run?query=q", facts, http.StatusOK)
	compare("/v1/exchanges/"+hash+"/answer?query=q", facts, http.StatusOK)
	compare("/v1/exchanges/"+hash+"/snapshot?at=2013", facts, http.StatusOK)
	compare("/v1/exchanges/"+hash+"/sessions", facts, http.StatusCreated)

	// Session deltas: ids differ per server, so open one on each and
	// compare the delta documents.
	openOn := func(h http.Handler) string {
		t.Helper()
		rec := do(h, "POST", "/v1/exchanges/"+hash+"/sessions", "", facts)
		if rec.Code != http.StatusCreated {
			t.Fatalf("open session: status %d: %s", rec.Code, rec.Body)
		}
		var resp sessionWire
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		return resp.SessionID
	}
	ids, idb := openOn(hs), openOn(hb)
	delta := "E(Carol, IBM) @ [2015, 2019)\nS(Carol, 21k) @ [2015, 2019)"
	rs := do(hs, "POST", "/v1/sessions/"+ids+"/facts?solution=true", "", delta)
	rb := do(hb, "POST", "/v1/sessions/"+idb+"/facts?solution=true", "", delta)
	if rs.Code != http.StatusOK || rb.Code != http.StatusOK {
		t.Fatalf("delta: status %d / %d\n%s\n%s", rs.Code, rb.Code, rs.Body, rb.Body)
	}
	var fs, fb factsWire
	if err := json.Unmarshal(rs.Body.Bytes(), &fs); err != nil {
		t.Fatalf("streamed delta body: %v\n%s", err, rs.Body)
	}
	if err := json.Unmarshal(rb.Body.Bytes(), &fb); err != nil {
		t.Fatalf("buffered delta body: %v\n%s", err, rb.Body)
	}
	if fs.Diff.AddedFacts == 0 || fs.Diff.AddedFacts != fb.Diff.AddedFacts ||
		!bytes.Equal(fs.Diff.Added, fb.Diff.Added) || !bytes.Equal(fs.Diff.Removed, fb.Diff.Removed) {
		t.Fatalf("delta diffs differ:\n%s\nvs\n%s", rs.Body, rb.Body)
	}
	if !bytes.Equal(fs.Solution, fb.Solution) || len(fs.Solution) == 0 {
		t.Fatalf("delta solutions differ:\n%s\nvs\n%s", fs.Solution, fb.Solution)
	}
}

// TestAdmissionGateConcurrency is the burst criterion: 16 concurrent
// requests against -max-inflight 2 run exactly two chases at a time.
// The onChase seam forms rendezvous pairs — each admitted chase blocks
// until a second one is admitted alongside it — so the test deadlocks
// (and times out) if the gate ever admits fewer than two concurrently,
// and the high-water mark convicts it if it ever admits more.
func TestAdmissionGateConcurrency(t *testing.T) {
	s := mustNew(t, Config{MaxInflight: 2, QueueWait: time.Minute})
	rendezvous := make(chan chan struct{})
	s.onChase = func() {
		me := make(chan struct{})
		select {
		case rendezvous <- me: // first of a pair: wait to be released
			<-me
		case other := <-rendezvous: // second: release both
			close(other)
		}
	}
	h := s.Handler()
	hash := register(t, h, readTestdata(t, "employment.tdx"))
	facts := readTestdata(t, "employment.facts")

	const burst = 16
	var wg sync.WaitGroup
	codes := make([]int, burst)
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			codes[i] = do(h, "POST", "/v1/exchanges/"+hash+"/run", "", facts).Code
		}(i)
	}
	wg.Wait()
	for i, code := range codes {
		if code != http.StatusOK {
			t.Fatalf("burst request %d: status %d", i, code)
		}
	}
	if hw := s.gate.highWater.Load(); hw != 2 {
		t.Fatalf("high-water concurrency = %d, want exactly 2", hw)
	}
	if inflight := s.gate.inflight.Load(); inflight != 0 {
		t.Fatalf("inflight = %d after the burst drained", inflight)
	}
	if rejected := s.gate.rejected.Load(); rejected != 0 {
		t.Fatalf("rejected = %d; the queue wait was a minute", rejected)
	}
}

// TestAdmissionGateRejects is the overload criterion: with one slot
// held and a tiny queue budget, the next chase queues (visible on
// /healthz) and then gets 429; the slot holder still finishes 200.
func TestAdmissionGateRejects(t *testing.T) {
	s := mustNew(t, Config{MaxInflight: 1, QueueWait: 30 * time.Millisecond})
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	s.onChase = func() {
		entered <- struct{}{}
		<-release
	}
	h := s.Handler()
	hash := register(t, h, readTestdata(t, "employment.tdx"))
	facts := readTestdata(t, "employment.facts")

	holder := make(chan int, 1)
	go func() {
		holder <- do(h, "POST", "/v1/exchanges/"+hash+"/run", "", facts).Code
	}()
	<-entered // the slot is now held inside the chase

	health := func() healthResponse {
		t.Helper()
		rec := do(h, "GET", "/healthz", "", "")
		var hr healthResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &hr); err != nil {
			t.Fatalf("healthz: %v", err)
		}
		return hr
	}
	if hr := health(); hr.Inflight != 1 {
		t.Fatalf("healthz inflight = %d with a chase blocked in flight", hr.Inflight)
	}

	// The second chase outwaits the 30ms budget and is turned away.
	rec := do(h, "POST", "/v1/exchanges/"+hash+"/run", "", facts)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("over-limit chase: status %d, want 429: %s", rec.Code, rec.Body)
	}
	var e errorResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil {
		t.Fatal(err)
	}
	if e.Status != http.StatusTooManyRequests || !strings.Contains(e.Error, "retry") {
		t.Fatalf("429 body: %+v", e)
	}

	close(release)
	if code := <-holder; code != http.StatusOK {
		t.Fatalf("slot holder: status %d", code)
	}
	hr := health()
	if hr.Inflight != 0 || hr.Queued != 0 || hr.Rejected != 1 || hr.InflightHighWater != 1 {
		t.Fatalf("healthz gauges after overload: %+v", hr)
	}
}

// TestMetricsEndpoint: /metrics speaks the Prometheus text format —
// every line is a # HELP/# TYPE comment or a `name value` sample — and
// carries the compile counter the CI smoke greps for.
func TestMetricsEndpoint(t *testing.T) {
	s := mustNew(t, Config{})
	h := s.Handler()
	hash := register(t, h, readTestdata(t, "employment.tdx"))
	if rec := do(h, "POST", "/v1/exchanges/"+hash+"/run", "", readTestdata(t, "employment.facts")); rec.Code != http.StatusOK {
		t.Fatalf("run: status %d", rec.Code)
	}

	rec := do(h, "GET", "/metrics", "", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics: status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics content type: %q", ct)
	}
	samples := map[string]string{}
	sc := bufio.NewScanner(bytes.NewReader(rec.Body.Bytes()))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		name, val, ok := strings.Cut(line, " ")
		if !ok || name == "" || val == "" {
			t.Fatalf("metrics line is neither comment nor sample: %q", line)
		}
		samples[name] = val
	}
	for name, want := range map[string]string{
		"tdxd_compiles_total":        "1",
		"tdxd_mappings":              "1",
		"tdxd_inflight_chases":       "0",
		"tdxd_rejected_chases_total": "0",
	} {
		if got := samples[name]; got != want {
			t.Fatalf("metric %s = %q, want %q\n%s", name, got, want, rec.Body)
		}
	}
	// Requests served so far: register + run (the /metrics request itself
	// is counted after its response is written).
	if got := samples["tdxd_requests_total"]; got != "2" {
		t.Fatalf("tdxd_requests_total = %q, want 2", got)
	}
}

// TestAccessLog: with AccessLogf set, every request produces one
// structured line naming method, path, status, and byte count.
func TestAccessLog(t *testing.T) {
	var mu sync.Mutex
	var lines []string
	s := mustNew(t, Config{AccessLogf: func(format string, args ...any) {
		mu.Lock()
		lines = append(lines, fmt.Sprintf(format, args...))
		mu.Unlock()
	}})
	h := s.Handler()
	do(h, "GET", "/healthz", "", "")
	do(h, "POST", "/v1/mappings", "", "not a mapping")
	mu.Lock()
	defer mu.Unlock()
	if len(lines) != 2 {
		t.Fatalf("access log lines = %d, want 2: %q", len(lines), lines)
	}
	if !strings.Contains(lines[0], "method=GET") || !strings.Contains(lines[0], "path=/healthz") || !strings.Contains(lines[0], "status=200") {
		t.Fatalf("healthz access line: %q", lines[0])
	}
	if !strings.Contains(lines[1], "status=400") || !strings.Contains(lines[1], "bytes=") {
		t.Fatalf("register access line: %q", lines[1])
	}
	if got := s.requests.Load(); got != 2 {
		t.Fatalf("request counter = %d, want 2", got)
	}
}

// bigSolutionInstance builds a frozen n-fact instance shaped like a
// chased solution, for serve-path measurements that must not pay for a
// chase per iteration.
func bigSolutionInstance(n int) *tdx.Instance {
	sch := schema.MustNew(
		schema.MustRelation("Emp", "name", "company", "salary"),
		schema.MustRelation("Proj", "name", "project"),
	)
	c := instance.NewConcrete(sch)
	for i := 0; c.Len() < n; i++ {
		iv := interval.Interval{Start: interval.Time(i % 100), End: interval.Time(i%100 + 3)}
		name := value.NewConst(fmt.Sprintf("person-%d", i))
		if i%3 == 0 {
			c.MustInsert(fact.NewC("Proj", iv, name, value.NewAnnNull(uint64(i%50), iv)))
		} else {
			c.MustInsert(fact.NewC("Emp", iv, name,
				value.NewConst(fmt.Sprintf("company-%d", i%37)),
				value.NewConst(fmt.Sprintf("%dk", 10+i%90))))
		}
	}
	c.Freeze()
	return tdx.NewInstance(c)
}

// discardResponseWriter counts bytes and drops them — the serve-path
// equivalent of io.Discard, so allocation measurements see only the
// server's own staging, not a recorder's growing buffer.
type discardResponseWriter struct {
	h http.Header
	n int64
}

func (d *discardResponseWriter) Header() http.Header {
	if d.h == nil {
		d.h = make(http.Header)
	}
	return d.h
}
func (d *discardResponseWriter) WriteHeader(int) {}
func (d *discardResponseWriter) Write(p []byte) (int, error) {
	d.n += int64(len(p))
	return len(p), nil
}

// TestStreamedRunHoldsNoSolutionBuffer is the O(rows)-free serving
// claim: streaming a 10k-fact solution response allocates a small
// constant — if the path staged the document (or the fact set), the
// count would be O(n). Skipped under the race detector, whose
// instrumentation inflates allocation counts.
func TestStreamedRunHoldsNoSolutionBuffer(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not stable under the race detector")
	}
	s := mustNew(t, Config{})
	inst := bigSolutionInstance(10_000)
	head := runResponse{Hash: "h"}
	tails := []tailDoc{{name: "solution", stream: instanceDoc(inst)}}
	w := &discardResponseWriter{}
	w.Header() // pre-build outside the measured region
	allocs := testing.AllocsPerRun(5, func() {
		s.writeFramed(w, http.StatusOK, head, tails, true)
	})
	if allocs > 96 {
		t.Fatalf("streamed 10k-fact response allocated %v times; want a small constant", allocs)
	}
}

// BenchmarkServerRunStream isolates the serve path — framing and
// streaming a finished solution through the response writer — at
// 1k/10k/100k facts, streamed vs buffered. allocs/op and B/op on the
// streamed rows are O(1) in the fact count; the buffered rows stage the
// document once.
func BenchmarkServerRunStream(b *testing.B) {
	s := mustNew(b, Config{})
	for _, n := range []int{1_000, 10_000, 100_000} {
		inst := bigSolutionInstance(n)
		head := runResponse{Hash: "h"}
		tails := []tailDoc{{name: "solution", stream: instanceDoc(inst)}}
		for _, mode := range []struct {
			name   string
			stream bool
		}{{"streamed", true}, {"buffered", false}} {
			b.Run(fmt.Sprintf("%s/%dk", mode.name, n/1000), func(b *testing.B) {
				w := &discardResponseWriter{}
				w.Header()
				s.writeFramed(w, http.StatusOK, head, tails, mode.stream) // size probe
				b.SetBytes(w.n)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					w.h.Del("Content-Length")
					s.writeFramed(w, http.StatusOK, head, tails, mode.stream)
				}
			})
		}
	}
}
