// Package server is tdxd's HTTP front end over the public tdx engine
// API: a daemon holding a registry of compiled exchanges and serving
// data exchange over HTTP. The mapping is the fixed artifact, so it is
// compiled once — POST /v1/mappings registers a mapping text and returns
// the content hash identifying its compiled exchange — and every
// subsequent request addresses the compiled exchange by hash with a
// request-scoped source instance in the body:
//
//	POST   /v1/mappings                     register (compile) a mapping → hash
//	GET    /v1/mappings                     list registered mappings, MRU first
//	POST   /v1/exchanges/{hash}/run         chase the body source → solution + stats
//	POST   /v1/exchanges/{hash}/answer      certain answers of ?query= over the solution
//	POST   /v1/exchanges/{hash}/snapshot    abstract snapshot db_at of the solution (?at=)
//	POST   /v1/exchanges/{hash}/sessions    chase the body source once, open an incremental session
//	POST   /v1/sessions/{id}/facts          ingest new source facts → solution diff (semi-naive delta chase)
//	DELETE /v1/sessions/{id}                drop a session
//	GET    /healthz                         liveness + registry/session/admission counters
//	GET    /metrics                         Prometheus text exposition of the same counters
//
// Request bodies are either the TDX JSON instance format (Content-Type
// application/json) or the TDX fact text format (any other content
// type). Exchange-endpoint bodies are read fully (bounded by
// MaxBodyBytes) and content-hashed: the hash keys an in-memory LRU of
// decoded source instances (MaxSources) and — with a state directory —
// the disk cache of chased solutions, so re-posting a document skips
// decoding, and re-running one skips the chase entirely.
// Per-request query parameters ride the engine's functional
// options: ?timeout= bounds the run through the existing context
// plumbing (capped by the server's MaxTimeout), ?parallel= sizes the
// chase worker pool, ?norm=, ?egd=, and ?coalesce= override the
// exchange's compile-time defaults for that run only.
//
// Memory bounding is structural: the registry is LRU-bounded
// (MaxMappings), compilation of concurrent duplicate registrations is
// singleflight-deduplicated, and every run uses tdx.WithRunInterner, so
// a long-lived registry entry's interner holds exactly the mapping
// domain and never grows with request traffic. Sessions — which pin a
// solution plus the chase state retained for incremental deltas — are
// LRU-bounded the same way (MaxSessions).
//
// The response side is bounded too: solution-bearing responses are
// framed (stream.go) — the small head fields marshal normally, then the
// solution document streams chunked straight off the frozen columnar
// store, so serving an n-fact solution never stages an n-sized buffer.
// Admission control bounds the chase concurrency itself: with
// MaxInflight set, at most that many chases run at once, the overflow
// queues up to QueueWait for a freed slot, and chases still waiting when
// the budget lapses are rejected with 429 (gate.go). Cache hits and
// request decoding stay admission-free.
//
// With Config.StateDir set the daemon also persists warm-start state:
// registered mappings and live sessions ride a manifest plus columnar
// solution snapshots (internal/snapshot), replayed by WarmStart at
// boot, so a restarted daemon serves its first /run from the snapshot
// cache with zero request-driven compiles. See state.go.
package server

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"mime"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	tdx "repro"
	"repro/internal/fleet"
)

// Config parameterizes a Server. The zero value serves with the
// defaults noted per field.
type Config struct {
	// MaxMappings bounds the registry (LRU eviction beyond it).
	// <= 0 means DefaultCapacity.
	MaxMappings int
	// MaxTimeout caps — and, when a request names no ?timeout=, sets —
	// the per-request run budget. <= 0 means DefaultMaxTimeout.
	MaxTimeout time.Duration
	// Parallelism is the default chase worker count for runs that pass
	// no ?parallel= (0 = GOMAXPROCS, the engine default).
	Parallelism int
	// MaxSessions bounds live incremental-exchange sessions (LRU
	// eviction beyond it). <= 0 means DefaultMaxSessions.
	MaxSessions int
	// MaxBodyBytes bounds request bodies. <= 0 means DefaultMaxBody.
	MaxBodyBytes int64
	// Compile replaces tdx.Compile — a test seam for counting or faking
	// compilations. nil means tdx.Compile.
	Compile CompileFunc
	// StateDir, when non-empty, enables warm-start persistence: the
	// manifest of registered mappings and live sessions, session
	// snapshots, and the disk run cache live under it (see state.go).
	// Empty means no persistence.
	StateDir string
	// MaxRunSnapshots bounds the disk run cache under StateDir/runs.
	// <= 0 means DefaultMaxRunSnapshots.
	MaxRunSnapshots int
	// MaxSources bounds the in-memory cache of decoded source instances.
	// 0 means DefaultMaxSources; negative disables the cache.
	MaxSources int
	// MaxInflight bounds concurrent chases (runs and session deltas).
	// Arrivals beyond it queue up to QueueWait for a freed slot, then get
	// 429. <= 0 means unlimited (the gauges still report).
	MaxInflight int
	// QueueWait bounds how long an over-MaxInflight chase waits for a
	// slot before 429. <= 0 means DefaultQueueWait.
	QueueWait time.Duration
	// StreamThreshold is the solution fact count at which responses
	// switch from buffered-with-Content-Length to chunked streaming.
	// 0 means DefaultStreamThreshold; negative streams everything.
	StreamThreshold int
	// Logf receives operational messages (persistence failures, warm
	// start skips). nil means log.Printf.
	Logf func(format string, args ...any)
	// AccessLogf, when non-nil, receives one structured line per request
	// (method, path, status, response bytes, duration). nil disables
	// access logging; request counting happens regardless.
	AccessLogf func(format string, args ...any)
	// FleetConfig, when non-nil, joins this server to a tdxd fleet: the
	// node gossips the registry contents and requests addressed to an
	// exchange this node does not hold are forwarded to (or, failing
	// that, compiled from) the fleet. See fleet.go. nil means a
	// standalone daemon.
	FleetConfig *fleet.Config
}

// DefaultMaxRunSnapshots bounds the disk run cache when the
// configuration does not.
const DefaultMaxRunSnapshots = 128

// DefaultMaxTimeout is the per-request run budget when the configuration
// does not set one.
const DefaultMaxTimeout = 60 * time.Second

// DefaultMaxBody bounds request bodies when the configuration does not.
const DefaultMaxBody int64 = 64 << 20

// DefaultStreamThreshold is the solution fact count at which responses
// switch to chunked streaming when the configuration does not say.
// Below it a response buffers (one Content-Length frame beats chunked
// overhead for small documents); at or past it the solution streams in
// flush-chunk slices.
const DefaultStreamThreshold = 4096

// Server implements the tdxd HTTP API over a compiled-exchange
// registry. Create with New, mount with Handler; safe for concurrent
// use.
type Server struct {
	cfg      Config
	reg      *Registry
	sessions *SessionStore
	sources  *sourceCache
	state    *stateStore // nil without Config.StateDir
	gate     *gate       // admission control on chase work
	fleet    *fleetState // nil without Config.FleetConfig
	streamAt int         // solution fact count switching to chunked streaming
	logf     func(format string, args ...any)
	start    time.Time

	// onChase, when non-nil, runs on every admitted chase while its gate
	// slot is held, before the engine is entered — a test seam for
	// deterministic concurrency assertions (rendezvous, blocking).
	onChase func()

	// Persistence observability, surfaced on /healthz.
	warmStarts      atomic.Int64 // manifest entries replayed at boot
	snapshotLoads   atomic.Int64 // solution snapshots loaded (run-cache hits, session resumes)
	snapshotWrites  atomic.Int64 // solution snapshots written (runs, sessions)
	sourceCacheHits atomic.Int64 // decoded-source cache hits

	// Serving observability, surfaced on /metrics.
	requests  atomic.Int64 // HTTP requests served (all endpoints)
	errors5xx atomic.Int64 // responses with a 5xx status

	// Fleet observability (zero outside fleet mode).
	forwards      atomic.Int64 // exchange requests relayed to a fleet peer
	fleetCompiles atomic.Int64 // fallback compiles from gossiped manifest payloads
}

// New builds a Server from the configuration. It fails only when
// Config.StateDir is set and unusable (not creatable, or holding a
// manifest this daemon cannot read).
func New(cfg Config) (*Server, error) {
	if cfg.MaxTimeout <= 0 {
		cfg.MaxTimeout = DefaultMaxTimeout
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = DefaultMaxBody
	}
	if cfg.MaxRunSnapshots <= 0 {
		cfg.MaxRunSnapshots = DefaultMaxRunSnapshots
	}
	if cfg.MaxSources == 0 {
		cfg.MaxSources = DefaultMaxSources
	}
	streamAt := cfg.StreamThreshold
	if streamAt == 0 {
		streamAt = DefaultStreamThreshold
	} else if streamAt < 0 {
		streamAt = 0 // every solution length is >= 0: always stream
	}
	s := &Server{
		cfg:      cfg,
		reg:      NewRegistry(cfg.MaxMappings, cfg.Compile),
		sessions: NewSessionStore(cfg.MaxSessions),
		sources:  newSourceCache(cfg.MaxSources),
		gate:     newGate(cfg.MaxInflight, cfg.QueueWait),
		streamAt: streamAt,
		logf:     cfg.Logf,
		start:    time.Now(),
	}
	if s.logf == nil {
		s.logf = log.Printf
	}
	if cfg.StateDir != "" {
		state, err := newStateStore(cfg.StateDir, cfg.MaxRunSnapshots)
		if err != nil {
			return nil, err
		}
		s.state = state
		s.sourceCacheHits.Store(state.sourceCacheHits())
		s.sessions.OnEvict(func(sess *Session) {
			if err := state.forgetSession(sess.ID); err != nil {
				s.logf("state: drop evicted session %s: %v", sess.ID, err)
			}
		})
	}
	if cfg.FleetConfig != nil {
		if err := s.newFleet(*cfg.FleetConfig); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Close releases what New acquired: the fleet node (gossip socket and
// loops) and a final state-manifest sync so restart-durable counters
// survive a graceful shutdown. Safe without fleet or state; safe to
// call once after serving stops.
func (s *Server) Close() error {
	var err error
	if s.fleet != nil {
		err = s.fleet.node.Close()
	}
	if s.state != nil {
		if serr := s.state.syncCounters(s.sourceCacheHits.Load()); serr != nil && err == nil {
			err = serr
		}
	}
	return err
}

// WarmStart replays the persisted manifest: registered mappings
// recompile through the replay path (not counted as request-driven
// compiles) and live sessions resume from their solution snapshots. It
// is a no-op without a state directory. Replay is best-effort per
// entry — a mapping that no longer compiles or a snapshot that fails
// validation is logged and skipped, never fatal — so a damaged state
// directory degrades to a cold start, not a dead daemon.
func (s *Server) WarmStart() error {
	if s.state == nil {
		return nil
	}
	man := s.state.snapshot()
	for _, m := range man.Mappings {
		opts, err := m.Options.engineOptions()
		if err != nil {
			s.logf("state: mapping %.12s: bad options: %v", m.Hash, err)
			continue
		}
		opts = append(opts, tdx.WithRunInterner())
		entry, err := s.reg.RegisterReplay(m.Mapping, opts...)
		if err != nil {
			s.logf("state: mapping %.12s no longer compiles: %v", m.Hash, err)
			continue
		}
		if entry.Hash != m.Hash {
			s.logf("state: mapping %.12s recompiled to %.12s; serving under the new hash", m.Hash, entry.Hash)
		}
		s.rememberOptions(entry.Hash, m.Options)
		s.warmStarts.Add(1)
	}
	for _, ms := range man.Sessions {
		entry, ok := s.reg.Get(ms.Hash)
		if !ok {
			s.logf("state: session %s: mapping %.12s not replayed; dropping", ms.ID, ms.Hash)
			_ = s.state.forgetSession(ms.ID)
			continue
		}
		sol, err := entry.Exchange.LoadSolution(s.state.sessionPath(ms.ID))
		if err != nil {
			s.logf("state: session %s: %v; dropping", ms.ID, err)
			_ = s.state.forgetSession(ms.ID)
			continue
		}
		s.snapshotLoads.Add(1)
		s.sessions.AddWithID(ms.ID, entry, sol, ms.Deltas)
		s.warmStarts.Add(1)
	}
	s.prefillSources()
	return nil
}

// prefillSources re-decodes the persisted source bodies (DIR/sources)
// through the replayed exchanges, so post-restart requests hit the
// decoded-source cache exactly as they did before the restart. Entries
// are matched by the fingerprint prefix in the file name; bodies whose
// exchange did not replay (evicted, or no longer compiling) are
// dropped along with files that no longer decode.
func (s *Server) prefillSources() {
	saved := s.state.savedSources()
	if len(saved) == 0 {
		return
	}
	byPrefix := make(map[string]*Entry)
	for _, e := range s.reg.Entries() {
		if len(e.Hash) >= 16 {
			byPrefix[e.Hash[:16]] = e
		}
	}
	for _, sv := range saved {
		entry, ok := byPrefix[sv.entryPrefix]
		if !ok {
			_ = os.Remove(s.state.sourcePath(sv.entryPrefix, sv.srcKey))
			continue
		}
		var src *tdx.Instance
		var err error
		if sv.jsonBody {
			src, err = entry.Exchange.DecodeSourceJSON(bytes.NewReader(sv.body))
		} else {
			src, err = entry.Exchange.ParseSource(string(sv.body))
		}
		if err != nil {
			s.logf("state: source %.12s no longer decodes: %v", sv.srcKey, err)
			_ = os.Remove(s.state.sourcePath(sv.entryPrefix, sv.srcKey))
			continue
		}
		src.Freeze()
		s.sources.put(entry.Hash+"\x00"+sv.srcKey, src)
	}
}

// Registry exposes the compiled-exchange registry (tests, metrics).
func (s *Server) Registry() *Registry { return s.reg }

// Sessions exposes the session store (tests, metrics).
func (s *Server) Sessions() *SessionStore { return s.sessions }

// Handler returns the routed HTTP handler, wrapped with the request
// counter and (when configured) the access log.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("POST /v1/mappings", s.handleRegister)
	mux.HandleFunc("GET /v1/mappings", s.handleList)
	mux.HandleFunc("POST /v1/exchanges/{hash}/run", s.handleRun)
	mux.HandleFunc("POST /v1/exchanges/{hash}/answer", s.handleAnswer)
	mux.HandleFunc("POST /v1/exchanges/{hash}/snapshot", s.handleSnapshot)
	mux.HandleFunc("POST /v1/exchanges/{hash}/sessions", s.handleSessionCreate)
	mux.HandleFunc("POST /v1/sessions/{id}/facts", s.handleSessionFacts)
	mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleSessionDelete)
	return s.observe(mux)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, healthResponse{
		Status:            "ok",
		UptimeSeconds:     int64(time.Since(s.start).Seconds()),
		Mappings:          s.reg.Len(),
		Compiles:          s.reg.Compiles(),
		Evictions:         s.reg.Evicted(),
		Sessions:          s.sessions.Len(),
		SessionEvictions:  s.sessions.Evicted(),
		WarmStarts:        s.warmStarts.Load(),
		SnapshotLoads:     s.snapshotLoads.Load(),
		SnapshotWrites:    s.snapshotWrites.Load(),
		SourceCacheHits:   s.sourceCacheHits.Load(),
		Inflight:          s.gate.inflight.Load(),
		InflightHighWater: s.gate.highWater.Load(),
		Queued:            s.gate.queued.Load(),
		Rejected:          s.gate.rejected.Load(),
		Fleet:             s.fleetHealthBlock(),
	})
}

// handleRegister compiles and registers a mapping. A JSON body is the
// registerRequest envelope; any other body is the raw mapping text with
// default options — so `curl --data-binary @mapping.tdx` just works.
func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	// Registration is budget-bounded like every other endpoint — the
	// body read included: the handler gives up (504) when the budget
	// lapses, while an in-flight compile finishes detached and is cached
	// for the retry.
	ctx, cancel, err := s.budgetContext(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	defer cancel()
	s.boundBody(ctx, w, r)
	var req registerRequest
	if isJSON(r) {
		dec := newStrictDecoder(r.Body)
		if err := dec.Decode(&req); err != nil {
			writeError(w, bodyErrStatus(err), fmt.Errorf("register body: %w", err))
			return
		}
		// Reject trailing data (a concatenated second envelope would be
		// silently dropped otherwise), matching the source-body decoder.
		if tok, err := dec.Token(); err != io.EOF {
			writeError(w, http.StatusBadRequest, fmt.Errorf("register body: trailing data after envelope (%v)", tok))
			return
		}
	} else {
		text, err := io.ReadAll(r.Body)
		if err != nil {
			writeError(w, bodyErrStatus(err), fmt.Errorf("register body: %w", err))
			return
		}
		req.Mapping = string(text)
	}
	if strings.TrimSpace(req.Mapping) == "" {
		writeError(w, http.StatusBadRequest, errors.New("register body carries no mapping text"))
		return
	}
	opts, err := req.Options.engineOptions()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// Every run of a registered exchange gets a per-run interner seeded
	// from the frozen mapping domain: a registry entry serving unbounded
	// distinct inputs must not grow with them.
	opts = append(opts, tdx.WithRunInterner())
	entry, cached, err := s.reg.Register(ctx, req.Mapping, opts...)
	if err != nil {
		// Compilation failures are the client's mapping (400); an
		// exhausted budget or client disconnect maps like any run error.
		writeError(w, answerStatus(err), err)
		return
	}
	if s.state != nil {
		// Persist the canonical rendering: cosmetic variants of one
		// mapping collapse to one manifest row, and replaying it
		// reproduces the same fingerprint.
		if err := s.state.rememberMapping(entry.Hash, entry.Exchange.Canonical(), req.Options, s.reg.Capacity()); err != nil {
			s.logf("state: persist mapping %.12s: %v", entry.Hash, err)
		}
	}
	if s.fleet != nil {
		// Gossip the new holding now, not a gossip interval later.
		s.rememberOptions(entry.Hash, req.Options)
		s.fleet.node.Poke()
	}
	status := http.StatusCreated
	if cached {
		status = http.StatusOK
	}
	writeJSON(w, status, registerResponse{Hash: entry.Hash, Cached: cached, Info: infoWire(entry.Info)})
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	entries := s.reg.Entries()
	out := listResponse{Mappings: make([]mappingSummary, len(entries)), Capacity: s.reg.Capacity()}
	for i, e := range entries {
		out.Mappings[i] = mappingSummary{
			Hash:         e.Hash,
			Info:         infoWire(e.Info),
			RegisteredAt: e.Registered.UTC().Format(time.RFC3339),
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// resolve looks up the {hash} path segment in the registry. Fleet mode
// widens it: see resolveOrForward (fleet.go), which every exchange
// handler goes through.

// budgetContext bounds the request context by the per-request run
// budget. The returned context covers the whole pipeline — decode, run,
// and any query evaluation or snapshot over the solution — so ?timeout=
// (and the MaxTimeout cap) bound everything a request can make the
// engine do, not just the chase.
func (s *Server) budgetContext(r *http.Request) (context.Context, context.CancelFunc, error) {
	budget, err := s.runBudget(r)
	if err != nil {
		return nil, nil, err
	}
	ctx, cancel := context.WithTimeout(r.Context(), budget)
	return ctx, cancel, nil
}

// boundBody bounds the request body by the size cap and the budget: a
// connection read deadline (when the ResponseWriter supports it — test
// recorders don't, so it is best-effort) unblocks a stalled network
// read so a trickling client cannot hold the handler past its budget,
// and the ctx-checking wrapper classifies post-budget reads as the
// budget's deadline error rather than a bare i/o error.
func (s *Server) boundBody(ctx context.Context, w http.ResponseWriter, r *http.Request) {
	if d, ok := ctx.Deadline(); ok {
		_ = http.NewResponseController(w).SetReadDeadline(d)
	}
	r.Body = ctxReadCloser{ctx: ctx, rc: http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)}
}

// ctxReadCloser fails reads once ctx is done, passing inner errors
// (including *http.MaxBytesError) through untouched.
type ctxReadCloser struct {
	ctx context.Context
	rc  io.ReadCloser
}

func (c ctxReadCloser) Read(p []byte) (int, error) {
	if err := c.ctx.Err(); err != nil {
		return 0, err
	}
	return c.rc.Read(p)
}

func (c ctxReadCloser) Close() error { return c.rc.Close() }

// runExchange is the shared run pipeline of the exchange endpoints:
// read the (bounded) body, consult the disk run cache keyed on
// (exchange, source content, effective options), then — on a miss —
// decode the source (through the decoded-source cache) and chase it on
// the entry's compiled exchange, persisting the solution for next time.
// Bodies are read fully before decoding: they are already bounded by
// MaxBodyBytes, and content hashing is what makes both caches sound.
func (s *Server) runExchange(ctx context.Context, w http.ResponseWriter, r *http.Request, entry *Entry) (*tdx.Solution, time.Duration, bool) {
	opts, err := s.runOptions(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return nil, 0, false
	}
	s.boundBody(ctx, w, r)
	body, err := io.ReadAll(r.Body)
	if err != nil {
		writeError(w, bodyErrStatus(err), fmt.Errorf("source body: %w", err))
		return nil, 0, false
	}
	jsonBody := isJSON(r)
	srcKey := sourceKey(jsonBody, body)
	started := time.Now()

	// Disk run cache: a deterministic run is fully keyed by the exchange
	// fingerprint, the source content, and the effective options, so a
	// snapshot hit replaces the whole decode+chase pipeline with an mmap.
	var cacheKey string
	if s.state != nil {
		cacheKey = runKey(entry.Hash, srcKey, entry.Exchange.RunFingerprint(opts...))
		if sol, err := entry.Exchange.LoadSolution(s.state.runPath(cacheKey)); err == nil {
			s.snapshotLoads.Add(1)
			return sol, time.Since(started), true
		} else if !errors.Is(err, os.ErrNotExist) {
			s.logf("state: run cache %s: %v", cacheKey, err)
		}
	}

	src, err := s.decodeBody(entry, jsonBody, body, srcKey)
	if err != nil {
		writeError(w, bodyErrStatus(err), err)
		return nil, 0, false
	}
	// Admission: the gate wraps the chase itself — the cache hit above
	// and the decode stayed admission-free — so -max-inflight bounds the
	// CPU-and-memory burst of concurrent runs, queueing the overflow and
	// rejecting what outwaits -queue-wait with 429.
	if err := s.gate.acquire(ctx); err != nil {
		writeError(w, runStatus(err), err)
		return nil, 0, false
	}
	if s.onChase != nil {
		s.onChase()
	}
	sol, err := entry.Exchange.Run(ctx, src, opts...)
	s.gate.release()
	if err != nil {
		writeError(w, runStatus(err), err)
		return nil, 0, false
	}
	if s.state != nil {
		if err := s.state.saveRun(cacheKey, sol); err != nil {
			s.logf("state: persist run %s: %v", cacheKey, err)
		} else {
			s.snapshotWrites.Add(1)
		}
	}
	return sol, time.Since(started), true
}

// decodeBody turns a buffered request body into a frozen source
// instance, consulting the decoded-source cache first: re-posting the
// same document to the same exchange skips parsing and re-interning.
func (s *Server) decodeBody(entry *Entry, jsonBody bool, body []byte, srcKey string) (*tdx.Instance, error) {
	ck := entry.Hash + "\x00" + srcKey
	if src, ok := s.sources.get(ck); ok {
		hits := s.sourceCacheHits.Add(1)
		if s.state != nil {
			// Keep the manifest's durable copy current; it rides the next
			// manifest write to disk.
			s.state.noteSourceHits(hits)
		}
		return src, nil
	}
	var src *tdx.Instance
	var err error
	if jsonBody {
		src, err = entry.Exchange.DecodeSourceJSON(bytes.NewReader(body))
	} else {
		if strings.TrimSpace(string(body)) == "" {
			return nil, errors.New("source body is empty; send TDX fact text or the TDX JSON instance format")
		}
		src, err = entry.Exchange.ParseSource(string(body))
	}
	if err != nil {
		return nil, fmt.Errorf("source body: %w", err)
	}
	// Freeze before publishing: a frozen instance is safe to share
	// across the concurrent runs a cache hit implies.
	src.Freeze()
	s.sources.put(ck, src)
	if s.state != nil {
		// Persist the raw body so a restarted daemon re-decodes it at boot
		// (WarmStart) instead of on the first request.
		if err := s.state.saveSource(entry.Hash, srcKey, jsonBody, body); err != nil {
			s.logf("state: persist source %.12s: %v", srcKey, err)
		}
	}
	return src, nil
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	entry, ok := s.resolveOrForward(w, r)
	if !ok {
		return
	}
	// Resolve the query first: a bad query must not cost a chase.
	q := r.URL.Query().Get("query")
	if q != "" {
		if err := entry.Exchange.ValidateQuery(q); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
	}
	ctx, cancel, err := s.budgetContext(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	defer cancel()
	sol, elapsed, ok := s.runExchange(ctx, w, r, entry)
	if !ok {
		return
	}
	head := runResponse{
		Hash:      entry.Hash,
		Stats:     sol.Stats(),
		ElapsedMs: elapsedMs(elapsed),
	}
	tails := []tailDoc{{name: "solution", stream: instanceDoc(&sol.Instance)}}
	// ?query= also computes certain answers over the fresh solution, so
	// one request can carry both artifacts home. Evaluation happens here,
	// before the first response byte: a query failure must still become a
	// clean error status, which streaming would have forfeited.
	if q != "" {
		ans, err := entry.Exchange.Query(ctx, sol, q)
		if err != nil {
			writeError(w, answerStatus(err), err)
			return
		}
		tails = append(tails, tailDoc{name: "answers", stream: instanceDoc(ans)})
	}
	s.writeFramed(w, http.StatusOK, head, tails, s.streamLen(sol.Len()))
}

func (s *Server) handleAnswer(w http.ResponseWriter, r *http.Request) {
	entry, ok := s.resolveOrForward(w, r)
	if !ok {
		return
	}
	// Resolve the query first: a bad query must not cost a chase ("" is
	// valid exactly when the mapping declares one query).
	q := r.URL.Query().Get("query")
	if err := entry.Exchange.ValidateQuery(q); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	ctx, cancel, err := s.budgetContext(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	defer cancel()
	sol, elapsed, ok := s.runExchange(ctx, w, r, entry)
	if !ok {
		return
	}
	ans, err := entry.Exchange.Query(ctx, sol, q)
	if err != nil {
		writeError(w, answerStatus(err), err)
		return
	}
	head := answerResponse{
		Hash:      entry.Hash,
		Query:     q,
		Stats:     sol.Stats(),
		ElapsedMs: elapsedMs(elapsed),
	}
	tails := []tailDoc{{name: "answers", stream: instanceDoc(ans)}}
	s.writeFramed(w, http.StatusOK, head, tails, s.streamLen(ans.Len()))
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	entry, ok := s.resolveOrForward(w, r)
	if !ok {
		return
	}
	atParam := r.URL.Query().Get("at")
	if atParam == "" {
		writeError(w, http.StatusBadRequest, errors.New("?at= time point is required"))
		return
	}
	at, err := tdx.ParseTime(atParam)
	if err != nil {
		writeError(w, http.StatusBadRequest, badParam("at", err))
		return
	}
	ctx, cancel, err := s.budgetContext(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	defer cancel()
	sol, elapsed, ok := s.runExchange(ctx, w, r, entry)
	if !ok {
		return
	}
	snap, err := entry.Exchange.Snapshot(ctx, sol, at)
	if err != nil {
		writeError(w, runStatus(err), err)
		return
	}
	head := snapshotResponse{
		Hash:      entry.Hash,
		At:        atParam,
		Stats:     sol.Stats(),
		ElapsedMs: elapsedMs(elapsed),
	}
	tails := []tailDoc{
		{name: "facts", stream: snapshotFactsDoc(snap)},
		{name: "rendering", stream: marshalDoc(snap.String())},
	}
	s.writeFramed(w, http.StatusOK, head, tails, s.streamLen(len(snap.Facts())))
}

// handleSessionCreate materializes a frozen base solution from the body
// source and opens an incremental session over it: subsequent deltas
// posted to /v1/sessions/{id}/facts extend the solution via the
// semi-naive delta chase instead of re-chasing the base.
func (s *Server) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	entry, ok := s.resolveOrForward(w, r)
	if !ok {
		return
	}
	ctx, cancel, err := s.budgetContext(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	defer cancel()
	sol, elapsed, ok := s.runExchange(ctx, w, r, entry)
	if !ok {
		return
	}
	sess := s.sessions.Add(entry, sol)
	s.persistSession(sess.ID, entry.Hash, 0, sol)
	head := sessionResponse{
		SessionID: sess.ID,
		Hash:      entry.Hash,
		Stats:     sol.Stats(),
		ElapsedMs: elapsedMs(elapsed),
	}
	tails := []tailDoc{{name: "solution", stream: instanceDoc(&sol.Instance)}}
	s.writeFramed(w, http.StatusCreated, head, tails, s.streamLen(sol.Len()))
}

// handleSessionFacts ingests a delta of new source facts into a session:
// the body decodes like any source instance, runs through RunDelta
// against the session's current solution, and the response carries the
// solution diff (added and removed target facts). The session then
// holds the new solution, so deltas chain. ?solution=true additionally
// returns the full updated solution document.
func (s *Server) handleSessionFacts(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.sessions.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no session %q is live (expired from the LRU bound, or never created)", r.PathValue("id")))
		return
	}
	wantSolution := false
	if v := r.URL.Query().Get("solution"); v != "" {
		on, err := strconv.ParseBool(v)
		if err != nil {
			writeError(w, http.StatusBadRequest, badParam("solution", err))
			return
		}
		wantSolution = on
	}
	opts, err := s.runOptions(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	ctx, cancel, err := s.budgetContext(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	defer cancel()
	s.boundBody(ctx, w, r)
	delta, err := s.decodeSource(r, sess.Entry.Exchange)
	if err != nil {
		writeError(w, bodyErrStatus(err), err)
		return
	}
	// Serialize deltas on this session: each delta's base is the
	// previous solution. The admission gate wraps the delta chase like a
	// full run's; acquiring it under the session lock is safe (the gate
	// is not a lock — release never blocks) and keeps queued deltas of
	// one session in arrival order.
	sess.mu.Lock()
	if err := s.gate.acquire(ctx); err != nil {
		sess.mu.Unlock()
		writeError(w, runStatus(err), err)
		return
	}
	if s.onChase != nil {
		s.onChase()
	}
	started := time.Now()
	next, diff, err := sess.Entry.Exchange.RunDelta(ctx, sess.sol, delta, opts...)
	s.gate.release()
	if err != nil {
		sess.mu.Unlock()
		writeError(w, runStatus(err), err)
		return
	}
	sess.sol = next
	sess.deltas++
	deltas := sess.deltas
	sess.mu.Unlock()
	elapsed := time.Since(started)
	s.persistSession(sess.ID, sess.Entry.Hash, deltas, next)

	head := factsResponse{
		SessionID: sess.ID,
		Hash:      sess.Entry.Hash,
		Stats:     next.Stats(),
		ElapsedMs: elapsedMs(elapsed),
		Deltas:    deltas,
	}
	tails := []tailDoc{{name: "diff", stream: diffDoc(diff)}}
	size := diff.Added.Len() + diff.Removed.Len()
	if wantSolution {
		tails = append(tails, tailDoc{name: "solution", stream: instanceDoc(&next.Instance)})
		size += next.Len()
	}
	s.writeFramed(w, http.StatusOK, head, tails, s.streamLen(size))
}

// handleSessionDelete drops a session, releasing its pinned solution
// and retained chase state.
func (s *Server) handleSessionDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !s.sessions.Delete(id) {
		writeError(w, http.StatusNotFound, fmt.Errorf("no session %q is live", id))
		return
	}
	if s.state != nil {
		if err := s.state.forgetSession(id); err != nil {
			s.logf("state: drop session %s: %v", id, err)
		}
	}
	w.WriteHeader(http.StatusNoContent)
}

// persistSession snapshots a session's current solution, best-effort.
func (s *Server) persistSession(id, hash string, deltas int64, sol *tdx.Solution) {
	if s.state == nil {
		return
	}
	if err := s.state.saveSession(id, hash, deltas, sol); err != nil {
		s.logf("state: persist session %s: %v", id, err)
		return
	}
	s.snapshotWrites.Add(1)
}

// answerStatus maps a query-evaluation error: a bad query is the
// client's, a context error maps like any run error.
func answerStatus(err error) int {
	if st := runStatus(err); st != http.StatusInternalServerError {
		return st
	}
	return http.StatusBadRequest
}

// runOptions translates per-request query parameters into per-run
// engine options layered over the server and exchange defaults.
func (s *Server) runOptions(r *http.Request) ([]tdx.Option, error) {
	q := r.URL.Query()
	opts := []tdx.Option{tdx.WithParallelism(s.cfg.Parallelism), tdx.WithRunInterner()}
	if v := q.Get("parallel"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			return nil, badParam("parallel", err)
		}
		opts = append(opts, tdx.WithParallelism(n))
	}
	if v := q.Get("norm"); v != "" {
		norm, err := tdx.ParseNorm(v)
		if err != nil {
			return nil, badParam("norm", err)
		}
		opts = append(opts, tdx.WithNorm(norm))
	}
	if v := q.Get("egd"); v != "" {
		egd, err := tdx.ParseEgdStrategy(v)
		if err != nil {
			return nil, badParam("egd", err)
		}
		opts = append(opts, tdx.WithEgdStrategy(egd))
	}
	if v := q.Get("coalesce"); v != "" {
		on, err := strconv.ParseBool(v)
		if err != nil {
			return nil, badParam("coalesce", err)
		}
		opts = append(opts, tdx.WithCoalesce(on))
	}
	return opts, nil
}

// runBudget resolves the per-request run budget: ?timeout= when given
// (capped by MaxTimeout), MaxTimeout otherwise.
func (s *Server) runBudget(r *http.Request) (time.Duration, error) {
	v := r.URL.Query().Get("timeout")
	if v == "" {
		return s.cfg.MaxTimeout, nil
	}
	d, err := time.ParseDuration(v)
	if err != nil {
		return 0, badParam("timeout", err)
	}
	if d <= 0 {
		return 0, badParam("timeout", fmt.Errorf("must be positive, got %v", d))
	}
	if d > s.cfg.MaxTimeout {
		d = s.cfg.MaxTimeout
	}
	return d, nil
}

// decodeSource turns the request body into a request-scoped source
// instance: the TDX JSON format (streamed) for JSON content types, the
// TDX fact text format otherwise.
func (s *Server) decodeSource(r *http.Request, ex *tdx.Exchange) (*tdx.Instance, error) {
	if isJSON(r) {
		src, err := ex.DecodeSourceJSON(r.Body)
		if err != nil {
			return nil, fmt.Errorf("source body: %w", err)
		}
		return src, nil
	}
	text, err := io.ReadAll(r.Body)
	if err != nil {
		return nil, fmt.Errorf("source body: %w", err)
	}
	if strings.TrimSpace(string(text)) == "" {
		return nil, errors.New("source body is empty; send TDX fact text or the TDX JSON instance format")
	}
	src, err := ex.ParseSource(string(text))
	if err != nil {
		return nil, fmt.Errorf("source body: %w", err)
	}
	return src, nil
}

// isJSON reports whether the request declares a JSON body.
func isJSON(r *http.Request) bool {
	ct := r.Header.Get("Content-Type")
	if ct == "" {
		return false
	}
	mt, _, err := mime.ParseMediaType(ct)
	if err != nil {
		return false
	}
	return mt == "application/json" || strings.HasSuffix(mt, "+json")
}
