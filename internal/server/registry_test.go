package server

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	tdx "repro"
)

// countingCompile wraps tdx.Compile with a counter and an optional
// artificial latency.
func countingCompile(n *atomic.Int64, delay time.Duration) CompileFunc {
	return func(mapping string, opts ...tdx.Option) (*tdx.Exchange, error) {
		n.Add(1)
		if delay > 0 {
			time.Sleep(delay)
		}
		return tdx.Compile(mapping, opts...)
	}
}

func TestRegistrySingleflight(t *testing.T) {
	var compiles atomic.Int64
	reg := NewRegistry(8, countingCompile(&compiles, 20*time.Millisecond))
	text := readTestdata(t, "employment.tdx")

	const n = 16
	entries := make([]*Entry, n)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			e, _, err := reg.Register(context.Background(), text)
			if err != nil {
				t.Error(err)
				return
			}
			entries[i] = e
		}(i)
	}
	close(start)
	wg.Wait()
	if got := compiles.Load(); got != 1 {
		t.Fatalf("compiles = %d, want 1", got)
	}
	for i, e := range entries {
		if e == nil || e != entries[0] {
			t.Fatalf("goroutine %d resolved a different entry", i)
		}
	}
	if reg.Len() != 1 || reg.Compiles() != 1 {
		t.Fatalf("registry: len=%d compiles=%d", reg.Len(), reg.Compiles())
	}
}

// TestRegistryCanonicalDedup: two texts that differ only in formatting
// compile separately (distinct raw keys) but share one canonical entry.
func TestRegistryCanonicalDedup(t *testing.T) {
	var compiles atomic.Int64
	reg := NewRegistry(8, countingCompile(&compiles, 0))
	text := readTestdata(t, "employment.tdx")
	noisy := "# comment\n" + text

	a, cached, err := reg.Register(context.Background(), text)
	if err != nil || cached {
		t.Fatalf("first register: %v cached=%v", err, cached)
	}
	b, cached, err := reg.Register(context.Background(), noisy)
	if err != nil {
		t.Fatal(err)
	}
	if !cached || b != a {
		t.Fatalf("reformatted text did not dedup onto the canonical entry")
	}
	if compiles.Load() != 2 || reg.Len() != 1 {
		t.Fatalf("compiles=%d len=%d, want 2 compiles collapsing to 1 entry", compiles.Load(), reg.Len())
	}
	// Both raw keys now hit without compiling.
	if _, _, err := reg.Register(context.Background(), text); err != nil {
		t.Fatal(err)
	}
	if _, _, err := reg.Register(context.Background(), noisy); err != nil {
		t.Fatal(err)
	}
	if compiles.Load() != 2 {
		t.Fatalf("cached registrations recompiled: %d", compiles.Load())
	}
}

// TestRegistryCompileError: failures propagate to every waiter and are
// not cached — the next attempt recompiles.
func TestRegistryCompileError(t *testing.T) {
	var compiles atomic.Int64
	reg := NewRegistry(8, countingCompile(&compiles, 10*time.Millisecond))
	const bad = "this is not a mapping"

	const n = 4
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, errs[i] = reg.Register(context.Background(), bad)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err == nil {
			t.Fatalf("goroutine %d: bad mapping accepted", i)
		}
	}
	if reg.Len() != 0 {
		t.Fatalf("failed compile left an entry")
	}
	first := compiles.Load()
	if first < 1 || first > n {
		t.Fatalf("compiles = %d after burst", first)
	}
	// Errors are not negative-cached: a retry compiles again.
	if _, _, err := reg.Register(context.Background(), bad); err == nil {
		t.Fatal("retry accepted")
	}
	if compiles.Load() != first+1 {
		t.Fatalf("retry did not recompile: %d vs %d", compiles.Load(), first)
	}
}

// TestRegistryOptionsKeyed: the same text under output-affecting options
// is a distinct exchange; under output-neutral options it is not.
func TestRegistryOptionsKeyed(t *testing.T) {
	reg := NewRegistry(8, nil)
	text := readTestdata(t, "employment.tdx")
	a, _, err := reg.Register(context.Background(), text)
	if err != nil {
		t.Fatal(err)
	}
	b, cached, err := reg.Register(context.Background(), text, tdx.WithNorm(tdx.NormNaive))
	if err != nil {
		t.Fatal(err)
	}
	if cached || b == a || b.Hash == a.Hash {
		t.Fatal("naive-norm exchange shares the default entry")
	}
	c, cached, err := reg.Register(context.Background(), text, tdx.WithParallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	// Distinct raw key (different opts list → we cannot know pre-compile),
	// but the canonical fingerprint collapses onto the default entry.
	if !cached || c != a {
		t.Fatal("parallelism-only options created a distinct entry")
	}
}

// TestEntrySurvivesEviction: a request holding an entry keeps a usable
// exchange even when the registry evicts it mid-flight.
func TestEntrySurvivesEviction(t *testing.T) {
	reg := NewRegistry(1, nil)
	base := readTestdata(t, "employment.tdx")
	e, _, err := reg.Register(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}
	// Evict it by registering a different mapping into the 1-slot registry.
	if _, _, err := reg.Register(context.Background(), strings.ReplaceAll(base, "tgd sigma1:", "tgd other:")); err != nil {
		t.Fatal(err)
	}
	if _, ok := reg.Get(e.Hash); ok {
		t.Fatal("entry should be evicted")
	}
	// The held pointer still runs.
	src, err := e.Exchange.ParseSource(readTestdata(t, "employment.facts"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Exchange.Run(nil, src); err != nil {
		t.Fatalf("evicted exchange no longer runs: %v", err)
	}
}

// TestRawIndexBounded: cosmetic text variants all hitting one canonical
// entry must not grow the raw-key index without bound.
func TestRawIndexBounded(t *testing.T) {
	var compiles atomic.Int64
	reg := NewRegistry(8, countingCompile(&compiles, 0))
	text := readTestdata(t, "employment.tdx")
	const variants = 40
	for i := 0; i < variants; i++ {
		e, _, err := reg.Register(context.Background(), strings.Repeat("#\n", i)+text)
		if err != nil {
			t.Fatal(err)
		}
		if e.Hash == "" {
			t.Fatal("no hash")
		}
	}
	if reg.Len() != 1 {
		t.Fatalf("variants created %d entries", reg.Len())
	}
	reg.mu.Lock()
	rawLen := len(reg.rawIndex)
	entryRaw := len(reg.entries[reg.order.Front().Value.(*Entry).Hash].Value.(*Entry).rawKeys)
	reg.mu.Unlock()
	if rawLen > maxRawKeysPerEntry || entryRaw > maxRawKeysPerEntry {
		t.Fatalf("raw index unbounded: rawIndex=%d entryRawKeys=%d (cap %d)", rawLen, entryRaw, maxRawKeysPerEntry)
	}
	// Every variant compiled once (distinct raw text), but recent raw
	// keys still hit the pre-compile cache.
	before := compiles.Load()
	if _, cached, err := reg.Register(context.Background(), strings.Repeat("#\n", variants-1)+text); err != nil || !cached {
		t.Fatalf("recent variant missed: %v", err)
	}
	if compiles.Load() != before {
		t.Fatal("recent variant recompiled")
	}
}

// TestRegisterAbandonedByContext: a caller whose context expires stops
// waiting immediately, but the compile finishes detached and is cached —
// the retry gets it without recompiling.
func TestRegisterAbandonedByContext(t *testing.T) {
	var compiles atomic.Int64
	reg := NewRegistry(8, countingCompile(&compiles, 100*time.Millisecond))
	text := readTestdata(t, "employment.tdx")

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	started := time.Now()
	_, _, err := reg.Register(ctx, text)
	if err == nil || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("abandoned register: err=%v", err)
	}
	if waited := time.Since(started); waited > 80*time.Millisecond {
		t.Fatalf("abandoned register blocked %v; must return at ctx expiry", waited)
	}
	// A patient retry shares the detached compile's result.
	e, _, err := reg.Register(context.Background(), text)
	if err != nil {
		t.Fatal(err)
	}
	if e == nil || e.Hash == "" {
		t.Fatal("retry got no entry")
	}
	if got := compiles.Load(); got != 1 {
		t.Fatalf("compiles = %d, want 1 (abandoned work must be reused)", got)
	}
}
