package server

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	tdx "repro"
)

// Warm-start persistence: a server given Config.StateDir keeps enough
// state on disk to serve its first requests after a restart without
// recompiling mappings or re-running chases.
//
//	DIR/manifest.json   registered mappings (canonical text + options)
//	                    and live session rows
//	DIR/runs/           solution snapshots keyed by (exchange, source
//	                    content, run options) — the disk run cache
//	DIR/sessions/       one solution snapshot per live session
//
// The manifest holds only what cannot be derived from snapshots: the
// mapping texts (snapshots carry data, not dependencies) and the
// session ids binding snapshot files to registry entries. Everything
// else — solutions and their embedded sources — lives in the snapshot
// format of internal/snapshot, so a warm boot maps files instead of
// chasing. All writes are atomic (temp file + rename); a crash mid-write
// leaves the previous state.
//
// Persistence failures never fail requests: the stateStore logs and the
// daemon keeps serving from memory. A corrupt or stale snapshot is
// detected at load (checksums, schema validation) and treated as a
// cache miss.

// manifest is the JSON document at DIR/manifest.json.
type manifest struct {
	Version  int               `json:"version"`
	Mappings []manifestMapping `json:"mappings"`
	Sessions []manifestSession `json:"sessions"`
	Counters manifestCounters  `json:"counters"`
}

// manifestCounters carries the restart-durable counters: totals whose
// meaning spans daemon lifetimes. They are refreshed in memory as the
// counters move and hit disk with whichever manifest save comes next
// (plus a final sync on graceful shutdown), so a crash loses at most
// the tail since the last save — acceptable for observability counters.
type manifestCounters struct {
	// SourceCacheHits continues the decoded-source cache hit count
	// across restarts: the cache itself is persisted (DIR/sources), so
	// its effectiveness metric must not reset on every boot.
	SourceCacheHits int64 `json:"sourceCacheHits"`
}

// manifestMapping re-registers one mapping at boot: the canonical
// mapping text (rendered by tdx.Exchange.Canonical, so cosmetic
// variants collapse) plus the compile options, which together reproduce
// the entry's fingerprint.
type manifestMapping struct {
	Hash    string         `json:"hash"`
	Mapping string         `json:"mapping"`
	Options requestOptions `json:"options"`
}

// manifestSession resumes one incremental session at boot from its
// snapshot file under DIR/sessions.
type manifestSession struct {
	ID     string `json:"id"`
	Hash   string `json:"hash"`
	Deltas int64  `json:"deltas"`
}

const manifestVersion = 1

// stateStore owns a state directory. All methods are safe for
// concurrent use and never fail the calling request: errors are
// returned for the server to count and log.
type stateStore struct {
	dir     string
	maxRuns int

	mu  sync.Mutex
	man manifest
}

// newStateStore opens (creating as needed) a state directory and reads
// its manifest.
func newStateStore(dir string, maxRuns int) (*stateStore, error) {
	for _, d := range []string{dir, filepath.Join(dir, "runs"), filepath.Join(dir, "sessions"), filepath.Join(dir, "sources")} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("state dir: %w", err)
		}
	}
	st := &stateStore{dir: dir, maxRuns: maxRuns, man: manifest{Version: manifestVersion}}
	data, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	switch {
	case os.IsNotExist(err):
		return st, nil
	case err != nil:
		return nil, fmt.Errorf("state manifest: %w", err)
	}
	var man manifest
	if err := json.Unmarshal(data, &man); err != nil {
		return nil, fmt.Errorf("state manifest: %w", err)
	}
	if man.Version != manifestVersion {
		return nil, fmt.Errorf("state manifest: version %d, this daemon writes %d", man.Version, manifestVersion)
	}
	st.man = man
	return st, nil
}

// snapshot returns a copy of the manifest for replay.
func (st *stateStore) snapshot() manifest {
	st.mu.Lock()
	defer st.mu.Unlock()
	man := st.man
	man.Mappings = append([]manifestMapping(nil), st.man.Mappings...)
	man.Sessions = append([]manifestSession(nil), st.man.Sessions...)
	return man
}

// saveLocked writes the manifest atomically. Callers hold st.mu.
func (st *stateStore) saveLocked() error {
	data, err := json.MarshalIndent(st.man, "", "  ")
	if err != nil {
		return err
	}
	path := filepath.Join(st.dir, "manifest.json")
	tmp, err := os.CreateTemp(st.dir, "manifest-*.tmp")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// rememberMapping records (or refreshes) a mapping row, keeping at most
// cap rows by dropping the oldest — mirroring the registry's LRU bound,
// so the manifest cannot outgrow what a warm boot would hold anyway.
func (st *stateStore) rememberMapping(hash, canonical string, opts requestOptions, cap int) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	rows := st.man.Mappings[:0]
	for _, m := range st.man.Mappings {
		if m.Hash != hash {
			rows = append(rows, m)
		}
	}
	rows = append(rows, manifestMapping{Hash: hash, Mapping: canonical, Options: opts})
	if cap > 0 && len(rows) > cap {
		rows = rows[len(rows)-cap:]
	}
	st.man.Mappings = append([]manifestMapping(nil), rows...)
	return st.saveLocked()
}

// rememberSession records (or updates) a session row.
func (st *stateStore) rememberSession(id, hash string, deltas int64) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	for i := range st.man.Sessions {
		if st.man.Sessions[i].ID == id {
			st.man.Sessions[i].Deltas = deltas
			return st.saveLocked()
		}
	}
	st.man.Sessions = append(st.man.Sessions, manifestSession{ID: id, Hash: hash, Deltas: deltas})
	return st.saveLocked()
}

// forgetSession drops a session row and its snapshot file.
func (st *stateStore) forgetSession(id string) error {
	st.mu.Lock()
	rows := st.man.Sessions[:0]
	for _, s := range st.man.Sessions {
		if s.ID != id {
			rows = append(rows, s)
		}
	}
	st.man.Sessions = rows
	err := st.saveLocked()
	st.mu.Unlock()
	if rmErr := os.Remove(st.sessionPath(id)); rmErr != nil && !os.IsNotExist(rmErr) && err == nil {
		err = rmErr
	}
	return err
}

// sessionPath is the snapshot file of one session.
func (st *stateStore) sessionPath(id string) string {
	return filepath.Join(st.dir, "sessions", sanitize(id)+".snap")
}

// saveSession snapshots a session's current solution (embedded source
// included) and updates its manifest row.
func (st *stateStore) saveSession(id, hash string, deltas int64, sol *tdx.Solution) error {
	if err := sol.WriteSnapshotFile(st.sessionPath(id)); err != nil {
		return err
	}
	return st.rememberSession(id, hash, deltas)
}

// runKey derives the run-cache file stem from the full identity of a
// deterministic run: the exchange fingerprint, the source content hash,
// and the effective output-affecting options.
func runKey(entryHash, srcHash, optionsFp string) string {
	opt := sha256.Sum256([]byte(optionsFp))
	return fmt.Sprintf("%.16s-%.16s-%s", entryHash, srcHash, hex.EncodeToString(opt[:4]))
}

// runPath is the snapshot file of one cached run.
func (st *stateStore) runPath(key string) string {
	return filepath.Join(st.dir, "runs", key+".snap")
}

// saveRun writes a run snapshot and prunes the cache directory down to
// maxRuns files (oldest first, by modification time).
func (st *stateStore) saveRun(key string, sol *tdx.Solution) error {
	if err := sol.WriteSnapshotFile(st.runPath(key)); err != nil {
		return err
	}
	return st.pruneDir("runs", ".snap")
}

// pruneDir bounds one cache directory under the state dir to maxRuns
// files of the given extension, dropping the oldest by modification
// time.
func (st *stateStore) pruneDir(sub, ext string) error {
	dir := filepath.Join(st.dir, sub)
	ents, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	type aged struct {
		name string
		mod  int64
	}
	files := make([]aged, 0, len(ents))
	for _, e := range ents {
		if e.IsDir() || filepath.Ext(e.Name()) != ext {
			continue
		}
		fi, err := e.Info()
		if err != nil {
			continue
		}
		files = append(files, aged{e.Name(), fi.ModTime().UnixNano()})
	}
	if len(files) <= st.maxRuns {
		return nil
	}
	sort.Slice(files, func(i, j int) bool { return files[i].mod < files[j].mod })
	var firstErr error
	for _, f := range files[:len(files)-st.maxRuns] {
		if err := os.Remove(filepath.Join(dir, f.name)); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Source persistence: the decoded-source cache (sourcecache.go) is
// rebuildable from request bodies, so what DIR/sources holds is the
// bodies themselves — one file per (exchange, source content) pair,
// a one-byte format discriminator ('j' JSON, 't' fact text) followed
// by the raw body. A warm boot re-decodes them through the already
// replayed exchanges and prefills the cache, so the first post-restart
// request that misses the run cache still skips source decoding.
// The directory shares the run cache's size bound.

// sourcePath is the persisted body of one cached source. The name
// carries everything a warm boot needs: a 16-hex prefix of the owning
// exchange's fingerprint and the full source content key.
func (st *stateStore) sourcePath(entryHash, srcKey string) string {
	return filepath.Join(st.dir, "sources", fmt.Sprintf("%.16s-%s.src", entryHash, sanitize(srcKey)))
}

// saveSource persists one decoded source's raw body.
func (st *stateStore) saveSource(entryHash, srcKey string, jsonBody bool, body []byte) error {
	format := byte('t')
	if jsonBody {
		format = 'j'
	}
	path := st.sourcePath(entryHash, srcKey)
	tmp, err := os.CreateTemp(filepath.Dir(path), "source-*.tmp")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(append([]byte{format}, body...)); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	return st.pruneDir("sources", ".src")
}

// savedSource is one persisted source body, keyed for cache prefill.
type savedSource struct {
	entryPrefix string // first 16 hex of the owning exchange fingerprint
	srcKey      string // full source content key
	jsonBody    bool
	body        []byte
}

// savedSources reads every persisted source body, dropping undecodable
// files (they are cache entries; losing one costs a decode, not data).
func (st *stateStore) savedSources() []savedSource {
	dir := filepath.Join(st.dir, "sources")
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil
	}
	var out []savedSource
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || filepath.Ext(name) != ".src" {
			continue
		}
		stem := name[:len(name)-len(".src")]
		sep := len(stem) > 17 && stem[16] == '-'
		if !sep {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil || len(data) < 2 || (data[0] != 'j' && data[0] != 't') {
			_ = os.Remove(filepath.Join(dir, name))
			continue
		}
		out = append(out, savedSource{
			entryPrefix: stem[:16],
			srcKey:      stem[17:],
			jsonBody:    data[0] == 'j',
			body:        data[1:],
		})
	}
	return out
}

// sourceCacheHits reads the persisted hit counter (0 on a fresh dir).
func (st *stateStore) sourceCacheHits() int64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.man.Counters.SourceCacheHits
}

// noteSourceHits refreshes the in-memory counter row without forcing a
// manifest write; the next save (a mapping or session event, or the
// shutdown sync) carries it to disk.
func (st *stateStore) noteSourceHits(n int64) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.man.Counters.SourceCacheHits = n
}

// syncCounters persists the durable counters now — the graceful
// shutdown path.
func (st *stateStore) syncCounters(sourceHits int64) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.man.Counters.SourceCacheHits = sourceHits
	return st.saveLocked()
}

// sanitize keeps ids filesystem-safe; session ids are hex, so this only
// defends against a hand-edited manifest.
func sanitize(id string) string {
	out := make([]byte, 0, len(id))
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_':
			out = append(out, c)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}

// sourceKey hashes a request body (with a format discriminator: the
// same bytes mean different instances as JSON vs fact text) for the
// run cache and the decoded-source cache.
func sourceKey(jsonBody bool, body []byte) string {
	h := sha256.New()
	if jsonBody {
		h.Write([]byte{'j', 0})
	} else {
		h.Write([]byte{'t', 0})
	}
	h.Write(body)
	return hex.EncodeToString(h.Sum(nil))
}
