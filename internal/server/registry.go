package server

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"
	"time"

	tdx "repro"
)

// CompileFunc compiles a mapping text into an exchange. The registry
// takes one so tests can count or fake compilations; nil means
// tdx.Compile.
type CompileFunc func(mapping string, opts ...tdx.Option) (*tdx.Exchange, error)

// Entry is one registered compiled exchange. Entries are immutable after
// registration (the Exchange itself is immutable by construction), so a
// request that resolved an entry keeps a usable pointer even if the
// entry is evicted from the registry mid-flight.
type Entry struct {
	Hash       string // the exchange's canonical fingerprint
	Exchange   *tdx.Exchange
	Info       tdx.Info
	Registered time.Time
	// rawKeys are the request keys (text+options hashes) that resolved to
	// this entry; eviction drops their index entries alongside the entry.
	rawKeys []string
}

// Registry is a mapping-hash-keyed, LRU-bounded store of compiled
// exchanges with singleflight-deduplicated compilation: a burst of
// concurrent registrations of the same mapping text compiles exactly
// once, every caller sharing the one result. Entries are keyed on the
// exchange's canonical fingerprint (tdx.Exchange.Fingerprint), so two
// texts differing only in whitespace or comments share one entry; the
// pre-compile dedup is keyed on the raw text plus the option
// fingerprint, the only identity computable before compilation.
//
// The LRU bound is the daemon's memory governor: each entry holds
// compiled plans and the frozen mapping-domain interner, and the
// least-recently-used entry is dropped when a registration would exceed
// the capacity. An evicted mapping re-registers (and recompiles)
// transparently on next use.
//
// All methods are safe for concurrent use.
type Registry struct {
	compile CompileFunc

	mu       sync.Mutex
	capacity int
	entries  map[string]*list.Element // fingerprint → element holding *Entry
	order    *list.List               // front = most recently used
	rawIndex map[string]string        // raw request key → fingerprint
	inflight map[string]*flight       // raw request key → in-progress compile
	compiles int64
	evicted  int64
}

// flight is one in-progress compilation; waiters block on done (or
// their own context) and read the published result afterwards.
type flight struct {
	done   chan struct{}
	entry  *Entry
	cached bool
	err    error
}

// DefaultCapacity bounds the registry when the configuration does not.
const DefaultCapacity = 64

// NewRegistry returns a registry holding at most capacity compiled
// exchanges (DefaultCapacity when <= 0), compiling with compile
// (tdx.Compile when nil).
func NewRegistry(capacity int, compile CompileFunc) *Registry {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	if compile == nil {
		compile = tdx.Compile
	}
	return &Registry{
		compile:  compile,
		capacity: capacity,
		entries:  make(map[string]*list.Element),
		order:    list.New(),
		rawIndex: make(map[string]string),
		inflight: make(map[string]*flight),
	}
}

// requestKey is the pre-compile identity of a registration: the mapping
// text plus the output-affecting option fingerprint.
func requestKey(text string, opts []tdx.Option) string {
	h := sha256.New()
	h.Write([]byte(text))
	h.Write([]byte{0})
	h.Write([]byte(tdx.OptionsFingerprint(opts...)))
	return hex.EncodeToString(h.Sum(nil))
}

// Register resolves a mapping text (plus compile options) to its entry,
// compiling at most once per distinct text: a cache hit returns the
// existing entry, a concurrent duplicate waits for the in-flight
// compile, and only a genuinely new text pays for compilation. cached
// reports whether an already-registered entry served the call.
//
// ctx bounds this caller's wait, not the compilation: when ctx expires
// the call returns ctx's error immediately, while the compile (which is
// not cancelable mid-flight) finishes on its own goroutine and
// publishes its entry for later registrations — abandoned work is
// still deduplicated, never repeated.
func (r *Registry) Register(ctx context.Context, text string, opts ...tdx.Option) (*Entry, bool, error) {
	raw := requestKey(text, opts)
	r.mu.Lock()
	// Fast path: this exact request resolved before and the entry is
	// still resident.
	if hash, ok := r.rawIndex[raw]; ok {
		if el, ok := r.entries[hash]; ok {
			r.touchLocked(el)
			e := el.Value.(*Entry)
			r.mu.Unlock()
			return e, true, nil
		}
		// The entry was evicted since; recompile below.
		delete(r.rawIndex, raw)
	}
	fl, ok := r.inflight[raw]
	if !ok {
		// This caller starts the (sole) compile for this request key. It
		// runs detached so an impatient caller's ctx cannot orphan the
		// other waiters or waste the work.
		fl = &flight{done: make(chan struct{})}
		r.inflight[raw] = fl
		go r.compileFlight(fl, raw, text, opts)
	}
	r.mu.Unlock()
	select {
	case <-fl.done:
		return fl.entry, fl.cached, fl.err
	case <-ctx.Done():
		return nil, false, fmt.Errorf("server: registration abandoned (the compile continues and will be cached): %w", ctx.Err())
	}
}

// compileFlight performs one deduplicated compilation and publishes the
// result into the registry and onto the flight.
func (r *Registry) compileFlight(fl *flight, raw, text string, opts []tdx.Option) {
	ex, err := r.compile(text, opts...)

	r.mu.Lock()
	r.compiles++
	delete(r.inflight, raw)
	if err != nil {
		r.mu.Unlock()
		fl.err = err
		close(fl.done)
		return
	}
	hash := ex.Fingerprint()
	if el, ok := r.entries[hash]; ok {
		// A differently-formatted text compiled to an already-registered
		// exchange: keep the resident entry (its Exchange may be warm) and
		// let this request key point at it.
		r.touchLocked(el)
		fl.entry, fl.cached = el.Value.(*Entry), true
	} else {
		fl.entry = &Entry{Hash: hash, Exchange: ex, Info: ex.Info(), Registered: time.Now()}
		r.entries[hash] = r.order.PushFront(fl.entry)
		r.evictLocked()
	}
	e := fl.entry
	e.rawKeys = append(e.rawKeys, raw)
	r.rawIndex[raw] = hash
	// Bound the raw-key index per entry: a client that varies its text
	// cosmetically on every registration (embedded timestamps, generated
	// comments) keeps hitting one hot canonical entry that is never
	// evicted, so without a cap its raw keys — and rawIndex — would grow
	// with registration traffic. Beyond the cap the oldest raw key is
	// forgotten; re-sending that exact text later just recompiles.
	if len(e.rawKeys) > maxRawKeysPerEntry {
		delete(r.rawIndex, e.rawKeys[0])
		e.rawKeys = append(e.rawKeys[:0], e.rawKeys[1:]...)
	}
	r.mu.Unlock()
	close(fl.done)
}

// RegisterReplay compiles and registers a mapping synchronously without
// counting toward Compiles — the warm-start path. Compiles is the
// request-driven compilation counter (what a restarted daemon's clients
// would have paid again), so boot-time replays of the persisted
// manifest must not inflate it: a warm-started daemon whose first
// request needs no compile reports compiles == 0.
func (r *Registry) RegisterReplay(text string, opts ...tdx.Option) (*Entry, error) {
	ex, err := r.compile(text, opts...)
	if err != nil {
		return nil, err
	}
	raw := requestKey(text, opts)
	r.mu.Lock()
	defer r.mu.Unlock()
	hash := ex.Fingerprint()
	if el, ok := r.entries[hash]; ok {
		r.touchLocked(el)
		return el.Value.(*Entry), nil
	}
	e := &Entry{Hash: hash, Exchange: ex, Info: ex.Info(), Registered: time.Now(), rawKeys: []string{raw}}
	r.entries[hash] = r.order.PushFront(e)
	r.rawIndex[raw] = hash
	r.evictLocked()
	return e, nil
}

// maxRawKeysPerEntry caps how many distinct text variants keep
// pre-compile cache hits per canonical entry; total rawIndex size is
// then bounded by capacity × this.
const maxRawKeysPerEntry = 8

// Get resolves a fingerprint to its entry, marking it most recently
// used.
func (r *Registry) Get(hash string) (*Entry, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	el, ok := r.entries[hash]
	if !ok {
		return nil, false
	}
	r.touchLocked(el)
	return el.Value.(*Entry), true
}

// Entries returns the resident entries, most recently used first.
func (r *Registry) Entries() []*Entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Entry, 0, r.order.Len())
	for el := r.order.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*Entry))
	}
	return out
}

// Len returns the number of resident entries.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.order.Len()
}

// Capacity returns the registry's LRU bound.
func (r *Registry) Capacity() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.capacity
}

// Compiles returns the total number of compilations performed (including
// failed ones) — the singleflight and cache effectiveness counter.
func (r *Registry) Compiles() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.compiles
}

// Evicted returns the number of entries dropped by the LRU bound.
func (r *Registry) Evicted() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.evicted
}

// touchLocked marks an element most recently used.
func (r *Registry) touchLocked(el *list.Element) { r.order.MoveToFront(el) }

// evictLocked drops least-recently-used entries until the capacity
// holds.
func (r *Registry) evictLocked() {
	for r.order.Len() > r.capacity {
		el := r.order.Back()
		e := el.Value.(*Entry)
		r.order.Remove(el)
		delete(r.entries, e.Hash)
		for _, raw := range e.rawKeys {
			delete(r.rawIndex, raw)
		}
		r.evicted++
	}
}
