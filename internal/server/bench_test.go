package server

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// BenchmarkServerRun measures one exchange request against a warm
// registry entry — the daemon's steady-state unit of work: resolve the
// hash, decode the request-scoped source, chase it with a per-run
// interner, and encode solution + stats. ServeHTTP is driven directly
// (no sockets), so the number is the server-path cost on top of the
// engine, not the kernel's.
func BenchmarkServerRun(b *testing.B) {
	s := mustNew(b, Config{})
	h := s.Handler()
	hash := register(b, h, readTestdata(b, "employment.tdx"))
	facts := readTestdata(b, "employment.facts")
	target := "/v1/exchanges/" + hash + "/run"

	b.Run("sequential", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rec := do(h, "POST", target, "", facts)
			if rec.Code != http.StatusOK {
				b.Fatalf("status %d: %s", rec.Code, rec.Body)
			}
		}
	})

	// The shared-exchange contract under load: many goroutines, one
	// compiled entry, per-run interners.
	b.Run("parallel", func(b *testing.B) {
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				req := httptest.NewRequest("POST", target, strings.NewReader(facts))
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					b.Fatalf("status %d: %s", rec.Code, rec.Body)
				}
			}
		})
	})
}

// BenchmarkServerRegisterCached measures the raw-key cache hit: the
// by-far common case of a client re-sending a known mapping.
func BenchmarkServerRegisterCached(b *testing.B) {
	s := mustNew(b, Config{})
	h := s.Handler()
	text := readTestdata(b, "employment.tdx")
	register(b, h, text)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := do(h, "POST", "/v1/mappings", "", text)
		if rec.Code != http.StatusOK {
			b.Fatalf("status %d", rec.Code)
		}
	}
}
