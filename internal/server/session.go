package server

import (
	"container/list"
	"crypto/rand"
	"encoding/hex"
	"sync"
	"time"

	tdx "repro"
)

// Incremental exchange sessions: a session pins a frozen base solution
// (and the chase state its exchange retained for it) so follow-up
// deltas run through tdx.RunDelta instead of re-chasing the base. The
// session store mirrors the mapping registry's discipline — LRU-bounded
// with eviction counters — because a live session is the daemon's other
// structural memory cost: each one holds a solution plus its retained
// source, normalized source, and pre-egd intermediate.

// DefaultMaxSessions bounds the session store when the configuration
// does not.
const DefaultMaxSessions = 64

// Session is one live incremental-exchange session. The embedded mutex
// serializes deltas: each delta's base is the previous solution, so two
// concurrent posts to one session apply in some order, never to the
// same base.
type Session struct {
	ID      string
	Entry   *Entry // the compiled exchange the session runs against
	Created time.Time

	mu     sync.Mutex
	sol    *tdx.Solution
	deltas int64 // deltas applied so far
}

// Solution returns the session's current solution.
func (s *Session) Solution() *tdx.Solution {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sol
}

// Deltas returns how many deltas have been applied.
func (s *Session) Deltas() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.deltas
}

// SessionStore is an LRU-bounded store of live sessions. All methods
// are safe for concurrent use.
type SessionStore struct {
	mu       sync.Mutex
	capacity int
	entries  map[string]*list.Element // id → element holding *Session
	order    *list.List               // front = most recently used
	evicted  int64
	onEvict  func(*Session) // see OnEvict
}

// OnEvict installs a hook invoked (outside the store's lock) for every
// session dropped by the LRU bound — the persistence layer uses it to
// delete the evicted session's snapshot file. Explicit Delete does not
// trigger it; the deleting caller already knows the id. Set before the
// store is shared.
func (st *SessionStore) OnEvict(fn func(*Session)) { st.onEvict = fn }

// NewSessionStore returns a store holding at most capacity live
// sessions (DefaultMaxSessions when <= 0).
func NewSessionStore(capacity int) *SessionStore {
	if capacity <= 0 {
		capacity = DefaultMaxSessions
	}
	return &SessionStore{
		capacity: capacity,
		entries:  make(map[string]*list.Element),
		order:    list.New(),
	}
}

// newSessionID returns a fresh opaque session id.
func newSessionID() string {
	var b [12]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is a broken platform; ids only need to be
		// unique within one process, so fall back to time.
		return hex.EncodeToString([]byte(time.Now().Format(time.RFC3339Nano)))
	}
	return hex.EncodeToString(b[:])
}

// Add registers a new session over the given entry and base solution,
// evicting the least-recently-used session beyond the capacity.
func (st *SessionStore) Add(entry *Entry, sol *tdx.Solution) *Session {
	return st.AddWithID(newSessionID(), entry, sol, 0)
}

// AddWithID registers a session under a caller-chosen id with a
// starting delta count — the warm-start resume path, which must revive
// sessions under the ids clients already hold. An id collision replaces
// the existing session.
func (st *SessionStore) AddWithID(id string, entry *Entry, sol *tdx.Solution, deltas int64) *Session {
	sess := &Session{ID: id, Entry: entry, Created: time.Now(), sol: sol, deltas: deltas}
	var dropped []*Session
	st.mu.Lock()
	if el, ok := st.entries[id]; ok {
		st.order.Remove(el)
		delete(st.entries, id)
	}
	st.entries[sess.ID] = st.order.PushFront(sess)
	for st.order.Len() > st.capacity {
		el := st.order.Back()
		old := el.Value.(*Session)
		st.order.Remove(el)
		delete(st.entries, old.ID)
		st.evicted++
		dropped = append(dropped, old)
	}
	fn := st.onEvict
	st.mu.Unlock()
	if fn != nil {
		for _, old := range dropped {
			fn(old)
		}
	}
	return sess
}

// Get resolves a session id, marking it most recently used.
func (st *SessionStore) Get(id string) (*Session, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	el, ok := st.entries[id]
	if !ok {
		return nil, false
	}
	st.order.MoveToFront(el)
	return el.Value.(*Session), true
}

// Delete drops a session, reporting whether it was live.
func (st *SessionStore) Delete(id string) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	el, ok := st.entries[id]
	if !ok {
		return false
	}
	st.order.Remove(el)
	delete(st.entries, id)
	return true
}

// Len returns the number of live sessions.
func (st *SessionStore) Len() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.order.Len()
}

// Capacity returns the store's LRU bound.
func (st *SessionStore) Capacity() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.capacity
}

// Evicted returns the number of sessions dropped by the LRU bound.
func (st *SessionStore) Evicted() int64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.evicted
}
