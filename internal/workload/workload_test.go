package workload

import (
	"errors"
	"testing"

	"repro/internal/chase"
	"repro/internal/interval"
	"repro/internal/logic"
	"repro/internal/normalize"
	"repro/internal/paperex"
	"repro/internal/query"
	"repro/internal/value"
	"repro/internal/verify"
)

func TestEmploymentDeterministic(t *testing.T) {
	cfg := DefaultEmployment()
	cfg.Persons = 20
	a := Employment(cfg)
	b := Employment(cfg)
	if !a.Equal(b) {
		t.Fatal("generator not deterministic")
	}
	cfg.Seed = 2
	c := Employment(cfg)
	if a.Equal(c) {
		t.Fatal("seed has no effect")
	}
	if a.Len() == 0 || !a.IsComplete() {
		t.Fatal("bad instance")
	}
}

func TestEmploymentChasesClean(t *testing.T) {
	cfg := DefaultEmployment()
	cfg.Persons = 30
	cfg.Conflicts = 0
	ic := Employment(cfg)
	m := paperex.EmploymentMapping()
	jc, stats, err := chase.Concrete(ic, m, nil)
	if err != nil {
		t.Fatal(err)
	}
	if jc.Len() == 0 || stats.TGDFires == 0 {
		t.Fatal("chase produced nothing")
	}
	if ok, why := verify.IsSolution(ic.Abstract(), jc.Abstract(), m); !ok {
		t.Fatalf("not a solution: %s", why)
	}
}

func TestEmploymentConflictsFail(t *testing.T) {
	cfg := DefaultEmployment()
	cfg.Persons = 10
	cfg.Conflicts = 1
	ic := Employment(cfg)
	if _, _, err := chase.Concrete(ic, paperex.EmploymentMapping(), nil); !errors.Is(err, chase.ErrNoSolution) {
		t.Fatalf("conflict workload should fail the chase, got %v", err)
	}
}

func TestMedicalWorkload(t *testing.T) {
	m := MedicalMapping()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	ic := Medical(MedicalConfig{Seed: 3, Patients: 25, Span: 60})
	if !Medical(MedicalConfig{Seed: 3, Patients: 25, Span: 60}).Equal(ic) {
		t.Fatal("not deterministic")
	}
	jc, _, err := chase.Concrete(ic, m, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Treatments pair drugs with diagnoses; charts exist for admissions.
	q := query.CQ{Name: "q", Head: []string{"p"}, Body: logic.Conjunction{
		logic.NewAtom("Chart", logic.Var("p"), logic.Var("w"), logic.Var("d"))}}
	u, _ := query.NewUCQ("q", q)
	if query.NaiveEvalConcrete(u, jc) == nil {
		t.Fatal("query failed")
	}
}

func TestTaxiWorkload(t *testing.T) {
	m := TaxiMapping()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	ic := Taxi(TaxiConfig{Seed: 5, Drivers: 15, Cabs: 6, Span: 40})
	jc, _, err := chase.Concrete(ic, m, nil)
	if err != nil {
		t.Fatalf("taxi chase failed: %v", err)
	}
	if jc.Len() == 0 {
		t.Fatal("no trips generated")
	}
	if ok, why := verify.IsSolution(ic.Abstract(), jc.Abstract(), m); !ok {
		t.Fatalf("not a solution: %s", why)
	}
}

func TestStaircaseWorstCase(t *testing.T) {
	// The staircase drives smart normalization to its quadratic bound:
	// with n facts there are 2n−1 endpoint cuts; each fact fragments into
	// ~n pieces, totaling Θ(n²).
	n := 20
	ic := Staircase(n)
	out := normalize.Smart(ic, StaircasePhi())
	if out.Len() <= n*(n/2) {
		t.Fatalf("staircase did not explode: %d facts from %d", out.Len(), n)
	}
	if out.Len() > normalize.FragmentBound(n) {
		t.Fatalf("exceeded Theorem 13 bound: %d > %d", out.Len(), normalize.FragmentBound(n))
	}
	if !normalize.HasEmptyIntersectionProperty(out, StaircasePhi()) {
		t.Fatal("staircase output not normalized")
	}
}

func TestNestedAndDisjointShapes(t *testing.T) {
	nested := Nested(10)
	if nested.Len() != 10 {
		t.Fatal("nested size")
	}
	out := normalize.Smart(nested, StaircasePhi())
	if out.Len() <= 10 {
		t.Fatal("nested should fragment")
	}
	// Disjoint clusters stay cheap: each cluster fragments independently.
	dj := DisjointRuns(40, 8)
	outDj := normalize.Smart(dj, StaircasePhi())
	outStair := normalize.Smart(Staircase(40), StaircasePhi())
	if outDj.Len() >= outStair.Len() {
		t.Fatalf("disjoint (%d) should fragment less than staircase (%d)", outDj.Len(), outStair.Len())
	}
}

func TestNullHeavy(t *testing.T) {
	var g value.NullGen
	ic := NullHeavy(5, 4, &g)
	if ic.Len() != 20 {
		t.Fatalf("size = %d", ic.Len())
	}
	for _, f := range ic.Facts() {
		if err := f.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	// Within each group the null facts and the constant fact share
	// (name, company) and interval, so the employment egd must merge
	// every null into the constant.
	groups := 0
	for _, f := range ic.Facts() {
		if !f.HasNulls() {
			groups++
		}
	}
	if groups != 5 {
		t.Fatalf("constant anchors = %d, want 5", groups)
	}
}

func TestEgdStress(t *testing.T) {
	m := EgdStressMapping(4)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	ic := EgdStress(6, 4)
	if ic.Len() != 24 {
		t.Fatalf("size = %d", ic.Len())
	}
	jc, stats, err := chase.Concrete(ic, m, nil)
	if err != nil {
		t.Fatal(err)
	}
	// k nulls per group merge into one: 3 merges per group.
	if stats.EgdMerges != 18 {
		t.Fatalf("merges = %d, want 18 (stats %+v)", stats.EgdMerges, stats)
	}
	// One Emp fact per group survives, plus k witness facts per group.
	emp := 0
	for _, f := range jc.Facts() {
		if f.Rel == "Emp" {
			emp++
		}
	}
	if emp != 6 {
		t.Fatalf("Emp facts = %d, want one per group:\n%s", emp, jc)
	}
}

func TestPointwiseAgreesWithSegmentChase(t *testing.T) {
	ic := Employment(EmploymentConfig{Seed: 9, Persons: 6, JobsPerPerson: 2, SalaryCoverage: 0.8, Span: 20})
	m := paperex.EmploymentMapping()
	pts, _, err := chase.Pointwise(ic, m, 30, nil)
	if err != nil {
		t.Fatal(err)
	}
	ja, _, err := chase.Abstract(ic.Abstract(), m, nil)
	if err != nil {
		t.Fatal(err)
	}
	for tp, snap := range pts {
		seg := ja.Snapshot(interval.Time(tp))
		if snap.Len() != seg.Len() {
			t.Fatalf("pointwise and segment chase disagree at %d: %s vs %s", tp, snap, seg)
		}
	}
}

func TestDilatePreservesStructure(t *testing.T) {
	ic := Employment(EmploymentConfig{Seed: 9, Persons: 4, JobsPerPerson: 2, SalaryCoverage: 1, Span: 20})
	d := chase.Dilate(ic, 10)
	if d.Len() != ic.Len() {
		t.Fatal("dilation changed fact count")
	}
	m := paperex.EmploymentMapping()
	a, _, errA := chase.Concrete(ic, m, nil)
	b, _, errB := chase.Concrete(d, m, nil)
	if (errA == nil) != (errB == nil) {
		t.Fatalf("dilation changed failure: %v vs %v", errA, errB)
	}
	if errA == nil && a.Len() != b.Len() {
		t.Fatalf("dilation changed solution size: %d vs %d", a.Len(), b.Len())
	}
}
