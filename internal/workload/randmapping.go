package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/dependency"
	"repro/internal/fact"
	"repro/internal/instance"
	"repro/internal/interval"
	"repro/internal/logic"
	"repro/internal/paperex"
	"repro/internal/schema"
	"repro/internal/value"
)

// RandomMapping generates a small random but always valid data exchange
// setting: 1–3 source relations, 1–2 target relations, 1–3 s-t tgds with
// shared variables and occasional existentials, and 0–2 egds. Used by
// the randomized Figure 10 commutativity property test to cover mapping
// shapes far beyond the paper's running example.
func RandomMapping(r *rand.Rand) *dependency.Mapping {
	nSrc := 1 + r.Intn(3)
	nTgt := 1 + r.Intn(2)
	src, _ := schema.New()
	tgt, _ := schema.New()
	srcRels := make([]schema.Relation, nSrc)
	tgtRels := make([]schema.Relation, nTgt)
	for i := range srcRels {
		attrs := make([]string, 1+r.Intn(2))
		for j := range attrs {
			attrs[j] = fmt.Sprintf("a%d", j)
		}
		srcRels[i] = schema.MustRelation(fmt.Sprintf("S%d", i), attrs...)
		if err := src.Add(srcRels[i]); err != nil {
			panic(err)
		}
	}
	for i := range tgtRels {
		attrs := make([]string, 1+r.Intn(3))
		for j := range attrs {
			attrs[j] = fmt.Sprintf("a%d", j)
		}
		tgtRels[i] = schema.MustRelation(fmt.Sprintf("T%d", i), attrs...)
		if err := tgt.Add(tgtRels[i]); err != nil {
			panic(err)
		}
	}
	m := &dependency.Mapping{Source: src, Target: tgt}

	varPool := []string{"x", "y", "z"}
	nTgd := 1 + r.Intn(3)
	for t := 0; t < nTgd; t++ {
		// Body: 1–2 source atoms over a small shared variable pool.
		var body logic.Conjunction
		bodyVars := map[string]bool{}
		for a := 0; a < 1+r.Intn(2); a++ {
			rel := srcRels[r.Intn(nSrc)]
			terms := make([]logic.Term, rel.Arity())
			for i := range terms {
				v := varPool[r.Intn(len(varPool))]
				terms[i] = logic.Var(v)
				bodyVars[v] = true
			}
			body = append(body, logic.Atom{Rel: rel.Name, Terms: terms})
		}
		var bvList []string
		for v := range bodyVars {
			bvList = append(bvList, v)
		}
		// Head: 1–2 target atoms using body variables and occasionally a
		// fresh existential.
		var head logic.Conjunction
		exName := fmt.Sprintf("e%d", t)
		for a := 0; a < 1+r.Intn(2); a++ {
			rel := tgtRels[r.Intn(nTgt)]
			terms := make([]logic.Term, rel.Arity())
			for i := range terms {
				if r.Intn(4) == 0 {
					terms[i] = logic.Var(exName) // existential
				} else {
					terms[i] = logic.Var(bvList[r.Intn(len(bvList))])
				}
			}
			head = append(head, logic.Atom{Rel: rel.Name, Terms: terms})
		}
		m.TGDs = append(m.TGDs, dependency.TGD{Name: fmt.Sprintf("tgd%d", t), Body: body, Head: head})
	}

	for e := 0; e < r.Intn(3); e++ {
		// Egd over one target relation of arity ≥ 2: two atoms sharing the
		// leading attributes, equating the last.
		rel := tgtRels[r.Intn(nTgt)]
		if rel.Arity() < 2 {
			continue
		}
		t1 := make([]logic.Term, rel.Arity())
		t2 := make([]logic.Term, rel.Arity())
		for i := 0; i < rel.Arity()-1; i++ {
			v := fmt.Sprintf("k%d", i)
			t1[i], t2[i] = logic.Var(v), logic.Var(v)
		}
		t1[rel.Arity()-1] = logic.Var("u")
		t2[rel.Arity()-1] = logic.Var("w")
		m.EGDs = append(m.EGDs, dependency.EGD{
			Name: fmt.Sprintf("egd%d", e),
			Body: logic.Conjunction{
				{Rel: rel.Name, Terms: t1},
				{Rel: rel.Name, Terms: t2},
			},
			X1: "u", X2: "w",
		})
	}
	if err := m.Validate(); err != nil {
		panic(fmt.Sprintf("workload: generated invalid mapping: %v", err))
	}
	return m
}

// RandomInstanceFor generates a small complete source instance for the
// given mapping: nFacts facts over random source relations with short
// intervals drawn from a tiny constant pool, so that joins, overlaps,
// and egd conflicts all occur with useful frequency.
func RandomInstanceFor(r *rand.Rand, m *dependency.Mapping, nFacts int) *instance.Concrete {
	ic := instance.NewConcrete(m.Source)
	names := m.Source.Names()
	consts := []string{"a", "b", "c"}
	for i := 0; i < nFacts; i++ {
		rel, _ := m.Source.Relation(names[r.Intn(len(names))])
		args := make([]string, rel.Arity())
		for j := range args {
			args[j] = consts[r.Intn(len(consts))]
		}
		s := interval.Time(r.Intn(8))
		var iv interval.Interval
		if r.Intn(8) == 0 {
			iv = interval.Interval{Start: s, End: interval.Infinity}
		} else {
			iv = interval.MustNew(s, s+1+interval.Time(r.Intn(5)))
		}
		vals := make([]value.Value, len(args))
		for j, s := range args {
			vals[j] = paperex.C(s)
		}
		ic.MustInsert(fact.NewC(rel.Name, iv, vals...))
	}
	return ic
}
