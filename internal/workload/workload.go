// Package workload generates deterministic synthetic temporal instances
// for the experiment harness and benchmarks: employment histories (the
// paper's running domain, scaled up), hospital records and taxi-ride logs
// (the integration scenarios the paper's introduction motivates), and the
// adversarial overlap patterns that drive normalization to its Theorem 13
// worst case. All generators are pure functions of their configuration,
// so every experiment is reproducible.
package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/dependency"
	"repro/internal/fact"
	"repro/internal/instance"
	"repro/internal/interval"
	"repro/internal/logic"
	"repro/internal/paperex"
	"repro/internal/schema"
	"repro/internal/value"
)

// EmploymentConfig parameterizes the employment-history generator.
type EmploymentConfig struct {
	Seed           int64
	Persons        int
	JobsPerPerson  int     // consecutive employment periods per person
	SalaryCoverage float64 // fraction of persons with salary facts [0,1]
	Span           interval.Time
	Conflicts      int // persons given two overlapping salaries (chase failure injectors)
}

// DefaultEmployment returns a medium-sized configuration.
func DefaultEmployment() EmploymentConfig {
	return EmploymentConfig{Seed: 1, Persons: 100, JobsPerPerson: 4, SalaryCoverage: 0.7, Span: 100}
}

// Employment generates a source instance over the paper's employment
// schema (E(name, company), S(name, salary)). Employment periods per
// person are consecutive with occasional gaps; salary facts cover a
// random sub-period, producing the interval misalignments that make
// normalization non-trivial.
func Employment(cfg EmploymentConfig) *instance.Concrete {
	r := rand.New(rand.NewSource(cfg.Seed))
	m := paperex.EmploymentMapping()
	ic := instance.NewConcrete(m.Source)
	if cfg.Span < 10 {
		cfg.Span = 10
	}
	for p := 0; p < cfg.Persons; p++ {
		name := fmt.Sprintf("p%d", p)
		t := interval.Time(r.Intn(int(cfg.Span / 4)))
		for j := 0; j < cfg.JobsPerPerson; j++ {
			dur := 1 + interval.Time(r.Intn(int(cfg.Span/4)))
			end := t + dur
			company := fmt.Sprintf("c%d", r.Intn(cfg.Persons/2+1))
			if j == cfg.JobsPerPerson-1 && r.Intn(3) == 0 {
				ic.MustInsert(fact.NewC("E", interval.Interval{Start: t, End: interval.Infinity},
					paperex.C(name), paperex.C(company)))
				break
			}
			ic.MustInsert(fact.NewC("E", interval.MustNew(t, end), paperex.C(name), paperex.C(company)))
			t = end + interval.Time(r.Intn(3)) // occasional gap
		}
		if r.Float64() < cfg.SalaryCoverage {
			s := interval.Time(r.Intn(int(cfg.Span / 2)))
			e := s + 1 + interval.Time(r.Intn(int(cfg.Span/2)))
			sal := fmt.Sprintf("%dk", 10+r.Intn(90))
			ic.MustInsert(fact.NewC("S", interval.MustNew(s, e), paperex.C(name), paperex.C(sal)))
		}
	}
	for k := 0; k < cfg.Conflicts && k < cfg.Persons; k++ {
		name := fmt.Sprintf("p%d", k)
		// Two different salaries over overlapping periods, guaranteed to
		// overlap an employment period starting at 0.
		ic.MustInsert(fact.NewC("E", interval.MustNew(0, 10), paperex.C(name), paperex.C("clashCo")))
		ic.MustInsert(fact.NewC("S", interval.MustNew(0, 6), paperex.C(name), paperex.C("1k")))
		ic.MustInsert(fact.NewC("S", interval.MustNew(4, 10), paperex.C(name), paperex.C("2k")))
	}
	return ic
}

// MedicalMapping returns the hospital-records setting: admissions,
// diagnoses, and prescriptions are integrated into charts and treatment
// records; a chart determines one primary diagnosis per ward stay.
func MedicalMapping() *dependency.Mapping {
	src := schema.MustNew(
		schema.MustRelation("Admission", "patient", "ward"),
		schema.MustRelation("Diagnosis", "patient", "disease"),
		schema.MustRelation("Prescription", "patient", "drug"),
	)
	tgt := schema.MustNew(
		schema.MustRelation("Chart", "patient", "ward", "disease"),
		schema.MustRelation("Treatment", "patient", "drug", "disease"),
	)
	v := logic.Var
	return &dependency.Mapping{
		Source: src,
		Target: tgt,
		TGDs: []dependency.TGD{
			{
				Name: "admit-chart",
				Body: logic.Conjunction{logic.NewAtom("Admission", v("p"), v("w"))},
				Head: logic.Conjunction{logic.NewAtom("Chart", v("p"), v("w"), v("d"))},
			},
			{
				Name: "admit-diag-chart",
				Body: logic.Conjunction{
					logic.NewAtom("Admission", v("p"), v("w")),
					logic.NewAtom("Diagnosis", v("p"), v("d")),
				},
				Head: logic.Conjunction{logic.NewAtom("Chart", v("p"), v("w"), v("d"))},
			},
			{
				Name: "prescribe-treat",
				Body: logic.Conjunction{
					logic.NewAtom("Prescription", v("p"), v("dr")),
					logic.NewAtom("Diagnosis", v("p"), v("d")),
				},
				Head: logic.Conjunction{logic.NewAtom("Treatment", v("p"), v("dr"), v("d"))},
			},
		},
		EGDs: []dependency.EGD{
			{
				Name: "one-primary-diagnosis",
				Body: logic.Conjunction{
					logic.NewAtom("Chart", v("p"), v("w"), v("d")),
					logic.NewAtom("Chart", v("p"), v("w"), v("d2")),
				},
				X1: "d", X2: "d2",
			},
		},
	}
}

// MedicalConfig parameterizes the hospital-record generator.
type MedicalConfig struct {
	Seed     int64
	Patients int
	Span     interval.Time
}

// Medical generates admissions (per-stay intervals), diagnoses (sparser,
// longer validity), and prescriptions, with the interval misalignments
// typical of clinical data.
func Medical(cfg MedicalConfig) *instance.Concrete {
	r := rand.New(rand.NewSource(cfg.Seed))
	m := MedicalMapping()
	ic := instance.NewConcrete(m.Source)
	if cfg.Span < 20 {
		cfg.Span = 20
	}
	wards := []string{"cardio", "neuro", "ortho", "icu"}
	diseases := []string{"d-flu", "d-fracture", "d-arrhythmia", "d-migraine"}
	drugs := []string{"aspirin", "betablocker", "ibuprofen"}
	for p := 0; p < cfg.Patients; p++ {
		name := fmt.Sprintf("pat%d", p)
		stays := 1 + r.Intn(3)
		t := interval.Time(r.Intn(int(cfg.Span / 2)))
		for s := 0; s < stays; s++ {
			dur := 1 + interval.Time(r.Intn(int(cfg.Span/5)))
			ic.MustInsert(fact.NewC("Admission", interval.MustNew(t, t+dur),
				paperex.C(name), paperex.C(wards[r.Intn(len(wards))])))
			t += dur + interval.Time(1+r.Intn(4))
		}
		if r.Intn(4) > 0 {
			s := interval.Time(r.Intn(int(cfg.Span / 2)))
			e := s + 2 + interval.Time(r.Intn(int(cfg.Span/2)))
			ic.MustInsert(fact.NewC("Diagnosis", interval.MustNew(s, e),
				paperex.C(name), paperex.C(diseases[r.Intn(len(diseases))])))
		}
		if r.Intn(3) > 0 {
			s := interval.Time(r.Intn(int(cfg.Span / 2)))
			e := s + 1 + interval.Time(r.Intn(int(cfg.Span/3)))
			ic.MustInsert(fact.NewC("Prescription", interval.MustNew(s, e),
				paperex.C(name), paperex.C(drugs[r.Intn(len(drugs))])))
		}
	}
	return ic
}

// TaxiMapping returns the ride-log setting: driver shifts and cab ride
// logs are integrated into per-driver trip records; a cab is in one zone
// at a time.
func TaxiMapping() *dependency.Mapping {
	src := schema.MustNew(
		schema.MustRelation("Shift", "driver", "cab"),
		schema.MustRelation("Ride", "cab", "zone"),
	)
	tgt := schema.MustNew(
		schema.MustRelation("Trip", "driver", "cab", "zone"),
	)
	v := logic.Var
	return &dependency.Mapping{
		Source: src,
		Target: tgt,
		TGDs: []dependency.TGD{
			{
				Name: "shift-trip",
				Body: logic.Conjunction{logic.NewAtom("Shift", v("d"), v("c"))},
				Head: logic.Conjunction{logic.NewAtom("Trip", v("d"), v("c"), v("z"))},
			},
			{
				Name: "shift-ride-trip",
				Body: logic.Conjunction{
					logic.NewAtom("Shift", v("d"), v("c")),
					logic.NewAtom("Ride", v("c"), v("z")),
				},
				Head: logic.Conjunction{logic.NewAtom("Trip", v("d"), v("c"), v("z"))},
			},
		},
		EGDs: []dependency.EGD{
			{
				Name: "one-zone-at-a-time",
				Body: logic.Conjunction{
					logic.NewAtom("Trip", v("d"), v("c"), v("z")),
					logic.NewAtom("Trip", v("d"), v("c"), v("z2")),
				},
				X1: "z", X2: "z2",
			},
		},
	}
}

// TaxiConfig parameterizes the ride-log generator.
type TaxiConfig struct {
	Seed    int64
	Drivers int
	Cabs    int
	Span    interval.Time
}

// Taxi generates shift and ride logs. Rides are consecutive short
// intervals per cab so the egd never fails, while shifts are long
// intervals overlapping many rides.
func Taxi(cfg TaxiConfig) *instance.Concrete {
	r := rand.New(rand.NewSource(cfg.Seed))
	m := TaxiMapping()
	ic := instance.NewConcrete(m.Source)
	if cfg.Cabs == 0 {
		cfg.Cabs = cfg.Drivers
	}
	if cfg.Span < 20 {
		cfg.Span = 20
	}
	for d := 0; d < cfg.Drivers; d++ {
		driver := fmt.Sprintf("drv%d", d)
		cab := fmt.Sprintf("cab%d", r.Intn(cfg.Cabs))
		s := interval.Time(r.Intn(int(cfg.Span / 2)))
		e := s + 4 + interval.Time(r.Intn(int(cfg.Span/2)))
		ic.MustInsert(fact.NewC("Shift", interval.MustNew(s, e), paperex.C(driver), paperex.C(cab)))
	}
	for c := 0; c < cfg.Cabs; c++ {
		cab := fmt.Sprintf("cab%d", c)
		t := interval.Time(r.Intn(4))
		for t < cfg.Span {
			dur := 1 + interval.Time(r.Intn(5))
			zone := fmt.Sprintf("z%d", r.Intn(12))
			ic.MustInsert(fact.NewC("Ride", interval.MustNew(t, t+dur), paperex.C(cab), paperex.C(zone)))
			t += dur // consecutive: a cab is in exactly one zone at a time
		}
	}
	return ic
}

// Staircase builds the Theorem 13 adversarial instance: n facts over one
// unary relation R with intervals [i, n+i), every pair properly
// overlapping. Against the self-join conjunction (StaircasePhi) the smart
// normalizer must fragment every fact at nearly every endpoint, reaching
// the O(n²) output bound.
func Staircase(n int) *instance.Concrete {
	ic := instance.NewConcrete(nil)
	for i := 0; i < n; i++ {
		ic.MustInsert(fact.NewC("R", interval.MustNew(interval.Time(i), interval.Time(n+i)),
			paperex.C(fmt.Sprintf("v%d", i))))
	}
	return ic
}

// StaircasePhi returns the self-join conjunction R(x,t) ∧ R(y,t) in
// concrete form.
func StaircasePhi() []logic.Conjunction {
	tv := logic.Var(dependency.TemporalVar)
	return []logic.Conjunction{{
		logic.Atom{Rel: "R", Terms: []logic.Term{logic.Var("x"), tv}},
		logic.Atom{Rel: "R", Terms: []logic.Term{logic.Var("y"), tv}},
	}}
}

// Nested builds n facts with intervals [i, 2n−i): each contains the next,
// another worst-case overlap pattern.
func Nested(n int) *instance.Concrete {
	ic := instance.NewConcrete(nil)
	for i := 0; i < n; i++ {
		ic.MustInsert(fact.NewC("R", interval.MustNew(interval.Time(i), interval.Time(2*n-i)),
			paperex.C(fmt.Sprintf("v%d", i))))
	}
	return ic
}

// DisjointRuns builds n facts split into k pairwise-disjoint clusters —
// the best case for the smart normalizer (components never merge across
// clusters).
func DisjointRuns(n, k int) *instance.Concrete {
	ic := instance.NewConcrete(nil)
	if k < 1 {
		k = 1
	}
	per := n / k
	if per < 1 {
		per = 1
	}
	stride := interval.Time(4 * per)
	for i := 0; i < n; i++ {
		cluster := interval.Time(i/per) * stride
		off := interval.Time(i % per)
		ic.MustInsert(fact.NewC("R", interval.MustNew(cluster+off, cluster+off+interval.Time(per)+1),
			paperex.C(fmt.Sprintf("v%d", i))))
	}
	return ic
}

// NullHeavy builds a target-style instance with many annotated nulls
// subject to the employment egd — the egd-strategy ablation workload.
// Every group of fanout facts shares (name, company) and one constant
// salary on equal intervals, so the chase must merge fanout−1 nulls per
// group into the constant.
func NullHeavy(groups, fanout int, gen *value.NullGen) *instance.Concrete {
	ic := instance.NewConcrete(nil)
	for g := 0; g < groups; g++ {
		iv := interval.MustNew(interval.Time(10*g), interval.Time(10*g+5))
		name := fmt.Sprintf("p%d", g)
		ic.MustInsert(fact.NewC("Emp", iv, paperex.C(name), paperex.C("co"), paperex.C("9k")))
		for f := 1; f < fanout; f++ {
			ic.MustInsert(fact.NewC("Emp", iv, paperex.C(name), paperex.C("co"), gen.FreshAnn(iv)))
		}
	}
	return ic
}

// EgdStressMapping returns a setting whose chase is dominated by egd
// merges: k source relations E0..Ek-1 each assert employment with an
// unknown salary recorded in a per-source witness relation Wi (so the
// extension check cannot subsume one tgd's head by another's), and the
// salary key forces the k fresh nulls per (name, company) group to
// collapse into one. Used by the egd-strategy ablation.
func EgdStressMapping(k int) *dependency.Mapping {
	src, _ := schema.New()
	tgt := schema.MustNew(schema.MustRelation("Emp", "name", "company", "salary"))
	v := logic.Var
	m := &dependency.Mapping{}
	for i := 0; i < k; i++ {
		rel := fmt.Sprintf("E%d", i)
		wit := fmt.Sprintf("W%d", i)
		if err := src.Add(schema.MustRelation(rel, "name", "company")); err != nil {
			panic(err)
		}
		if err := tgt.Add(schema.MustRelation(wit, "name", "salary")); err != nil {
			panic(err)
		}
		m.TGDs = append(m.TGDs, dependency.TGD{
			Name: rel + "-emp",
			Body: logic.Conjunction{logic.NewAtom(rel, v("n"), v("c"))},
			Head: logic.Conjunction{
				logic.NewAtom("Emp", v("n"), v("c"), v("s")),
				logic.NewAtom(wit, v("n"), v("s")),
			},
		})
	}
	m.Source = src
	m.Target = tgt
	m.EGDs = []dependency.EGD{{
		Name: "salary-key",
		Body: logic.Conjunction{
			logic.NewAtom("Emp", v("n"), v("c"), v("s")),
			logic.NewAtom("Emp", v("n"), v("c"), v("s2")),
		},
		X1: "s", X2: "s2",
	}}
	return m
}

// EgdStress generates a source for EgdStressMapping(k): groups disjoint
// (name, company, interval) groups, each present in all k source
// relations, so the chase creates k nulls per group and merges them.
func EgdStress(groups, k int) *instance.Concrete {
	m := EgdStressMapping(k)
	ic := instance.NewConcrete(m.Source)
	for g := 0; g < groups; g++ {
		iv := interval.MustNew(interval.Time(10*g), interval.Time(10*g+5))
		name := fmt.Sprintf("p%d", g)
		for i := 0; i < k; i++ {
			ic.MustInsert(fact.NewC(fmt.Sprintf("E%d", i), iv, paperex.C(name), paperex.C("co")))
		}
	}
	return ic
}
