package workload

import (
	"math/rand"
	"testing"
)

func TestRandomMappingAlwaysValid(t *testing.T) {
	r := rand.New(rand.NewSource(101))
	for i := 0; i < 500; i++ {
		m := RandomMapping(r) // panics internally when invalid
		if len(m.TGDs) == 0 {
			t.Fatal("mapping without tgds")
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("trial %d: %v", i, err)
		}
		// Safety: every tgd head variable is a body variable or a declared
		// existential of that tgd.
		for _, d := range m.TGDs {
			body := map[string]bool{}
			for _, v := range d.Body.Vars() {
				body[v] = true
			}
			ex := map[string]bool{}
			for _, v := range d.Existentials() {
				ex[v] = true
			}
			for _, v := range d.Head.Vars() {
				if !body[v] && !ex[v] {
					t.Fatalf("unsafe head variable %s in %v", v, d)
				}
			}
		}
	}
}

func TestRandomInstanceForMatchesSchema(t *testing.T) {
	r := rand.New(rand.NewSource(103))
	for i := 0; i < 200; i++ {
		m := RandomMapping(r)
		ic := RandomInstanceFor(r, m, 5)
		if ic.Len() == 0 {
			t.Fatal("empty instance")
		}
		for _, f := range ic.Facts() {
			rel, ok := m.Source.Relation(f.Rel)
			if !ok {
				t.Fatalf("fact over unknown relation %s", f.Rel)
			}
			if len(f.Args) != rel.Arity() {
				t.Fatalf("arity mismatch for %v", f)
			}
			if f.HasNulls() {
				t.Fatalf("source instance must be complete: %v", f)
			}
		}
	}
}
