// Package query implements query answering over the target schema
// (paper §5): unions of conjunctive queries, naïve evaluation on concrete
// solutions — the four-step q+(Jc)↓ procedure with normalization,
// null-freezing, evaluation, and null-dropping — and certain answers,
// which by Corollary 22 coincide with naïve evaluation on the c-chase
// result.
package query

import (
	"context"
	"fmt"

	"repro/internal/chase"
	"repro/internal/dependency"
	"repro/internal/fact"
	"repro/internal/instance"
	"repro/internal/logic"
	"repro/internal/normalize"
	"repro/internal/schema"
	"repro/internal/value"
)

// CQ is a conjunctive query q(x̄) :- body. Head lists the distinguished
// variables; Body is the non-temporal body over the target schema. The
// concrete form q+ appends the shared temporal variable to every atom and
// returns it as an extra answer column (the validity interval).
type CQ struct {
	Name string
	Head []string
	Body logic.Conjunction
}

// Validate checks safety: every head variable occurs in the body, and
// body relations/arities match the schema when one is given.
func (q CQ) Validate(sch *schema.Schema) error {
	if q.Name == "" {
		return fmt.Errorf("query: empty name")
	}
	if len(q.Body) == 0 {
		return fmt.Errorf("query %s: empty body", q.Name)
	}
	for _, h := range q.Head {
		if !q.Body.HasVar(h) {
			return fmt.Errorf("query %s: head variable %s does not occur in the body", q.Name, h)
		}
	}
	if sch != nil {
		for _, a := range q.Body {
			r, ok := sch.Relation(a.Rel)
			if !ok {
				return fmt.Errorf("query %s: unknown relation %s", q.Name, a.Rel)
			}
			if len(a.Terms) != r.Arity() {
				return fmt.Errorf("query %s: atom %s arity mismatch", q.Name, a)
			}
		}
	}
	return nil
}

// ConcreteBody returns the body of q+ with the shared temporal variable.
func (q CQ) ConcreteBody() logic.Conjunction {
	tgd := dependency.TGD{Body: q.Body}
	return tgd.ConcreteBody()
}

// String renders the query in rule form.
func (q CQ) String() string {
	head := q.Name + "("
	for i, h := range q.Head {
		if i > 0 {
			head += ", "
		}
		head += h
	}
	return head + ") :- " + q.Body.String()
}

// UCQ is a union of conjunctive queries with a common name and arity.
type UCQ struct {
	Name      string
	Disjuncts []CQ
}

// NewUCQ builds a validated union; all disjuncts must share name and
// arity.
func NewUCQ(name string, disjuncts ...CQ) (UCQ, error) {
	if len(disjuncts) == 0 {
		return UCQ{}, fmt.Errorf("query: union %s needs at least one disjunct", name)
	}
	arity := len(disjuncts[0].Head)
	for _, d := range disjuncts {
		if d.Name != name {
			return UCQ{}, fmt.Errorf("query: disjunct %s in union %s", d.Name, name)
		}
		if len(d.Head) != arity {
			return UCQ{}, fmt.Errorf("query %s: disjunct arity %d, want %d", name, len(d.Head), arity)
		}
	}
	return UCQ{Name: name, Disjuncts: disjuncts}, nil
}

// Arity returns the number of answer columns (excluding the interval).
func (u UCQ) Arity() int {
	if len(u.Disjuncts) == 0 {
		return 0
	}
	return len(u.Disjuncts[0].Head)
}

// Validate validates every disjunct.
func (u UCQ) Validate(sch *schema.Schema) error {
	if len(u.Disjuncts) == 0 {
		return fmt.Errorf("query: union %s is empty", u.Name)
	}
	for _, d := range u.Disjuncts {
		if err := d.Validate(sch); err != nil {
			return err
		}
	}
	return nil
}

// EvalSnapshot evaluates the union on one abstract snapshot under naïve
// semantics — nulls are treated as ordinary values during matching — and
// returns the distinct answer tuples. When certainOnly is set, tuples
// containing nulls are dropped (the ↓ operator), yielding q(db)↓.
func EvalSnapshot(u UCQ, snap *instance.Snapshot, certainOnly bool) []fact.Fact {
	seen := make(map[string]bool)
	var out []fact.Fact
	for _, q := range u.Disjuncts {
		logic.ForEach(snap.Store(), q.Body, nil, func(m logic.Match) bool {
			args := make([]value.Value, len(q.Head))
			hasNull := false
			for i, h := range q.Head {
				args[i] = m.Binding[h]
				if args[i].IsNullLike() {
					hasNull = true
				}
			}
			if certainOnly && hasNull {
				return true
			}
			f := fact.New(u.Name, args...)
			if k := f.Key(); !seen[k] {
				seen[k] = true
				out = append(out, f)
			}
			return true
		})
	}
	return out
}

// frozen tracks the fresh constants substituted for interval-annotated
// nulls in step 2 of naïve evaluation.
type frozen struct {
	consts map[value.Value]bool
}

// freezeNulls replaces every interval-annotated null with a fresh
// constant cn_{N,[s,e)}, injectively per (family, annotation) — the same
// unknown value occurring in several facts freezes to the same constant,
// so joins through it still succeed (naïve-table semantics).
func freezeNulls(c *instance.Concrete) (*instance.Concrete, *frozen) {
	fz := &frozen{consts: make(map[value.Value]bool)}
	out := instance.NewConcrete(c.Schema())
	for _, f := range c.Facts() {
		args := make([]value.Value, len(f.Args))
		for i, v := range f.Args {
			if v.Kind() == value.AnnNull {
				cv := value.NewConst("cn_" + v.String())
				fz.consts[cv] = true
				args[i] = cv
			} else {
				args[i] = v
			}
		}
		out.MustInsert(fact.CFact{Rel: f.Rel, Args: args, T: f.T})
	}
	return out, fz
}

func (fz *frozen) isFrozen(v value.Value) bool { return fz.consts[v] }

// NaiveEvalConcrete computes q+(Jc)↓ per §5: for each disjunct q′,
// (1) normalize Jc w.r.t. q′, (2) replace interval-annotated nulls with
// fresh constants, (3) evaluate q′+ finding all homomorphisms — the
// temporal variable maps to a time interval which becomes the answer's
// validity interval — and (4) drop tuples containing fresh constants.
// The union of the disjuncts' answers is returned as a coalesced concrete
// instance over the answer relation u.Name.
func NaiveEvalConcrete(u UCQ, jc *instance.Concrete) *instance.Concrete {
	out, _ := NaiveEvalCtx(context.Background(), u, jc) // Background never cancels
	return out
}

// NaiveEvalCtx is NaiveEvalConcrete under a context: the per-disjunct
// normalization and the homomorphism enumeration abort promptly with the
// context's error once ctx is done.
func NaiveEvalCtx(ctx context.Context, u UCQ, jc *instance.Concrete) (*instance.Concrete, error) {
	return NaiveEvalWorkers(ctx, u, jc, 1)
}

// NaiveEvalWorkers is NaiveEvalCtx with the per-disjunct normalization —
// the expensive step over a large solution — fanned out over workers
// shards (normalize.ForEgdPhaseWorkers); answers are byte-identical at
// any worker count. With workers ≥ 2 the parallel pass freezes the
// instances it enumerates, jc included, so jc must be owned by the
// caller or already frozen — the tdx facade evaluates frozen Solutions,
// which any number of concurrent evaluations may share.
func NaiveEvalWorkers(ctx context.Context, u UCQ, jc *instance.Concrete, workers int) (*instance.Concrete, error) {
	out := instance.NewConcrete(nil)
	for _, q := range u.Disjuncts {
		body := q.ConcreteBody()
		// Step 1 — normalize w.r.t. q′ and synchronize null families, so
		// that step 2 freezes one constant per unknown-per-time-range and
		// joins through a shared unknown still succeed.
		normed, err := normalize.ForEgdPhaseWorkers(ctx, jc, []logic.Conjunction{body}, normalize.StrategySmart, workers)
		if err != nil {
			return nil, err
		}
		frozenInst, fz := freezeNulls(normed) // step 2
		matches := 0
		var stepErr error
		logic.ForEach(frozenInst.Store(), body, nil, func(m logic.Match) bool { // step 3
			matches++
			if matches&63 == 0 {
				select {
				case <-ctx.Done():
					stepErr = fmt.Errorf("query: %w", ctx.Err())
					return false
				default:
				}
			}
			tv := m.Binding[dependency.TemporalVar]
			t, ok := tv.Interval()
			if !ok {
				return true
			}
			args := make([]value.Value, len(q.Head))
			dropped := false
			for i, h := range q.Head {
				args[i] = m.Binding[h]
				if fz.isFrozen(args[i]) { // step 4
					dropped = true
					break
				}
			}
			if !dropped {
				out.MustInsert(fact.NewC(u.Name, t, args...))
			}
			return true
		})
		if stepErr != nil {
			return nil, stepErr
		}
	}
	return out.Coalesce(), nil
}

// CertainAnswers computes certain(q, ⟦Ic⟧, M) by Corollary 22: run the
// c-chase to obtain a concrete universal solution, then naïvely evaluate
// the query on it. The error wraps chase.ErrNoSolution when the chase
// fails (no solution ⇒ certain answers are undefined; by convention every
// tuple is vacuously certain, which the caller must decide how to
// surface). Cancellation of opts.Ctx covers both stages.
func CertainAnswers(u UCQ, ic *instance.Concrete, m *dependency.Mapping, opts *chase.Options) (*instance.Concrete, error) {
	jc, _, err := chase.Concrete(ic, m, opts)
	if err != nil {
		return nil, err
	}
	ctx := context.Background()
	if opts != nil && opts.Ctx != nil {
		ctx = opts.Ctx
	}
	return NaiveEvalCtx(ctx, u, jc)
}

// CertainAbstract computes the sequence certain(q, Ja) — q(db)↓ per
// snapshot — for a finitely represented abstract instance, returned as a
// coalesced concrete instance over the answer relation (answers are
// constant tuples, so the concrete representation is exact). This is the
// right-hand side of Theorem 21.
func CertainAbstract(u UCQ, ja *instance.Abstract) *instance.Concrete {
	out := instance.NewConcrete(nil)
	for _, seg := range ja.Segments() {
		snap := ja.Snapshot(seg.Iv.Start)
		for _, ans := range EvalSnapshot(u, snap, true) {
			out.MustInsert(fact.NewC(u.Name, seg.Iv, ans.Args...))
		}
	}
	return out.Coalesce()
}
