package query

import (
	"math/rand"
	"testing"

	"repro/internal/chase"
	"repro/internal/fact"
	"repro/internal/instance"
	"repro/internal/interval"
	"repro/internal/logic"
	"repro/internal/paperex"
	"repro/internal/value"
)

// empQuery returns q(n, s) :- Emp(n, c, s): who earns what, when.
func empQuery(t *testing.T) UCQ {
	t.Helper()
	q := CQ{
		Name: "q",
		Head: []string{"n", "s"},
		Body: logic.Conjunction{logic.NewAtom("Emp", logic.Var("n"), logic.Var("c"), logic.Var("s"))},
	}
	u, err := NewUCQ("q", q)
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func chaseFigure4(t *testing.T) *instance.Concrete {
	t.Helper()
	jc, _, err := chase.Concrete(paperex.Figure4(), paperex.EmploymentMapping(), nil)
	if err != nil {
		t.Fatal(err)
	}
	return jc
}

func TestValidation(t *testing.T) {
	m := paperex.EmploymentMapping()
	good := CQ{Name: "q", Head: []string{"n"}, Body: logic.Conjunction{
		logic.NewAtom("Emp", logic.Var("n"), logic.Var("c"), logic.Var("s"))}}
	if err := good.Validate(m.Target); err != nil {
		t.Fatal(err)
	}
	unsafe := CQ{Name: "q", Head: []string{"zz"}, Body: good.Body}
	if unsafe.Validate(m.Target) == nil {
		t.Fatal("unsafe head variable accepted")
	}
	badRel := CQ{Name: "q", Head: []string{"n"}, Body: logic.Conjunction{
		logic.NewAtom("Nope", logic.Var("n"))}}
	if badRel.Validate(m.Target) == nil {
		t.Fatal("unknown relation accepted")
	}
	if _, err := NewUCQ("q"); err == nil {
		t.Fatal("empty union accepted")
	}
	if _, err := NewUCQ("q", good, CQ{Name: "q", Head: []string{"a", "b"}, Body: good.Body}); err == nil {
		t.Fatal("mixed arity union accepted")
	}
	if _, err := NewUCQ("q", CQ{Name: "other", Head: []string{"n"}, Body: good.Body}); err == nil {
		t.Fatal("mismatched disjunct name accepted")
	}
}

func TestNaiveEvalOnPaperSolution(t *testing.T) {
	// q(n, s) :- Emp(n, c, s) on the Figure 9 solution. Certain answers:
	// Ada earns 18k on [2013,inf), Bob earns 13k on [2015,2018). The
	// unknown-salary periods produce no certain answers.
	jc := chaseFigure4(t)
	u := empQuery(t)
	got := NaiveEvalConcrete(u, jc)
	iv, c, inf := paperex.Iv, paperex.C, paperex.Inf
	want := []fact.CFact{
		fact.NewC("q", iv(2013, inf), c("Ada"), c("18k")),
		fact.NewC("q", iv(2015, 2018), c("Bob"), c("13k")),
	}
	if got.Len() != len(want) {
		t.Fatalf("answers:\n%s\nwant %d rows", got, len(want))
	}
	for _, w := range want {
		if !got.Contains(w) {
			t.Fatalf("missing %v in:\n%s", w, got)
		}
	}
}

func TestJoinThroughNullSurvivesFreezing(t *testing.T) {
	// Naïve-table semantics: the same unknown value joins with itself.
	// q(n, n2) :- Emp(n, c, s) ∧ Emp(n2, c, s) with a shared annotated
	// null s must return (a, b) even though s is unknown.
	var g value.NullGen
	n := g.FreshAnn(paperex.Iv(1, 5))
	jc := instance.NewConcrete(nil)
	jc.MustInsert(fact.NewC("Emp", paperex.Iv(1, 5), paperex.C("a"), paperex.C("X"), n))
	jc.MustInsert(fact.NewC("Emp", paperex.Iv(1, 5), paperex.C("b"), paperex.C("X"), n))
	q := CQ{Name: "q", Head: []string{"n", "n2"}, Body: logic.Conjunction{
		logic.NewAtom("Emp", logic.Var("n"), logic.Var("c"), logic.Var("s")),
		logic.NewAtom("Emp", logic.Var("n2"), logic.Var("c"), logic.Var("s")),
	}}
	u, _ := NewUCQ("q", q)
	got := NaiveEvalConcrete(u, jc)
	if !got.Contains(fact.NewC("q", paperex.Iv(1, 5), paperex.C("a"), paperex.C("b"))) {
		t.Fatalf("join through shared null lost:\n%s", got)
	}
	// Distinct nulls must not join.
	jc2 := instance.NewConcrete(nil)
	jc2.MustInsert(fact.NewC("Emp", paperex.Iv(1, 5), paperex.C("a"), paperex.C("X"), g.FreshAnn(paperex.Iv(1, 5))))
	jc2.MustInsert(fact.NewC("Emp", paperex.Iv(1, 5), paperex.C("b"), paperex.C("X"), g.FreshAnn(paperex.Iv(1, 5))))
	got2 := NaiveEvalConcrete(u, jc2)
	if got2.Contains(fact.NewC("q", paperex.Iv(1, 5), paperex.C("a"), paperex.C("b"))) {
		t.Fatalf("distinct nulls joined:\n%s", got2)
	}
}

func TestAnswersWithNullHeadAreDropped(t *testing.T) {
	// q(s) :- Emp(n, c, s): the unknown salaries must not appear.
	jc := chaseFigure4(t)
	q := CQ{Name: "q", Head: []string{"s"}, Body: logic.Conjunction{
		logic.NewAtom("Emp", logic.Var("n"), logic.Var("c"), logic.Var("s"))}}
	u, _ := NewUCQ("q", q)
	got := NaiveEvalConcrete(u, jc)
	for _, f := range got.Facts() {
		if f.HasNulls() {
			t.Fatalf("null leaked into answers: %v", f)
		}
		if f.Args[0] != paperex.C("18k") && f.Args[0] != paperex.C("13k") {
			t.Fatalf("unexpected answer %v", f)
		}
	}
}

func TestUCQUnionSemantics(t *testing.T) {
	// q(n) :- Emp(n, IBM, s) ∪ q(n) :- Emp(n, Google, s).
	jc := chaseFigure4(t)
	d1 := CQ{Name: "q", Head: []string{"n"}, Body: logic.Conjunction{
		logic.NewAtom("Emp", logic.Var("n"), logic.Const("IBM"), logic.Var("s"))}}
	d2 := CQ{Name: "q", Head: []string{"n"}, Body: logic.Conjunction{
		logic.NewAtom("Emp", logic.Var("n"), logic.Const("Google"), logic.Var("s"))}}
	u, err := NewUCQ("q", d1, d2)
	if err != nil {
		t.Fatal(err)
	}
	got := NaiveEvalConcrete(u, jc)
	iv, c, inf := paperex.Iv, paperex.C, paperex.Inf
	// Ada at IBM [2012,2014) and at Google [2014,inf) coalesce into one
	// answer interval [2012,inf); Bob at IBM on [2013,2018). The null
	// salaries do not matter: the head projects n only.
	for _, w := range []fact.CFact{
		fact.NewC("q", iv(2012, inf), c("Ada")),
		fact.NewC("q", iv(2013, 2018), c("Bob")),
	} {
		if !got.Contains(w) {
			t.Fatalf("missing %v in:\n%s", w, got)
		}
	}
	if got.Len() != 2 {
		t.Fatalf("want exactly 2 coalesced answers:\n%s", got)
	}
}

func TestTheorem21OnPaperExample(t *testing.T) {
	// ⟦q+(Jc)↓⟧ = q(⟦Jc⟧)↓ on the running example.
	jc := chaseFigure4(t)
	u := empQuery(t)
	lhs := NaiveEvalConcrete(u, jc)
	rhs := CertainAbstract(u, jc.Abstract())
	if !lhs.Abstract().EqualTo(rhs.Abstract()) {
		t.Fatalf("Theorem 21 violated:\nconcrete:\n%s\nabstract:\n%s", lhs, rhs)
	}
}

func TestCorollary22CertainAnswers(t *testing.T) {
	// certain(q, ⟦Ic⟧, M) = ⟦q+(c-chase(Ic))↓⟧, and it must agree with
	// naïve evaluation over the abstract chase result.
	ic := paperex.Figure4()
	m := paperex.EmploymentMapping()
	u := empQuery(t)
	got, err := CertainAnswers(u, ic, m, nil)
	if err != nil {
		t.Fatal(err)
	}
	ja, _, err := chase.Abstract(ic.Abstract(), m, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := CertainAbstract(u, ja)
	if !got.Abstract().EqualTo(want.Abstract()) {
		t.Fatalf("Corollary 22 violated:\n%s\nvs\n%s", got, want)
	}
	// Chase failure propagates.
	bad := ic.Clone()
	bad.MustInsert(fact.NewC("S", paperex.Iv(2013, 2014), paperex.C("Ada"), paperex.C("99k")))
	if _, err := CertainAnswers(u, bad, m, nil); err == nil {
		t.Fatal("failing chase must surface an error")
	}
}

func randomSolution(r *rand.Rand, g *value.NullGen) *instance.Concrete {
	jc := instance.NewConcrete(nil)
	names := []string{"a", "b", "c"}
	comps := []string{"X", "Y"}
	sals := []string{"1k", "2k"}
	for i := 0; i < 1+r.Intn(8); i++ {
		s := interval.Time(r.Intn(10))
		var t0 interval.Interval
		if r.Intn(5) == 0 {
			t0 = interval.Interval{Start: s, End: interval.Infinity}
		} else {
			t0 = paperex.Iv(s, s+1+interval.Time(r.Intn(6)))
		}
		var sal value.Value
		if r.Intn(3) == 0 {
			sal = g.FreshAnn(t0)
		} else {
			sal = paperex.C(sals[r.Intn(2)])
		}
		jc.MustInsert(fact.NewC("Emp", t0, paperex.C(names[r.Intn(3)]), paperex.C(comps[r.Intn(2)]), sal))
	}
	return jc
}

func TestTheorem21Property(t *testing.T) {
	// Randomized Theorem 21: naïve evaluation on random concrete
	// solutions equals per-snapshot naïve evaluation on their abstract
	// views, for single-atom, join, and union queries.
	r := rand.New(rand.NewSource(53))
	var g value.NullGen
	q1 := CQ{Name: "q", Head: []string{"n", "s"}, Body: logic.Conjunction{
		logic.NewAtom("Emp", logic.Var("n"), logic.Var("c"), logic.Var("s"))}}
	q2 := CQ{Name: "q", Head: []string{"n", "n2"}, Body: logic.Conjunction{
		logic.NewAtom("Emp", logic.Var("n"), logic.Var("c"), logic.Var("s")),
		logic.NewAtom("Emp", logic.Var("n2"), logic.Var("c"), logic.Var("s2"))}}
	u1, _ := NewUCQ("q", q1)
	u2, _ := NewUCQ("q", q2)
	q3a := CQ{Name: "q", Head: []string{"n"}, Body: logic.Conjunction{
		logic.NewAtom("Emp", logic.Var("n"), logic.Const("X"), logic.Var("s"))}}
	q3b := CQ{Name: "q", Head: []string{"n"}, Body: logic.Conjunction{
		logic.NewAtom("Emp", logic.Var("n"), logic.Const("Y"), logic.Var("s"))}}
	u3, _ := NewUCQ("q", q3a, q3b)
	for trial := 0; trial < 120; trial++ {
		jc := randomSolution(r, &g)
		for _, u := range []UCQ{u1, u2, u3} {
			lhs := NaiveEvalConcrete(u, jc)
			rhs := CertainAbstract(u, jc.Abstract())
			if !lhs.Abstract().EqualTo(rhs.Abstract()) {
				t.Fatalf("Theorem 21 violated on:\n%s\nquery %v\nconcrete:\n%s\nabstract:\n%s",
					jc, u.Name, lhs, rhs)
			}
		}
	}
}

func TestEvalSnapshotModes(t *testing.T) {
	var g value.NullGen
	snap := instance.NewSnapshot()
	snap.Insert(fact.New("Emp", paperex.C("a"), paperex.C("X"), g.FreshNull()))
	snap.Insert(fact.New("Emp", paperex.C("b"), paperex.C("X"), paperex.C("1k")))
	u := UCQ{Name: "q", Disjuncts: []CQ{{Name: "q", Head: []string{"n", "s"}, Body: logic.Conjunction{
		logic.NewAtom("Emp", logic.Var("n"), logic.Var("c"), logic.Var("s"))}}}}
	all := EvalSnapshot(u, snap, false)
	certain := EvalSnapshot(u, snap, true)
	if len(all) != 2 || len(certain) != 1 {
		t.Fatalf("all=%d certain=%d", len(all), len(certain))
	}
	if certain[0].Args[0] != paperex.C("b") {
		t.Fatalf("certain answer = %v", certain[0])
	}
}

func TestQueryString(t *testing.T) {
	q := CQ{Name: "q", Head: []string{"n", "s"}, Body: logic.Conjunction{
		logic.NewAtom("Emp", logic.Var("n"), logic.Var("c"), logic.Var("s"))}}
	if got := q.String(); got != "q(n, s) :- Emp(?n, ?c, ?s)" {
		t.Fatalf("String = %q", got)
	}
	u, _ := NewUCQ("q", q)
	if u.Arity() != 2 {
		t.Fatal("Arity broken")
	}
}
