// Package core is the public face of the temporal data exchange library:
// an Engine that bundles a validated schema mapping with chase options
// and exposes the full pipeline of the paper — materialize a concrete
// universal solution with the c-chase (§4), answer unions of conjunctive
// queries with certain-answer semantics (§5), and inspect both the
// concrete and the abstract view of every artifact (§2).
//
// Typical use:
//
//	eng, queries, err := core.FromMappingSource(mappingText)
//	ic, err := core.LoadFacts(factsText, eng.Mapping().Source)
//	res, err := eng.Exchange(ic)
//	answers, err := eng.AnswerOn(queries[0], res.Solution)
package core

import (
	"fmt"

	"repro/internal/chase"
	"repro/internal/dependency"
	"repro/internal/instance"
	"repro/internal/normalize"
	"repro/internal/parser"
	"repro/internal/query"
	"repro/internal/schema"
)

// Engine executes temporal data exchange for one schema mapping.
type Engine struct {
	mapping *dependency.Mapping
	opts    chase.Options
}

// New builds an engine after validating the mapping. opts may be nil for
// defaults (Algorithm 1 normalization, batch egds, no coalescing).
func New(m *dependency.Mapping, opts *chase.Options) (*Engine, error) {
	if m == nil {
		return nil, fmt.Errorf("core: nil mapping")
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	e := &Engine{mapping: m}
	if opts != nil {
		e.opts = *opts
	}
	return e, nil
}

// FromMappingSource parses a TDX mapping file and builds an engine with
// default options, returning any queries declared in the file.
func FromMappingSource(src string) (*Engine, []query.UCQ, error) {
	f, err := parser.ParseMapping(src)
	if err != nil {
		return nil, nil, err
	}
	eng, err := New(f.Mapping, nil)
	if err != nil {
		return nil, nil, err
	}
	return eng, f.Queries, nil
}

// LoadFacts parses a TDX facts file into a concrete instance over the
// given schema (nil for schemaless).
func LoadFacts(src string, sch *schema.Schema) (*instance.Concrete, error) {
	return parser.ParseFacts(src, sch)
}

// Mapping returns the engine's schema mapping.
func (e *Engine) Mapping() *dependency.Mapping { return e.mapping }

// SetOptions replaces the chase options.
func (e *Engine) SetOptions(opts chase.Options) { e.opts = opts }

// Options returns the current chase options.
func (e *Engine) Options() chase.Options { return e.opts }

// Result is the outcome of a successful exchange.
type Result struct {
	// Solution is the materialized concrete solution Jc (the c-chase
	// result; Figure 9 for the paper's running example).
	Solution *instance.Concrete
	// Stats reports what the chase did.
	Stats chase.Stats
}

// Exchange materializes a concrete universal solution for the source
// instance using the c-chase. The returned error wraps
// chase.ErrNoSolution when the setting admits no solution.
func (e *Engine) Exchange(ic *instance.Concrete) (*Result, error) {
	opts := e.opts
	jc, stats, err := chase.Concrete(ic, e.mapping, &opts)
	if err != nil {
		return nil, err
	}
	return &Result{Solution: jc, Stats: stats}, nil
}

// ExchangeAbstract runs the abstract chase on ⟦ic⟧ — the semantic
// reference the c-chase is proven equivalent to (Corollary 20). Mostly
// useful for verification and experiments; real deployments use Exchange.
func (e *Engine) ExchangeAbstract(ic *instance.Concrete) (*instance.Abstract, error) {
	opts := e.opts
	ja, _, err := chase.Abstract(ic.Abstract(), e.mapping, &opts)
	return ja, err
}

// Answer computes the certain answers of q over the target schema for
// source instance ic (Corollary 22): it exchanges, then evaluates.
func (e *Engine) Answer(q query.UCQ, ic *instance.Concrete) (*instance.Concrete, error) {
	if err := q.Validate(e.mapping.Target); err != nil {
		return nil, err
	}
	opts := e.opts
	return query.CertainAnswers(q, ic, e.mapping, &opts)
}

// AnswerOn evaluates q naïvely on an already materialized solution —
// the common case when one solution serves many queries.
func (e *Engine) AnswerOn(q query.UCQ, jc *instance.Concrete) (*instance.Concrete, error) {
	if err := q.Validate(e.mapping.Target); err != nil {
		return nil, err
	}
	return query.NaiveEvalConcrete(q, jc), nil
}

// NormalizeSource normalizes ic with respect to the mapping's s-t tgd
// bodies — exposed for inspection and the experiment harness; Exchange
// performs it internally.
func (e *Engine) NormalizeSource(ic *instance.Concrete) *instance.Concrete {
	return normalize.ForMapping(ic, e.mapping.TGDBodies(), e.opts.Norm)
}
