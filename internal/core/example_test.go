package core_test

import (
	"fmt"
	"log"

	"repro/internal/core"
)

// Example runs the paper's running example end to end: Figure 4 in,
// Figure 9 out, certain answers per Corollary 22.
func Example() {
	eng, queries, err := core.FromMappingSource(`
source schema {
    E(name, company)
    S(name, salary)
}
target schema {
    Emp(name, company, salary)
}
tgd sigma1: E(n, c) -> exists s . Emp(n, c, s)
tgd sigma2: E(n, c), S(n, s) -> Emp(n, c, s)
egd salary-key: Emp(n, c, s), Emp(n, c, s2) -> s = s2
query q(n, s) :- Emp(n, c, s)
`)
	if err != nil {
		log.Fatal(err)
	}
	ic, err := core.LoadFacts(`
E(Ada, IBM)    @ [2012, 2014)
E(Ada, Google) @ [2014, inf)
E(Bob, IBM)    @ [2013, 2018)
S(Ada, 18k)    @ [2013, inf)
S(Bob, 13k)    @ [2015, inf)
`, eng.Mapping().Source)
	if err != nil {
		log.Fatal(err)
	}
	res, err := eng.Exchange(ic)
	if err != nil {
		log.Fatal(err)
	}
	ans, err := eng.AnswerOn(queries[0], res.Solution)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(ans)
	// Output:
	// q(Ada, 18k, [2013,inf))
	// q(Bob, 13k, [2015,2018))
}

// ExampleEngine_Exchange shows the abstract view of a materialized
// solution at a single time point.
func ExampleEngine_Exchange() {
	eng, _, err := core.FromMappingSource(`
source schema { E(name, company) }
target schema { Emp(name, company, salary) }
tgd: E(n, c) -> exists s . Emp(n, c, s)
`)
	if err != nil {
		log.Fatal(err)
	}
	ic, err := core.LoadFacts("E(Ada, IBM) @ [2012, 2014)", eng.Mapping().Source)
	if err != nil {
		log.Fatal(err)
	}
	res, err := eng.Exchange(ic)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Solution.Snapshot(2013))
	// Output:
	// {Emp(Ada, IBM, N1@2013)}
}
