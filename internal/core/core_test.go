package core

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/chase"
	"repro/internal/dependency"
	"repro/internal/interval"
	"repro/internal/logic"
	"repro/internal/normalize"
	"repro/internal/paperex"
	"repro/internal/query"
)

const mappingSrc = `
source schema {
    E(name, company)
    S(name, salary)
}
target schema {
    Emp(name, company, salary)
}
tgd sigma1: E(n, c) -> exists s . Emp(n, c, s)
tgd sigma2: E(n, c), S(n, s) -> Emp(n, c, s)
egd key:    Emp(n, c, s), Emp(n, c, s2) -> s = s2
query q(n, s) :- Emp(n, c, s)
`

const factsSrc = `
E(Ada, IBM)    @ [2012, 2014)
E(Ada, Google) @ [2014, inf)
E(Bob, IBM)    @ [2013, 2018)
S(Ada, 18k)    @ [2013, inf)
S(Bob, 13k)    @ [2015, inf)
`

func TestEndToEndPipeline(t *testing.T) {
	eng, queries, err := FromMappingSource(mappingSrc)
	if err != nil {
		t.Fatal(err)
	}
	ic, err := LoadFacts(factsSrc, eng.Mapping().Source)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Exchange(ic)
	if err != nil {
		t.Fatal(err)
	}
	if res.Solution.Len() != 5 {
		t.Fatalf("solution:\n%s", res.Solution)
	}
	if res.Stats.TGDFires != 8 {
		t.Fatalf("stats = %+v", res.Stats)
	}
	ans, err := eng.AnswerOn(queries[0], res.Solution)
	if err != nil {
		t.Fatal(err)
	}
	s := ans.String()
	if !strings.Contains(s, "q(Ada, 18k, [2013,inf))") || !strings.Contains(s, "q(Bob, 13k, [2015,2018))") {
		t.Fatalf("answers:\n%s", s)
	}
	// One-shot answering produces the same result.
	direct, err := eng.Answer(queries[0], ic)
	if err != nil {
		t.Fatal(err)
	}
	if !direct.Equal(ans) {
		t.Fatalf("Answer != AnswerOn:\n%s\nvs\n%s", direct, ans)
	}
}

func TestExchangeAbstractAgrees(t *testing.T) {
	eng, _, err := FromMappingSource(mappingSrc)
	if err != nil {
		t.Fatal(err)
	}
	ic := paperex.Figure4()
	res, err := eng.Exchange(ic)
	if err != nil {
		t.Fatal(err)
	}
	ja, err := eng.ExchangeAbstract(ic)
	if err != nil {
		t.Fatal(err)
	}
	for _, tp := range []interval.Time{2012, 2013, 2015, 2020} {
		a := res.Solution.Abstract().Snapshot(tp)
		b := ja.Snapshot(tp)
		if a.Len() != b.Len() {
			t.Fatalf("snapshot size mismatch at %d: %s vs %s", tp, a, b)
		}
	}
}

func TestEngineValidation(t *testing.T) {
	if _, err := New(nil, nil); err == nil {
		t.Fatal("nil mapping accepted")
	}
	bad := &dependency.Mapping{}
	if _, err := New(bad, nil); err == nil {
		t.Fatal("invalid mapping accepted")
	}
	if _, _, err := FromMappingSource("not a mapping"); err == nil {
		t.Fatal("garbage mapping accepted")
	}
}

func TestOptionsPlumbing(t *testing.T) {
	eng, _, err := FromMappingSource(mappingSrc)
	if err != nil {
		t.Fatal(err)
	}
	eng.SetOptions(chase.Options{Norm: normalize.StrategyNaive, Coalesce: true})
	if eng.Options().Norm != normalize.StrategyNaive {
		t.Fatal("options not stored")
	}
	res, err := eng.Exchange(paperex.Figure4())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Solution.IsCoalesced() {
		t.Fatal("coalesce option ignored")
	}
	norm := eng.NormalizeSource(paperex.Figure4())
	if norm.Len() != 14 {
		t.Fatalf("naive source normalization = %d facts", norm.Len())
	}
}

func TestFailurePropagates(t *testing.T) {
	eng, queries, err := FromMappingSource(mappingSrc)
	if err != nil {
		t.Fatal(err)
	}
	bad, err := LoadFacts(factsSrc+"\nS(Ada, 99k) @ [2013, 2014)", eng.Mapping().Source)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Exchange(bad); !errors.Is(err, chase.ErrNoSolution) {
		t.Fatalf("Exchange error = %v", err)
	}
	if _, err := eng.Answer(queries[0], bad); !errors.Is(err, chase.ErrNoSolution) {
		t.Fatalf("Answer error = %v", err)
	}
}

func TestAnswerValidatesQuery(t *testing.T) {
	eng, _, err := FromMappingSource(mappingSrc)
	if err != nil {
		t.Fatal(err)
	}
	// A query over a relation outside the target schema is rejected.
	bad := query.CQ{Name: "q", Head: []string{"x"}, Body: logic.Conjunction{
		logic.NewAtom("Nope", logic.Var("x"))}}
	u, err := query.NewUCQ("q", bad)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.AnswerOn(u, paperex.Figure4()); err == nil {
		t.Fatal("query over unknown relation accepted")
	}
	if _, err := eng.Answer(u, paperex.Figure4()); err == nil {
		t.Fatal("query over unknown relation accepted by Answer")
	}
}
