package logic

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/interval"
	"repro/internal/storage"
	"repro/internal/value"
)

func cv(s string) value.Value { return value.NewConst(s) }

func ivv(s, e interval.Time) value.Value {
	return value.NewInterval(interval.MustNew(s, e))
}

// figure4Store builds the concrete source instance of the paper's
// Figure 4 as interval-tailed tuples.
func figure4Store() *storage.Store {
	st := storage.NewStore()
	st.Insert("E", []value.Value{cv("Ada"), cv("IBM"), ivv(2012, 2014)})
	st.Insert("E", []value.Value{cv("Ada"), cv("Google"), ivv(2014, interval.Infinity)})
	st.Insert("E", []value.Value{cv("Bob"), cv("IBM"), ivv(2013, 2018)})
	st.Insert("S", []value.Value{cv("Ada"), cv("18k"), ivv(2013, interval.Infinity)})
	st.Insert("S", []value.Value{cv("Bob"), cv("13k"), ivv(2015, interval.Infinity)})
	return st
}

func TestTermAndAtomStrings(t *testing.T) {
	a := NewAtom("E", Var("n"), Const("IBM"), Var("t"))
	if got := a.String(); got != "E(?n, IBM, ?t)" {
		t.Fatalf("String = %q", got)
	}
	c := Conjunction{a, NewAtom("S", Var("n"), Var("s"))}
	if got := c.String(); got != "E(?n, IBM, ?t) ∧ S(?n, ?s)" {
		t.Fatalf("String = %q", got)
	}
	if vars := c.Vars(); len(vars) != 3 || vars[0] != "n" || vars[1] != "t" || vars[2] != "s" {
		t.Fatalf("Vars = %v", vars)
	}
	if !c.HasVar("s") || c.HasVar("zz") {
		t.Fatal("HasVar broken")
	}
}

func TestFindAllSingleAtom(t *testing.T) {
	st := figure4Store()
	ms := FindAll(st, Conjunction{NewAtom("E", Var("n"), Var("c"), Var("t"))}, nil)
	if len(ms) != 3 {
		t.Fatalf("got %d matches, want 3", len(ms))
	}
	// Literal filter.
	ms = FindAll(st, Conjunction{NewAtom("E", Var("n"), Const("IBM"), Var("t"))}, nil)
	if len(ms) != 2 {
		t.Fatalf("IBM matches = %d, want 2", len(ms))
	}
	for _, m := range ms {
		if m.Binding["n"] != cv("Ada") && m.Binding["n"] != cv("Bob") {
			t.Fatalf("unexpected binding %v", m.Binding)
		}
		if len(m.Rows) != 1 || m.Rows[0].Rel != "E" {
			t.Fatalf("row witness %v", m.Rows)
		}
	}
}

func TestSharedTemporalVariableRequiresEqualIntervals(t *testing.T) {
	// This is the paper's §4.2 motivation: on the unnormalized Figure 4
	// instance no homomorphism exists from E+(n,c,t) ∧ S+(n,s,t) because t
	// cannot map to a single interval.
	st := figure4Store()
	conj := Conjunction{
		NewAtom("E", Var("n"), Var("c"), Var("t")),
		NewAtom("S", Var("n"), Var("s"), Var("t")),
	}
	if Exists(st, conj, nil) {
		t.Fatal("shared temporal variable must not match differing intervals")
	}
	// After renaming (N(Φ+)), matches appear: atoms may use different
	// intervals.
	renamed := conj.RenameTemporal("t")
	ms := FindAll(st, renamed, nil)
	if len(ms) == 0 {
		t.Fatal("renamed conjunction should match")
	}
	// Ada-IBM with Ada-18k is among them.
	found := false
	for _, m := range ms {
		if m.Binding["n"] == cv("Ada") && m.Binding["c"] == cv("IBM") {
			found = true
			if m.Binding["t#0"] != ivv(2012, 2014) || m.Binding["t#1"] != ivv(2013, interval.Infinity) {
				t.Fatalf("unexpected temporal bindings %v", m.Binding)
			}
		}
	}
	if !found {
		t.Fatal("expected Ada/IBM join")
	}
}

func TestRenameTemporalStructure(t *testing.T) {
	conj := Conjunction{
		NewAtom("R", Var("x"), Var("t")),
		NewAtom("P", Var("y"), Var("t")),
	}
	renamed := conj.RenameTemporal("t")
	if renamed[0].Terms[1].Name != "t#0" || renamed[1].Terms[1].Name != "t#1" {
		t.Fatalf("renamed = %v", renamed)
	}
	// Original untouched.
	if conj[0].Terms[1].Name != "t" {
		t.Fatal("RenameTemporal mutated its receiver")
	}
	// Non-temporal variables unchanged.
	if renamed[0].Terms[0].Name != "x" {
		t.Fatal("data variable renamed")
	}
}

func TestRepeatedVariableInAtom(t *testing.T) {
	st := storage.NewStore()
	st.Insert("R", []value.Value{cv("a"), cv("a")})
	st.Insert("R", []value.Value{cv("a"), cv("b")})
	ms := FindAll(st, Conjunction{NewAtom("R", Var("x"), Var("x"))}, nil)
	if len(ms) != 1 || ms[0].Binding["x"] != cv("a") {
		t.Fatalf("repeated-variable matches = %v", ms)
	}
}

func TestJoinAcrossAtoms(t *testing.T) {
	st := storage.NewStore()
	st.Insert("R", []value.Value{cv("a"), cv("b")})
	st.Insert("R", []value.Value{cv("b"), cv("c")})
	st.Insert("R", []value.Value{cv("c"), cv("d")})
	// Path query R(x,y) ∧ R(y,z): two 2-step paths.
	ms := FindAll(st, Conjunction{
		NewAtom("R", Var("x"), Var("y")),
		NewAtom("R", Var("y"), Var("z")),
	}, nil)
	if len(ms) != 2 {
		t.Fatalf("paths = %d, want 2", len(ms))
	}
}

func TestInitialBinding(t *testing.T) {
	st := figure4Store()
	ms := FindAll(st,
		Conjunction{NewAtom("E", Var("n"), Var("c"), Var("t"))},
		Binding{"n": cv("Bob")})
	if len(ms) != 1 || ms[0].Binding["c"] != cv("IBM") {
		t.Fatalf("pre-bound matches = %v", ms)
	}
}

func TestEmptyConjunctionMatchesOnce(t *testing.T) {
	st := storage.NewStore()
	n := 0
	ForEach(st, nil, nil, func(Match) bool { n++; return true })
	if n != 1 {
		t.Fatalf("empty conjunction matched %d times, want 1 (identity)", n)
	}
}

func TestMissingRelationNoMatch(t *testing.T) {
	st := figure4Store()
	if Exists(st, Conjunction{NewAtom("Nope", Var("x"))}, nil) {
		t.Fatal("absent relation matched")
	}
}

func TestArityMismatchNoMatch(t *testing.T) {
	st := storage.NewStore()
	st.Insert("R", []value.Value{cv("a")})
	if Exists(st, Conjunction{NewAtom("R", Var("x"), Var("y"))}, nil) {
		t.Fatal("arity mismatch matched")
	}
}

func TestFindOneEarlyStop(t *testing.T) {
	st := storage.NewStore()
	for i := 0; i < 1000; i++ {
		st.Insert("R", []value.Value{cv(fmt.Sprintf("x%d", i))})
	}
	m, ok := FindOne(st, Conjunction{NewAtom("R", Var("x"))}, nil)
	if !ok || m.Binding["x"].Kind() != value.Const {
		t.Fatal("FindOne failed")
	}
}

func TestNullsMatchOnlyThemselves(t *testing.T) {
	st := storage.NewStore()
	n1 := value.NewAnnNull(1, interval.MustNew(1, 3))
	n2 := value.NewAnnNull(2, interval.MustNew(1, 3))
	st.Insert("R", []value.Value{n1, ivv(1, 3)})
	// A literal null matches only the same null.
	if !Exists(st, Conjunction{NewAtom("R", Lit(n1), Var("t"))}, nil) {
		t.Fatal("identical null should match")
	}
	if Exists(st, Conjunction{NewAtom("R", Lit(n2), Var("t"))}, nil) {
		t.Fatal("distinct null matched")
	}
	// A shared variable over two null positions requires the same null.
	st.Insert("S", []value.Value{n2, ivv(1, 3)})
	if Exists(st, Conjunction{
		NewAtom("R", Var("x"), Var("t")),
		NewAtom("S", Var("x"), Var("t")),
	}, nil) {
		t.Fatal("different nulls unified through a shared variable")
	}
}

func TestSortMatchesDeterministic(t *testing.T) {
	st := figure4Store()
	conj := Conjunction{NewAtom("E", Var("n"), Var("c"), Var("t"))}
	ms := FindAll(st, conj, nil)
	SortMatches(ms, []string{"n", "c"})
	if ms[0].Binding["n"] != cv("Ada") || ms[2].Binding["n"] != cv("Bob") {
		t.Fatalf("sort order wrong: %v", ms)
	}
	if ms[0].Binding["c"] != cv("Google") {
		t.Fatalf("tie-break wrong: %v", ms[0].Binding)
	}
}

// TestAgainstBruteForce cross-checks the engine against a brute-force
// enumerator on random instances and random conjunctive patterns.
func TestAgainstBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	rels := []string{"R", "S"}
	for trial := 0; trial < 300; trial++ {
		st := storage.NewStore()
		type row struct {
			rel string
			tup []value.Value
		}
		var rows []row
		for i := 0; i < 2+r.Intn(10); i++ {
			rel := rels[r.Intn(2)]
			tup := []value.Value{cv(fmt.Sprintf("c%d", r.Intn(4))), cv(fmt.Sprintf("d%d", r.Intn(4)))}
			if st.Insert(rel, tup) {
				rows = append(rows, row{rel, tup})
			}
		}
		varNames := []string{"x", "y", "z"}
		mkTerm := func() Term {
			if r.Intn(3) == 0 {
				return Const(fmt.Sprintf("c%d", r.Intn(4)))
			}
			return Var(varNames[r.Intn(3)])
		}
		conj := Conjunction{}
		nAtoms := 1 + r.Intn(2)
		for i := 0; i < nAtoms; i++ {
			conj = append(conj, NewAtom(rels[r.Intn(2)], mkTerm(), mkTerm()))
		}

		// Brute force: enumerate all row tuples per atom and check unification.
		var brute int
		var enum func(i int, b Binding)
		enum = func(i int, b Binding) {
			if i == len(conj) {
				brute++
				return
			}
			for _, rw := range rows {
				if rw.rel != conj[i].Rel {
					continue
				}
				nb := b.Clone()
				if bruteUnify(conj[i], rw.tup, nb) {
					enum(i+1, nb)
				}
			}
		}
		enum(0, Binding{})

		got := len(FindAll(st, conj, nil))
		if got != brute {
			t.Fatalf("trial %d: engine=%d brute=%d conj=%v store=\n%s", trial, got, brute, conj, st.String())
		}
	}
}

// bruteUnify is the reference unifier for the randomized cross-check: it
// extends b in place so the atom's terms match the tuple, reporting
// success. It works on raw values, independent of the engine's interned
// fast path.
func bruteUnify(a Atom, tup []value.Value, b Binding) bool {
	if len(a.Terms) != len(tup) {
		return false
	}
	for i, t := range a.Terms {
		if !t.IsVar {
			if t.Val != tup[i] {
				return false
			}
			continue
		}
		if bound, ok := b[t.Name]; ok {
			if bound != tup[i] {
				return false
			}
			continue
		}
		b[t.Name] = tup[i]
	}
	return true
}

func BenchmarkHomSearchIndexed(b *testing.B) {
	st := storage.NewStore()
	for i := 0; i < 10000; i++ {
		st.Insert("E", []value.Value{cv(fmt.Sprintf("n%d", i)), cv(fmt.Sprintf("c%d", i%100)), ivv(0, 10)})
		st.Insert("S", []value.Value{cv(fmt.Sprintf("n%d", i)), cv("50k"), ivv(0, 10)})
	}
	conj := Conjunction{
		NewAtom("E", Var("n"), Var("c"), Var("t")),
		NewAtom("S", Var("n"), Var("s"), Var("t")),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		ForEach(st, conj, nil, func(Match) bool { n++; return true })
		if n != 10000 {
			b.Fatalf("matches = %d", n)
		}
	}
}

func TestMutationDuringEnumerationPanics(t *testing.T) {
	st := figure4Store()
	conj := Conjunction{NewAtom("E", Var("n"), Var("c"), Var("t"))}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("inserting into the searched store mid-enumeration should panic")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "mutated during plan enumeration") {
			t.Fatalf("panic = %v, want a stale-epoch message", r)
		}
	}()
	ForEachIDs(st, conj, nil, func(*IDMatch) bool {
		st.Insert("E", []value.Value{cv("Eve"), cv("ACME"), ivv(1, 2)})
		return true
	})
}

func TestSubstituteDuringEnumerationPanics(t *testing.T) {
	st := storage.NewStore()
	in := st.Interner()
	n1 := value.NewAnnNull(1, interval.MustNew(0, 2))
	st.Insert("R", []value.Value{cv("a"), n1})
	st.Insert("R", []value.Value{cv("b"), cv("x")})
	nID := in.Intern(n1)
	xID := in.Intern(cv("x"))
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("substituting the searched store mid-enumeration should panic")
		}
	}()
	ForEachIDs(st, Conjunction{NewAtom("R", Var("a"), Var("v"))}, nil, func(*IDMatch) bool {
		st.SubstituteIDs([]value.ID{nID}, func(id value.ID) value.ID {
			if id == nID {
				return xID
			}
			return id
		})
		return true
	})
}

// TestInsertIntoOtherStoreDuringEnumeration pins down the supported
// pattern: query evaluation inserts answers into a *different* store
// while enumerating, which must not trip the epoch revalidation.
func TestInsertIntoOtherStoreDuringEnumeration(t *testing.T) {
	st := figure4Store()
	out := storage.NewStore()
	n := 0
	ForEachIDs(st, Conjunction{NewAtom("E", Var("n"), Var("c"), Var("t"))}, nil, func(*IDMatch) bool {
		out.Insert("Ans", []value.Value{cv(fmt.Sprintf("row%d", n))})
		n++
		return true
	})
	if n != 3 || out.Size() != 3 {
		t.Fatalf("matches = %d, answers = %d", n, out.Size())
	}
}

// TestAdaptiveJoinOrderFindsAllMatches cross-checks the selectivity-
// ordered search against brute-force enumeration on a store where the
// posting-list estimates differ sharply between atoms.
func TestAdaptiveJoinOrderFindsAllMatches(t *testing.T) {
	st := storage.NewStore()
	for i := 0; i < 64; i++ {
		st.Insert("Big", []value.Value{cv(fmt.Sprintf("k%d", i%8)), cv(fmt.Sprintf("v%d", i))})
	}
	st.Insert("Small", []value.Value{cv("k3"), cv("only")})
	conj := Conjunction{
		NewAtom("Big", Var("k"), Var("v")),
		NewAtom("Small", Var("k"), Var("w")),
	}
	got := FindAll(st, conj, nil)
	if len(got) != 8 {
		t.Fatalf("matches = %d, want 8 (k3 bucket of Big joined with Small)", len(got))
	}
	for _, m := range got {
		if m.Binding["k"] != cv("k3") || m.Binding["w"] != cv("only") {
			t.Fatalf("bad match %v", m.Binding)
		}
	}
}
