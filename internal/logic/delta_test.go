package logic

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/storage"
	"repro/internal/value"
)

// deltaKey renders a match for set comparison: rows plus bindings.
func deltaKey(m *IDMatch) string {
	s := ""
	for _, r := range m.Rows {
		s += fmt.Sprintf("%s:%d;", r.Rel, r.Row)
	}
	s += "|"
	for i, n := range m.names {
		s += fmt.Sprintf("%s=%d;", n, m.bind[i])
	}
	return s
}

// randomDeltaWorld builds a small random store, a conjunction over it,
// and a delta set marking a random subset of rows.
func randomDeltaWorld(r *rand.Rand) (*storage.Store, Conjunction, *DeltaSet) {
	st := storage.NewStore()
	vals := make([]value.Value, 6)
	for i := range vals {
		vals[i] = value.NewConst(fmt.Sprintf("c%d", i))
	}
	rels := []string{"R", "S", "T"}
	for _, rel := range rels {
		n := 5 + r.Intn(15)
		for i := 0; i < n; i++ {
			st.Insert(rel, []value.Value{vals[r.Intn(len(vals))], vals[r.Intn(len(vals))]})
		}
	}
	varNames := []string{"x", "y", "z", "w"}
	nAtoms := 1 + r.Intn(3)
	conj := make(Conjunction, 0, nAtoms)
	for i := 0; i < nAtoms; i++ {
		terms := make([]Term, 2)
		for j := range terms {
			if r.Intn(4) == 0 {
				terms[j] = Lit(vals[r.Intn(len(vals))])
			} else {
				terms[j] = Var(varNames[r.Intn(len(varNames))])
			}
		}
		conj = append(conj, NewAtom(rels[r.Intn(len(rels))], terms...))
	}
	delta := NewDeltaSet()
	for _, rel := range rels {
		n := st.Rel(rel).NumRows()
		for row := 0; row < n; row++ {
			if r.Intn(4) == 0 {
				delta.Add(rel, row)
			}
		}
	}
	return st, conj, delta
}

// TestDeltaEnumerationMatchesFilter cross-checks ForEachIDsDelta against
// the reference semantics: all homomorphisms of the conjunction that
// touch at least one delta row, each exactly once.
func TestDeltaEnumerationMatchesFilter(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		r := rand.New(rand.NewSource(seed))
		st, conj, delta := randomDeltaWorld(r)

		want := map[string]int{}
		ForEachIDs(st, conj, nil, func(m *IDMatch) bool {
			touches := false
			for _, rr := range m.Rows {
				if delta.Contains(rr.Rel, rr.Row) {
					touches = true
					break
				}
			}
			if touches {
				want[deltaKey(m)]++
			}
			return true
		})

		got := map[string]int{}
		ForEachIDsDelta(st, conj, delta, func(stage int, m *IDMatch) bool {
			if !delta.Contains(m.Rows[stage].Rel, m.Rows[stage].Row) {
				t.Fatalf("seed %d: stage %d witness not in delta", seed, stage)
			}
			for i := 0; i < stage; i++ {
				if delta.Contains(m.Rows[i].Rel, m.Rows[i].Row) {
					t.Fatalf("seed %d: atom %d before stage %d lands on a delta row", seed, i, stage)
				}
			}
			got[deltaKey(m)]++
			return true
		})

		if len(got) != len(want) {
			t.Fatalf("seed %d (%v): got %d distinct matches, want %d", seed, conj, len(got), len(want))
		}
		for k := range want {
			if got[k] != 1 {
				t.Fatalf("seed %d (%v): match %s enumerated %d times, want exactly once", seed, conj, k, got[k])
			}
		}
	}
}

// TestDeltaEnumerationShards asserts the concatenation property: per
// stage, shard streams 0..parts-1 concatenated reproduce the sequential
// stage stream in order.
func TestDeltaEnumerationShards(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		r := rand.New(rand.NewSource(seed))
		st, conj, delta := randomDeltaWorld(r)

		seq := map[int][]string{}
		ForEachIDsDelta(st, conj, delta, func(stage int, m *IDMatch) bool {
			seq[stage] = append(seq[stage], deltaKey(m))
			return true
		})
		for _, parts := range []int{2, 3, 5} {
			merged := map[int][]string{}
			for part := 0; part < parts; part++ {
				ForEachIDsDeltaPart(st, conj, delta, part, parts, func(stage int, m *IDMatch) bool {
					merged[stage] = append(merged[stage], deltaKey(m))
					return true
				})
			}
			for stage, wantList := range seq {
				gotList := merged[stage]
				if len(gotList) != len(wantList) {
					t.Fatalf("seed %d parts %d stage %d: %d matches, want %d", seed, parts, stage, len(gotList), len(wantList))
				}
				for i := range wantList {
					if gotList[i] != wantList[i] {
						t.Fatalf("seed %d parts %d stage %d: order diverges at %d", seed, parts, stage, i)
					}
				}
			}
			for stage := range merged {
				if _, ok := seq[stage]; !ok {
					t.Fatalf("seed %d parts %d: sharded run produced unexpected stage %d", seed, parts, stage)
				}
			}
		}
	}
}

// TestDeltaSetRowsSorted pins the DeltaSet ordering contract the
// sharding relies on.
func TestDeltaSetRowsSorted(t *testing.T) {
	d := NewDeltaSet()
	for _, row := range []int{9, 3, 7, 3, 1, 12} {
		d.Add("R", row)
	}
	rows := d.Rows("R")
	if !sort.IntsAreSorted(rows) {
		t.Fatalf("rows not sorted: %v", rows)
	}
	if len(rows) != 5 {
		t.Fatalf("duplicate rows retained: %v", rows)
	}
	d.AddRange("R", 20, 23)
	if got := len(d.Rows("R")); got != 8 {
		t.Fatalf("AddRange: got %d rows, want 8", got)
	}
	if !d.Contains("R", 21) || d.Contains("R", 23) || d.Contains("S", 1) {
		t.Fatal("Contains misreports membership")
	}
	if d.Len() != 8 {
		t.Fatalf("Len = %d, want 8", d.Len())
	}
	if rels := d.Relations(); len(rels) != 1 || rels[0] != "R" {
		t.Fatalf("Relations = %v", rels)
	}
}
