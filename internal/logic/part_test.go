package logic

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/storage"
	"repro/internal/value"
)

// partStore builds a randomized store over three relations with enough
// shared constants that conjunctions join non-trivially.
func partStore(seed int64, rows int) *storage.Store {
	r := rand.New(rand.NewSource(seed))
	st := storage.NewStore()
	c := func(i int) value.Value { return value.NewConst(fmt.Sprintf("c%d", i)) }
	for i := 0; i < rows; i++ {
		st.Insert("A", []value.Value{c(r.Intn(12)), c(r.Intn(8))})
		st.Insert("B", []value.Value{c(r.Intn(8)), c(r.Intn(6))})
		if i%3 == 0 {
			st.Insert("C", []value.Value{c(r.Intn(6))})
		}
	}
	return st
}

// collect gathers the full match stream of a sharded enumeration as
// printable row-witness/binding strings.
func collect(st *storage.Store, conj Conjunction, part, parts int) []string {
	var out []string
	ForEachIDsPart(st, conj, nil, part, parts, func(m *IDMatch) bool {
		s := ""
		for _, r := range m.Rows {
			s += fmt.Sprintf("%s:%d|", r.Rel, r.Row)
		}
		for i, id := range m.Slots() {
			s += fmt.Sprintf("%s=%d|", m.Vars()[i], id)
		}
		out = append(out, s)
		return true
	})
	return out
}

// TestForEachIDsPartConcatenation is the contract the parallel chase
// builds on: concatenating shards 0..parts-1 reproduces the unsharded
// enumeration exactly, in order, for any shard count.
func TestForEachIDsPartConcatenation(t *testing.T) {
	conjs := []Conjunction{
		{NewAtom("A", Var("x"), Var("y"))},
		{NewAtom("A", Var("x"), Var("y")), NewAtom("B", Var("y"), Var("z"))},
		{NewAtom("A", Var("x"), Var("y")), NewAtom("B", Var("y"), Var("z")), NewAtom("C", Var("z"))},
		{NewAtom("A", Const("c3"), Var("y")), NewAtom("B", Var("y"), Var("z"))},
	}
	for seed := int64(1); seed <= 3; seed++ {
		st := partStore(seed, 150)
		for ci, conj := range conjs {
			full := collect(st, conj, 0, 1)
			for _, parts := range []int{2, 3, 5, 8, 64, len(full) + 7} {
				var concat []string
				for part := 0; part < parts; part++ {
					concat = append(concat, collect(st, conj, part, parts)...)
				}
				if len(concat) != len(full) {
					t.Fatalf("seed=%d conj=%d parts=%d: %d matches, want %d", seed, ci, parts, len(concat), len(full))
				}
				for i := range full {
					if concat[i] != full[i] {
						t.Fatalf("seed=%d conj=%d parts=%d: match %d differs:\n%s\nvs\n%s", seed, ci, parts, i, concat[i], full[i])
					}
				}
			}
		}
	}
}

// TestForEachIDsPartMultiConcatenation pins the multi-conjunction form:
// per conjunction, concatenating a worker's shard streams across ranks
// reproduces the unsharded per-conjunction enumeration exactly, and
// each worker visits its shard of every conjunction in conjs order.
func TestForEachIDsPartMultiConcatenation(t *testing.T) {
	conjs := []Conjunction{
		{NewAtom("A", Var("x"), Var("y")), NewAtom("B", Var("y"), Var("z"))},
		{NewAtom("A", Var("x"), Var("y"))},
		{NewAtom("B", Var("y"), Var("z")), NewAtom("C", Var("z"))},
	}
	collectMulti := func(st *storage.Store, part, parts int) ([][]string, []int) {
		out := make([][]string, len(conjs))
		var order []int
		ForEachIDsPartMulti(st, conjs, part, parts, func(ci int, m *IDMatch) bool {
			s := ""
			for _, r := range m.Rows {
				s += fmt.Sprintf("%s:%d|", r.Rel, r.Row)
			}
			for i, id := range m.Slots() {
				s += fmt.Sprintf("%s=%d|", m.Vars()[i], id)
			}
			out[ci] = append(out[ci], s)
			if n := len(order); n == 0 || order[n-1] != ci {
				order = append(order, ci)
			}
			return true
		})
		return out, order
	}
	for seed := int64(1); seed <= 3; seed++ {
		st := partStore(seed, 150)
		full := make([][]string, len(conjs))
		for ci, conj := range conjs {
			full[ci] = collect(st, conj, 0, 1)
		}
		for _, parts := range []int{1, 2, 3, 5, 8, 64} {
			concat := make([][]string, len(conjs))
			for part := 0; part < parts; part++ {
				shard, order := collectMulti(st, part, parts)
				for i := 1; i < len(order); i++ {
					if order[i] < order[i-1] {
						t.Fatalf("seed=%d parts=%d part=%d: conjunctions visited out of order: %v", seed, parts, part, order)
					}
				}
				for ci := range conjs {
					concat[ci] = append(concat[ci], shard[ci]...)
				}
			}
			for ci := range conjs {
				if len(concat[ci]) != len(full[ci]) {
					t.Fatalf("seed=%d parts=%d conj=%d: %d matches, want %d", seed, parts, ci, len(concat[ci]), len(full[ci]))
				}
				for i := range full[ci] {
					if concat[ci][i] != full[ci][i] {
						t.Fatalf("seed=%d parts=%d conj=%d: match %d differs:\n%s\nvs\n%s", seed, parts, ci, i, concat[ci][i], full[ci][i])
					}
				}
			}
		}
	}
}

// TestForEachIDsPartMultiStops asserts that fn returning false aborts
// the whole sweep — remaining matches and remaining conjunctions
// included.
func TestForEachIDsPartMultiStops(t *testing.T) {
	st := partStore(2, 100)
	conjs := []Conjunction{
		{NewAtom("A", Var("x"), Var("y"))},
		{NewAtom("B", Var("y"), Var("z"))},
	}
	calls := 0
	ForEachIDsPartMulti(st, conjs, 0, 1, func(ci int, m *IDMatch) bool {
		calls++
		return calls < 3
	})
	if calls != 3 {
		t.Fatalf("sweep continued after fn returned false: %d calls", calls)
	}
}

func TestForEachIDsPartEdges(t *testing.T) {
	st := partStore(9, 40)
	conj := Conjunction{NewAtom("A", Var("x"), Var("y"))}
	// Out-of-range shards enumerate nothing.
	if got := collect(st, conj, -1, 4); got != nil {
		t.Fatalf("part=-1 enumerated %d matches", len(got))
	}
	if got := collect(st, conj, 4, 4); got != nil {
		t.Fatalf("part=parts enumerated %d matches", len(got))
	}
	if got := collect(st, conj, 0, 0); got != nil {
		t.Fatalf("parts=0 enumerated %d matches", len(got))
	}
	// The empty conjunction's single empty match belongs to shard 0 only.
	n := 0
	for part := 0; part < 5; part++ {
		ForEachIDsPart(st, nil, nil, part, 5, func(*IDMatch) bool { n++; return true })
	}
	if n != 1 {
		t.Fatalf("empty conjunction matched %d times across shards, want 1", n)
	}
}

// TestFrozenPlanConcurrentEnumeration runs the same plan from 16
// goroutines against one frozen store; under -race this proves frozen
// plans share no mutable state (and skip epoch revalidation safely).
func TestFrozenPlanConcurrentEnumeration(t *testing.T) {
	st := partStore(5, 200)
	conj := Conjunction{NewAtom("A", Var("x"), Var("y")), NewAtom("B", Var("y"), Var("z"))}
	st.Freeze()
	want := len(collect(st, conj, 0, 1))
	if want == 0 {
		t.Fatal("test conjunction has no matches")
	}
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rep := 0; rep < 10; rep++ {
				n := 0
				ForEachIDs(st, conj, nil, func(*IDMatch) bool { n++; return true })
				if n != want {
					t.Errorf("goroutine %d: %d matches, want %d", g, n, want)
				}
			}
		}()
	}
	wg.Wait()
}
