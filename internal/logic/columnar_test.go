package logic

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/storage"
	"repro/internal/value"
)

// TestBruteForceAfterSubstitution cross-checks plan execution against
// the brute-force enumerator on stores that have been rewritten in place
// by SubstituteIDs — the post-egd shape with dead rows, maintained
// posting lists, and non-dense blocks. The engine must enumerate exactly
// the homomorphisms of the live rows.
func TestBruteForceAfterSubstitution(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	rels := []string{"R", "S"}
	mkVal := func() value.Value {
		if r.Intn(3) == 0 {
			return value.NewNull(uint64(r.Intn(5) + 1))
		}
		return cv(fmt.Sprintf("c%d", r.Intn(5)))
	}
	for trial := 0; trial < 200; trial++ {
		st := storage.NewStore()
		for i := 0; i < 4+r.Intn(12); i++ {
			st.Insert(rels[r.Intn(2)], []value.Value{mkVal(), mkVal()})
		}
		// Warm some indexes so the substitution exercises posting-list
		// maintenance, then rewrite a couple of IDs in place.
		if rel := st.Rel("R"); rel != nil {
			rel.Candidates(0, cv("c0"))
		}
		in := st.Interner()
		for round := 0; round < 2; round++ {
			from, to := mkVal(), mkVal()
			fid, ok1 := in.Lookup(from)
			tid, ok2 := in.Lookup(to)
			if !ok1 || !ok2 || fid == tid {
				continue
			}
			st.SubstituteIDs([]value.ID{fid}, func(id value.ID) value.ID {
				if id == fid {
					return tid
				}
				return id
			})
		}
		// Snapshot the live rows for the brute-force reference.
		type row struct {
			rel string
			tup []value.Value
		}
		var rows []row
		st.Each(func(rel string, tup []value.Value) bool {
			rows = append(rows, row{rel, tup})
			return true
		})

		varNames := []string{"x", "y", "z"}
		mkTerm := func() Term {
			switch r.Intn(4) {
			case 0:
				return Lit(cv(fmt.Sprintf("c%d", r.Intn(5))))
			case 1:
				return Lit(value.NewNull(uint64(r.Intn(5) + 1)))
			default:
				return Var(varNames[r.Intn(3)])
			}
		}
		conj := Conjunction{}
		for i := 0; i < 1+r.Intn(2); i++ {
			conj = append(conj, NewAtom(rels[r.Intn(2)], mkTerm(), mkTerm()))
		}

		var brute int
		var enum func(i int, b Binding)
		enum = func(i int, b Binding) {
			if i == len(conj) {
				brute++
				return
			}
			for _, rw := range rows {
				if rw.rel != conj[i].Rel {
					continue
				}
				nb := b.Clone()
				if bruteUnify(conj[i], rw.tup, nb) {
					enum(i+1, nb)
				}
			}
		}
		enum(0, Binding{})

		got := len(FindAll(st, conj, nil))
		if got != brute {
			t.Fatalf("trial %d: engine=%d brute=%d conj=%v store=\n%s", trial, got, brute, conj, st.String())
		}
		// Every witness row the engine reports must be live and must
		// actually unify with its atom.
		ForEach(st, conj, nil, func(m Match) bool {
			for i, ref := range m.Rows {
				rel := st.Rel(ref.Rel)
				if !rel.Alive(ref.Row) {
					t.Fatalf("trial %d: witness row %v is dead", trial, ref)
				}
				nb := m.Binding.Clone()
				if !bruteUnify(conj[i], rel.Tuple(ref.Row), nb) {
					t.Fatalf("trial %d: witness row %v does not unify with %v", trial, ref, conj[i])
				}
			}
			return true
		})
	}
}
