package logic

import (
	"sort"

	"repro/internal/storage"
	"repro/internal/value"
)

// DeltaSet marks, per relation, a set of "delta" rows of one store: the
// rows the incremental chase considers new or dirty. Membership is
// O(1); Rows materializes a sorted view lazily. The zero value is not
// usable — construct with NewDeltaSet.
type DeltaSet struct {
	member map[string]map[int]bool
	sorted map[string][]int // per-relation sorted cache; nil entry = stale
}

// NewDeltaSet returns an empty delta set.
func NewDeltaSet() *DeltaSet {
	return &DeltaSet{member: make(map[string]map[int]bool), sorted: make(map[string][]int)}
}

// Add marks one row of a relation as delta. Adding a row twice is a
// no-op.
func (d *DeltaSet) Add(rel string, row int) {
	m := d.member[rel]
	if m == nil {
		m = make(map[int]bool)
		d.member[rel] = m
	}
	if !m[row] {
		m[row] = true
		d.sorted[rel] = nil
	}
}

// AddRange marks rows [from, to) of a relation as delta — the shape of
// a freshly appended suffix.
func (d *DeltaSet) AddRange(rel string, from, to int) {
	for row := from; row < to; row++ {
		d.Add(rel, row)
	}
}

// Contains reports whether the row is marked.
func (d *DeltaSet) Contains(rel string, row int) bool {
	return d.member[rel][row]
}

// Rows returns the marked rows of the relation in ascending order. The
// returned slice is owned by the set; do not mutate it.
func (d *DeltaSet) Rows(rel string) []int {
	m := d.member[rel]
	if len(m) == 0 {
		return nil
	}
	if s := d.sorted[rel]; s != nil {
		return s
	}
	s := make([]int, 0, len(m))
	for row := range m {
		s = append(s, row)
	}
	sort.Ints(s)
	d.sorted[rel] = s
	return s
}

// Len returns the total number of marked rows across relations.
func (d *DeltaSet) Len() int {
	n := 0
	for _, m := range d.member {
		n += len(m)
	}
	return n
}

// Relations returns the relation names with at least one marked row, in
// lexicographic order.
func (d *DeltaSet) Relations() []string {
	out := make([]string, 0, len(d.member))
	for rel, m := range d.member {
		if len(m) > 0 {
			out = append(out, rel)
		}
	}
	sort.Strings(out)
	return out
}

// ForEachIDsDelta enumerates exactly the homomorphisms of conj into st
// in which at least one atom's witness row is in delta — the semi-naive
// frontier of an incremental round — each exactly once. See
// ForEachIDsDeltaPart for the enumeration order contract.
func ForEachIDsDelta(st *storage.Store, conj Conjunction, delta *DeltaSet, fn func(stage int, m *IDMatch) bool) {
	ForEachIDsDeltaPart(st, conj, delta, 0, 1, fn)
}

// ForEachIDsDeltaPart is the sharded form of ForEachIDsDelta: per-atom
// delta/base plan splitting. The enumeration is organized in stages,
// one per atom: stage k yields the homomorphisms whose first
// delta-marked witness atom (in conjunction order) is atom k — atom k's
// candidates are restricted to the delta rows of its relation, atoms
// before k must land on non-delta rows, atoms after k are unrestricted.
// Every delta-involving homomorphism belongs to exactly one stage, so
// the union over stages enumerates each exactly once, and a
// homomorphism touching no delta row is never enumerated.
//
// Within a stage the delta candidate rows are visited in ascending row
// order, and part/parts shards that candidate list contiguously — the
// ForEachIDsPart property transposed to the delta frontier:
// concatenating one stage's shards 0..parts-1 reproduces that stage's
// sequential enumeration in order. Shards share no mutable state, so
// any number may run concurrently against a frozen store; fn receives
// the stage index so a parallel caller can merge shard streams in
// (stage, shard-rank) order. fn returning false stops the sweep. The
// IDMatch is transient: Rows are in conjunction order and the bindings
// cover every conjunction variable.
//
// st must not be mutated while the enumeration runs (collect first,
// write after), exactly as with ForEachIDs.
func ForEachIDsDeltaPart(st *storage.Store, conj Conjunction, delta *DeltaSet, part, parts int, fn func(stage int, m *IDMatch) bool) {
	if part < 0 || parts < 1 || part >= parts || len(conj) == 0 || delta == nil {
		return
	}
	in := st.Interner()
	// Any atom over a missing relation kills the whole conjunction.
	for _, a := range conj {
		if st.Rel(a.Rel) == nil {
			return
		}
	}
	names := conj.Vars()
	slotOf := make(map[string]int, len(names))
	for i, n := range names {
		slotOf[n] = i
	}
	full := make([]value.ID, len(names))
	rows := make([]RowRef, len(conj))
	im := IDMatch{names: names}

	for k := range conj {
		a := conj[k]
		rel := st.Rel(a.Rel)
		cand := delta.Rows(a.Rel)
		if len(cand) == 0 {
			continue
		}
		lo := len(cand) * part / parts
		hi := len(cand) * (part + 1) / parts

		// Pre-resolve atom k's literals; a literal the store has never
		// interned cannot match any row.
		lits := make([]value.ID, len(a.Terms))
		litOK := true
		for j, t := range a.Terms {
			if t.IsVar {
				lits[j] = value.NoID
				continue
			}
			id, ok := in.Lookup(t.Val)
			if !ok {
				litOK = false
				break
			}
			lits[j] = id
		}
		if !litOK {
			continue
		}

		// Compile the residual conjunction (conj minus atom k) once per
		// stage; its init slots are seeded per delta row below.
		rest := make(Conjunction, 0, len(conj)-1)
		rest = append(rest, conj[:k]...)
		rest = append(rest, conj[k+1:]...)
		var rp plan
		var restSlot []int // rest slot → full slot
		if len(rest) > 0 {
			rp = compile(st, rest, nil)
			if rp.empty {
				continue
			}
			restSlot = make([]int, len(rp.names))
			for i, n := range rp.names {
				restSlot[i] = slotOf[n]
			}
		}

		for ci := lo; ci < hi; ci++ {
			row := cand[ci]
			if row >= rel.NumRows() || !rel.Alive(row) {
				continue
			}
			ids := rel.Row(row)
			if len(ids) != len(a.Terms) {
				continue
			}
			// Bind atom k against the row: literals must match, repeated
			// variables must unify.
			for i := range full {
				full[i] = value.NoID
			}
			ok := true
			for j, t := range a.Terms {
				if !t.IsVar {
					if lits[j] != ids[j] {
						ok = false
						break
					}
					continue
				}
				s := slotOf[t.Name]
				if full[s] != value.NoID && full[s] != ids[j] {
					ok = false
					break
				}
				full[s] = ids[j]
			}
			if !ok {
				continue
			}

			if len(rest) == 0 {
				rows[k] = RowRef{Rel: a.Rel, Row: row}
				im.Rows = rows
				im.bind = full
				if !fn(k, &im) {
					return
				}
				continue
			}

			// Seed the residual plan with atom k's bindings and sweep it;
			// the deferred reset keeps rp reusable for the next delta row.
			seeded := make([]int, 0, len(restSlot))
			for ri, fi := range restSlot {
				if full[fi] != value.NoID {
					rp.init[ri] = full[fi]
					seeded = append(seeded, ri)
				}
			}
			stop := false
			run(rp, func(m *IDMatch) bool {
				// Stage discipline: atoms before k must be non-delta (a
				// hom whose first delta atom precedes k belongs there).
				for i := 0; i < k; i++ {
					if delta.Contains(rest[i].Rel, m.Rows[i].Row) {
						return true
					}
				}
				for i := 0; i < k; i++ {
					rows[i] = m.Rows[i]
				}
				rows[k] = RowRef{Rel: a.Rel, Row: row}
				for i := k; i < len(rest); i++ {
					rows[i+1] = m.Rows[i]
				}
				out := full
				for ri, fi := range restSlot {
					out[fi] = m.bind[ri]
				}
				im.Rows = rows
				im.bind = out
				if !fn(k, &im) {
					stop = true
					return false
				}
				return true
			})
			for _, ri := range seeded {
				rp.init[ri] = value.NoID
			}
			if stop {
				return
			}
		}
	}
}
