// Package logic implements conjunctions of atomic formulas and the
// homomorphism search engine used throughout temporal data exchange: a
// chase step fires on a homomorphism from the left-hand side of a
// dependency to an instance (paper §2, §4.3), normalization enumerates
// homomorphisms from the renamed conjunctions N(Φ+) (Algorithm 1), and
// naïve query evaluation finds all homomorphisms from a query body (§5).
//
// A homomorphism here maps variables to database values such that every
// atom's image is a stored tuple; it is the identity on literals. Nulls
// are treated as plain values (naïve-table semantics): a null matches
// only itself.
//
// Internally the engine never touches value.Value on the search path: a
// conjunction is compiled against the store into an ID plan — variables
// become dense slots, literals become interned value.IDs (a literal the
// store has never interned cannot match anything, so compilation ends the
// search immediately), and each atom binds to the columnar block of its
// arity. Candidate rows come from sorted posting lists (intersected when
// two or more positions are determined), and unification reads the
// block's columns directly — cols[pos][off] — comparing uint32s with no
// per-row materialization. ForEachIDs exposes that representation
// directly for hot callers (the chase's egd loop, normalization);
// ForEach/FindAll materialize value.Value bindings per match.
package logic

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/storage"
	"repro/internal/value"
)

// Term is a variable or a literal value in an atom.
type Term struct {
	IsVar bool
	Name  string      // variable name when IsVar
	Val   value.Value // literal otherwise
}

// Var returns a variable term.
func Var(name string) Term { return Term{IsVar: true, Name: name} }

// Lit returns a literal term.
func Lit(v value.Value) Term { return Term{Val: v} }

// Const returns a literal constant term — shorthand for Lit(NewConst(s)).
func Const(s string) Term { return Lit(value.NewConst(s)) }

// String renders the term: variables as ?name, literals via value syntax.
func (t Term) String() string {
	if t.IsVar {
		return "?" + t.Name
	}
	return t.Val.String()
}

// Atom is a relational atom R(t1, ..., tn).
type Atom struct {
	Rel   string
	Terms []Term
}

// NewAtom builds an atom.
func NewAtom(rel string, terms ...Term) Atom { return Atom{Rel: rel, Terms: terms} }

// String renders the atom.
func (a Atom) String() string {
	parts := make([]string, len(a.Terms))
	for i, t := range a.Terms {
		parts[i] = t.String()
	}
	return a.Rel + "(" + strings.Join(parts, ", ") + ")"
}

// Vars returns the variable names occurring in the atom, in order of
// first occurrence.
func (a Atom) Vars() []string {
	var out []string
	seen := make(map[string]bool)
	for _, t := range a.Terms {
		if t.IsVar && !seen[t.Name] {
			seen[t.Name] = true
			out = append(out, t.Name)
		}
	}
	return out
}

// Conjunction is a conjunction of atoms φ = A1 ∧ ... ∧ Ak.
type Conjunction []Atom

// String renders the conjunction with " ∧ " separators.
func (c Conjunction) String() string {
	parts := make([]string, len(c))
	for i, a := range c {
		parts[i] = a.String()
	}
	return strings.Join(parts, " ∧ ")
}

// Vars returns all variable names in order of first occurrence.
func (c Conjunction) Vars() []string {
	var out []string
	seen := make(map[string]bool)
	for _, a := range c {
		for _, t := range a.Terms {
			if t.IsVar && !seen[t.Name] {
				seen[t.Name] = true
				out = append(out, t.Name)
			}
		}
	}
	return out
}

// HasVar reports whether the named variable occurs in the conjunction.
func (c Conjunction) HasVar(name string) bool {
	for _, a := range c {
		for _, t := range a.Terms {
			if t.IsVar && t.Name == name {
				return true
			}
		}
	}
	return false
}

// RenameTemporal returns a copy of the conjunction where each occurrence
// of the temporal variable tvar is replaced by a fresh variable unique to
// its atom: the paper's N(Φ+) construction (§4.2, Example 9). The fresh
// variables are named tvar#0, tvar#1, ... per atom index.
func (c Conjunction) RenameTemporal(tvar string) Conjunction {
	out := make(Conjunction, len(c))
	for i, a := range c {
		na := Atom{Rel: a.Rel, Terms: make([]Term, len(a.Terms))}
		for j, t := range a.Terms {
			if t.IsVar && t.Name == tvar {
				na.Terms[j] = Var(fmt.Sprintf("%s#%d", tvar, i))
			} else {
				na.Terms[j] = t
			}
		}
		out[i] = na
	}
	return out
}

// Binding maps variable names to values. It plays the role of a
// homomorphism restricted to the variables of a formula.
type Binding map[string]value.Value

// Clone returns a copy of the binding.
func (b Binding) Clone() Binding {
	out := make(Binding, len(b))
	for k, v := range b {
		out[k] = v
	}
	return out
}

// Apply maps a term to its value under the binding; ok=false when the
// term is an unbound variable.
func (b Binding) Apply(t Term) (value.Value, bool) {
	if !t.IsVar {
		return t.Val, true
	}
	v, ok := b[t.Name]
	return v, ok
}

// RowRef identifies a stored tuple: relation name and row number.
type RowRef struct {
	Rel string
	Row int
}

// Match is one homomorphism from a conjunction into a store: the variable
// binding plus, per atom (in conjunction order), the row its image landed
// on. The Rows witness is what Algorithm 1's set-building step consumes
// (h : φ* ↦ {f1, ..., fn}). The Binding passed to a ForEach callback is
// freshly built per match and safe to retain; Rows is transient and must
// be cloned if retained.
type Match struct {
	Binding Binding
	Rows    []RowRef
}

// IDMatch is the interned view of one homomorphism, handed to ForEachIDs
// callbacks: the per-atom row witnesses plus the variable bindings as
// value.IDs of the searched store's interner. It is transient — callers
// must copy anything they retain — and only exposes variables that occur
// in the conjunction.
type IDMatch struct {
	Rows  []RowRef
	names []string
	bind  []value.ID
}

// ID returns the bound ID of the named conjunction variable.
func (m *IDMatch) ID(name string) (value.ID, bool) {
	for i, n := range m.names {
		if n == name {
			return m.bind[i], true
		}
	}
	return value.NoID, false
}

// Vars returns the conjunction's variable names, indexed like Slots.
func (m *IDMatch) Vars() []string { return m.names }

// Slots returns the raw slot bindings, indexed like Vars.
func (m *IDMatch) Slots() []value.ID { return m.bind }

// planTerm is one compiled atom position: a variable slot, or an
// interned literal.
type planTerm struct {
	slot int      // variable slot when >= 0
	lit  value.ID // literal ID when slot < 0
}

// planAtom is an atom compiled against a store: the relation, the
// columnar block holding rows of the atom's arity, and the block's
// columns snapshotted for direct indexing — unification reads
// cols[pos][off] without materializing a row. order lists the term
// positions with literals first, so a candidate row is rejected before
// any variable column is touched. dense records that block offsets and
// global rows coincide (no dead rows, single arity class), eliding the
// per-row translation; buf is the atom's posting-intersection scratch
// (safe per atom: the search uses each atom at one depth at a time).
// epoch is the relation's mutation epoch at compile time: the column
// snapshots are valid only while it holds, and the search revalidates it
// after every match callback (the only point user code runs). frozen
// relations cannot mutate at all, so their atoms skip revalidation —
// that, plus every buffer being plan-local, is what lets any number of
// goroutines run plans over one frozen store concurrently.
type planAtom struct {
	rel    *storage.Rel
	block  storage.Block
	cols   [][]value.ID
	terms  []planTerm
	order  []int
	dense  bool
	frozen bool
	epoch  uint64
	buf    []int
}

// plan is a conjunction compiled against a store: atoms over variable
// slots and literal IDs, plus the initial slot bindings. part/parts
// restrict the enumeration to one contiguous shard of the outermost
// atom's candidate range (see ForEachIDsPart); 0/1 means the whole range.
type plan struct {
	atoms   []planAtom
	names   []string   // slot → variable name
	init    []value.ID // initial binding per slot; NoID when unbound
	extras  Binding    // initial bindings for variables not in the conjunction
	empty   bool       // no homomorphism can exist (missing relation or never-interned value)
	mutable bool       // some atom's relation is not frozen: revalidate epochs
	part    int
	parts   int
}

// compile builds the ID plan for conj over st. Literals and initial
// bindings are looked up (not interned): a value the store has never
// interned cannot occur in any stored row, so its atom — and therefore
// the conjunction — has no homomorphism, and the plan is marked empty.
func compile(st *storage.Store, conj Conjunction, initial Binding) plan {
	var p plan
	in := st.Interner()
	slotOf := make(map[string]int)
	p.atoms = make([]planAtom, 0, len(conj))
	for _, a := range conj {
		rel := st.Rel(a.Rel)
		if rel == nil {
			p.empty = true
			return p
		}
		block, ok := rel.BlockFor(len(a.Terms))
		if !ok {
			// No stored row has the atom's arity, so nothing can match.
			p.empty = true
			return p
		}
		pa := planAtom{rel: rel, block: block, cols: block.Cols(), terms: make([]planTerm, len(a.Terms)), dense: block.Dense(), frozen: rel.Frozen(), epoch: rel.Epoch()}
		if !pa.frozen {
			p.mutable = true
		}
		for j, t := range a.Terms {
			if t.IsVar {
				s, ok := slotOf[t.Name]
				if !ok {
					s = len(p.names)
					slotOf[t.Name] = s
					p.names = append(p.names, t.Name)
				}
				pa.terms[j] = planTerm{slot: s}
			} else {
				id, ok := in.Lookup(t.Val)
				if !ok {
					p.empty = true
					return p
				}
				pa.terms[j] = planTerm{slot: -1, lit: id}
			}
		}
		pa.order = make([]int, 0, len(pa.terms))
		for j, t := range pa.terms {
			if t.slot < 0 {
				pa.order = append(pa.order, j)
			}
		}
		for j, t := range pa.terms {
			if t.slot >= 0 {
				pa.order = append(pa.order, j)
			}
		}
		p.atoms = append(p.atoms, pa)
	}
	p.init = make([]value.ID, len(p.names))
	for i := range p.init {
		p.init[i] = value.NoID
	}
	for name, v := range initial {
		s, inConj := slotOf[name]
		if !inConj {
			if p.extras == nil {
				p.extras = Binding{}
			}
			p.extras[name] = v
			continue
		}
		id, ok := in.Lookup(v)
		if !ok {
			p.empty = true
			return p
		}
		p.init[s] = id
	}
	return p
}

// revalidate panics when any relation a plan was compiled against has
// been mutated since compile time: the plan's column snapshots (and the
// posting lists feeding it) would silently describe a stale store. It is
// called after every match callback — the only point during enumeration
// where caller code runs. Frozen relations cannot be mutated, so their
// atoms are exempt (and a fully frozen plan skips the pass entirely —
// reading another goroutine's epoch would be both racy and pointless).
func (p *plan) revalidate() {
	if !p.mutable {
		return
	}
	for i := range p.atoms {
		pa := &p.atoms[i]
		if pa.frozen {
			continue
		}
		if e := pa.rel.Epoch(); e != pa.epoch {
			panic(fmt.Sprintf(
				"logic: relation %q mutated during plan enumeration (epoch %d -> %d): a store must not be written while a compiled plan runs over it; collect matches first, or write to a different store",
				pa.rel.Name(), pa.epoch, e))
		}
	}
}

// candidates returns the candidate rows of pa worth testing under the
// current bindings: when two or more positions are determined (bound
// variable or literal), the intersection of the two smallest posting
// lists — computed into buf, which is reused across calls at the same
// search depth — otherwise the single available list. scan is true when
// no position is determined and the caller must scan the whole block.
func candidates(pa *planAtom, bind []value.ID, buf []int) (cands []int, scan bool, out []int) {
	var best, second []int
	bestLen, secondLen := -1, -1
	for pos, t := range pa.terms {
		var id value.ID
		switch {
		case t.slot < 0:
			id = t.lit
		case bind[t.slot] != value.NoID:
			id = bind[t.slot]
		default:
			continue
		}
		list := pa.rel.CandidatesID(pos, id)
		n := len(list)
		if n == 0 {
			return nil, false, buf
		}
		switch {
		case bestLen < 0 || n < bestLen:
			second, secondLen = best, bestLen
			best, bestLen = list, n
		case secondLen < 0 || n < secondLen:
			second, secondLen = list, n
		}
	}
	if bestLen < 0 {
		return nil, true, buf
	}
	// Intersecting pays once the smallest list is non-trivial; below that
	// the per-row column check is cheaper than the merge.
	if secondLen < 0 || bestLen <= 8 {
		return best, false, buf
	}
	buf = storage.IntersectPostings(buf, best, second)
	return buf, false, buf
}

// run enumerates the plan's homomorphisms, invoking fn per match and
// stopping early when fn returns false.
func run(p plan, fn func(*IDMatch) bool) {
	n := len(p.atoms)
	bind := append([]value.ID(nil), p.init...)
	rows := make([]RowRef, n)
	done := make([]bool, n)
	var trail []int // slots bound since the search started, in order
	im := IDMatch{names: p.names}
	var rec func(depth int) bool
	rec = func(depth int) bool {
		if depth == n {
			im.Rows = rows
			im.bind = bind
			cont := fn(&im)
			p.revalidate()
			return cont
		}
		// Adaptive join order: the unprocessed atom with the smallest
		// estimated candidate set — the minimum posting-list length over
		// its determined positions (bound variable or literal), O(1) per
		// read on the materialized posting lists. An atom with no
		// determined position is estimated at its full block length (a
		// scan). An empty posting list estimates to 0, so a contradicted
		// atom is picked first and fails the branch immediately. Ties keep
		// the lowest atom index, so the order stays deterministic.
		bestAtom := -1
		bestEst := int(^uint(0) >> 1)
		for i := range p.atoms {
			if done[i] {
				continue
			}
			cand := &p.atoms[i]
			est := cand.block.Len()
			for pos, t := range cand.terms {
				var id value.ID
				switch {
				case t.slot < 0:
					id = t.lit
				case bind[t.slot] != value.NoID:
					id = bind[t.slot]
				default:
					continue
				}
				if l := len(cand.rel.CandidatesID(pos, id)); l < est {
					est = l
				}
			}
			if est < bestEst {
				bestEst, bestAtom = est, i
			}
		}
		pa := &p.atoms[bestAtom]
		done[bestAtom] = true
		cont := true
		cands, scan, buf := candidates(pa, bind, pa.buf)
		pa.buf = buf
		limit := len(cands)
		if scan {
			limit = pa.block.Len()
		}
		// A sharded plan restricts the outermost atom's candidate range to
		// its contiguous [lo, hi) slice; every deeper level runs the full
		// range. Shard boundaries depend only on the store and the shard
		// arithmetic, so concatenating shards 0..parts-1 reproduces the
		// unsharded enumeration exactly, in order.
		lo, hi := 0, limit
		if p.parts > 1 && depth == 0 {
			lo = limit * p.part / p.parts
			hi = limit * (p.part + 1) / p.parts
		}
	rowLoop:
		for k := lo; k < hi; k++ {
			var row, off int
			switch {
			case scan && pa.dense:
				row, off = k, k
			case scan:
				off = k
				if !pa.block.LiveAt(off) {
					continue
				}
				row = pa.block.RowAt(off)
			case pa.dense:
				row = cands[k]
				off = row
			default:
				row = cands[k]
				if off = pa.block.Offset(row); off < 0 {
					continue // a row of another arity class sharing the index
				}
			}
			base := len(trail)
			ok := true
			for _, j := range pa.order {
				t := pa.terms[j]
				got := pa.cols[j][off]
				if t.slot < 0 {
					if t.lit != got {
						ok = false
						break
					}
					continue
				}
				if b := bind[t.slot]; b != value.NoID {
					if b != got {
						ok = false
						break
					}
					continue
				}
				bind[t.slot] = got
				trail = append(trail, t.slot)
			}
			if ok {
				rows[bestAtom] = RowRef{Rel: pa.rel.Name(), Row: row}
				if !rec(depth + 1) {
					cont = false
				}
			}
			for _, s := range trail[base:] {
				bind[s] = value.NoID
			}
			trail = trail[:base]
			if !cont {
				break rowLoop
			}
		}
		done[bestAtom] = false
		return cont
	}
	rec(0)
}

// ForEachIDs enumerates homomorphisms in interned form: bindings are
// value.IDs of st's interner and no value.Value is materialized. This is
// the hot-path entry used by the chase's egd loop and by normalization;
// use ForEach when you need the bindings as values. The IDMatch passed to
// fn is transient. Initial bindings for variables outside the conjunction
// are not visible through the IDMatch (use ForEach for those).
func ForEachIDs(st *storage.Store, conj Conjunction, initial Binding, fn func(*IDMatch) bool) {
	ForEachIDsPart(st, conj, initial, 0, 1, fn)
}

// ForEachIDsPart is ForEachIDs restricted to the part-th of parts
// contiguous shards of the enumeration: the candidate range of the
// outermost (first-chosen) atom is split into parts contiguous
// sub-ranges, and only homomorphisms rooted in sub-range part are
// enumerated. Concatenating the matches of shards 0, 1, ..., parts-1
// yields exactly the ForEachIDs enumeration in order — the property the
// parallel concrete chase relies on for deterministic, byte-identical
// merges. Shards share no mutable state, so any number of them may run
// concurrently against a frozen store. part/parts outside 0 ≤ part <
// parts enumerate nothing.
func ForEachIDsPart(st *storage.Store, conj Conjunction, initial Binding, part, parts int, fn func(*IDMatch) bool) {
	if part < 0 || parts < 1 || part >= parts {
		return
	}
	if len(conj) == 0 {
		// The empty conjunction has exactly one (empty) homomorphism; it
		// belongs to the first shard.
		if part == 0 {
			fn(&IDMatch{})
		}
		return
	}
	p := compile(st, conj, initial)
	if p.empty {
		return
	}
	p.part, p.parts = part, parts
	run(p, fn)
}

// ForEachIDsPartMulti runs shard part of parts over every conjunction in
// conjs, in order, invoking fn with the conjunction's index and the
// match. It is the multi-conjunction form of ForEachIDsPart for workers
// that own one shard of a whole phase — the egd phase enumerates all egd
// bodies (and normalization all renamed conjunctions) per round, so a
// worker sweeps its shard of each in sequence. Per conjunction, the
// ForEachIDsPart concatenation property holds: concatenating the
// (conjunction, shard 0), ..., (conjunction, shard parts-1) streams
// reproduces the ForEachIDs enumeration of that conjunction in order.
// fn returning false stops the whole sweep.
func ForEachIDsPartMulti(st *storage.Store, conjs []Conjunction, part, parts int, fn func(ci int, m *IDMatch) bool) {
	stopped := false
	for ci := range conjs {
		if stopped {
			return
		}
		ForEachIDsPart(st, conjs[ci], nil, part, parts, func(m *IDMatch) bool {
			if !fn(ci, m) {
				stopped = true
				return false
			}
			return true
		})
	}
}

// ForEach enumerates homomorphisms from the conjunction into the store,
// starting from the initial binding (which may pre-bind variables; pass
// nil for none). It invokes fn for each match and stops early when fn
// returns false. The Binding handed to fn is freshly built per match and
// safe to retain; Rows is transient and must be cloned if retained. Atom
// order in Rows follows the conjunction, regardless of the join order
// chosen internally.
func ForEach(st *storage.Store, conj Conjunction, initial Binding, fn func(Match) bool) {
	if len(conj) == 0 {
		// Clone so the returned Binding honors the safe-to-retain
		// contract (Clone of a nil Binding is an empty one).
		fn(Match{Binding: initial.Clone()})
		return
	}
	p := compile(st, conj, initial)
	if p.empty {
		return
	}
	in := st.Interner()
	var vals []value.Value
	run(p, func(im *IDMatch) bool {
		b := make(Binding, len(p.names)+len(p.extras))
		for k, v := range p.extras {
			b[k] = v
		}
		vals = in.ResolveAll(vals[:0], im.bind)
		for i, name := range p.names {
			b[name] = vals[i]
		}
		return fn(Match{Binding: b, Rows: im.Rows})
	})
}

// FindAll materializes every homomorphism. Bindings and row witnesses are
// safe to retain.
func FindAll(st *storage.Store, conj Conjunction, initial Binding) []Match {
	var out []Match
	ForEach(st, conj, initial, func(m Match) bool {
		out = append(out, Match{
			Binding: m.Binding,
			Rows:    append([]RowRef(nil), m.Rows...),
		})
		return true
	})
	return out
}

// FindOne returns some homomorphism, or ok=false when none exists.
func FindOne(st *storage.Store, conj Conjunction, initial Binding) (Match, bool) {
	var got Match
	found := false
	ForEach(st, conj, initial, func(m Match) bool {
		got = Match{Binding: m.Binding, Rows: append([]RowRef(nil), m.Rows...)}
		found = true
		return false
	})
	return got, found
}

// Exists reports whether at least one homomorphism exists.
func Exists(st *storage.Store, conj Conjunction, initial Binding) bool {
	found := false
	ForEachIDs(st, conj, initial, func(*IDMatch) bool {
		found = true
		return false
	})
	return found
}

// SortMatches orders matches deterministically by their bindings, for
// stable output in tools and tests.
func SortMatches(ms []Match, vars []string) {
	sort.Slice(ms, func(i, j int) bool {
		for _, v := range vars {
			a, okA := ms[i].Binding[v]
			bb, okB := ms[j].Binding[v]
			if !okA || !okB {
				continue
			}
			if c := value.Compare(a, bb); c != 0 {
				return c < 0
			}
		}
		return false
	})
}
