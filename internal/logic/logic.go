// Package logic implements conjunctions of atomic formulas and the
// homomorphism search engine used throughout temporal data exchange: a
// chase step fires on a homomorphism from the left-hand side of a
// dependency to an instance (paper §2, §4.3), normalization enumerates
// homomorphisms from the renamed conjunctions N(Φ+) (Algorithm 1), and
// naïve query evaluation finds all homomorphisms from a query body (§5).
//
// A homomorphism here maps variables to database values such that every
// atom's image is a stored tuple; it is the identity on literals. Nulls
// are treated as plain values (naïve-table semantics): a null matches
// only itself.
package logic

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/storage"
	"repro/internal/value"
)

// Term is a variable or a literal value in an atom.
type Term struct {
	IsVar bool
	Name  string      // variable name when IsVar
	Val   value.Value // literal otherwise
}

// Var returns a variable term.
func Var(name string) Term { return Term{IsVar: true, Name: name} }

// Lit returns a literal term.
func Lit(v value.Value) Term { return Term{Val: v} }

// Const returns a literal constant term — shorthand for Lit(NewConst(s)).
func Const(s string) Term { return Lit(value.NewConst(s)) }

// String renders the term: variables as ?name, literals via value syntax.
func (t Term) String() string {
	if t.IsVar {
		return "?" + t.Name
	}
	return t.Val.String()
}

// Atom is a relational atom R(t1, ..., tn).
type Atom struct {
	Rel   string
	Terms []Term
}

// NewAtom builds an atom.
func NewAtom(rel string, terms ...Term) Atom { return Atom{Rel: rel, Terms: terms} }

// String renders the atom.
func (a Atom) String() string {
	parts := make([]string, len(a.Terms))
	for i, t := range a.Terms {
		parts[i] = t.String()
	}
	return a.Rel + "(" + strings.Join(parts, ", ") + ")"
}

// Vars returns the variable names occurring in the atom, in order of
// first occurrence.
func (a Atom) Vars() []string {
	var out []string
	seen := make(map[string]bool)
	for _, t := range a.Terms {
		if t.IsVar && !seen[t.Name] {
			seen[t.Name] = true
			out = append(out, t.Name)
		}
	}
	return out
}

// Conjunction is a conjunction of atoms φ = A1 ∧ ... ∧ Ak.
type Conjunction []Atom

// String renders the conjunction with " ∧ " separators.
func (c Conjunction) String() string {
	parts := make([]string, len(c))
	for i, a := range c {
		parts[i] = a.String()
	}
	return strings.Join(parts, " ∧ ")
}

// Vars returns all variable names in order of first occurrence.
func (c Conjunction) Vars() []string {
	var out []string
	seen := make(map[string]bool)
	for _, a := range c {
		for _, t := range a.Terms {
			if t.IsVar && !seen[t.Name] {
				seen[t.Name] = true
				out = append(out, t.Name)
			}
		}
	}
	return out
}

// HasVar reports whether the named variable occurs in the conjunction.
func (c Conjunction) HasVar(name string) bool {
	for _, a := range c {
		for _, t := range a.Terms {
			if t.IsVar && t.Name == name {
				return true
			}
		}
	}
	return false
}

// RenameTemporal returns a copy of the conjunction where each occurrence
// of the temporal variable tvar is replaced by a fresh variable unique to
// its atom: the paper's N(Φ+) construction (§4.2, Example 9). The fresh
// variables are named tvar#0, tvar#1, ... per atom index.
func (c Conjunction) RenameTemporal(tvar string) Conjunction {
	out := make(Conjunction, len(c))
	for i, a := range c {
		na := Atom{Rel: a.Rel, Terms: make([]Term, len(a.Terms))}
		for j, t := range a.Terms {
			if t.IsVar && t.Name == tvar {
				na.Terms[j] = Var(fmt.Sprintf("%s#%d", tvar, i))
			} else {
				na.Terms[j] = t
			}
		}
		out[i] = na
	}
	return out
}

// Binding maps variable names to values. It plays the role of a
// homomorphism restricted to the variables of a formula.
type Binding map[string]value.Value

// Clone returns a copy of the binding.
func (b Binding) Clone() Binding {
	out := make(Binding, len(b))
	for k, v := range b {
		out[k] = v
	}
	return out
}

// Apply maps a term to its value under the binding; ok=false when the
// term is an unbound variable.
func (b Binding) Apply(t Term) (value.Value, bool) {
	if !t.IsVar {
		return t.Val, true
	}
	v, ok := b[t.Name]
	return v, ok
}

// RowRef identifies a stored tuple: relation name and row number.
type RowRef struct {
	Rel string
	Row int
}

// Match is one homomorphism from a conjunction into a store: the variable
// binding plus, per atom (in conjunction order), the row its image landed
// on. The Rows witness is what Algorithm 1's set-building step consumes
// (h : φ* ↦ {f1, ..., fn}).
type Match struct {
	Binding Binding
	Rows    []RowRef
}

// unify extends binding b so atom a's terms match tuple tup. It reports
// success and records any newly bound variables in added (so the caller
// can backtrack).
func unify(a Atom, tup []value.Value, b Binding, added *[]string) bool {
	if len(a.Terms) != len(tup) {
		return false
	}
	for i, t := range a.Terms {
		if !t.IsVar {
			if t.Val != tup[i] {
				return false
			}
			continue
		}
		if bound, ok := b[t.Name]; ok {
			if bound != tup[i] {
				return false
			}
			continue
		}
		b[t.Name] = tup[i]
		*added = append(*added, t.Name)
	}
	return true
}

// candidateRows returns the rows of rel worth testing against atom a
// under binding b, using the cheapest available index on a bound
// position, or all rows when nothing is bound.
func candidateRows(rel *storage.Rel, a Atom, b Binding) []int {
	bestRows := -1
	var best []int
	for pos, t := range a.Terms {
		v, ok := b.Apply(t)
		if !ok {
			continue
		}
		rows := rel.Candidates(pos, v)
		if bestRows == -1 || len(rows) < bestRows {
			bestRows = len(rows)
			best = rows
			if bestRows == 0 {
				return nil
			}
		}
	}
	if bestRows >= 0 {
		return best
	}
	all := make([]int, rel.Len())
	for i := range all {
		all[i] = i
	}
	return all
}

// boundCount counts the atom's terms that are literals or bound variables
// under b — the join-order heuristic score.
func boundCount(a Atom, b Binding) int {
	n := 0
	for _, t := range a.Terms {
		if _, ok := b.Apply(t); ok {
			n++
		}
	}
	return n
}

// ForEach enumerates homomorphisms from the conjunction into the store,
// starting from the initial binding (which may pre-bind variables; pass
// nil for none). It invokes fn for each match and stops early when fn
// returns false. The Match passed to fn is transient: fn must clone
// Binding/Rows if it retains them. Atom order in Rows follows the
// conjunction, regardless of the join order chosen internally.
func ForEach(st *storage.Store, conj Conjunction, initial Binding, fn func(Match) bool) {
	if len(conj) == 0 {
		b := initial
		if b == nil {
			b = Binding{}
		}
		fn(Match{Binding: b})
		return
	}
	for _, a := range conj {
		if st.Rel(a.Rel) == nil {
			return // some relation is empty: no homomorphism exists
		}
	}
	b := Binding{}
	for k, v := range initial {
		b[k] = v
	}
	rows := make([]RowRef, len(conj))
	done := make([]bool, len(conj))
	var rec func(depth int) bool
	rec = func(depth int) bool {
		if depth == len(conj) {
			return fn(Match{Binding: b, Rows: rows})
		}
		// Greedy join order: the unprocessed atom with the most bound terms.
		bestAtom, bestScore := -1, -1
		for i, a := range conj {
			if done[i] {
				continue
			}
			if s := boundCount(a, b); s > bestScore {
				bestScore, bestAtom = s, i
			}
		}
		a := conj[bestAtom]
		done[bestAtom] = true
		defer func() { done[bestAtom] = false }()
		rel := st.Rel(a.Rel)
		for _, row := range candidateRows(rel, a, b) {
			var added []string
			if unify(a, rel.Tuple(row), b, &added) {
				rows[bestAtom] = RowRef{Rel: a.Rel, Row: row}
				if !rec(depth + 1) {
					for _, name := range added {
						delete(b, name)
					}
					return false
				}
			}
			for _, name := range added {
				delete(b, name)
			}
		}
		return true
	}
	rec(0)
}

// FindAll materializes every homomorphism. Bindings and row witnesses are
// cloned and safe to retain.
func FindAll(st *storage.Store, conj Conjunction, initial Binding) []Match {
	var out []Match
	ForEach(st, conj, initial, func(m Match) bool {
		out = append(out, Match{
			Binding: m.Binding.Clone(),
			Rows:    append([]RowRef(nil), m.Rows...),
		})
		return true
	})
	return out
}

// FindOne returns some homomorphism, or ok=false when none exists.
func FindOne(st *storage.Store, conj Conjunction, initial Binding) (Match, bool) {
	var got Match
	found := false
	ForEach(st, conj, initial, func(m Match) bool {
		got = Match{Binding: m.Binding.Clone(), Rows: append([]RowRef(nil), m.Rows...)}
		found = true
		return false
	})
	return got, found
}

// Exists reports whether at least one homomorphism exists.
func Exists(st *storage.Store, conj Conjunction, initial Binding) bool {
	_, ok := FindOne(st, conj, initial)
	return ok
}

// SortMatches orders matches deterministically by their bindings, for
// stable output in tools and tests.
func SortMatches(ms []Match, vars []string) {
	sort.Slice(ms, func(i, j int) bool {
		for _, v := range vars {
			a, okA := ms[i].Binding[v]
			bb, okB := ms[j].Binding[v]
			if !okA || !okB {
				continue
			}
			if c := value.Compare(a, bb); c != 0 {
				return c < 0
			}
		}
		return false
	})
}
