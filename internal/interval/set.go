package interval

import (
	"sort"
	"strings"
)

// Set is a set of time points represented as sorted, disjoint,
// non-adjacent intervals (the canonical coalesced form, paper §2).
// The zero value is the empty set, ready to use.
type Set struct {
	ivs []Interval // invariant: sorted by Start; ivs[i].End < ivs[i+1].Start
}

// NewSet builds a Set from arbitrary intervals, merging overlaps and
// adjacencies into canonical form. Zero-value (invalid) intervals are
// ignored.
func NewSet(ivs ...Interval) Set {
	var s Set
	for _, iv := range ivs {
		s.Add(iv)
	}
	return s
}

// Add inserts an interval, merging it with any overlapping or adjacent
// members to preserve the canonical form.
func (s *Set) Add(iv Interval) {
	if !iv.Valid() {
		return
	}
	// Find insertion window: all members that overlap or are adjacent to iv.
	lo := sort.Search(len(s.ivs), func(i int) bool { return s.ivs[i].End >= iv.Start })
	hi := sort.Search(len(s.ivs), func(i int) bool { return s.ivs[i].Start > iv.End })
	if lo == hi {
		// No merge partners; plain insertion.
		s.ivs = append(s.ivs, Interval{})
		copy(s.ivs[lo+1:], s.ivs[lo:])
		s.ivs[lo] = iv
		return
	}
	merged := Interval{
		Start: min(iv.Start, s.ivs[lo].Start),
		End:   max(iv.End, s.ivs[hi-1].End),
	}
	s.ivs[lo] = merged
	s.ivs = append(s.ivs[:lo+1], s.ivs[hi:]...)
}

// Contains reports whether the time point t is in the set.
func (s *Set) Contains(t Time) bool {
	i := sort.Search(len(s.ivs), func(i int) bool { return s.ivs[i].End > t })
	return i < len(s.ivs) && s.ivs[i].Contains(t)
}

// ContainsInterval reports whether every point of iv is in the set.
func (s *Set) ContainsInterval(iv Interval) bool {
	i := sort.Search(len(s.ivs), func(i int) bool { return s.ivs[i].End > iv.Start })
	return i < len(s.ivs) && s.ivs[i].ContainsInterval(iv)
}

// Intervals returns the canonical members in ascending order. The caller
// must not mutate the returned slice.
func (s *Set) Intervals() []Interval { return s.ivs }

// Len returns the number of canonical intervals (not time points).
func (s *Set) Len() int { return len(s.ivs) }

// Empty reports whether the set contains no time points.
func (s *Set) Empty() bool { return len(s.ivs) == 0 }

// Min returns the least time point in the set; ok=false when empty.
func (s *Set) Min() (Time, bool) {
	if len(s.ivs) == 0 {
		return 0, false
	}
	return s.ivs[0].Start, true
}

// Unbounded reports whether the set extends to infinity.
func (s *Set) Unbounded() bool {
	return len(s.ivs) > 0 && s.ivs[len(s.ivs)-1].Unbounded()
}

// IntersectInterval returns the sub-intervals of the set lying inside iv.
func (s *Set) IntersectInterval(iv Interval) []Interval {
	var out []Interval
	for _, m := range s.ivs {
		if x, ok := m.Intersect(iv); ok {
			out = append(out, x)
		}
	}
	return out
}

// Union returns a new set containing every point of s and other.
func (s *Set) Union(other *Set) Set {
	out := NewSet(s.ivs...)
	for _, iv := range other.ivs {
		out.Add(iv)
	}
	return out
}

// Intersect returns a new set containing the points common to s and other.
func (s *Set) Intersect(other *Set) Set {
	var out Set
	i, j := 0, 0
	for i < len(s.ivs) && j < len(other.ivs) {
		if x, ok := s.ivs[i].Intersect(other.ivs[j]); ok {
			out.ivs = append(out.ivs, x)
		}
		if s.ivs[i].End < other.ivs[j].End {
			i++
		} else {
			j++
		}
	}
	return out
}

// Equal reports whether two sets contain exactly the same time points.
func (s *Set) Equal(other *Set) bool {
	if len(s.ivs) != len(other.ivs) {
		return false
	}
	for i := range s.ivs {
		if s.ivs[i] != other.ivs[i] {
			return false
		}
	}
	return true
}

// String renders the set as a comma-separated interval list, e.g.
// "[1,3), [5,inf)". The empty set renders as "{}".
func (s *Set) String() string {
	if len(s.ivs) == 0 {
		return "{}"
	}
	parts := make([]string, len(s.ivs))
	for i, iv := range s.ivs {
		parts[i] = iv.String()
	}
	return strings.Join(parts, ", ")
}

// Subtract returns a new set containing the points of s not in other.
func (s *Set) Subtract(other *Set) Set {
	var out Set
	for _, iv := range s.ivs {
		remains := []Interval{iv}
		for _, cut := range other.ivs {
			var next []Interval
			for _, r := range remains {
				x, ok := r.Intersect(cut)
				if !ok {
					next = append(next, r)
					continue
				}
				if r.Start < x.Start {
					next = append(next, Interval{Start: r.Start, End: x.Start})
				}
				if x.End < r.End {
					next = append(next, Interval{Start: x.End, End: r.End})
				}
			}
			remains = next
		}
		for _, r := range remains {
			out.Add(r)
		}
	}
	return out
}
