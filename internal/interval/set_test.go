package interval

import (
	"math/rand"
	"testing"
)

func TestSetAddCanonical(t *testing.T) {
	tests := []struct {
		name string
		in   []Interval
		want string
	}{
		{"empty", nil, "{}"},
		{"single", []Interval{MustNew(1, 3)}, "[1,3)"},
		{"disjoint-sorted", []Interval{MustNew(1, 3), MustNew(5, 7)}, "[1,3), [5,7)"},
		{"disjoint-unsorted", []Interval{MustNew(5, 7), MustNew(1, 3)}, "[1,3), [5,7)"},
		{"adjacent-merge", []Interval{MustNew(1, 3), MustNew(3, 5)}, "[1,5)"},
		{"overlap-merge", []Interval{MustNew(1, 4), MustNew(2, 6)}, "[1,6)"},
		{"contained", []Interval{MustNew(1, 9), MustNew(3, 4)}, "[1,9)"},
		{"bridge", []Interval{MustNew(1, 3), MustNew(5, 7), MustNew(3, 5)}, "[1,7)"},
		{"unbounded-swallow", []Interval{MustNew(10, Infinity), MustNew(1, 2), MustNew(12, 20)}, "[1,2), [10,inf)"},
		{"zero-ignored", []Interval{{}, MustNew(1, 2)}, "[1,2)"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			s := NewSet(tt.in...)
			if got := s.String(); got != tt.want {
				t.Fatalf("NewSet(%v) = %q want %q", tt.in, got, tt.want)
			}
		})
	}
}

func TestSetContains(t *testing.T) {
	s := NewSet(MustNew(1, 3), MustNew(5, Infinity))
	for _, tt := range []struct {
		t    Time
		want bool
	}{{0, false}, {1, true}, {2, true}, {3, false}, {4, false}, {5, true}, {1 << 50, true}} {
		if got := s.Contains(tt.t); got != tt.want {
			t.Errorf("Contains(%v)=%v want %v", tt.t, got, tt.want)
		}
	}
	if !s.ContainsInterval(MustNew(6, 100)) || s.ContainsInterval(MustNew(2, 6)) {
		t.Error("ContainsInterval broken")
	}
	if !s.Unbounded() {
		t.Error("set should be unbounded")
	}
	if mn, ok := s.Min(); !ok || mn != 1 {
		t.Errorf("Min=%v,%v", mn, ok)
	}
}

func TestSetOps(t *testing.T) {
	a := NewSet(MustNew(1, 5), MustNew(8, 12))
	b := NewSet(MustNew(3, 9), MustNew(11, Infinity))
	inter := a.Intersect(&b)
	if got := inter.String(); got != "[3,5), [8,9), [11,12)" {
		t.Fatalf("Intersect = %q", got)
	}
	uni := a.Union(&b)
	if got := uni.String(); got != "[1,inf)" {
		t.Fatalf("Union = %q", got)
	}
	if !inter.Equal(&inter) || inter.Equal(&uni) {
		t.Fatal("Equal broken")
	}
}

func TestSetIntersectInterval(t *testing.T) {
	s := NewSet(MustNew(1, 4), MustNew(6, 9))
	got := s.IntersectInterval(MustNew(3, 7))
	if len(got) != 2 || got[0] != MustNew(3, 4) || got[1] != MustNew(6, 7) {
		t.Fatalf("IntersectInterval = %v", got)
	}
}

func TestQuickSetMembership(t *testing.T) {
	// A set built from random intervals contains exactly the points any
	// input interval contains.
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 800; i++ {
		n := 1 + r.Intn(6)
		ivs := make([]Interval, n)
		for j := range ivs {
			ivs[j] = randomInterval(r, 25)
		}
		s := NewSet(ivs...)
		for tp := Time(0); tp < 60; tp++ {
			want := false
			for _, iv := range ivs {
				if iv.Contains(tp) {
					want = true
					break
				}
			}
			if got := s.Contains(tp); got != want {
				t.Fatalf("set %v of %v: Contains(%v)=%v want %v", s.String(), ivs, tp, got, want)
			}
		}
		// Canonical form invariant.
		prev := Interval{}
		for k, iv := range s.Intervals() {
			if !iv.Valid() {
				t.Fatalf("invalid member %v", iv)
			}
			if k > 0 && prev.End >= iv.Start {
				t.Fatalf("set not canonical: %v", s.String())
			}
			prev = iv
		}
	}
}

func TestQuickSetOpsSemantics(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	for i := 0; i < 400; i++ {
		mk := func() Set {
			n := r.Intn(5)
			ivs := make([]Interval, n)
			for j := range ivs {
				ivs[j] = randomInterval(r, 20)
			}
			return NewSet(ivs...)
		}
		a, b := mk(), mk()
		u := a.Union(&b)
		x := a.Intersect(&b)
		for tp := Time(0); tp < 50; tp++ {
			if u.Contains(tp) != (a.Contains(tp) || b.Contains(tp)) {
				t.Fatalf("union semantics broken at %v: %v %v", tp, a.String(), b.String())
			}
			if x.Contains(tp) != (a.Contains(tp) && b.Contains(tp)) {
				t.Fatalf("intersect semantics broken at %v: %v %v", tp, a.String(), b.String())
			}
		}
	}
}

func TestSetSubtract(t *testing.T) {
	a := NewSet(MustNew(0, 10), MustNew(20, Infinity))
	b := NewSet(MustNew(3, 5), MustNew(8, 25))
	got := a.Subtract(&b)
	if got.String() != "[0,3), [5,8), [25,inf)" {
		t.Fatalf("Subtract = %q", got.String())
	}
	empty := a.Subtract(&a)
	if !empty.Empty() {
		t.Fatalf("self-subtraction = %q", empty.String())
	}
	var zero Set
	same := a.Subtract(&zero)
	if !same.Equal(&a) {
		t.Fatalf("subtracting empty changed set: %q", same.String())
	}
}

func TestQuickSubtractSemantics(t *testing.T) {
	r := rand.New(rand.NewSource(91))
	for i := 0; i < 400; i++ {
		mk := func() Set {
			n := r.Intn(5)
			ivs := make([]Interval, n)
			for j := range ivs {
				ivs[j] = randomInterval(r, 20)
			}
			return NewSet(ivs...)
		}
		a, b := mk(), mk()
		d := a.Subtract(&b)
		for tp := Time(0); tp < 50; tp++ {
			if d.Contains(tp) != (a.Contains(tp) && !b.Contains(tp)) {
				t.Fatalf("subtract semantics broken at %v: %v %v", tp, a.String(), b.String())
			}
		}
	}
}
