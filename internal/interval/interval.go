// Package interval implements the time-interval algebra underlying the
// concrete view of temporal databases (Golshanara & Chomicki, "Temporal
// Data Exchange").
//
// Time points are non-negative integers (the paper's domain N0, isomorphic
// to the natural numbers). An interval is half-open, [s, e), with s < e;
// the end point may be Infinity, written [s, inf), which abstracts an
// unbounded validity period. The package provides the operations the rest
// of the system is built on: containment, overlap, adjacency,
// intersection, and endpoint partitioning (the basis of instance
// normalization, paper §4.2).
package interval

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Time is a time point in N0. The special value Infinity is greater than
// every proper time point and is only meaningful as an interval end point.
type Time uint64

// Infinity is the unbounded end point. An interval [s, Infinity) denotes
// the infinite set of time points {s, s+1, ...}.
const Infinity Time = math.MaxUint64

// String renders the time point, using "inf" for Infinity.
func (t Time) String() string {
	if t == Infinity {
		return "inf"
	}
	return strconv.FormatUint(uint64(t), 10)
}

// ParseTime parses a decimal time point or the token "inf"/"∞".
func ParseTime(s string) (Time, error) {
	switch strings.TrimSpace(s) {
	case "inf", "∞", "infinity", "Inf", "INF":
		return Infinity, nil
	}
	v, err := strconv.ParseUint(strings.TrimSpace(s), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("interval: bad time point %q: %w", s, err)
	}
	if Time(v) == Infinity {
		return 0, fmt.Errorf("interval: time point %d is reserved for infinity", v)
	}
	return Time(v), nil
}

// Interval is a half-open time interval [Start, End) with Start < End.
// End may be Infinity. The zero Interval is empty and invalid; construct
// intervals with New or Parse.
type Interval struct {
	Start Time
	End   Time
}

// ErrEmpty is returned when an operation would construct an empty or
// inverted interval.
var ErrEmpty = errors.New("interval: empty interval (start must be < end)")

// New returns the interval [s, e). It returns ErrEmpty when s >= e.
func New(s, e Time) (Interval, error) {
	if s >= e {
		return Interval{}, fmt.Errorf("%w: [%v, %v)", ErrEmpty, s, e)
	}
	if s == Infinity {
		return Interval{}, fmt.Errorf("interval: start may not be infinity")
	}
	return Interval{Start: s, End: e}, nil
}

// MustNew is New but panics on error. Intended for literals in tests and
// examples where the bounds are statically known to be valid.
func MustNew(s, e Time) Interval {
	iv, err := New(s, e)
	if err != nil {
		panic(err)
	}
	return iv
}

// Point returns the singleton interval [t, t+1) covering exactly t.
func Point(t Time) Interval {
	if t == Infinity {
		panic("interval: Point(Infinity)")
	}
	return Interval{Start: t, End: t + 1}
}

// IsZero reports whether iv is the zero (invalid) interval.
func (iv Interval) IsZero() bool { return iv == Interval{} }

// Valid reports whether iv is a well-formed non-empty interval.
func (iv Interval) Valid() bool { return iv.Start < iv.End && iv.Start != Infinity }

// Unbounded reports whether iv extends to infinity.
func (iv Interval) Unbounded() bool { return iv.End == Infinity }

// Len returns the number of time points in iv, and ok=false when the
// interval is unbounded.
func (iv Interval) Len() (n uint64, ok bool) {
	if iv.Unbounded() {
		return 0, false
	}
	return uint64(iv.End - iv.Start), true
}

// Contains reports whether the time point t lies in [Start, End).
func (iv Interval) Contains(t Time) bool {
	return iv.Start <= t && t < iv.End
}

// ContainsInterval reports whether other is fully inside iv.
func (iv Interval) ContainsInterval(other Interval) bool {
	return iv.Start <= other.Start && other.End <= iv.End
}

// Overlaps reports whether the two intervals share at least one time
// point. Half-open semantics: [1,3) and [3,5) do not overlap.
func (iv Interval) Overlaps(other Interval) bool {
	return iv.Start < other.End && other.Start < iv.End
}

// Adjacent reports whether the intervals abut without overlapping, i.e.
// one ends exactly where the other starts (paper §2: [s,e), [s',e') are
// adjacent if s' = e or s = e').
func (iv Interval) Adjacent(other Interval) bool {
	return iv.End == other.Start || other.End == iv.Start
}

// Intersect returns the common sub-interval and ok=false when the
// intervals are disjoint.
func (iv Interval) Intersect(other Interval) (Interval, bool) {
	s := max(iv.Start, other.Start)
	e := min(iv.End, other.End)
	if s >= e {
		return Interval{}, false
	}
	return Interval{Start: s, End: e}, true
}

// Union returns the smallest single interval covering both inputs and
// ok=false when they are neither overlapping nor adjacent (so a single
// interval cannot represent the union exactly).
func (iv Interval) Union(other Interval) (Interval, bool) {
	if !iv.Overlaps(other) && !iv.Adjacent(other) {
		return Interval{}, false
	}
	return Interval{Start: min(iv.Start, other.Start), End: max(iv.End, other.End)}, true
}

// Before reports whether iv lies strictly before other with a gap or
// exact adjacency (no shared points).
func (iv Interval) Before(other Interval) bool { return iv.End <= other.Start }

// Compare orders intervals by start, then end. It returns -1, 0, or +1.
func (iv Interval) Compare(other Interval) int {
	switch {
	case iv.Start < other.Start:
		return -1
	case iv.Start > other.Start:
		return 1
	case iv.End < other.End:
		return -1
	case iv.End > other.End:
		return 1
	}
	return 0
}

// String renders the interval in the paper's notation, e.g. "[2012,2014)"
// or "[2014,inf)".
func (iv Interval) String() string {
	return "[" + iv.Start.String() + "," + iv.End.String() + ")"
}

// Parse parses the paper's notation "[s,e)" (whitespace tolerated, "inf"
// accepted for the end point). The closing ")" is required; a closing "]"
// is rejected since all intervals are half-open.
func Parse(s string) (Interval, error) {
	t := strings.TrimSpace(s)
	if len(t) < 5 || t[0] != '[' || t[len(t)-1] != ')' {
		return Interval{}, fmt.Errorf("interval: %q is not of the form [s,e)", s)
	}
	body := t[1 : len(t)-1]
	parts := strings.Split(body, ",")
	if len(parts) != 2 {
		return Interval{}, fmt.Errorf("interval: %q must have exactly two endpoints", s)
	}
	start, err := ParseTime(parts[0])
	if err != nil {
		return Interval{}, err
	}
	end, err := ParseTime(parts[1])
	if err != nil {
		return Interval{}, err
	}
	return New(start, end)
}

// SplitAt splits iv at time point t into [Start, t) and [t, End). ok is
// false when t is not strictly inside the interval.
func (iv Interval) SplitAt(t Time) (left, right Interval, ok bool) {
	if t <= iv.Start || t >= iv.End {
		return Interval{}, Interval{}, false
	}
	return Interval{iv.Start, t}, Interval{t, iv.End}, true
}

// Fragment splits iv along the sorted cut points, keeping only cuts that
// fall strictly inside the interval. The returned fragments are
// consecutive, non-overlapping, and cover exactly iv. cuts need not be
// sorted or deduplicated.
func (iv Interval) Fragment(cuts []Time) []Interval {
	inside := make([]Time, 0, len(cuts))
	for _, c := range cuts {
		if c > iv.Start && c < iv.End {
			inside = append(inside, c)
		}
	}
	if len(inside) == 0 {
		return []Interval{iv}
	}
	sort.Slice(inside, func(i, j int) bool { return inside[i] < inside[j] })
	inside = dedupTimes(inside)
	out := make([]Interval, 0, len(inside)+1)
	prev := iv.Start
	for _, c := range inside {
		out = append(out, Interval{prev, c})
		prev = c
	}
	out = append(out, Interval{prev, iv.End})
	return out
}

func dedupTimes(ts []Time) []Time {
	out := ts[:1]
	for _, t := range ts[1:] {
		if t != out[len(out)-1] {
			out = append(out, t)
		}
	}
	return out
}

// Endpoints collects the distinct start and end points of the given
// intervals in ascending order. This is the sequence TP_Δ in Algorithm 1
// of the paper (§4.2).
func Endpoints(ivs []Interval) []Time {
	if len(ivs) == 0 {
		return nil
	}
	ts := make([]Time, 0, 2*len(ivs))
	for _, iv := range ivs {
		ts = append(ts, iv.Start, iv.End)
	}
	sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
	return dedupTimes(ts)
}

// CommonIntersection intersects all intervals. ok is false when the
// overall intersection is empty. The empty input yields ok=false.
func CommonIntersection(ivs []Interval) (Interval, bool) {
	if len(ivs) == 0 {
		return Interval{}, false
	}
	acc := ivs[0]
	for _, iv := range ivs[1:] {
		var ok bool
		acc, ok = acc.Intersect(iv)
		if !ok {
			return Interval{}, false
		}
	}
	return acc, true
}

// AllEqual reports whether every interval in ivs is identical. This is the
// second disjunct of the empty intersection property (Definition 10): the
// intersection of the facts' intervals equals their union exactly when all
// the intervals coincide.
func AllEqual(ivs []Interval) bool {
	if len(ivs) == 0 {
		return false
	}
	for _, iv := range ivs[1:] {
		if iv != ivs[0] {
			return false
		}
	}
	return true
}
