package interval

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestNew(t *testing.T) {
	tests := []struct {
		name    string
		s, e    Time
		wantErr bool
	}{
		{"basic", 1, 5, false},
		{"point-width", 3, 4, false},
		{"unbounded", 7, Infinity, false},
		{"empty", 5, 5, true},
		{"inverted", 6, 2, true},
		{"start-infinity", Infinity, Infinity, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			iv, err := New(tt.s, tt.e)
			if (err != nil) != tt.wantErr {
				t.Fatalf("New(%v,%v) err=%v wantErr=%v", tt.s, tt.e, err, tt.wantErr)
			}
			if err == nil && (!iv.Valid() || iv.Start != tt.s || iv.End != tt.e) {
				t.Fatalf("New(%v,%v)=%v, invalid", tt.s, tt.e, iv)
			}
		})
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew(5,2) did not panic")
		}
	}()
	MustNew(5, 2)
}

func TestPoint(t *testing.T) {
	p := Point(2013)
	if !p.Contains(2013) || p.Contains(2012) || p.Contains(2014) {
		t.Fatalf("Point(2013)=%v covers the wrong points", p)
	}
	if n, ok := p.Len(); !ok || n != 1 {
		t.Fatalf("Point length = %d,%v want 1,true", n, ok)
	}
}

func TestContains(t *testing.T) {
	iv := MustNew(2012, 2014)
	for _, tt := range []struct {
		t    Time
		want bool
	}{{2011, false}, {2012, true}, {2013, true}, {2014, false}, {Infinity, false}} {
		if got := iv.Contains(tt.t); got != tt.want {
			t.Errorf("%v.Contains(%v)=%v want %v", iv, tt.t, got, tt.want)
		}
	}
	unb := MustNew(2014, Infinity)
	if !unb.Contains(1 << 40) {
		t.Errorf("%v should contain very large time points", unb)
	}
	if unb.Contains(Infinity) {
		t.Errorf("%v must not contain Infinity itself (half-open)", unb)
	}
}

func TestOverlapsAdjacent(t *testing.T) {
	tests := []struct {
		a, b              Interval
		overlap, adjacent bool
	}{
		{MustNew(1, 3), MustNew(3, 5), false, true},
		{MustNew(3, 5), MustNew(1, 3), false, true},
		{MustNew(1, 4), MustNew(3, 5), true, false},
		{MustNew(1, 10), MustNew(3, 5), true, false},
		{MustNew(1, 2), MustNew(5, 6), false, false},
		{MustNew(1, 5), MustNew(1, 5), true, false},
		{MustNew(1, Infinity), MustNew(100, 200), true, false},
	}
	for _, tt := range tests {
		if got := tt.a.Overlaps(tt.b); got != tt.overlap {
			t.Errorf("%v.Overlaps(%v)=%v want %v", tt.a, tt.b, got, tt.overlap)
		}
		if got := tt.b.Overlaps(tt.a); got != tt.overlap {
			t.Errorf("Overlaps not symmetric for %v,%v", tt.a, tt.b)
		}
		if got := tt.a.Adjacent(tt.b); got != tt.adjacent {
			t.Errorf("%v.Adjacent(%v)=%v want %v", tt.a, tt.b, got, tt.adjacent)
		}
	}
}

func TestIntersect(t *testing.T) {
	a := MustNew(2012, 2015)
	b := MustNew(2013, Infinity)
	got, ok := a.Intersect(b)
	if !ok || got != MustNew(2013, 2015) {
		t.Fatalf("Intersect=%v,%v want [2013,2015),true", got, ok)
	}
	if _, ok := MustNew(1, 3).Intersect(MustNew(3, 5)); ok {
		t.Fatal("adjacent intervals must not intersect")
	}
}

func TestUnion(t *testing.T) {
	if got, ok := MustNew(1, 3).Union(MustNew(3, 5)); !ok || got != MustNew(1, 5) {
		t.Fatalf("adjacent union = %v,%v", got, ok)
	}
	if got, ok := MustNew(1, 4).Union(MustNew(2, 9)); !ok || got != MustNew(1, 9) {
		t.Fatalf("overlapping union = %v,%v", got, ok)
	}
	if _, ok := MustNew(1, 2).Union(MustNew(4, 5)); ok {
		t.Fatal("disjoint non-adjacent union must fail")
	}
}

func TestParseRoundTrip(t *testing.T) {
	tests := []struct {
		in   string
		want Interval
		err  bool
	}{
		{"[2012,2014)", MustNew(2012, 2014), false},
		{"[2014, inf)", MustNew(2014, Infinity), false},
		{"[ 0 , 1 )", MustNew(0, 1), false},
		{"[5,5)", Interval{}, true},
		{"[5,2)", Interval{}, true},
		{"(5,8)", Interval{}, true},
		{"[5,8]", Interval{}, true},
		{"[5)", Interval{}, true},
		{"[a,b)", Interval{}, true},
		{"", Interval{}, true},
	}
	for _, tt := range tests {
		got, err := Parse(tt.in)
		if (err != nil) != tt.err {
			t.Errorf("Parse(%q) err=%v wantErr=%v", tt.in, err, tt.err)
			continue
		}
		if err == nil && got != tt.want {
			t.Errorf("Parse(%q)=%v want %v", tt.in, got, tt.want)
		}
		if err == nil {
			back, err2 := Parse(got.String())
			if err2 != nil || back != got {
				t.Errorf("round trip failed for %v: %v %v", got, back, err2)
			}
		}
	}
}

func TestSplitAt(t *testing.T) {
	iv := MustNew(5, 11)
	l, r, ok := iv.SplitAt(8)
	if !ok || l != MustNew(5, 8) || r != MustNew(8, 11) {
		t.Fatalf("SplitAt(8)=%v,%v,%v", l, r, ok)
	}
	for _, bad := range []Time{5, 11, 4, 12} {
		if _, _, ok := iv.SplitAt(bad); ok {
			t.Errorf("SplitAt(%v) should fail", bad)
		}
	}
}

func TestFragment(t *testing.T) {
	// The paper's Example 14: f1 = R(a, [5,11)) fragmented on the endpoint
	// sequence <5,7,8,10,11,15> yields [5,7) [7,8) [8,10) [10,11).
	iv := MustNew(5, 11)
	got := iv.Fragment([]Time{5, 7, 8, 10, 11, 15})
	want := []Interval{MustNew(5, 7), MustNew(7, 8), MustNew(8, 10), MustNew(10, 11)}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Fragment=%v want %v", got, want)
	}
	// No interior cuts: the interval comes back whole.
	if got := iv.Fragment([]Time{1, 5, 11, 20}); !reflect.DeepEqual(got, []Interval{iv}) {
		t.Fatalf("Fragment with no interior cuts = %v", got)
	}
	// Unsorted, duplicated cuts are tolerated.
	if got := iv.Fragment([]Time{9, 6, 9, 6}); len(got) != 3 {
		t.Fatalf("Fragment with dup cuts = %v", got)
	}
}

func TestEndpoints(t *testing.T) {
	got := Endpoints([]Interval{MustNew(5, 11), MustNew(8, 15), MustNew(7, 10)})
	want := []Time{5, 7, 8, 10, 11, 15}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Endpoints=%v want %v", got, want)
	}
	if Endpoints(nil) != nil {
		t.Fatal("Endpoints(nil) should be nil")
	}
}

func TestCommonIntersectionAndAllEqual(t *testing.T) {
	ivs := []Interval{MustNew(5, 11), MustNew(8, 15), MustNew(7, 10)}
	got, ok := CommonIntersection(ivs)
	if !ok || got != MustNew(8, 10) {
		t.Fatalf("CommonIntersection=%v,%v", got, ok)
	}
	if _, ok := CommonIntersection([]Interval{MustNew(1, 2), MustNew(3, 4)}); ok {
		t.Fatal("disjoint intersection should be empty")
	}
	if _, ok := CommonIntersection(nil); ok {
		t.Fatal("empty input should not intersect")
	}
	if !AllEqual([]Interval{MustNew(1, 2), MustNew(1, 2)}) {
		t.Fatal("AllEqual on equal intervals")
	}
	if AllEqual([]Interval{MustNew(1, 2), MustNew(1, 3)}) {
		t.Fatal("AllEqual on different intervals")
	}
	if AllEqual(nil) {
		t.Fatal("AllEqual(nil) must be false")
	}
}

func TestCompare(t *testing.T) {
	a, b := MustNew(1, 5), MustNew(1, 7)
	if a.Compare(b) != -1 || b.Compare(a) != 1 || a.Compare(a) != 0 {
		t.Fatal("Compare ordering broken on shared start")
	}
	c := MustNew(2, 3)
	if a.Compare(c) != -1 || c.Compare(a) != 1 {
		t.Fatal("Compare ordering broken on start")
	}
}

// randomInterval builds a valid interval from two arbitrary uint64 seeds,
// occasionally unbounded.
func randomInterval(r *rand.Rand, maxT Time) Interval {
	s := Time(r.Uint64() % uint64(maxT))
	if r.Intn(8) == 0 {
		return Interval{Start: s, End: Infinity}
	}
	e := s + 1 + Time(r.Uint64()%uint64(maxT))
	return Interval{Start: s, End: e}
}

func TestQuickIntersectSound(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	cfg := &quick.Config{MaxCount: 2000, Rand: r, Values: func(vs []reflect.Value, r *rand.Rand) {
		vs[0] = reflect.ValueOf(randomInterval(r, 50))
		vs[1] = reflect.ValueOf(randomInterval(r, 50))
		vs[2] = reflect.ValueOf(Time(r.Uint64() % 120))
	}}
	// t in (a ∩ b) iff t in a and t in b.
	prop := func(a, b Interval, tp Time) bool {
		x, ok := a.Intersect(b)
		inBoth := a.Contains(tp) && b.Contains(tp)
		if !ok {
			return !inBoth || !a.Overlaps(b)
		}
		return x.Contains(tp) == inBoth
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickOverlapConsistency(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	cfg := &quick.Config{MaxCount: 2000, Rand: r, Values: func(vs []reflect.Value, r *rand.Rand) {
		vs[0] = reflect.ValueOf(randomInterval(r, 40))
		vs[1] = reflect.ValueOf(randomInterval(r, 40))
	}}
	// Overlaps ⟺ Intersect succeeds; Adjacent ⇒ not Overlaps.
	prop := func(a, b Interval) bool {
		_, ok := a.Intersect(b)
		if ok != a.Overlaps(b) {
			return false
		}
		if a.Adjacent(b) && a.Overlaps(b) {
			return false
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickFragmentCoverage(t *testing.T) {
	// Fragmentation preserves point membership and produces consecutive,
	// disjoint pieces.
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 2000; i++ {
		iv := randomInterval(r, 30)
		cuts := make([]Time, r.Intn(6))
		for j := range cuts {
			cuts[j] = Time(r.Uint64() % 80)
		}
		frags := iv.Fragment(cuts)
		prev := iv.Start
		for _, f := range frags {
			if f.Start != prev {
				t.Fatalf("gap in fragments of %v on %v: %v", iv, cuts, frags)
			}
			if !f.Valid() {
				t.Fatalf("invalid fragment %v", f)
			}
			prev = f.End
		}
		if prev != iv.End {
			t.Fatalf("fragments of %v on %v do not cover: %v", iv, cuts, frags)
		}
	}
}

func TestQuickParseRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for i := 0; i < 500; i++ {
		iv := randomInterval(r, 1000)
		back, err := Parse(iv.String())
		if err != nil || back != iv {
			t.Fatalf("round trip %v -> %v (%v)", iv, back, err)
		}
	}
}
