// Package coreof computes cores of concrete temporal solutions — the §7
// direction "revisit the classical data exchange problems ... such as
// the notion of core [Fagin, Kolaitis, Popa]" lifted to the temporal
// setting.
//
// The core of a (naïve-table) instance is its smallest retract: a
// subinstance C with a homomorphism from the whole instance onto C. For
// temporal instances the right notion is snapshot-wise: the core of the
// abstract view taken at every time point. Because interval-annotated
// null families denote per-snapshot distinct nulls, snapshots are
// independent, and the segment structure makes the computation finite:
// fragment the instance on its global endpoint partition, core each
// equal-interval group as a relational instance, and coalesce the
// fragments back together.
//
// The c-chase result is not a core in general — e.g. chasing the paper's
// Figure 4 without the salary egd materializes both Emp(Ada, IBM, N) and
// Emp(Ada, IBM, 18k) over [2013,2014), and the null fact folds into the
// constant one — which is exactly the classical motivation for cores:
// smaller, equivalent materializations.
package coreof

import (
	"repro/internal/fact"
	"repro/internal/instance"
	"repro/internal/interval"
	"repro/internal/logic"
	"repro/internal/normalize"
	"repro/internal/storage"
	"repro/internal/value"
)

// Of computes the snapshot-wise core of a concrete instance and returns
// it coalesced. The result represents an abstract instance that is
// homomorphically equivalent to ⟦jc⟧ with a minimal snapshot at every
// time point. Runtime is exponential in the number of nulls per snapshot
// in the worst case (core computation is NP-hard in general); intended
// for materialized solutions, which are small per snapshot.
func Of(jc *instance.Concrete) *instance.Concrete {
	// Global fragmentation groups facts into equal-interval classes, each
	// representing the homogeneous run of snapshots it spans.
	norm := normalize.Naive(jc)
	groups := make(map[interval.Interval][]fact.CFact)
	var order []interval.Interval
	for _, f := range norm.Facts() {
		if _, ok := groups[f.T]; !ok {
			order = append(order, f.T)
		}
		groups[f.T] = append(groups[f.T], f)
	}
	out := instance.NewConcrete(jc.Schema())
	for _, iv := range order {
		for _, f := range snapshotCore(groups[iv]) {
			out.MustInsert(f)
		}
	}
	return out.Coalesce()
}

// snapshotCore computes the core of one equal-interval fact group viewed
// as a relational instance (annotated nulls are the labeled nulls).
func snapshotCore(facts []fact.CFact) []fact.CFact {
	cur := facts
	for {
		smaller, shrunk := shrinkOnce(cur)
		if !shrunk {
			return cur
		}
		cur = smaller
	}
}

// shrinkOnce looks for a proper retraction: a homomorphism from the
// instance into itself minus one fact. On success it returns the image
// instance (deduplicated), which is strictly smaller.
func shrinkOnce(facts []fact.CFact) ([]fact.CFact, bool) {
	if len(facts) <= 1 {
		return facts, false
	}
	// Only facts containing nulls can be folded away: homomorphisms are
	// the identity on constants, so an all-constant fact maps to itself.
	for drop, f := range facts {
		if !f.HasNulls() {
			continue
		}
		st := storage.NewStore()
		for i, g := range facts {
			if i == drop {
				continue
			}
			st.Insert(g.Rel, g.Args)
		}
		conj := make(logic.Conjunction, len(facts))
		for i, g := range facts {
			conj[i] = factPattern(g)
		}
		if m, ok := logic.FindOne(st, conj, nil); ok {
			return applyHom(facts, m.Binding), true
		}
	}
	return facts, false
}

// factPattern renders a fact as a search atom: nulls become variables
// named by their value, constants stay literals.
func factPattern(f fact.CFact) logic.Atom {
	terms := make([]logic.Term, len(f.Args))
	for i, v := range f.Args {
		if v.IsNullLike() {
			terms[i] = logic.Var("ν:" + v.String())
		} else {
			terms[i] = logic.Lit(v)
		}
	}
	return logic.Atom{Rel: f.Rel, Terms: terms}
}

// applyHom maps every fact through the binding and deduplicates.
func applyHom(facts []fact.CFact, b logic.Binding) []fact.CFact {
	seen := make(map[string]bool)
	var out []fact.CFact
	for _, f := range facts {
		args := make([]value.Value, len(f.Args))
		for i, v := range f.Args {
			if v.IsNullLike() {
				if w, ok := b["ν:"+v.String()]; ok {
					args[i] = w.WithAnnotation(f.T)
					continue
				}
			}
			args[i] = v
		}
		nf := fact.CFact{Rel: f.Rel, Args: args, T: f.T}
		if k := nf.Key(); !seen[k] {
			seen[k] = true
			out = append(out, nf)
		}
	}
	return out
}

// IsCore reports whether the instance is already its own snapshot-wise
// core (no proper retraction exists in any equal-interval group).
func IsCore(jc *instance.Concrete) bool {
	return Of(jc).Len() == normalize.Naive(jc).Coalesce().Len()
}
