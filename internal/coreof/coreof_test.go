package coreof

import (
	"math/rand"
	"testing"

	"repro/internal/chase"
	"repro/internal/fact"
	"repro/internal/instance"
	"repro/internal/interval"
	"repro/internal/paperex"
	"repro/internal/value"
	"repro/internal/verify"
	"repro/internal/workload"
)

func TestChaseWithoutEgdsIsNotCore(t *testing.T) {
	// Without the salary egd, the chase of Figure 4 keeps both the
	// σ1-null facts and the σ2-constant facts on overlapping year ranges;
	// the core folds every dominated null fact into its constant twin.
	m := paperex.EmploymentMapping()
	m.EGDs = nil
	jc, _, err := chase.Concrete(paperex.Figure4(), m, nil)
	if err != nil {
		t.Fatal(err)
	}
	if jc.Len() != 8 {
		t.Fatalf("chase without egds = %d facts", jc.Len())
	}
	core := Of(jc)
	// The core must agree with the egd-chase result shape: the three
	// constant facts plus the two genuinely unknown periods.
	if core.Len() != 5 {
		t.Fatalf("core = %d facts:\n%s", core.Len(), core)
	}
	iv, c, inf := paperex.Iv, paperex.C, paperex.Inf
	for _, w := range []fact.CFact{
		fact.NewC("Emp", iv(2013, 2014), c("Ada"), c("IBM"), c("18k")),
		fact.NewC("Emp", iv(2014, inf), c("Ada"), c("Google"), c("18k")),
		fact.NewC("Emp", iv(2015, 2018), c("Bob"), c("IBM"), c("13k")),
	} {
		if !core.Contains(w) {
			t.Fatalf("core missing %v:\n%s", w, core)
		}
	}
	// Core is homomorphically equivalent to the original solution.
	if !verify.HomEquivalent(core.Abstract(), jc.Abstract()) {
		t.Fatal("core not equivalent to original")
	}
	if !IsCore(core) {
		t.Fatal("core of core must be itself")
	}
	if IsCore(jc) {
		t.Fatal("redundant instance wrongly reported as core")
	}
}

func TestEgdChaseResultIsAlreadyCore(t *testing.T) {
	// With the egd, the Figure 9 solution has no redundancy.
	jc, _, err := chase.Concrete(paperex.Figure4(), paperex.EmploymentMapping(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !IsCore(jc) {
		t.Fatalf("Figure 9 should be a core:\n%s\ncore:\n%s", jc, Of(jc))
	}
}

func TestNullChainFolds(t *testing.T) {
	// A chain of facts where each null fact is dominated by the next:
	// R(a, N1), R(a, N2), R(a, 5) over one interval folds to R(a, 5).
	var g value.NullGen
	iv := paperex.Iv(1, 4)
	jc := instance.NewConcrete(nil)
	jc.MustInsert(fact.NewC("R", iv, paperex.C("a"), g.FreshAnn(iv)))
	jc.MustInsert(fact.NewC("R", iv, paperex.C("a"), g.FreshAnn(iv)))
	jc.MustInsert(fact.NewC("R", iv, paperex.C("a"), paperex.C("5")))
	core := Of(jc)
	if core.Len() != 1 || !core.Contains(fact.NewC("R", iv, paperex.C("a"), paperex.C("5"))) {
		t.Fatalf("core:\n%s", core)
	}
}

func TestNonDominatedNullsSurvive(t *testing.T) {
	// R(a, N) with no constant twin cannot fold: the unknown is real.
	var g value.NullGen
	iv := paperex.Iv(1, 4)
	jc := instance.NewConcrete(nil)
	jc.MustInsert(fact.NewC("R", iv, paperex.C("a"), g.FreshAnn(iv)))
	jc.MustInsert(fact.NewC("R", iv, paperex.C("b"), paperex.C("5")))
	core := Of(jc)
	if core.Len() != 2 {
		t.Fatalf("core dropped a needed fact:\n%s", core)
	}
}

func TestTemporalScoping(t *testing.T) {
	// A null fact is dominated only where the constant twin's interval
	// overlaps it: R(a, N, [0,10)) with R(a, 5, [4,6)) folds exactly on
	// [4,6) and survives on [0,4) and [6,10).
	var g value.NullGen
	jc := instance.NewConcrete(nil)
	jc.MustInsert(fact.NewC("R", paperex.Iv(0, 10), paperex.C("a"), g.FreshAnn(paperex.Iv(0, 10))))
	jc.MustInsert(fact.NewC("R", paperex.Iv(4, 6), paperex.C("a"), paperex.C("5")))
	core := Of(jc)
	// Expect: constant on [4,6), nulls on [0,4) and [6,10).
	if core.Len() != 3 {
		t.Fatalf("core:\n%s", core)
	}
	if !core.Contains(fact.NewC("R", paperex.Iv(4, 6), paperex.C("a"), paperex.C("5"))) {
		t.Fatalf("constant fragment missing:\n%s", core)
	}
	nullIvs := interval.NewSet()
	for _, f := range core.Facts() {
		if f.HasNulls() {
			nullIvs.Add(f.T)
		}
	}
	want := interval.NewSet(paperex.Iv(0, 4), paperex.Iv(6, 10))
	if !nullIvs.Equal(&want) {
		t.Fatalf("null coverage = %s, want %s", nullIvs.String(), want.String())
	}
	if !verify.HomEquivalent(core.Abstract(), jc.Abstract()) {
		t.Fatal("core not equivalent")
	}
}

func TestCoreEquivalenceProperty(t *testing.T) {
	// Random chase outputs: the core is always homomorphically equivalent
	// to the original and never larger.
	r := rand.New(rand.NewSource(83))
	checked := 0
	for trial := 0; trial < 40; trial++ {
		m := workload.RandomMapping(r)
		m.EGDs = nil // keep redundancy around
		ic := workload.RandomInstanceFor(r, m, 1+r.Intn(3))
		jc, _, err := chase.Concrete(ic, m, nil)
		if err != nil {
			t.Fatal(err)
		}
		core := Of(jc)
		// Snapshot-wise minimality: the core never has more facts than the
		// original at any time point. (Its *concrete* fact count can grow:
		// a null that folds on part of its interval splits the fact.)
		ca, ja := core.Abstract(), jc.Abstract()
		for _, tp := range instance.SamplePoints(ca, ja) {
			if ca.Snapshot(tp).Len() > ja.Snapshot(tp).Len() {
				t.Fatalf("core grew at %v:\n%s\nvs\n%s", tp, core, jc)
			}
		}
		// The homomorphic-equivalence witness search is exponential in the
		// null count; bound the instances it runs on to keep the test fast
		// while still checking the vast majority of trials.
		if jc.Len() > 18 {
			continue
		}
		checked++
		if !verify.HomEquivalent(core.Abstract(), jc.Abstract()) {
			t.Fatalf("core not equivalent on:\n%s\ncore:\n%s", jc, core)
		}
		again := Of(core)
		if again.Len() != core.Len() {
			t.Fatalf("core not idempotent:\n%s\nvs\n%s", core, again)
		}
	}
	if checked < 10 {
		t.Fatalf("only %d trials fully checked — generator drifted", checked)
	}
}
