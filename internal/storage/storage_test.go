package storage

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/interval"
	"repro/internal/value"
)

func tup(vals ...string) []value.Value {
	out := make([]value.Value, len(vals))
	for i, v := range vals {
		out[i] = value.NewConst(v)
	}
	return out
}

func TestInsertDedup(t *testing.T) {
	s := NewStore()
	if !s.Insert("E", tup("Ada", "IBM")) {
		t.Fatal("first insert must add")
	}
	if s.Insert("E", tup("Ada", "IBM")) {
		t.Fatal("duplicate insert must not add")
	}
	if !s.Insert("E", tup("Ada", "Google")) {
		t.Fatal("distinct tuple must add")
	}
	if s.Rel("E").Len() != 2 || s.Size() != 2 {
		t.Fatalf("Len=%d Size=%d", s.Rel("E").Len(), s.Size())
	}
	if !s.Contains("E", tup("Ada", "IBM")) || s.Contains("E", tup("Bob", "IBM")) {
		t.Fatal("Contains broken")
	}
	if s.Contains("F", tup("x")) {
		t.Fatal("Contains on absent relation")
	}
}

func TestZeroValueStore(t *testing.T) {
	var s Store
	if !s.Insert("R", tup("a")) {
		t.Fatal("zero-value store must accept inserts")
	}
	if s.Rel("R") == nil {
		t.Fatal("relation missing")
	}
}

func TestIntervalValuedTuples(t *testing.T) {
	// The concrete view stores the temporal attribute as an interval value
	// in the last position; distinct intervals give distinct tuples.
	s := NewStore()
	ivA := value.NewInterval(interval.MustNew(2012, 2014))
	ivB := value.NewInterval(interval.MustNew(2014, interval.Infinity))
	s.Insert("E", []value.Value{value.NewConst("Ada"), value.NewConst("IBM"), ivA})
	s.Insert("E", []value.Value{value.NewConst("Ada"), value.NewConst("IBM"), ivB})
	if s.Rel("E").Len() != 2 {
		t.Fatal("interval must participate in identity")
	}
	rows := s.Rel("E").Candidates(2, ivA)
	if len(rows) != 1 {
		t.Fatalf("Candidates on interval position = %v", rows)
	}
}

func TestCandidatesAndIndexes(t *testing.T) {
	s := NewStore()
	for i := 0; i < 100; i++ {
		s.Insert("R", tup(fmt.Sprintf("k%d", i%10), fmt.Sprintf("v%d", i)))
	}
	r := s.Rel("R")
	if r.HasIndex(0) {
		t.Fatal("index must be lazy")
	}
	rows := r.Candidates(0, value.NewConst("k3"))
	if !r.HasIndex(0) {
		t.Fatal("index must exist after first use")
	}
	if len(rows) != 10 {
		t.Fatalf("Candidates = %d rows, want 10", len(rows))
	}
	for _, row := range rows {
		if r.Tuple(row)[0] != value.NewConst("k3") {
			t.Fatalf("wrong row %d: %v", row, r.Tuple(row))
		}
	}
	// Incremental maintenance after the index is built.
	s.Insert("R", tup("k3", "fresh"))
	if got := len(r.Candidates(0, value.NewConst("k3"))); got != 11 {
		t.Fatalf("index not maintained on insert: %d", got)
	}
	if got := r.Candidates(0, value.NewConst("nope")); len(got) != 0 {
		t.Fatalf("absent key returned rows: %v", got)
	}
}

func TestEachOrderAndEarlyStop(t *testing.T) {
	s := NewStore()
	s.Insert("B", tup("1"))
	s.Insert("A", tup("2"))
	s.Insert("A", tup("3"))
	var seen []string
	s.Each(func(rel string, tup []value.Value) bool {
		seen = append(seen, rel+":"+tup[0].Str)
		return true
	})
	want := []string{"A:2", "A:3", "B:1"}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("Each order = %v", seen)
		}
	}
	count := 0
	s.Each(func(string, []value.Value) bool { count++; return false })
	if count != 1 {
		t.Fatalf("early stop visited %d", count)
	}
}

func TestCloneIndependence(t *testing.T) {
	s := NewStore()
	s.Insert("R", tup("a"))
	c := s.Clone()
	c.Insert("R", tup("b"))
	c.Insert("S", tup("x"))
	if s.Rel("R").Len() != 1 || s.Rel("S") != nil {
		t.Fatal("Clone shares state")
	}
	if !c.Contains("R", tup("a")) {
		t.Fatal("Clone lost data")
	}
}

func TestRewrite(t *testing.T) {
	s := NewStore()
	n := value.NewNull(1)
	m := value.NewNull(2)
	s.Insert("R", []value.Value{n, value.NewConst("x")})
	s.Insert("R", []value.Value{m, value.NewConst("x")})
	// Identify null 2 with null 1: the tuples collapse.
	out := s.Rewrite(func(_ string, tup []value.Value) []value.Value {
		nt := make([]value.Value, len(tup))
		for i, v := range tup {
			if v == m {
				nt[i] = n
			} else {
				nt[i] = v
			}
		}
		return nt
	})
	if out.Rel("R").Len() != 1 {
		t.Fatalf("Rewrite did not dedup: %v", out.String())
	}
	if s.Rel("R").Len() != 2 {
		t.Fatal("Rewrite mutated the source store")
	}
}

func TestRelationsSorted(t *testing.T) {
	s := NewStore()
	s.Insert("Z", tup("1"))
	s.Insert("A", tup("1"))
	s.Insert("M", tup("1"))
	got := s.Relations()
	if len(got) != 3 || got[0] != "A" || got[1] != "M" || got[2] != "Z" {
		t.Fatalf("Relations = %v", got)
	}
}

func TestQuickDedupSemantics(t *testing.T) {
	// Inserting random tuples with duplicates: store size equals the
	// number of distinct tuples, and every inserted tuple is found.
	r := rand.New(rand.NewSource(13))
	s := NewStore()
	ref := make(map[string]bool)
	for i := 0; i < 5000; i++ {
		tp := tup(fmt.Sprintf("a%d", r.Intn(20)), fmt.Sprintf("b%d", r.Intn(20)))
		k := "R|" + tp[0].Str + "|" + tp[1].Str
		added := s.Insert("R", tp)
		if added == ref[k] {
			t.Fatalf("dedup mismatch for %v (added=%v, seen=%v)", tp, added, ref[k])
		}
		ref[k] = true
		if !s.Contains("R", tp) {
			t.Fatalf("inserted tuple not found: %v", tp)
		}
	}
	if s.Rel("R").Len() != len(ref) {
		t.Fatalf("size %d != distinct %d", s.Rel("R").Len(), len(ref))
	}
}
