package storage

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/interval"
	"repro/internal/value"
)

func tup(vals ...string) []value.Value {
	out := make([]value.Value, len(vals))
	for i, v := range vals {
		out[i] = value.NewConst(v)
	}
	return out
}

func TestInsertDedup(t *testing.T) {
	s := NewStore()
	if !s.Insert("E", tup("Ada", "IBM")) {
		t.Fatal("first insert must add")
	}
	if s.Insert("E", tup("Ada", "IBM")) {
		t.Fatal("duplicate insert must not add")
	}
	if !s.Insert("E", tup("Ada", "Google")) {
		t.Fatal("distinct tuple must add")
	}
	if s.Rel("E").Len() != 2 || s.Size() != 2 {
		t.Fatalf("Len=%d Size=%d", s.Rel("E").Len(), s.Size())
	}
	if !s.Contains("E", tup("Ada", "IBM")) || s.Contains("E", tup("Bob", "IBM")) {
		t.Fatal("Contains broken")
	}
	if s.Contains("F", tup("x")) {
		t.Fatal("Contains on absent relation")
	}
}

func TestZeroValueStore(t *testing.T) {
	var s Store
	if !s.Insert("R", tup("a")) {
		t.Fatal("zero-value store must accept inserts")
	}
	if s.Rel("R") == nil {
		t.Fatal("relation missing")
	}
}

func TestIntervalValuedTuples(t *testing.T) {
	// The concrete view stores the temporal attribute as an interval value
	// in the last position; distinct intervals give distinct tuples.
	s := NewStore()
	ivA := value.NewInterval(interval.MustNew(2012, 2014))
	ivB := value.NewInterval(interval.MustNew(2014, interval.Infinity))
	s.Insert("E", []value.Value{value.NewConst("Ada"), value.NewConst("IBM"), ivA})
	s.Insert("E", []value.Value{value.NewConst("Ada"), value.NewConst("IBM"), ivB})
	if s.Rel("E").Len() != 2 {
		t.Fatal("interval must participate in identity")
	}
	rows := s.Rel("E").Candidates(2, ivA)
	if len(rows) != 1 {
		t.Fatalf("Candidates on interval position = %v", rows)
	}
}

func TestCandidatesAndIndexes(t *testing.T) {
	s := NewStore()
	for i := 0; i < 100; i++ {
		s.Insert("R", tup(fmt.Sprintf("k%d", i%10), fmt.Sprintf("v%d", i)))
	}
	r := s.Rel("R")
	if r.HasIndex(0) {
		t.Fatal("index must be lazy")
	}
	rows := r.Candidates(0, value.NewConst("k3"))
	if !r.HasIndex(0) {
		t.Fatal("index must exist after first use")
	}
	if len(rows) != 10 {
		t.Fatalf("Candidates = %d rows, want 10", len(rows))
	}
	for _, row := range rows {
		if r.Tuple(row)[0] != value.NewConst("k3") {
			t.Fatalf("wrong row %d: %v", row, r.Tuple(row))
		}
	}
	// Incremental maintenance after the index is built.
	s.Insert("R", tup("k3", "fresh"))
	if got := len(r.Candidates(0, value.NewConst("k3"))); got != 11 {
		t.Fatalf("index not maintained on insert: %d", got)
	}
	if got := r.Candidates(0, value.NewConst("nope")); len(got) != 0 {
		t.Fatalf("absent key returned rows: %v", got)
	}
}

func TestEachOrderAndEarlyStop(t *testing.T) {
	s := NewStore()
	s.Insert("B", tup("1"))
	s.Insert("A", tup("2"))
	s.Insert("A", tup("3"))
	var seen []string
	s.Each(func(rel string, tup []value.Value) bool {
		seen = append(seen, rel+":"+tup[0].Str)
		return true
	})
	want := []string{"A:2", "A:3", "B:1"}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("Each order = %v", seen)
		}
	}
	count := 0
	s.Each(func(string, []value.Value) bool { count++; return false })
	if count != 1 {
		t.Fatalf("early stop visited %d", count)
	}
}

func TestCloneIndependence(t *testing.T) {
	s := NewStore()
	s.Insert("R", tup("a"))
	c := s.Clone()
	c.Insert("R", tup("b"))
	c.Insert("S", tup("x"))
	if s.Rel("R").Len() != 1 || s.Rel("S") != nil {
		t.Fatal("Clone shares state")
	}
	if !c.Contains("R", tup("a")) {
		t.Fatal("Clone lost data")
	}
}

func TestRewrite(t *testing.T) {
	s := NewStore()
	n := value.NewNull(1)
	m := value.NewNull(2)
	s.Insert("R", []value.Value{n, value.NewConst("x")})
	s.Insert("R", []value.Value{m, value.NewConst("x")})
	// Identify null 2 with null 1: the tuples collapse.
	out := s.Rewrite(func(_ string, tup []value.Value) []value.Value {
		nt := make([]value.Value, len(tup))
		for i, v := range tup {
			if v == m {
				nt[i] = n
			} else {
				nt[i] = v
			}
		}
		return nt
	})
	if out.Rel("R").Len() != 1 {
		t.Fatalf("Rewrite did not dedup: %v", out.String())
	}
	if s.Rel("R").Len() != 2 {
		t.Fatal("Rewrite mutated the source store")
	}
}

func TestRelationsSorted(t *testing.T) {
	s := NewStore()
	s.Insert("Z", tup("1"))
	s.Insert("A", tup("1"))
	s.Insert("M", tup("1"))
	got := s.Relations()
	if len(got) != 3 || got[0] != "A" || got[1] != "M" || got[2] != "Z" {
		t.Fatalf("Relations = %v", got)
	}
}

// randTuple draws a mixed-kind tuple: constants, plain and projected
// nulls, annotated nulls, and interval values — everything the chase
// stores.
func randTuple(r *rand.Rand) []value.Value {
	s := interval.Time(r.Intn(30))
	iv := interval.MustNew(s, s+1+interval.Time(r.Intn(10)))
	pick := func() value.Value {
		switch r.Intn(5) {
		case 0:
			return value.NewConst(fmt.Sprintf("c%d", r.Intn(12)))
		case 1:
			return value.NewNull(uint64(r.Intn(12) + 1))
		case 2:
			return value.NewProjectedNull(uint64(r.Intn(12)+1), s)
		case 3:
			return value.NewAnnNull(uint64(r.Intn(12)+1), iv)
		default:
			return value.NewInterval(iv)
		}
	}
	tp := make([]value.Value, 1+r.Intn(4))
	for i := range tp {
		tp[i] = pick()
	}
	return tp
}

// stringKey replicates the pre-interning dedup key (every value rendered
// through String, joined with '|'), the reference the ID-hash dedup must
// agree with. Value.String is injective across kinds (constants verbatim,
// N7, N7@2013, N7^[s,e), [s,e)), so string identity is value identity.
func stringKey(rel string, tp []value.Value) string {
	k := rel
	for _, v := range tp {
		k += "|" + v.String()
	}
	return k
}

// TestDedupMatchesStringKeyReference checks, on a randomized mixed-kind
// corpus, that the interned ID-row dedup accepts and rejects exactly the
// same inserts as the old string-key implementation.
func TestDedupMatchesStringKeyReference(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	s := NewStore()
	ref := make(map[string]bool)
	rels := []string{"R", "S"}
	distinct := 0
	for i := 0; i < 20_000; i++ {
		rel := rels[r.Intn(2)]
		tp := randTuple(r)
		k := stringKey(rel, tp)
		added := s.Insert(rel, tp)
		if added == ref[k] {
			t.Fatalf("iteration %d: insert(%s)=%v but reference seen=%v", i, k, added, ref[k])
		}
		if added {
			distinct++
		}
		ref[k] = true
		if !s.Contains(rel, tp) {
			t.Fatalf("inserted tuple not found: %s", k)
		}
	}
	if s.Size() != distinct || s.Size() != len(ref) {
		t.Fatalf("size %d, added %d, reference %d", s.Size(), distinct, len(ref))
	}
}

func TestRowsAndInsertIDs(t *testing.T) {
	in := value.NewInterner()
	s := NewStore()
	s2 := NewStoreWith(in)
	if s.Interner() == s2.Interner() || s2.Interner() != in {
		t.Fatal("interner wiring broken")
	}
	s2.Insert("R", tup("a", "b"))
	r := s2.Rel("R")
	ids := r.Row(0)
	if len(ids) != 2 || in.Resolve(ids[0]) != value.NewConst("a") {
		t.Fatalf("Row = %v", ids)
	}
	// InsertIDs into a store sharing the interner: identical row dedups,
	// permuted row is new, and its tuple resolves correctly.
	s3 := NewStoreWith(in)
	if !s3.InsertIDs("R", append([]value.ID(nil), ids...)) {
		t.Fatal("first InsertIDs must add")
	}
	if s3.InsertIDs("R", append([]value.ID(nil), ids...)) {
		t.Fatal("duplicate InsertIDs must not add")
	}
	if !s3.InsertIDs("R", []value.ID{ids[1], ids[0]}) {
		t.Fatal("permuted row must be distinct")
	}
	if got := s3.Rel("R").Tuple(1); got[0] != value.NewConst("b") || got[1] != value.NewConst("a") {
		t.Fatalf("resolved tuple = %v", got)
	}
	if !s3.Contains("R", tup("a", "b")) || !s3.Contains("R", tup("b", "a")) {
		t.Fatal("Contains after InsertIDs broken")
	}
}

func TestEachRowMatchesEach(t *testing.T) {
	s := NewStore()
	s.Insert("B", tup("1", "2"))
	s.Insert("A", tup("3"))
	in := s.Interner()
	var fromRows [][]value.Value
	s.EachRow(func(rel string, ids []value.ID) bool {
		fromRows = append(fromRows, in.ResolveAll(nil, ids))
		return true
	})
	var fromTuples [][]value.Value
	s.Each(func(rel string, tp []value.Value) bool {
		fromTuples = append(fromTuples, tp)
		return true
	})
	if len(fromRows) != len(fromTuples) {
		t.Fatalf("EachRow %d rows, Each %d", len(fromRows), len(fromTuples))
	}
	for i := range fromRows {
		for j := range fromRows[i] {
			if fromRows[i][j] != fromTuples[i][j] {
				t.Fatalf("row %d differs: %v vs %v", i, fromRows[i], fromTuples[i])
			}
		}
	}
}

func TestQuickDedupSemantics(t *testing.T) {
	// Inserting random tuples with duplicates: store size equals the
	// number of distinct tuples, and every inserted tuple is found.
	r := rand.New(rand.NewSource(13))
	s := NewStore()
	ref := make(map[string]bool)
	for i := 0; i < 5000; i++ {
		tp := tup(fmt.Sprintf("a%d", r.Intn(20)), fmt.Sprintf("b%d", r.Intn(20)))
		k := "R|" + tp[0].Str + "|" + tp[1].Str
		added := s.Insert("R", tp)
		if added == ref[k] {
			t.Fatalf("dedup mismatch for %v (added=%v, seen=%v)", tp, added, ref[k])
		}
		ref[k] = true
		if !s.Contains("R", tp) {
			t.Fatalf("inserted tuple not found: %v", tp)
		}
	}
	if s.Rel("R").Len() != len(ref) {
		t.Fatalf("size %d != distinct %d", s.Rel("R").Len(), len(ref))
	}
}

func TestEpochBumpsOnMutation(t *testing.T) {
	st := NewStore()
	cst := value.NewConst
	st.Insert("R", []value.Value{cst("a"), cst("x")})
	r := st.Rel("R")
	e0 := r.Epoch()
	// A duplicate insert is a no-op... but still bumps? No: dedup short-
	// circuits before any column write, so the epoch must NOT move (plans
	// stay valid across failed inserts).
	st.Insert("R", []value.Value{cst("a"), cst("x")})
	if r.Epoch() != e0 {
		t.Fatal("duplicate insert moved the epoch")
	}
	st.Insert("R", []value.Value{cst("b"), cst("x")})
	if r.Epoch() == e0 {
		t.Fatal("insert did not move the epoch")
	}
	e1 := r.Epoch()
	// Lazy caches are reads, not mutations.
	r.EnsureIndex(0)
	r.CandidatesID(0, st.Interner().Intern(cst("a")))
	r.Tuple(0)
	if r.Epoch() != e1 {
		t.Fatal("lazy index/decode builds moved the epoch")
	}
	// Substitution that touches a row bumps it.
	aID := st.Interner().Intern(cst("a"))
	bID := st.Interner().Intern(cst("b"))
	n := st.SubstituteIDs([]value.ID{aID}, func(id value.ID) value.ID {
		if id == aID {
			return bID
		}
		return id
	})
	if n == 0 || r.Epoch() == e1 {
		t.Fatalf("substitution (touched %d rows) did not move the epoch", n)
	}
	e2 := r.Epoch()
	// A substitution with no affected rows leaves it alone.
	ghost := st.Interner().Intern(cst("never-stored"))
	if st.SubstituteIDs([]value.ID{ghost}, func(id value.ID) value.ID { return id }) != 0 || r.Epoch() != e2 {
		t.Fatal("no-op substitution moved the epoch")
	}
}
