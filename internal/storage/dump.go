package storage

import (
	"fmt"
	"math"
	"math/bits"

	"repro/internal/value"
)

// SegmentDump is the physical form of one fixed-arity columnar segment:
// Cols[p][i] is position p of the segment's i-th row and Rows[i] is that
// row's global row number. The slices are shared with (or adopted into)
// the relation — see Dump and NewFrozenStore for the ownership contract.
type SegmentDump struct {
	Arity int
	Rows  []int
	Cols  [][]value.ID
}

// RelDump is the complete physical representation of a relation: the
// global row-number space, the row-validity bitmap (exactly
// ceil(NumRows/64) words, insertion growth order), and one segment per
// arity class. Everything else a relation carries — segment locations,
// dedup buckets, posting lists, decoded tuples — is derivable from these
// three, which is what makes the dump the serialization boundary of the
// storage layer.
type RelDump struct {
	NumRows  int
	Live     []uint64
	Segments []SegmentDump
}

// Dump returns the physical representation of a frozen relation. The
// returned slices alias the relation's own storage — they must not be
// mutated — which is legal exactly because the relation is frozen; Dump
// panics on a mutable relation.
func (r *Rel) Dump() RelDump {
	if !r.frozen {
		panic(fmt.Sprintf("storage: Dump of mutable relation %q: freeze the store first", r.name))
	}
	d := RelDump{NumRows: len(r.loc), Live: r.live, Segments: make([]SegmentDump, len(r.segs))}
	for i, s := range r.segs {
		d.Segments[i] = SegmentDump{Arity: s.arity, Rows: s.rows, Cols: s.cols}
	}
	return d
}

// NewFrozenStore reconstructs a frozen store from per-relation physical
// dumps and the interner their ID columns refer to. The dump slices are
// adopted, not copied — they may alias a read-only mapping (the mmap
// snapshot path) and must not be mutated afterwards — so loading costs
// only the derived structures: segment locations, dedup buckets, posting
// lists, and decoded tuples are rebuilt here, exactly as Freeze would
// have built them on the original.
//
// Every structural invariant a relation maintains is re-validated before
// adoption — bitmap length and trailing bits, exactly-once row coverage,
// per-segment column shapes, unique arities, value IDs within the
// interner's issued range, no duplicate live rows — and a violation
// returns an error rather than panicking, so corrupt or adversarial
// dumps cannot produce a store that fails later and loudly.
func NewFrozenStore(in *value.Interner, rels map[string]RelDump) (*Store, error) {
	if in == nil {
		return nil, fmt.Errorf("storage: NewFrozenStore: nil interner")
	}
	s := NewStoreWith(in)
	for name, d := range rels {
		r, err := buildFrozenRel(name, in, d)
		if err != nil {
			return nil, fmt.Errorf("storage: relation %q: %w", name, err)
		}
		s.rels[name] = r
	}
	s.frozen = true
	return s, nil
}

// buildFrozenRel validates one dump and assembles the frozen relation.
func buildFrozenRel(name string, in *value.Interner, d RelDump) (*Rel, error) {
	n := d.NumRows
	if n < 0 || n > math.MaxInt32 {
		return nil, fmt.Errorf("row count %d out of range", n)
	}
	if want := (n + 63) / 64; len(d.Live) != want {
		return nil, fmt.Errorf("validity bitmap has %d words, want %d for %d rows", len(d.Live), want, n)
	}
	if rem := uint(n) % 64; rem != 0 && d.Live[len(d.Live)-1]>>rem != 0 {
		return nil, fmt.Errorf("validity bitmap has bits set beyond row %d", n-1)
	}
	idLimit := in.Len()
	r := newRel(name, in)
	r.loc = make([]rowLoc, n)
	r.live = d.Live
	seen := make([]bool, n)
	total := 0
	arities := make(map[int]bool, len(d.Segments))
	r.segs = make([]*segment, 0, len(d.Segments))
	for si, sd := range d.Segments {
		if sd.Arity < 1 {
			return nil, fmt.Errorf("segment %d: arity %d (must be ≥ 1)", si, sd.Arity)
		}
		if arities[sd.Arity] {
			return nil, fmt.Errorf("two segments of arity %d", sd.Arity)
		}
		arities[sd.Arity] = true
		if len(sd.Cols) != sd.Arity {
			return nil, fmt.Errorf("segment %d: %d columns for arity %d", si, len(sd.Cols), sd.Arity)
		}
		for p, col := range sd.Cols {
			if len(col) != len(sd.Rows) {
				return nil, fmt.Errorf("segment %d: column %d has %d entries for %d rows", si, p, len(col), len(sd.Rows))
			}
			for _, id := range col {
				if int(id) >= idLimit {
					return nil, fmt.Errorf("segment %d: column %d holds value ID %d beyond interner table (%d values)", si, p, id, idLimit)
				}
			}
		}
		for off, row := range sd.Rows {
			if row < 0 || row >= n {
				return nil, fmt.Errorf("segment %d: global row %d out of range [0,%d)", si, row, n)
			}
			if seen[row] {
				return nil, fmt.Errorf("global row %d appears in two segment slots", row)
			}
			seen[row] = true
			r.loc[row] = rowLoc{seg: int32(si), off: int32(off)}
		}
		total += len(sd.Rows)
		r.segs = append(r.segs, &segment{arity: sd.Arity, cols: sd.Cols, rows: sd.Rows})
	}
	if total != n {
		return nil, fmt.Errorf("segments hold %d rows, relation declares %d", total, n)
	}
	liveCount := 0
	for _, w := range d.Live {
		liveCount += bits.OnesCount64(w)
	}
	r.dead = n - liveCount
	r.tuples = make([][]value.Value, n)
	for row := 0; row < n; row++ {
		if !r.Alive(row) {
			continue
		}
		h := r.hashRow(row)
		r.scratch = r.appendRowIDs(r.scratch[:0], row)
		if r.lookupHash(h, r.scratch) >= 0 {
			return nil, fmt.Errorf("duplicate live row %d", row)
		}
		r.attachDedup(h, row)
	}
	r.Freeze()
	return r, nil
}

// Pin ties v's lifetime to the store's: as long as the store is
// reachable, so is v. The snapshot loader pins the mapped file behind a
// store whose columns alias mmap'd memory, so the mapping cannot be
// unmapped by a finalizer while the store is still in use. Pin is a
// construction-time call: it must happen before the store is shared.
func (s *Store) Pin(v any) { s.pins = append(s.pins, v) }
