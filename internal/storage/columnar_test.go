package storage

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/interval"
	"repro/internal/value"
)

// refRel is the row-major reference model the columnar store must agree
// with: a plain ordered list of live value tuples with first-wins dedup,
// replicating the PR 1 semantics of Len / lookupRow / index probes.
type refRel struct {
	tuples [][]value.Value
}

func valuesEqual(a, b []value.Value) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func (r *refRel) find(tup []value.Value) int {
	for i, got := range r.tuples {
		if valuesEqual(got, tup) {
			return i
		}
	}
	return -1
}

func (r *refRel) insert(tup []value.Value) bool {
	if r.find(tup) >= 0 {
		return false
	}
	r.tuples = append(r.tuples, tup)
	return true
}

// candidates counts the live tuples with v at position pos.
func (r *refRel) candidates(pos int, v value.Value) int {
	n := 0
	for _, tup := range r.tuples {
		if pos < len(tup) && tup[pos] == v {
			n++
		}
	}
	return n
}

// substitute applies the value mapping to every tuple and re-dedups,
// keeping set semantics.
func (r *refRel) substitute(mapv func(value.Value) value.Value) {
	old := r.tuples
	r.tuples = nil
	for _, tup := range old {
		nt := make([]value.Value, len(tup))
		for i, v := range tup {
			nt[i] = mapv(v)
		}
		r.insert(nt)
	}
}

func (r *refRel) sortedKeys() []string {
	out := make([]string, 0, len(r.tuples))
	for _, tup := range r.tuples {
		out = append(out, tupleString(tup))
	}
	sort.Strings(out)
	return out
}

// relSortedKeys renders the live rows of a columnar relation, sorted.
func relSortedKeys(r *Rel) []string {
	var out []string
	r.EachLive(func(row int) bool {
		out = append(out, tupleString(r.Tuple(row)))
		return true
	})
	sort.Strings(out)
	return out
}

// checkAgainstRef verifies every observable of the columnar relation
// against the reference: live count, membership, per-position candidate
// counts with row verification, posting-list ordering and liveness, and
// the decode of every live row.
func checkAgainstRef(t *testing.T, r *Rel, ref *refRel, probes [][]value.Value) {
	t.Helper()
	if r == nil {
		if len(ref.tuples) != 0 {
			t.Fatalf("relation missing but reference has %d tuples", len(ref.tuples))
		}
		return
	}
	if r.Len() != len(ref.tuples) {
		t.Fatalf("Len = %d, reference %d", r.Len(), len(ref.tuples))
	}
	got, want := relSortedKeys(r), ref.sortedKeys()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("live tuples diverge at %d: %q vs %q", i, got[i], want[i])
		}
	}
	// Membership both ways, including interned-row lookup.
	for _, tup := range ref.tuples {
		if !r.Contains(tup) {
			t.Fatalf("reference tuple missing: %v", tup)
		}
		ids, ok := r.in.LookupAll(nil, tup)
		if !ok || r.lookupRow(ids) < 0 {
			t.Fatalf("lookupRow missed reference tuple %v", tup)
		}
	}
	for _, tup := range probes {
		if r.Contains(tup) != (ref.find(tup) >= 0) {
			t.Fatalf("Contains(%v) = %v disagrees with reference", tup, r.Contains(tup))
		}
	}
	// Index probes on every position and probe value.
	for pos := 0; pos < 4; pos++ {
		for _, tup := range probes {
			for _, v := range tup {
				rows := r.Candidates(pos, v)
				for i, row := range rows {
					if i > 0 && rows[i-1] >= row {
						t.Fatalf("posting list not strictly ascending: %v", rows)
					}
					if !r.Alive(row) {
						t.Fatalf("posting list holds dead row %d", row)
					}
					if r.Tuple(row)[pos] != v {
						t.Fatalf("candidate row %d has %v at %d, want %v", row, r.Tuple(row)[pos], pos, v)
					}
				}
				if want := ref.candidates(pos, v); len(rows) != want {
					t.Fatalf("Candidates(%d, %v) = %d rows, reference %d", pos, v, len(rows), want)
				}
			}
		}
	}
}

// TestColumnarMatchesRowMajorReference drives a random workload of
// inserts, membership probes, index probes, and ID substitutions through
// the columnar store and the row-major reference model in lockstep.
func TestColumnarMatchesRowMajorReference(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	pool := func() value.Value {
		switch r.Intn(4) {
		case 0:
			return value.NewConst(fmt.Sprintf("c%d", r.Intn(8)))
		case 1:
			return value.NewNull(uint64(r.Intn(8) + 1))
		case 2:
			return value.NewAnnNull(uint64(r.Intn(6)+1), interval.MustNew(interval.Time(r.Intn(4)), interval.Time(10+r.Intn(4))))
		default:
			return value.NewInterval(interval.MustNew(interval.Time(r.Intn(5)), interval.Time(6+r.Intn(5))))
		}
	}
	randTup := func() []value.Value {
		tup := make([]value.Value, 1+r.Intn(3))
		for i := range tup {
			tup[i] = pool()
		}
		return tup
	}
	for trial := 0; trial < 60; trial++ {
		st := NewStore()
		refs := map[string]*refRel{"R": {}, "S": {}}
		rels := []string{"R", "S"}
		var probes [][]value.Value
		for step := 0; step < 120; step++ {
			rel := rels[r.Intn(2)]
			tup := randTup()
			if len(probes) < 25 {
				probes = append(probes, tup)
			}
			added := st.Insert(rel, tup)
			wantAdded := refs[rel].insert(tup)
			if added != wantAdded {
				t.Fatalf("trial %d step %d: Insert(%s, %v) = %v, reference %v", trial, step, rel, tup, added, wantAdded)
			}
			// Occasionally probe mid-stream so indexes get built early and
			// then maintained incrementally through inserts and rewrites.
			if step%17 == 0 {
				st.Rel(rel).Candidates(r.Intn(3), tup[0])
			}
		}
		for _, rel := range rels {
			checkAgainstRef(t, st.Rel(rel), refs[rel], probes)
		}

		// Substitution rounds: map a few interned values onto others and
		// compare against the reference's value-level rewrite.
		for round := 0; round < 3; round++ {
			in := st.Interner()
			mapping := make(map[value.ID]value.ID)
			vmapping := make(map[value.Value]value.Value)
			for i := 0; i < 1+r.Intn(4); i++ {
				from, to := pool(), pool()
				fid, ok1 := in.Lookup(from)
				tid, ok2 := in.Lookup(to)
				if !ok1 || !ok2 || fid == tid {
					continue
				}
				if _, dup := mapping[fid]; dup {
					continue
				}
				mapping[fid] = tid
				vmapping[from] = to
			}
			subs := make([]value.ID, 0, len(mapping))
			for id := range mapping {
				subs = append(subs, id)
			}
			canon := func(id value.ID) value.ID {
				if nid, ok := mapping[id]; ok {
					return nid
				}
				return id
			}
			touched := st.SubstituteIDs(subs, canon)
			for _, ref := range refs {
				ref.substitute(func(v value.Value) value.Value {
					if nv, ok := vmapping[v]; ok {
						return nv
					}
					return v
				})
			}
			if touched < 0 {
				t.Fatalf("negative touch count")
			}
			for _, rel := range rels {
				checkAgainstRef(t, st.Rel(rel), refs[rel], probes)
			}
		}
	}
}

// TestSubstituteTouchesOnlyAffectedRows pins the incremental-rewrite
// contract: the number of rewritten rows equals the number of rows
// containing a substituted ID, not the store size.
func TestSubstituteTouchesOnlyAffectedRows(t *testing.T) {
	st := NewStore()
	for i := 0; i < 500; i++ {
		st.Insert("R", tup(fmt.Sprintf("a%d", i), fmt.Sprintf("b%d", i)))
	}
	n1 := value.NewNull(1)
	st.Insert("R", []value.Value{n1, value.NewConst("x")})
	st.Insert("R", []value.Value{value.NewConst("y"), n1})
	in := st.Interner()
	from, _ := in.Lookup(n1)
	to := in.Intern(value.NewConst("z"))
	touched := st.SubstituteIDs([]value.ID{from}, func(id value.ID) value.ID {
		if id == from {
			return to
		}
		return id
	})
	if touched != 2 {
		t.Fatalf("touched %d rows, want exactly the 2 containing the null", touched)
	}
	if st.Rel("R").Len() != 502 {
		t.Fatalf("Len = %d after substitution, want 502", st.Rel("R").Len())
	}
	if !st.Contains("R", tup("z", "x")) || !st.Contains("R", tup("y", "z")) {
		t.Fatal("substituted rows missing")
	}
	if st.Contains("R", []value.Value{n1, value.NewConst("x")}) {
		t.Fatal("pre-substitution row still present")
	}
}

// TestSubstituteCollapsesDuplicates exercises the validity bitmap: rows
// that become identical after substitution die, and every observable
// (Len, Each, postings, dedup) skips them.
func TestSubstituteCollapsesDuplicates(t *testing.T) {
	st := NewStore()
	n1, n2 := value.NewNull(1), value.NewNull(2)
	x := value.NewConst("x")
	st.Insert("R", []value.Value{n1, x})
	st.Insert("R", []value.Value{n2, x})
	st.Insert("R", []value.Value{x, x})
	rel := st.Rel("R")
	rel.Candidates(0, n1) // build the index before substituting
	in := st.Interner()
	id1, _ := in.Lookup(n1)
	id2, _ := in.Lookup(n2)
	touched := st.SubstituteIDs([]value.ID{id2}, func(id value.ID) value.ID {
		if id == id2 {
			return id1
		}
		return id
	})
	if touched != 1 {
		t.Fatalf("touched = %d, want 1", touched)
	}
	if rel.Len() != 2 || rel.NumRows() != 3 {
		t.Fatalf("Len = %d NumRows = %d, want 2 live of 3 physical", rel.Len(), rel.NumRows())
	}
	if rel.Alive(1) {
		t.Fatal("collapsed row still alive")
	}
	count := 0
	st.Each(func(string, []value.Value) bool { count++; return true })
	if count != 2 {
		t.Fatalf("Each visited %d rows, want 2", count)
	}
	if got := rel.Candidates(0, n1); len(got) != 1 || got[0] != 0 {
		t.Fatalf("posting list after collapse = %v, want [0]", got)
	}
	if st.Insert("R", []value.Value{n1, x}) {
		t.Fatal("dedup readmitted a live row")
	}
	if !st.Insert("R", []value.Value{n2, x}) {
		t.Fatal("the dead row's old value must be insertable again")
	}
}

// TestIntersectPostings checks the sorted-list intersection on both the
// merge and the galloping path.
func TestIntersectPostings(t *testing.T) {
	cases := []struct{ a, b, want []int }{
		{[]int{1, 3, 5}, []int{2, 3, 5, 9}, []int{3, 5}},
		{[]int{}, []int{1, 2}, nil},
		{[]int{4}, []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18}, []int{4}},
		{[]int{7, 40}, func() []int {
			out := make([]int, 200)
			for i := range out {
				out[i] = i
			}
			return out
		}(), []int{7, 40}},
	}
	for i, c := range cases {
		got := IntersectPostings(nil, c.a, c.b)
		if len(got) != len(c.want) {
			t.Fatalf("case %d: got %v want %v", i, got, c.want)
		}
		for j := range got {
			if got[j] != c.want[j] {
				t.Fatalf("case %d: got %v want %v", i, got, c.want)
			}
		}
	}
}

// TestCloneIsolatesSubstitution ensures a clone's columns are
// independent: substituting the clone leaves the original intact.
func TestCloneIsolatesSubstitution(t *testing.T) {
	st := NewStore()
	n1 := value.NewNull(1)
	st.Insert("R", []value.Value{n1, value.NewConst("x")})
	cl := st.Clone()
	in := st.Interner()
	from, _ := in.Lookup(n1)
	to := in.Intern(value.NewConst("z"))
	cl.SubstituteIDs([]value.ID{from}, func(id value.ID) value.ID {
		if id == from {
			return to
		}
		return id
	})
	if !cl.Contains("R", tup("z", "x")) || cl.Contains("R", []value.Value{n1, value.NewConst("x")}) {
		t.Fatal("clone not substituted")
	}
	if !st.Contains("R", []value.Value{n1, value.NewConst("x")}) || st.Contains("R", tup("z", "x")) {
		t.Fatal("substituting the clone mutated the original")
	}
}
