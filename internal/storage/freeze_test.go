package storage

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/interval"
	"repro/internal/value"
)

// freezeStore builds a small mixed store for the freeze tests.
func freezeStore() *Store {
	st := NewStore()
	for i := 0; i < 64; i++ {
		iv := interval.MustNew(interval.Time(i%10), interval.Time(i%10+3))
		st.Insert("R", []value.Value{
			value.NewConst(string(rune('a' + i%7))),
			value.NewAnnNull(uint64(i%5+1), iv),
			value.NewInterval(iv),
		})
		st.Insert("S", []value.Value{value.NewConst(string(rune('a' + i%3)))})
	}
	return st
}

// expectFrozenPanic runs fn and asserts it panics with the frozen-store
// message.
func expectFrozenPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("%s on a frozen store did not panic", what)
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "frozen") {
			t.Fatalf("%s panic message %v does not mention the freeze", what, r)
		}
	}()
	fn()
}

func TestFreezeMakesWritesPanic(t *testing.T) {
	st := freezeStore()
	st.Freeze()
	if !st.Frozen() || !st.Rel("R").Frozen() {
		t.Fatal("store not marked frozen")
	}
	tup := []value.Value{value.NewConst("zz"), value.NewConst("zz"), value.NewInterval(interval.MustNew(0, 1))}
	expectFrozenPanic(t, "Insert", func() { st.Insert("R", tup) })
	expectFrozenPanic(t, "Insert into a new relation", func() { st.Insert("Fresh", tup) })
	expectFrozenPanic(t, "InsertIDs", func() { st.InsertIDs("R", []value.ID{0, 1, 2}) })
	expectFrozenPanic(t, "SubstituteIDs", func() {
		st.SubstituteIDs([]value.ID{0}, func(id value.ID) value.ID { return id })
	})
}

func TestFreezeIsIdempotentAndKeepsEpoch(t *testing.T) {
	st := freezeStore()
	r := st.Rel("R")
	epoch := r.Epoch()
	st.Freeze()
	st.Freeze()
	// Reads must not move the epoch or mutate anything observable.
	r.EachLive(func(row int) bool {
		_ = r.Tuple(row)
		_ = r.Row(row)
		return true
	})
	if !st.Contains("R", r.Tuple(0)) {
		t.Fatal("frozen store lost a tuple")
	}
	_ = r.CandidatesID(0, 0)
	_ = r.Candidates(1, value.NewConst("nope"))
	r.EnsureIndex(99) // past every arity: must be a no-op on a frozen rel
	if r.HasIndex(99) {
		t.Fatal("EnsureIndex built an index on a frozen relation")
	}
	if got := r.Epoch(); got != epoch {
		t.Fatalf("epoch moved %d -> %d under frozen reads", epoch, got)
	}
}

// TestFreezeConcurrentReaders hammers one frozen store from 16
// goroutines through every read path; run under -race this proves the
// frozen read paths are mutation-free. The epoch is asserted unchanged.
func TestFreezeConcurrentReaders(t *testing.T) {
	st := freezeStore()
	st.Freeze()
	r := st.Rel("R")
	epoch := r.Epoch()
	want := st.String()

	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rep := 0; rep < 20; rep++ {
				n := 0
				r.EachLive(func(row int) bool {
					tup := r.Tuple(row)
					if !st.Contains("R", tup) {
						t.Error("frozen Contains lost a stored tuple")
						return false
					}
					n++
					return true
				})
				if n != r.Len() {
					t.Errorf("EachLive visited %d rows, want %d", n, r.Len())
				}
				for pos := 0; pos < 3; pos++ {
					for id := value.ID(0); id < 8; id++ {
						_ = r.CandidatesID(pos, id)
					}
				}
				st.EachRow(func(rel string, ids []value.ID) bool { return true })
				if got := st.String(); got != want {
					t.Error("concurrent String render diverged")
				}
				cl := st.Clone()
				if cl.Frozen() {
					t.Error("clone of a frozen store is frozen")
				}
			}
		}()
	}
	wg.Wait()
	if got := r.Epoch(); got != epoch {
		t.Fatalf("epoch moved %d -> %d under 16 concurrent readers", epoch, got)
	}
}

func TestCloneOfFrozenIsMutable(t *testing.T) {
	st := freezeStore()
	st.Freeze()
	before := st.Size()
	cl := st.Clone()
	if !cl.Insert("R", []value.Value{value.NewConst("new"), value.NewConst("new"), value.NewInterval(interval.MustNew(0, 1))}) {
		t.Fatal("insert into the clone failed")
	}
	cl.SubstituteIDs([]value.ID{0}, func(id value.ID) value.ID { return id })
	if st.Size() != before {
		t.Fatal("mutating the clone changed the frozen original")
	}
}
