// Package storage implements the in-memory relational storage engine the
// rest of the system is built on: per-relation tuple heaps with O(1)
// duplicate elimination and lazily built secondary hash indexes
// (position, value) → rows, which drive index-nested-loop candidate
// selection in the homomorphism engine.
//
// The store is deliberately representation-agnostic: a tuple is a slice
// of values, and both views use it — the concrete view stores a fact
// R+(a, [s,e)) as the tuple ⟨a..., [s,e)⟩ whose last component is an
// interval value, while abstract snapshots store plain ⟨a...⟩ tuples.
// Tuples are treated as immutable once inserted.
package storage

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/value"
)

// Rel is a single relation: an append-only heap of deduplicated tuples
// with optional per-position hash indexes.
type Rel struct {
	name   string
	tuples [][]value.Value
	keys   map[string]int
	idx    map[int]map[value.Value][]int
}

func newRel(name string) *Rel {
	return &Rel{name: name, keys: make(map[string]int)}
}

// Name returns the relation name.
func (r *Rel) Name() string { return r.name }

// Len returns the number of (distinct) tuples.
func (r *Rel) Len() int { return len(r.tuples) }

// Tuple returns tuple i. The caller must not mutate it.
func (r *Rel) Tuple(i int) []value.Value { return r.tuples[i] }

// tupleKey builds the canonical dedup key of a tuple.
func tupleKey(tup []value.Value) string {
	var b strings.Builder
	for i, v := range tup {
		if i > 0 {
			b.WriteByte('|')
		}
		b.WriteString(v.String())
	}
	return b.String()
}

// insert adds the tuple unless an identical one is present. It reports
// whether the tuple was added, maintaining any built indexes.
func (r *Rel) insert(tup []value.Value) bool {
	k := tupleKey(tup)
	if _, dup := r.keys[k]; dup {
		return false
	}
	row := len(r.tuples)
	r.tuples = append(r.tuples, tup)
	r.keys[k] = row
	for pos, byVal := range r.idx {
		if pos < len(tup) {
			byVal[tup[pos]] = append(byVal[tup[pos]], row)
		}
	}
	return true
}

// Contains reports whether an identical tuple is stored.
func (r *Rel) Contains(tup []value.Value) bool {
	_, ok := r.keys[tupleKey(tup)]
	return ok
}

// EnsureIndex builds the hash index on position pos if not yet present.
func (r *Rel) EnsureIndex(pos int) {
	if r.idx == nil {
		r.idx = make(map[int]map[value.Value][]int)
	}
	if _, ok := r.idx[pos]; ok {
		return
	}
	byVal := make(map[value.Value][]int)
	for row, tup := range r.tuples {
		if pos < len(tup) {
			byVal[tup[pos]] = append(byVal[tup[pos]], row)
		}
	}
	r.idx[pos] = byVal
}

// Candidates returns the rows whose component pos equals v, building the
// index on first use. The returned slice is shared; do not mutate.
func (r *Rel) Candidates(pos int, v value.Value) []int {
	r.EnsureIndex(pos)
	return r.idx[pos][v]
}

// HasIndex reports whether an index exists on pos (for tests and
// diagnostics).
func (r *Rel) HasIndex(pos int) bool {
	_, ok := r.idx[pos]
	return ok
}

// Store is a set of relations. The zero value is empty and ready to use.
type Store struct {
	rels map[string]*Rel
}

// NewStore returns an empty store.
func NewStore() *Store { return &Store{rels: make(map[string]*Rel)} }

// Insert adds a tuple to the named relation, creating the relation on
// first use, and reports whether the tuple was new.
func (s *Store) Insert(rel string, tup []value.Value) bool {
	if s.rels == nil {
		s.rels = make(map[string]*Rel)
	}
	r, ok := s.rels[rel]
	if !ok {
		r = newRel(rel)
		s.rels[rel] = r
	}
	return r.insert(tup)
}

// Contains reports whether the identical tuple is present.
func (s *Store) Contains(rel string, tup []value.Value) bool {
	r, ok := s.rels[rel]
	return ok && r.Contains(tup)
}

// Rel returns the named relation or nil when absent.
func (s *Store) Rel(name string) *Rel {
	if s.rels == nil {
		return nil
	}
	return s.rels[name]
}

// Relations returns the relation names in lexicographic order.
func (s *Store) Relations() []string {
	out := make([]string, 0, len(s.rels))
	for n := range s.rels {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Size returns the total tuple count across relations.
func (s *Store) Size() int {
	n := 0
	for _, r := range s.rels {
		n += len(r.tuples)
	}
	return n
}

// Each calls fn for every tuple of every relation (relations in
// lexicographic order, tuples in insertion order). fn must not mutate the
// tuple. Iteration stops early if fn returns false.
func (s *Store) Each(fn func(rel string, tup []value.Value) bool) {
	for _, name := range s.Relations() {
		for _, tup := range s.rels[name].tuples {
			if !fn(name, tup) {
				return
			}
		}
	}
}

// Clone returns a deep copy of the relation structure. Tuples themselves
// are shared (they are immutable); indexes are not copied.
func (s *Store) Clone() *Store {
	out := NewStore()
	for name, r := range s.rels {
		nr := newRel(name)
		nr.tuples = append([][]value.Value(nil), r.tuples...)
		nr.keys = make(map[string]int, len(r.keys))
		for k, v := range r.keys {
			nr.keys[k] = v
		}
		out.rels[name] = nr
	}
	return out
}

// Rewrite builds a new store by applying fn to every tuple. fn returns
// the replacement tuple (it may return its argument unchanged). Identical
// results are deduplicated. Used by egd chase steps, which replace nulls
// "everywhere".
func (s *Store) Rewrite(fn func(rel string, tup []value.Value) []value.Value) *Store {
	out := NewStore()
	s.Each(func(rel string, tup []value.Value) bool {
		out.Insert(rel, fn(rel, tup))
		return true
	})
	return out
}

// String renders the store for debugging: one tuple per line, sorted.
func (s *Store) String() string {
	var lines []string
	s.Each(func(rel string, tup []value.Value) bool {
		lines = append(lines, fmt.Sprintf("%s(%s)", rel, tupleKey(tup)))
		return true
	})
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}
