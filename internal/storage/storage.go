// Package storage implements the in-memory relational storage engine the
// rest of the system is built on. Relations are stored column-wise: each
// relation is a set of fixed-arity segments, and each segment keeps one
// dense []value.ID column per attribute position, so the homomorphism
// engine verifies a candidate row by indexing straight into the columns
// it cares about instead of chasing per-tuple pointers. Secondary indexes
// are sorted posting lists (position, value-ID) → ascending row numbers,
// which support both index-nested-loop probes and sorted-list
// intersection for conjunctive candidate sets.
//
// Representation. Every value entering a store is interned into a dense
// value.ID by the store's value.Interner. A tuple of arity k lands in the
// relation's arity-k segment as one entry per column; the caller-facing
// []value.Value form is a decode cache, materialized lazily for rows that
// were inserted as raw IDs (Tuple). Rows are addressed by a stable global
// row number; a row-validity bitmap marks rows that were collapsed into
// duplicates by an in-place substitution (SubstituteIDs, the egd-rewrite
// fast path) — dead rows keep their number but are skipped by Len,
// iteration, dedup, and the posting lists. Duplicate elimination hashes
// the ID row (value.HashIDs) into buckets and compares against the
// columns on collision; no strings are built on the insert/lookup path.
//
// SubstituteIDs rewrites only the rows that contain a substituted ID,
// found through a lazily built reverse index (value-ID → rows containing
// it); unaffected rows — the vast majority in a typical egd round — are
// not touched, hashed, or copied. Stores sharing one Interner (see
// NewStoreWith) agree on IDs, which lets the chase rewrite and copy rows
// between instances without re-rendering values.
//
// Plans compiled by the homomorphism engine snapshot column slice
// headers, so relations must not be mutated while a plan over them runs.
// Every mutation bumps the relation's epoch counter (Epoch), which
// compiled plans revalidate after each match callback — a violation
// panics loudly instead of silently reading stale columns.
//
// Concurrency contract: a store is mutable-until-frozen. While mutable it
// is single-goroutine (inserts, substitutions, and the lazy caches behind
// Tuple/Contains/CandidatesID all write unsynchronized state). Freeze
// eagerly builds every lazy structure reads consult — posting-list
// indexes on every position, decoded tuples — and then flips the
// store into an immutable published state: every read path is
// mutation-free afterwards, so any number of goroutines may probe one
// frozen store concurrently (the homomorphism engine additionally skips
// epoch revalidation over frozen relations, letting one compiled plan
// shape execute from many goroutines). Writing to a frozen store panics
// loudly, mirroring the epoch-revalidation contract; Clone returns a
// mutable copy when a derived store must be rewritten.
//
// The store is deliberately representation-agnostic: a tuple is a slice
// of values, and both views use it — the concrete view stores a fact
// R+(a, [s,e)) as the tuple ⟨a..., [s,e)⟩ whose last component is an
// interval value, while abstract snapshots store plain ⟨a...⟩ tuples.
// Tuples are treated as immutable once inserted; only SubstituteIDs
// rewrites stored rows, and it preserves set semantics.
package storage

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"

	"repro/internal/value"
)

// segment is one fixed-arity columnar block of a relation: column p of
// the segment's i-th row is cols[p][i], and rows[i] is its global row
// number in the relation.
type segment struct {
	arity int
	cols  [][]value.ID
	rows  []int
}

// rowLoc locates a global row inside its segment.
type rowLoc struct {
	seg int32
	off int32
}

// Rel is a single relation: an append-only set of deduplicated tuples in
// columnar segments, with optional per-position posting-list indexes.
type Rel struct {
	name  string
	in    *value.Interner
	segs  []*segment
	loc   []rowLoc // global row → segment location
	live  []uint64 // validity bitmap over global rows
	dead  int      // rows invalidated by SubstituteIDs
	epoch uint64   // bumped by every mutation (insert, substitute)

	tuples [][]value.Value  // decode cache; nil entries resolve lazily
	dedup  map[uint64]int   // row hash → a live row with that hash
	over   map[uint64][]int // further live rows per hash (collisions only)

	idx map[int]map[value.ID][]int // pos → ID → sorted live rows
	rev map[value.ID][]int         // ID → rows containing it (lazy; may hold stale entries)

	scratch []value.ID // reusable insert/lookup buffer

	frozen bool // immutable and shareable; see Freeze
}

func newRel(name string, in *value.Interner) *Rel {
	return &Rel{name: name, in: in, dedup: make(map[uint64]int)}
}

// Name returns the relation name.
func (r *Rel) Name() string { return r.name }

// Len returns the number of (distinct, live) tuples.
func (r *Rel) Len() int { return len(r.loc) - r.dead }

// NumRows returns the physical row-number space: valid row arguments are
// [0, NumRows), of which Len are alive. The two differ only after an
// in-place substitution collapsed rows.
func (r *Rel) NumRows() int { return len(r.loc) }

// Epoch returns the relation's mutation epoch: a counter bumped by every
// insert and every in-place substitution. Compiled homomorphism plans
// snapshot column slice headers, so a relation must not be mutated while
// a plan over it runs; the engine records each relation's epoch at plan
// compile time and revalidates it after every match callback, turning a
// silent read of stale column headers into a loud panic. Building lazy
// caches (posting-list indexes, the reverse ID index, decoded tuples)
// does not change what a plan would read, so those do not bump the epoch.
func (r *Rel) Epoch() uint64 { return r.epoch }

// Freeze eagerly builds every lazy structure a read path can consult —
// the posting-list index on every column position and the decoded form
// of every row — and then flips the relation into an immutable state:
// all read paths (Tuple, Contains, block access, posting lookups) are
// mutation-free afterwards and safe for any number of concurrent
// readers. The reverse ID index is exempt: it feeds only substitution,
// which a frozen relation forbids, so building it would be dead weight.
// Writes to a frozen relation panic loudly. Freeze is idempotent; it
// must be called from the single goroutine that owns the still-mutable
// relation.
func (r *Rel) Freeze() {
	if r.frozen {
		return
	}
	maxArity := 0
	for _, s := range r.segs {
		if s.arity > maxArity {
			maxArity = s.arity
		}
	}
	for pos := 0; pos < maxArity; pos++ {
		r.EnsureIndex(pos)
	}
	// Decode every row — dead ones included, so no read path is ever
	// tempted to fill a cache entry after the freeze.
	for row := range r.loc {
		if r.tuples[row] == nil {
			r.scratch = r.appendRowIDs(r.scratch[:0], row)
			r.tuples[row] = r.in.ResolveAll(make([]value.Value, 0, len(r.scratch)), r.scratch)
		}
	}
	r.frozen = true
}

// Frozen reports whether the relation has been frozen.
func (r *Rel) Frozen() bool { return r.frozen }

// frozenPanic aborts a write to a frozen relation.
func (r *Rel) frozenPanic() {
	panic(fmt.Sprintf(
		"storage: relation %q is frozen: a frozen store is immutable and may be shared by concurrent readers; Clone the store for a mutable copy",
		r.name))
}

// Alive reports whether the row is live (not collapsed into a duplicate
// by SubstituteIDs).
func (r *Rel) Alive(row int) bool {
	return r.live[row>>6]&(1<<(uint(row)&63)) != 0
}

func (r *Rel) kill(row int) {
	r.live[row>>6] &^= 1 << (uint(row) & 63)
	r.dead++
}

// segFor returns the segment for the arity, creating it on first use.
func (r *Rel) segFor(arity int) (int32, *segment) {
	for i, s := range r.segs {
		if s.arity == arity {
			return int32(i), s
		}
	}
	s := &segment{arity: arity, cols: make([][]value.ID, arity)}
	r.segs = append(r.segs, s)
	return int32(len(r.segs) - 1), s
}

// arityOf returns the arity of a row.
func (r *Rel) arityOf(row int) int { return r.segs[r.loc[row].seg].arity }

// appendRowIDs appends row's IDs to dst, which may be nil.
func (r *Rel) appendRowIDs(dst []value.ID, row int) []value.ID {
	l := r.loc[row]
	s := r.segs[l.seg]
	for p := 0; p < s.arity; p++ {
		dst = append(dst, s.cols[p][l.off])
	}
	return dst
}

// Row returns the interned form of row i as a fresh slice.
func (r *Rel) Row(i int) []value.ID {
	return r.appendRowIDs(make([]value.ID, 0, r.arityOf(i)), i)
}

// Tuple returns row i as values, resolving and caching it on first use
// for rows inserted as raw IDs. The caller must not mutate it. The cache
// fill is unsynchronized, so a mutable relation is single-goroutine; a
// frozen relation has every row pre-decoded and is safe for concurrent
// Tuple calls.
func (r *Rel) Tuple(i int) []value.Value {
	if t := r.tuples[i]; t != nil {
		return t
	}
	r.scratch = r.appendRowIDs(r.scratch[:0], i)
	t := r.in.ResolveAll(make([]value.Value, 0, len(r.scratch)), r.scratch)
	r.tuples[i] = t
	return t
}

// hashRow hashes a stored row the same way value.HashIDs hashes its
// slice form.
func (r *Rel) hashRow(row int) uint64 {
	l := r.loc[row]
	s := r.segs[l.seg]
	h := value.NewHash64()
	for p := 0; p < s.arity; p++ {
		h = h.Word(uint64(s.cols[p][l.off]))
	}
	return h.Sum()
}

// rowEqual reports whether stored row equals the ID slice.
func (r *Rel) rowEqual(row int, ids []value.ID) bool {
	l := r.loc[row]
	s := r.segs[l.seg]
	if s.arity != len(ids) {
		return false
	}
	for p, id := range ids {
		if s.cols[p][l.off] != id {
			return false
		}
	}
	return true
}

// lookupHash returns the row number of a live stored row identical to
// ids under hash h, or -1.
func (r *Rel) lookupHash(h uint64, ids []value.ID) int {
	first, ok := r.dedup[h]
	if !ok {
		return -1
	}
	if r.rowEqual(first, ids) {
		return first
	}
	for _, row := range r.over[h] {
		if r.rowEqual(row, ids) {
			return row
		}
	}
	return -1
}

// lookupRow returns the row number of an identical live stored row, or -1.
func (r *Rel) lookupRow(ids []value.ID) int {
	return r.lookupHash(value.HashIDs(ids), ids)
}

// attachDedup registers a live row under its hash.
func (r *Rel) attachDedup(h uint64, row int) {
	if _, taken := r.dedup[h]; !taken {
		r.dedup[h] = row
		return
	}
	if r.over == nil {
		r.over = make(map[uint64][]int)
	}
	r.over[h] = append(r.over[h], row)
}

// detachDedup removes a row from its hash bucket.
func (r *Rel) detachDedup(h uint64, row int) {
	if r.dedup[h] == row {
		if extra := r.over[h]; len(extra) > 0 {
			r.dedup[h] = extra[0]
			if len(extra) == 1 {
				delete(r.over, h)
			} else {
				r.over[h] = extra[1:]
			}
		} else {
			delete(r.dedup, h)
		}
		return
	}
	extra := r.over[h]
	for i, got := range extra {
		if got == row {
			r.over[h] = append(extra[:i], extra[i+1:]...)
			if len(r.over[h]) == 0 {
				delete(r.over, h)
			}
			return
		}
	}
}

// insertIDs adds the interned row unless an identical live one is
// present. The ids are copied into the columns, so the caller may reuse
// the slice; tup, when non-nil, is retained as the row's decoded form.
func (r *Rel) insertIDs(ids []value.ID, tup []value.Value) bool {
	if r.frozen {
		r.frozenPanic()
	}
	h := value.HashIDs(ids)
	if r.lookupHash(h, ids) >= 0 {
		return false
	}
	r.epoch++
	row := len(r.loc)
	si, s := r.segFor(len(ids))
	off := int32(len(s.rows))
	for p, id := range ids {
		s.cols[p] = append(s.cols[p], id)
	}
	s.rows = append(s.rows, row)
	r.loc = append(r.loc, rowLoc{seg: si, off: off})
	if row>>6 >= len(r.live) {
		r.live = append(r.live, 0)
	}
	r.live[row>>6] |= 1 << (uint(row) & 63)
	r.tuples = append(r.tuples, tup)
	r.attachDedup(h, row)
	for pos, byID := range r.idx {
		if pos < len(ids) {
			byID[ids[pos]] = append(byID[ids[pos]], row)
		}
	}
	if r.rev != nil {
		for _, id := range ids {
			r.rev[id] = append(r.rev[id], row)
		}
	}
	return true
}

// insert interns and adds the tuple unless an identical one is present.
// It reports whether the tuple was added, maintaining any built indexes.
func (r *Rel) insert(tup []value.Value) bool {
	if r.frozen {
		r.frozenPanic()
	}
	r.scratch = r.in.InternAll(r.scratch[:0], tup)
	return r.insertIDs(r.scratch, tup)
}

// Contains reports whether an identical tuple is stored. Safe for
// concurrent use on a frozen relation.
func (r *Rel) Contains(tup []value.Value) bool {
	if r.frozen {
		// Frozen relations serve concurrent readers: a stack buffer
		// instead of the shared scratch field.
		var buf [12]value.ID
		ids, ok := r.in.LookupAll(buf[:0], tup)
		if !ok {
			return false
		}
		return r.lookupRow(ids) >= 0
	}
	ids, ok := r.in.LookupAll(r.scratch[:0], tup)
	r.scratch = ids[:0]
	if !ok {
		return false // a never-interned value cannot be stored
	}
	return r.lookupRow(ids) >= 0
}

// EachLive calls fn with every live row number in ascending order,
// stopping early if fn returns false.
func (r *Rel) EachLive(fn func(row int) bool) {
	for row := 0; row < len(r.loc); row++ {
		if r.Alive(row) && !fn(row) {
			return
		}
	}
}

// AppendLive appends the relation's live row numbers to dst in ascending
// order and returns the extended slice. A relation with no dead rows
// appends the full row range; one with substitution-collapsed rows walks
// the validity bitmap word-wise, so the cost is O(live + words), not
// O(rows) bit tests. Passing dst[:0] of a reused buffer makes repeated
// scans (the streaming encoder's per-relation row collection) allocation-
// free once the buffer has grown to the largest relation.
func (r *Rel) AppendLive(dst []int) []int {
	n := len(r.loc)
	if r.dead == 0 {
		for row := 0; row < n; row++ {
			dst = append(dst, row)
		}
		return dst
	}
	for wi, word := range r.live {
		base := wi << 6
		for word != 0 {
			row := base + bits.TrailingZeros64(word)
			if row >= n {
				break
			}
			dst = append(dst, row)
			word &= word - 1
		}
	}
	return dst
}

// EnsureIndex builds the posting-list index on position pos if not yet
// present. Lists hold live rows in ascending order. On a frozen relation
// every position with rows is already indexed, so the call is a pure read.
func (r *Rel) EnsureIndex(pos int) {
	if _, ok := r.idx[pos]; ok {
		return
	}
	if r.frozen {
		// Freeze indexed every position up to the maximum arity; a missing
		// position has no rows, so there is nothing to build (and building
		// would mutate shared state).
		return
	}
	if r.idx == nil {
		r.idx = make(map[int]map[value.ID][]int)
	}
	// Counting sort over the dense ID space: count rows per ID, carve
	// every posting list out of one shared backing array, fill in row
	// order (so lists stay ascending), then publish one exactly-sized map
	// entry per distinct ID. Compared to appending into per-ID slices
	// this is the difference between thousands of small allocations and
	// three on the bulk paths (Freeze, the snapshot warm-start load), and
	// the map sees one write per distinct ID instead of one per row.
	counts := make([]int32, r.in.Len())
	total, distinct := 0, 0
	for row, l := range r.loc {
		s := r.segs[l.seg]
		if pos < s.arity && r.Alive(row) {
			id := s.cols[pos][l.off]
			if counts[id] == 0 {
				distinct++
			}
			counts[id]++
			total++
		}
	}
	offs := make([]int32, len(counts))
	off := int32(0)
	for id, c := range counts {
		offs[id] = off
		off += c
	}
	backing := make([]int, total)
	for row, l := range r.loc {
		s := r.segs[l.seg]
		if pos < s.arity && r.Alive(row) {
			id := s.cols[pos][l.off]
			backing[offs[id]] = row
			offs[id]++
		}
	}
	byID := make(map[value.ID][]int, distinct)
	for id, c := range counts {
		if c > 0 {
			// Capacity-capped at the list's end: a later insert appending to
			// one list must reallocate it, never grow into its neighbor's
			// backing space.
			byID[value.ID(id)] = backing[offs[id]-c : offs[id] : offs[id]]
		}
	}
	r.idx[pos] = byID
}

// CandidatesID returns the posting list of live rows whose component pos
// equals the interned value id, building the index on first use. The
// list is sorted ascending and shared; do not mutate.
func (r *Rel) CandidatesID(pos int, id value.ID) []int {
	r.EnsureIndex(pos)
	return r.idx[pos][id]
}

// Candidates is CandidatesID for a raw value: rows whose component pos
// equals v.
func (r *Rel) Candidates(pos int, v value.Value) []int {
	id, ok := r.in.Lookup(v)
	if !ok {
		return nil
	}
	return r.CandidatesID(pos, id)
}

// HasIndex reports whether an index exists on pos (for tests and
// diagnostics).
func (r *Rel) HasIndex(pos int) bool {
	_, ok := r.idx[pos]
	return ok
}

// Interner returns the interner whose IDs this relation's rows use.
func (r *Rel) Interner() *value.Interner { return r.in }

// Block is a read-only view of one arity class of a relation, the unit
// the homomorphism engine compiles against: Col(p)[off] is position p of
// the class's off-th row, with no per-row indirection.
type Block struct {
	rel *Rel
	s   *segment
	si  int32
}

// BlockFor returns the block holding rows of the given arity; ok is
// false when the relation has no such rows (then no atom of that arity
// can match).
func (r *Rel) BlockFor(arity int) (Block, bool) {
	for i, s := range r.segs {
		if s.arity == arity {
			return Block{rel: r, s: s, si: int32(i)}, true
		}
	}
	return Block{}, false
}

// Len returns the number of rows (offsets) in the block, dead included.
func (b Block) Len() int { return len(b.s.rows) }

// Col returns column p of the block. Do not mutate.
func (b Block) Col(p int) []value.ID { return b.s.cols[p] }

// Cols returns all columns of the block. Do not mutate.
func (b Block) Cols() [][]value.ID { return b.s.cols }

// RowAt returns the global row number of the block's off-th row.
func (b Block) RowAt(off int) int { return b.s.rows[off] }

// LiveAt reports whether the block's off-th row is live.
func (b Block) LiveAt(off int) bool { return b.rel.Alive(b.s.rows[off]) }

// Offset returns the block offset of a global row, or -1 when the row
// belongs to a different arity class or is dead.
func (b Block) Offset(row int) int {
	l := b.rel.loc[row]
	if l.seg != b.si || !b.rel.Alive(row) {
		return -1
	}
	return int(l.off)
}

// Dense reports whether the block covers the whole relation with no dead
// rows — then global row numbers and block offsets coincide and Offset /
// LiveAt checks can be skipped. The answer is a snapshot: an in-place
// substitution can invalidate it, so re-ask after mutating.
func (b Block) Dense() bool {
	return b.rel.dead == 0 && len(b.s.rows) == len(b.rel.loc)
}

// ensureRev builds the reverse index ID → rows containing it. It is
// maintained on insert once built; substitution may leave stale entries
// (rows that no longer contain the ID), which consumers re-verify.
func (r *Rel) ensureRev() {
	if r.rev != nil {
		return
	}
	r.rev = make(map[value.ID][]int)
	for row, l := range r.loc {
		if !r.Alive(row) {
			continue
		}
		s := r.segs[l.seg]
		for p := 0; p < s.arity; p++ {
			id := s.cols[p][l.off]
			r.rev[id] = append(r.rev[id], row)
		}
	}
}

// substitute rewrites, in place, every live row containing one of the
// subs IDs, mapping each of the row's IDs through canon. Rows that
// collapse into an existing row are invalidated. Returns the number of
// rows actually rewritten. When touched is non-nil it is called once per
// rewritten row, in ascending row order, before the rewrite batch is
// applied — the hook the incremental delta chase uses to track which
// rows one egd round dirtied.
func (r *Rel) substitute(subs []value.ID, canon func(value.ID) value.ID, touched func(row int)) int {
	if r.frozen {
		r.frozenPanic()
	}
	if len(r.loc) == 0 {
		return 0
	}
	r.ensureRev()
	var cand []int
	for _, id := range subs {
		for _, row := range r.rev[id] {
			if r.Alive(row) {
				cand = append(cand, row)
			}
		}
	}
	if len(cand) == 0 {
		return 0
	}
	sort.Ints(cand)
	// Uniquify, and drop stale reverse-index hits: rows none of whose
	// current IDs change under canon.
	changed := cand[:0]
	for i, row := range cand {
		if i > 0 && row == cand[i-1] {
			continue
		}
		l := r.loc[row]
		s := r.segs[l.seg]
		for p := 0; p < s.arity; p++ {
			if id := s.cols[p][l.off]; canon(id) != id {
				changed = append(changed, row)
				break
			}
		}
	}
	if len(changed) == 0 {
		return 0
	}
	if touched != nil {
		for _, row := range changed {
			touched(row)
		}
	}
	r.epoch++

	// Phase 1 — detach every affected row from the dedup buckets and the
	// posting lists of its changing positions, then write the new IDs
	// into the columns. All detaches happen before any reattach so that
	// two affected rows rewriting to the same value collapse correctly
	// regardless of order.
	for _, row := range changed {
		r.detachDedup(r.hashRow(row), row)
		l := r.loc[row]
		s := r.segs[l.seg]
		for p := 0; p < s.arity; p++ {
			id := s.cols[p][l.off]
			nid := canon(id)
			if nid == id {
				continue
			}
			if byID, ok := r.idx[p]; ok {
				removePosting(byID, id, row)
			}
			s.cols[p][l.off] = nid
			r.rev[nid] = append(r.rev[nid], row)
		}
		r.tuples[row] = nil // decode cache is stale; re-resolve lazily
	}

	// Phase 2 — reattach in ascending row order: a row identical to a
	// surviving live row dies; otherwise it re-registers in the dedup
	// buckets and posting lists.
	ids := r.scratch[:0]
	for _, row := range changed {
		ids = r.appendRowIDs(ids[:0], row)
		h := value.HashIDs(ids)
		if r.lookupHash(h, ids) >= 0 {
			r.kill(row)
			// Remove from the posting lists of unchanged positions (the
			// changed ones were detached in phase 1 and never re-added).
			for p, id := range ids {
				if byID, ok := r.idx[p]; ok {
					removePosting(byID, id, row)
				}
			}
			continue
		}
		r.attachDedup(h, row)
		for p, id := range ids {
			if byID, ok := r.idx[p]; ok {
				insertPosting(byID, id, row)
			}
		}
	}
	r.scratch = ids[:0]
	return len(changed)
}

// removePosting deletes row from the sorted posting list of id, if
// present.
func removePosting(byID map[value.ID][]int, id value.ID, row int) {
	list := byID[id]
	i := sort.SearchInts(list, row)
	if i < len(list) && list[i] == row {
		list = append(list[:i], list[i+1:]...)
		if len(list) == 0 {
			delete(byID, id)
		} else {
			byID[id] = list
		}
	}
}

// insertPosting adds row to the sorted posting list of id, keeping it
// sorted and duplicate-free.
func insertPosting(byID map[value.ID][]int, id value.ID, row int) {
	list := byID[id]
	if n := len(list); n == 0 || list[n-1] < row {
		byID[id] = append(list, row) // common case: appends arrive in order
		return
	}
	i := sort.SearchInts(list, row)
	if i < len(list) && list[i] == row {
		return
	}
	list = append(list, 0)
	copy(list[i+1:], list[i:])
	list[i] = row
	byID[id] = list
}

// IntersectPostings intersects two ascending row lists into dst
// (overwritten and returned). When the lists are heavily skewed it
// gallops through the longer one with binary search.
func IntersectPostings(dst, a, b []int) []int {
	dst = dst[:0]
	if len(a) > len(b) {
		a, b = b, a
	}
	if len(a) == 0 {
		return dst
	}
	if len(b) >= 16*len(a) {
		for _, x := range a {
			i := sort.SearchInts(b, x)
			if i < len(b) && b[i] == x {
				dst = append(dst, x)
			}
			b = b[i:]
		}
		return dst
	}
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			dst = append(dst, a[i])
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return dst
}

// Store is a set of relations sharing one value interner. NewStore gives
// every store a private interner; NewStoreWith lets related stores (a
// chase's source and target, an instance and its rewrites) share one so
// their rows are ID-compatible.
type Store struct {
	in     *value.Interner
	rels   map[string]*Rel
	frozen bool  // immutable and shareable; see Freeze
	pins   []any // lifetime anchors (mmap'd snapshot files); see Pin
}

// NewStore returns an empty store with a fresh interner.
func NewStore() *Store { return NewStoreWith(nil) }

// NewStoreWith returns an empty store using the given interner (a fresh
// one when nil).
func NewStoreWith(in *value.Interner) *Store {
	if in == nil {
		in = value.NewInterner()
	}
	return &Store{in: in, rels: make(map[string]*Rel)}
}

// Interner returns the store's interner.
func (s *Store) Interner() *value.Interner { return s.interner() }

func (s *Store) interner() *value.Interner {
	if s.in == nil { // zero-value Store
		s.in = value.NewInterner()
	}
	return s.in
}

func (s *Store) rel(name string) *Rel {
	if s.rels == nil {
		s.rels = make(map[string]*Rel)
	}
	r, ok := s.rels[name]
	if !ok {
		r = newRel(name, s.interner())
		s.rels[name] = r
	}
	return r
}

// Freeze eagerly builds every lazy structure of every relation that
// reads consult (posting lists, decoded tuples) and flips the store into
// an immutable published state: all read paths are mutation-free
// afterwards, so any number of goroutines may share the frozen store.
// Writes (Insert, InsertIDs, SubstituteIDs) panic loudly. The interner
// stays shared and thread-safe: interning new values does not touch
// frozen relation state. Freeze is idempotent and must be called from
// the goroutine that owns the still-mutable store; Clone returns a
// mutable copy.
func (s *Store) Freeze() {
	if s.frozen {
		return
	}
	for _, r := range s.rels {
		r.Freeze()
	}
	s.frozen = true
}

// Frozen reports whether the store has been frozen.
func (s *Store) Frozen() bool { return s.frozen }

// frozenPanic aborts a write to a frozen store.
func (s *Store) frozenPanic(op string) {
	panic(fmt.Sprintf(
		"storage: %s on a frozen store: a frozen store is immutable and may be shared by concurrent readers; Clone it for a mutable copy", op))
}

// Insert adds a tuple to the named relation, creating the relation on
// first use, and reports whether the tuple was new.
func (s *Store) Insert(rel string, tup []value.Value) bool {
	if s.frozen {
		s.frozenPanic("Insert")
	}
	return s.rel(rel).insert(tup)
}

// InsertIDs adds an already-interned row to the named relation. The ids
// must come from this store's interner; they are copied into the
// columns, so the caller may reuse the slice. This is the rewrite fast
// path: egd substitution maps rows ID-by-ID and reinserts them without
// rendering a single value.
func (s *Store) InsertIDs(rel string, ids []value.ID) bool {
	if s.frozen {
		s.frozenPanic("InsertIDs")
	}
	return s.rel(rel).insertIDs(ids, nil)
}

// SubstituteIDs rewrites, in place, every live row of every relation
// that contains one of the subs IDs, mapping the row's IDs through
// canon; rows that collapse into an existing row are invalidated (their
// row numbers stay allocated but dead). Only affected rows — found via
// the reverse ID index — are touched. Returns the number of rows
// rewritten. This is the incremental egd-rewrite primitive: one round's
// substitution costs O(affected), not O(store).
func (s *Store) SubstituteIDs(subs []value.ID, canon func(value.ID) value.ID) int {
	return s.SubstituteIDsTouched(subs, canon, nil)
}

// SubstituteIDsTouched is SubstituteIDs with a per-row hook: fn (when
// non-nil) is called for every row about to be rewritten, relation by
// relation in lexicographic order, rows ascending. The delta chase feeds
// the touched rows back into its dirty set so the next incremental egd
// round re-examines exactly the rows this one changed.
func (s *Store) SubstituteIDsTouched(subs []value.ID, canon func(value.ID) value.ID, fn func(rel string, row int)) int {
	if s.frozen {
		s.frozenPanic("SubstituteIDs")
	}
	if len(subs) == 0 {
		return 0
	}
	touched := 0
	for _, name := range s.Relations() {
		r := s.rels[name]
		var hook func(int)
		if fn != nil {
			hook = func(row int) { fn(name, row) }
		}
		touched += r.substitute(subs, canon, hook)
	}
	return touched
}

// Contains reports whether the identical tuple is present.
func (s *Store) Contains(rel string, tup []value.Value) bool {
	r, ok := s.rels[rel]
	return ok && r.Contains(tup)
}

// Rel returns the named relation or nil when absent.
func (s *Store) Rel(name string) *Rel {
	if s.rels == nil {
		return nil
	}
	return s.rels[name]
}

// Relations returns the relation names in lexicographic order.
func (s *Store) Relations() []string {
	out := make([]string, 0, len(s.rels))
	for n := range s.rels {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Size returns the total live tuple count across relations.
func (s *Store) Size() int {
	n := 0
	for _, r := range s.rels {
		n += r.Len()
	}
	return n
}

// Each calls fn for every live tuple of every relation (relations in
// lexicographic order, tuples in insertion order). fn must not mutate
// the tuple. Iteration stops early if fn returns false.
func (s *Store) Each(fn func(rel string, tup []value.Value) bool) {
	for _, name := range s.Relations() {
		r := s.rels[name]
		stop := false
		r.EachLive(func(row int) bool {
			if !fn(name, r.Tuple(row)) {
				stop = true
				return false
			}
			return true
		})
		if stop {
			return
		}
	}
}

// EachRow is Each over interned rows. The ids slice is reused between
// calls; fn must copy it to retain it.
func (s *Store) EachRow(fn func(rel string, ids []value.ID) bool) {
	var buf []value.ID
	for _, name := range s.Relations() {
		r := s.rels[name]
		stop := false
		r.EachLive(func(row int) bool {
			buf = r.appendRowIDs(buf[:0], row)
			if !fn(name, buf) {
				stop = true
				return false
			}
			return true
		})
		if stop {
			return
		}
	}
}

// Clone returns a deep copy of the relation structure sharing the
// interner. Columns and the validity bitmap are copied (the clone can be
// substituted independently); decoded tuples are shared (they are
// immutable); indexes are rebuilt lazily. The clone is always mutable,
// even when the receiver is frozen — Clone is how a frozen published
// store spawns a rewritable descendant.
func (s *Store) Clone() *Store {
	out := NewStoreWith(s.interner())
	for name, r := range s.rels {
		nr := newRel(name, out.in)
		nr.segs = make([]*segment, len(r.segs))
		for i, sg := range r.segs {
			ns := &segment{arity: sg.arity, cols: make([][]value.ID, sg.arity)}
			for p, col := range sg.cols {
				ns.cols[p] = append([]value.ID(nil), col...)
			}
			ns.rows = append([]int(nil), sg.rows...)
			nr.segs[i] = ns
		}
		nr.loc = append([]rowLoc(nil), r.loc...)
		nr.live = append([]uint64(nil), r.live...)
		nr.dead = r.dead
		nr.tuples = append([][]value.Value(nil), r.tuples...)
		nr.dedup = make(map[uint64]int, len(r.dedup))
		for k, v := range r.dedup {
			nr.dedup[k] = v
		}
		if len(r.over) > 0 {
			nr.over = make(map[uint64][]int, len(r.over))
			for k, v := range r.over {
				nr.over[k] = append([]int(nil), v...)
			}
		}
		out.rels[name] = nr
	}
	return out
}

// Rewrite builds a new store by applying fn to every tuple. fn returns
// the replacement tuple (it may return its argument unchanged). Identical
// results are deduplicated. Used by value-level substitutions that cannot
// be expressed as an ID mapping; prefer SubstituteIDs on the hot path.
func (s *Store) Rewrite(fn func(rel string, tup []value.Value) []value.Value) *Store {
	out := NewStoreWith(s.interner())
	s.Each(func(rel string, tup []value.Value) bool {
		out.Insert(rel, fn(rel, tup))
		return true
	})
	return out
}

// tupleString renders a tuple for display; identity never goes through
// this path.
func tupleString(tup []value.Value) string {
	var b strings.Builder
	for i, v := range tup {
		if i > 0 {
			b.WriteByte('|')
		}
		b.WriteString(v.String())
	}
	return b.String()
}

// String renders the store for debugging: one tuple per line, sorted.
func (s *Store) String() string {
	var lines []string
	s.Each(func(rel string, tup []value.Value) bool {
		lines = append(lines, fmt.Sprintf("%s(%s)", rel, tupleString(tup)))
		return true
	})
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}
