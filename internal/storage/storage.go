// Package storage implements the in-memory relational storage engine the
// rest of the system is built on: per-relation tuple heaps with O(1)
// duplicate elimination and lazily built secondary hash indexes
// (position, value-ID) → rows, which drive index-nested-loop candidate
// selection in the homomorphism engine.
//
// Representation. Every value entering a store is interned into a dense
// value.ID by the store's value.Interner, and each tuple is kept in two
// forms: the caller's []value.Value (immutable, returned by Tuple for
// decoding and display) and the interned []value.ID row (returned by Row;
// the identity used everywhere else). Duplicate elimination hashes the ID
// row (value.HashIDs) into buckets and compares ID slices on collision —
// no strings are built on the insert/lookup path. Secondary indexes are
// keyed by value.ID, so the homomorphism engine probes them with plain
// uint32s. Stores sharing one Interner (see NewStoreWith) agree on IDs,
// which lets the chase rewrite and copy rows between instances without
// re-rendering values.
//
// The store is deliberately representation-agnostic: a tuple is a slice
// of values, and both views use it — the concrete view stores a fact
// R+(a, [s,e)) as the tuple ⟨a..., [s,e)⟩ whose last component is an
// interval value, while abstract snapshots store plain ⟨a...⟩ tuples.
// Tuples are treated as immutable once inserted.
package storage

import (
	"fmt"
	"slices"
	"sort"
	"strings"

	"repro/internal/value"
)

// Rel is a single relation: an append-only heap of deduplicated tuples
// with optional per-position hash indexes.
type Rel struct {
	name   string
	in     *value.Interner
	tuples [][]value.Value  // original values, for decoding and display
	rows   [][]value.ID     // interned rows: the identity representation
	dedup  map[uint64]int   // row hash → first row with that hash
	over   map[uint64][]int // further rows per hash (collisions only; lazily built)
	idx    map[int]map[value.ID][]int
}

func newRel(name string, in *value.Interner) *Rel {
	return &Rel{name: name, in: in, dedup: make(map[uint64]int)}
}

// Name returns the relation name.
func (r *Rel) Name() string { return r.name }

// Len returns the number of (distinct) tuples.
func (r *Rel) Len() int { return len(r.rows) }

// Tuple returns tuple i as values. The caller must not mutate it.
func (r *Rel) Tuple(i int) []value.Value { return r.tuples[i] }

// Row returns the interned form of tuple i. The caller must not mutate it.
func (r *Rel) Row(i int) []value.ID { return r.rows[i] }

// lookupHash returns the row number of a stored row identical to ids
// under hash h, or -1.
func (r *Rel) lookupHash(h uint64, ids []value.ID) int {
	first, ok := r.dedup[h]
	if !ok {
		return -1
	}
	if slices.Equal(r.rows[first], ids) {
		return first
	}
	for _, row := range r.over[h] {
		if slices.Equal(r.rows[row], ids) {
			return row
		}
	}
	return -1
}

// lookupRow returns the row number of an identical stored row, or -1.
func (r *Rel) lookupRow(ids []value.ID) int {
	return r.lookupHash(value.HashIDs(ids), ids)
}

// insertIDs adds the interned row unless an identical one is present,
// resolving tup lazily when the row is new and tup is nil.
func (r *Rel) insertIDs(ids []value.ID, tup []value.Value) bool {
	h := value.HashIDs(ids)
	if r.lookupHash(h, ids) >= 0 {
		return false
	}
	if tup == nil {
		tup = r.in.ResolveAll(make([]value.Value, 0, len(ids)), ids)
	}
	row := len(r.rows)
	r.rows = append(r.rows, ids)
	r.tuples = append(r.tuples, tup)
	if _, taken := r.dedup[h]; !taken {
		r.dedup[h] = row
	} else {
		if r.over == nil {
			r.over = make(map[uint64][]int)
		}
		r.over[h] = append(r.over[h], row)
	}
	for pos, byID := range r.idx {
		if pos < len(ids) {
			byID[ids[pos]] = append(byID[ids[pos]], row)
		}
	}
	return true
}

// insert interns and adds the tuple unless an identical one is present.
// It reports whether the tuple was added, maintaining any built indexes.
func (r *Rel) insert(tup []value.Value) bool {
	ids := r.in.InternAll(make([]value.ID, 0, len(tup)), tup)
	return r.insertIDs(ids, tup)
}

// Contains reports whether an identical tuple is stored.
func (r *Rel) Contains(tup []value.Value) bool {
	ids, ok := r.in.LookupAll(make([]value.ID, 0, len(tup)), tup)
	if !ok {
		return false // a never-interned value cannot be stored
	}
	return r.lookupRow(ids) >= 0
}

// EnsureIndex builds the hash index on position pos if not yet present.
func (r *Rel) EnsureIndex(pos int) {
	if r.idx == nil {
		r.idx = make(map[int]map[value.ID][]int)
	}
	if _, ok := r.idx[pos]; ok {
		return
	}
	byID := make(map[value.ID][]int)
	for row, ids := range r.rows {
		if pos < len(ids) {
			byID[ids[pos]] = append(byID[ids[pos]], row)
		}
	}
	r.idx[pos] = byID
}

// CandidatesID returns the rows whose component pos equals the interned
// value id, building the index on first use. The returned slice is
// shared; do not mutate.
func (r *Rel) CandidatesID(pos int, id value.ID) []int {
	r.EnsureIndex(pos)
	return r.idx[pos][id]
}

// Candidates is CandidatesID for a raw value: rows whose component pos
// equals v.
func (r *Rel) Candidates(pos int, v value.Value) []int {
	id, ok := r.in.Lookup(v)
	if !ok {
		return nil
	}
	return r.CandidatesID(pos, id)
}

// HasIndex reports whether an index exists on pos (for tests and
// diagnostics).
func (r *Rel) HasIndex(pos int) bool {
	_, ok := r.idx[pos]
	return ok
}

// Interner returns the interner whose IDs this relation's rows use.
func (r *Rel) Interner() *value.Interner { return r.in }

// Store is a set of relations sharing one value interner. NewStore gives
// every store a private interner; NewStoreWith lets related stores (a
// chase's source and target, an instance and its rewrites) share one so
// their rows are ID-compatible.
type Store struct {
	in   *value.Interner
	rels map[string]*Rel
}

// NewStore returns an empty store with a fresh interner.
func NewStore() *Store { return NewStoreWith(nil) }

// NewStoreWith returns an empty store using the given interner (a fresh
// one when nil).
func NewStoreWith(in *value.Interner) *Store {
	if in == nil {
		in = value.NewInterner()
	}
	return &Store{in: in, rels: make(map[string]*Rel)}
}

// Interner returns the store's interner.
func (s *Store) Interner() *value.Interner { return s.interner() }

func (s *Store) interner() *value.Interner {
	if s.in == nil { // zero-value Store
		s.in = value.NewInterner()
	}
	return s.in
}

func (s *Store) rel(name string) *Rel {
	if s.rels == nil {
		s.rels = make(map[string]*Rel)
	}
	r, ok := s.rels[name]
	if !ok {
		r = newRel(name, s.interner())
		s.rels[name] = r
	}
	return r
}

// Insert adds a tuple to the named relation, creating the relation on
// first use, and reports whether the tuple was new.
func (s *Store) Insert(rel string, tup []value.Value) bool {
	return s.rel(rel).insert(tup)
}

// InsertIDs adds an already-interned row to the named relation. The ids
// must come from this store's interner; the row is retained, so the
// caller must not mutate it afterwards. This is the rewrite fast path:
// egd substitution maps rows ID-by-ID and reinserts them without
// rendering a single value.
func (s *Store) InsertIDs(rel string, ids []value.ID) bool {
	return s.rel(rel).insertIDs(ids, nil)
}

// Contains reports whether the identical tuple is present.
func (s *Store) Contains(rel string, tup []value.Value) bool {
	r, ok := s.rels[rel]
	return ok && r.Contains(tup)
}

// Rel returns the named relation or nil when absent.
func (s *Store) Rel(name string) *Rel {
	if s.rels == nil {
		return nil
	}
	return s.rels[name]
}

// Relations returns the relation names in lexicographic order.
func (s *Store) Relations() []string {
	out := make([]string, 0, len(s.rels))
	for n := range s.rels {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Size returns the total tuple count across relations.
func (s *Store) Size() int {
	n := 0
	for _, r := range s.rels {
		n += r.Len()
	}
	return n
}

// Each calls fn for every tuple of every relation (relations in
// lexicographic order, tuples in insertion order). fn must not mutate the
// tuple. Iteration stops early if fn returns false.
func (s *Store) Each(fn func(rel string, tup []value.Value) bool) {
	for _, name := range s.Relations() {
		for _, tup := range s.rels[name].tuples {
			if !fn(name, tup) {
				return
			}
		}
	}
}

// EachRow is Each over interned rows. fn must not mutate the row.
func (s *Store) EachRow(fn func(rel string, ids []value.ID) bool) {
	for _, name := range s.Relations() {
		for _, ids := range s.rels[name].rows {
			if !fn(name, ids) {
				return
			}
		}
	}
}

// Clone returns a deep copy of the relation structure sharing the
// interner. Tuples and rows themselves are shared (they are immutable);
// indexes are not copied.
func (s *Store) Clone() *Store {
	out := NewStoreWith(s.interner())
	for name, r := range s.rels {
		nr := newRel(name, out.in)
		nr.tuples = append([][]value.Value(nil), r.tuples...)
		nr.rows = append([][]value.ID(nil), r.rows...)
		nr.dedup = make(map[uint64]int, len(r.dedup))
		for k, v := range r.dedup {
			nr.dedup[k] = v
		}
		if len(r.over) > 0 {
			nr.over = make(map[uint64][]int, len(r.over))
			for k, v := range r.over {
				nr.over[k] = append([]int(nil), v...)
			}
		}
		out.rels[name] = nr
	}
	return out
}

// Rewrite builds a new store by applying fn to every tuple. fn returns
// the replacement tuple (it may return its argument unchanged). Identical
// results are deduplicated. Used by egd chase steps, which replace nulls
// "everywhere".
func (s *Store) Rewrite(fn func(rel string, tup []value.Value) []value.Value) *Store {
	out := NewStoreWith(s.interner())
	s.Each(func(rel string, tup []value.Value) bool {
		out.Insert(rel, fn(rel, tup))
		return true
	})
	return out
}

// tupleString renders a tuple for display; identity never goes through
// this path.
func tupleString(tup []value.Value) string {
	var b strings.Builder
	for i, v := range tup {
		if i > 0 {
			b.WriteByte('|')
		}
		b.WriteString(v.String())
	}
	return b.String()
}

// String renders the store for debugging: one tuple per line, sorted.
func (s *Store) String() string {
	var lines []string
	s.Each(func(rel string, tup []value.Value) bool {
		lines = append(lines, fmt.Sprintf("%s(%s)", rel, tupleString(tup)))
		return true
	})
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}
