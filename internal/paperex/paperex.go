// Package paperex provides the worked examples of the paper as ready-made
// fixtures: the employment schema mapping of Examples 1/6, the concrete
// source instance of Figure 4, and the three-relation normalization input
// of Figure 7 / Example 14. Tests, examples, and the experiment harness
// all reproduce the paper's figures from these.
package paperex

import (
	"repro/internal/dependency"
	"repro/internal/fact"
	"repro/internal/instance"
	"repro/internal/interval"
	"repro/internal/logic"
	"repro/internal/schema"
	"repro/internal/value"
)

// Inf is shorthand for the unbounded end point.
const Inf = interval.Infinity

// Iv is shorthand for interval.MustNew.
func Iv(s, e interval.Time) interval.Interval { return interval.MustNew(s, e) }

// C is shorthand for a constant value.
func C(s string) value.Value { return value.NewConst(s) }

// EmploymentMapping returns the schema mapping of Example 1 / Example 6:
//
//	σ1: E(n, c) → ∃s Emp(n, c, s)
//	σ2: E(n, c) ∧ S(n, s) → Emp(n, c, s)
//	egd: Emp(n, c, s) ∧ Emp(n, c, s') → s = s'
func EmploymentMapping() *dependency.Mapping {
	src := schema.MustNew(
		schema.MustRelation("E", "name", "company"),
		schema.MustRelation("S", "name", "salary"),
	)
	tgt := schema.MustNew(
		schema.MustRelation("Emp", "name", "company", "salary"),
	)
	return &dependency.Mapping{
		Source: src,
		Target: tgt,
		TGDs: []dependency.TGD{
			{
				Name: "sigma1",
				Body: logic.Conjunction{logic.NewAtom("E", logic.Var("n"), logic.Var("c"))},
				Head: logic.Conjunction{logic.NewAtom("Emp", logic.Var("n"), logic.Var("c"), logic.Var("s"))},
			},
			{
				Name: "sigma2",
				Body: logic.Conjunction{
					logic.NewAtom("E", logic.Var("n"), logic.Var("c")),
					logic.NewAtom("S", logic.Var("n"), logic.Var("s")),
				},
				Head: logic.Conjunction{logic.NewAtom("Emp", logic.Var("n"), logic.Var("c"), logic.Var("s"))},
			},
		},
		EGDs: []dependency.EGD{
			{
				Name: "salary-key",
				Body: logic.Conjunction{
					logic.NewAtom("Emp", logic.Var("n"), logic.Var("c"), logic.Var("s")),
					logic.NewAtom("Emp", logic.Var("n"), logic.Var("c"), logic.Var("s'")),
				},
				X1: "s", X2: "s'",
			},
		},
	}
}

// Figure4 returns the concrete source instance Ic of Figure 4 over the
// employment source schema.
func Figure4() *instance.Concrete {
	m := EmploymentMapping()
	c := instance.NewConcrete(m.Source)
	c.MustInsert(fact.NewC("E", Iv(2012, 2014), C("Ada"), C("IBM")))
	c.MustInsert(fact.NewC("E", Iv(2014, Inf), C("Ada"), C("Google")))
	c.MustInsert(fact.NewC("E", Iv(2013, 2018), C("Bob"), C("IBM")))
	c.MustInsert(fact.NewC("S", Iv(2013, Inf), C("Ada"), C("18k")))
	c.MustInsert(fact.NewC("S", Iv(2015, Inf), C("Bob"), C("13k")))
	return c
}

// Figure7 returns the five-fact instance of Figure 7 (Example 14) over
// the schema R(A), P(A), S(A).
func Figure7() *instance.Concrete {
	sch := schema.MustNew(
		schema.MustRelation("R", "A"),
		schema.MustRelation("P", "A"),
		schema.MustRelation("S", "A"),
	)
	c := instance.NewConcrete(sch)
	c.MustInsert(fact.NewC("R", Iv(5, 11), C("a")))   // f1
	c.MustInsert(fact.NewC("P", Iv(8, 15), C("a")))   // f2
	c.MustInsert(fact.NewC("S", Iv(7, 10), C("a")))   // f3
	c.MustInsert(fact.NewC("P", Iv(20, 25), C("b")))  // f4
	c.MustInsert(fact.NewC("S", Iv(18, Inf), C("b"))) // f5
	return c
}

// Example14Conjunctions returns the Φ+ of Example 14 in concrete form
// (shared temporal variable per conjunction):
//
//	φ1: R+(x, t) ∧ P+(y, t)
//	φ2: P+(x, t) ∧ S+(y, t)
func Example14Conjunctions() []logic.Conjunction {
	tv := logic.Var(dependency.TemporalVar)
	return []logic.Conjunction{
		{
			logic.Atom{Rel: "R", Terms: []logic.Term{logic.Var("x"), tv}},
			logic.Atom{Rel: "P", Terms: []logic.Term{logic.Var("y"), tv}},
		},
		{
			logic.Atom{Rel: "P", Terms: []logic.Term{logic.Var("x"), tv}},
			logic.Atom{Rel: "S", Terms: []logic.Term{logic.Var("y"), tv}},
		},
	}
}

// Sigma2Body returns the lhs of σ2+ in concrete form:
// E+(n, c, t) ∧ S+(n, s, t) — the conjunction Figures 5 normalizes
// against.
func Sigma2Body() logic.Conjunction {
	m := EmploymentMapping()
	return m.TGDs[1].ConcreteBody()
}
