package paperex

import (
	"testing"

	"repro/internal/fact"
)

func TestFixturesAreWellFormed(t *testing.T) {
	m := EmploymentMapping()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(m.TGDs) != 2 || len(m.EGDs) != 1 {
		t.Fatalf("mapping shape: %d tgds, %d egds", len(m.TGDs), len(m.EGDs))
	}
	ic := Figure4()
	if ic.Len() != 5 || !ic.IsComplete() || !ic.IsCoalesced() {
		t.Fatalf("Figure 4 fixture: %d facts", ic.Len())
	}
	f7 := Figure7()
	if f7.Len() != 5 {
		t.Fatalf("Figure 7 fixture: %d facts", f7.Len())
	}
	phis := Example14Conjunctions()
	if len(phis) != 2 || len(phis[0]) != 2 {
		t.Fatalf("Example 14 conjunctions: %v", phis)
	}
	body := Sigma2Body()
	if len(body) != 2 || len(body[0].Terms) != 3 {
		t.Fatalf("σ2 body: %v", body)
	}
	// Fixture constructors return fresh instances: mutating one must not
	// leak into the next call.
	a := Figure4()
	a.MustInsert(fact.NewC("E", Iv(1, 2), C("zoe"), C("ACME")))
	if Figure4().Len() != 5 {
		t.Fatal("Figure4 fixture shares state between calls")
	}
}
