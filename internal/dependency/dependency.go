// Package dependency defines schema mappings for temporal data exchange:
// source-to-target tuple generating dependencies (s-t tgds), equality
// generating dependencies (egds), and the data exchange setting
// M = (RS, RT, Σst, Σeg) (paper §2).
//
// Dependencies are stored in their non-temporal form φ(x) → ∃y ψ(x,y) /
// φ(x) → x1 = x2. The concrete form σ+ — every atom augmented with the
// shared universally quantified temporal variable t — is derived
// mechanically (ConcreteBody / ConcreteHead). The reserved internal
// variable name for t cannot clash with user variables because it is not
// a legal identifier in the mapping language.
package dependency

import (
	"fmt"
	"strings"

	"repro/internal/logic"
	"repro/internal/schema"
)

// TemporalVar is the reserved name of the universally quantified temporal
// variable added to every atom of a concrete dependency (σ+, paper §2).
const TemporalVar = "%t"

// addTemporal appends the shared temporal variable to every atom.
func addTemporal(c logic.Conjunction) logic.Conjunction {
	out := make(logic.Conjunction, len(c))
	for i, a := range c {
		terms := make([]logic.Term, len(a.Terms)+1)
		copy(terms, a.Terms)
		terms[len(a.Terms)] = logic.Var(TemporalVar)
		out[i] = logic.Atom{Rel: a.Rel, Terms: terms}
	}
	return out
}

// TGD is a source-to-target tuple generating dependency
// ∀x φ(x) → ∃y ψ(x, y). Body atoms range over the source schema, head
// atoms over the target schema.
type TGD struct {
	Name string // optional label for diagnostics
	Body logic.Conjunction
	Head logic.Conjunction
}

// Existentials returns the head variables that do not occur in the body —
// the existentially quantified y, for which the chase invents nulls.
func (d TGD) Existentials() []string {
	bodyVars := make(map[string]bool)
	for _, v := range d.Body.Vars() {
		bodyVars[v] = true
	}
	var out []string
	for _, v := range d.Head.Vars() {
		if !bodyVars[v] {
			out = append(out, v)
		}
	}
	return out
}

// ConcreteBody returns φ+(x, t): the body with the shared temporal
// variable appended to each atom.
func (d TGD) ConcreteBody() logic.Conjunction { return addTemporal(d.Body) }

// ConcreteHead returns ψ+(x, y, t).
func (d TGD) ConcreteHead() logic.Conjunction { return addTemporal(d.Head) }

// Validate checks the dependency against the source and target schemas:
// non-empty sides, body over source, head over target, matching arities,
// and no literal values containing nulls or intervals.
func (d TGD) Validate(src, tgt *schema.Schema) error {
	if len(d.Body) == 0 || len(d.Head) == 0 {
		return fmt.Errorf("tgd %s: empty body or head", d.label())
	}
	if err := checkAtoms(d.Body, src, "source"); err != nil {
		return fmt.Errorf("tgd %s: body: %w", d.label(), err)
	}
	if err := checkAtoms(d.Head, tgt, "target"); err != nil {
		return fmt.Errorf("tgd %s: head: %w", d.label(), err)
	}
	return nil
}

func (d TGD) label() string {
	if d.Name != "" {
		return d.Name
	}
	return d.String()
}

// String renders the dependency as φ → ∃y. ψ.
func (d TGD) String() string {
	if ex := d.Existentials(); len(ex) > 0 {
		return fmt.Sprintf("%s → ∃%s. %s", d.Body, strings.Join(ex, ","), d.Head)
	}
	return fmt.Sprintf("%s → %s", d.Body, d.Head)
}

// EGD is an equality generating dependency ∀x φ(x) → x1 = x2 over the
// target schema.
type EGD struct {
	Name   string
	Body   logic.Conjunction
	X1, X2 string // the equated variable names
}

// ConcreteBody returns φ+(x, t).
func (d EGD) ConcreteBody() logic.Conjunction { return addTemporal(d.Body) }

// Validate checks the egd: body over the target schema and both equated
// variables occurring in the body (safety).
func (d EGD) Validate(tgt *schema.Schema) error {
	if len(d.Body) == 0 {
		return fmt.Errorf("egd %s: empty body", d.label())
	}
	if err := checkAtoms(d.Body, tgt, "target"); err != nil {
		return fmt.Errorf("egd %s: body: %w", d.label(), err)
	}
	if !d.Body.HasVar(d.X1) || !d.Body.HasVar(d.X2) {
		return fmt.Errorf("egd %s: equated variables %s, %s must occur in the body", d.label(), d.X1, d.X2)
	}
	if d.X1 == d.X2 {
		return fmt.Errorf("egd %s: trivial equality %s = %s", d.label(), d.X1, d.X2)
	}
	return nil
}

func (d EGD) label() string {
	if d.Name != "" {
		return d.Name
	}
	return d.String()
}

// String renders the dependency as φ → x1 = x2.
func (d EGD) String() string {
	return fmt.Sprintf("%s → %s = %s", d.Body, d.X1, d.X2)
}

func checkAtoms(c logic.Conjunction, sch *schema.Schema, which string) error {
	for _, a := range c {
		if sch != nil {
			r, ok := sch.Relation(a.Rel)
			if !ok {
				return fmt.Errorf("relation %s not in %s schema", a.Rel, which)
			}
			if len(a.Terms) != r.Arity() {
				return fmt.Errorf("atom %s has %d terms, relation has arity %d", a, len(a.Terms), r.Arity())
			}
		}
		for _, t := range a.Terms {
			if t.IsVar {
				if t.Name == TemporalVar {
					return fmt.Errorf("atom %s uses the reserved temporal variable %q; dependencies are stored in non-temporal form", a, TemporalVar)
				}
				continue
			}
			if !t.Val.IsConst() {
				return fmt.Errorf("atom %s: literal %v must be a constant", a, t.Val)
			}
		}
	}
	return nil
}

// Mapping is a data exchange setting M = (RS, RT, Σst, Σeg).
type Mapping struct {
	Source *schema.Schema
	Target *schema.Schema
	TGDs   []TGD
	EGDs   []EGD
}

// Validate checks the whole setting: disjoint schemas and valid
// dependencies.
func (m *Mapping) Validate() error {
	if m.Source == nil || m.Target == nil {
		return fmt.Errorf("mapping: source and target schemas are required")
	}
	if !m.Source.Disjoint(m.Target) {
		return fmt.Errorf("mapping: source and target schemas must be disjoint")
	}
	for _, d := range m.TGDs {
		if err := d.Validate(m.Source, m.Target); err != nil {
			return err
		}
	}
	for _, d := range m.EGDs {
		if err := d.Validate(m.Target); err != nil {
			return err
		}
	}
	return nil
}

// TGDBodies returns the non-temporal bodies of all s-t tgds — the Φ set
// the source instance is normalized against (in concrete form, §4.3).
func (m *Mapping) TGDBodies() []logic.Conjunction {
	out := make([]logic.Conjunction, len(m.TGDs))
	for i, d := range m.TGDs {
		out[i] = d.ConcreteBody()
	}
	return out
}

// EGDBodies returns the concrete bodies of all egds — the Φ set the
// target instance is normalized against.
func (m *Mapping) EGDBodies() []logic.Conjunction {
	out := make([]logic.Conjunction, len(m.EGDs))
	for i, d := range m.EGDs {
		out[i] = d.ConcreteBody()
	}
	return out
}

// String renders the whole setting.
func (m *Mapping) String() string {
	var b strings.Builder
	b.WriteString("source:\n")
	if m.Source != nil {
		b.WriteString(indent(m.Source.String()))
	}
	b.WriteString("\ntarget:\n")
	if m.Target != nil {
		b.WriteString(indent(m.Target.String()))
	}
	for _, d := range m.TGDs {
		b.WriteString("\ntgd: " + d.String())
	}
	for _, d := range m.EGDs {
		b.WriteString("\negd: " + d.String())
	}
	return b.String()
}

func indent(s string) string {
	lines := strings.Split(s, "\n")
	for i, l := range lines {
		lines[i] = "  " + l
	}
	return strings.Join(lines, "\n")
}
