package dependency

import (
	"strings"
	"testing"

	"repro/internal/logic"
	"repro/internal/schema"
	"repro/internal/value"
)

func employmentSchemas() (src, tgt *schema.Schema) {
	src = schema.MustNew(
		schema.MustRelation("E", "name", "company"),
		schema.MustRelation("S", "name", "salary"),
	)
	tgt = schema.MustNew(schema.MustRelation("Emp", "name", "company", "salary"))
	return src, tgt
}

func sigma1() TGD {
	return TGD{
		Name: "sigma1",
		Body: logic.Conjunction{logic.NewAtom("E", logic.Var("n"), logic.Var("c"))},
		Head: logic.Conjunction{logic.NewAtom("Emp", logic.Var("n"), logic.Var("c"), logic.Var("s"))},
	}
}

func salaryKey() EGD {
	return EGD{
		Name: "key",
		Body: logic.Conjunction{
			logic.NewAtom("Emp", logic.Var("n"), logic.Var("c"), logic.Var("s")),
			logic.NewAtom("Emp", logic.Var("n"), logic.Var("c"), logic.Var("s2")),
		},
		X1: "s", X2: "s2",
	}
}

func TestTGDExistentials(t *testing.T) {
	d := sigma1()
	ex := d.Existentials()
	if len(ex) != 1 || ex[0] != "s" {
		t.Fatalf("Existentials = %v", ex)
	}
	full := TGD{
		Body: logic.Conjunction{
			logic.NewAtom("E", logic.Var("n"), logic.Var("c")),
			logic.NewAtom("S", logic.Var("n"), logic.Var("s")),
		},
		Head: logic.Conjunction{logic.NewAtom("Emp", logic.Var("n"), logic.Var("c"), logic.Var("s"))},
	}
	if ex := full.Existentials(); len(ex) != 0 {
		t.Fatalf("full tgd existentials = %v", ex)
	}
}

func TestConcreteForms(t *testing.T) {
	d := sigma1()
	cb := d.ConcreteBody()
	ch := d.ConcreteHead()
	if len(cb[0].Terms) != 3 || cb[0].Terms[2].Name != TemporalVar {
		t.Fatalf("ConcreteBody = %v", cb)
	}
	if len(ch[0].Terms) != 4 || ch[0].Terms[3].Name != TemporalVar {
		t.Fatalf("ConcreteHead = %v", ch)
	}
	// The non-temporal originals must be untouched.
	if len(d.Body[0].Terms) != 2 || len(d.Head[0].Terms) != 3 {
		t.Fatal("concrete form mutated the dependency")
	}
	e := salaryKey()
	if eb := e.ConcreteBody(); len(eb[0].Terms) != 4 {
		t.Fatalf("egd ConcreteBody = %v", eb)
	}
}

func TestTGDValidate(t *testing.T) {
	src, tgt := employmentSchemas()
	if err := sigma1().Validate(src, tgt); err != nil {
		t.Fatal(err)
	}
	bad := sigma1()
	bad.Body = logic.Conjunction{logic.NewAtom("Emp", logic.Var("n"), logic.Var("c"), logic.Var("s"))}
	if bad.Validate(src, tgt) == nil {
		t.Fatal("body over target schema accepted")
	}
	bad2 := sigma1()
	bad2.Head = logic.Conjunction{logic.NewAtom("Emp", logic.Var("n"))}
	if bad2.Validate(src, tgt) == nil {
		t.Fatal("arity mismatch accepted")
	}
	bad3 := sigma1()
	bad3.Head = nil
	if bad3.Validate(src, tgt) == nil {
		t.Fatal("empty head accepted")
	}
	bad4 := sigma1()
	bad4.Body = logic.Conjunction{logic.NewAtom("E", logic.Var("n"), logic.Var(TemporalVar))}
	if bad4.Validate(src, tgt) == nil {
		t.Fatal("reserved temporal variable accepted")
	}
	bad5 := sigma1()
	bad5.Body = logic.Conjunction{logic.NewAtom("E", logic.Var("n"), logic.Lit(value.NewNull(1)))}
	if bad5.Validate(src, tgt) == nil {
		t.Fatal("null literal accepted")
	}
}

func TestEGDValidate(t *testing.T) {
	_, tgt := employmentSchemas()
	if err := salaryKey().Validate(tgt); err != nil {
		t.Fatal(err)
	}
	bad := salaryKey()
	bad.X2 = "zz"
	if bad.Validate(tgt) == nil {
		t.Fatal("unbound equated variable accepted")
	}
	bad2 := salaryKey()
	bad2.X2 = bad2.X1
	if bad2.Validate(tgt) == nil {
		t.Fatal("trivial equality accepted")
	}
	bad3 := salaryKey()
	bad3.Body = nil
	if bad3.Validate(tgt) == nil {
		t.Fatal("empty body accepted")
	}
}

func TestMappingValidate(t *testing.T) {
	src, tgt := employmentSchemas()
	m := &Mapping{Source: src, Target: tgt, TGDs: []TGD{sigma1()}, EGDs: []EGD{salaryKey()}}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	overlap := &Mapping{Source: src, Target: src.Clone()}
	if overlap.Validate() == nil {
		t.Fatal("non-disjoint schemas accepted")
	}
	if (&Mapping{Source: src}).Validate() == nil {
		t.Fatal("missing target accepted")
	}
}

func TestBodyCollections(t *testing.T) {
	src, tgt := employmentSchemas()
	m := &Mapping{Source: src, Target: tgt, TGDs: []TGD{sigma1()}, EGDs: []EGD{salaryKey()}}
	tb := m.TGDBodies()
	if len(tb) != 1 || len(tb[0][0].Terms) != 3 {
		t.Fatalf("TGDBodies = %v", tb)
	}
	eb := m.EGDBodies()
	if len(eb) != 1 || len(eb[0][0].Terms) != 4 {
		t.Fatalf("EGDBodies = %v", eb)
	}
}

func TestStrings(t *testing.T) {
	d := sigma1()
	if got := d.String(); !strings.Contains(got, "∃s") || !strings.Contains(got, "→") {
		t.Fatalf("TGD String = %q", got)
	}
	e := salaryKey()
	if got := e.String(); !strings.Contains(got, "s = s2") {
		t.Fatalf("EGD String = %q", got)
	}
	src, tgt := employmentSchemas()
	m := &Mapping{Source: src, Target: tgt, TGDs: []TGD{d}, EGDs: []EGD{e}}
	if got := m.String(); !strings.Contains(got, "tgd:") || !strings.Contains(got, "egd:") {
		t.Fatalf("Mapping String = %q", got)
	}
}
